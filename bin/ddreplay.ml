(* ddreplay: command-line driver for the debug-determinism library.

   Subcommands:
     list        enumerate applications and determinism models
     run         execute one production run and judge it
     find        scan seeds for a failing production run
     record      record a production run under a model, show the log
     replay      replay a previously saved log under its model
     debug       full record/replay/assess experiment
     report      one traced session, profiled: spans, counters, --trace
     classify    train and show the control/data-plane classification
     analyze     static analysis: races, planes, lints (no runs at all)
     invariants  train and show the dynamic invariants                *)

open Cmdliner
open Ddet
open Ddet_apps

let apps () =
  [
    Adder.app (); Bufover.app (); Msg_server.app (); Miniht.app ();
    Cloudstore.app ();
  ]

let find_app name =
  match List.find_opt (fun a -> String.equal a.App.name name) (apps ()) with
  | Some a -> Ok a
  | None ->
    Error
      (Printf.sprintf "unknown app %S (expected one of: %s)" name
         (String.concat ", " (List.map (fun a -> a.App.name) (apps ()))))

(* ------------------------------------------------------------------ *)
(* arguments *)

let app_conv =
  Arg.conv
    ( (fun s -> find_app s |> Result.map_error (fun e -> `Msg e)),
      fun ppf a -> Format.pp_print_string ppf a.App.name )

let app_arg =
  Arg.(required & opt (some app_conv) None & info [ "a"; "app" ] ~docv:"APP"
         ~doc:"Application: adder, bufover, msg_server, miniht or cloudstore.")

let model_conv =
  Arg.conv
    ( (fun s -> Model.of_string s |> Result.map_error (fun e -> `Msg e)),
      fun ppf m -> Format.pp_print_string ppf (Model.name m) )

let model_arg =
  Arg.(required & opt (some model_conv) None & info [ "m"; "model" ] ~docv:"MODEL"
         ~doc:(Printf.sprintf "Determinism model: %s."
                 (String.concat ", " Model.all_names)))

let seed_arg =
  Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED"
         ~doc:"Production-run seed (schedule and input randomness).")

let cause_arg =
  Arg.(value & opt (some string) None & info [ "cause" ] ~docv:"ID"
         ~doc:"Require the primary root cause to be this catalog id.")

let exclusive_arg =
  Arg.(value & flag & info [ "exclusive" ]
         ~doc:"Require the failing run to exhibit exactly one root cause.")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every log entry.")

let replays_arg =
  Arg.(value & opt int 5 & info [ "replays" ] ~docv:"K"
         ~doc:"Independent replay searches averaged by the assessment.")

let out_arg =
  Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE"
         ~doc:"Also save the recording to $(docv).")

let in_arg =
  Arg.(required & opt (some string) None & info [ "i"; "in" ] ~docv:"FILE"
         ~doc:"Log file previously saved by record --out.")

let faults_conv =
  Arg.conv
    ( (fun s -> Mvm.Fault.of_string s |> Result.map_error (fun e -> `Msg e)),
      fun ppf p -> Format.pp_print_string ppf (Mvm.Fault.to_string p) )

let faults_arg =
  Arg.(value & opt (some faults_conv) None & info [ "faults" ] ~docv:"PLAN"
         ~doc:"Run under a deterministic fault plan, e.g. \
               $(b,seed=7,drop:ack_0:0.25,dup:repl:0.1,stall:2:50-90). \
               Actions: drop/dup/perturb CHAN:PROB, delay CHAN:FROM-TO, \
               stall TID:FROM-TO, crash TID:STEP. Apps with a node map \
               also take node-granular clauses — \
               $(b,partition:a+b|c:FROM-TO), $(b,nodecrash:NODE:STEP), \
               $(b,noderestart:NODE:FROM-TO) — which desugar to the \
               primitives above against the app's topology.")

let jobs_arg =
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Worker domains for seed scans and searched replays. Outcomes \
               are identical at any $(docv); only wall-clock time changes. \
               Searches whose per-attempt cost is below the domain-spawn \
               cost run sequentially regardless of $(docv).")

let chunk_arg =
  Arg.(value & opt (some int) None & info [ "chunk" ] ~docv:"K"
         ~doc:"Attempt indices a parallel worker claims per grab from the \
               shared frontier (default 4). Higher amortises contention on \
               short attempts; lower smooths load imbalance on long ones. \
               Wall-clock only — outcomes are identical at any $(docv).")

let spawn_cost_arg =
  Arg.(value & opt (some int) None & info [ "spawn-cost" ] ~docv:"STEPS"
         ~doc:"Min-work threshold for parallel search, in interpreter steps \
               (default 15000): when one attempt is estimated cheaper than \
               this, the search runs sequentially regardless of $(b,--jobs) \
               — fan-out would cost more than it saves. Wall-clock only.")

(* fold the scheduler flags over the default knobs *)
let tuning_of chunk spawn_cost =
  let t = Ddet_replay.Par_search.default_tuning in
  let t =
    match chunk with
    | None -> t
    | Some k -> { t with Ddet_replay.Par_search.chunk = max 1 k }
  in
  match spawn_cost with
  | None -> t
  | Some c -> { t with Ddet_replay.Par_search.spawn_cost_steps = max 0 c }

let io_faults_conv =
  Arg.conv
    ( (fun s ->
        Ddet_record.Faulty_store.of_string s
        |> Result.map_error (fun e -> `Msg e)),
      fun ppf p ->
        Format.pp_print_string ppf (Ddet_record.Faulty_store.to_string p) )

let io_faults_arg =
  Arg.(value & opt (some io_faults_conv) None & info [ "io-faults" ]
         ~docv:"PLAN"
         ~doc:"Save the recording through a deterministically faulty store, \
               e.g. $(b,seed=7,enospc:4096,torn:3:0.5,fsyncfail:2:t). \
               Clauses: enospc:BYTES, torn:OP:KEEP, fsyncfail:OP[:t], \
               renamefail:OP[:t], flaky:PROB, slow:FROM-TO:MS. Transient \
               faults are absorbed by bounded retry with backoff; permanent \
               ones surface as a typed storage error and leave a \
               salvageable prefix on disk (segmented saves).")

let overhead_budget_arg =
  Arg.(value & opt (some float) None & info [ "overhead-budget" ] ~docv:"X"
         ~doc:"Recording-overhead SLO as a factor, e.g. $(b,1.3) for \
               \"at most 1.3x\". An overhead governor tracks the modeled \
               cost during recording and dials fidelity down a degradation \
               ladder (full, value, sync, failure-only) when the budget is \
               threatened, dialling back up when pressure clears. Degraded \
               windows are marked in the log; replay treats them as search \
               regions and the assessment reports the honest DF floor.")

let checkpoint_every_arg =
  Arg.(value & opt int 32 & info [ "checkpoint-every" ] ~docv:"N"
         ~doc:"Persist the checkpoint frontier every $(docv)-th judged \
               attempt (default 32). Lower values lose less progress on a \
               crash but cost more: BENCH_crash.json measured every-1 at \
               roughly 36x the checkpointing overhead of the default \
               every-32 throttle, for at most 31 attempts of extra replay \
               work after a crash.")

let salvage_arg =
  Arg.(value & flag & info [ "salvage" ]
         ~doc:"Load the log in salvage mode: keep the longest valid prefix \
               of a damaged file, report the damage, and attempt a degraded \
               replay instead of refusing.")

let deadline_arg =
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SEC"
         ~doc:"Wall-clock budget for the replay search, in seconds. When it \
               expires the search stops cooperatively and degrades to its \
               best partial candidate (exit code 3) or reports exhaustion \
               (exit code 5).")

let checkpoint_arg =
  Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE"
         ~doc:"Persist the search frontier to $(docv) (atomic, CRC-sealed \
               writes) so a killed search can be continued with \
               $(b,--resume).")

let resume_arg =
  Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"FILE"
         ~doc:"Continue a search from a checkpoint written by \
               $(b,--checkpoint). The resumed search provably reaches the \
               same outcome as an uninterrupted run.")

let attempts_arg =
  Arg.(value & opt (some int) None & info [ "attempts" ] ~docv:"N"
         ~doc:"Override the search budget's maximum attempts.")

let segments_arg =
  Arg.(value & opt (some int) None & info [ "segments" ] ~docv:"N"
         ~doc:"Save the recording segmented, $(docv) entries per segment, \
               instead of monolithic: crash-tolerant persistence where a \
               torn write loses at most one unsealed segment. Produces \
               FILE.header, FILE.NNNN.seg and FILE.manifest; $(b,replay) \
               detects the segment set automatically.")

let shards_arg =
  Arg.(value & flag & info [ "shards" ]
         ~doc:"Save the recording sharded per node — one independently \
               loadable log per node of the app's deployment map plus a \
               causal manifest (FILE.NODE.shard each, FILE.causal): the \
               on-disk shape of distributed evidence, where shards are \
               lost or corrupted independently. Requires an app with a \
               node map (msg_server, cloudstore); $(b,replay) detects \
               the shard set automatically.")

let lose_node_arg =
  Arg.(value & opt_all string [] & info [ "lose-node" ] ~docv:"NODE"
         ~doc:"When replaying a sharded recording, treat $(docv)'s shard \
               as lost without touching the file — simulate a node whose \
               evidence never made it out. Repeatable. Surviving shards \
               replay as partial evidence: the lost node's schedule and \
               inputs become search dimensions.")

let static_steer_arg =
  Arg.(value & flag & info [ "static-steer" ]
         ~doc:"Bound the partial-evidence search with the static \
               communication graph: only lost-node decision points that \
               can statically reach a surviving node are explored, and \
               inputs of lost threads with no static path to a survivor \
               are pinned to a canonical value instead of searched. \
               Sharded recordings only.")

(* every diagnostic goes through here, so stderr is uniformly greppable
   for the tool name — asserted by test_cli *)
let err fmt = Printf.eprintf ("ddreplay: " ^^ fmt ^^ "\n")

(* resume files and engine/seed mismatches surface as Invalid_argument
   from the search layer; turn them into diagnostics, not backtraces *)
let guard f =
  try f () with Invalid_argument msg ->
    err "%s" msg;
    1

let with_resume resume k =
  match resume with
  | None -> k None
  | Some path -> (
    match Ddet_replay.Checkpoint.load path with
    | Ok c -> k (Some c)
    | Error msg ->
      err "cannot resume from %s: %s" path msg;
      1)

(* ------------------------------------------------------------------ *)
(* command bodies *)

let describe_run (app : App.t) (r : Mvm.Interp.result) =
  Printf.printf "status:  %s\n" (Mvm.Interp.status_to_string r.Mvm.Interp.status);
  Printf.printf "steps:   %d\n" r.Mvm.Interp.steps;
  List.iter
    (fun (chan, vs) ->
      Printf.printf "output %s: %s\n" chan
        (String.concat ", " (List.map Mvm.Value.to_string vs)))
    r.Mvm.Interp.outputs;
  (match r.Mvm.Interp.failure with
  | Some f -> Printf.printf "failure: %s\n" (Mvm.Failure.to_string f)
  | None -> Printf.printf "failure: none\n");
  match Ddet_metrics.Root_cause.observed app.App.catalog r with
  | [] -> ()
  | causes ->
    Printf.printf "root causes: %s\n"
      (String.concat ", "
         (List.map (fun c -> c.Ddet_metrics.Root_cause.id) causes))

let cmd_list () =
  Printf.printf "applications:\n";
  List.iter (fun a -> Printf.printf "  %-12s %s\n" a.App.name a.App.descr) (apps ());
  Printf.printf "\ndeterminism models:\n";
  List.iter
    (fun name ->
      match Model.of_string name with
      | Ok m -> Printf.printf "  %-14s (%s)\n" name (Model.reference m)
      | Error _ -> ())
    Model.all_names;
  0

let cmd_run app seed faults =
  describe_run app (App.production_run ?faults app ~seed);
  0

let config_with ?deadline ?attempts ?overhead_budget ~tuning jobs =
  let base = { Config.default with Config.overhead_budget } in
  let b = base.Config.budget in
  let b = { b with Ddet_replay.Search.deadline_s = deadline } in
  let b =
    match attempts with
    | None -> b
    | Some n -> { b with Ddet_replay.Search.max_attempts = n }
  in
  { base with Config.jobs = max 1 jobs; tuning; budget = b }

let cmd_find app cause exclusive faults jobs chunk spawn_cost checkpoint every
    resume =
  guard @@ fun () ->
  let checkpoint =
    Option.map (Ddet_replay.Checkpoint.sink ~every:(max 1 every)) checkpoint
  in
  with_resume resume @@ fun resume ->
  match
    Workload.find_failing_seed ?cause ~exclusive ?faults ~jobs:(max 1 jobs)
      ~tuning:(tuning_of chunk spawn_cost) ?checkpoint ?resume app
  with
  | Some (seed, r) ->
    Printf.printf "seed %d fails:\n" seed;
    describe_run app r;
    0
  | None ->
    err "no failing seed found in the scanned range";
    Ddet_replay.Replayer.exit_deadline

let cmd_record app model seed verbose out faults segments shards io_faults
    overhead_budget =
  guard @@ fun () ->
  if shards && segments <> None then begin
    err "--shards and --segments are mutually exclusive";
    1
  end
  else
  let config = { Config.default with Config.overhead_budget } in
  let prepared = Session.prepare ~config model app in
  let original, log, causal =
    if shards then
      let original, log, causal = Session.record_dist ?faults prepared ~seed in
      (original, log, Some causal)
    else
      let original, log = Session.record ?faults prepared ~seed in
      (original, log, None)
  in
  describe_run app original;
  Printf.printf "\nlog: %d entries, %d payload bytes, modeled overhead %.2fx\n"
    (Ddet_record.Log.entry_count log)
    (Ddet_record.Log.payload_bytes log)
    (Ddet_record.Cost_model.overhead Ddet_record.Cost_model.default log);
  (match Ddet_record.Log.governed_windows log with
  | [] -> ()
  | ws ->
    Printf.printf
      "governor: %d degraded window(s); replay searches those regions\n"
      (List.length ws));
  if verbose then Format.printf "%a@." Ddet_record.Log.pp log;
  match out with
  | None -> 0
  | Some path ->
    (* The save path is where hostile I/O bites: route it through the
       pluggable store, optionally wrapped in the deterministic fault
       injector, with bounded retry absorbing transient faults. *)
    let stats, store =
      match io_faults with
      | None -> (None, Ddet_record.Store.default ())
      | Some plan ->
        let faulty, stats =
          Ddet_record.Faulty_store.wrap plan (Ddet_record.Store.local ())
        in
        (Some stats, Ddet_record.Retry.store faulty)
    in
    match causal with
    | Some causal ->
      (* one log per node plus the causal manifest; individual shard
         failures are survivable by design, so report and carry on *)
      (* static shard priority: the most diagnostic nodes' shards are
         written first, so a store dying mid-save keeps them *)
      let priority = Session.shard_priority prepared in
      let report =
        Ddet_record.Sharded_log.save_via ~priority store ~base:path ~causal log
      in
      (match stats with
      | Some s ->
        Format.printf "io-faults: %a@." Ddet_record.Faulty_store.pp_stats (s ())
      | None -> ());
      Format.printf "@[<v>%a@]@." Ddet_record.Sharded_log.pp_save_report report;
      if Ddet_record.Sharded_log.save_ok report then begin
        Printf.printf "saved sharded to %s (.NODE.shard per node, .causal)\n"
          path;
        0
      end
      else begin
        err
          "sharded save incomplete; surviving shards replay as partial \
           evidence";
        Ddet_replay.Replayer.exit_salvaged
      end
    | None ->
    let saved =
      match segments with
      | Some n ->
        Ddet_record.Log_segments.save_via store ~segment_entries:(max 1 n)
          path log
      | None -> Ddet_record.Log_io.save_via store path log
    in
    (match stats with
    | Some s ->
      Format.printf "io-faults: %a@." Ddet_record.Faulty_store.pp_stats (s ())
    | None -> ());
    (match saved with
    | Ok () ->
      (match segments with
      | Some _ ->
        Printf.printf "saved segmented to %s (.header, .NNNN.seg, .manifest)\n"
          path
      | None -> Printf.printf "saved to %s\n" path);
      0
    | Error e ->
      err "save failed: %s" (Ddet_record.Store.error_to_string e);
      (match segments with
      | Some _ ->
        err
          "segments sealed before the failure remain at %s; \
           replay recovers that prefix automatically"
          path
      | None -> ());
      Ddet_replay.Replayer.exit_salvaged)

(* Monolithic file if it exists; otherwise a segmented base path. Either
   way the result is (log, damaged) or an error. *)
let load_any ~salvage file =
  if Sys.file_exists file then begin
    let mode =
      if salvage then Ddet_record.Log_io.Salvage else Ddet_record.Log_io.Strict
    in
    match Ddet_record.Log_io.load_report ~mode file with
    | Error msg -> Error msg
    | Ok (log, damage) ->
      if Ddet_record.Log_io.is_damaged damage then
        Format.printf "%a@." Ddet_record.Log_io.pp_damage damage;
      Ok (log, Ddet_record.Log_io.is_damaged damage)
  end
  else if Ddet_record.Log_segments.exists file then begin
    match Ddet_record.Log_segments.load file with
    | Error msg -> Error msg
    | Ok (log, recovery) ->
      if Ddet_record.Log_segments.is_damaged recovery then
        Format.printf "%a@." Ddet_record.Log_segments.pp_recovery recovery;
      Ok (log, Ddet_record.Log_segments.is_damaged recovery)
  end
  else Error "no such file (and no segmented recording at that base path)"

(* Replay over a sharded recording: load surviving shards, stitch, and
   either run the model's own replay (complete evidence) or degrade to
   partial-evidence search. The exit-code contract here: a reproduction
   from missing/salvaged shards is still 0 — honestly-searched-around
   evidence is a success, reported as degraded DF — exhaustion with a
   best partial is 3, and an all-shards-lost set is 4. *)
let replay_sharded app model file lose jobs chunk spawn_cost deadline
    checkpoint every resume attempts static_steer =
  match Ddet_record.Sharded_log.load ~lose file with
  | Error msg ->
    err "cannot load %s: %s" file msg;
    1
  | Ok loaded ->
    let st = Ddet_replay.Stitch.stitch loaded in
    Format.printf "@[<v>%a@]@." Ddet_replay.Stitch.pp st;
    if Ddet_record.Sharded_log.all_lost loaded then begin
      err "every shard is lost or corrupt: no evidence left to replay";
      Ddet_replay.Replayer.exit_salvaged
    end
    else begin
      let checkpoint =
        Option.map (Ddet_replay.Checkpoint.sink ~every:(max 1 every)) checkpoint
      in
      with_resume resume @@ fun resume ->
      let config =
        config_with ?deadline ?attempts ~tuning:(tuning_of chunk spawn_cost)
          jobs
      in
      let prepared = Session.prepare ~config model app in
      let outcome =
        Session.replay_stitched ?checkpoint ?resume ~static_steer prepared st
      in
      Format.printf "%a@." Ddet_replay.Replayer.pp_outcome outcome;
      (match outcome.Ddet_replay.Replayer.result with
      | Some r ->
        print_newline ();
        describe_run app r
      | None -> ());
      Ddet_replay.Replayer.exit_code outcome
    end

let cmd_replay app model file salvage lose jobs chunk spawn_cost deadline
    checkpoint every resume attempts static_steer =
  guard @@ fun () ->
  (* detection order: a monolithic file wins, then a shard set at the
     base path, then a segmented recording *)
  if (not (Sys.file_exists file)) && Ddet_record.Sharded_log.exists file then
    replay_sharded app model file lose jobs chunk spawn_cost deadline
      checkpoint every resume attempts static_steer
  else if lose <> [] then begin
    err "--lose-node applies to sharded recordings; %s is not one" file;
    1
  end
  else if static_steer then begin
    err "--static-steer applies to sharded recordings; %s is not one" file;
    1
  end
  else
  match load_any ~salvage file with
  | Error msg ->
    err "cannot load %s: %s" file msg;
    1
  | Ok (log, damaged) ->
    let checkpoint =
      Option.map (Ddet_replay.Checkpoint.sink ~every:(max 1 every)) checkpoint
    in
    with_resume resume @@ fun resume ->
    let config =
      config_with ?deadline ?attempts ~tuning:(tuning_of chunk spawn_cost) jobs
    in
    let prepared = Session.prepare ~config model app in
    let outcome = Session.replay ?checkpoint ?resume prepared log in
    Format.printf "%a@." Ddet_replay.Replayer.pp_outcome outcome;
    (match outcome.Ddet_replay.Replayer.result with
    | Some r ->
      print_newline ();
      describe_run app r
    | None -> ());
    Ddet_replay.Replayer.exit_code ~damaged outcome

(* The distributed experiment in one command: record sharded per node,
   simulate the named nodes' shards never making it out, stitch the
   survivors and search — the assessment then reports per-node DF and
   the honest floor. The shard set lives under a temp base, removed
   afterwards. *)
let debug_sharded ~config ?faults ~static_steer app model seed lose =
  let prepared = Session.prepare ~config model app in
  let original, log, causal = Session.record_dist ?faults prepared ~seed in
  let base = Filename.temp_file "ddreplay" ".dist" in
  let cleanup () =
    let dir = Filename.dirname base and name = Filename.basename base in
    Array.iter
      (fun f ->
        if String.starts_with ~prefix:name f then
          try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir)
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  let report =
    Ddet_record.Sharded_log.save_via (Ddet_record.Store.default ()) ~base
      ~causal log
  in
  if not (Ddet_record.Sharded_log.save_ok report) then begin
    err "sharded save failed:";
    Format.eprintf "@[<v>%a@]@." Ddet_record.Sharded_log.pp_save_report report;
    1
  end
  else
    match Ddet_record.Sharded_log.load ~lose base with
    | Error msg ->
      err "cannot reload shard set: %s" msg;
      1
    | Ok loaded ->
      let st = Ddet_replay.Stitch.stitch loaded in
      Format.printf "@[<v>%a@]@." Ddet_replay.Stitch.pp st;
      if Ddet_record.Sharded_log.all_lost loaded then begin
        err "every shard is lost or corrupt: no evidence left to replay";
        Ddet_replay.Replayer.exit_salvaged
      end
      else begin
        let outcome = Session.replay_stitched ~static_steer prepared st in
        let a =
          Session.assess ~evidence:st.Ddet_replay.Stitch.evidence prepared
            ~original ~log outcome
        in
        Format.printf "%a@." Ddet_metrics.Utility.pp a;
        Ddet_replay.Replayer.exit_code outcome
      end

let cmd_debug app model seed replays faults jobs chunk spawn_cost deadline
    checkpoint every resume overhead_budget shards lose static_steer =
  guard @@ fun () ->
  let config =
    config_with ?deadline ?overhead_budget ~tuning:(tuning_of chunk spawn_cost)
      jobs
  in
  if shards || lose <> [] then
    debug_sharded ~config ?faults ~static_steer app model seed lose
  else if static_steer then begin
    err "--static-steer requires --shards or --lose-node";
    1
  end
  else
  match (checkpoint, resume) with
  | None, None ->
    let a =
      Session.experiment_ensemble ~config ?faults ~replays model app ~seed
    in
    Format.printf "%a@." Ddet_metrics.Utility.pp a;
    0
  | _ ->
    (* checkpointing identifies ONE search; run a single replay rather
       than the seed-varied ensemble so the frontier stays meaningful *)
    let checkpoint =
      Option.map (Ddet_replay.Checkpoint.sink ~every:(max 1 every)) checkpoint
    in
    with_resume resume @@ fun resume ->
    let prepared = Session.prepare ~config model app in
    let original, log = Session.record ?faults prepared ~seed in
    let outcome = Session.replay ?checkpoint ?resume prepared log in
    let a = Session.assess prepared ~original ~log outcome in
    Format.printf "%a@." Ddet_metrics.Utility.pp a;
    Ddet_replay.Replayer.exit_code outcome

let cmd_classify app =
  let prepared = Session.prepare (Model.Rcse Model.Code_based) app in
  let training = Session.training_runs Config.default app in
  Format.printf "taint profile (%d training runs):@.%a@."
    (List.length training)
    Ddet_analysis.Taint_profile.pp
    (Ddet_analysis.Taint_profile.of_results training);
  (match prepared.Session.plane_map with
  | Some map ->
    Printf.printf "classification (threshold %.1f B/step):\n"
      Config.default.Config.plane_threshold;
    List.iter
      (fun (fname, plane) ->
        Printf.printf "  %-24s %s\n" fname (Ddet_analysis.Plane.to_string plane))
      (Ddet_analysis.Plane.to_assoc map)
  | None -> ());
  (match app.App.control_plane with
  | [] -> ()
  | truth ->
    Printf.printf "ground truth control plane: %s\n" (String.concat ", " truth));
  0

(* a deliberately broken program for exercising the linter from the CLI:
   Label.program validates names but not index ranges, lock balance,
   atomic restrictions or reachability, so this constructs fine *)
let lint_demo () =
  Mvm.Dsl.(
    program ~name:"lint-demo"
      ~regions:[ scalar "c" (Mvm.Value.int 0); array "buf" 4 (Mvm.Value.int 0) ]
      ~inputs:[] ~main:"main"
      [
        func "main" []
          [
            lock "m";
            lock "m";
            store "buf" (i 9) (i 1);
            atomic [ recv "x" "never_sent" ];
            return (i 0);
            store_g "c" (i 1);
          ];
      ])

(* the distributed counterpart of lint_demo: three single-threaded nodes
   in a static cross-node wait cycle — left waits for right's ping, right
   waits for left's pong, main waits for left's done marker. Nothing is
   ever sent, so `analyze --demo --nodes` must exit 1 on comm-deadlock. *)
let dist_demo () =
  let labeled =
    Mvm.Dsl.(
      program ~name:"dist-deadlock-demo" ~regions:[] ~inputs:[] ~main:"main"
        [
          func "main" []
            [ spawn "left" []; spawn "right" []; recv "x" "done0" ];
          func "left" []
            [ recv "p" "ping"; send "pong" (i 1); send "done0" (i 1) ];
          func "right" [] [ recv "q" "pong"; send "ping" (i 1) ];
        ])
  in
  let map =
    Mvm.Node.make
      ~nodes:[ "a"; "b"; "c" ]
      ~assign:[ ("main", "a"); ("left", "b"); ("right", "c") ]
  in
  (labeled, map)

let cmd_analyze app demo threshold nodes json =
  let target =
    if demo then
      if nodes then
        let labeled, map = dist_demo () in
        Ok (labeled, Some map, [])
      else Ok (lint_demo (), None, [])
    else
      match app with
      | Some a ->
        if nodes then (
          match a.App.nodes with
          | Some m -> Ok (a.App.labeled, Some m, a.App.control_plane)
          | None ->
            Error
              (Printf.sprintf "analyze --nodes: app %s has no node map"
                 a.App.name))
        else Ok (a.App.labeled, None, a.App.control_plane)
      | None -> Error "analyze: pass --app APP or --demo"
  in
  match target with
  | Error e ->
    err "%s" e;
    1
  | Ok (labeled, nmap, truth) ->
    let report =
      Ddet_static.Static_report.analyze ~threshold_bytes:threshold ?nodes:nmap
        labeled
    in
    if json then print_endline (Ddet_static.Static_report.to_json report)
    else begin
      Format.printf "%a@." Ddet_static.Static_report.pp report;
      match truth with
      | [] -> ()
      | t ->
        Printf.printf "ground truth control plane: %s\n" (String.concat ", " t)
    end;
    if Ddet_static.Static_report.has_lint_errors report then 1 else 0

let cmd_invariants app =
  let training = Session.training_runs Config.default app in
  let inv = Ddet_analysis.Invariants.infer training in
  Format.printf "invariants from %d passing training runs:@.%a@."
    (List.length training) Ddet_analysis.Invariants.pp inv;
  0

(* ------------------------------------------------------------------ *)
(* report: run one fully traced session — record, replay, assess — and
   print its profile. The tracer is the product here: spans time the
   phases, counters expose what each layer did, and the exports are the
   human table, --json, and --trace (Chrome trace-event JSON). *)

(* Pre-register the standard counter set so every report exposes the
   same schema: a counter nothing bumped reads 0 instead of vanishing
   from the output. *)
let standard_counters =
  [
    "record.entries.sched"; "record.entries.value"; "record.entries.sync";
    "record.entries.book"; "govern.transitions"; "govern.dropped";
    "search.attempts"; "search.steps"; "search.pruned";
    "search.deadline_hits"; "search.incidents"; "stitch.edges_enforced";
    "stitch.edges_dropped"; "store.retries"; "store.give_ups";
    "oracle.cursor_stalls"; "oracle.steer_hot_picks"; "oracle.cold_pins";
  ]

(* the debug flow without its prints: every phase runs under the ambient
   tracer, and the outcome comes back for the report header *)
let run_traced ~config ?faults ~static_steer app model seed lose shards =
  let prepared = Session.prepare ~config model app in
  if shards || lose <> [] then begin
    let original, log, causal = Session.record_dist ?faults prepared ~seed in
    let base = Filename.temp_file "ddreplay" ".report" in
    let cleanup () =
      let dir = Filename.dirname base and name = Filename.basename base in
      Array.iter
        (fun f ->
          if String.starts_with ~prefix:name f then
            try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir)
    in
    Fun.protect ~finally:cleanup @@ fun () ->
    let report =
      Ddet_record.Sharded_log.save_via (Ddet_record.Store.default ()) ~base
        ~causal log
    in
    if not (Ddet_record.Sharded_log.save_ok report) then
      Error "sharded save failed"
    else
      match Ddet_record.Sharded_log.load ~lose base with
      | Error msg -> Error msg
      | Ok loaded ->
        if Ddet_record.Sharded_log.all_lost loaded then
          Error "every shard is lost or corrupt: no evidence left to replay"
        else begin
          let st = Ddet_replay.Stitch.stitch loaded in
          let outcome = Session.replay_stitched ~static_steer prepared st in
          ignore
            (Session.assess ~evidence:st.Ddet_replay.Stitch.evidence prepared
               ~original ~log outcome);
          Ok outcome
        end
  end
  else begin
    let original, log = Session.record ?faults prepared ~seed in
    let outcome = Session.replay prepared log in
    ignore (Session.assess prepared ~original ~log outcome);
    Ok outcome
  end

let wall_counter name =
  let l = String.length name in
  l >= 3 && String.equal (String.sub name (l - 3) 3) "_ns"

let report_json ~mask ~app ~model outcome t =
  let module T = Ddet_obs.Tracer in
  let b = Buffer.create 4096 in
  let ns v = if mask then "null" else Int64.to_string v in
  Buffer.add_string b
    (Printf.sprintf
       "{\"schema\":1,\"app\":\"%s\",\"model\":\"%s\",\"reproduced\":%b,\"attempts\":%d,\n"
       app.App.name (Model.name model)
       (outcome.Ddet_replay.Replayer.result <> None)
       outcome.Ddet_replay.Replayer.attempts);
  Buffer.add_string b " \"spans\":[";
  List.iteri
    (fun i (s : T.span_stat) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "\n  {\"name\":\"%s\",\"calls\":%d,\"total_ns\":%s}"
           s.T.sname s.T.calls (ns s.T.total_ns)))
    (T.profile t);
  Buffer.add_string b "],\n \"counters\":[";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "\n  {\"name\":\"%s\",\"value\":%s}" name
           (if mask && wall_counter name then "null" else string_of_int v)))
    (T.counters t);
  Buffer.add_string b
    (Printf.sprintf "],\n \"events\":%d,\"dropped\":%d}\n" (T.length t)
       (T.dropped t));
  Buffer.contents b

let report_human ~app ~model outcome t =
  let module T = Ddet_obs.Tracer in
  Printf.printf "session: %s under %s — %s, %d attempt(s)\n\n" app.App.name
    (Model.name model)
    (match outcome.Ddet_replay.Replayer.result with
    | Some _ -> "reproduced"
    | None -> "not reproduced")
    outcome.Ddet_replay.Replayer.attempts;
  let prof =
    List.sort
      (fun (a : T.span_stat) b -> Int64.compare b.T.total_ns a.T.total_ns)
      (T.profile t)
  in
  Printf.printf "%-28s %8s %12s\n" "phase" "calls" "total ms";
  List.iter
    (fun (s : T.span_stat) ->
      Printf.printf "%-28s %8d %12.3f\n" s.T.sname s.T.calls
        (Int64.to_float s.T.total_ns /. 1e6))
    prof;
  Printf.printf "\n%-28s %12s\n" "counter" "value";
  List.iter
    (fun (name, v) ->
      if wall_counter name then
        Printf.printf "%-28s %9.3f ms\n" name (float_of_int v /. 1e6)
      else Printf.printf "%-28s %12d\n" name v)
    (T.counters t);
  Printf.printf "\nevents: %d (%d dropped)\n" (T.length t) (T.dropped t)

let cmd_report app model seed faults jobs chunk spawn_cost overhead_budget
    shards lose static_steer json mask trace =
  guard @@ fun () ->
  let config =
    config_with ?overhead_budget ~tuning:(tuning_of chunk spawn_cost) jobs
  in
  let module T = Ddet_obs.Tracer in
  let t = T.create () in
  List.iter (fun n -> ignore (T.counter t n)) standard_counters;
  let res =
    T.with_current t @@ fun () ->
    run_traced ~config ?faults ~static_steer app model seed lose shards
  in
  match res with
  | Error msg ->
    err "%s" msg;
    1
  | Ok outcome ->
    (match trace with
    | Some file ->
      Out_channel.with_open_bin file (fun oc ->
          Out_channel.output_string oc (T.to_chrome_json t));
      if not json then Printf.printf "trace: %s\n" file
    | None -> ());
    if json then print_string (report_json ~mask ~app ~model outcome t)
    else report_human ~app ~model outcome t;
    0

(* ------------------------------------------------------------------ *)
(* command wiring *)

let exits = Cmd.Exit.defaults

(* the replay exit-code contract (Ddet_replay.Replayer.exit_code), shown
   in --help for every command that searches *)
let search_exits =
  Cmd.Exit.info Ddet_replay.Replayer.exit_ok
    ~doc:"the recorded failure (or seed scan target) was reproduced — \
          including from partial shard evidence: a sharded replay that \
          reproduces despite missing or salvaged shards still exits 0, \
          with the degradation reported as per-node DF, not as failure."
  :: Cmd.Exit.info Ddet_replay.Replayer.exit_partial
       ~doc:"budget exhausted; the replay degraded to its best partial \
             candidate (the DF 1/n floor). For sharded recordings: the \
             partial-evidence search did not reproduce the failure but \
             has a closest candidate to show."
  :: Cmd.Exit.info Ddet_replay.Replayer.exit_salvaged
       ~doc:"the log was damaged and salvaged; the replay ran against the \
             recovered prefix. For sharded recordings: every shard was \
             lost or corrupt — no evidence left to replay at all."
  :: Cmd.Exit.info Ddet_replay.Replayer.exit_deadline
       ~doc:"deadline or budget ran out with nothing to show."
  :: List.filter
       (* our 0 entry replaces the stock "on success" one *)
       (fun e -> Cmd.Exit.info_code e <> Ddet_replay.Replayer.exit_ok)
       Cmd.Exit.defaults

let list_cmd =
  Cmd.v (Cmd.info "list" ~exits ~doc:"List applications and models.")
    Term.(const cmd_list $ const ())

let run_cmd =
  Cmd.v (Cmd.info "run" ~exits ~doc:"Execute and judge one production run.")
    Term.(const cmd_run $ app_arg $ seed_arg $ faults_arg)

let find_cmd =
  Cmd.v
    (Cmd.info "find" ~exits:search_exits
       ~doc:"Scan seeds for a failing production run.")
    Term.(const cmd_find $ app_arg $ cause_arg $ exclusive_arg $ faults_arg
          $ jobs_arg $ chunk_arg $ spawn_cost_arg $ checkpoint_arg
          $ checkpoint_every_arg $ resume_arg)

let record_cmd =
  Cmd.v (Cmd.info "record" ~exits ~doc:"Record a production run under a model.")
    Term.(const cmd_record $ app_arg $ model_arg $ seed_arg $ verbose_arg
          $ out_arg $ faults_arg $ segments_arg $ shards_arg $ io_faults_arg
          $ overhead_budget_arg)

let replay_cmd =
  Cmd.v
    (Cmd.info "replay" ~exits:search_exits
       ~doc:"Replay a saved log (monolithic file, per-node shard set or \
             segmented base path — detected automatically) under its \
             model. Sharded recordings with missing or corrupt shards \
             degrade to partial-evidence search: surviving nodes' logs \
             are enforced, lost nodes are searched.")
    Term.(const cmd_replay $ app_arg $ model_arg $ in_arg $ salvage_arg
          $ lose_node_arg $ jobs_arg $ chunk_arg $ spawn_cost_arg
          $ deadline_arg $ checkpoint_arg $ checkpoint_every_arg $ resume_arg
          $ attempts_arg $ static_steer_arg)

let debug_cmd =
  Cmd.v
    (Cmd.info "debug" ~exits:search_exits
       ~doc:"Record, replay and assess: overhead, DF, DE, DU.")
    Term.(const cmd_debug $ app_arg $ model_arg $ seed_arg $ replays_arg
          $ faults_arg $ jobs_arg $ chunk_arg $ spawn_cost_arg $ deadline_arg
          $ checkpoint_arg $ checkpoint_every_arg $ resume_arg
          $ overhead_budget_arg $ shards_arg $ lose_node_arg
          $ static_steer_arg)

let classify_cmd =
  Cmd.v
    (Cmd.info "classify" ~exits
       ~doc:"Train and show the control/data-plane classification.")
    Term.(const cmd_classify $ app_arg)

let invariants_cmd =
  Cmd.v
    (Cmd.info "invariants" ~exits ~doc:"Train and show dynamic invariants.")
    Term.(const cmd_invariants $ app_arg)

let analyze_app_arg =
  Arg.(value & opt (some app_conv) None & info [ "a"; "app" ] ~docv:"APP"
         ~doc:"Application to analyze: adder, bufover, msg_server, miniht \
               or cloudstore.")

let demo_arg =
  Arg.(value & flag & info [ "demo" ]
         ~doc:"Analyze a built-in deliberately broken program instead of an \
               application (shows every linter rule class firing).")

let threshold_arg =
  Arg.(value & opt int Ddet_static.Splane.default_threshold
       & info [ "threshold" ] ~docv:"BYTES"
           ~doc:"Static plane classification threshold in bytes: functions \
                 whose heaviest input-derived value strictly exceeds it are \
                 data-plane.")

let nodes_flag_arg =
  Arg.(value & flag & info [ "nodes" ]
         ~doc:"Run the cross-node analysis against the app's node map: \
               placement-refined race candidates, per-node views, shard \
               write priority and the communication lint (static \
               deadlock/orphan detection). With $(b,--demo), analyzes a \
               built-in cross-node deadlock instead.")

let json_arg =
  Arg.(value & flag & info [ "json" ]
         ~doc:"Emit the report as one JSON object (races, planes, lints, \
               per-node views) instead of text.")

let report_json_arg =
  Arg.(value & flag & info [ "json" ]
         ~doc:"Emit the profile as one JSON object (spans, counters, event \
               and drop totals) instead of the table.")

let mask_arg =
  Arg.(value & flag & info [ "mask" ]
         ~doc:"Mask wall-time quantities (span durations, *_ns counters) in \
               the output: what remains is deterministic for a given seed, \
               byte-for-byte — the trace-as-evidence contract.")

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Also write the session's trace to $(docv) as Chrome \
               trace-event JSON: open it in about:tracing or Perfetto.")

let report_cmd =
  Cmd.v
    (Cmd.info "report" ~exits
       ~doc:"Run one fully traced session (record, replay, assess) and \
             print its observability profile: phase spans, per-layer \
             counters — recorder fidelity tiers, governor ladder moves, \
             store retries, search attempts/prunes, stitcher verdicts, \
             oracle steering — and drop accounting. With $(b,--shards) or \
             $(b,--lose-node), the session is distributed and the profile \
             covers the stitch phase too.")
    Term.(const cmd_report $ app_arg $ model_arg $ seed_arg $ faults_arg
          $ jobs_arg $ chunk_arg $ spawn_cost_arg $ overhead_budget_arg
          $ shards_arg $ lose_node_arg $ static_steer_arg $ report_json_arg
          $ mask_arg $ trace_arg)

let analyze_cmd =
  Cmd.v
    (Cmd.info "analyze" ~exits
       ~doc:"Static analysis report: lockset race candidates, training-free \
             control/data-plane classification and lint findings — with \
             $(b,--nodes), refined by deployment placement and extended \
             with the cross-node communication lint. Exits nonzero when \
             the linter finds errors (including static deadlocks).")
    Term.(const cmd_analyze $ analyze_app_arg $ demo_arg $ threshold_arg
          $ nodes_flag_arg $ json_arg)

let () =
  let info =
    Cmd.info "ddreplay" ~version:"1.0.0"
      ~doc:"Replay-based debugging with selectable determinism models."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ list_cmd; run_cmd; find_cmd; record_cmd; replay_cmd; debug_cmd;
            report_cmd; classify_cmd; analyze_cmd; invariants_cmd ]))
