(* Benchmark harness: regenerates every evaluation artifact of the paper
   (Fig. 1, Fig. 2, the Sec. 2 narratives, plus the RCSE and budget
   ablations) and runs Bechamel microbenchmarks of the actual recorders.

   Usage: main.exe [fig1|fig2|sec2|ablation|budget|flight|race|search|open|micro|all]
                   [--tiny] [--jobs N] [--json]

   --tiny   shrinks every budget so the command finishes in seconds (used
            by the bench-smoke alias under `dune runtest`)
   --jobs N times the search engines at N worker domains as well as at 1
   --json   (search only) also writes BENCH_search.json                  *)

open Ddet
open Ddet_apps
open Ddet_record

let print (r : Experiment.rendered) =
  Ddet_metrics.Report.print_section r.Experiment.title r.Experiment.body

(* ------------------------------------------------------------------ *)
(* MICRO: wall-clock cost of the recorders themselves, grounding the
   cost model's claim that entry volume drives recording cost. *)

let micro () =
  let open Bechamel in
  let app = Miniht.app () in
  let spec = app.App.spec in
  let labeled = app.App.labeled in
  let seed = 42 in
  let rcse_prepared = Session.prepare (Model.Rcse Model.Code_based) app in
  let recorders =
    [
      ("baseline", None);
      ("perfect", Some Full_recorder.create);
      ("value", Some Value_recorder.create);
      ("sync", Some Sync_recorder.create);
      ("output", Some Output_recorder.create);
      ("failure", Some Failure_recorder.create);
      ("rcse-code", Some (fun () -> rcse_prepared.Session.make_recorder ()));
    ]
  in
  let tests =
    List.map
      (fun (name, make) ->
        Test.make ~name
          (Staged.stage (fun () ->
               let world = Mvm.World.random ~seed in
               match make with
               | None -> ignore (Mvm.Interp.run labeled world)
               | Some create ->
                 ignore (Recorder.record (create ()) labeled ~spec ~world))))
      recorders
  in
  let grouped = Test.make_grouped ~name:"recorders" ~fmt:"%s/%s" tests in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let time_of label =
    match Hashtbl.find_opt results label with
    | Some o -> (
      match Analyze.OLS.estimates o with Some [ t ] -> t | _ -> nan)
    | None -> nan
  in
  let baseline = time_of "recorders/baseline" in
  (* log volumes for context *)
  let volumes =
    List.filter_map
      (fun (name, make) ->
        match make with
        | None -> None
        | Some create ->
          let _, log =
            Recorder.record (create ()) labeled ~spec
              ~world:(Mvm.World.random ~seed)
          in
          Some
            ( name,
              Log.entry_count log,
              Log.payload_bytes log,
              Cost_model.overhead Cost_model.default log ))
      recorders
  in
  let rows =
    List.map
      (fun (name, entries, bytes, modeled) ->
        let t = time_of ("recorders/" ^ name) in
        [
          name;
          Printf.sprintf "%.0f" t;
          Printf.sprintf "%.2f" (t /. baseline);
          string_of_int entries;
          string_of_int bytes;
          Printf.sprintf "%.2f" modeled;
        ])
      volumes
  in
  let body =
    Ddet_metrics.Report.table
      ~headers:
        [ "recorder"; "ns/run"; "measured x"; "entries"; "bytes"; "modeled x" ]
      rows
    ^ Printf.sprintf
        "\n\nbaseline (no recorder): %.0f ns per miniht production run.\n\
         The measured column is this harness's in-process monitoring cost:\n\
         every recorder sees every event, and selective recorders also\n\
         evaluate their selector per event, so wall-clock deltas here stay\n\
         small and reflect callback work. The modeled column instead prices\n\
         what a production implementation would pay to persist each entry\n\
         class (CREW-order schedule points, per-byte value logging - see\n\
         Cost_model) applied to the measured entry counts and bytes in this\n\
         table - which is why the experiments report modeled overhead.\n"
        baseline
  in
  Ddet_metrics.Report.print_section "MICRO recorder wall-clock vs. cost model"
    body

(* ------------------------------------------------------------------ *)
(* SEARCH: wall-clock comparison of the inference engines, sequential
   vs. parallel, with and without prefix pruning. Optionally dumps
   machine-readable results to BENCH_search.json. *)

type search_row = {
  workload : string;
  engine : string;
  sr_jobs : int;
  wall_s : float;
  stats : Ddet_replay.Search.stats;
}

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, max 1e-9 (Unix.gettimeofday () -. t0))

let search_bench ~tiny ~jobs ~json () =
  let open Ddet_replay in
  let open Mvm in
  let budget full small = if tiny then small else full in
  let miniht = Miniht.app () in
  let cases =
    [
      ( "racy-counter",
        Experiment.racy_counter,
        Experiment.racy_counter_spec,
        budget
          { Search.max_attempts = 3_000; max_steps_per_attempt = 5_000;
            base_seed = 1 }
          { Search.max_attempts = 40; max_steps_per_attempt = 1_500;
            base_seed = 1 } );
      ( "miniht",
        miniht.App.labeled,
        miniht.App.spec,
        budget
          { Search.max_attempts = 300; max_steps_per_attempt = 5_000;
            base_seed = 1 }
          { Search.max_attempts = 20; max_steps_per_attempt = 1_500;
            base_seed = 1 } );
    ]
  in
  let job_counts = if jobs > 1 then [ 1; jobs ] else [ 1 ] in
  let rows =
    List.concat_map
      (fun (workload, labeled, spec, budget) ->
        let seed =
          let rec scan s =
            if s > 500 then invalid_arg ("no failing seed for " ^ workload)
            else
              let r =
                Mvm.Spec.apply spec
                  (Mvm.Interp.run labeled (World.random ~seed:s))
              in
              if r.Mvm.Interp.failure <> None then s else scan (s + 1)
          in
          scan 1
        in
        let _, log =
          Recorder.record (Failure_recorder.create ()) labeled ~spec
            ~world:(World.random ~seed)
        in
        let accept = Constraints.failure_matches log in
        let engines =
          [
            ( "dfs-pruned",
              fun j -> Par_search.dfs_schedules ~jobs:j budget ~spec ~accept
                         labeled );
            ( "dfs-noprune",
              fun j -> Par_search.dfs_schedules ~jobs:j ~prune:false budget
                         ~spec ~accept labeled );
            ( "restarts",
              fun j ->
                Par_search.random_restarts ~jobs:j budget
                  ~make:(fun ~attempt -> (World.random ~seed:attempt, None))
                  ~spec ~accept labeled );
          ]
        in
        List.concat_map
          (fun (engine, run) ->
            List.map
              (fun j ->
                let o, wall_s = time (fun () -> run j) in
                { workload; engine; sr_jobs = j; wall_s;
                  stats = o.Search.stats })
              job_counts)
          engines)
      cases
  in
  let base r =
    List.find
      (fun b ->
        b.workload = r.workload && b.engine = r.engine && b.sr_jobs = 1)
      rows
  in
  let speedup r = (base r).wall_s /. r.wall_s in
  let attempts_per_s r = float_of_int r.stats.Ddet_replay.Search.attempts /. r.wall_s in
  let ns_per_step r =
    let steps = max 1 r.stats.Ddet_replay.Search.total_steps in
    r.wall_s *. 1e9 /. float_of_int steps
  in
  (* measured pruning factor: DFS machine-steps burned without pruning
     over steps burned with it, same workload, sequential *)
  let pruning_factor workload =
    let steps engine =
      List.find
        (fun r -> r.workload = workload && r.engine = engine && r.sr_jobs = 1)
        rows
      |> fun r -> float_of_int (max 1 r.stats.Ddet_replay.Search.total_steps)
    in
    steps "dfs-noprune" /. steps "dfs-pruned"
  in
  let table_rows =
    List.map
      (fun r ->
        [
          r.workload; r.engine; string_of_int r.sr_jobs;
          Printf.sprintf "%.3f" r.wall_s;
          (if r.stats.Ddet_replay.Search.success then "yes" else "NO");
          string_of_int r.stats.Ddet_replay.Search.attempts;
          string_of_int r.stats.Ddet_replay.Search.pruned;
          string_of_int r.stats.Ddet_replay.Search.total_steps;
          Printf.sprintf "%.0f" (attempts_per_s r);
          Printf.sprintf "%.0f" (ns_per_step r);
          Printf.sprintf "%.2f" (speedup r);
        ])
      rows
  in
  let body =
    Ddet_metrics.Report.table
      ~headers:
        [ "workload"; "engine"; "jobs"; "wall s"; "ok"; "attempts"; "pruned";
          "steps"; "att/s"; "ns/step"; "speedup" ]
      table_rows
    ^ Printf.sprintf
        "\n\ncores: %d (Domain.recommended_domain_count). Speedup is vs. the\n\
         same engine at jobs=1; outcomes (ok/attempts/pruned/steps) are\n\
         identical at every jobs value by construction. Pruning factor\n\
         (DFS steps without pruning / with pruning, sequential): %s.\n"
        (Domain.recommended_domain_count ())
        (String.concat ", "
           (List.map
              (fun (w, _, _, _) -> Printf.sprintf "%s %.2fx" w (pruning_factor w))
              cases))
  in
  Ddet_metrics.Report.print_section "SEARCH engine wall-clock" body;
  if json then begin
    let file = "BENCH_search.json" in
    let oc = open_out file in
    let row_json r =
      Printf.sprintf
        "    { \"workload\": %S, \"engine\": %S, \"jobs\": %d, \
         \"wall_s\": %.6f, \"success\": %b, \"attempts\": %d, \
         \"pruned\": %d, \"steps\": %d, \"attempts_per_s\": %.1f, \
         \"ns_per_step\": %.1f, \"speedup_vs_1\": %.3f }"
        r.workload r.engine r.sr_jobs r.wall_s
        r.stats.Ddet_replay.Search.success r.stats.Ddet_replay.Search.attempts
        r.stats.Ddet_replay.Search.pruned
        r.stats.Ddet_replay.Search.total_steps (attempts_per_s r)
        (ns_per_step r) (speedup r)
    in
    Printf.fprintf oc
      "{\n  \"cores\": %d,\n  \"jobs\": %d,\n  \"tiny\": %b,\n\
       \  \"pruning_step_factor\": { %s },\n  \"rows\": [\n%s\n  ]\n}\n"
      (Domain.recommended_domain_count ())
      jobs tiny
      (String.concat ", "
         (List.map
            (fun (w, _, _, _) -> Printf.sprintf "%S: %.3f" w (pruning_factor w))
            cases))
      (String.concat ",\n" (List.map row_json rows));
    close_out oc;
    Printf.printf "wrote %s\n" file
  end

(* ------------------------------------------------------------------ *)

let tiny_config =
  {
    Config.default with
    Config.budget =
      { Ddet_replay.Search.max_attempts = 20; max_steps_per_attempt = 2_000;
        base_seed = 1 };
    value_budget =
      { Ddet_replay.Search.max_attempts = 3; max_steps_per_attempt = 20_000;
        base_seed = 1 };
  }

let () =
  let rec parse (cmd, tiny, json, jobs) = function
    | [] -> (cmd, tiny, json, jobs)
    | "--tiny" :: rest -> parse (cmd, true, json, jobs) rest
    | "--json" :: rest -> parse (cmd, tiny, true, jobs) rest
    | ("--jobs" | "-j") :: n :: rest ->
      parse (cmd, tiny, json, int_of_string n) rest
    | arg :: rest when cmd = None -> parse (Some arg, tiny, json, jobs) rest
    | arg :: _ ->
      Printf.eprintf "unexpected argument %S\n" arg;
      exit 2
  in
  let cmd, tiny, json, jobs =
    parse (None, false, false, 1) (List.tl (Array.to_list Sys.argv))
  in
  let cmd = Option.value ~default:"all" cmd in
  let config = if tiny then tiny_config else Config.default in
  let fig_args f =
    if tiny then f ?config:(Some config) ?replays:(Some 1) ()
    else f ?config:None ?replays:None ()
  in
  match cmd with
  | "fig1" -> print (Experiment.render_fig1 (fig_args Experiment.fig1))
  | "fig2" -> print (Experiment.render_fig2 (fig_args Experiment.fig2))
  | "sec2" ->
    print (Experiment.sec2_adder ());
    print (Experiment.sec2_drop ())
  | "ablation" -> print (Experiment.render_ablation (Experiment.ablation_rcse ()))
  | "budget" -> print (Experiment.budget_sweep ())
  | "flight" -> print (Experiment.flight_sweep ())
  | "race" -> print (Experiment.race_detectors ())
  | "search" when tiny || json || jobs > 1 -> search_bench ~tiny ~jobs ~json ()
  | "search" ->
    print (Experiment.search_engines ~config ());
    search_bench ~tiny ~jobs ~json ()
  | "open" ->
    print (Explore.experiment ());
    print (Frontier.experiment ())
  | "micro" -> micro ()
  | "all" ->
    List.iter print (Experiment.run_all ());
    print (Explore.experiment ());
    print (Frontier.experiment ());
    micro ()
  | other ->
    Printf.eprintf
      "unknown command %S (expected fig1|fig2|sec2|ablation|budget|flight|race|search|open|micro|all)\n"
      other;
    exit 2
