(* Benchmark harness: regenerates every evaluation artifact of the paper
   (Fig. 1, Fig. 2, the Sec. 2 narratives, plus the RCSE and budget
   ablations) and runs Bechamel microbenchmarks of the actual recorders.

   Usage: main.exe [fig1|fig2|sec2|ablation|budget|flight|race|search|sanity|crash|governor|static|dist|obs|open|micro|all]
                   [--tiny] [--jobs N] [--json]

   --tiny   shrinks every budget so the command finishes in seconds (used
            by the bench-smoke alias under `dune runtest`)
   --jobs N times the search engines at N worker domains as well as at 1
   --json   (search/crash/governor/static) also writes BENCH_search.json /
            BENCH_crash.json / BENCH_governor.json / BENCH_static.json
            (static writes its JSON unconditionally when not --tiny) *)

open Ddet
open Ddet_apps
open Ddet_record

let print (r : Experiment.rendered) =
  Ddet_metrics.Report.print_section r.Experiment.title r.Experiment.body

(* ------------------------------------------------------------------ *)
(* MICRO: wall-clock cost of the recorders themselves, grounding the
   cost model's claim that entry volume drives recording cost. *)

let micro () =
  let open Bechamel in
  let app = Miniht.app () in
  let spec = app.App.spec in
  let labeled = app.App.labeled in
  let seed = 42 in
  let rcse_prepared = Session.prepare (Model.Rcse Model.Code_based) app in
  let recorders =
    [
      ("baseline", None);
      ("perfect", Some (fun () -> Full_recorder.create ()));
      ("value", Some (fun () -> Value_recorder.create ()));
      ("sync", Some (fun () -> Sync_recorder.create ()));
      ("output", Some (fun () -> Output_recorder.create ()));
      ("failure", Some (fun () -> Failure_recorder.create ()));
      ("rcse-code", Some (fun () -> rcse_prepared.Session.make_recorder ()));
    ]
  in
  let tests =
    List.map
      (fun (name, make) ->
        Test.make ~name
          (Staged.stage (fun () ->
               let world = Mvm.World.random ~seed in
               match make with
               | None -> ignore (Mvm.Interp.run labeled world)
               | Some create ->
                 ignore (Recorder.record (create ()) labeled ~spec ~world))))
      recorders
  in
  let grouped = Test.make_grouped ~name:"recorders" ~fmt:"%s/%s" tests in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let time_of label =
    match Hashtbl.find_opt results label with
    | Some o -> (
      match Analyze.OLS.estimates o with Some [ t ] -> t | _ -> nan)
    | None -> nan
  in
  let baseline = time_of "recorders/baseline" in
  (* log volumes for context *)
  let volumes =
    List.filter_map
      (fun (name, make) ->
        match make with
        | None -> None
        | Some create ->
          let _, log =
            Recorder.record (create ()) labeled ~spec
              ~world:(Mvm.World.random ~seed)
          in
          Some
            ( name,
              Log.entry_count log,
              Log.payload_bytes log,
              Cost_model.overhead Cost_model.default log ))
      recorders
  in
  let rows =
    List.map
      (fun (name, entries, bytes, modeled) ->
        let t = time_of ("recorders/" ^ name) in
        [
          name;
          Printf.sprintf "%.0f" t;
          Printf.sprintf "%.2f" (t /. baseline);
          string_of_int entries;
          string_of_int bytes;
          Printf.sprintf "%.2f" modeled;
        ])
      volumes
  in
  let body =
    Ddet_metrics.Report.table
      ~headers:
        [ "recorder"; "ns/run"; "measured x"; "entries"; "bytes"; "modeled x" ]
      rows
    ^ Printf.sprintf
        "\n\nbaseline (no recorder): %.0f ns per miniht production run.\n\
         The measured column is this harness's in-process monitoring cost:\n\
         every recorder sees every event, and selective recorders also\n\
         evaluate their selector per event, so wall-clock deltas here stay\n\
         small and reflect callback work. The modeled column instead prices\n\
         what a production implementation would pay to persist each entry\n\
         class (CREW-order schedule points, per-byte value logging - see\n\
         Cost_model) applied to the measured entry counts and bytes in this\n\
         table - which is why the experiments report modeled overhead.\n"
        baseline
  in
  Ddet_metrics.Report.print_section "MICRO recorder wall-clock vs. cost model"
    body

(* ------------------------------------------------------------------ *)
(* SEARCH: wall-clock of the inference engines under the lock-free
   scheduler. Per workload/engine: a sequential baseline, a jobs=N row
   under the default tuning (cap_domains clamps N to the machine's
   cores), and an uncapped jobs=N row that is honestly labelled
   "contended" when it oversubscribes the machine — oversubscribed rows
   measure scheduler overhead, not speedup. Also: a chunk-size sweep of
   the claim granularity and AST-vs-compiled interpreter ns/step rows.
   Optionally dumps machine-readable results to BENCH_search.json
   (schema 2). *)

type search_row = {
  workload : string;
  engine : string;
  sr_jobs : int;  (** requested *)
  sr_eff : int;  (** domains actually fanned out (cap policy applied) *)
  sr_mode : string;  (** sequential | parallel | capped | contended *)
  wall_s : float;
  stats : Ddet_replay.Search.stats;
}

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, max 1e-9 (Unix.gettimeofday () -. t0))

(* min over [trials] runs: wall-clock on a shared box is noise plus the
   true cost, and min is the estimator least polluted by the noise *)
let min_time ~trials f =
  let out = ref None and best = ref infinity in
  for _ = 1 to max 1 trials do
    let r, s = time f in
    out := Some r;
    if s < !best then best := s
  done;
  (Option.get !out, !best)

(* AST walker vs. compiled hot path, per program: one schedule-world
   attempt each (the actual search executor), AST and compiled trials
   interleaved so clock noise and GC phase hit both variants alike, min
   over the trials. The ctx is built once, like a search does. *)

type interp_row = {
  ir_program : string;
  ir_steps : int;
  ast_ns : float;  (** ns/step, AST walker *)
  comp_ns : float;  (** ns/step, compiled via a reused {!Engine.ctx} *)
}

let interp_bench ~tiny () =
  let open Ddet_replay in
  let trials = if tiny then 4 else 16 in
  let reps = if tiny then 2 else 8 in
  let progs =
    [
      ("racy-counter", Experiment.racy_counter);
      ("miniht", (Miniht.app ()).App.labeled);
      ( "proggen-0",
        Mvm.Proggen.generate Mvm.Proggen.default (Mvm.Prng.create 0) );
    ]
  in
  List.map
    (fun (ir_program, labeled) ->
      let ctx = Engine.make_ctx labeled in
      let budget = 5_000 in
      let ast () =
        ignore (Engine.exec_schedule ~budget ~prefix:[||] labeled)
      in
      let comp () =
        ignore (Engine.exec_schedule ~ctx ~budget ~prefix:[||] labeled)
      in
      ast ();
      comp ();
      let ir_steps =
        (Engine.exec_schedule ~ctx ~budget ~prefix:[||] labeled).Engine.result
          .Mvm.Interp.steps
      in
      let best_a = ref infinity and best_c = ref infinity in
      for _ = 1 to trials do
        let _, a = time (fun () -> for _ = 1 to reps do ast () done) in
        let _, c = time (fun () -> for _ = 1 to reps do comp () done) in
        if a < !best_a then best_a := a;
        if c < !best_c then best_c := c
      done;
      let per v = v *. 1e9 /. float_of_int (reps * max 1 ir_steps) in
      { ir_program; ir_steps; ast_ns = per !best_a; comp_ns = per !best_c })
    progs

let search_bench ~tiny ~jobs ~json () =
  let open Ddet_replay in
  let open Mvm in
  let budget full small = if tiny then small else full in
  let trials = if tiny then 1 else 3 in
  let cores = Domain.recommended_domain_count () in
  let uncapped =
    { Par_search.default_tuning with Par_search.cap_domains = false }
  in
  let miniht = Miniht.app () in
  let cases =
    [
      ( "racy-counter",
        Experiment.racy_counter,
        Experiment.racy_counter_spec,
        budget
          { Search.max_attempts = 3_000; max_steps_per_attempt = 5_000;
            base_seed = 1; deadline_s = None }
          { Search.max_attempts = 40; max_steps_per_attempt = 1_500;
            base_seed = 1; deadline_s = None } );
      ( "miniht",
        miniht.App.labeled,
        miniht.App.spec,
        budget
          { Search.max_attempts = 300; max_steps_per_attempt = 5_000;
            base_seed = 1; deadline_s = None }
          { Search.max_attempts = 20; max_steps_per_attempt = 1_500;
            base_seed = 1; deadline_s = None } );
    ]
  in
  (* per workload: engine runners closed over the failing log *)
  let prepared =
    List.map
      (fun (workload, labeled, spec, bud) ->
        let seed =
          let rec scan s =
            if s > 500 then invalid_arg ("no failing seed for " ^ workload)
            else
              let r =
                Mvm.Spec.apply spec
                  (Mvm.Interp.run labeled (World.random ~seed:s))
              in
              if r.Mvm.Interp.failure <> None then s else scan (s + 1)
          in
          scan 1
        in
        let _, log =
          Recorder.record (Failure_recorder.create ()) labeled ~spec
            ~world:(World.random ~seed)
        in
        let accept = Constraints.failure_matches log in
        let engines =
          [
            ( "dfs-pruned",
              fun tuning j ->
                Par_search.dfs_schedules ~jobs:j ~tuning bud ~spec ~accept
                  labeled );
            ( "dfs-noprune",
              fun tuning j ->
                Par_search.dfs_schedules ~jobs:j ~tuning ~prune:false bud
                  ~spec ~accept labeled );
            ( "restarts",
              fun tuning j ->
                Par_search.random_restarts ~jobs:j ~tuning bud
                  ~make:(fun ~attempt -> (World.random ~seed:attempt, None))
                  ~spec ~accept labeled );
          ]
        in
        (workload, engines))
      cases
  in
  let rows =
    List.concat_map
      (fun (workload, engines) ->
        List.concat_map
          (fun (engine, run) ->
            let measure ~sr_mode ~tuning j =
              let o, wall_s = min_time ~trials (fun () -> run tuning j) in
              {
                workload; engine; sr_jobs = j;
                sr_eff = Par_search.effective_jobs ~tuning ~jobs:j None;
                sr_mode; wall_s; stats = o.Search.stats;
              }
            in
            let seq =
              measure ~sr_mode:"sequential"
                ~tuning:Par_search.default_tuning 1
            in
            if jobs <= 1 then [ seq ]
            else
              let eff = Par_search.effective_jobs ~jobs None in
              let capped =
                measure
                  ~sr_mode:(if eff < jobs then "capped" else "parallel")
                  ~tuning:Par_search.default_tuning jobs
              in
              let unc =
                measure
                  ~sr_mode:(if jobs > cores then "contended" else "parallel")
                  ~tuning:uncapped jobs
              in
              [ seq; capped; unc ])
          engines)
      prepared
  in
  (* chunk sweep: claim granularity at uncapped jobs=N, one engine per
     pool flavour (restarts = indexed pool, dfs-pruned = chain pool) *)
  let chunks = if tiny then [ 1; 4 ] else [ 1; 2; 4; 8; 16 ] in
  let sweep =
    if jobs <= 1 then []
    else
      List.concat_map
        (fun (workload, engines) ->
          List.concat_map
            (fun (engine, run) ->
              if engine = "dfs-noprune" then []
              else
                List.map
                  (fun chunk ->
                    let tuning = { uncapped with Par_search.chunk } in
                    let o, wall_s = time (fun () -> run tuning jobs) in
                    ( workload, engine, chunk, wall_s,
                      o.Search.stats.Ddet_replay.Search.success ))
                  chunks)
            engines)
        prepared
  in
  let interp = interp_bench ~tiny () in
  let base r =
    List.find
      (fun b ->
        b.workload = r.workload && b.engine = r.engine
        && b.sr_mode = "sequential")
      rows
  in
  let speedup r = (base r).wall_s /. r.wall_s in
  let attempts_per_s r =
    float_of_int r.stats.Ddet_replay.Search.attempts /. r.wall_s
  in
  let ns_per_step r =
    let steps = max 1 r.stats.Ddet_replay.Search.total_steps in
    r.wall_s *. 1e9 /. float_of_int steps
  in
  (* measured pruning factor: DFS machine-steps burned without pruning
     over steps burned with it, same workload, sequential *)
  let pruning_factor workload =
    let steps engine =
      List.find
        (fun r ->
          r.workload = workload && r.engine = engine
          && r.sr_mode = "sequential")
        rows
      |> fun r -> float_of_int (max 1 r.stats.Ddet_replay.Search.total_steps)
    in
    steps "dfs-noprune" /. steps "dfs-pruned"
  in
  let table_rows =
    List.map
      (fun r ->
        [
          r.workload; r.engine; string_of_int r.sr_jobs;
          string_of_int r.sr_eff; r.sr_mode;
          Printf.sprintf "%.3f" r.wall_s;
          (if r.stats.Ddet_replay.Search.success then "yes" else "NO");
          string_of_int r.stats.Ddet_replay.Search.attempts;
          string_of_int r.stats.Ddet_replay.Search.pruned;
          string_of_int r.stats.Ddet_replay.Search.total_steps;
          Printf.sprintf "%.0f" (attempts_per_s r);
          Printf.sprintf "%.0f" (ns_per_step r);
          Printf.sprintf "%.2f" (speedup r);
        ])
      rows
  in
  let body =
    Ddet_metrics.Report.table
      ~headers:
        [ "workload"; "engine"; "jobs"; "eff"; "mode"; "wall s"; "ok";
          "attempts"; "pruned"; "steps"; "att/s"; "ns/step"; "speedup" ]
      table_rows
    ^ Printf.sprintf
        "\n\ncores: %d (Domain.recommended_domain_count); wall s is the min\n\
         of %d runs. eff is the domain count after the default cap policy\n\
         (capped rows were clamped to the cores); contended rows switch the\n\
         cap off and oversubscribe the machine on purpose - they price\n\
         scheduler overhead, not speedup. Outcomes (ok/attempts/pruned/\n\
         steps) are identical at every jobs value by construction. Pruning\n\
         factor (DFS steps without pruning / with pruning, sequential):\n\
         %s.\n"
        cores trials
        (String.concat ", "
           (List.map
              (fun (w, _, _, _) ->
                Printf.sprintf "%s %.2fx" w (pruning_factor w))
              cases))
  in
  Ddet_metrics.Report.print_section "SEARCH engine wall-clock" body;
  if sweep <> [] then
    Ddet_metrics.Report.print_section "SEARCH chunk sweep (uncapped)"
      (Ddet_metrics.Report.table
         ~headers:[ "workload"; "engine"; "chunk"; "wall s"; "ok" ]
         (List.map
            (fun (w, e, c, s, ok) ->
              [
                w; e; string_of_int c; Printf.sprintf "%.3f" s;
                (if ok then "yes" else "NO");
              ])
            sweep));
  Ddet_metrics.Report.print_section "SEARCH interpreter ns/step"
    (Ddet_metrics.Report.table
       ~headers:[ "program"; "steps"; "AST ns"; "compiled ns"; "ratio" ]
       (List.map
          (fun r ->
            [
              r.ir_program; string_of_int r.ir_steps;
              Printf.sprintf "%.0f" r.ast_ns;
              Printf.sprintf "%.0f" r.comp_ns;
              Printf.sprintf "%.2f" (r.comp_ns /. r.ast_ns);
            ])
          interp)
     ^ "\n\nOne schedule-world attempt (the search executor) per run, AST\n\
        walker vs. the compiled hot path through a reused Engine.ctx;\n\
        trials interleaved, min taken, so the ratio is the per-step\n\
        saving a search attempt actually sees.\n");
  if json then begin
    let file = "BENCH_search.json" in
    let oc = open_out file in
    let row_json r =
      Printf.sprintf
        "    { \"workload\": %S, \"engine\": %S, \"jobs\": %d, \
         \"jobs_effective\": %d, \"mode\": %S, \"wall_s\": %.6f, \
         \"success\": %b, \"attempts\": %d, \"pruned\": %d, \
         \"steps\": %d, \"attempts_per_s\": %.1f, \
         \"ns_per_step\": %.1f, \"speedup_vs_1\": %.3f }"
        r.workload r.engine r.sr_jobs r.sr_eff r.sr_mode r.wall_s
        r.stats.Ddet_replay.Search.success r.stats.Ddet_replay.Search.attempts
        r.stats.Ddet_replay.Search.pruned
        r.stats.Ddet_replay.Search.total_steps (attempts_per_s r)
        (ns_per_step r) (speedup r)
    in
    let sweep_json (w, e, c, s, ok) =
      Printf.sprintf
        "    { \"workload\": %S, \"engine\": %S, \"chunk\": %d, \
         \"wall_s\": %.6f, \"success\": %b }"
        w e c s ok
    in
    let interp_json r =
      Printf.sprintf
        "    { \"program\": %S, \"steps\": %d, \
         \"ast_ns_per_step\": %.1f, \"compiled_ns_per_step\": %.1f, \
         \"ratio\": %.3f }"
        r.ir_program r.ir_steps r.ast_ns r.comp_ns (r.comp_ns /. r.ast_ns)
    in
    let t = Par_search.default_tuning in
    Printf.fprintf oc
      "{\n  \"schema\": 2,\n  \"cores\": %d,\n  \"jobs\": %d,\n\
       \  \"tiny\": %b,\n  \"trials\": %d,\n\
       \  \"policy\": \"default tuning caps jobs at cores \
       (capped rows); contended rows switch the cap off and \
       oversubscribe on purpose - they price scheduler overhead, not \
       speedup\",\n\
       \  \"tuning_default\": { \"chunk\": %d, \
       \"window_per_job\": %d, \"spawn_cost_steps\": %d },\n\
       \  \"pruning_step_factor\": { %s },\n  \"interp\": [\n%s\n  ],\n\
       \  \"rows\": [\n%s\n  ],\n  \"chunk_sweep\": [\n%s\n  ]\n}\n"
      cores jobs tiny trials t.Par_search.chunk t.Par_search.window_per_job
      t.Par_search.spawn_cost_steps
      (String.concat ", "
         (List.map
            (fun (w, _, _, _) ->
              Printf.sprintf "%S: %.3f" w (pruning_factor w))
            cases))
      (String.concat ",\n" (List.map interp_json interp))
      (String.concat ",\n" (List.map row_json rows))
      (String.concat ",\n" (List.map sweep_json sweep));
    close_out oc;
    Printf.printf "wrote %s\n" file
  end

(* ------------------------------------------------------------------ *)
(* SANITY: the CI tripwire behind the perf-sanity alias. On smoke
   budgets, jobs=4 under the *default* tuning (cap policy on) must stay
   within 2x of sequential wall-clock and byte-identical in outcome -
   on a small box the cap makes this trivially true (jobs clamp to the
   cores), on a big one it catches a scheduler regression. Exits 1 on
   violation. *)

let sanity () =
  let open Ddet_replay in
  let open Mvm in
  let miniht = Miniht.app () in
  let bud =
    { Search.max_attempts = 60; max_steps_per_attempt = 2_000;
      base_seed = 1; deadline_s = None }
  in
  let cases =
    [
      ("racy-counter", Experiment.racy_counter, Experiment.racy_counter_spec);
      ("miniht", miniht.App.labeled, miniht.App.spec);
    ]
  in
  let same (a : Search.outcome) (b : Search.outcome) =
    a.Search.result = b.Search.result
    && a.Search.partial = b.Search.partial
    && a.Search.stats.Search.attempts = b.Search.stats.Search.attempts
    && a.Search.stats.Search.total_steps = b.Search.stats.Search.total_steps
    && a.Search.stats.Search.pruned = b.Search.stats.Search.pruned
  in
  let violations = ref 0 in
  List.iter
    (fun (workload, labeled, spec) ->
      let seed =
        let rec scan s =
          if s > 500 then invalid_arg ("no failing seed for " ^ workload)
          else
            let r =
              Mvm.Spec.apply spec
                (Mvm.Interp.run labeled (World.random ~seed:s))
            in
            if r.Mvm.Interp.failure <> None then s else scan (s + 1)
        in
        scan 1
      in
      let _, log =
        Recorder.record (Failure_recorder.create ()) labeled ~spec
          ~world:(World.random ~seed)
      in
      let accept = Constraints.failure_matches log in
      let engines =
        [
          ( "dfs-pruned",
            fun j -> Par_search.dfs_schedules ~jobs:j bud ~spec ~accept
                       labeled );
          ( "restarts",
            fun j ->
              Par_search.random_restarts ~jobs:j bud
                ~make:(fun ~attempt -> (World.random ~seed:attempt, None))
                ~spec ~accept labeled );
        ]
      in
      List.iter
        (fun (engine, run) ->
          let seq, seq_s = min_time ~trials:3 (fun () -> run 1) in
          let par, par_s = min_time ~trials:3 (fun () -> run 4) in
          let parity = same seq par in
          (* 10ms absolute slack: sub-millisecond walls are all noise *)
          let fast_enough = par_s <= (2.0 *. seq_s) +. 0.010 in
          Printf.printf
            "%-14s %-11s seq %.4fs  jobs=4 %.4fs (%.2fx)  parity %s  %s\n"
            workload engine seq_s par_s (par_s /. seq_s)
            (if parity then "yes" else "NO")
            (if parity && fast_enough then "ok" else "VIOLATION");
          if not (parity && fast_enough) then incr violations)
        engines)
    cases;
  if !violations > 0 then begin
    Printf.eprintf "perf-sanity: %d violation(s)\n" !violations;
    exit 1
  end;
  Printf.printf "perf-sanity: ok (cores: %d)\n"
    (Domain.recommended_domain_count ())

(* ------------------------------------------------------------------ *)
(* CRASH: checkpoint overhead and resume cost. Measures the wall-clock
   tax of ticking a checkpoint sink at several intervals, then simulates
   a kill at half the search (truncated budget + flushed frontier — the
   same file a SIGKILL leaves behind), resumes, and checks the resumed
   outcome is identical to the uninterrupted run's. *)

type crash_row = {
  cr_workload : string;
  cr_engine : string;
  plain_s : float;  (** no checkpointing *)
  ckpt1_s : float;  (** sink writing every judged attempt *)
  ckpt32_s : float;  (** sink at the default interval *)
  killed_s : float;  (** first half, up to the simulated kill *)
  resume_s : float;  (** second half, resumed from the checkpoint *)
  parity : bool;  (** resumed outcome = uninterrupted outcome *)
  cr_attempts : int;
}

let crash_bench ~tiny ~json () =
  let open Ddet_replay in
  let open Mvm in
  let budget full small = if tiny then small else full in
  let miniht = Miniht.app () in
  let cases =
    [
      ( "racy-counter",
        Experiment.racy_counter,
        Experiment.racy_counter_spec,
        budget
          { Search.max_attempts = 3_000; max_steps_per_attempt = 5_000;
            base_seed = 1; deadline_s = None }
          { Search.max_attempts = 40; max_steps_per_attempt = 1_500;
            base_seed = 1; deadline_s = None } );
      ( "miniht",
        miniht.App.labeled,
        miniht.App.spec,
        budget
          { Search.max_attempts = 300; max_steps_per_attempt = 5_000;
            base_seed = 1; deadline_s = None }
          { Search.max_attempts = 20; max_steps_per_attempt = 1_500;
            base_seed = 1; deadline_s = None } );
    ]
  in
  let same (a : Search.outcome) (b : Search.outcome) =
    a.Search.result = b.Search.result
    && a.Search.partial = b.Search.partial
    && a.Search.stats.Search.attempts = b.Search.stats.Search.attempts
    && a.Search.stats.Search.total_steps = b.Search.stats.Search.total_steps
    && a.Search.stats.Search.pruned = b.Search.stats.Search.pruned
  in
  let rows =
    List.concat_map
      (fun (cr_workload, labeled, spec, bud) ->
        let seed =
          let rec scan s =
            if s > 500 then invalid_arg ("no failing seed for " ^ cr_workload)
            else
              let r =
                Mvm.Spec.apply spec
                  (Mvm.Interp.run labeled (World.random ~seed:s))
              in
              if r.Mvm.Interp.failure <> None then s else scan (s + 1)
          in
          scan 1
        in
        let _, log =
          Recorder.record (Failure_recorder.create ()) labeled ~spec
            ~world:(World.random ~seed)
        in
        let accept = Constraints.failure_matches log in
        let engines :
            (string
            * (?checkpoint:Checkpoint.sink ->
               ?resume:Checkpoint.t ->
               Search.budget ->
               Search.outcome))
            list =
          [
            ( "restarts",
              fun ?checkpoint ?resume b ->
                Par_search.random_restarts ?checkpoint ?resume b
                  ~make:(fun ~attempt -> (World.random ~seed:attempt, None))
                  ~spec ~accept labeled );
            ( "dfs-pruned",
              fun ?checkpoint ?resume b ->
                Par_search.dfs_schedules ?checkpoint ?resume b ~spec ~accept
                  labeled );
          ]
        in
        List.map
          (fun
            ( cr_engine,
              (run :
                ?checkpoint:Checkpoint.sink ->
                ?resume:Checkpoint.t ->
                Search.budget ->
                Search.outcome) )
          ->
            let plain, plain_s = time (fun () -> run bud) in
            let ckpt_file = Filename.temp_file "ddet_bench" ".ckpt" in
            let timed_sink every =
              let _, s =
                time (fun () ->
                    run ~checkpoint:(Checkpoint.sink ~every ckpt_file) bud)
              in
              s
            in
            let ckpt1_s = timed_sink 1 in
            let ckpt32_s = timed_sink 32 in
            (* simulated kill: a truncated budget that exhausts and
               flushes its frontier — exactly the file the periodic sink
               leaves after a SIGKILL at that point. Kill strictly before
               the hit (or at half the attempts when the search never
               hits); a search that hits on attempt 1 has no mid-flight
               frontier to crash at, so skip the kill for it. *)
            let kill_at =
              if plain.Search.stats.Search.success then
                plain.Search.stats.Search.attempts - 1
              else plain.Search.stats.Search.attempts / 2
            in
            let killed_s, resume_s, parity =
              if kill_at < 1 then (0., 0., true)
              else begin
                let _, killed_s =
                  time (fun () ->
                      run
                        ~checkpoint:(Checkpoint.sink ~every:1 ckpt_file)
                        { bud with Search.max_attempts = kill_at })
                in
                let c =
                  match Checkpoint.load ckpt_file with
                  | Ok c -> c
                  | Error e -> invalid_arg ("bench checkpoint: " ^ e)
                in
                let resumed, resume_s = time (fun () -> run ~resume:c bud) in
                (killed_s, resume_s, same plain resumed)
              end
            in
            Sys.remove ckpt_file;
            {
              cr_workload;
              cr_engine;
              plain_s;
              ckpt1_s;
              ckpt32_s;
              killed_s;
              resume_s;
              parity;
              cr_attempts = plain.Search.stats.Search.attempts;
            })
          engines)
      cases
  in
  let pct over base = 100. *. ((over /. base) -. 1.) in
  let table_rows =
    List.map
      (fun r ->
        [
          r.cr_workload; r.cr_engine; string_of_int r.cr_attempts;
          Printf.sprintf "%.3f" r.plain_s;
          Printf.sprintf "%+.1f%%" (pct r.ckpt1_s r.plain_s);
          Printf.sprintf "%+.1f%%" (pct r.ckpt32_s r.plain_s);
          Printf.sprintf "%.3f" r.killed_s;
          Printf.sprintf "%.3f" r.resume_s;
          Printf.sprintf "%+.1f%%"
            (pct (r.killed_s +. r.resume_s) r.plain_s);
          (if r.parity then "yes" else "NO");
        ])
      rows
  in
  let body =
    Ddet_metrics.Report.table
      ~headers:
        [ "workload"; "engine"; "attempts"; "plain s"; "every=1"; "every=32";
          "killed s"; "resume s"; "kill+resume"; "parity" ]
      table_rows
    ^ "\n\nevery=N columns: wall-clock overhead of a checkpoint sink that\n\
       writes every Nth judged attempt, vs. the same search with no sink.\n\
       killed/resume: the search is cut at half its attempts (truncated\n\
       budget flushing its frontier - byte-identical to the file a SIGKILL\n\
       leaves), then resumed to completion; kill+resume is the total\n\
       wall-clock tax of crashing once. parity: the resumed outcome\n\
       (result, partial, attempts, steps, pruned) equals the\n\
       uninterrupted run's.\n"
  in
  Ddet_metrics.Report.print_section "CRASH checkpoint overhead and resume"
    body;
  if json then begin
    let file = "BENCH_crash.json" in
    let oc = open_out file in
    let row_json r =
      Printf.sprintf
        "    { \"workload\": %S, \"engine\": %S, \"attempts\": %d, \
         \"plain_s\": %.6f, \"ckpt_every1_s\": %.6f, \
         \"ckpt_every32_s\": %.6f, \"killed_s\": %.6f, \
         \"resume_s\": %.6f, \"parity\": %b }"
        r.cr_workload r.cr_engine r.cr_attempts r.plain_s r.ckpt1_s
        r.ckpt32_s r.killed_s r.resume_s r.parity
    in
    Printf.fprintf oc "{\n  \"tiny\": %b,\n  \"rows\": [\n%s\n  ]\n}\n" tiny
      (String.concat ",\n" (List.map row_json rows));
    close_out oc;
    Printf.printf "wrote %s\n" file
  end

(* ------------------------------------------------------------------ *)
(* GOVERNOR: the overhead SLO in action. Record the failing miniht run
   under several budgets, with the ungoverned recording as control, and
   check the acceptance criterion end to end: measured overhead within
   budget AND the original failure still reproducing from the governed
   log, with the honest DF floor reported per degraded window. *)

type gv_row = {
  gv_model : string;
  gv_budget : float;
  gv_control : float;  (* ungoverned overhead, same model/seed *)
  gv_overhead : float;
  gv_within : bool;
  gv_windows : int;
  gv_entries : int;
  gv_control_entries : int;
  gv_reproduced : bool;
  gv_df : float;
  gv_df_floor : float;
  gv_attempts : int;
}

let governor_bench ~tiny ~json () =
  let miniht = Miniht.app () in
  let seed = 1 (* the seed scan's first failing miniht seed *) in
  let models =
    if tiny then [ Model.Perfect ] else [ Model.Perfect; Model.Sync ]
  in
  let budgets = if tiny then [ 1.3 ] else [ 1.2; 1.3; 1.5; 2.0 ] in
  let record ?budget:overhead_budget model =
    let config = { Config.default with Config.overhead_budget } in
    let prepared = Session.prepare ~config model miniht in
    let original, log = Session.record prepared ~seed in
    (prepared, original, log)
  in
  let rows =
    List.concat_map
      (fun model ->
        let _, _, control_log = record model in
        let gv_control =
          Ddet_record.Cost_model.overhead Ddet_record.Cost_model.default
            control_log
        in
        List.map
          (fun b ->
            let prepared, original, log = record ~budget:b model in
            let gv_overhead =
              Ddet_record.Cost_model.overhead Ddet_record.Cost_model.default
                log
            in
            let outcome = Session.replay prepared log in
            let a = Session.assess prepared ~original ~log outcome in
            let reproduced =
              match outcome.Ddet_replay.Replayer.result with
              | Some r -> Ddet_replay.Constraints.failure_matches log r
              | None -> false
            in
            {
              gv_model = Model.name model;
              gv_budget = b;
              gv_control;
              gv_overhead;
              gv_within = gv_overhead <= b +. 1e-9;
              gv_windows = a.Ddet_metrics.Utility.governed_windows;
              gv_entries = Ddet_record.Log.entry_count log;
              gv_control_entries = Ddet_record.Log.entry_count control_log;
              gv_reproduced = reproduced;
              gv_df = a.Ddet_metrics.Utility.df;
              gv_df_floor =
                Option.value ~default:0.
                  a.Ddet_metrics.Utility.df_floor;
              gv_attempts = outcome.Ddet_replay.Replayer.attempts;
            })
          budgets)
      models
  in
  let table_rows =
    List.map
      (fun r ->
        [
          r.gv_model;
          Printf.sprintf "%.1fx" r.gv_budget;
          Printf.sprintf "%.2fx" r.gv_control;
          Printf.sprintf "%.2fx" r.gv_overhead;
          (if r.gv_within then "yes" else "NO");
          string_of_int r.gv_windows;
          Printf.sprintf "%d/%d" r.gv_entries r.gv_control_entries;
          (if r.gv_reproduced then "yes" else "NO");
          Printf.sprintf "%.2f (floor %.2f)" r.gv_df r.gv_df_floor;
          string_of_int r.gv_attempts;
        ])
      rows
  in
  let body =
    Ddet_metrics.Report.table
      ~headers:
        [ "model"; "budget"; "control"; "governed"; "within"; "windows";
          "entries"; "reproduced"; "DF"; "attempts" ]
      table_rows
    ^ "\n\ncontrol: the same recording with no budget. within: measured\n\
       Cost_model overhead of the governed log lands inside the SLO.\n\
       reproduced: the governed log's search replay reproduces the\n\
       original failure. DF is the measured fidelity with the honest\n\
       1/n floor the degraded windows impose.\n"
  in
  Ddet_metrics.Report.print_section "GOVERNOR overhead SLO" body;
  if json then begin
    let file = "BENCH_governor.json" in
    let oc = open_out file in
    let row_json r =
      Printf.sprintf
        "    { \"model\": %S, \"budget\": %.2f, \"control_overhead\": %.4f, \
         \"governed_overhead\": %.4f, \"within_budget\": %b, \
         \"governed_windows\": %d, \"entries\": %d, \
         \"control_entries\": %d, \"reproduced\": %b, \"df\": %.4f, \
         \"df_floor\": %.4f, \"attempts\": %d }"
        r.gv_model r.gv_budget r.gv_control r.gv_overhead r.gv_within
        r.gv_windows r.gv_entries r.gv_control_entries r.gv_reproduced
        r.gv_df r.gv_df_floor r.gv_attempts
    in
    Printf.fprintf oc "{\n  \"tiny\": %b,\n  \"rows\": [\n%s\n  ]\n}\n" tiny
      (String.concat ",\n" (List.map row_json rows));
    close_out oc;
    Printf.printf "wrote %s\n" file
  end

(* ------------------------------------------------------------------ *)
(* STATIC: cost and payoff of the static analysis suite. Three
   measurements on the ABL-RACE workloads: (1) analysis wall-time per
   program — the whole suite runs before any execution, so this is its
   entire cost; (2) recording overhead of the static suspect-site
   trigger vs the sampling race-detector trigger vs full value
   determinism, each with a replay-reproduction check on the failing
   workloads; (3) failure-determinism search attempts with and without
   the static site-priority hint. *)

let static_bench ~tiny ~json () =
  let open Ddet_replay in
  let open Ddet_analysis in
  let open Ddet_static in
  let open Mvm in
  (* the race-free half of ABL-RACE: the lock-protected counter
     (Experiment keeps its copy private, so the shape is rebuilt here) *)
  let locked_counter =
    let open Mvm.Dsl in
    program ~name:"locked-counter"
      ~regions:[ scalar "c" (Value.int 0) ]
      ~inputs:[] ~main:"main"
      [
        func "main" []
          [
            spawn "w" []; spawn "w" [];
            recv "d1" "done"; recv "d2" "done";
            lock "m"; assign "r" (g "c"); unlock "m"; output "out" (v "r");
          ];
        func "w" []
          [
            for_ "k" (i 0) (i 6)
              [ lock "m"; assign "t" (g "c"); store_g "c" (v "t" +: i 1);
                unlock "m" ];
            send "done" (i 1);
          ];
      ]
  in
  let failing_seed (app : App.t) =
    match Workload.find_failing_seed app with
    | Some (seed, _) -> seed
    | None -> invalid_arg ("no failing seed for " ^ app.App.name)
  in
  let msg = Msg_server.app () and mini = Miniht.app () in
  (* 1: analysis wall-time per program *)
  let reps = if tiny then 5 else 100 in
  let analysis_programs =
    [ ("locked-counter", locked_counter) ]
    @ List.map
        (fun (a : App.t) -> (a.App.name, a.App.labeled))
        [ Adder.app (); Bufover.app (); msg; mini; Cloudstore.app () ]
    @ List.init 3 (fun s ->
          ( Printf.sprintf "proggen-%d" s,
            Proggen.generate Proggen.default (Prng.create s) ))
  in
  let analysis_rows =
    List.map
      (fun (name, labeled) ->
        let report = Static_report.analyze labeled in
        let _, wall =
          time (fun () ->
              for _ = 1 to reps do
                ignore (Static_report.analyze labeled)
              done)
        in
        let lints = Static_report.lints report in
        let errors = List.length (Lint.errors lints) in
        ( name,
          wall *. 1e3 /. float_of_int reps,
          List.length (Static_report.races report),
          List.length (Static_report.suspect_sids report),
          errors,
          List.length lints - errors ))
      analysis_programs
  in
  Ddet_metrics.Report.print_section "STATIC analysis wall-time"
    (Ddet_metrics.Report.table
       ~headers:
         [ "program"; "ms/analysis"; "race cands"; "suspect sids"; "lint err";
           "lint warn" ]
       (List.map
          (fun (name, ms, cands, sids, errs, warns) ->
            [
              name; Printf.sprintf "%.3f" ms; string_of_int cands;
              string_of_int sids; string_of_int errs; string_of_int warns;
            ])
          analysis_rows));
  (* 2: ABL-RACE recording overhead, with reproduction checks *)
  let budget full small = if tiny then small else full in
  let replay_budget =
    budget
      { Search.max_attempts = 200; max_steps_per_attempt = 20_000;
        base_seed = 1; deadline_s = None }
      { Search.max_attempts = 30; max_steps_per_attempt = 4_000;
        base_seed = 1; deadline_s = None }
  in
  let abl_cases =
    [
      ("locked-counter", locked_counter, Spec.accept_all, 5, false);
      ("msg_server", msg.App.labeled, msg.App.spec, failing_seed msg, true);
      ("miniht", mini.App.labeled, mini.App.spec, failing_seed mini, true);
    ]
  in
  let overhead_rows =
    List.concat_map
      (fun (workload, labeled, spec, seed, failing) ->
        let report = Static_report.analyze labeled in
        let recorders =
          [
            ( "rcse+static-sites",
              (fun () ->
                Rcse_recorder.create (Static_report.site_selector report)),
              `Rcse );
            ( "rcse+static-trigger",
              (fun () ->
                Rcse_recorder.create (Static_report.trigger_selector report)),
              `Rcse );
            ( "rcse+sampling-trigger",
              (fun () ->
                Rcse_recorder.create
                  (Trigger.selector ~sticky:true
                     [
                       Trigger.of_race_detector
                         (Race_detector.create Race_detector.default_config);
                     ])),
              `Rcse );
            ("value-det", (fun () -> Value_recorder.create ()), `Value);
          ]
        in
        List.map
          (fun (recorder, create, kind) ->
            let original, log =
              Recorder.record (create ()) labeled ~spec
                ~world:(World.random ~seed)
            in
            let reproduced =
              if not failing then "-"
              else begin
                assert (original.Interp.failure <> None);
                let o =
                  match kind with
                  | `Rcse ->
                    Replayer.rcse ~budget:replay_budget ~strict:false labeled
                      ~spec log
                  | `Value ->
                    Replayer.value_det ~budget:replay_budget labeled ~spec log
                in
                if o.Replayer.result <> None then "yes" else "NO"
              end
            in
            ( workload, recorder,
              Ddet_record.Cost_model.(overhead default log),
              Log.entry_count log, Log.payload_bytes log, reproduced ))
          recorders)
      abl_cases
  in
  Ddet_metrics.Report.print_section "STATIC ABL-RACE recording overhead"
    (Ddet_metrics.Report.table
       ~headers:
         [ "workload"; "recorder"; "overhead"; "entries"; "bytes";
           "reproduces" ]
       (List.map
          (fun (w, r, ov, entries, bytes, repro) ->
            [
              w; r; Printf.sprintf "%.3fx" ov; string_of_int entries;
              string_of_int bytes; repro;
            ])
          overhead_rows)
     ^ "\n\nThe static selectors need no runtime detector: suspect sites come\n\
        from the lockset analysis, so the race-free workload records (and\n\
        pays) nothing at all. The site-granular selector logs interleaving\n\
        only at the suspect accesses themselves — enough to pin the racing\n\
        order — where the sticky trigger records everything from the first\n\
        suspect access onward and value determinism pays for the whole\n\
        data plane everywhere.\n");
  (* 3: search attempts saved by the site-priority hint *)
  let search_budget =
    budget
      { Search.max_attempts = 500; max_steps_per_attempt = 20_000;
        base_seed = 1; deadline_s = None }
      { Search.max_attempts = 40; max_steps_per_attempt = 4_000;
        base_seed = 1; deadline_s = None }
  in
  let priority_rows =
    List.map
      (fun ((app : App.t), seed) ->
        let report = Static_report.analyze app.App.labeled in
        let priority =
          { Search.sids = Static_report.suspect_sids report }
        in
        let _, log =
          Recorder.record (Failure_recorder.create ()) app.App.labeled
            ~spec:app.App.spec ~world:(World.random ~seed)
        in
        let uniform =
          Replayer.failure_det ~budget:search_budget app.App.labeled
            ~spec:app.App.spec log
        in
        let hinted =
          Replayer.failure_det ~budget:search_budget ~priority app.App.labeled
            ~spec:app.App.spec log
        in
        ( app.App.name,
          List.length priority.Search.sids,
          (uniform.Replayer.result <> None, uniform.Replayer.attempts),
          (hinted.Replayer.result <> None, hinted.Replayer.attempts) ))
      [ (msg, failing_seed msg); (mini, failing_seed mini) ]
  in
  Ddet_metrics.Report.print_section "STATIC site-priority search"
    (Ddet_metrics.Report.table
       ~headers:
         [ "workload"; "suspect sids"; "uniform ok"; "uniform attempts";
           "hinted ok"; "hinted attempts" ]
       (List.map
          (fun (w, sids, (uok, uat), (hok, hat)) ->
            [
              w; string_of_int sids; (if uok then "yes" else "NO");
              string_of_int uat; (if hok then "yes" else "NO");
              string_of_int hat;
            ])
          priority_rows));
  (* 4: the cross-node layer — message-flow analysis cost on the
     node-mapped apps, and lost-node partial-evidence search with vs
     without static steering (same stitched evidence, same budget) *)
  let node_apps =
    [
      (msg, "seed=5,partition:server+p0|p1:10-80");
      ( Cloudstore.app (),
        "seed=2,partition:coord+primary+client0+client1|secondary:50-400" );
    ]
  in
  let msgflow_rows =
    List.map
      (fun ((a : App.t), _) ->
        let map = Option.get a.App.nodes in
        let report = Static_report.analyze ~nodes:map a.App.labeled in
        let _, wall =
          time (fun () ->
              for _ = 1 to reps do
                ignore (Static_report.analyze ~nodes:map a.App.labeled)
              done)
        in
        let flow = Option.get (Static_report.msgflow report) in
        let comm_findings =
          List.filter
            (fun (f : Lint.finding) ->
              String.length f.Lint.rule >= 5
              && String.sub f.Lint.rule 0 5 = "comm-")
            (Static_report.lints report)
        in
        ( a.App.name,
          wall *. 1e3 /. float_of_int reps,
          List.length (Msgflow.channels flow),
          List.length (Msgflow.cross_edges flow),
          List.length comm_findings ))
      node_apps
  in
  Ddet_metrics.Report.print_section "STATIC cross-node analysis wall-time"
    (Ddet_metrics.Report.table
       ~headers:
         [ "app"; "ms/analysis"; "channels"; "cross edges"; "comm findings" ]
       (List.map
          (fun (name, ms, chans, edges, comms) ->
            [
              name; Printf.sprintf "%.3f" ms; string_of_int chans;
              string_of_int edges; string_of_int comms;
            ])
          msgflow_rows));
  let steer_budget =
    budget
      { Search.max_attempts = 400; max_steps_per_attempt = 50_000;
        base_seed = 1; deadline_s = None }
      { Search.max_attempts = 60; max_steps_per_attempt = 20_000;
        base_seed = 1; deadline_s = None }
  in
  let store = Ddet_record.Store.default () in
  let steered_rows =
    List.concat_map
      (fun ((app : App.t), plan_s) ->
        let plan =
          match Fault.of_string plan_s with Ok p -> p | Error e -> invalid_arg e
        in
        let prepared = Session.prepare Model.Perfect app in
        let report = Option.get (Session.static_report prepared) in
        let rec scan seed =
          if seed > 100 then invalid_arg ("no failing seed for " ^ app.App.name)
          else
            let original, log, causal =
              Session.record_dist ~faults:plan prepared ~seed
            in
            if
              original.Interp.failure <> None
              && original.Interp.steps < 20_000
            then (log, causal)
            else scan (seed + 1)
        in
        let log, causal = scan 1 in
        let base = Filename.temp_file "ddet_bench" ".steer" in
        Sys.remove base;
        ignore (Ddet_record.Sharded_log.save_via store ~base ~causal log);
        List.map
          (fun node ->
            let loaded =
              match Ddet_record.Sharded_log.load ~lose:[ node ] base with
              | Ok l -> l
              | Error e -> invalid_arg e
            in
            let st = Stitch.stitch loaded in
            let run ?steer () =
              Replayer.stitched ~budget:steer_budget ?steer app.App.labeled
                ~spec:app.App.spec st
            in
            let plain = run () in
            let h = Static_report.steer report ~lost:st.Stitch.lost in
            let steer =
              {
                Oracle.lost_tids = h.Static_report.lost_tids;
                hot_sids = h.Static_report.hot_sids;
                cold_input_tids = h.Static_report.cold_input_tids;
              }
            in
            let steered = run ~steer () in
            ( app.App.name, node,
              (plain.Replayer.result <> None, plain.Replayer.attempts),
              (steered.Replayer.result <> None, steered.Replayer.attempts) ))
          (Mvm.Node.nodes (Option.get app.App.nodes)))
      node_apps
  in
  Ddet_metrics.Report.print_section "STATIC steered lost-node search"
    (Ddet_metrics.Report.table
       ~headers:
         [ "app"; "lost"; "uninformed ok"; "uninformed attempts";
           "steered ok"; "steered attempts" ]
       (List.map
          (fun (w, lost, (uok, uat), (sok, sat)) ->
            [
              w; lost; (if uok then "yes" else "NO"); string_of_int uat;
              (if sok then "yes" else "NO"); string_of_int sat;
            ])
          steered_rows)
     ^ "\n\nSame stitched partial evidence and search budget; the steered\n\
        runs bias the lost nodes' free decision points toward the sites\n\
        that statically reach a survivor (and pin inputs of threads that\n\
        provably reach none).\n");
  if json || not tiny then begin
    let file = "BENCH_static.json" in
    let oc = open_out file in
    let analysis_json =
      String.concat ",\n"
        (List.map
           (fun (name, ms, cands, sids, errs, warns) ->
             Printf.sprintf
               "    { \"program\": %S, \"ms_per_analysis\": %.4f, \
                \"race_candidates\": %d, \"suspect_sids\": %d, \
                \"lint_errors\": %d, \"lint_warnings\": %d }"
               name ms cands sids errs warns)
           analysis_rows)
    in
    let overhead_json =
      String.concat ",\n"
        (List.map
           (fun (w, r, ov, entries, bytes, repro) ->
             Printf.sprintf
               "    { \"workload\": %S, \"recorder\": %S, \
                \"overhead\": %.4f, \"entries\": %d, \"payload_bytes\": %d, \
                \"reproduces\": %S }"
               w r ov entries bytes repro)
           overhead_rows)
    in
    let priority_json =
      String.concat ",\n"
        (List.map
           (fun (w, sids, (uok, uat), (hok, hat)) ->
             Printf.sprintf
               "    { \"workload\": %S, \"suspect_sids\": %d, \
                \"uniform_success\": %b, \"uniform_attempts\": %d, \
                \"hinted_success\": %b, \"hinted_attempts\": %d }"
               w sids uok uat hok hat)
           priority_rows)
    in
    let msgflow_json =
      String.concat ",\n"
        (List.map
           (fun (name, ms, chans, edges, comms) ->
             Printf.sprintf
               "    { \"app\": %S, \"ms_per_analysis\": %.4f, \
                \"channels\": %d, \"cross_edges\": %d, \
                \"comm_findings\": %d }"
               name ms chans edges comms)
           msgflow_rows)
    in
    let steered_json =
      String.concat ",\n"
        (List.map
           (fun (w, lost, (uok, uat), (sok, sat)) ->
             Printf.sprintf
               "    { \"app\": %S, \"lost\": %S, \
                \"uninformed_success\": %b, \"uninformed_attempts\": %d, \
                \"steered_success\": %b, \"steered_attempts\": %d }"
               w lost uok uat sok sat)
           steered_rows)
    in
    Printf.fprintf oc
      "{\n  \"tiny\": %b,\n  \"analysis\": [\n%s\n  ],\n\
       \  \"overhead\": [\n%s\n  ],\n  \"priority_search\": [\n%s\n  ],\n\
       \  \"msgflow\": [\n%s\n  ],\n  \"steered_search\": [\n%s\n  ]\n}\n"
      tiny analysis_json overhead_json priority_json msgflow_json steered_json;
    close_out oc;
    Printf.printf "wrote %s\n" file
  end

(* ------------------------------------------------------------------ *)
(* DIST: the cost of distributed evidence. Two measurements on the apps
   with node maps: (1) write overhead of per-node sharding (N shard
   writes + the causal manifest) vs one monolithic atomic write of the
   same log; (2) partial-evidence replay cost as a function of how many
   node shards were lost — attempts, inference steps and wall-clock,
   from complete evidence (the model's own replay) down to every
   surviving subset the stitcher can be handed. Always writes
   BENCH_dist.json: the JSON is the artifact CI tracks. *)

type dist_replay_row = {
  dd_app : string;
  dd_lost : string list;
  dd_reproduced : bool;
  dd_attempts : int;
  dd_steps : int;
  dd_wall : float;
}

let dist_bench ~tiny ~json:_ () =
  let open Ddet_replay in
  let reps = if tiny then 5 else 50 in
  let bud =
    if tiny then
      { Search.max_attempts = 60; max_steps_per_attempt = 20_000;
        base_seed = 1; deadline_s = None }
    else
      { Search.max_attempts = 400; max_steps_per_attempt = 50_000;
        base_seed = 1; deadline_s = None }
  in
  let cases =
    [
      (Msg_server.app (), "seed=5,partition:server+p0|p1:10-80");
      ( Cloudstore.app (),
        "seed=2,partition:coord+primary+client0+client1|secondary:50-400" );
    ]
  in
  let store = Ddet_record.Store.default () in
  let results =
    List.map
      (fun ((app : App.t), plan_s) ->
        let plan =
          match Mvm.Fault.of_string plan_s with
          | Ok p -> p
          | Error e -> invalid_arg e
        in
        let prepared = Session.prepare Model.Perfect app in
        let rec scan seed =
          if seed > 100 then invalid_arg ("no failing seed for " ^ app.App.name)
          else
            let original, log, causal =
              Session.record_dist ~faults:plan prepared ~seed
            in
            if
              original.Mvm.Interp.failure <> None
              && original.Mvm.Interp.steps < 20_000
            then (original, log, causal)
            else scan (seed + 1)
        in
        let _original, log, causal = scan 1 in
        let base = Filename.temp_file "ddet_bench" ".dist" in
        Sys.remove base;
        (* write overhead: monolithic atomic write vs the full shard set *)
        let mono = Ddet_record.Log_io.to_string log in
        let _, mono_s =
          min_time ~trials:3 (fun () ->
              for _ = 1 to reps do
                ignore
                  (Ddet_record.Store.atomic_write store (base ^ ".log") mono)
              done)
        in
        let _, shard_s =
          min_time ~trials:3 (fun () ->
              for _ = 1 to reps do
                ignore (Ddet_record.Sharded_log.save_via store ~base ~causal log)
              done)
        in
        let file_size p = if Sys.file_exists p then (Unix.stat p).Unix.st_size else 0 in
        let map = Option.get app.App.nodes in
        let nodes = Mvm.Node.nodes map in
        let shard_bytes =
          file_size (base ^ ".causal")
          + List.fold_left
              (fun acc n -> acc + file_size (base ^ "." ^ n ^ ".shard"))
              0 nodes
        in
        (* replay cost by lost-node count: none, each singleton, and the
           heaviest double loss (the first two nodes) *)
        let lose_sets =
          ([] :: List.map (fun n -> [ n ]) nodes)
          @ (match nodes with a :: b :: _ -> [ [ a; b ] ] | _ -> [])
        in
        let replay_rows =
          List.map
            (fun lose ->
              let loaded =
                match Ddet_record.Sharded_log.load ~lose base with
                | Ok l -> l
                | Error e -> invalid_arg e
              in
              let st = Stitch.stitch loaded in
              let o, dd_wall =
                time (fun () -> Session.replay_stitched ~budget:bud prepared st)
              in
              {
                dd_app = app.App.name;
                dd_lost = lose;
                dd_reproduced = o.Replayer.result <> None;
                dd_attempts = o.Replayer.attempts;
                dd_steps = o.Replayer.total_steps;
                dd_wall;
              })
            lose_sets
        in
        ( app.App.name, String.length mono, shard_bytes,
          mono_s /. float_of_int reps, shard_s /. float_of_int reps,
          replay_rows ))
      cases
  in
  let write_rows =
    List.map
      (fun (name, mono_b, shard_b, mono_s, shard_s, _) ->
        [
          name; string_of_int mono_b; string_of_int shard_b;
          Printf.sprintf "%.1f" (mono_s *. 1e6);
          Printf.sprintf "%.1f" (shard_s *. 1e6);
          Printf.sprintf "%.2f" (shard_s /. mono_s);
        ])
      results
  in
  Ddet_metrics.Report.print_section "DIST shard-write overhead"
    (Ddet_metrics.Report.table
       ~headers:
         [ "app"; "mono bytes"; "shard bytes"; "mono us"; "shards us";
           "ratio" ]
       write_rows
    ^ "\n\nOne monolithic atomic write vs one ddet-log shard per node plus\n\
       the causal manifest, same recording, through the same store. The\n\
       byte delta is the replicated header and per-line CRCs; the time\n\
       ratio is the price of independently losable evidence.\n");
  let all_replay = List.concat_map (fun (_, _, _, _, _, r) -> r) results in
  Ddet_metrics.Report.print_section "DIST partial-evidence replay cost"
    (Ddet_metrics.Report.table
       ~headers:[ "app"; "lost"; "reproduced"; "attempts"; "steps"; "wall s" ]
       (List.map
          (fun r ->
            [
              r.dd_app;
              (if r.dd_lost = [] then "-" else String.concat "+" r.dd_lost);
              (if r.dd_reproduced then "yes" else "NO");
              string_of_int r.dd_attempts;
              string_of_int r.dd_steps;
              Printf.sprintf "%.3f" r.dd_wall;
            ])
          all_replay)
    ^ "\n\nlost '-' is complete evidence (the model's own replay); every\n\
       other row drops those nodes' shards and pays partial-evidence\n\
       search for what died with them.\n");
  let file = "BENCH_dist.json" in
  let oc = open_out file in
  let write_json (name, mono_b, shard_b, mono_s, shard_s, _) =
    Printf.sprintf
      "    { \"app\": %S, \"mono_bytes\": %d, \"shard_bytes\": %d, \
       \"mono_write_s\": %.8f, \"shard_write_s\": %.8f, \
       \"write_ratio\": %.4f }"
      name mono_b shard_b mono_s shard_s (shard_s /. mono_s)
  in
  let replay_json r =
    Printf.sprintf
      "    { \"app\": %S, \"lost\": [%s], \"lost_count\": %d, \
       \"reproduced\": %b, \"attempts\": %d, \"steps\": %d, \
       \"wall_s\": %.6f }"
      r.dd_app
      (String.concat ", " (List.map (Printf.sprintf "%S") r.dd_lost))
      (List.length r.dd_lost) r.dd_reproduced r.dd_attempts r.dd_steps
      r.dd_wall
  in
  Printf.fprintf oc
    "{\n  \"tiny\": %b,\n  \"write\": [\n%s\n  ],\n  \"replay\": [\n%s\n  ]\n}\n"
    tiny
    (String.concat ",\n" (List.map write_json results))
    (String.concat ",\n" (List.map replay_json all_replay));
  close_out oc;
  Printf.printf "wrote %s\n" file

(* ------------------------------------------------------------------ *)
(* OBS: the tracer's own cost. The same session pipeline runs with the
   ambient tracer absent and installed; the preallocated ring and the
   one-ref-read disabled path exist precisely so the enabled figure
   stays within 5% of wall time — the number this section measures and
   records in BENCH_obs.json. Off/on trials are interleaved so clock
   noise and GC phase hit both variants alike. *)

type obs_row = {
  ob_workload : string;
  ob_reps : int;
  ob_off_s : float;
  ob_on_s : float;
  ob_events : int;  (** ring occupancy after the traced trials *)
  ob_dropped : int;
}

let obs_overhead r = (r.ob_on_s /. r.ob_off_s) -. 1.

let obs_bench ~tiny ~json:_ () =
  let open Ddet_replay in
  let reps = if tiny then 50 else 200 in
  let trials = if tiny then 3 else 5 in
  let budget =
    { Search.max_attempts = 40; max_steps_per_attempt = 10_000;
      base_seed = 1; deadline_s = None }
  in
  let config = { Config.default with Config.budget } in
  let failing_seed (app : App.t) =
    let rec scan seed =
      if seed > 200 then invalid_arg ("no failing seed for " ^ app.App.name)
      else
        let r = App.production_run app ~seed in
        if r.Mvm.Interp.failure <> None && r.Mvm.Interp.steps < 10_000 then seed
        else scan (seed + 1)
    in
    scan 1
  in
  let cases =
    [
      (* deterministic oracle replay: recording dominates, spans and the
         per-entry accumulator tally are the cost *)
      (Msg_server.app (), Model.Perfect, failing_seed (Msg_server.app ()));
      (* failure-directed search: counter bumps on the hot attempt loop *)
      (Miniht.app (), Model.Failure_det, failing_seed (Miniht.app ()));
    ]
  in
  let session prepared seed () =
    for _ = 1 to reps do
      let original, log = Session.record prepared ~seed in
      let outcome = Session.replay prepared log in
      ignore (Session.assess prepared ~original ~log outcome)
    done
  in
  let rows =
    List.map
      (fun ((app : App.t), model, seed) ->
        let prepared = Session.prepare ~config model app in
        let run = session prepared seed in
        (* warm both paths once: training runs, lazy plane maps *)
        run ();
        let t = Ddet_obs.Tracer.create () in
        let off = ref infinity and on = ref infinity in
        let measure_off () =
          Ddet_obs.Tracer.set_current None;
          let _, s = time run in
          if s < !off then off := s
        and measure_on () =
          let _, s = time (fun () -> Ddet_obs.Tracer.with_current t run) in
          if s < !on then on := s
        in
        (* alternate the order across trials: a fixed order lets one
           variant absorb the GC debt the other just ran up *)
        for i = 1 to trials do
          if i land 1 = 0 then begin measure_on (); measure_off () end
          else begin measure_off (); measure_on () end
        done;
        {
          ob_workload = Printf.sprintf "%s/%s" app.App.name (Model.name model);
          ob_reps = reps;
          ob_off_s = !off;
          ob_on_s = !on;
          ob_events = Ddet_obs.Tracer.length t;
          ob_dropped = Ddet_obs.Tracer.dropped t;
        })
      cases
  in
  Printf.printf "tracer overhead (%d sessions per trial, min of %d)\n\n" reps
    trials;
  Printf.printf "%-24s %12s %12s %10s\n" "workload" "off ms" "on ms" "overhead";
  List.iter
    (fun r ->
      Printf.printf "%-24s %12.3f %12.3f %9.2f%%\n" r.ob_workload
        (r.ob_off_s *. 1e3) (r.ob_on_s *. 1e3)
        (100. *. obs_overhead r))
    rows;
  let worst =
    List.fold_left (fun acc r -> Float.max acc (obs_overhead r)) neg_infinity
      rows
  in
  Printf.printf "\nworst overhead %.2f%% (budget 5%%)%s\n" (100. *. worst)
    (if worst <= 0.05 then "" else "  ** OVER BUDGET **");
  let file = "BENCH_obs.json" in
  let oc = open_out file in
  Printf.fprintf oc "{\n  \"tiny\": %b,\n  \"rows\": [\n%s\n  ],\n\
                    \  \"worst_overhead\": %.4f,\n  \"budget\": 0.05\n}\n"
    tiny
    (String.concat ",\n"
       (List.map
          (fun r ->
            Printf.sprintf
              "    {\"workload\": \"%s\", \"reps\": %d, \"off_s\": %.6f, \
               \"on_s\": %.6f, \"overhead\": %.4f, \"events\": %d, \
               \"dropped\": %d}"
              r.ob_workload r.ob_reps r.ob_off_s r.ob_on_s (obs_overhead r)
              r.ob_events r.ob_dropped)
          rows))
    worst;
  close_out oc;
  Printf.printf "wrote %s\n" file

(* ------------------------------------------------------------------ *)

let tiny_config =
  {
    Config.default with
    Config.budget =
      { Ddet_replay.Search.max_attempts = 20; max_steps_per_attempt = 2_000;
        base_seed = 1; deadline_s = None };
    value_budget =
      { Ddet_replay.Search.max_attempts = 3; max_steps_per_attempt = 20_000;
        base_seed = 1; deadline_s = None };
  }

let () =
  let rec parse (cmd, tiny, json, jobs) = function
    | [] -> (cmd, tiny, json, jobs)
    | "--tiny" :: rest -> parse (cmd, true, json, jobs) rest
    | "--json" :: rest -> parse (cmd, tiny, true, jobs) rest
    | ("--jobs" | "-j") :: n :: rest ->
      parse (cmd, tiny, json, int_of_string n) rest
    | arg :: rest when cmd = None -> parse (Some arg, tiny, json, jobs) rest
    | arg :: _ ->
      Printf.eprintf "unexpected argument %S\n" arg;
      exit 2
  in
  let cmd, tiny, json, jobs =
    parse (None, false, false, 1) (List.tl (Array.to_list Sys.argv))
  in
  let cmd = Option.value ~default:"all" cmd in
  let config = if tiny then tiny_config else Config.default in
  let fig_args f =
    if tiny then f ?config:(Some config) ?replays:(Some 1) ()
    else f ?config:None ?replays:None ()
  in
  match cmd with
  | "fig1" -> print (Experiment.render_fig1 (fig_args Experiment.fig1))
  | "fig2" -> print (Experiment.render_fig2 (fig_args Experiment.fig2))
  | "sec2" ->
    print (Experiment.sec2_adder ());
    print (Experiment.sec2_drop ())
  | "ablation" -> print (Experiment.render_ablation (Experiment.ablation_rcse ()))
  | "budget" -> print (Experiment.budget_sweep ())
  | "flight" -> print (Experiment.flight_sweep ())
  | "race" -> print (Experiment.race_detectors ())
  | "search" when tiny || json || jobs > 1 -> search_bench ~tiny ~jobs ~json ()
  | "search" ->
    print (Experiment.search_engines ~config ());
    search_bench ~tiny ~jobs ~json ()
  | "crash" -> crash_bench ~tiny ~json ()
  | "sanity" -> sanity ()
  | "governor" -> governor_bench ~tiny ~json ()
  | "dist" -> dist_bench ~tiny ~json ()
  | "obs" -> obs_bench ~tiny ~json ()
  | "static" -> static_bench ~tiny ~json ()
  | "open" ->
    print (Explore.experiment ());
    print (Frontier.experiment ())
  | "micro" -> micro ()
  | "all" ->
    List.iter print (Experiment.run_all ());
    print (Explore.experiment ());
    print (Frontier.experiment ());
    micro ()
  | other ->
    Printf.eprintf
      "unknown command %S (expected fig1|fig2|sec2|ablation|budget|flight|race|search|sanity|crash|governor|static|dist|obs|open|micro|all)\n"
      other;
    exit 2
