(* Artifact tripwire for the bench-smoke alias.

   Every bench section that produces a BENCH_*.json is expected to have
   that artifact committed at the repo root — the JSON is the evaluation
   evidence CI tracks, not a scratch file. A section that starts writing
   a new artifact without committing a reference copy silently breaks
   that contract (BENCH_dist.json went missing this way: the dist
   section wrote it on every run, but no committed copy ever existed).

   Usage: check_artifacts.exe <committed-dir>

   Scans the working directory (where the smoke run just wrote its
   artifacts) for BENCH_*.json and fails if any of them has no
   counterpart in <committed-dir>. *)

let () =
  if Array.length Sys.argv < 2 then begin
    prerr_endline "usage: check_artifacts.exe <committed-dir>";
    exit 2
  end;
  let committed_dir = Sys.argv.(1) in
  let is_bench name =
    String.length name > 6
    && String.sub name 0 6 = "BENCH_"
    && Filename.check_suffix name ".json"
  in
  let written =
    Sys.readdir "." |> Array.to_list |> List.filter is_bench
    |> List.sort compare
  in
  let missing =
    List.filter
      (fun name -> not (Sys.file_exists (Filename.concat committed_dir name)))
      written
  in
  if missing = [] then
    Printf.printf "bench artifacts ok (%d checked: %s)\n" (List.length written)
      (String.concat ", " written)
  else begin
    List.iter
      (Printf.eprintf
         "bench wrote %s but no committed copy exists at the repo root —\n\
          regenerate it (main.exe <section>) and commit the artifact\n")
      missing;
    exit 1
  end
