(* Fault injection and graceful replay degradation, end to end:

   1. run cloudstore under an adversarial fault plan (dropped and
      duplicated packets) until a production run fails;
   2. record it with the full recorder and save the log — the plan
      travels inside the log, so a replayer can rebuild the environment;
   3. corrupt the tail of the file, the way a half-shipped log arrives;
   4. strict loading refuses; salvage loading keeps the valid prefix and
      reports the damage;
   5. replay the salvaged log — the failure still reproduces — and
      assess it: a salvaged reproduction is capped at the DF floor of
      1/n, the paper's "degrade to 1/n, not to 0" stance.

   Run with: dune exec examples/fault_replay.exe *)

open Mvm
open Ddet
open Ddet_record
open Ddet_apps

let plan =
  Fault.make ~seed:11
    [
      Fault.drop ~prob:0.15 "ack_0";
      Fault.drop ~prob:0.15 "ack_1";
      Fault.duplicate ~prob:0.1 "ack_0";
      Fault.drop ~prob:0.12 "repl";
    ]

let () =
  let app = Cloudstore.app () in
  Printf.printf "fault plan: %s\n\n" (Fault.to_string plan);

  (* 1. a production failure under adversity *)
  let seed, production =
    match Workload.find_failing_seed ~faults:plan app with
    | Some (seed, r) -> (seed, r)
    | None -> failwith "no failing seed under the plan"
  in
  Printf.printf "production seed %d fails: %s\n" seed
    (match production.Interp.failure with
    | Some f -> Failure.to_string f
    | None -> "none");

  (* 2. record the run; the plan is stamped into the log *)
  let prepared = Session.prepare Model.Perfect app in
  let original, log = Session.record ~faults:plan prepared ~seed in
  let path = Stdlib.Filename.temp_file "fault_replay" ".log" in
  Log_io.save path log;
  Printf.printf "recorded %d entries to %s\n\n" (Log.entry_count log) path;

  (* 3. the log arrives damaged: the tail is gone, one line is rotted *)
  let s = Log_io.to_string log in
  let lines =
    Stdlib.String.split_on_char '\n' s
    |> List.filter (fun l -> String.length l > 0)
  in
  let keep = List.filteri (fun ix _ -> ix < List.length lines - 3) lines in
  let damaged = String.concat "\n" (keep @ [ "00000000 rotted bits" ]) ^ "\n" in
  let oc = open_out path in
  output_string oc damaged;
  close_out oc;

  (* 4. strict refuses, salvage recovers the prefix *)
  (match Log_io.load path with
  | Error msg -> Printf.printf "strict load refuses: %s\n" msg
  | Ok _ -> failwith "strict load accepted a corrupted log");
  let salvaged, damage =
    match Log_io.load_report ~mode:Log_io.Salvage path with
    | Ok (log', damage) -> (log', damage)
    | Error e -> failwith e
  in
  Format.printf "%a@.@." Log_io.pp_damage damage;

  (* 5. degraded replay: the failure reproduces, DF is floored at 1/n *)
  let outcome = Session.replay prepared salvaged in
  Format.printf "%a@." Ddet_replay.Replayer.pp_outcome outcome;
  (match outcome.Ddet_replay.Replayer.result with
  | Some r ->
    Printf.printf "replayed failure: %s\n\n"
      (match r.Interp.failure with
      | Some f -> Failure.to_string f
      | None -> "none")
  | None -> print_newline ());
  let a = Session.assess ~salvaged:true prepared ~original ~log:salvaged outcome in
  Format.printf "%a@.@." Ddet_metrics.Utility.pp a;
  Printf.printf
    "DF = %.2f: the salvaged log reproduces the failure, but a damaged\n\
     recording can no longer discriminate between the %d catalogued root\n\
     causes, so fidelity degrades to the 1/n floor instead of to zero.\n"
    a.Ddet_metrics.Utility.df
    (Ddet_metrics.Root_cause.n_causes app.App.catalog);
  Stdlib.Sys.remove path
