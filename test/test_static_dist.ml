(* Cross-node static analysis against live distributed evidence: the
   message-flow graph on the shipped apps, the causal soundness law on
   generated node-annotated programs (every dynamic cross-node edge is in
   the static over-approximation), static shard priority driving the
   write order, and statically-steered partial-evidence search doing no
   worse than the uninformed one. *)

open Mvm
open Ddet
open Ddet_record
open Ddet_replay
open Ddet_apps
open Ddet_static

let tmpdir () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ddet-sdist-%d" (Unix.getpid ()))
  in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  dir

let fresh_base =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat (tmpdir ()) (Printf.sprintf "rec%d" !n)

let msg_server = Msg_server.app ()
let msg_map = Option.get msg_server.App.nodes

let plan_of_string s =
  match Fault.of_string s with Ok p -> p | Error e -> Alcotest.fail e

let partition_plan = plan_of_string "seed=5,partition:server+p0|p1:10-80"

let record_failing ?(plan = partition_plan) ?(max_seed = 60) () =
  let prepared = Session.prepare Model.Perfect msg_server in
  let rec scan seed =
    if seed > max_seed then
      Alcotest.fail "no failing msg_server seed under the fault plan"
    else
      let original, log, causal =
        Session.record_dist ~faults:plan prepared ~seed
      in
      match original.Interp.failure with
      | Some (Failure.Spec_violation _) when original.Interp.steps < 5_000 ->
        (prepared, original, log, causal)
      | _ -> scan (seed + 1)
  in
  scan 1

let small_budget =
  {
    Search.max_attempts = 60;
    max_steps_per_attempt = 20_000;
    base_seed = 1;
    deadline_s = None;
  }

(* ------------------------------------------------------------------ *)
(* message-flow graph on the shipped topology *)

let test_msgflow_msg_server () =
  let flow = Msgflow.analyze ~map:msg_map msg_server.App.labeled in
  Alcotest.(check (list string))
    "channels" [ "done0"; "done1"; "fin0"; "fin1" ] (Msgflow.channels flow);
  (* each producer reports on its own done channel; the server confirms
     on the matching fin channel — and nothing else crosses nodes *)
  Alcotest.(check bool) "done0: p0 -> server" true
    (Msgflow.has_edge flow ~chan:"done0" ~from_node:"p0" ~to_node:"server");
  Alcotest.(check bool) "fin1: server -> p1" true
    (Msgflow.has_edge flow ~chan:"fin1" ~from_node:"server" ~to_node:"p1");
  Alcotest.(check bool) "p1 never sends done0" false
    (Msgflow.has_edge flow ~chan:"done0" ~from_node:"p1" ~to_node:"server");
  Alcotest.(check int) "four cross edges"
    4
    (List.length (Msgflow.cross_edges flow));
  (* reachability: producers talk to the server and back, never to each
     other directly — but transitively p0 reaches p1 through the server *)
  Alcotest.(check bool) "p0 reaches server" true
    (Msgflow.reaches flow "p0" "server");
  Alcotest.(check bool) "server reaches p1" true
    (Msgflow.reaches flow "server" "p1");
  Alcotest.(check bool) "p0 reaches p1 via server" true
    (Msgflow.reaches flow "p0" "p1");
  (* every channel is hot when one producer is lost: done0 lands on the
     server, and the fin/done cycle forwards onwards *)
  Alcotest.(check bool) "done0 hot when p0 lost" true
    (List.mem "done0"
       (Msgflow.hot_channels flow ~lost:[ "p0" ] ~survivors:[ "server"; "p1" ]))

let test_report_views () =
  let report =
    Static_report.analyze ~nodes:msg_map msg_server.App.labeled
  in
  let views = Static_report.node_views report in
  Alcotest.(check (list string))
    "view order" [ "server"; "p0"; "p1" ]
    (List.map (fun (v : Static_report.node_view) -> v.node) views);
  let p0 =
    List.find (fun (v : Static_report.node_view) -> v.node = "p0") views
  in
  Alcotest.(check (list int)) "p0 tids" [ 1 ] p0.tids;
  Alcotest.(check (list string)) "p0 functions" [ "producer0" ] p0.fnames;
  Alcotest.(check bool) "p0 has suspects" true (p0.suspects <> []);
  Alcotest.(check (list string))
    "p0 channels" [ "done0"; "fin0" ] p0.channels;
  (* the producers carry the shared-counter suspects, so they outrank
     the server in shard priority *)
  Alcotest.(check (list string))
    "shard priority" [ "p0"; "p1"; "server" ]
    (Static_report.shard_priority report)

let test_steer_hints () =
  let report =
    Static_report.analyze ~nodes:msg_map msg_server.App.labeled
  in
  let h = Static_report.steer report ~lost:[ "p0" ] in
  Alcotest.(check (list int)) "lost tids" [ 1 ] h.Static_report.lost_tids;
  Alcotest.(check bool) "hot sids nonempty" true
    (h.Static_report.hot_sids <> []);
  (* p0 statically reaches the server, so its inputs stay searchable *)
  Alcotest.(check (list int)) "no cold threads" []
    h.Static_report.cold_input_tids

let test_steer_cold_isolated_node () =
  (* a node with no communication sites provably never influenced a
     survivor: its threads' inputs are pinned, not searched *)
  let labeled =
    Dsl.(
      program ~name:"iso" ~regions:[ scalar "c" (Value.int 0) ]
        ~inputs:[ ("x", [ Value.int 0; Value.int 1 ]) ]
        ~main:"main"
        [
          func "main" [] [ spawn "hermit" []; store_g "c" (i 1) ];
          func "hermit" [] [ input "t" "x"; assign "u" (v "t") ];
        ])
  in
  let map =
    Node.make ~nodes:[ "a"; "b" ] ~assign:[ ("main", "a"); ("hermit", "b") ]
  in
  let report = Static_report.analyze ~nodes:map labeled in
  let h = Static_report.steer report ~lost:[ "b" ] in
  Alcotest.(check (list int)) "hermit tid lost" [ 1 ] h.Static_report.lost_tids;
  Alcotest.(check (list int)) "hermit inputs pinned" [ 1 ]
    h.Static_report.cold_input_tids

(* ------------------------------------------------------------------ *)
(* soundness laws on generated node-annotated programs *)

let prop_causal_soundness =
  QCheck2.Test.make
    ~name:"every dynamic cross-node causal edge is a static msgflow edge"
    ~count:40
    ~print:(fun (p, w) ->
      Printf.sprintf "program seed %d, world seed %d" p w)
    QCheck2.Gen.(
      map2 (fun p w -> (p, w)) (int_range 1 5_000) (int_range 1 5_000))
    (fun (pseed, wseed) ->
      let labeled, map =
        Proggen.generate_nodes Proggen.default (Prng.create pseed)
      in
      let flow = Msgflow.analyze ~map labeled in
      let on_event, finish =
        Causal.monitor ~map ~main_fname:labeled.Label.prog.Ast.main ()
      in
      ignore
        (Interp.run ~max_steps:20_000 ~monitors:[ on_event ] labeled
           (World.random ~seed:wseed));
      let causal = finish () in
      List.for_all
        (fun (e : Causal.edge) ->
          Msgflow.has_edge flow ~chan:e.Causal.chan
            ~from_node:e.Causal.send_node ~to_node:e.Causal.recv_node)
        causal.Causal.edges)

let prop_mhp_subset =
  QCheck2.Test.make
    ~name:"node-aware mhp only ever shrinks callgraph concurrency"
    ~count:40
    ~print:(fun p -> Printf.sprintf "program seed %d" p)
    QCheck2.Gen.(int_range 1 5_000)
    (fun pseed ->
      let labeled, map =
        Proggen.generate_nodes Proggen.default (Prng.create pseed)
      in
      let graph = Callgraph.build labeled in
      let mhp = Mhp.analyze ~map graph in
      let accs = Callgraph.accesses graph in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              (not (Mhp.concurrent mhp a b)) || Callgraph.concurrent graph a b)
            accs)
        accs)

(* ------------------------------------------------------------------ *)
(* static shard priority drives the write order *)

let test_priority_write_order () =
  let prepared, _original, log, causal = record_failing () in
  let order = ref [] in
  let s = Store.local () in
  let capture p =
    if Filename.check_suffix p ".shard" && not (List.mem p !order) then
      order := !order @ [ p ]
  in
  let store =
    {
      s with
      Store.write =
        (fun p b ->
          capture p;
          s.Store.write p b);
      append =
        (fun p b ->
          capture p;
          s.Store.append p b);
    }
  in
  let priority = Session.shard_priority prepared in
  Alcotest.(check (list string))
    "priority from the static report" [ "p0"; "p1"; "server" ] priority;
  let base = fresh_base () in
  let report = Sharded_log.save_via ~priority store ~base ~causal log in
  Alcotest.(check bool) "save ok" true (Sharded_log.save_ok report);
  let node_of p = Scanf.sscanf (Filename.basename p) "%_s@.%s@.shard" Fun.id in
  Alcotest.(check (list string))
    "shards written most-diagnostic first" [ "p0"; "p1"; "server" ]
    (List.map node_of !order);
  (* the report stays in node order regardless of the write order *)
  Alcotest.(check (list string))
    "report in node order" [ "server"; "p0"; "p1" ]
    (List.map fst report.Sharded_log.shard_results);
  (* and the recording loads back whole *)
  match Sharded_log.load base with
  | Error e -> Alcotest.fail e
  | Ok loaded ->
    Alcotest.(check bool) "manifest complete" true
      loaded.Sharded_log.manifest_complete

(* ------------------------------------------------------------------ *)
(* statically-steered partial-evidence search *)

let steer_of prepared (st : Stitch.t) =
  match Session.static_report prepared with
  | None -> Alcotest.fail "msg_server must have a static report"
  | Some report ->
    let h = Static_report.steer report ~lost:st.Stitch.lost in
    {
      Oracle.lost_tids = h.Static_report.lost_tids;
      hot_sids = h.Static_report.hot_sids;
      cold_input_tids = h.Static_report.cold_input_tids;
    }

(* losing each node in turn: the steered search must reproduce whatever
   the uninformed search reproduces, in no more attempts — the static
   hints only concentrate the search, they never exclude a schedule *)
let test_steered_no_worse () =
  let prepared, original, log, causal = record_failing () in
  let base = fresh_base () in
  ignore (Sharded_log.save_via (Store.default ()) ~base ~causal log);
  List.iter
    (fun node ->
      let loaded =
        match Sharded_log.load ~lose:[ node ] base with
        | Ok l -> l
        | Error e -> Alcotest.fail e
      in
      let st = Stitch.stitch loaded in
      let run ?steer () =
        Replayer.stitched ~budget:small_budget ?steer
          prepared.Session.app.App.labeled ~spec:msg_server.App.spec st
      in
      let plain = run () in
      let steered = run ~steer:(steer_of prepared st) () in
      let code = Replayer.exit_code steered in
      Alcotest.(check bool)
        (Printf.sprintf "lose %s: steered honest exit %d" node code)
        true
        (code = Replayer.exit_ok || code = Replayer.exit_partial);
      (match steered.Replayer.result with
      | Some r ->
        Alcotest.(check bool)
          (Printf.sprintf "lose %s: failure class preserved" node)
          true
          (match (original.Interp.failure, r.Interp.failure) with
          | Some (Failure.Spec_violation a), Some (Failure.Spec_violation b)
            ->
            String.equal a b
          | Some _, Some _ -> true
          | _ -> false)
      | None -> ());
      if Replayer.exit_code plain = Replayer.exit_ok then (
        Alcotest.(check bool)
          (Printf.sprintf "lose %s: steered reproduces too" node)
          true
          (Replayer.exit_code steered = Replayer.exit_ok);
        Alcotest.(check bool)
          (Printf.sprintf "lose %s: steered attempts %d <= plain %d" node
             steered.Replayer.attempts plain.Replayer.attempts)
          true
          (steered.Replayer.attempts <= plain.Replayer.attempts)))
    (Node.nodes msg_map)

let () =
  Alcotest.run "static-dist"
    [
      ( "msgflow",
        [
          Alcotest.test_case "msg_server topology" `Quick
            test_msgflow_msg_server;
          Alcotest.test_case "per-node report views" `Quick test_report_views;
          Alcotest.test_case "steer hints on a lost producer" `Quick
            test_steer_hints;
          Alcotest.test_case "isolated node pins its inputs" `Quick
            test_steer_cold_isolated_node;
        ] );
      ( "laws",
        [
          QCheck_alcotest.to_alcotest prop_causal_soundness;
          QCheck_alcotest.to_alcotest prop_mhp_subset;
        ] );
      ( "wiring",
        [
          Alcotest.test_case "priority-ordered shard writes" `Quick
            test_priority_write_order;
          Alcotest.test_case "steered search no worse than uninformed" `Slow
            test_steered_no_worse;
        ] );
    ]
