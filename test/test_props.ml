(* Property-based tests (qcheck): record/replay round-trip laws over
   randomly generated concurrent programs, cost-model algebra, PRNG and
   data-structure invariants. *)

open Mvm
open Ddet_record
open Ddet_replay

(* ------------------------------------------------------------------ *)
(* generators *)

(* A generated scenario: a random program plus a production seed. The
   qcheck generator draws two ints and proggen does the heavy lifting;
   shrinking the ints shrinks toward small seeds, which is good enough for
   diagnosis (the program is reconstructible from pseed). *)
let scenario_gen =
  QCheck2.Gen.(
    map2
      (fun pseed wseed -> (pseed, wseed))
      (int_range 1 5_000) (int_range 1 5_000))

let program_of pseed = Proggen.generate Proggen.default (Prng.create pseed)

let print_scenario (pseed, wseed) =
  Printf.sprintf "program seed %d, world seed %d" pseed wseed

let record_run recorder labeled wseed =
  Recorder.record recorder labeled ~spec:Spec.accept_all
    ~world:(World.random ~seed:wseed)

(* ------------------------------------------------------------------ *)
(* round-trip laws *)

(* Perfect determinism: replaying the full log reproduces the execution
   event-for-event (schedules, outputs, final status). *)
let prop_perfect_roundtrip =
  QCheck2.Test.make ~name:"perfect record/replay reproduces the schedule"
    ~count:60 ~print:print_scenario scenario_gen (fun (pseed, wseed) ->
      let labeled = program_of pseed in
      let original, log = record_run (Full_recorder.create ()) labeled wseed in
      let outcome = Replayer.perfect labeled ~spec:Spec.accept_all log in
      match outcome.Replayer.result with
      | None -> false
      | Some replay ->
        Trace.sched_points original.Interp.trace
        = Trace.sched_points replay.Interp.trace
        && original.Interp.outputs = replay.Interp.outputs)

(* Value determinism: each thread's observed read values replay exactly,
   whatever schedule the replayer picks. *)
let prop_value_thread_projection =
  QCheck2.Test.make ~name:"value replay preserves per-thread read projections"
    ~count:60 ~print:print_scenario scenario_gen (fun (pseed, wseed) ->
      let labeled = program_of pseed in
      let original, log = record_run (Value_recorder.create ()) labeled wseed in
      let handle = Oracle.value_det ~seed:(wseed + 1) log in
      let replay =
        Interp.run ~max_steps:100_000 labeled handle.Oracle.world
      in
      (* generated programs always terminate; a hung replay is a bug *)
      replay.Interp.status = Interp.Done
      && List.for_all
           (fun tid ->
             Trace.reads_by original.Interp.trace tid
             = Trace.reads_by replay.Interp.trace tid)
           [ 0; 1; 2 ])

(* Value determinism pins each thread's outputs — but not their global
   interleaving across threads: that is precisely iDNA's relaxation (no
   cross-CPU causal order), and qcheck found the counterexample that keeps
   this property honest. *)
let outputs_by_thread (r : Interp.result) tid =
  Trace.fold
    (fun acc (e : Event.t) ->
      match e.Event.kind with
      | Event.Out io when e.Event.tid = tid ->
        (io.Event.chan, io.Event.value.Value.v) :: acc
      | _ -> acc)
    [] r.Interp.trace
  |> List.rev

let prop_value_outputs =
  QCheck2.Test.make ~name:"value replay reproduces per-thread outputs"
    ~count:60 ~print:print_scenario scenario_gen (fun (pseed, wseed) ->
      let labeled = program_of pseed in
      let original, log = record_run (Value_recorder.create ()) labeled wseed in
      let handle = Oracle.value_det ~seed:(wseed + 7) log in
      let replay = Interp.run ~max_steps:100_000 labeled handle.Oracle.world in
      List.for_all
        (fun tid -> outputs_by_thread original tid = outputs_by_thread replay tid)
        [ 0; 1; 2 ])

(* RCSE at always-high fidelity is perfect determinism. *)
let prop_rcse_full_fidelity_roundtrip =
  QCheck2.Test.make ~name:"always-high rcse replays like perfect determinism"
    ~count:40 ~print:print_scenario scenario_gen (fun (pseed, wseed) ->
      let labeled = program_of pseed in
      let recorder =
        Rcse_recorder.create (Fidelity_level.always Fidelity_level.High)
      in
      let original, log = record_run recorder labeled wseed in
      let handle = Oracle.rcse ~seed:1 log in
      let replay =
        Interp.run ~max_steps:100_000 ~abort:handle.Oracle.abort labeled
          handle.Oracle.world
      in
      (not (handle.Oracle.violated ()))
      && original.Interp.outputs = replay.Interp.outputs)

(* The same production seed always yields the same log (recording is a
   pure function of program and world). *)
let prop_recording_deterministic =
  QCheck2.Test.make ~name:"recording is deterministic" ~count:60
    ~print:print_scenario scenario_gen (fun (pseed, wseed) ->
      let labeled = program_of pseed in
      let _, log1 = record_run (Value_recorder.create ()) labeled wseed in
      let _, log2 = record_run (Value_recorder.create ()) labeled wseed in
      log1.Log.entries = log2.Log.entries)

(* Output-determinism acceptance: the original execution trivially
   satisfies its own output constraint, and the streaming prefix check
   agrees with the final check on it. *)
let prop_output_constraint_reflexive =
  QCheck2.Test.make ~name:"output constraints accept the original run"
    ~count:60 ~print:print_scenario scenario_gen (fun (pseed, wseed) ->
      let labeled = program_of pseed in
      let original, log = record_run (Output_recorder.create ()) labeled wseed in
      let abort = Constraints.output_prefix_abort log in
      let streaming_ok = ref true in
      Trace.iter
        (fun e -> if abort e <> None then streaming_ok := false)
        original.Interp.trace;
      Constraints.outputs_match log original && !streaming_ok)

(* Serialization: parse (print log) = log, over logs produced by real
   recorders on random programs. *)
let prop_log_io_roundtrip =
  QCheck2.Test.make ~name:"log serialization round-trips" ~count:60
    ~print:print_scenario scenario_gen (fun (pseed, wseed) ->
      let labeled = program_of pseed in
      let recorder =
        match pseed mod 5 with
        | 0 -> Full_recorder.create ()
        | 1 -> Value_recorder.create ()
        | 2 -> Sync_recorder.create ()
        | 3 -> Output_recorder.create ()
        | _ -> Rcse_recorder.create (Fidelity_level.always Fidelity_level.High)
      in
      let _, log = record_run recorder labeled wseed in
      match Log_io.of_string (Log_io.to_string log) with
      | Ok log' ->
        log'.Log.entries = log.Log.entries
        && log'.Log.base_steps = log.Log.base_steps
        && log'.Log.failure = log.Log.failure
      | Error _ -> false)

(* Serialization survives arbitrary byte strings in payload positions:
   inputs, read values, marks and crash messages. *)
let prop_log_io_arbitrary_payloads =
  QCheck2.Test.make ~name:"log serialization survives arbitrary payloads"
    ~count:100 ~print:(fun ss -> String.concat "|" (List.map String.escaped ss))
    QCheck2.Gen.(list_size (int_range 1 8) string)
    (fun payloads ->
      let entries =
        List.concat_map
          (fun s ->
            [
              Log.Input { tid = 0; chan = "c"; value = Value.str s };
              Log.Read_val
                { tid = 1; sid = 2; kind = Log.Mem; value = Value.str s };
              Log.Mark s;
            ])
          payloads
      in
      let log =
        Log.make ~recorder:"prop" ~entries ~base_steps:1
          ~failure:(Some (Mvm.Failure.Crash { sid = 1; msg = List.hd payloads }))
          ()
      in
      match Log_io.of_string (Log_io.to_string log) with
      | Ok log' -> log'.Log.entries = entries && log'.Log.failure = log.Log.failure
      | Error _ -> false)

(* Graceful degradation: whatever single line of a valid v2 log is
   corrupted — magic, header, entry or trailer — salvage loading still
   returns a log, loses at most that one entry, keeps the survivors in
   order, and reports the damage. *)
let prop_salvage_single_line_corruption =
  QCheck2.Test.make ~name:"salvage survives any single-line corruption"
    ~count:80
    ~print:(fun ((pseed, wseed), line) ->
      Printf.sprintf "%s, corrupt line %d" (print_scenario (pseed, wseed)) line)
    QCheck2.Gen.(pair scenario_gen (int_range 0 10_000))
    (fun ((pseed, wseed), line) ->
      let labeled = program_of pseed in
      let _, log = record_run (Full_recorder.create ()) labeled wseed in
      let lines =
        String.split_on_char '\n' (Log_io.to_string log)
        |> List.filter (fun l -> String.length l > 0)
      in
      let ix = line mod List.length lines in
      let damaged =
        String.concat "\n"
          (List.mapi (fun k l -> if k = ix then "!!corrupted!!" else l) lines)
      in
      let rec subsequence xs ys =
        match (xs, ys) with
        | [], _ -> true
        | _, [] -> false
        | x :: xs', y :: ys' ->
          if x = y then subsequence xs' ys' else subsequence xs ys'
      in
      match Log_io.of_string_report ~mode:Log_io.Salvage damaged with
      | Ok (log', damage) ->
        Log_io.is_damaged damage
        && List.length log'.Log.entries >= List.length log.Log.entries - 1
        && subsequence log'.Log.entries log.Log.entries
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* node-fault lowering *)

(* Node-granular faults are sugar, not new nondeterminism: lowering a
   merged plan (node faults + channel/thread primitives) yields exactly
   the plan a human would write by hand against the node map — and
   injecting either into the same world drives a step-for-step identical
   execution. The law quantifies over partition shapes, fault windows,
   which node faults ride along, and the production seed. *)
let node_law_app = Ddet_apps.Msg_server.app ()

let prop_node_faults_are_sugar =
  QCheck2.Test.make ~name:"node faults lower to their thread-level spelling"
    ~count:60
    ~print:(fun (shape, from, len, flags, wseed) ->
      Printf.sprintf "shape %d, window %d+%d, flags %d, world seed %d" shape
        from len flags wseed)
    QCheck2.Gen.(
      tup5 (int_range 0 2) (int_range 0 200) (int_range 1 200) (int_range 0 7)
        (int_range 1 1_000))
    (fun (shape, from, len, flags, wseed) ->
      let app = node_law_app in
      let map = Option.get app.Ddet_apps.App.nodes in
      let labeled = app.Ddet_apps.App.labeled in
      let prog = labeled.Label.prog in
      let groups =
        match shape with
        | 0 -> [ [ "server"; "p0" ]; [ "p1" ] ]
        | 1 -> [ [ "server" ]; [ "p0"; "p1" ] ]
        | _ -> [ [ "server" ]; [ "p0" ]; [ "p1" ] ]
      in
      let until = from + len in
      let crash_node = [| "server"; "p0"; "p1" |].(flags mod 3) in
      (* sugared spelling and its hand-desugared twin, built in lockstep:
         each (fault, expansion) pair keeps the two plans aligned *)
      let pieces =
        [ ( Fault.partition ~groups ~from_step:from ~until_step:until,
            List.map
              (fun chan -> Fault.delay ~chan ~from_step:from ~until_step:until)
              (Node.cut_channels map prog ~groups) ) ]
        @ (if flags land 1 = 1 then
             [ ( Fault.node_crash ~node:crash_node ~at_step:until,
                 List.map
                   (fun tid -> Fault.crash ~tid ~at_step:until)
                   (Node.members map prog crash_node) ) ]
           else [])
        @ (if flags land 2 = 2 then
             [ ( Fault.node_restart ~node:"p1" ~from_step:from ~until_step:until,
                 List.map
                   (fun tid -> Fault.stall ~tid ~from_step:from ~until_step:until)
                   (Node.members map prog "p1") ) ]
           else [])
        (* a channel primitive merged in: lowering must pass it through *)
        @ [ (Fault.drop ~prob:0.2 "done0", [ Fault.drop ~prob:0.2 "done0" ]) ]
      in
      let sugared = Fault.make ~seed:wseed (List.map fst pieces) in
      let by_hand = Fault.make ~seed:wseed (List.concat_map snd pieces) in
      let lowered = Fault.lower ~map ~prog sugared in
      (* data identity: lowering IS the hand spelling *)
      (not (Fault.has_node_faults lowered))
      && Fault.to_string lowered = Fault.to_string by_hand
      &&
      (* behavioral identity, step for step *)
      let run plan =
        Interp.run ~max_steps:5_000 labeled
          (Fault.inject plan (World.random ~seed:wseed))
      in
      let a = run lowered and b = run by_hand in
      Trace.events a.Interp.trace = Trace.events b.Interp.trace
      && a.Interp.outputs = b.Interp.outputs
      && a.Interp.failure = b.Interp.failure
      && a.Interp.steps = b.Interp.steps)

(* ------------------------------------------------------------------ *)
(* cost model algebra *)

let entry_gen =
  QCheck2.Gen.(
    oneof
      [
        return (Log.Sched { tid = 0; sid = 1 });
        return (Log.Sync { tid = 0; sid = 1; op = Log.Op_spawn });
        map (fun n -> Log.Input { tid = 0; chan = "c"; value = Value.int n }) small_int;
        map
          (fun s ->
            Log.Read_val { tid = 0; sid = 1; kind = Log.Mem; value = Value.str s })
          string_small;
        return (Log.Failure_desc Mvm.Failure.Hang);
        return (Log.Mark "m");
      ])

let prop_cost_nonnegative =
  QCheck2.Test.make ~name:"entry costs are non-negative" ~count:200 entry_gen
    (fun e -> Cost_model.entry_cost Cost_model.default e >= 0.0)

let prop_overhead_lower_bound =
  QCheck2.Test.make ~name:"overhead is at least 1.0" ~count:100
    QCheck2.Gen.(list_size (int_range 0 50) entry_gen)
    (fun entries ->
      let log = Log.make ~recorder:"t" ~entries ~base_steps:10 ~failure:None () in
      Cost_model.overhead Cost_model.default log >= 1.0)

let prop_cost_additive =
  QCheck2.Test.make ~name:"recording cost is additive over entries" ~count:100
    QCheck2.Gen.(pair (list_size (int_range 0 20) entry_gen) (list_size (int_range 0 20) entry_gen))
    (fun (e1, e2) ->
      let mk entries = Log.make ~recorder:"t" ~entries ~base_steps:1 ~failure:None () in
      let c l = Cost_model.recording_cost Cost_model.default l in
      abs_float (c (mk (e1 @ e2)) -. (c (mk e1) +. c (mk e2))) < 1e-9)

(* ------------------------------------------------------------------ *)
(* prng and containers *)

let prop_prng_range =
  QCheck2.Test.make ~name:"prng int stays in range" ~count:200
    QCheck2.Gen.(pair int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Prng.create seed in
      let v = Prng.int rng bound in
      v >= 0 && v < bound)

let prop_prng_deterministic =
  QCheck2.Test.make ~name:"prng streams are seed-deterministic" ~count:100
    QCheck2.Gen.int (fun seed ->
      let a = Prng.create seed and b = Prng.create seed in
      List.init 20 (fun _ -> Prng.int a 1000)
      = List.init 20 (fun _ -> Prng.int b 1000))

let prop_vec_models_list =
  QCheck2.Test.make ~name:"vec behaves like a list" ~count:200
    QCheck2.Gen.(list small_int)
    (fun xs ->
      let v = Vec.of_list xs in
      Vec.to_list v = xs
      && Vec.length v = List.length xs
      && Vec.fold (fun acc x -> acc + x) 0 v = List.fold_left ( + ) 0 xs
      && Vec.filter (fun x -> x mod 2 = 0) v = List.filter (fun x -> x mod 2 = 0) xs)

let prop_taint_union =
  QCheck2.Test.make ~name:"taint union is commutative and idempotent" ~count:200
    QCheck2.Gen.(pair (list_size (int_range 0 5) (string_size (int_range 1 3)))
                   (list_size (int_range 0 5) (string_size (int_range 1 3))))
    (fun (xs, ys) ->
      let of_list l = List.fold_left (fun t x -> Taint.union t (Taint.singleton x)) Taint.empty l in
      let a = of_list xs and b = of_list ys in
      Taint.equal (Taint.union a b) (Taint.union b a)
      && Taint.equal (Taint.union a a) a)

(* Trace.scalar_at agrees with a reference fold over writes. *)
let prop_scalar_reconstruction =
  QCheck2.Test.make ~name:"scalar_at agrees with the write history" ~count:60
    ~print:print_scenario scenario_gen (fun (pseed, wseed) ->
      let labeled = program_of pseed in
      let r = Interp.run labeled (World.random ~seed:wseed) in
      let writes = Trace.writes_to_scalar r.Interp.trace "s0" in
      let final = Trace.scalar_at r.Interp.trace "s0" ~init:(Value.int 0) ~step:max_int in
      match List.rev writes with
      | [] -> Value.equal final (Value.int 0)
      | (_, _, last) :: _ -> Value.equal final last)

(* ------------------------------------------------------------------ *)
(* DFS state-hash pruning *)

let print_pseed pseed = Printf.sprintf "program seed %d" pseed

let dfs_budget =
  { Search.max_attempts = 40; max_steps_per_attempt = 2_000; base_seed = 1; deadline_s = None }

(* Soundness: every prefix the pruner skips, re-run in full, reproduces
   the (status, outputs, failure) projection of a run the search had
   already evaluated — pruning never discards unseen behaviour. *)
let prop_pruning_sound =
  QCheck2.Test.make ~name:"dfs pruning only skips already-covered behaviour"
    ~count:40 ~print:print_pseed
    QCheck2.Gen.(int_range 1 5_000)
    (fun pseed ->
      let labeled = program_of pseed in
      let evaluated = ref [] in
      let score r =
        evaluated := r :: !evaluated;
        0.0
      in
      let pruned = ref [] in
      let (_ : Search.outcome) =
        Search.dfs_schedules ~score
          ~on_prune:(fun ~prefix -> pruned := Array.copy prefix :: !pruned)
          dfs_budget ~spec:Spec.accept_all
          ~accept:(fun _ -> false)
          labeled
      in
      let proj (r : Interp.result) =
        (r.Interp.status, r.Interp.outputs, r.Interp.failure)
      in
      let seen = List.map proj !evaluated in
      List.for_all
        (fun prefix ->
          let r, _ =
            Search.run_schedule_prefix
              ~max_steps:dfs_budget.Search.max_steps_per_attempt ~prefix
              labeled
          in
          List.mem (proj r) seen)
        !pruned)

(* Completeness is not traded away: whenever the unpruned DFS reproduces
   a schedule-dependent deviation within the budget, the pruned DFS does
   too, in at most as many attempts. *)
let prop_pruning_preserves_success =
  QCheck2.Test.make ~name:"dfs pruning preserves reproduction" ~count:40
    ~print:print_pseed
    QCheck2.Gen.(int_range 1 5_000)
    (fun pseed ->
      let labeled = program_of pseed in
      let base, _ =
        Search.run_schedule_prefix
          ~max_steps:dfs_budget.Search.max_steps_per_attempt ~prefix:[||]
          labeled
      in
      let accept r =
        r.Interp.outputs <> base.Interp.outputs
        || r.Interp.failure <> base.Interp.failure
      in
      let p =
        Search.dfs_schedules dfs_budget ~spec:Spec.accept_all ~accept labeled
      in
      let n =
        Search.dfs_schedules ~prune:false dfs_budget ~spec:Spec.accept_all
          ~accept labeled
      in
      (not n.Search.stats.Search.success || p.Search.stats.Search.success)
      && ((not (n.Search.stats.Search.success && p.Search.stats.Search.success))
         || p.Search.stats.Search.attempts <= n.Search.stats.Search.attempts))

(* ------------------------------------------------------------------ *)
(* checkpointed resumable search *)

(* Resume parity, the crash-tolerance contract as a law: kill a search at
   a random attempt boundary (simulated with a truncated budget plus a
   checkpoint sink at a random interval — the engines flush the frontier
   when the budget runs out, so the file on disk is exactly what a crash
   after the last atomic write leaves; test_crash.ml ties this to a real
   SIGKILL), then resume from that file. The resumed search must reach
   the uninterrupted search's outcome: same counters, same verdict, same
   reproduction. Randomizes the engine too. *)
let same_search_outcome (a : Search.outcome) (b : Search.outcome) =
  let proj (r : Interp.result) =
    (r.Interp.status, r.Interp.outputs, r.Interp.failure)
  in
  a.Search.stats.Search.attempts = b.Search.stats.Search.attempts
  && a.Search.stats.Search.total_steps = b.Search.stats.Search.total_steps
  && a.Search.stats.Search.pruned = b.Search.stats.Search.pruned
  && a.Search.stats.Search.success = b.Search.stats.Search.success
  && (match (a.Search.result, b.Search.result) with
     | None, None -> true
     | Some ra, Some rb -> proj ra = proj rb
     | _ -> false)
  &&
  match (a.Search.partial, b.Search.partial) with
  | None, None -> true
  | Some pa, Some pb ->
    pa.Search.attempt = pb.Search.attempt
    && abs_float (pa.Search.closeness -. pb.Search.closeness) < 1e-9
    && proj pa.Search.best = proj pb.Search.best
  | _ -> false

let prop_resume_parity =
  QCheck2.Test.make ~name:"resumed search equals the uninterrupted search"
    ~count:40
    ~print:(fun (pseed, every, kill, engine) ->
      Printf.sprintf "program seed %d, sink every %d, kill point %d, engine %s"
        pseed every kill
        [| "restarts"; "inputs"; "dfs" |].(engine))
    QCheck2.Gen.(
      quad (int_range 1 5_000) (int_range 1 8) (int_range 1 1_000)
        (int_range 0 2))
    (fun (pseed, every, kill, engine) ->
      let labeled = program_of pseed in
      let budget =
        {
          Search.max_attempts = 12;
          max_steps_per_attempt = 2_000;
          base_seed = pseed;
          deadline_s = None;
        }
      in
      let base, _ =
        Search.run_schedule_prefix
          ~max_steps:budget.Search.max_steps_per_attempt ~prefix:[||] labeled
      in
      let accept r =
        r.Interp.outputs <> base.Interp.outputs
        || r.Interp.failure <> base.Interp.failure
      in
      let score r =
        if accept r then 1.0
        else float_of_int (List.length r.Interp.outputs) /. 100.
      in
      let run :
          ?checkpoint:Checkpoint.sink ->
          ?resume:Checkpoint.t ->
          Search.budget ->
          Search.outcome =
        match engine with
        | 0 ->
          fun ?checkpoint ?resume b ->
            Search.random_restarts ~score ?checkpoint ?resume b
              ~make:(fun ~attempt ->
                (World.random ~seed:(b.Search.base_seed + attempt), None))
              ~spec:Spec.accept_all ~accept labeled
        | 1 ->
          fun ?checkpoint ?resume b ->
            Search.enumerate_inputs ~score ?checkpoint ?resume b
              ~spec:Spec.accept_all ~accept labeled
        | _ ->
          fun ?checkpoint ?resume b ->
            Search.dfs_schedules ~score ?checkpoint ?resume b
              ~spec:Spec.accept_all ~accept labeled
      in
      let full = run budget in
      (* kill points live strictly inside the search: after at least one
         judged attempt, before the attempt that decides it *)
      let last =
        if full.Search.stats.Search.success then
          full.Search.stats.Search.attempts - 1
        else full.Search.stats.Search.attempts
      in
      if last < 1 then true
      else begin
        let kill_at = 1 + (kill mod last) in
        let file = Stdlib.Filename.temp_file "ddet_prop" ".ckpt" in
        let sink = Checkpoint.sink ~every file in
        let (_ : Search.outcome) =
          run ~checkpoint:sink { budget with Search.max_attempts = kill_at }
        in
        let verdict =
          match Checkpoint.load file with
          | Error e ->
            QCheck2.Test.fail_reportf "killed search left no checkpoint: %s" e
          | Ok ckpt -> same_search_outcome full (run ~resume:ckpt budget)
        in
        Stdlib.Sys.remove file;
        verdict
      end)

(* ------------------------------------------------------------------ *)
(* parallel scheduler parity *)

(* The tentpole law of the chunked scheduler: a parallel engine is
   byte-identical to its sequential counterpart at ANY tuning — random
   chunk sizes, random speculation windows, every engine shape (indexed
   pool for restarts, chain pool for the odometers). cap_domains is off
   so the pools genuinely run even on one-core machines, and
   spawn_cost_steps is zeroed so the min-work heuristic cannot quietly
   take the sequential shortcut this law is supposed to contrast with. *)
let par_budget pseed =
  {
    Search.max_attempts = 12;
    max_steps_per_attempt = 2_000;
    base_seed = pseed;
    deadline_s = None;
  }

let deviation_accept labeled budget =
  let base, _ =
    Search.run_schedule_prefix ~max_steps:budget.Search.max_steps_per_attempt
      ~prefix:[||] labeled
  in
  fun (r : Interp.result) ->
    r.Interp.outputs <> base.Interp.outputs
    || r.Interp.failure <> base.Interp.failure

let byte_identical_results (a : Search.outcome) (b : Search.outcome) =
  match (a.Search.result, b.Search.result) with
  | Some ra, Some rb ->
    Trace.events ra.Interp.trace = Trace.events rb.Interp.trace
  | None, None -> true
  | _ -> false

let prop_parallel_parity =
  QCheck2.Test.make
    ~name:"parallel search equals sequential at any chunk/window" ~count:24
    ~print:(fun (pseed, chunk, wpj, engine) ->
      Printf.sprintf "program seed %d, chunk %d, window/job %d, engine %s"
        pseed chunk wpj
        [| "restarts"; "inputs"; "dfs" |].(engine))
    QCheck2.Gen.(
      quad (int_range 1 5_000) (int_range 1 8) (int_range 1 8) (int_range 0 2))
    (fun (pseed, chunk, wpj, engine) ->
      let labeled = program_of pseed in
      let budget = par_budget pseed in
      let accept = deviation_accept labeled budget in
      let score r =
        if accept r then 1.0
        else float_of_int (List.length r.Interp.outputs) /. 100.
      in
      let tuning =
        {
          Par_search.chunk;
          window_per_job = wpj;
          spawn_cost_steps = 0;
          cap_domains = false;
        }
      in
      let spec = Spec.accept_all in
      let seq, par =
        match engine with
        | 0 ->
          let make ~attempt =
            (World.random ~seed:(budget.Search.base_seed + attempt), None)
          in
          ( Search.random_restarts ~score budget ~make ~spec ~accept labeled,
            Par_search.random_restarts ~jobs:3 ~tuning ~score budget ~make
              ~spec ~accept labeled )
        | 1 ->
          ( Search.enumerate_inputs ~score budget ~spec ~accept labeled,
            Par_search.enumerate_inputs ~jobs:3 ~tuning ~score budget ~spec
              ~accept labeled )
        | _ ->
          ( Search.dfs_schedules ~score budget ~spec ~accept labeled,
            Par_search.dfs_schedules ~jobs:3 ~tuning ~score budget ~spec
              ~accept labeled )
      in
      same_search_outcome seq par && byte_identical_results seq par)

(* Poison parity: attempts that deterministically crash are retried and
   then skipped identically by the sequential supervisor and the parallel
   pool — same surviving outcome, same poisoned attempt indices. *)
let poisoned_attempts (o : Search.outcome) =
  List.sort compare
    (List.filter_map
       (fun (i : Search.incident) ->
         if i.Search.poisoned then Some i.Search.at_attempt else None)
       o.Search.stats.Search.incidents)

let prop_parallel_poison_parity =
  QCheck2.Test.make
    ~name:"poisoned attempts leave parallel and sequential in lockstep"
    ~count:20
    ~print:(fun (pseed, chunk, modk) ->
      Printf.sprintf "program seed %d, chunk %d, crash every %d-th attempt"
        pseed chunk modk)
    QCheck2.Gen.(
      triple (int_range 1 5_000) (int_range 1 8) (int_range 2 5))
    (fun (pseed, chunk, modk) ->
      let labeled = program_of pseed in
      let budget = par_budget pseed in
      let accept = deviation_accept labeled budget in
      let tuning =
        {
          Par_search.chunk;
          window_per_job = 4;
          spawn_cost_steps = 0;
          cap_domains = false;
        }
      in
      let make ~attempt =
        if attempt mod modk = 0 then failwith "injected attempt crash"
        else (World.random ~seed:(budget.Search.base_seed + attempt), None)
      in
      let spec = Spec.accept_all in
      let seq = Search.random_restarts budget ~make ~spec ~accept labeled in
      let par =
        Par_search.random_restarts ~jobs:3 ~tuning budget ~make ~spec ~accept
          labeled
      in
      same_search_outcome seq par
      && byte_identical_results seq par
      && poisoned_attempts seq = poisoned_attempts par)

let () =
  let to_alcotest = QCheck_alcotest.to_alcotest in
  Alcotest.run "props"
    [
      ( "roundtrip",
        List.map to_alcotest
          [
            prop_perfect_roundtrip;
            prop_value_thread_projection;
            prop_value_outputs;
            prop_rcse_full_fidelity_roundtrip;
            prop_recording_deterministic;
            prop_output_constraint_reflexive;
            prop_log_io_roundtrip;
            prop_log_io_arbitrary_payloads;
            prop_salvage_single_line_corruption;
          ] );
      ("node-faults", List.map to_alcotest [ prop_node_faults_are_sugar ]);
      ( "cost-model",
        List.map to_alcotest
          [ prop_cost_nonnegative; prop_overhead_lower_bound; prop_cost_additive ] );
      ( "foundations",
        List.map to_alcotest
          [
            prop_prng_range;
            prop_prng_deterministic;
            prop_vec_models_list;
            prop_taint_union;
            prop_scalar_reconstruction;
          ] );
      ( "pruning",
        List.map to_alcotest
          [ prop_pruning_sound; prop_pruning_preserves_success ] );
      ("crash-tolerance", List.map to_alcotest [ prop_resume_parity ]);
      ( "parallel",
        List.map to_alcotest
          [ prop_parallel_parity; prop_parallel_poison_parity ] );
    ]
