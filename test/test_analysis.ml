(* Unit tests for ddet_analysis: taint-rate profiling, plane
   classification, invariant inference, the sampling race detector and
   trigger selectors. *)

open Mvm
open Mvm.Dsl
open Ddet_record
open Ddet_analysis

(* A program with an unmistakable plane split: "pump" moves big tainted
   strings, "tick" only bumps a counter. *)
let split_prog =
  program ~name:"split"
    ~regions:[ scalar "n" (Value.int 0); scalar "len" (Value.int 0) ]
    ~inputs:[ ("payload", [ Value.str (String.make 100 'x') ]) ]
    ~main:"main"
    [
      func "main" []
        [ call "pump" []; call "pump" []; call "tick" []; output "out" (g "n") ];
      func "pump" []
        [ input "m" "payload"; store_g "len" (str_len (v "m")) ];
      func "tick" [] [ store_g "n" (g "n" +: i 1) ];
    ]

let run_split () = Interp.run split_prog (World.round_robin ())

(* ------------------------------------------------------------------ *)
(* taint profile *)

let test_profile_rates () =
  let profile = Taint_profile.of_results [ run_split () ] in
  Alcotest.(check bool) "pump rate high" true (Taint_profile.rate profile "pump" > 10.0);
  Alcotest.(check (float 1e-9)) "tick rate zero" 0.0 (Taint_profile.rate profile "tick")

let test_profile_unseen_function () =
  let profile = Taint_profile.of_results [ run_split () ] in
  Alcotest.(check (float 1e-9)) "unknown function" 0.0
    (Taint_profile.rate profile "ghost")

let test_profile_accumulates_runs () =
  let one = Taint_profile.of_results [ run_split () ] in
  let two = Taint_profile.of_results [ run_split (); run_split () ] in
  Alcotest.(check int) "bytes double"
    (2 * Taint_profile.total_bytes one)
    (Taint_profile.total_bytes two)

let test_profile_sorted_by_rate () =
  match Taint_profile.of_results [ run_split () ] with
  | first :: _ -> Alcotest.(check string) "hottest first" "pump" first.Taint_profile.fname
  | [] -> Alcotest.fail "empty profile"

(* ------------------------------------------------------------------ *)
(* plane classification *)

let test_classify_split () =
  let profile = Taint_profile.of_results [ run_split () ] in
  let map = Plane.classify profile ~threshold:6.0 in
  Alcotest.(check bool) "pump is data" true
    (Plane.equal (Plane.plane_of map "pump") Plane.Data);
  Alcotest.(check bool) "tick is control" true
    (Plane.equal (Plane.plane_of map "tick") Plane.Control);
  Alcotest.(check bool) "main is control" true
    (Plane.equal (Plane.plane_of map "main") Plane.Control)

let test_classify_threshold_tie () =
  (* classification is strict: a rate exactly at the threshold stays
     Control (same tie-breaking as the static classifier's byte
     weights), and only strictly above flips to Data *)
  let row rate = { Taint_profile.fname = "f"; steps = 1; data_bytes = 0; rate } in
  let at rate =
    Plane.plane_of (Plane.classify [ row rate ] ~threshold:6.0) "f"
  in
  Alcotest.(check bool) "below: control" true (Plane.equal (at 5.9) Plane.Control);
  Alcotest.(check bool) "at threshold: control" true
    (Plane.equal (at 6.0) Plane.Control);
  Alcotest.(check bool) "above: data" true (Plane.equal (at 6.1) Plane.Data)

let test_unseen_agreement () =
  (* the conservative defaults line up end to end: a function absent
     from the profile rates 0., which any nonnegative threshold keeps
     Control — the same answer [plane_of] gives for a name missing from
     the map entirely *)
  let rate = Taint_profile.rate [] "never_profiled" in
  Alcotest.(check (float 1e-9)) "unseen rate is zero" 0.0 rate;
  let map = Plane.classify [] ~threshold:0.0 in
  Alcotest.(check bool) "both paths land on control" true
    (Plane.equal (Plane.plane_of map "never_profiled") Plane.Control)

let test_classify_unknown_defaults_control () =
  let map = Plane.of_assoc [] in
  Alcotest.(check bool) "conservative default" true
    (Plane.equal (Plane.plane_of map "anything") Plane.Control)

let test_plane_selector () =
  let map = Plane.of_assoc [ ("hot", Plane.Data); ("cold", Plane.Control) ] in
  let s = Plane.selector map in
  let ev fname = { Event.step = 0; tid = 0; sid = 1; fname; kind = Event.Step } in
  Alcotest.(check bool) "control is recorded" true
    (Fidelity_level.equal (s.Fidelity_level.level (ev "cold")) Fidelity_level.High);
  Alcotest.(check bool) "data is relaxed" true
    (Fidelity_level.equal (s.Fidelity_level.level (ev "hot")) Fidelity_level.Low)

(* ------------------------------------------------------------------ *)
(* invariants *)

let bounded_prog =
  program ~name:"bounded"
    ~regions:[ scalar "acc" (Value.int 0) ]
    ~inputs:[ ("n", List.init 5 (fun k -> Value.int (k + 1))) ]
    ~main:"main"
    [ func "main" [] [ input "x" "n"; store_g "acc" (v "x" *: i 2) ] ]

let train seeds =
  Invariants.infer
    (List.map (fun seed -> Interp.run bounded_prog (World.random ~seed)) seeds)

let test_invariants_bounds () =
  let inv = train [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  match List.assoc_opt "n" inv.Invariants.input_bounds with
  | Some b ->
    Alcotest.(check bool) "lo within domain" true (b.Invariants.lo >= 1);
    Alcotest.(check bool) "hi within domain" true (b.Invariants.hi <= 5)
  | None -> Alcotest.fail "no bound for input n"

let test_invariants_violation () =
  let inv = train [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let ev_in n =
    {
      Event.step = 0; tid = 0; sid = 1; fname = "main";
      kind = Event.In { chan = "n"; value = Value.untainted (Value.int n) };
    }
  in
  Alcotest.(check bool) "out-of-range fires" true (Invariants.violation inv (ev_in 99) <> None);
  Alcotest.(check bool) "in-range quiet" true (Invariants.violation inv (ev_in 3) = None)

let test_invariants_scalar_violation () =
  let inv = train [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let ev_write n =
    {
      Event.step = 0; tid = 0; sid = 1; fname = "main";
      kind =
        Event.Write
          { region = "acc"; index = None; value = Value.untainted (Value.int n) };
    }
  in
  Alcotest.(check bool) "huge write fires" true
    (Invariants.violation inv (ev_write 1_000) <> None)

let test_invariants_selector_sticky () =
  let inv = train [ 1; 2; 3 ] in
  let s = Invariants.selector inv in
  let quiet =
    { Event.step = 0; tid = 0; sid = 1; fname = "main"; kind = Event.Step }
  in
  let bad =
    {
      Event.step = 1; tid = 0; sid = 1; fname = "main";
      kind = Event.In { chan = "n"; value = Value.untainted (Value.int 99) };
    }
  in
  Alcotest.(check bool) "low before violation" true
    (Fidelity_level.equal (s.Fidelity_level.level quiet) Fidelity_level.Low);
  Alcotest.(check bool) "high at violation" true
    (Fidelity_level.equal (s.Fidelity_level.level bad) Fidelity_level.High);
  Alcotest.(check bool) "stays high after" true
    (Fidelity_level.equal (s.Fidelity_level.level quiet) Fidelity_level.High)

let test_invariants_ignore_strings () =
  let p =
    program ~name:"strs" ~regions:[]
      ~inputs:[ ("s", [ Value.str "a" ]) ]
      ~main:"main"
      [ func "main" [] [ input "x" "s"; output "out" (v "x") ] ]
  in
  let inv = Invariants.infer [ Interp.run p (World.round_robin ()) ] in
  Alcotest.(check bool) "no bound for string channel" true
    (List.assoc_opt "s" inv.Invariants.input_bounds = None)

(* ------------------------------------------------------------------ *)
(* race detector *)

let racy_prog =
  program ~name:"racy"
    ~regions:[ scalar "c" (Value.int 0) ]
    ~inputs:[] ~main:"main"
    [
      func "main" []
        [ spawn "w" []; spawn "w" []; recv "d1" "done"; recv "d2" "done" ];
      func "w" []
        [
          for_ "k" (i 0) (i 5)
            [ assign "t" (g "c"); store_g "c" (v "t" +: i 1) ];
          send "done" (i 1);
        ];
    ]

let locked_prog =
  program ~name:"locked"
    ~regions:[ scalar "c" (Value.int 0) ]
    ~inputs:[] ~main:"main"
    [
      func "main" [] [ store_g "c" (i 1); assign "x" (g "c") ];
    ]

let observe_run detector p seed =
  let r = Interp.run p (World.random ~seed) in
  Trace.iter (fun e -> ignore (Race_detector.observe detector e)) r.Interp.trace;
  Race_detector.reports detector

let test_race_detected () =
  let found =
    List.exists
      (fun seed ->
        observe_run (Race_detector.create Race_detector.default_config) racy_prog seed
        <> [])
      (List.init 20 (fun k -> k + 1))
  in
  Alcotest.(check bool) "some seed shows the race" true found

let test_no_race_single_thread () =
  let reports =
    observe_run (Race_detector.create Race_detector.default_config) locked_prog 1
  in
  Alcotest.(check int) "single thread is race-free" 0 (List.length reports)

let test_race_sampling_zero () =
  let config = { Race_detector.default_config with Race_detector.sample_rate = 0.0 } in
  let all_empty =
    List.for_all
      (fun seed -> observe_run (Race_detector.create config) racy_prog seed = [])
      (List.init 10 (fun k -> k + 1))
  in
  Alcotest.(check bool) "sampling 0 reports nothing" true all_empty

let test_race_window () =
  (* window 0: accesses can never be within 0 steps of each other across
     threads (distinct steps), so nothing is reported *)
  let config = { Race_detector.default_config with Race_detector.window = 0 } in
  let all_empty =
    List.for_all
      (fun seed -> observe_run (Race_detector.create config) racy_prog seed = [])
      (List.init 10 (fun k -> k + 1))
  in
  Alcotest.(check bool) "zero window reports nothing" true all_empty

let test_race_report_fields () =
  let reports =
    List.concat_map
      (fun seed ->
        observe_run (Race_detector.create Race_detector.default_config) racy_prog seed)
      (List.init 20 (fun k -> k + 1))
  in
  match reports with
  | [] -> Alcotest.fail "expected at least one race"
  | r :: _ ->
    Alcotest.(check string) "region" "c" r.Race_detector.region;
    Alcotest.(check bool) "different threads" true
      (r.Race_detector.tid_first <> r.Race_detector.tid_second)

(* ------------------------------------------------------------------ *)
(* happens-before detector *)

let observe_hb p seed =
  let d = Hb_detector.create () in
  let r = Interp.run p (World.random ~seed) in
  Trace.iter (fun e -> ignore (Hb_detector.observe d e)) r.Interp.trace;
  d

let locked_counter_prog =
  program ~name:"locked"
    ~regions:[ scalar "c" (Value.int 0) ]
    ~inputs:[] ~main:"main"
    [
      func "main" []
        [ spawn "w" []; spawn "w" []; recv "d1" "done"; recv "d2" "done" ];
      func "w" []
        [
          for_ "k" (i 0) (i 5)
            [ lock "m"; assign "t" (g "c"); store_g "c" (v "t" +: i 1); unlock "m" ];
          send "done" (i 1);
        ];
    ]

let test_hb_silent_on_locked () =
  for seed = 1 to 10 do
    let d = observe_hb locked_counter_prog seed in
    Alcotest.(check int)
      (Printf.sprintf "seed %d: no race under lock" seed)
      0
      (List.length (Hb_detector.reports d))
  done

let test_hb_detects_racy () =
  let found =
    List.exists
      (fun seed -> Hb_detector.reports (observe_hb racy_prog seed) <> [])
      (List.init 20 (fun k -> k + 1))
  in
  Alcotest.(check bool) "some seed shows the race" true found

let test_hb_message_edge_orders () =
  (* write, send; recv, read: ordered by the message edge *)
  let p =
    program ~name:"msg-edge"
      ~regions:[ scalar "x" (Value.int 0) ]
      ~inputs:[] ~main:"main"
      [
        func "main" []
          [
            spawn "reader" [];
            store_g "x" (i 1);
            send "go" (i 1);
            recv "d" "done";
          ];
        func "reader" [] [ recv "g" "go"; assign "y" (g "x"); send "done" (i 1) ];
      ]
  in
  for seed = 1 to 10 do
    let d = observe_hb p seed in
    Alcotest.(check int)
      (Printf.sprintf "seed %d: message edge orders the accesses" seed)
      0
      (List.length (Hb_detector.reports d))
  done

let test_hb_spawn_edge_orders () =
  (* parent writes before spawning the reader: ordered *)
  let p =
    program ~name:"spawn-edge"
      ~regions:[ scalar "x" (Value.int 0) ]
      ~inputs:[] ~main:"main"
      [
        func "main" [] [ store_g "x" (i 1); spawn "reader" [] ];
        func "reader" [] [ assign "y" (g "x") ];
      ]
  in
  for seed = 1 to 10 do
    let d = observe_hb p seed in
    Alcotest.(check int)
      (Printf.sprintf "seed %d: spawn edge orders the accesses" seed)
      0
      (List.length (Hb_detector.reports d))
  done

let test_hb_unsynchronised_read_write_races () =
  (* no edge between the writer and the reader at all *)
  let p =
    program ~name:"plain-race"
      ~regions:[ scalar "x" (Value.int 0) ]
      ~inputs:[] ~main:"main"
      [
        func "main" [] [ spawn "writer" []; assign "y" (g "x") ];
        func "writer" [] [ store_g "x" (i 1) ];
      ]
  in
  let found =
    List.exists
      (fun seed -> Hb_detector.reports (observe_hb p seed) <> [])
      (List.init 20 (fun k -> k + 1))
  in
  Alcotest.(check bool) "unsynchronised access pair races" true found

let test_hb_dedups_site_pairs () =
  (* the racy counter loops: many dynamic conflicts, few site pairs *)
  let d = observe_hb racy_prog 3 in
  let reports = Hb_detector.reports d in
  let keys =
    List.map
      (fun (r : Race_detector.report) -> (r.Race_detector.sid_first, r.Race_detector.sid_second))
      reports
  in
  Alcotest.(check int) "no duplicate site pairs"
    (List.length (List.sort_uniq compare keys))
    (List.length keys)

let test_hb_counts_work () =
  let d = observe_hb locked_counter_prog 1 in
  Alcotest.(check bool) "vc operations counted" true (Hb_detector.vc_operations d > 0)

let test_hb_sampling_false_positive_contrast () =
  (* the headline of the ablation: sampling reports on the locked counter,
     happens-before does not *)
  let r = Interp.run locked_counter_prog (World.random ~seed:5) in
  let sampling = Race_detector.create Race_detector.default_config in
  Trace.iter (fun e -> ignore (Race_detector.observe sampling e)) r.Interp.trace;
  let hb = Hb_detector.create () in
  Trace.iter (fun e -> ignore (Hb_detector.observe hb e)) r.Interp.trace;
  Alcotest.(check bool) "sampling has false positives" true
    (Race_detector.reports sampling <> []);
  Alcotest.(check int) "hb is precise" 0 (List.length (Hb_detector.reports hb))

(* ------------------------------------------------------------------ *)
(* triggers *)

let step_ev step =
  { Event.step; tid = 0; sid = 1; fname = "f"; kind = Event.Step }

let test_trigger_window_dial_up_down () =
  let armed = ref false in
  let t = Trigger.manual ~name:"manual" (fun _ -> !armed) in
  let s = Trigger.selector ~window:10 [ t ] in
  let level e = s.Fidelity_level.level e in
  Alcotest.(check bool) "starts low" true
    (Fidelity_level.equal (level (step_ev 0)) Fidelity_level.Low);
  armed := true;
  Alcotest.(check bool) "fires high" true
    (Fidelity_level.equal (level (step_ev 1)) Fidelity_level.High);
  armed := false;
  Alcotest.(check bool) "stays high in window" true
    (Fidelity_level.equal (level (step_ev 5)) Fidelity_level.High);
  Alcotest.(check bool) "dials down after window" true
    (Fidelity_level.equal (level (step_ev 100)) Fidelity_level.Low)

let test_trigger_sticky () =
  let fired_once = ref false in
  let t =
    Trigger.manual ~name:"once" (fun _ ->
        if !fired_once then false else (fired_once := true; true))
  in
  let s = Trigger.selector ~sticky:true ~window:1 [ t ] in
  ignore (s.Fidelity_level.level (step_ev 0));
  Alcotest.(check bool) "sticky stays high forever" true
    (Fidelity_level.equal (s.Fidelity_level.level (step_ev 1_000_000))
       Fidelity_level.High)

let test_large_input_trigger () =
  let t = Trigger.large_input ~chan:"req" ~threshold:10 in
  let ev n =
    {
      Event.step = 0; tid = 0; sid = 1; fname = "f";
      kind = Event.In { chan = "req"; value = Value.untainted (Value.int n) };
    }
  in
  Alcotest.(check bool) "big input fires" true (t.Trigger.fired (ev 11));
  Alcotest.(check bool) "small input quiet" false (t.Trigger.fired (ev 9))

let test_large_input_string () =
  let t = Trigger.large_input ~chan:"req" ~threshold:3 in
  let ev s =
    {
      Event.step = 0; tid = 0; sid = 1; fname = "f";
      kind = Event.In { chan = "req"; value = Value.untainted (Value.str s) };
    }
  in
  Alcotest.(check bool) "long string fires" true (t.Trigger.fired (ev "abcdef"));
  Alcotest.(check bool) "short string quiet" false (t.Trigger.fired (ev "ab"))

let () =
  Alcotest.run "analysis"
    [
      ( "taint-profile",
        [
          Alcotest.test_case "rates" `Quick test_profile_rates;
          Alcotest.test_case "unseen function" `Quick test_profile_unseen_function;
          Alcotest.test_case "accumulates" `Quick test_profile_accumulates_runs;
          Alcotest.test_case "sorted" `Quick test_profile_sorted_by_rate;
        ] );
      ( "plane",
        [
          Alcotest.test_case "classify split" `Quick test_classify_split;
          Alcotest.test_case "threshold tie is control" `Quick
            test_classify_threshold_tie;
          Alcotest.test_case "unseen agrees with static default" `Quick
            test_unseen_agreement;
          Alcotest.test_case "unknown is control" `Quick test_classify_unknown_defaults_control;
          Alcotest.test_case "selector" `Quick test_plane_selector;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "bounds" `Quick test_invariants_bounds;
          Alcotest.test_case "input violation" `Quick test_invariants_violation;
          Alcotest.test_case "scalar violation" `Quick test_invariants_scalar_violation;
          Alcotest.test_case "selector sticky" `Quick test_invariants_selector_sticky;
          Alcotest.test_case "strings ignored" `Quick test_invariants_ignore_strings;
        ] );
      ( "race-detector",
        [
          Alcotest.test_case "detects" `Quick test_race_detected;
          Alcotest.test_case "single thread clean" `Quick test_no_race_single_thread;
          Alcotest.test_case "sampling zero" `Quick test_race_sampling_zero;
          Alcotest.test_case "window zero" `Quick test_race_window;
          Alcotest.test_case "report fields" `Quick test_race_report_fields;
        ] );
      ( "hb-detector",
        [
          Alcotest.test_case "silent on locked" `Quick test_hb_silent_on_locked;
          Alcotest.test_case "detects racy" `Quick test_hb_detects_racy;
          Alcotest.test_case "message edge" `Quick test_hb_message_edge_orders;
          Alcotest.test_case "spawn edge" `Quick test_hb_spawn_edge_orders;
          Alcotest.test_case "plain race" `Quick test_hb_unsynchronised_read_write_races;
          Alcotest.test_case "dedup" `Quick test_hb_dedups_site_pairs;
          Alcotest.test_case "work counted" `Quick test_hb_counts_work;
          Alcotest.test_case "precision contrast" `Quick test_hb_sampling_false_positive_contrast;
        ] );
      ( "triggers",
        [
          Alcotest.test_case "window up/down" `Quick test_trigger_window_dial_up_down;
          Alcotest.test_case "sticky" `Quick test_trigger_sticky;
          Alcotest.test_case "large input int" `Quick test_large_input_trigger;
          Alcotest.test_case "large input string" `Quick test_large_input_string;
        ] );
    ]
