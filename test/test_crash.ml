(* Crash tolerance: a search killed mid-flight and resumed from its
   checkpoint must reach byte-for-byte the outcome of an uninterrupted
   run; a worker crash poisons one attempt, not the search; wall-clock
   deadlines degrade searches to partial outcomes instead of hanging.

   Most kills are simulated: running the same engine under a truncated
   attempt budget with a checkpoint sink leaves exactly the file a
   SIGKILL leaves behind after the sink's last write (every engine
   flushes its frontier on the way out, and writes are atomic). One test
   SIGKILLs a real child process mid-search to back that equivalence. *)

open Mvm
open Mvm.Dsl
open Ddet
open Ddet_record
open Ddet_replay
open Ddet_apps

let jobs = 4

(* cap_domains off: these tests exercise the parallel pools themselves,
   which the cores cap would silently bypass on small CI boxes *)
let tuning = { Par_search.default_tuning with Par_search.cap_domains = false }

(* ------------------------------------------------------------------ *)
(* workloads (as in test_par) *)

let counter_prog ~iters =
  program ~name:"counter"
    ~regions:[ scalar "c" (Value.int 0) ]
    ~inputs:[] ~main:"main"
    [
      func "main" []
        [
          spawn "w" []; spawn "w" [];
          recv "d1" "done"; recv "d2" "done";
          output "out" (g "c");
        ];
      func "w" []
        [
          for_ "k" (i 0) (i iters)
            [ assign "t" (g "c"); store_g "c" (v "t" +: i 1) ];
          send "done" (i 1);
        ];
    ]

let spec_out n =
  Spec.make "sum" (fun r ->
      match Trace.outputs_on r.Interp.trace "out" with
      | [ Value.Vint k ] when k = n -> Ok ()
      | _ -> Error "lost-update")

let adder_prog =
  program ~name:"adder" ~regions:[]
    ~inputs:[ ("a", List.init 6 Value.int); ("b", List.init 6 Value.int) ]
    ~main:"main"
    [
      func "main" []
        [ input "a" "a"; input "b" "b"; output "sum" (v "a" +: v "b") ];
    ]

let find_failing_seed labeled spec =
  let rec scan s =
    if s > 500 then Alcotest.fail "no failing seed"
    else
      let r = Spec.apply spec (Interp.run labeled (World.random ~seed:s)) in
      if r.Interp.failure <> None then s else scan (s + 1)
  in
  scan 1

let failure_log labeled spec seed =
  let _, log =
    Recorder.record (Failure_recorder.create ()) labeled ~spec
      ~world:(World.random ~seed)
  in
  log

let never _ = false

(* ------------------------------------------------------------------ *)
(* the child half of the real-SIGKILL test: when the env var is set, run
   an endless checkpointed search instead of the suite, and let the
   parent kill us whenever it pleases *)

let child_budget =
  { Search.max_attempts = 1_000_000; max_steps_per_attempt = 5_000;
    base_seed = 1; deadline_s = None }

let child_labeled = counter_prog ~iters:10
let child_spec = spec_out 20
let child_make ~attempt = (World.random ~seed:attempt, None)

let () =
  match Sys.getenv_opt "DDET_CRASH_CHILD" with
  | Some file ->
    ignore
      (Search.random_restarts
         ~checkpoint:(Checkpoint.sink ~every:1 file)
         child_budget ~make:child_make ~spec:child_spec ~accept:never
         child_labeled);
    exit 0
  | None -> ()

(* ------------------------------------------------------------------ *)
(* parity checks *)

let check_same_result name (a : Interp.result option) (b : Interp.result option)
    =
  match (a, b) with
  | Some r1, Some r2 ->
    Alcotest.(check bool)
      (name ^ ": byte-identical accepted trace")
      true
      (Trace.events r1.Interp.trace = Trace.events r2.Interp.trace);
    Alcotest.(check bool)
      (name ^ ": same outputs") true
      (r1.Interp.outputs = r2.Interp.outputs);
    Alcotest.(check bool)
      (name ^ ": same failure") true
      (r1.Interp.failure = r2.Interp.failure)
  | None, None -> ()
  | _ -> Alcotest.fail (name ^ ": one run accepted, the other did not")

let check_same_outcome name (a : Search.outcome) (b : Search.outcome) =
  Alcotest.(check int) (name ^ ": attempts") a.Search.stats.Search.attempts
    b.Search.stats.Search.attempts;
  Alcotest.(check int)
    (name ^ ": total steps")
    a.Search.stats.Search.total_steps b.Search.stats.Search.total_steps;
  Alcotest.(check int) (name ^ ": pruned") a.Search.stats.Search.pruned
    b.Search.stats.Search.pruned;
  Alcotest.(check bool) (name ^ ": success") a.Search.stats.Search.success
    b.Search.stats.Search.success;
  (match (a.Search.partial, b.Search.partial) with
  | None, None -> ()
  | Some p1, Some p2 ->
    Alcotest.(check (float 0.))
      (name ^ ": partial closeness")
      p1.Search.closeness p2.Search.closeness;
    Alcotest.(check int) (name ^ ": partial attempt") p1.Search.attempt
      p2.Search.attempt;
    Alcotest.(check bool)
      (name ^ ": partial trace") true
      (Trace.events p1.Search.best.Interp.trace
      = Trace.events p2.Search.best.Interp.trace)
  | _ -> Alcotest.fail (name ^ ": partial presence differs"));
  check_same_result name a.Search.result b.Search.result

(* ------------------------------------------------------------------ *)
(* simulated kill-and-resume over a whole search-engine run *)

type runner =
  ?checkpoint:Checkpoint.sink ->
  ?resume:Checkpoint.t ->
  Search.budget ->
  Search.outcome

(* kill points: every one for small searches, a spread for larger *)
let kill_points last =
  if last <= 12 then List.init last (fun i -> i + 1)
  else
    List.sort_uniq compare [ 1; 2; last / 4; last / 2; last - 1; last ]

let kill_and_resume name (run : runner) budget =
  (* pick a base seed whose search survives at least one attempt before
     deciding, so there is a mid-flight frontier to kill at *)
  let rec pick bs =
    if bs > budget.Search.base_seed + 20 then
      Alcotest.fail (name ^ ": no killable configuration")
    else
      let b = { budget with Search.base_seed = bs } in
      let full = run b in
      let attempts = full.Search.stats.Search.attempts in
      let last =
        if full.Search.stats.Search.success then attempts - 1
        else attempts / 2
      in
      if last >= 1 then (b, full, last) else pick (bs + 1)
  in
  let b, full, last = pick budget.Search.base_seed in
  let file = Filename.temp_file "ddet_crash" ".ckpt" in
  List.iter
    (fun kill_at ->
      ignore
        (run
           ~checkpoint:(Checkpoint.sink ~every:1 file)
           { b with Search.max_attempts = kill_at });
      let c =
        match Checkpoint.load file with
        | Ok c -> c
        | Error e -> Alcotest.fail (name ^ ": " ^ e)
      in
      let resumed = run ~resume:c b in
      check_same_outcome (Printf.sprintf "%s@%d" name kill_at) full resumed)
    (kill_points last);
  Sys.remove file

(* accept only runs reproducing the recorded run's exact final counter
   value, not just any lost update: a strict-enough criterion that the
   search genuinely has to look, leaving mid-flight frontiers to kill *)
let counter_case () =
  let labeled = counter_prog ~iters:10 and spec = spec_out 20 in
  let seed = find_failing_seed labeled spec in
  let original = Spec.apply spec (Interp.run labeled (World.random ~seed)) in
  let want = Trace.outputs_on original.Interp.trace "out" in
  let accept r =
    r.Interp.failure <> None && Trace.outputs_on r.Interp.trace "out" = want
  in
  (labeled, spec, accept)

let test_restarts_kill_resume () =
  let labeled, spec, accept = counter_case () in
  let budget =
    { Search.max_attempts = 200; max_steps_per_attempt = 5_000; base_seed = 1;
      deadline_s = None }
  in
  (* seed worlds from the budget's base seed, as the real drivers do, so
     the pick loop in [kill_and_resume] actually varies the search *)
  let make_of (b : Search.budget) ~attempt =
    (World.random ~seed:(b.Search.base_seed + attempt), None)
  in
  kill_and_resume "restarts/seq"
    (fun ?checkpoint ?resume b ->
      Search.random_restarts ?checkpoint ?resume b ~make:(make_of b) ~spec
        ~accept labeled)
    budget;
  kill_and_resume "restarts/par"
    (fun ?checkpoint ?resume b ->
      Par_search.random_restarts ~tuning ~jobs ?checkpoint ?resume b ~make:(make_of b)
        ~spec ~accept labeled)
    budget

(* checkpoints are interchangeable between sequential and parallel runs:
   a frontier written at jobs=1 resumes at jobs=4 (and vice versa) to the
   same outcome *)
let test_cross_jobs_resume () =
  let labeled, spec, accept = counter_case () in
  let budget =
    { Search.max_attempts = 200; max_steps_per_attempt = 5_000; base_seed = 1;
      deadline_s = None }
  in
  let make_of (b : Search.budget) ~attempt =
    (World.random ~seed:(b.Search.base_seed + attempt), None)
  in
  let seq ?checkpoint ?resume b =
    Search.random_restarts ?checkpoint ?resume b ~make:(make_of b) ~spec
      ~accept labeled
  in
  let par ?checkpoint ?resume b =
    Par_search.random_restarts ~tuning ~jobs ?checkpoint ?resume b ~make:(make_of b)
      ~spec ~accept labeled
  in
  let rec pick bs =
    if bs > 20 then Alcotest.fail "cross: no killable base seed"
    else
      let b = { budget with Search.base_seed = bs } in
      let full = seq b in
      if full.Search.stats.Search.attempts >= 2 then (b, full) else pick (bs + 1)
  in
  let budget, full = pick 1 in
  let last =
    if full.Search.stats.Search.success then full.Search.stats.Search.attempts - 1
    else full.Search.stats.Search.attempts / 2
  in
  let file = Filename.temp_file "ddet_crash" ".ckpt" in
  let cut = { budget with Search.max_attempts = last } in
  let load () =
    match Checkpoint.load file with
    | Ok c -> c
    | Error e -> Alcotest.fail ("cross: " ^ e)
  in
  ignore (seq ~checkpoint:(Checkpoint.sink ~every:1 file) cut);
  check_same_outcome "cross seq->par" full (par ~resume:(load ()) budget);
  ignore (par ~checkpoint:(Checkpoint.sink ~every:1 file) cut);
  check_same_outcome "cross par->seq" full (seq ~resume:(load ()) budget);
  Sys.remove file

let test_dfs_kill_resume () =
  let labeled = counter_prog ~iters:4 and spec = spec_out 8 in
  let seed = find_failing_seed labeled spec in
  let log = failure_log labeled spec seed in
  let accept = Constraints.failure_matches log in
  let budget =
    { Search.max_attempts = 300; max_steps_per_attempt = 5_000; base_seed = 1;
      deadline_s = None }
  in
  kill_and_resume "dfs/seq"
    (fun ?checkpoint ?resume b ->
      Search.dfs_schedules ?checkpoint ?resume b ~spec ~accept labeled)
    budget;
  kill_and_resume "dfs/par"
    (fun ?checkpoint ?resume b ->
      Par_search.dfs_schedules ~tuning ~jobs ?checkpoint ?resume b ~spec ~accept
        labeled)
    budget

let test_enumerate_kill_resume () =
  let spec = Spec.accept_all in
  let accept r = Trace.outputs_on r.Interp.trace "sum" = [ Value.int 7 ] in
  let budget =
    { Search.max_attempts = 50; max_steps_per_attempt = 1_000; base_seed = 1;
      deadline_s = None }
  in
  kill_and_resume "inputs/seq"
    (fun ?checkpoint ?resume b ->
      Search.enumerate_inputs ?checkpoint ?resume b ~spec ~accept adder_prog)
    budget;
  kill_and_resume "inputs/par"
    (fun ?checkpoint ?resume b ->
      Par_search.enumerate_inputs ~tuning ~jobs ?checkpoint ?resume b ~spec ~accept
        adder_prog)
    budget

(* ------------------------------------------------------------------ *)
(* driver- and session-level kill-and-resume *)

let check_same_replay name (a : Replayer.outcome) (b : Replayer.outcome) =
  Alcotest.(check int) (name ^ ": attempts") a.Replayer.attempts
    b.Replayer.attempts;
  Alcotest.(check int) (name ^ ": steps") a.Replayer.total_steps
    b.Replayer.total_steps;
  Alcotest.(check bool) (name ^ ": deadline flag") a.Replayer.deadline_hit
    b.Replayer.deadline_hit;
  check_same_result name a.Replayer.result b.Replayer.result

let test_replayer_kill_resume_miniht () =
  let app = Miniht.app () in
  let labeled = app.App.labeled and spec = app.App.spec in
  let seed = find_failing_seed labeled spec in
  let log = failure_log labeled spec seed in
  let budget =
    { Search.max_attempts = 300; max_steps_per_attempt = 5_000; base_seed = 1;
      deadline_s = None }
  in
  List.iter
    (fun jobs ->
      let name = Printf.sprintf "miniht j%d" jobs in
      let full = Replayer.failure_det ~budget ~jobs labeled ~spec log in
      Alcotest.(check bool) (name ^ ": reproduced") true
        (full.Replayer.result <> None);
      let kill_at = full.Replayer.attempts - 1 in
      if kill_at < 1 then Alcotest.fail (name ^ ": nothing to kill");
      let file = Filename.temp_file "ddet_crash" ".ckpt" in
      ignore
        (Replayer.failure_det
           ~budget:{ budget with Search.max_attempts = kill_at }
           ~jobs
           ~checkpoint:(Checkpoint.sink ~every:1 file)
           labeled ~spec log);
      let c =
        match Checkpoint.load file with
        | Ok c -> c
        | Error e -> Alcotest.fail (name ^ ": " ^ e)
      in
      Sys.remove file;
      let resumed =
        Replayer.failure_det ~budget ~jobs ~resume:c labeled ~spec log
      in
      check_same_replay name full resumed)
    [ 1; jobs ]

let drop_plan =
  Fault.make ~seed:11
    [
      Fault.drop ~prob:0.15 "ack_0";
      Fault.drop ~prob:0.15 "ack_1";
      Fault.drop ~prob:0.12 "repl";
    ]

let test_session_kill_resume_cloudstore () =
  let cloud = Cloudstore.app () in
  match Workload.find_failing_seed ~faults:drop_plan cloud with
  | None -> Alcotest.fail "no failing cloudstore seed under the drop plan"
  | Some (seed, _) ->
    List.iter
      (fun jobs ->
        let name = Printf.sprintf "cloudstore j%d" jobs in
        let config = { Config.default with Config.jobs } in
        let prepared = Session.prepare ~config Model.Failure_det cloud in
        let _, log = Session.record ~faults:drop_plan prepared ~seed in
        (* pick a base seed whose search needs > 1 attempt, so the kill
           lands mid-flight *)
        let rec pick bs =
          if bs > 20 then Alcotest.fail (name ^ ": no killable base seed")
          else
            let budget =
              { config.Config.budget with Search.base_seed = bs }
            in
            let full = Session.replay ~budget prepared log in
            if full.Replayer.attempts >= 2 then (budget, full)
            else pick (bs + 1)
        in
        let budget, full = pick 1 in
        let kill_at =
          if full.Replayer.result <> None then full.Replayer.attempts - 1
          else full.Replayer.attempts / 2
        in
        let file = Filename.temp_file "ddet_crash" ".ckpt" in
        ignore
          (Session.replay
             ~budget:{ budget with Search.max_attempts = kill_at }
             ~checkpoint:(Checkpoint.sink ~every:1 file)
             prepared log);
        let c =
          match Checkpoint.load file with
          | Ok c -> c
          | Error e -> Alcotest.fail (name ^ ": " ^ e)
        in
        Sys.remove file;
        let resumed = Session.replay ~budget ~resume:c prepared log in
        check_same_replay name full resumed)
      [ 1; jobs ]

(* ------------------------------------------------------------------ *)
(* a real SIGKILL: the child process checkpoints every attempt; the
   parent kills it at an arbitrary moment and resumes from whatever the
   last atomic write left on disk *)

let test_sigkill_resume () =
  let file = Filename.temp_file "ddet_sigkill" ".ckpt" in
  Sys.remove file;
  let dev_null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let env =
    Array.append (Unix.environment ()) [| "DDET_CRASH_CHILD=" ^ file |]
  in
  let pid =
    Unix.create_process_env Sys.executable_name [| Sys.executable_name |] env
      Unix.stdin dev_null dev_null
  in
  let give_up = Unix.gettimeofday () +. 30. in
  let rec wait_progress () =
    if Unix.gettimeofday () > give_up then begin
      Unix.kill pid Sys.sigkill;
      ignore (Unix.waitpid [] pid);
      Alcotest.fail "child made no checkpoint progress within 30s"
    end
    else
      match Checkpoint.load file with
      | Ok c when c.Checkpoint.attempt >= 5 -> ()
      | _ ->
        Unix.sleepf 0.01;
        wait_progress ()
  in
  wait_progress ();
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid);
  Unix.close dev_null;
  let c =
    match Checkpoint.load file with
    | Ok c -> c
    | Error e -> Alcotest.fail ("checkpoint torn by SIGKILL: " ^ e)
  in
  Sys.remove file;
  (* resume to a nearby horizon and compare with an uninterrupted run of
     the same horizon: parity must hold from wherever the kill landed *)
  let horizon =
    { child_budget with Search.max_attempts = c.Checkpoint.attempt + 25 }
  in
  let resumed =
    Search.random_restarts ~resume:c horizon ~make:child_make ~spec:child_spec
      ~accept:never child_labeled
  in
  let full =
    Search.random_restarts horizon ~make:child_make ~spec:child_spec
      ~accept:never child_labeled
  in
  check_same_outcome "sigkill" full resumed

(* ------------------------------------------------------------------ *)
(* supervision: a crashing attempt is retried, then poisoned — never
   fatal *)

let test_poisoned_attempt_skipped () =
  let labeled = counter_prog ~iters:10 and spec = spec_out 20 in
  (* exhaustion run: every attempt is judged, so the poisoned one (3) is
     always reached, sequentially and in parallel *)
  let budget =
    { Search.max_attempts = 6; max_steps_per_attempt = 5_000; base_seed = 1;
      deadline_s = None }
  in
  let make ~attempt =
    if attempt = 3 then failwith "hostile world"
    else (World.random ~seed:attempt, None)
  in
  let s = Search.random_restarts budget ~make ~spec ~accept:never labeled in
  let p =
    Par_search.random_restarts ~tuning ~jobs budget ~make ~spec ~accept:never labeled
  in
  List.iter
    (fun (name, (o : Search.outcome)) ->
      Alcotest.(check int)
        (name ^ ": search survived to exhaustion")
        budget.Search.max_attempts o.Search.stats.Search.attempts;
      match o.Search.stats.Search.incidents with
      | [ i ] ->
        Alcotest.(check int) (name ^ ": incident attempt") 3 i.Search.at_attempt;
        Alcotest.(check bool) (name ^ ": poisoned") true i.Search.poisoned;
        Alcotest.(check int)
          (name ^ ": bounded retries")
          Search.max_job_retries i.Search.retries
      | incs ->
        Alcotest.fail
          (Printf.sprintf "%s: expected 1 incident, got %d" name
             (List.length incs)))
    [ ("seq", s); ("par", p) ];
  check_same_outcome "poisoned seq=par"
    { s with Search.stats = { s.Search.stats with Search.incidents = [] } }
    { p with Search.stats = { p.Search.stats with Search.incidents = [] } }

let test_flaky_attempt_requeued () =
  let labeled = counter_prog ~iters:10 and spec = spec_out 20 in
  let budget =
    { Search.max_attempts = 6; max_steps_per_attempt = 5_000; base_seed = 1;
      deadline_s = None }
  in
  let first = Atomic.make true in
  let make ~attempt =
    if attempt = 3 && Atomic.exchange first false then failwith "flaky blip"
    else (World.random ~seed:attempt, None)
  in
  let clean ~attempt = (World.random ~seed:attempt, None) in
  let o = Search.random_restarts budget ~make ~spec ~accept:never labeled in
  let reference =
    Search.random_restarts budget ~make:clean ~spec ~accept:never labeled
  in
  (match o.Search.stats.Search.incidents with
  | [ i ] ->
    Alcotest.(check int) "requeue attempt" 3 i.Search.at_attempt;
    Alcotest.(check bool) "not poisoned" false i.Search.poisoned
  | incs ->
    Alcotest.fail
      (Printf.sprintf "expected 1 requeue incident, got %d" (List.length incs)));
  (* the retried attempt is judged normally: same outcome as a run that
     never crashed *)
  check_same_outcome "requeued = clean"
    { reference with
      Search.stats = { reference.Search.stats with Search.incidents = [] } }
    { o with Search.stats = { o.Search.stats with Search.incidents = [] } }

let test_poisoned_scan_probe () =
  let f n = if n = 8 then failwith "probe crash" else if n * n > 50 then Some (n * n) else None in
  let s = Par_search.first_success ~from:0 ~count:20 ~f () in
  let p = Par_search.first_success ~tuning ~jobs ~from:0 ~count:20 ~f () in
  Alcotest.(check (option (pair int int)))
    "sequential scan skips the crashing probe" (Some (9, 81)) s;
  Alcotest.(check (option (pair int int))) "parallel scan agrees" s p

(* ------------------------------------------------------------------ *)
(* deadlines *)

let test_deadline_exhausts_immediately () =
  let labeled, spec, _ = counter_case () in
  let budget =
    { Search.max_attempts = 1_000; max_steps_per_attempt = 5_000;
      base_seed = 1; deadline_s = Some 0.0 }
  in
  let make ~attempt = (World.random ~seed:attempt, None) in
  let s = Search.random_restarts budget ~make ~spec ~accept:never labeled in
  let p =
    Par_search.random_restarts ~tuning ~jobs budget ~make ~spec ~accept:never labeled
  in
  List.iter
    (fun (name, (o : Search.outcome)) ->
      Alcotest.(check bool) (name ^ ": deadline hit") true
        o.Search.stats.Search.deadline_hit;
      Alcotest.(check int) (name ^ ": no attempts") 0
        o.Search.stats.Search.attempts;
      Alcotest.(check bool) (name ^ ": no result") true
        (o.Search.result = None))
    [ ("seq", s); ("par", p) ]

let test_deadline_cancels_long_attempt () =
  (* one attempt is far longer than the deadline: the interpreter's
     cooperative cancel must cut it from the inside *)
  let labeled = counter_prog ~iters:200_000 and spec = spec_out 400_000 in
  let budget =
    { Search.max_attempts = 5; max_steps_per_attempt = 100_000_000;
      base_seed = 1; deadline_s = Some 0.02 }
  in
  let make ~attempt = (World.random ~seed:attempt, None) in
  let t0 = Unix.gettimeofday () in
  let o = Search.random_restarts budget ~make ~spec ~accept:never labeled in
  let wall = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "deadline hit" true o.Search.stats.Search.deadline_hit;
  Alcotest.(check bool) "not success" false o.Search.stats.Search.success;
  Alcotest.(check bool) "attempt was cut short" true
    (o.Search.stats.Search.attempts <= 1);
  Alcotest.(check bool)
    (Printf.sprintf "returned promptly (%.2fs)" wall)
    true (wall < 10.)

(* ------------------------------------------------------------------ *)
(* the exit-code contract (pure, no forking) *)

let test_exit_codes () =
  let r = Interp.run (counter_prog ~iters:1) (World.random ~seed:1) in
  let partial = { Search.best = r; closeness = 0.5; attempt = 1 } in
  let out ?result ?partial ?(deadline_hit = false) () =
    { Replayer.model = "x"; result; partial; attempts = 1; total_steps = 1;
      deadline_hit; incidents = [] }
  in
  let check name want got = Alcotest.(check int) name want got in
  check "reproduced" Replayer.exit_ok
    (Replayer.exit_code (out ~result:r ()));
  check "reproduced from salvaged log" Replayer.exit_salvaged
    (Replayer.exit_code ~damaged:true (out ~result:r ()));
  check "degraded to partial" Replayer.exit_partial
    (Replayer.exit_code (out ~partial ()));
  check "deadline dominates partial" Replayer.exit_deadline
    (Replayer.exit_code (out ~partial ~deadline_hit:true ()));
  check "nothing to show" Replayer.exit_deadline
    (Replayer.exit_code (out ()));
  check "salvaged and empty" Replayer.exit_salvaged
    (Replayer.exit_code ~damaged:true (out ()))

(* ------------------------------------------------------------------ *)
(* checkpoint file robustness *)

let some_checkpoint =
  {
    Checkpoint.engine = "dfs";
    base_seed = 1;
    attempt = 17;
    total_steps = 123_456;
    pruned = 9;
    prefix = Some [| 0; 3; 1 |];
    best =
      Some
        { Checkpoint.b_closeness = 0.8125; b_attempt = 4;
          b_prefix = Some [| 0; 2 |] };
    seen = [ 42; 1337; -7 ];
  }

let test_checkpoint_roundtrip () =
  let file = Filename.temp_file "ddet_ckpt" ".ckpt" in
  Checkpoint.write file some_checkpoint;
  (match Checkpoint.load file with
  | Ok c -> Alcotest.(check bool) "roundtrip" true (c = some_checkpoint)
  | Error e -> Alcotest.fail e);
  Sys.remove file

let test_checkpoint_damage_detected () =
  let file = Filename.temp_file "ddet_ckpt" ".ckpt" in
  let write s =
    let oc = open_out_bin file in
    output_string oc s;
    close_out oc
  in
  Checkpoint.write file some_checkpoint;
  let good = In_channel.with_open_bin file In_channel.input_all in
  let damaged msg s =
    write s;
    match Checkpoint.load file with
    | Ok _ -> Alcotest.fail (msg ^ ": damage not detected")
    | Error _ -> ()
  in
  (* flip one byte in the middle of the payload *)
  let flipped = Bytes.of_string good in
  let mid = String.length good / 2 in
  Bytes.set flipped mid
    (if Bytes.get flipped mid = '0' then '1' else '0');
  damaged "bit flip" (Bytes.to_string flipped);
  damaged "truncation" (String.sub good 0 (String.length good - 10));
  damaged "empty file" "";
  damaged "wrong magic" ("ddet-log v2\n" ^ good);
  Sys.remove file

let test_resume_engine_mismatch_rejected () =
  let labeled, spec, accept = counter_case () in
  let budget =
    { Search.max_attempts = 10; max_steps_per_attempt = 5_000; base_seed = 1;
      deadline_s = None }
  in
  let restarts_ckpt = { some_checkpoint with Checkpoint.engine = "restarts" } in
  (match
     Search.enumerate_inputs ~resume:restarts_ckpt budget ~spec ~accept labeled
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "engine mismatch accepted");
  let wrong_seed = { some_checkpoint with Checkpoint.base_seed = 999 } in
  match Search.dfs_schedules ~resume:wrong_seed budget ~spec ~accept labeled with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "base-seed mismatch accepted"

(* ------------------------------------------------------------------ *)
(* checkpointed seed scans *)

let test_scan_kill_resume () =
  let f n = if n * n > 50 then Some (n * n) else None in
  let full = Par_search.first_success ~from:0 ~count:20 ~f () in
  Alcotest.(check (option (pair int int))) "baseline" (Some (8, 64)) full;
  let file = Filename.temp_file "ddet_crash" ".ckpt" in
  ignore
    (Par_search.first_success
       ~checkpoint:(Checkpoint.sink ~every:1 file)
       ~from:0 ~count:4 ~f ());
  let c =
    match Checkpoint.load file with
    | Ok c -> c
    | Error e -> Alcotest.fail e
  in
  Sys.remove file;
  List.iter
    (fun jobs ->
      let resumed =
        Par_search.first_success ~tuning ~jobs ~resume:c ~from:0 ~count:20 ~f ()
      in
      Alcotest.(check (option (pair int int)))
        (Printf.sprintf "resumed scan j%d" jobs)
        full resumed)
    [ 1; jobs ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "crash"
    [
      ( "kill-and-resume",
        [
          Alcotest.test_case "restarts on the adder race" `Quick
            test_restarts_kill_resume;
          Alcotest.test_case "checkpoints interchange across jobs" `Quick
            test_cross_jobs_resume;
          Alcotest.test_case "dfs on the adder race" `Quick
            test_dfs_kill_resume;
          Alcotest.test_case "input enumeration on adder" `Quick
            test_enumerate_kill_resume;
          Alcotest.test_case "failure-det driver on miniht" `Slow
            test_replayer_kill_resume_miniht;
          Alcotest.test_case "session on fault-injected cloudstore" `Slow
            test_session_kill_resume_cloudstore;
          Alcotest.test_case "real SIGKILL mid-search" `Quick
            test_sigkill_resume;
          Alcotest.test_case "checkpointed seed scan" `Quick
            test_scan_kill_resume;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "poisoned attempt is skipped" `Quick
            test_poisoned_attempt_skipped;
          Alcotest.test_case "flaky attempt is requeued" `Quick
            test_flaky_attempt_requeued;
          Alcotest.test_case "poisoned scan probe" `Quick
            test_poisoned_scan_probe;
        ] );
      ( "deadlines",
        [
          Alcotest.test_case "zero deadline exhausts immediately" `Quick
            test_deadline_exhausts_immediately;
          Alcotest.test_case "deadline cancels a long attempt" `Quick
            test_deadline_cancels_long_attempt;
        ] );
      ( "exit-codes",
        [ Alcotest.test_case "contract" `Quick test_exit_codes ] );
      ( "checkpoint-files",
        [
          Alcotest.test_case "roundtrip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "damage detected" `Quick
            test_checkpoint_damage_detected;
          Alcotest.test_case "mismatched resume rejected" `Quick
            test_resume_engine_mismatch_rejected;
        ] );
    ]
