(* Distributed evidence: node-granular faults, per-node sharded logs,
   causal stitching and partial-evidence replay.

   The scenarios mirror the datacenter story end to end: record an app
   under a partition (and a node crash), shard the log per node through
   a hostile store, lose and corrupt shards independently, and show that
   replay still reproduces the original failure from what survived —
   with the degradation reported as per-node DF, never as a crash or a
   silent full-fidelity claim. *)

open Mvm
open Ddet
open Ddet_record
open Ddet_replay
open Ddet_apps

let tmpdir () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ddet-dist-%d" (Unix.getpid ()))
  in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  dir

let fresh_base =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat (tmpdir ()) (Printf.sprintf "rec%d" !n)

let msg_server = Msg_server.app ()

let plan_of_string s =
  match Fault.of_string s with Ok p -> p | Error e -> Alcotest.fail e

let partition_plan = plan_of_string "seed=5,partition:server+p0|p1:10-80"

(* A recorded failing run under the partition, sharded: the shared
   fixture most tests start from. Seeds are scanned adaptively so the
   fixture does not depend on one lucky constant. *)
let record_failing ?(plan = partition_plan) ?(max_seed = 60) () =
  let prepared = Session.prepare Model.Perfect msg_server in
  let rec scan seed =
    if seed > max_seed then
      Alcotest.fail "no failing msg_server seed under the fault plan"
    else
      let original, log, causal = Session.record_dist ~faults:plan prepared ~seed in
      match original.Interp.failure with
      | Some (Failure.Spec_violation _) when original.Interp.steps < 5_000 ->
        (prepared, original, log, causal)
      | _ -> scan (seed + 1)
  in
  scan 1

let small_budget =
  {
    Search.max_attempts = 60;
    max_steps_per_attempt = 20_000;
    base_seed = 1;
    deadline_s = None;
  }

(* ------------------------------------------------------------------ *)
(* node maps and fault lowering *)

let test_node_map () =
  let map = Option.get msg_server.App.nodes in
  let prog = msg_server.App.labeled.Label.prog in
  Alcotest.(check (list string))
    "nodes" [ "server"; "p0"; "p1" ] (Node.nodes map);
  Alcotest.(check (list int)) "server tids" [ 0 ] (Node.members map prog "server");
  Alcotest.(check (list int)) "p0 tids" [ 1 ] (Node.members map prog "p0");
  Alcotest.(check (list int)) "p1 tids" [ 2 ] (Node.members map prog "p1");
  (* done1/fin1 connect server and p1: exactly the channels a
     server+p0 | p1 partition cuts *)
  let cut =
    Node.cut_channels map prog ~groups:[ [ "server"; "p0" ]; [ "p1" ] ]
  in
  Alcotest.(check (list string)) "cut channels" [ "done1"; "fin1" ] cut

let test_lowering () =
  let prog = msg_server.App.labeled.Label.prog in
  let map = Option.get msg_server.App.nodes in
  let plan =
    plan_of_string "seed=5,partition:server+p0|p1:10-80,nodecrash:p1:200"
  in
  let lowered = Fault.lower ~map ~prog plan in
  Alcotest.(check bool) "no node faults left" false (Fault.has_node_faults lowered);
  Alcotest.(check string) "lowered plan"
    "seed=5,delay:done1:10-80,delay:fin1:10-80,crash:2:200"
    (Fault.to_string lowered);
  (* inject refuses sugar it cannot interpret *)
  Alcotest.check_raises "inject refuses un-lowered plans"
    (Invalid_argument
       (Printf.sprintf
          "Fault.inject: plan %S contains node-granular faults; lower it \
           against the app's node map first (Fault.lower)"
          (Fault.to_string plan)))
    (fun () -> ignore (Fault.inject plan (World.random ~seed:1)))

(* ------------------------------------------------------------------ *)
(* shard roundtrip *)

let test_roundtrip () =
  let _prepared, _original, log, causal = record_failing () in
  (* the split loses nothing: every entry lands in exactly one shard *)
  let shards = Sharded_log.split ~causal log in
  let total =
    List.fold_left (fun n (_, s) -> n + List.length s.Log.entries) 0 shards
  in
  Alcotest.(check int) "split conserves entries"
    (List.length log.Log.entries) total;
  let base = fresh_base () in
  let report = Sharded_log.save_via (Store.default ()) ~base ~causal log in
  Alcotest.(check bool) "save ok" true (Sharded_log.save_ok report);
  let loaded =
    match Sharded_log.load base with Ok l -> l | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "manifest complete" true loaded.Sharded_log.manifest_complete;
  List.iter
    (fun (s : Sharded_log.shard) ->
      Alcotest.(check string) "intact" "intact"
        (Sharded_log.status_name s.Sharded_log.status))
    loaded.Sharded_log.shards;
  let st = Stitch.stitch loaded in
  Alcotest.(check bool) "stitch complete" true st.Stitch.complete;
  (* byte-identical reconstruction: the merge IS the original log *)
  Alcotest.(check string) "stitched log = original log"
    (Log_io.to_string log)
    (Log_io.to_string st.Stitch.log)

(* ------------------------------------------------------------------ *)
(* the headline scenario: partition + node crash, one shard corrupted
   by hostile I/O, another deleted — replay still reproduces, with
   per-node DF and lost nodes at the 1/n floor *)

let test_partial_evidence_reproduces () =
  let prepared, original, log, causal =
    record_failing
      ~plan:
        (plan_of_string "seed=5,partition:server+p0|p1:10-80,nodecrash:p1:330")
      ()
  in
  let base = fresh_base () in
  (* corrupt one shard on its way to disk: deterministic torn write on
     payload op 2 (p1's shard) through the hostile-store layer *)
  let io_plan =
    match Faulty_store.of_string "seed=3,torn:2:0.4" with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let faulty, _stats = Faulty_store.wrap io_plan (Store.local ()) in
  let report = Sharded_log.save_via faulty ~base ~causal log in
  Alcotest.(check bool) "a shard write failed" false (Sharded_log.save_ok report);
  (* and delete another node's shard outright *)
  Sys.remove (base ^ ".p0.shard");
  let loaded =
    match Sharded_log.load base with Ok l -> l | Error e -> Alcotest.fail e
  in
  let st = Stitch.stitch loaded in
  Alcotest.(check bool) "not complete" false st.Stitch.complete;
  Alcotest.(check bool) "p0 lost" true (List.mem "p0" st.Stitch.lost);
  let outcome =
    Replayer.stitched ~budget:small_budget prepared.Session.app.App.labeled
      ~spec:msg_server.App.spec st
  in
  (match outcome.Replayer.result with
  | Some r ->
    Alcotest.(check bool) "same failure class" true
      (match (original.Interp.failure, r.Interp.failure) with
      | Some (Failure.Spec_violation a), Some (Failure.Spec_violation b) ->
        String.equal a b
      | _ -> false)
  | None -> Alcotest.fail "partial-evidence search did not reproduce");
  Alcotest.(check int) "exit 0: reproduction from partial evidence"
    Replayer.exit_ok
    (Replayer.exit_code outcome);
  (* honest accounting: per-node DF, lost node at the floor, combined
     floor reported, degraded flagged *)
  let a =
    Session.assess ~evidence:st.Stitch.evidence prepared ~original ~log outcome
  in
  let floor =
    1. /. float_of_int (Ddet_metrics.Root_cause.n_causes msg_server.App.catalog)
  in
  Alcotest.(check bool) "degraded" true a.Ddet_metrics.Utility.degraded;
  Alcotest.(check (option (float 1e-9))) "combined floor" (Some floor)
    a.Ddet_metrics.Utility.df_floor;
  Alcotest.(check (list string)) "lost nodes" [ "p0" ]
    a.Ddet_metrics.Utility.lost_nodes;
  (match List.assoc_opt "p0" a.Ddet_metrics.Utility.node_df with
  | Some d -> Alcotest.(check (float 1e-9)) "lost node at floor" floor d
  | None -> Alcotest.fail "no per-node DF for p0");
  match List.assoc_opt "server" a.Ddet_metrics.Utility.node_df with
  | Some d ->
    Alcotest.(check bool) "intact node backs measured DF" true
      (d >= floor -. 1e-9)
  | None -> Alcotest.fail "no per-node DF for server"

let test_all_lost_is_honest () =
  let _prepared, _original, log, causal = record_failing () in
  let base = fresh_base () in
  ignore (Sharded_log.save_via (Store.default ()) ~base ~causal log);
  let loaded =
    match Sharded_log.load ~lose:[ "server"; "p0"; "p1" ] base with
    | Ok l -> l
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "all lost" true (Sharded_log.all_lost loaded);
  let st = Stitch.stitch loaded in
  Alcotest.(check int) "nothing stitched" 0 (List.length st.Stitch.log.Log.entries);
  Alcotest.(check int) "no edges enforced" 0 (List.length st.Stitch.edges_enforced)

(* losing one node must not force all-or-nothing failure even when the
   complete-evidence replay would have been a plain perfect replay *)
let test_lose_each_node () =
  let prepared, original, log, causal = record_failing () in
  let base = fresh_base () in
  ignore (Sharded_log.save_via (Store.default ()) ~base ~causal log);
  List.iter
    (fun node ->
      let loaded =
        match Sharded_log.load ~lose:[ node ] base with
        | Ok l -> l
        | Error e -> Alcotest.fail e
      in
      let st = Stitch.stitch loaded in
      Alcotest.(check (list string)) "lost" [ node ] st.Stitch.lost;
      let outcome =
        Replayer.stitched ~budget:small_budget
          prepared.Session.app.App.labeled ~spec:msg_server.App.spec st
      in
      let code = Replayer.exit_code outcome in
      (* reproduced (0) or degraded to a best partial (3) — never a
         crash, never exhaustion-with-nothing *)
      Alcotest.(check bool)
        (Printf.sprintf "lose %s: honest exit %d" node code)
        true
        (code = Replayer.exit_ok || code = Replayer.exit_partial);
      match outcome.Replayer.result with
      | Some r ->
        Alcotest.(check bool) "failure class preserved" true
          (match (original.Interp.failure, r.Interp.failure) with
          | Some (Failure.Spec_violation a), Some (Failure.Spec_violation b) ->
            String.equal a b
          | _ -> false)
      | None -> ())
    [ "server"; "p0"; "p1" ]

(* ------------------------------------------------------------------ *)
(* every-byte truncation sweep over the causal manifest: recovery may
   lose edges but must never fabricate one (satellite of the segment
   manifest sweeps) *)

let test_manifest_truncation_sweep () =
  let _prepared, _original, log, causal = record_failing () in
  let base = fresh_base () in
  ignore (Sharded_log.save_via (Store.default ()) ~base ~causal log);
  let manifest_path = base ^ ".causal" in
  let whole =
    let ic = open_in_bin manifest_path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let true_edges = causal.Causal.edges in
  let edge_mem e =
    List.exists
      (fun (t : Causal.edge) ->
        String.equal t.Causal.chan e.Causal.chan
        && String.equal t.Causal.send_node e.Causal.send_node
        && t.Causal.send_seq = e.Causal.send_seq
        && String.equal t.Causal.recv_node e.Causal.recv_node
        && t.Causal.recv_seq = e.Causal.recv_seq)
      true_edges
  in
  Alcotest.(check bool) "fixture has cross-node edges" true (true_edges <> []);
  for keep = 0 to String.length whole do
    let oc = open_out_bin manifest_path in
    output_string oc (String.sub whole 0 keep);
    close_out oc;
    match Sharded_log.load base with
    | Error e ->
      Alcotest.fail
        (Printf.sprintf "truncation at %d refused to load: %s" keep e)
    | Ok loaded ->
      (* no fabricated ordering: every recovered edge is a true edge *)
      List.iter
        (fun e ->
          if not (edge_mem e) then
            Alcotest.fail
              (Printf.sprintf "truncation at %d fabricated edge on %S" keep
                 e.Causal.chan))
        loaded.Sharded_log.edges;
      (* and the stitcher still yields a usable merge *)
      ignore (Stitch.stitch loaded)
  done;
  (* restore the intact manifest and confirm full recovery *)
  let oc = open_out_bin manifest_path in
  output_string oc whole;
  close_out oc;
  match Sharded_log.load base with
  | Ok l ->
    Alcotest.(check int) "all edges recovered" (List.length true_edges)
      (List.length l.Sharded_log.edges)
  | Error e -> Alcotest.fail e

(* a bit-flipped manifest line must be dropped by its CRC, not trusted *)
let test_manifest_bitflip () =
  let _prepared, _original, log, causal = record_failing () in
  let base = fresh_base () in
  ignore (Sharded_log.save_via (Store.default ()) ~base ~causal log);
  let manifest_path = base ^ ".causal" in
  let whole =
    let ic = open_in_bin manifest_path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  (* mangle exactly one CRC'd line (the last non-empty one): the line's
     CRC must reject it, flagging the manifest incomplete *)
  let lines = String.split_on_char '\n' whole in
  let last_ix =
    let ix = ref (-1) in
    List.iteri (fun i l -> if String.length l > 0 then ix := i) lines;
    !ix
  in
  let flipped =
    List.mapi (fun i l -> if i = last_ix then l ^ "x" else l) lines
    |> String.concat "\n"
  in
  let oc = open_out_bin manifest_path in
  output_string oc flipped;
  close_out oc;
  match Sharded_log.load base with
  | Ok loaded ->
    Alcotest.(check bool) "bit-flip voids completeness" false
      loaded.Sharded_log.manifest_complete
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* cloudstore has a node map too: record under a partition and stitch *)

let test_cloudstore_partition () =
  let app = Cloudstore.app () in
  let map = Option.get app.App.nodes in
  Alcotest.(check (list string)) "cloudstore nodes"
    [ "coord"; "primary"; "secondary"; "client0"; "client1" ]
    (Node.nodes map);
  let plan =
    plan_of_string "seed=2,partition:coord+primary+client0+client1|secondary:50-400"
  in
  let prepared = Session.prepare Model.Perfect app in
  let rec scan seed =
    if seed > 40 then Alcotest.fail "no failing cloudstore seed"
    else
      let original, log, causal = Session.record_dist ~faults:plan prepared ~seed in
      match original.Interp.failure with
      | Some _ when original.Interp.steps < 20_000 -> (original, log, causal)
      | _ -> scan (seed + 1)
  in
  let _original, log, causal = scan 1 in
  let base = fresh_base () in
  let report = Sharded_log.save_via (Store.default ()) ~base ~causal log in
  Alcotest.(check bool) "save ok" true (Sharded_log.save_ok report);
  let loaded =
    match Sharded_log.load ~lose:[ "secondary" ] base with
    | Ok l -> l
    | Error e -> Alcotest.fail e
  in
  let st = Stitch.stitch loaded in
  Alcotest.(check (list string)) "secondary lost" [ "secondary" ] st.Stitch.lost;
  Alcotest.(check bool) "survivors keep their entries" true
    (List.length st.Stitch.log.Log.entries > 0);
  let outcome =
    Replayer.stitched ~budget:small_budget prepared.Session.app.App.labeled
      ~spec:app.App.spec st
  in
  Alcotest.(check bool) "reproduces without the secondary's shard" true
    (outcome.Replayer.result <> None)

let () =
  Alcotest.run "dist"
    [
      ( "nodes",
        [
          Alcotest.test_case "map, members, cut channels" `Quick test_node_map;
          Alcotest.test_case "fault lowering" `Quick test_lowering;
        ] );
      ( "shards",
        [
          Alcotest.test_case "split+save+load+stitch roundtrip" `Quick
            test_roundtrip;
          Alcotest.test_case "all shards lost stays honest" `Quick
            test_all_lost_is_honest;
        ] );
      ( "partial-evidence",
        [
          Alcotest.test_case "partition+nodecrash, corrupt+deleted shards"
            `Quick test_partial_evidence_reproduces;
          Alcotest.test_case "losing any single node" `Quick test_lose_each_node;
          Alcotest.test_case "cloudstore partition" `Quick
            test_cloudstore_partition;
        ] );
      ( "manifest",
        [
          Alcotest.test_case "every-byte truncation fabricates no edge" `Quick
            test_manifest_truncation_sweep;
          Alcotest.test_case "bit-flip voids completeness" `Quick
            test_manifest_bitflip;
        ] );
    ]
