(* Unit tests for the mvm library: PRNG, vectors, taint, values, DSL,
   labelling, interpreter semantics, scheduling, failures and traces. *)

open Mvm
open Mvm.Dsl

let value_testable = Alcotest.testable Value.pp Value.equal

let run ?max_steps ?(world = World.round_robin ()) labeled =
  Interp.run ?max_steps labeled world

let outputs_on (r : Interp.result) chan =
  match List.assoc_opt chan r.outputs with Some vs -> vs | None -> []

let check_status expected (r : Interp.result) =
  Alcotest.(check string)
    "status" expected
    (match r.status with
    | Interp.Done -> "done"
    | Interp.Crashed _ -> "crashed"
    | Interp.Deadlock -> "deadlock"
    | Interp.Step_limit -> "step-limit"
    | Interp.Aborted _ -> "aborted")

(* ------------------------------------------------------------------ *)
(* Prng *)

let test_prng_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  let xs = List.init 100 (fun _ -> Prng.int a 1000) in
  let ys = List.init 100 (fun _ -> Prng.int b 1000) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys

let test_prng_seeds_differ () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let xs = List.init 50 (fun _ -> Prng.int a 1_000_000) in
  let ys = List.init 50 (fun _ -> Prng.int b 1_000_000) in
  Alcotest.(check bool) "different seeds diverge" false (xs = ys)

let test_prng_bounds () =
  let rng = Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 13 in
    if v < 0 || v >= 13 then Alcotest.fail "out of range"
  done

let test_prng_pick () =
  let rng = Prng.create 3 in
  for _ = 1 to 100 do
    let v = Prng.pick rng [ 1; 2; 3 ] in
    if not (List.mem v [ 1; 2; 3 ]) then Alcotest.fail "pick outside list"
  done;
  Alcotest.check_raises "empty pick" (Invalid_argument "Prng.pick: empty list")
    (fun () -> ignore (Prng.pick rng []))

let test_prng_copy () =
  let a = Prng.create 9 in
  ignore (Prng.int a 10);
  let b = Prng.copy a in
  Alcotest.(check int) "copy continues identically" (Prng.int a 1000)
    (Prng.int b 1000)

let test_prng_float () =
  let rng = Prng.create 11 in
  for _ = 1 to 1000 do
    let f = Prng.float rng in
    if f < 0.0 || f >= 1.0 then Alcotest.fail "float out of [0,1)"
  done

(* ------------------------------------------------------------------ *)
(* Vec *)

let test_vec_push_get () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get 0" 0 (Vec.get v 0);
  Alcotest.(check int) "get 99" 99 (Vec.get v 99);
  Alcotest.check_raises "bounds" (Invalid_argument "Vec.get") (fun () ->
      ignore (Vec.get v 100))

let test_vec_list_roundtrip () =
  let xs = [ 3; 1; 4; 1; 5 ] in
  Alcotest.(check (list int)) "roundtrip" xs (Vec.to_list (Vec.of_list xs))

let test_vec_fold_filter () =
  let v = Vec.of_list [ 1; 2; 3; 4 ] in
  Alcotest.(check int) "fold sum" 10 (Vec.fold ( + ) 0 v);
  Alcotest.(check (list int)) "filter even" [ 2; 4 ] (Vec.filter (fun x -> x mod 2 = 0) v);
  Alcotest.(check bool) "exists" true (Vec.exists (fun x -> x = 3) v);
  Alcotest.(check int) "count" 2 (Vec.count (fun x -> x > 2) v)

(* ------------------------------------------------------------------ *)
(* Taint and values *)

let test_taint_ops () =
  let a = Taint.singleton "net" and b = Taint.singleton "disk" in
  let u = Taint.union a b in
  Alcotest.(check bool) "mem net" true (Taint.mem "net" u);
  Alcotest.(check bool) "mem disk" true (Taint.mem "disk" u);
  Alcotest.(check bool) "empty" true (Taint.is_empty Taint.empty);
  Alcotest.(check (list string)) "elements sorted" [ "disk"; "net" ] (Taint.elements u)

let test_value_sizes () =
  Alcotest.(check int) "int" 8 (Value.size_bytes (Value.int 5));
  Alcotest.(check int) "bool" 1 (Value.size_bytes (Value.bool true));
  Alcotest.(check int) "str" 5 (Value.size_bytes (Value.str "hello"));
  Alcotest.(check int) "unit" 0 (Value.size_bytes Value.unit)

let test_value_projections () =
  Alcotest.(check int) "as_int" 7 (Value.as_int (Value.int 7));
  Alcotest.check_raises "as_int of bool"
    (Value.Type_error "expected int, got true") (fun () ->
      ignore (Value.as_int (Value.bool true)))

(* ------------------------------------------------------------------ *)
(* Label / Dsl validation *)

let simple_prog body =
  program ~name:"t" ~regions:[ scalar "c" (Value.int 0) ] ~inputs:[]
    ~main:"main"
    [ func "main" [] body ]

let test_label_consecutive () =
  let labeled =
    simple_prog [ assign "x" (i 1); if_ (v "x" =: i 1) [ skip ] [ skip ] ]
  in
  let sids = List.map fst (Label.sites labeled.Label.table) in
  Alcotest.(check (list int)) "consecutive sids" [ 1; 2; 3; 4 ] sids

let test_label_table () =
  let labeled = simple_prog [ store_g "c" (i 5) ] in
  let site = Label.site labeled.Label.table 1 in
  Alcotest.(check string) "fname" "main" site.Label.fname;
  Alcotest.(check string) "kind" "store" site.Label.kind

let test_validate_undeclared_region () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (simple_prog [ store_g "nope" (i 1) ]);
       false
     with Invalid_argument _ -> true)

let test_validate_unknown_main () =
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (program ~name:"t" ~regions:[] ~inputs:[] ~main:"nope"
            [ func "main" [] [ skip ] ]);
       false
     with Invalid_argument _ -> true)

let test_validate_unknown_input () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (simple_prog [ input "x" "mystery" ]);
       false
     with Invalid_argument _ -> true)

let test_validate_spawned_function () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (simple_prog [ spawn "ghost" [] ]);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Interpreter: sequential semantics *)

let test_arith () =
  let p = simple_prog [ output "out" ((i 2 +: i 3) *: i 4) ] in
  let r = run p in
  check_status "done" r;
  Alcotest.(check (list value_testable)) "out" [ Value.int 20 ] (outputs_on r "out")

let test_while_loop () =
  let p =
    simple_prog
      [
        assign "s" (i 0);
        assign "k" (i 0);
        while_ (v "k" <: i 5)
          [ assign "s" (v "s" +: v "k"); assign "k" (v "k" +: i 1) ];
        output "out" (v "s");
      ]
  in
  Alcotest.(check (list value_testable)) "sum 0..4" [ Value.int 10 ]
    (outputs_on (run p) "out")

let test_for_sugar () =
  let p =
    simple_prog
      [
        assign "s" (i 0);
        for_ "k" (i 1) (i 4) [ assign "s" (v "s" +: v "k") ];
        output "out" (v "s");
      ]
  in
  Alcotest.(check (list value_testable)) "sum 1..3" [ Value.int 6 ]
    (outputs_on (run p) "out")

let test_call_return () =
  let p =
    program ~name:"t" ~regions:[] ~inputs:[] ~main:"main"
      [
        func "main" []
          [ call ~dest:"r" "double" [ i 21 ]; output "out" (v "r") ];
        func "double" [ "n" ] [ return (v "n" *: i 2) ];
      ]
  in
  Alcotest.(check (list value_testable)) "call result" [ Value.int 42 ]
    (outputs_on (run p) "out")

let test_implicit_unit_return () =
  let p =
    program ~name:"t" ~regions:[ scalar "c" (Value.int 0) ] ~inputs:[]
      ~main:"main"
      [
        func "main" [] [ call ~dest:"r" "proc" []; output "out" (v "r") ];
        func "proc" [] [ store_g "c" (i 1) ];
      ]
  in
  Alcotest.(check (list value_testable)) "unit" [ Value.unit ]
    (outputs_on (run p) "out")

let test_string_ops () =
  let p =
    simple_prog
      [
        assign "a" (s "foo" ^: s "bar");
        output "out" (v "a");
        output "len" (str_len (v "a"));
      ]
  in
  let r = run p in
  Alcotest.(check (list value_testable)) "concat" [ Value.str "foobar" ]
    (outputs_on r "out");
  Alcotest.(check (list value_testable)) "len" [ Value.int 6 ] (outputs_on r "len")

let test_min_max_mod () =
  let p =
    simple_prog
      [
        output "out" (min_ (i 3) (i 5));
        output "out" (max_ (i 3) (i 5));
        output "out" (i 17 %: i 5);
      ]
  in
  Alcotest.(check (list value_testable)) "min/max/mod"
    [ Value.int 3; Value.int 5; Value.int 2 ]
    (outputs_on (run p) "out")

let test_output_order () =
  let p =
    simple_prog [ output "a" (i 1); output "b" (i 2); output "a" (i 3) ]
  in
  let r = run p in
  Alcotest.(check (list value_testable)) "a" [ Value.int 1; Value.int 3 ]
    (outputs_on r "a");
  Alcotest.(check (list value_testable)) "b" [ Value.int 2 ] (outputs_on r "b")

(* ------------------------------------------------------------------ *)
(* Interpreter: crashes *)

let test_div_by_zero () =
  let p = simple_prog [ output "out" (i 1 /: i 0) ] in
  let r = run p in
  check_status "crashed" r;
  match r.failure with
  | Some (Failure.Crash { msg; _ }) ->
    Alcotest.(check string) "msg" "division by zero" msg
  | _ -> Alcotest.fail "expected crash failure"

let test_array_bounds_crash () =
  let p =
    program ~name:"t" ~regions:[ array "a" 3 (Value.int 0) ] ~inputs:[]
      ~main:"main"
      [ func "main" [] [ store "a" (i 7) (i 1) ] ]
  in
  check_status "crashed" (run p)

let test_assert_failure () =
  let p = simple_prog [ assert_ (i 1 =: i 2) "one-is-two" ] in
  let r = run p in
  check_status "crashed" r;
  match r.failure with
  | Some (Failure.Crash { msg; _ }) ->
    Alcotest.(check string) "msg" "assertion failed: one-is-two" msg
  | _ -> Alcotest.fail "expected crash"

let test_fail_stmt () =
  let p = simple_prog [ fail "boom" ] in
  check_status "crashed" (run p)

let test_unbound_variable () =
  let p = simple_prog [ output "out" (v "ghost") ] in
  check_status "crashed" (run p)

let test_crash_sid_stable () =
  let p = simple_prog [ skip; fail "boom" ] in
  let r1 = run p and r2 = run p in
  match r1.failure, r2.failure with
  | Some f1, Some f2 ->
    Alcotest.(check bool) "same failure identity" true (Failure.equal f1 f2)
  | _ -> Alcotest.fail "expected crashes"

let test_type_error_crashes () =
  let p = simple_prog [ output "out" (i 1 +: b true) ] in
  check_status "crashed" (run p)

(* ------------------------------------------------------------------ *)
(* Interpreter: concurrency *)

let counter_prog ~locked ~iters =
  let bump =
    if locked then
      [ lock "m"; assign "t" (g "c"); store_g "c" (v "t" +: i 1); unlock "m" ]
    else [ assign "t" (g "c"); store_g "c" (v "t" +: i 1) ]
  in
  program ~name:"counter" ~regions:[ scalar "c" (Value.int 0) ] ~inputs:[]
    ~main:"main"
    [
      func "main" []
        [
          spawn "w" []; spawn "w" [];
          (* wait for both workers *)
          recv "d1" "done"; recv "d2" "done";
          output "out" (g "c");
        ];
      func "w" []
        [ for_ "k" (i 0) (i iters) bump; send "done" (i 1) ];
    ]

let test_locked_counter_correct () =
  (* Under any schedule, lock-protected increments never lose updates. *)
  for seed = 1 to 20 do
    let r = run ~world:(World.random ~seed) (counter_prog ~locked:true ~iters:10) in
    check_status "done" r;
    Alcotest.(check (list value_testable))
      (Printf.sprintf "seed %d" seed)
      [ Value.int 20 ] (outputs_on r "out")
  done

let test_racy_counter_loses_updates () =
  (* The unlocked counter has a lost-update race; some schedule must expose
     it. This is the VM's raison d'etre, so fail loudly if no seed does. *)
  let lost =
    List.exists
      (fun seed ->
        let r = run ~world:(World.random ~seed) (counter_prog ~locked:false ~iters:10) in
        match outputs_on r "out" with
        | [ Value.Vint n ] -> n < 20
        | _ -> false)
      (List.init 50 (fun k -> k + 1))
  in
  Alcotest.(check bool) "some seed loses updates" true lost

let test_atomic_counter_correct () =
  let p =
    program ~name:"t" ~regions:[ scalar "c" (Value.int 0) ] ~inputs:[]
      ~main:"main"
      [
        func "main" []
          [
            spawn "w" []; spawn "w" [];
            recv "d1" "done"; recv "d2" "done";
            output "out" (g "c");
          ];
        func "w" []
          [
            for_ "k" (i 0) (i 10)
              [ atomic [ assign "t" (g "c"); store_g "c" (v "t" +: i 1) ] ];
            send "done" (i 1);
          ];
      ]
  in
  for seed = 1 to 20 do
    let r = run ~world:(World.random ~seed) p in
    Alcotest.(check (list value_testable))
      (Printf.sprintf "seed %d" seed)
      [ Value.int 20 ] (outputs_on r "out")
  done

let test_deadlock_detected () =
  let p =
    program ~name:"t" ~regions:[] ~inputs:[] ~main:"main"
      [ func "main" [] [ recv "x" "never" ] ]
  in
  let r = run p in
  check_status "deadlock" r;
  match r.failure with
  | Some Failure.Hang -> ()
  | _ -> Alcotest.fail "deadlock should be a Hang failure"

let test_abba_deadlock () =
  (* Classic lock-order inversion: some schedule deadlocks. *)
  let p =
    program ~name:"t" ~regions:[] ~inputs:[] ~main:"main"
      [
        func "main" [] [ spawn "a" []; spawn "b" []; recv "x" "never" ];
        func "a" [] [ lock "m1"; yield; lock "m2"; unlock "m2"; unlock "m1" ];
        func "b" [] [ lock "m2"; yield; lock "m1"; unlock "m1"; unlock "m2" ];
      ]
  in
  let deadlocked =
    List.exists
      (fun seed ->
        match (run ~world:(World.random ~seed) p).status with
        | Interp.Deadlock -> true
        | _ -> false)
      (List.init 50 (fun k -> k + 1))
  in
  Alcotest.(check bool) "some seed deadlocks" true deadlocked

let test_step_limit () =
  let p = simple_prog [ while_ (b true) [ skip ] ] in
  let r = run ~max_steps:100 p in
  check_status "step-limit" r;
  Alcotest.(check int) "steps" 100 r.steps

let test_relock_crashes () =
  let p = simple_prog [ lock "m"; lock "m" ] in
  check_status "crashed" (run p)

let test_unlock_not_held_crashes () =
  let p = simple_prog [ unlock "m" ] in
  check_status "crashed" (run p)

let test_try_recv_empty () =
  let p =
    simple_prog
      [
        try_recv "ok" "x" "ch";
        if_ (v "ok") [ output "out" (i 1) ] [ output "out" (i 0) ];
      ]
  in
  Alcotest.(check (list value_testable)) "no message" [ Value.int 0 ]
    (outputs_on (run p) "out")

let test_channel_fifo () =
  let p =
    program ~name:"t" ~regions:[] ~inputs:[] ~main:"main"
      [
        func "main" []
          [
            send "ch" (i 1); send "ch" (i 2); send "ch" (i 3);
            recv "a" "ch"; recv "b" "ch"; recv "c" "ch";
            output "out" (v "a"); output "out" (v "b"); output "out" (v "c");
          ];
      ]
  in
  Alcotest.(check (list value_testable)) "fifo"
    [ Value.int 1; Value.int 2; Value.int 3 ]
    (outputs_on (run p) "out")

let test_blocked_recv_wakes () =
  let p =
    program ~name:"t" ~regions:[] ~inputs:[] ~main:"main"
      [
        func "main" [] [ spawn "producer" []; recv "x" "ch"; output "out" (v "x") ];
        func "producer" [] [ send "ch" (i 99) ];
      ]
  in
  for seed = 1 to 10 do
    let r = run ~world:(World.random ~seed) p in
    Alcotest.(check (list value_testable))
      (Printf.sprintf "seed %d" seed)
      [ Value.int 99 ] (outputs_on r "out")
  done

(* ------------------------------------------------------------------ *)
(* Worlds, inputs, taint *)

let input_prog =
  program ~name:"t" ~regions:[] ~inputs:[ ("in0", List.init 5 Value.int) ]
    ~main:"main"
    [ func "main" [] [ input "x" "in0"; output "out" (v "x") ] ]

let test_input_from_domain () =
  for seed = 1 to 20 do
    match outputs_on (run ~world:(World.random ~seed) input_prog) "out" with
    | [ Value.Vint n ] ->
      if n < 0 || n > 4 then Alcotest.fail "input outside domain"
    | _ -> Alcotest.fail "expected one int output"
  done

let test_round_robin_picks_first () =
  Alcotest.(check (list value_testable)) "first domain value" [ Value.int 0 ]
    (outputs_on (run input_prog) "out")

let test_same_seed_same_trace () =
  let p = counter_prog ~locked:false ~iters:5 in
  let r1 = run ~world:(World.random ~seed:11) p in
  let r2 = run ~world:(World.random ~seed:11) p in
  Alcotest.(check (list (pair int int)))
    "identical schedules"
    (Trace.sched_points r1.trace)
    (Trace.sched_points r2.trace);
  Alcotest.(check bool) "identical outputs" true (r1.outputs = r2.outputs)

let test_taint_propagates_to_output () =
  let p =
    program ~name:"t" ~regions:[ scalar "c" (Value.int 0) ]
      ~inputs:[ ("net", [ Value.int 1; Value.int 2 ]) ]
      ~main:"main"
      [
        func "main" []
          [
            input "x" "net";
            store_g "c" (v "x" +: i 10);
            assign "y" (g "c");
            output "out" (v "y");
          ];
      ]
  in
  let r = run p in
  let tainted_out =
    Trace.exists
      (fun (e : Event.t) ->
        match e.kind with
        | Event.Out io -> Taint.mem "net" io.value.Value.taint
        | _ -> false)
      r.trace
  in
  Alcotest.(check bool) "output carries net taint" true tainted_out

let test_const_untainted () =
  let p = simple_prog [ output "out" (i 1) ] in
  let r = run p in
  let clean =
    Trace.exists
      (fun (e : Event.t) ->
        match e.kind with
        | Event.Out io -> Taint.is_empty io.value.Value.taint
        | _ -> false)
      r.trace
  in
  Alcotest.(check bool) "constant output untainted" true clean

(* ------------------------------------------------------------------ *)
(* Trace queries *)

let test_trace_writes_and_reconstruction () =
  let p =
    simple_prog
      [ store_g "c" (i 1); store_g "c" (i 2); store_g "c" (i 3) ]
  in
  let r = run p in
  let writes = Trace.writes_to_scalar r.trace "c" in
  Alcotest.(check int) "three writes" 3 (List.length writes);
  let steps = List.map (fun (s, _, _) -> s) writes in
  (* value as of just before the step of the second write *)
  let mid = Trace.scalar_at r.trace "c" ~init:(Value.int 0) ~step:(List.nth steps 1) in
  Alcotest.check value_testable "value before second write" (Value.int 1) mid;
  let final = Trace.scalar_at r.trace "c" ~init:(Value.int 0) ~step:max_int in
  Alcotest.check value_testable "final value" (Value.int 3) final

let test_trace_inputs_on () =
  let r = run input_prog in
  match Trace.inputs_on r.trace "in0" with
  | [ (_, _, v) ] -> Alcotest.check value_testable "input recorded" (Value.int 0) v
  | _ -> Alcotest.fail "expected exactly one input event"

let test_trace_steps_counted () =
  let p = simple_prog [ skip; skip; skip ] in
  let r = run p in
  Alcotest.(check int) "steps equal Step events" r.steps (Trace.steps r.trace);
  Alcotest.(check int) "three steps" 3 r.steps

let test_trace_reads_by () =
  let p =
    simple_prog [ store_g "c" (i 7); assign "x" (g "c"); output "out" (v "x") ]
  in
  let r = run p in
  Alcotest.(check (list value_testable)) "thread 0 reads" [ Value.int 7 ]
    (Trace.reads_by r.trace 0)

let test_sched_points_shape () =
  let p = simple_prog [ skip; skip ] in
  let r = run p in
  Alcotest.(check (list (pair int int)))
    "two steps by thread 0" [ (0, 1); (0, 2) ]
    (Trace.sched_points r.trace)

(* ------------------------------------------------------------------ *)
(* Spec *)

let test_spec_violation () =
  let p = simple_prog [ output "out" (i 5) ] in
  let spec =
    Spec.make "wants-four" (fun r ->
        match List.assoc_opt "out" r.Interp.outputs with
        | Some [ Value.Vint 4 ] -> Ok ()
        | _ -> Error "not-four")
  in
  let r = Spec.apply spec (run p) in
  match r.failure with
  | Some (Failure.Spec_violation "not-four") -> ()
  | _ -> Alcotest.fail "expected spec violation"

let test_spec_pass () =
  let p = simple_prog [ output "out" (i 5) ] in
  let r = Spec.apply Spec.accept_all (run p) in
  Alcotest.(check bool) "no failure" true (r.failure = None)

let test_spec_keeps_crash () =
  let p = simple_prog [ fail "boom" ] in
  let r = Spec.apply Spec.accept_all (run p) in
  match r.failure with
  | Some (Failure.Crash _) -> ()
  | _ -> Alcotest.fail "crash must survive spec application"

let test_outputs_equal_spec () =
  let p = simple_prog [ output "out" (i 1) ] in
  let r = run p in
  let good = Spec.outputs_equal ~expected:[ ("out", [ Value.int 1 ]) ] in
  let bad = Spec.outputs_equal ~expected:[ ("out", [ Value.int 2 ]) ] in
  Alcotest.(check bool) "accepts" true ((Spec.apply good r).failure = None);
  Alcotest.(check bool) "rejects" false ((Spec.apply bad r).failure = None)

(* ------------------------------------------------------------------ *)
(* Abort hook and monitors *)

let test_abort_hook () =
  let p = simple_prog [ skip; skip; skip; skip ] in
  let abort (e : Event.t) = if e.step >= 2 then Some "enough" else None in
  let r = Interp.run ~abort p (World.round_robin ()) in
  check_status "aborted" r

let test_monitors_see_all_events () =
  let p = simple_prog [ store_g "c" (i 1); output "out" (g "c") ] in
  let seen = ref 0 in
  let r = Interp.run ~monitors:[ (fun _ -> incr seen) ] p (World.round_robin ()) in
  Alcotest.(check int) "monitor saw every event" (Trace.length r.trace) !seen

(* ------------------------------------------------------------------ *)
(* Proggen *)

let test_proggen_deterministic () =
  let p1 = Proggen.generate Proggen.default (Prng.create 5) in
  let p2 = Proggen.generate Proggen.default (Prng.create 5) in
  let pp p = Format.asprintf "%a" Ast.pp_program p.Label.prog in
  Alcotest.(check string) "same seed, same program" (pp p1) (pp p2)

let test_proggen_runs_clean () =
  (* Generated programs must terminate without crashing under any seed. *)
  for pseed = 1 to 10 do
    let p = Proggen.generate Proggen.default (Prng.create pseed) in
    for wseed = 1 to 5 do
      let r = Interp.run ~max_steps:50_000 p (World.random ~seed:wseed) in
      match r.status with
      | Interp.Done -> ()
      | st ->
        Alcotest.fail
          (Printf.sprintf "program %d seed %d: %s" pseed wseed
             (Interp.status_to_string st))
    done
  done

(* ------------------------------------------------------------------ *)
(* Compiled interpreter parity: Interp.run_compiled must reproduce
   Interp.run byte for byte — same events, steps, outputs, failure —
   on every program and world, with the arena state reused across runs. *)

let same_result name (a : Interp.result) (b : Interp.result) =
  Alcotest.(check string)
    (name ^ ": status")
    (Interp.status_to_string a.status)
    (Interp.status_to_string b.status);
  Alcotest.(check int) (name ^ ": steps") a.steps b.steps;
  Alcotest.(check bool)
    (name ^ ": events")
    true
    (Trace.events a.trace = Trace.events b.trace);
  Alcotest.(check bool) (name ^ ": outputs") true (a.outputs = b.outputs);
  Alcotest.(check bool) (name ^ ": failure") true (a.failure = b.failure)

let check_parity ?(seeds = [ 1; 2; 3; 4; 5 ]) (labeled : Label.labeled) =
  let c = Interp.compile labeled in
  (* one arena for every run of this program: also exercises the reset *)
  let state = Interp.make_state c in
  let name = labeled.Label.prog.Ast.name in
  let go world_of =
    let r_ast = Interp.run ~max_steps:50_000 labeled (world_of ()) in
    let r_c = Interp.run_compiled ~max_steps:50_000 ~state c (world_of ()) in
    same_result name r_ast r_c
  in
  go (fun () -> World.round_robin ());
  List.iter
    (fun sd ->
      go (fun () -> World.random ~seed:sd);
      (* the uncached (non-passive) candidate path must agree too *)
      go (fun () ->
          { (World.random ~seed:sd) with World.passive_try_recv = false }))
    seeds

let sink_prog =
  program ~name:"sink"
    ~regions:[ scalar "acc" (Value.int 0); array "buf" 4 (Value.int 0) ]
    ~inputs:[ ("cfg", [ Value.int 1; Value.int 2 ]) ]
    ~main:"main"
    [
      func "add" [ "k" ]
        [ store_g "acc" (g "acc" +: v "k"); return (g "acc") ];
      func "worker" [ "n" ]
        [
          lock "m";
          store "buf" (v "n" %: i 4) (v "n" *: i 2);
          unlock "m";
          send "ch" (v "n");
        ];
      func "main" []
        [
          input "x" "cfg";
          spawn "worker" [ i 1 ];
          spawn "worker" [ i 2 ];
          call ~dest:"r" "add" [ v "x" ];
          call "add" [ i 3 ];
          assign "i" (i 0);
          while_
            (v "i" <: i 3)
            [
              store "buf" (v "i") (idx "buf" (v "i") +: v "r");
              assign "i" (v "i" +: i 1);
            ];
          atomic
            [
              assign "j" (i 0);
              while_
                (v "j" <: i 2)
                [ store_g "acc" (g "acc" +: i 1); assign "j" (v "j" +: i 1) ];
              if_ (g "acc" >: i 0) [ send "ch" (i 99) ] [ skip ];
            ];
          recv "a" "ch";
          recv "b" "ch";
          recv "c" "ch";
          try_recv "ok" "d" "ch";
          if_ (v "ok") [ output "out" (v "d") ] [ output "out" (i (-1)) ];
          output "out" (max_ (v "a") (min_ (v "b") (v "c")));
          output "out" (s "x=" ^: s "done");
          assert_ (g "acc" >=: i 0) "acc nonneg";
          yield;
        ];
    ]

let crash_progs =
  let one name body = simple_prog body |> fun l ->
    ({ l with Label.prog = { l.Label.prog with Ast.name } } : Label.labeled)
  in
  [
    one "div-zero" [ output "out" (i 1 /: i 0) ];
    one "mod-zero" [ output "out" (i 1 %: i 0) ];
    one "unbound" [ assign "x" (v "nope") ];
    one "type-error" [ output "out" (i 1 +: b true) ];
    one "assert-fail" [ assert_ (i 1 =: i 2) "boom" ];
    one "fail" [ fail "kaput" ];
    one "relock" [ lock "m"; lock "m" ];
    one "bad-unlock" [ unlock "m" ];
    one "deadlock" [ recv "x" "never" ];
    one "atomic-recv" [ atomic [ recv "x" "never" ] ];
    one "atomic-budget" [ atomic [ while_ (b true) [ skip ] ] ];
    program ~name:"oob-load"
      ~regions:[ array "buf" 4 (Value.int 0) ]
      ~inputs:[] ~main:"main"
      [ func "main" [] [ output "out" (idx "buf" (i 9)) ] ];
    program ~name:"oob-store"
      ~regions:[ array "buf" 4 (Value.int 0) ]
      ~inputs:[] ~main:"main"
      [ func "main" [] [ store "buf" (i (-1)) (i 5) ] ];
  ]

let arity_progs =
  (* Label.validate checks names, not arity: arity mismatches crash at
     call time and both interpreters must report them identically. *)
  let mk name stmts =
    program ~name
      ~regions:[ scalar "c" (Value.int 0) ]
      ~inputs:[] ~main:"main"
      [ func "f" [ "a"; "b" ] [ skip ]; func "main" [] stmts ]
  in
  [
    mk "arity-call" [ call "f" [ i 1 ] ];
    mk "arity-spawn" [ spawn "f" [ i 1; i 2; i 3 ] ];
    mk "atomic-call" [ atomic [ call "f" [ i 1; i 2 ] ] ];
    mk "atomic-spawn" [ atomic [ spawn "f" [ i 1; i 2 ] ] ];
  ]

let test_compiled_parity_sink () = check_parity sink_prog

let test_compiled_parity_crashes () =
  List.iter (fun p -> check_parity ~seeds:[ 1; 2 ] p) crash_progs;
  List.iter (fun p -> check_parity ~seeds:[ 1; 2 ] p) arity_progs

let test_compiled_parity_corpus () =
  for pseed = 1 to 10 do
    let p = Proggen.generate Proggen.default (Prng.create pseed) in
    check_parity p
  done

let test_compiled_state_isolation () =
  (* A reused arena must leak nothing between runs: running a mutating
     program twice on one state gives identical results. *)
  let c = Interp.compile sink_prog in
  let state = Interp.make_state c in
  let r1 = Interp.run_compiled ~state c (World.random ~seed:7) in
  let r2 = Interp.run_compiled ~state c (World.random ~seed:7) in
  same_result "state-isolation" r1 r2

let () =
  Alcotest.run "mvm"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "seeds differ" `Quick test_prng_seeds_differ;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "pick" `Quick test_prng_pick;
          Alcotest.test_case "copy" `Quick test_prng_copy;
          Alcotest.test_case "float range" `Quick test_prng_float;
        ] );
      ( "vec",
        [
          Alcotest.test_case "push/get" `Quick test_vec_push_get;
          Alcotest.test_case "list roundtrip" `Quick test_vec_list_roundtrip;
          Alcotest.test_case "fold/filter" `Quick test_vec_fold_filter;
        ] );
      ( "value",
        [
          Alcotest.test_case "taint ops" `Quick test_taint_ops;
          Alcotest.test_case "sizes" `Quick test_value_sizes;
          Alcotest.test_case "projections" `Quick test_value_projections;
        ] );
      ( "label",
        [
          Alcotest.test_case "consecutive sids" `Quick test_label_consecutive;
          Alcotest.test_case "site table" `Quick test_label_table;
          Alcotest.test_case "undeclared region" `Quick test_validate_undeclared_region;
          Alcotest.test_case "unknown main" `Quick test_validate_unknown_main;
          Alcotest.test_case "unknown input" `Quick test_validate_unknown_input;
          Alcotest.test_case "unknown spawn target" `Quick test_validate_spawned_function;
        ] );
      ( "sequential",
        [
          Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "while" `Quick test_while_loop;
          Alcotest.test_case "for sugar" `Quick test_for_sugar;
          Alcotest.test_case "call/return" `Quick test_call_return;
          Alcotest.test_case "implicit return" `Quick test_implicit_unit_return;
          Alcotest.test_case "strings" `Quick test_string_ops;
          Alcotest.test_case "min/max/mod" `Quick test_min_max_mod;
          Alcotest.test_case "output order" `Quick test_output_order;
        ] );
      ( "crashes",
        [
          Alcotest.test_case "div by zero" `Quick test_div_by_zero;
          Alcotest.test_case "array bounds" `Quick test_array_bounds_crash;
          Alcotest.test_case "assert" `Quick test_assert_failure;
          Alcotest.test_case "fail" `Quick test_fail_stmt;
          Alcotest.test_case "unbound var" `Quick test_unbound_variable;
          Alcotest.test_case "crash identity stable" `Quick test_crash_sid_stable;
          Alcotest.test_case "type error" `Quick test_type_error_crashes;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "locked counter" `Quick test_locked_counter_correct;
          Alcotest.test_case "racy counter" `Quick test_racy_counter_loses_updates;
          Alcotest.test_case "atomic counter" `Quick test_atomic_counter_correct;
          Alcotest.test_case "recv deadlock" `Quick test_deadlock_detected;
          Alcotest.test_case "ABBA deadlock" `Quick test_abba_deadlock;
          Alcotest.test_case "step limit" `Quick test_step_limit;
          Alcotest.test_case "relock crash" `Quick test_relock_crashes;
          Alcotest.test_case "bad unlock crash" `Quick test_unlock_not_held_crashes;
          Alcotest.test_case "try_recv empty" `Quick test_try_recv_empty;
          Alcotest.test_case "channel fifo" `Quick test_channel_fifo;
          Alcotest.test_case "recv wakes" `Quick test_blocked_recv_wakes;
        ] );
      ( "worlds",
        [
          Alcotest.test_case "input domain" `Quick test_input_from_domain;
          Alcotest.test_case "round robin input" `Quick test_round_robin_picks_first;
          Alcotest.test_case "seed reproducibility" `Quick test_same_seed_same_trace;
          Alcotest.test_case "taint propagation" `Quick test_taint_propagates_to_output;
          Alcotest.test_case "const untainted" `Quick test_const_untainted;
        ] );
      ( "trace",
        [
          Alcotest.test_case "writes/reconstruction" `Quick test_trace_writes_and_reconstruction;
          Alcotest.test_case "inputs_on" `Quick test_trace_inputs_on;
          Alcotest.test_case "steps counted" `Quick test_trace_steps_counted;
          Alcotest.test_case "reads_by" `Quick test_trace_reads_by;
          Alcotest.test_case "sched points" `Quick test_sched_points_shape;
        ] );
      ( "spec",
        [
          Alcotest.test_case "violation" `Quick test_spec_violation;
          Alcotest.test_case "pass" `Quick test_spec_pass;
          Alcotest.test_case "keeps crash" `Quick test_spec_keeps_crash;
          Alcotest.test_case "outputs_equal" `Quick test_outputs_equal_spec;
        ] );
      ( "hooks",
        [
          Alcotest.test_case "abort" `Quick test_abort_hook;
          Alcotest.test_case "monitors" `Quick test_monitors_see_all_events;
        ] );
      ( "proggen",
        [
          Alcotest.test_case "deterministic" `Quick test_proggen_deterministic;
          Alcotest.test_case "runs clean" `Quick test_proggen_runs_clean;
        ] );
      ( "compiled",
        [
          Alcotest.test_case "kitchen-sink parity" `Quick
            test_compiled_parity_sink;
          Alcotest.test_case "crash parity" `Quick test_compiled_parity_crashes;
          Alcotest.test_case "proggen corpus parity" `Quick
            test_compiled_parity_corpus;
          Alcotest.test_case "arena isolation" `Quick
            test_compiled_state_isolation;
        ] );
    ]
