(* Unit tests for ddet_replay: oracles, constraints, search engines and the
   per-model replay drivers, on small purpose-built programs. *)

open Mvm
open Mvm.Dsl
open Ddet_record
open Ddet_replay

let value_testable = Alcotest.testable Value.pp Value.equal

(* Racy counter: the replay battleground. *)
let counter_prog ~iters =
  program ~name:"counter"
    ~regions:[ scalar "c" (Value.int 0) ]
    ~inputs:[] ~main:"main"
    [
      func "main" []
        [
          spawn "w" []; spawn "w" [];
          recv "d1" "done"; recv "d2" "done";
          output "out" (g "c");
        ];
      func "w" []
        [
          for_ "k" (i 0) (i iters)
            [ assign "t" (g "c"); store_g "c" (v "t" +: i 1) ];
          send "done" (i 1);
        ];
    ]

let adder_prog =
  program ~name:"adder" ~regions:[]
    ~inputs:[ ("a", List.init 6 Value.int); ("b", List.init 6 Value.int) ]
    ~main:"main"
    [
      func "main" []
        [ input "a" "a"; input "b" "b"; output "sum" (v "a" +: v "b") ];
    ]

let spec_out_20 =
  Spec.make "twenty" (fun r ->
      match Trace.outputs_on r.Interp.trace "out" with
      | [ Value.Vint 20 ] -> Ok ()
      | _ -> Error "lost-update")

let record_counter seed recorder =
  Recorder.record recorder (counter_prog ~iters:10) ~spec:spec_out_20
    ~world:(World.random ~seed)

let find_failing_seed () =
  let rec scan seed =
    if seed > 500 then failwith "no failing seed for counter"
    else
      let r, _ = record_counter seed (Output_recorder.create ()) in
      if r.Interp.failure <> None then seed else scan (seed + 1)
  in
  scan 1

(* ------------------------------------------------------------------ *)
(* perfect replay *)

let test_perfect_roundtrip () =
  let seed = find_failing_seed () in
  let original, log = record_counter seed (Full_recorder.create ()) in
  let outcome = Replayer.perfect (counter_prog ~iters:10) ~spec:spec_out_20 log in
  match outcome.Replayer.result with
  | None -> Alcotest.fail "perfect replay diverged"
  | Some replay ->
    Alcotest.(check bool) "identical outputs" true
      (replay.Interp.outputs = original.Interp.outputs);
    Alcotest.(check (list (pair int int)))
      "identical schedule"
      (Trace.sched_points original.Interp.trace)
      (Trace.sched_points replay.Interp.trace)

let test_perfect_detects_corrupt_log () =
  let _, log = record_counter 1 (Full_recorder.create ()) in
  (* corrupt the schedule: swap the first two entries *)
  let entries =
    match log.Log.entries with
    | a :: b :: rest -> b :: a :: rest
    | es -> es
  in
  let log = { log with Log.entries } in
  let handle = Oracle.perfect log in
  let r = Interp.run ~abort:handle.Oracle.abort (counter_prog ~iters:10) handle.Oracle.world in
  match r.Interp.status with
  | Interp.Aborted _ -> ()
  | _ -> Alcotest.fail "corrupted log should abort the replay"

(* ------------------------------------------------------------------ *)
(* value replay *)

let test_value_reproduces_failure () =
  let seed = find_failing_seed () in
  let original, log = record_counter seed (Value_recorder.create ()) in
  let outcome = Replayer.value_det (counter_prog ~iters:10) ~spec:spec_out_20 log in
  match outcome.Replayer.result with
  | None -> Alcotest.fail "value replay failed"
  | Some replay ->
    Alcotest.(check bool) "same failure" true
      (original.Interp.failure = replay.Interp.failure)

let test_value_preserves_thread_projection () =
  let seed = find_failing_seed () in
  let original, log = record_counter seed (Value_recorder.create ()) in
  let outcome = Replayer.value_det (counter_prog ~iters:10) ~spec:spec_out_20 log in
  match outcome.Replayer.result with
  | None -> Alcotest.fail "value replay failed"
  | Some replay ->
    (* per-thread shared-read projections must match the original *)
    for tid = 0 to 2 do
      Alcotest.(check (list value_testable))
        (Printf.sprintf "thread %d reads" tid)
        (Trace.reads_by original.Interp.trace tid)
        (Trace.reads_by replay.Interp.trace tid)
    done

let test_value_forces_try_recv_outcomes () =
  (* a consumer polling an initially empty channel: the poll pattern is
     part of the thread's observations and must replay *)
  let p =
    program ~name:"poll" ~regions:[] ~inputs:[] ~main:"main"
      [
        func "main" []
          [
            spawn "producer" [];
            assign "got" (i 0);
            while_ (v "got" =: i 0)
              [ try_recv "ok" "x" "ch";
                when_ (v "ok") [ assign "got" (i 1); output "out" (v "x") ] ];
          ];
        func "producer" [] [ yield; yield; send "ch" (i 42) ];
      ]
  in
  let original, log =
    Recorder.record (Value_recorder.create ()) p ~spec:Spec.accept_all
      ~world:(World.random ~seed:7)
  in
  let outcome = Replayer.value_det p ~spec:Spec.accept_all log in
  match outcome.Replayer.result with
  | None -> Alcotest.fail "value replay failed"
  | Some replay ->
    Alcotest.(check bool) "same outputs" true
      (original.Interp.outputs = replay.Interp.outputs)

(* ------------------------------------------------------------------ *)
(* constraints *)

let test_outputs_match () =
  let r, log = record_counter 1 (Output_recorder.create ()) in
  Alcotest.(check bool) "run matches own log" true (Constraints.outputs_match log r)

let test_output_prefix_abort_fires () =
  let _, log = record_counter 1 (Output_recorder.create ()) in
  let abort = Constraints.output_prefix_abort log in
  let bad =
    {
      Event.step = 0; tid = 0; sid = 1; fname = "main";
      kind = Event.Out { chan = "out"; value = Value.untainted (Value.int (-1)) };
    }
  in
  Alcotest.(check bool) "mismatching output aborts" true (abort bad <> None)

let test_output_prefix_accepts_match () =
  let r, log = record_counter 1 (Output_recorder.create ()) in
  let abort = Constraints.output_prefix_abort log in
  let ok = ref true in
  Trace.iter (fun e -> if abort e <> None then ok := false) r.Interp.trace;
  Alcotest.(check bool) "own trace passes" true !ok

let test_failure_matches () =
  let p =
    program ~name:"boom" ~regions:[] ~inputs:[] ~main:"main"
      [ func "main" [] [ fail "kaput" ] ]
  in
  let r, log =
    Recorder.record (Failure_recorder.create ()) p ~spec:Spec.accept_all
      ~world:(World.round_robin ())
  in
  Alcotest.(check bool) "matches itself" true (Constraints.failure_matches log r)

(* ------------------------------------------------------------------ *)
(* search *)

let test_enumerate_finds_assignment () =
  let spec = Spec.accept_all in
  let accept (r : Interp.result) =
    Trace.outputs_on r.Interp.trace "sum" = [ Value.int 7 ]
  in
  let o = Search.enumerate_inputs Search.default_budget ~spec ~accept adder_prog in
  match o.Search.result with
  | Some r -> (
    match Trace.inputs_on r.Interp.trace "a", Trace.inputs_on r.Interp.trace "b" with
    | [ (_, _, Value.Vint a) ], [ (_, _, Value.Vint b) ] ->
      Alcotest.(check int) "inputs sum to 7" 7 (a + b)
    | _ -> Alcotest.fail "malformed inputs")
  | None -> Alcotest.fail "enumeration missed a satisfiable goal"

let test_enumerate_exhausts () =
  let spec = Spec.accept_all in
  let accept (r : Interp.result) =
    Trace.outputs_on r.Interp.trace "sum" = [ Value.int 99 ]
  in
  let o = Search.enumerate_inputs Search.default_budget ~spec ~accept adder_prog in
  Alcotest.(check bool) "unsatisfiable goal fails" true (o.Search.result = None);
  Alcotest.(check int) "exactly the 36 assignments tried" 36 o.Search.stats.attempts

let test_enumerate_lexicographic () =
  let spec = Spec.accept_all in
  let o = Search.enumerate_inputs Search.default_budget ~spec
      ~accept:(fun _ -> true) adder_prog
  in
  match o.Search.result with
  | Some r ->
    Alcotest.(check (list value_testable)) "first assignment is all-zero"
      [ Value.int 0 ]
      (Trace.outputs_on r.Interp.trace "sum")
  | None -> Alcotest.fail "accept-all must succeed"

let test_restarts_budget_respected () =
  let o =
    Search.random_restarts
      { Search.max_attempts = 7; max_steps_per_attempt = 1000; base_seed = 1; deadline_s = None }
      ~make:(fun ~attempt -> (World.random ~seed:attempt, None))
      ~spec:Spec.accept_all
      ~accept:(fun _ -> false)
      adder_prog
  in
  Alcotest.(check int) "attempts capped" 7 o.Search.stats.attempts;
  Alcotest.(check bool) "no result" true (o.Search.result = None);
  Alcotest.(check bool) "steps accounted" true (o.Search.stats.total_steps > 0)

let test_restarts_stops_on_success () =
  let o =
    Search.random_restarts
      { Search.max_attempts = 100; max_steps_per_attempt = 1000; base_seed = 1; deadline_s = None }
      ~make:(fun ~attempt -> (World.random ~seed:attempt, None))
      ~spec:Spec.accept_all
      ~accept:(fun _ -> true)
      adder_prog
  in
  Alcotest.(check int) "first attempt accepted" 1 o.Search.stats.attempts

let small_counter = counter_prog ~iters:3

let spec_out_6 =
  Spec.make "six" (fun r ->
      match Trace.outputs_on r.Interp.trace "out" with
      | [ Value.Vint 6 ] -> Ok ()
      | _ -> Error "lost-update")

let test_dfs_finds_lost_update () =
  let budget =
    { Search.max_attempts = 3_000; max_steps_per_attempt = 5_000; base_seed = 1; deadline_s = None }
  in
  let o =
    Search.dfs_schedules budget ~spec:spec_out_6
      ~accept:(fun r -> r.Interp.failure <> None)
      small_counter
  in
  match o.Search.result with
  | Some r -> (
    match r.Interp.failure with
    | Some (Mvm.Failure.Spec_violation "lost-update") -> ()
    | _ -> Alcotest.fail "wrong failure")
  | None -> Alcotest.fail "systematic search missed the lost update"

let test_dfs_deterministic () =
  let budget =
    { Search.max_attempts = 3_000; max_steps_per_attempt = 5_000; base_seed = 1; deadline_s = None }
  in
  let run () =
    (Search.dfs_schedules budget ~spec:spec_out_6
       ~accept:(fun r -> r.Interp.failure <> None)
       small_counter)
      .Search.stats.attempts
  in
  Alcotest.(check int) "same attempt count" (run ()) (run ())

let test_dfs_exhausts_budget_on_unsatisfiable () =
  let budget =
    { Search.max_attempts = 50; max_steps_per_attempt = 5_000; base_seed = 1; deadline_s = None }
  in
  let o =
    Search.dfs_schedules budget ~spec:Spec.accept_all
      ~accept:(fun _ -> false)
      small_counter
  in
  Alcotest.(check bool) "no result" true (o.Search.result = None);
  Alcotest.(check int) "budget spent" 50 o.Search.stats.attempts

let test_dfs_fixed_inputs () =
  let o =
    Search.dfs_schedules
      { Search.max_attempts = 1; max_steps_per_attempt = 5_000; base_seed = 1; deadline_s = None }
      ~spec:Spec.accept_all
      ~accept:(fun _ -> true)
      adder_prog
  in
  match o.Search.result with
  | Some r ->
    Alcotest.(check (list value_testable)) "inputs pinned to first domain value"
      [ Value.int 0 ]
      (Trace.outputs_on r.Interp.trace "sum")
  | None -> Alcotest.fail "accept-all must succeed"

(* ------------------------------------------------------------------ *)
(* model drivers on the counter race *)

let test_failure_det_reproduces () =
  let seed = find_failing_seed () in
  let _, log = record_counter seed (Failure_recorder.create ()) in
  let outcome = Replayer.failure_det (counter_prog ~iters:10) ~spec:spec_out_20 log in
  match outcome.Replayer.result with
  | Some r ->
    Alcotest.(check bool) "failure reproduced" true
      (Constraints.failure_matches log r)
  | None -> Alcotest.fail "failure synthesis exhausted its budget"

let test_output_det_reproduces_outputs () =
  let seed = find_failing_seed () in
  let _, log = record_counter seed (Output_recorder.create ()) in
  let outcome =
    Replayer.output_det ~exhaustive:false (counter_prog ~iters:10)
      ~spec:spec_out_20 log
  in
  match outcome.Replayer.result with
  | Some r ->
    Alcotest.(check bool) "outputs reproduced" true (Constraints.outputs_match log r)
  | None -> Alcotest.fail "output inference exhausted its budget"

let test_sync_det_reproduces () =
  let seed = find_failing_seed () in
  let _, log = record_counter seed (Sync_recorder.create ()) in
  let outcome = Replayer.sync_det (counter_prog ~iters:10) ~spec:spec_out_20 log in
  match outcome.Replayer.result with
  | Some r ->
    Alcotest.(check bool) "outputs reproduced" true (Constraints.outputs_match log r)
  | None -> Alcotest.fail "sync inference exhausted its budget"

let test_rcse_empty_log_is_free_search () =
  let seed = find_failing_seed () in
  let _, log =
    record_counter seed
      (Rcse_recorder.create (Fidelity_level.always Fidelity_level.Low))
  in
  let outcome = Replayer.rcse (counter_prog ~iters:10) ~spec:spec_out_20 log in
  (* with nothing recorded, RCSE degenerates to failure-determinism search *)
  match outcome.Replayer.result with
  | Some r ->
    Alcotest.(check bool) "failure reproduced" true
      (Constraints.failure_matches log r)
  | None -> Alcotest.fail "search exhausted"

let test_rcse_full_log_replays_immediately () =
  let seed = find_failing_seed () in
  let original, log =
    record_counter seed
      (Rcse_recorder.create (Fidelity_level.always Fidelity_level.High))
  in
  let outcome = Replayer.rcse (counter_prog ~iters:10) ~spec:spec_out_20 log in
  Alcotest.(check int) "one attempt suffices" 1 outcome.Replayer.attempts;
  match outcome.Replayer.result with
  | Some r ->
    Alcotest.(check bool) "identical outputs" true
      (r.Interp.outputs = original.Interp.outputs)
  | None -> Alcotest.fail "full-fidelity rcse must replay"

let () =
  Alcotest.run "replay"
    [
      ( "perfect",
        [
          Alcotest.test_case "roundtrip" `Quick test_perfect_roundtrip;
          Alcotest.test_case "detects corruption" `Quick test_perfect_detects_corrupt_log;
        ] );
      ( "value",
        [
          Alcotest.test_case "reproduces failure" `Quick test_value_reproduces_failure;
          Alcotest.test_case "thread projection" `Quick test_value_preserves_thread_projection;
          Alcotest.test_case "try_recv outcomes" `Quick test_value_forces_try_recv_outcomes;
        ] );
      ( "constraints",
        [
          Alcotest.test_case "outputs match" `Quick test_outputs_match;
          Alcotest.test_case "prefix abort fires" `Quick test_output_prefix_abort_fires;
          Alcotest.test_case "prefix accepts own trace" `Quick test_output_prefix_accepts_match;
          Alcotest.test_case "failure matches" `Quick test_failure_matches;
        ] );
      ( "search",
        [
          Alcotest.test_case "enumerate finds" `Quick test_enumerate_finds_assignment;
          Alcotest.test_case "enumerate exhausts" `Quick test_enumerate_exhausts;
          Alcotest.test_case "enumerate order" `Quick test_enumerate_lexicographic;
          Alcotest.test_case "budget respected" `Quick test_restarts_budget_respected;
          Alcotest.test_case "stops on success" `Quick test_restarts_stops_on_success;
          Alcotest.test_case "dfs finds race" `Quick test_dfs_finds_lost_update;
          Alcotest.test_case "dfs deterministic" `Quick test_dfs_deterministic;
          Alcotest.test_case "dfs exhausts" `Quick test_dfs_exhausts_budget_on_unsatisfiable;
          Alcotest.test_case "dfs fixed inputs" `Quick test_dfs_fixed_inputs;
        ] );
      ( "drivers",
        [
          Alcotest.test_case "failure det" `Quick test_failure_det_reproduces;
          Alcotest.test_case "output det" `Quick test_output_det_reproduces_outputs;
          Alcotest.test_case "sync det" `Quick test_sync_det_reproduces;
          Alcotest.test_case "rcse empty log" `Quick test_rcse_empty_log_is_free_search;
          Alcotest.test_case "rcse full log" `Quick test_rcse_full_log_replays_immediately;
        ] );
    ]
