(* Unit tests for ddet_record: log queries, cost model, and the entry
   streams each recorder extracts from a run. *)

open Mvm
open Mvm.Dsl
open Ddet_record

let value_testable = Alcotest.testable Value.pp Value.equal

(* A small concurrent program exercising every event class: inputs,
   outputs, shared reads/writes, messages, locks, spawn. *)
let mixed_prog =
  program ~name:"mixed"
    ~regions:[ scalar "c" (Value.int 0) ]
    ~inputs:[ ("in0", [ Value.int 1; Value.int 2 ]) ]
    ~main:"main"
    [
      func "main" []
        [
          spawn "w" [];
          input "x" "in0";
          lock "m";
          assign "t" (g "c");
          store_g "c" (v "t" +: v "x");
          unlock "m";
          recv "d" "done";
          output "out" (g "c");
        ];
      func "w" []
        [
          lock "m";
          assign "t" (g "c");
          store_g "c" (v "t" +: i 10);
          unlock "m";
          send "done" (i 1);
        ];
    ]

let record_with recorder =
  Recorder.record recorder mixed_prog ~spec:Spec.accept_all
    ~world:(World.round_robin ())

(* ------------------------------------------------------------------ *)
(* Log structure per recorder *)

let test_full_records_schedule () =
  let result, log = record_with (Full_recorder.create ()) in
  Alcotest.(check (list (pair int int)))
    "schedule equals trace schedule"
    (Trace.sched_points result.Interp.trace)
    (Log.sched_points log);
  Alcotest.(check int) "one sched entry per step" result.Interp.steps
    (List.length (Log.sched_points log))

let test_full_records_inputs () =
  let _, log = record_with (Full_recorder.create ()) in
  Alcotest.(check (list value_testable)) "main's input logged" [ Value.int 1 ]
    (Log.inputs_for log 0)

let test_value_records_reads_and_recvs () =
  let result, log = record_with (Value_recorder.create ()) in
  let logged = List.map (fun (_, _, v) -> v) (Log.reads_for log 0) in
  let traced = Trace.reads_by result.Interp.trace 0 in
  (* thread 0's Read_val stream = its shared reads plus its one recv *)
  Alcotest.(check int) "read log covers reads + recv"
    (List.length traced + 1) (List.length logged)

let test_value_read_kinds () =
  let _, log = record_with (Value_recorder.create ()) in
  let kinds = List.map (fun (_, k, _) -> k) (Log.reads_for log 0) in
  Alcotest.(check bool) "contains a Msg entry (the recv)" true
    (List.exists (fun k -> k = Log.Msg) kinds);
  Alcotest.(check bool) "contains Mem entries" true
    (List.exists (fun k -> k = Log.Mem) kinds)

let test_output_records_outputs () =
  let result, log = record_with (Output_recorder.create ()) in
  Alcotest.(check bool) "logged outputs equal run outputs" true
    (Log.outputs log = result.Interp.outputs);
  Alcotest.(check int) "nothing else logged" 1 (Log.entry_count log)

let test_failure_records_nothing_on_success () =
  let _, log = record_with (Failure_recorder.create ()) in
  Alcotest.(check int) "empty log" 0 (Log.entry_count log)

let test_failure_records_descriptor () =
  let p =
    program ~name:"boom" ~regions:[] ~inputs:[] ~main:"main"
      [ func "main" [] [ fail "kaput" ] ]
  in
  let result, log =
    Recorder.record (Failure_recorder.create ()) p ~spec:Spec.accept_all
      ~world:(World.round_robin ())
  in
  (match Log.recorded_failure log with
  | Some f ->
    Alcotest.(check bool) "descriptor equals run failure" true
      (Some f = result.Interp.failure)
  | None -> Alcotest.fail "missing failure descriptor");
  Alcotest.(check int) "only the descriptor" 1 (Log.entry_count log)

let test_sync_ops () =
  let _, log = record_with (Sync_recorder.create ()) in
  let ops = List.map (fun (_, _, op) -> op) (Log.sync_entries log) in
  let has op = List.exists (fun o -> o = op) ops in
  Alcotest.(check bool) "spawn" true (has Log.Op_spawn);
  Alcotest.(check bool) "lock" true (has (Log.Op_lock "m"));
  Alcotest.(check bool) "unlock" true (has (Log.Op_unlock "m"));
  Alcotest.(check bool) "send" true (has (Log.Op_send "done"));
  Alcotest.(check bool) "recv" true (has (Log.Op_recv "done"))

let test_sync_records_inputs_and_outputs () =
  let _, log = record_with (Sync_recorder.create ()) in
  Alcotest.(check (list value_testable)) "inputs" [ Value.int 1 ]
    (Log.inputs_for log 0);
  Alcotest.(check bool) "outputs" true (Log.outputs log <> [])

(* ------------------------------------------------------------------ *)
(* RCSE recorder *)

let high_in fname =
  Fidelity_level.by_function ~name:"test" (fun f ->
      if String.equal f fname then Fidelity_level.High else Fidelity_level.Low)

let test_rcse_selects_by_function () =
  let result, log = record_with (Rcse_recorder.create (high_in "w")) in
  let cp = Log.cp_sched_points log in
  (* every recorded point belongs to thread 1 (the only "w" thread) *)
  Alcotest.(check bool) "only w's steps recorded" true
    (List.for_all (fun (tid, _) -> tid = 1) cp);
  let w_steps =
    Trace.count
      (fun (e : Event.t) ->
        e.Event.kind = Event.Step && String.equal e.Event.fname "w")
      result.Interp.trace
  in
  Alcotest.(check int) "all of w's steps recorded" w_steps (List.length cp)

let test_rcse_low_records_nothing () =
  let _, log = record_with (Rcse_recorder.create (Fidelity_level.always Fidelity_level.Low)) in
  Alcotest.(check int) "empty" 0 (Log.entry_count log)

let test_rcse_high_equals_full_schedule () =
  let result, log =
    record_with (Rcse_recorder.create (Fidelity_level.always Fidelity_level.High))
  in
  Alcotest.(check (list (pair int int)))
    "always-high records the full schedule"
    (Trace.sched_points result.Interp.trace)
    (Log.cp_sched_points log)

let test_rcse_marks_transitions () =
  let flip = ref false in
  let selector =
    {
      Fidelity_level.name = "flipper";
      level =
        (fun _ ->
          flip := not !flip;
          if !flip then Fidelity_level.High else Fidelity_level.Low);
    }
  in
  let _, log = record_with (Rcse_recorder.create selector) in
  let marks =
    List.filter (function Log.Mark _ -> true | _ -> false) log.Log.entries
  in
  Alcotest.(check bool) "transitions leave marks" true (List.length marks >= 2)

let test_rcse_cp_inputs_have_sites () =
  let _, log = record_with (Rcse_recorder.create (high_in "main")) in
  match Log.cp_inputs_for log 0 with
  | [ (sid, v) ] ->
    Alcotest.(check bool) "site is positive" true (sid > 0);
    Alcotest.check value_testable "input value" (Value.int 1) v
  | _ -> Alcotest.fail "expected exactly one cp input for main"

(* ------------------------------------------------------------------ *)
(* flight recorder *)

(* a selector that dials up when it sees the output event; fresh state per
   call, since selectors are stateful *)
let dial_on_output () =
  let tripped = ref false in
  {
    Fidelity_level.name = "on-output";
    level =
      (fun (e : Event.t) ->
        (match e.kind with Event.Out _ -> tripped := true | _ -> ());
        if !tripped then Fidelity_level.High else Fidelity_level.Low);
  }

let test_flight_flushes_on_dial_up () =
  let _, log = record_with (Rcse_recorder.create ~flight:100 (dial_on_output ())) in
  (* the input consumed long before the dial-up must be in the log *)
  match Log.cp_inputs_for log 0 with
  | [ (_, v) ] -> Alcotest.check value_testable "pre-trigger input flushed" (Value.int 1) v
  | _ -> Alcotest.fail "expected the flushed pre-trigger input"

let test_no_flight_loses_pre_trigger () =
  let _, log = record_with (Rcse_recorder.create (dial_on_output ())) in
  Alcotest.(check (list (pair int value_testable))) "no pre-trigger input" []
    (Log.cp_inputs_for log 0)

let test_flight_ring_bounded () =
  (* capacity 1: only the most recent data event survives *)
  let p =
    program ~name:"many-inputs" ~regions:[]
      ~inputs:[ ("c", [ Value.int 1; Value.int 2 ]) ]
      ~main:"main"
      [
        func "main" []
          [
            input "a" "c"; input "b" "c"; input "d" "c";
            output "out" (v "a");
          ];
      ]
  in
  let recorder = Rcse_recorder.create ~flight:1 (dial_on_output ()) in
  let _, log =
    Recorder.record recorder p ~spec:Spec.accept_all ~world:(World.round_robin ())
  in
  Alcotest.(check int) "only the last pre-trigger input survives" 1
    (List.length (Log.cp_inputs_for log 0))

let test_flight_note_and_tax () =
  let _, log = record_with (Rcse_recorder.create ~flight:100 (dial_on_output ())) in
  let note =
    List.find_opt (function Log.Flight_note _ -> true | _ -> false) log.Log.entries
  in
  (match note with
  | Some (Log.Flight_note { buffered }) ->
    Alcotest.(check bool) "events were buffered" true (buffered > 0)
  | _ -> Alcotest.fail "missing flight note");
  let no_ring_cost =
    Cost_model.recording_cost Cost_model.default
      (Log.make ~recorder:"t"
         ~entries:
           (List.filter
              (function Log.Flight_note _ -> false | _ -> true)
              log.Log.entries)
         ~base_steps:log.Log.base_steps ~failure:None ())
  in
  Alcotest.(check bool) "ring residency is taxed" true
    (Cost_model.recording_cost Cost_model.default log > no_ring_cost)

(* ------------------------------------------------------------------ *)
(* log serialization *)

let test_log_io_roundtrip () =
  let _, log = record_with (Full_recorder.create ()) in
  match Log_io.of_string (Log_io.to_string log) with
  | Ok log' ->
    Alcotest.(check bool) "entries preserved" true (log'.Log.entries = log.Log.entries);
    Alcotest.(check string) "recorder" log.Log.recorder log'.Log.recorder;
    Alcotest.(check int) "base steps" log.Log.base_steps log'.Log.base_steps;
    Alcotest.(check bool) "failure" true (log'.Log.failure = log.Log.failure)
  | Error e -> Alcotest.fail e

let test_log_io_roundtrip_every_recorder () =
  List.iter
    (fun make ->
      let _, log = record_with (make ()) in
      match Log_io.of_string (Log_io.to_string log) with
      | Ok log' ->
        Alcotest.(check bool) "roundtrip" true (log'.Log.entries = log.Log.entries)
      | Error e -> Alcotest.fail e)
    [
      Full_recorder.create; Value_recorder.create; Sync_recorder.create;
      Output_recorder.create; Failure_recorder.create;
      (fun () -> Rcse_recorder.create (Fidelity_level.always Fidelity_level.High));
    ]

let test_log_io_escapes () =
  let tricky = "line\nbreak \"quoted\" and \\backslash" in
  let entries =
    [
      Log.Input { tid = 0; chan = "c"; value = Value.str tricky };
      Log.Mark tricky;
      Log.Failure_desc (Mvm.Failure.Crash { sid = 3; msg = tricky });
    ]
  in
  let log = Log.make ~recorder:"esc" ~entries ~base_steps:1 ~failure:(Some Mvm.Failure.Hang) () in
  match Log_io.of_string (Log_io.to_string log) with
  | Ok log' -> Alcotest.(check bool) "tricky strings survive" true (log'.Log.entries = entries)
  | Error e -> Alcotest.fail e

let test_log_io_rejects_garbage () =
  (match Log_io.of_string "not a log" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted");
  match Log_io.of_string "ddet-log v1\nrecorder \"x\"\nbase-steps 1\nfailure none\nbogus entry" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus entry accepted"

let test_log_io_v2_canonical () =
  (* serialisation is canonical: parse + re-serialise is byte-for-byte *)
  let _, log = record_with (Full_recorder.create ()) in
  let s = Log_io.to_string log in
  match Log_io.of_string s with
  | Ok log' -> Alcotest.(check string) "byte-for-byte" s (Log_io.to_string log')
  | Error e -> Alcotest.fail e

let contains hay needle =
  let n = String.length needle in
  let rec go i =
    i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1))
  in
  go 0

let flip_crc line =
  let b = Bytes.of_string line in
  Bytes.set b 0 (if Bytes.get b 0 = '0' then '1' else '0');
  Bytes.to_string b

(* index (0-based) of some entry line: skip magic + header keywords *)
let an_entry_index lines =
  let is_entry l =
    String.length l > 9 && l.[8] = ' '
    && String.for_all
         (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
         (String.sub l 0 8)
  in
  match List.find_index is_entry lines with
  | Some ix -> ix
  | None -> Alcotest.fail "no entry line found"

let test_log_io_strict_rejects_crc_mismatch () =
  let _, log = record_with (Full_recorder.create ()) in
  let lines = String.split_on_char '\n' (Log_io.to_string log) in
  let ix = an_entry_index lines in
  let damaged =
    String.concat "\n"
      (List.mapi (fun k l -> if k = ix then flip_crc l else l) lines)
  in
  match Log_io.of_string damaged with
  | Error msg ->
    Alcotest.(check bool) "names the 1-based line" true
      (contains msg (Printf.sprintf "line %d:" (ix + 1)));
    Alcotest.(check bool) "quotes the offending text" true
      (contains msg "crc mismatch")
  | Ok _ -> Alcotest.fail "CRC mismatch accepted in strict mode"

let test_log_io_v1_still_loads () =
  let _, log = record_with (Value_recorder.create ()) in
  match Log_io.of_string (Log_io.to_string_v1 log) with
  | Ok log' ->
    Alcotest.(check bool) "v1 entries preserved" true
      (log'.Log.entries = log.Log.entries)
  | Error e -> Alcotest.fail e

let drop_trailer s =
  String.split_on_char '\n' s
  |> List.filter (fun l ->
         String.length l > 0 && not (String.length l > 4 && String.sub l 0 4 = "end "))
  |> String.concat "\n"

let test_log_io_trailer_guards_truncation () =
  let _, log = record_with (Full_recorder.create ()) in
  let headless = drop_trailer (Log_io.to_string log) in
  (match Log_io.of_string headless with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing trailer accepted in strict mode");
  match Log_io.of_string_report ~mode:Log_io.Salvage headless with
  | Ok (log', damage) ->
    Alcotest.(check bool) "salvage flags truncation" true damage.Log_io.truncated;
    Alcotest.(check bool) "entries still recovered" true
      (log'.Log.entries = log.Log.entries)
  | Error e -> Alcotest.fail e

let test_log_io_salvage_keeps_valid_prefix () =
  let _, log = record_with (Full_recorder.create ()) in
  let lines = String.split_on_char '\n' (Log_io.to_string log) in
  let ix = an_entry_index lines in
  let damaged =
    String.concat "\n"
      (List.mapi (fun k l -> if k = ix then "not a log line at all" else l) lines)
  in
  match Log_io.of_string_report ~mode:Log_io.Salvage damaged with
  | Ok (log', damage) ->
    Alcotest.(check int) "one entry lost" (List.length log.Log.entries - 1)
      (List.length log'.Log.entries);
    (match damage.Log_io.corrupt_lines with
    | [ (n, _, text) ] ->
      Alcotest.(check int) "damage names the line" (ix + 1) n;
      Alcotest.(check string) "damage quotes the text" "not a log line at all"
        text
    | _ -> Alcotest.fail "expected exactly one corrupt line");
    (* count mismatch vs the trailer is also reported *)
    Alcotest.(check bool) "count mismatch flagged" true damage.Log_io.truncated
  | Error e -> Alcotest.fail e

(* crash-safety of the on-disk format: whatever byte a crash cuts the
   file at, salvage recovers a valid prefix of the recording — it never
   invents entries and never raises *)
let rec is_prefix a b =
  match (a, b) with
  | [], _ -> true
  | x :: xs, y :: ys -> x = y && is_prefix xs ys
  | _ :: _, [] -> false

let test_log_io_salvage_every_truncation () =
  let _, log = record_with (Full_recorder.create ()) in
  let s = Log_io.to_string log in
  for n = 0 to String.length s do
    let cut = String.sub s 0 n in
    match Log_io.of_string_report ~mode:Log_io.Salvage cut with
    | Ok (log', damage) ->
      Alcotest.(check bool)
        (Printf.sprintf "prefix at byte %d" n)
        true
        (is_prefix log'.Log.entries log.Log.entries);
      (* anything short of a lossless recovery must be flagged; a cut
         that only loses trailing whitespace recovers everything and is
         legitimately clean *)
      if log'.Log.entries <> log.Log.entries then
        Alcotest.(check bool)
          (Printf.sprintf "loss flagged at byte %d" n)
          true
          (Log_io.is_damaged damage)
    | Error _ ->
      (* acceptable only while even the header is incomplete *)
      Alcotest.(check bool)
        (Printf.sprintf "hard error only before entries (byte %d)" n)
        true
        (n < String.length s)
  done

(* v1 has no CRCs and no count trailer: truncation there is undetectable
   by design (§ the hardened-pipeline notes), but salvage must still
   recover cleanly at the edge cases *)
let v1_header = "ddet-log v1\nrecorder \"t\"\nbase-steps 1\nfailure none\n"

let test_log_io_v1_empty_body () =
  let empty = Log.make ~recorder:"t" ~entries:[] ~base_steps:1 ~failure:None () in
  match Log_io.of_string (Log_io.to_string_v1 empty) with
  | Ok log' -> Alcotest.(check int) "no entries" 0 (List.length log'.Log.entries)
  | Error e -> Alcotest.fail e

let test_log_io_v1_header_only () =
  match Log_io.of_string_report ~mode:Log_io.Salvage v1_header with
  | Ok (log', damage) ->
    Alcotest.(check int) "no entries invented" 0 (List.length log'.Log.entries);
    Alcotest.(check bool) "header-only v1 is not damage" false
      (Log_io.is_damaged damage)
  | Error e -> Alcotest.fail e

let test_log_io_v1_trailerless_tail () =
  let _, log = record_with (Value_recorder.create ()) in
  let s = Log_io.to_string_v1 log in
  (* cut the last entry line in half: v1 can spot the malformed line but
     not the loss itself (no trailer), so salvage recovers the prefix
     with a corrupt-line report and no truncation flag *)
  let cut = String.sub s 0 (String.length s - 7) in
  (match Log_io.of_string cut with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "strict mode accepted a torn v1 line");
  match Log_io.of_string_report ~mode:Log_io.Salvage cut with
  | Ok (log', damage) ->
    Alcotest.(check bool) "valid prefix" true
      (is_prefix log'.Log.entries log.Log.entries);
    Alcotest.(check int) "one entry lost"
      (List.length log.Log.entries - 1)
      (List.length log'.Log.entries);
    Alcotest.(check int) "torn line reported" 1
      (List.length damage.Log_io.corrupt_lines);
    Alcotest.(check bool) "v1 cannot flag the truncation itself" false
      damage.Log_io.truncated
  | Error e -> Alcotest.fail e

let test_log_io_file () =
  let _, log = record_with (Value_recorder.create ()) in
  let path = Stdlib.Filename.temp_file "ddet" ".log" in
  Log_io.save path log;
  (match Log_io.load path with
  | Ok log' -> Alcotest.(check bool) "file roundtrip" true (log'.Log.entries = log.Log.entries)
  | Error e -> Alcotest.fail e);
  Stdlib.Sys.remove path

(* ------------------------------------------------------------------ *)
(* Segmented persistence (Log_segments) *)

let seg_base () =
  let base = Stdlib.Filename.temp_file "ddet_seg" "" in
  Stdlib.Sys.remove base;
  base

let seg_cleanup base =
  List.iter
    (fun suffix ->
      let p = base ^ suffix in
      if Stdlib.Sys.file_exists p then Stdlib.Sys.remove p)
    ([ ".header"; ".manifest" ] @ List.init 64 (Printf.sprintf ".%04d.seg"))

let test_segments_roundtrip () =
  let _, log = record_with (Full_recorder.create ()) in
  let base = seg_base () in
  Log_segments.save ~segment_entries:8 base log;
  Alcotest.(check bool) "exists sees the file set" true (Log_segments.exists base);
  (match Log_segments.load base with
  | Ok (log', r) ->
    Alcotest.(check bool) "complete" true r.Log_segments.complete;
    Alcotest.(check bool) "not damaged" false (Log_segments.is_damaged r);
    Alcotest.(check bool) "entries exact" true (log'.Log.entries = log.Log.entries);
    Alcotest.(check string) "recorder" log.Log.recorder log'.Log.recorder;
    Alcotest.(check int) "base steps" log.Log.base_steps log'.Log.base_steps;
    Alcotest.(check bool) "failure" true (log'.Log.failure = log.Log.failure)
  | Error e -> Alcotest.fail e);
  seg_cleanup base

let test_segments_crash_mid_record () =
  (* the writer dies before [close]: no manifest, unsealed tail — every
     entry that was appended (each is flushed) must still be recovered *)
  let _, log = record_with (Full_recorder.create ()) in
  let entries = log.Log.entries in
  let n = List.length entries in
  Alcotest.(check bool) "workload records enough entries" true (n >= 10);
  let base = seg_base () in
  let w = Log_segments.create ~segment_entries:4 ~recorder:log.Log.recorder base in
  let k = n - 2 in
  List.iteri (fun i e -> if i < k then Log_segments.append w e) entries;
  (match Log_segments.load base with
  | Ok (log', r) ->
    Alcotest.(check bool) "damaged" true (Log_segments.is_damaged r);
    Alcotest.(check bool) "incomplete" false r.Log_segments.complete;
    Alcotest.(check int) "every flushed entry recovered" k r.Log_segments.entries;
    Alcotest.(check int) "sealed segments recovered whole" (k / 4)
      r.Log_segments.segments_complete;
    Alcotest.(check bool) "a prefix of the recording" true
      (is_prefix log'.Log.entries entries);
    Alcotest.(check int) "log carries the recovered entries" k
      (List.length log'.Log.entries);
    Alcotest.(check string) "recorder from the header file" log.Log.recorder
      log'.Log.recorder
  | Error e -> Alcotest.fail e);
  seg_cleanup base

let test_segments_missing_manifest () =
  (* crash in the gap between sealing the tail and writing the manifest:
     all segments are sealed, so recovery loses nothing but must still
     report the load as damaged (the header metadata is degraded) *)
  let _, log = record_with (Full_recorder.create ()) in
  let base = seg_base () in
  Log_segments.save ~segment_entries:8 base log;
  Stdlib.Sys.remove (base ^ ".manifest");
  (match Log_segments.load base with
  | Ok (log', r) ->
    Alcotest.(check bool) "damaged without the manifest" true
      (Log_segments.is_damaged r);
    Alcotest.(check int) "no entry lost" (List.length log.Log.entries)
      (List.length log'.Log.entries);
    Alcotest.(check bool) "entries exact" true
      (log'.Log.entries = log.Log.entries)
  | Error e -> Alcotest.fail e);
  seg_cleanup base

let test_segments_corrupt_segment_detected () =
  (* bit rot inside a sealed segment: the manifest's whole-file CRC must
     catch it and recovery must stop at the damaged segment rather than
     trust anything after it *)
  let _, log = record_with (Full_recorder.create ()) in
  let base = seg_base () in
  Log_segments.save ~segment_entries:4 base log;
  let seg0 = base ^ ".0000.seg" in
  let s = In_channel.with_open_bin seg0 In_channel.input_all in
  let b = Bytes.of_string s in
  let flip_at = String.index s '\n' + 1 in
  Bytes.set b flip_at (if Bytes.get b flip_at = 'f' then '0' else 'f');
  Out_channel.with_open_bin seg0 (fun oc -> Out_channel.output_bytes oc b);
  (match Log_segments.load base with
  | Ok (log', r) ->
    Alcotest.(check bool) "damaged" true (Log_segments.is_damaged r);
    Alcotest.(check int) "nothing past the damaged segment is trusted" 0
      r.Log_segments.segments_complete;
    Alcotest.(check bool) "fewer entries than the recording" true
      (List.length log'.Log.entries < List.length log.Log.entries);
    Alcotest.(check bool) "still a valid prefix" true
      (is_prefix log'.Log.entries log.Log.entries)
  | Error e -> Alcotest.fail e);
  seg_cleanup base

let test_segments_nothing_there () =
  let base = seg_base () in
  Alcotest.(check bool) "exists is false" false (Log_segments.exists base);
  match Log_segments.load base with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "load invented a recording from nothing"

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

(* every-byte truncation of the manifest: the [end N] trailer must catch
   any cut, recovery must fall back to the sealed-segment scan and lose
   nothing — but any cut that degrades the manifest must be flagged *)
let test_segments_manifest_every_truncation () =
  let _, log = record_with (Full_recorder.create ()) in
  let base = seg_base () in
  Log_segments.save ~segment_entries:4 base log;
  let manifest = read_file (base ^ ".manifest") in
  for n = 0 to String.length manifest do
    write_file (base ^ ".manifest") (String.sub manifest 0 n);
    match Log_segments.load base with
    | Ok (log', r) ->
      Alcotest.(check bool)
        (Printf.sprintf "all sealed entries recovered at byte %d" n)
        true
        (log'.Log.entries = log.Log.entries);
      if not r.Log_segments.complete then
        Alcotest.(check bool)
          (Printf.sprintf "degraded manifest flagged at byte %d" n)
          true
          (Log_segments.is_damaged r)
    | Error e -> Alcotest.fail (Printf.sprintf "byte %d: %s" n e)
  done;
  seg_cleanup base

(* every-byte truncation of the header with no manifest (the worst crash
   window): the sealed segments alone must still yield every entry, with
   the load flagged as damaged; a torn header degrades metadata only *)
let test_segments_header_every_truncation () =
  let _, log = record_with (Full_recorder.create ()) in
  let base = seg_base () in
  Log_segments.save ~segment_entries:4 base log;
  Stdlib.Sys.remove (base ^ ".manifest");
  let header = read_file (base ^ ".header") in
  for n = 0 to String.length header do
    write_file (base ^ ".header") (String.sub header 0 n);
    match Log_segments.load base with
    | Ok (log', r) ->
      Alcotest.(check bool)
        (Printf.sprintf "all sealed entries recovered at byte %d" n)
        true
        (log'.Log.entries = log.Log.entries);
      Alcotest.(check bool)
        (Printf.sprintf "manifest-less load flagged at byte %d" n)
        true
        (Log_segments.is_damaged r)
    | Error e -> Alcotest.fail (Printf.sprintf "byte %d: %s" n e)
  done;
  seg_cleanup base

(* every-byte truncation of a MIDDLE segment with no manifest: the torn
   segment is unsealed, so recovery must stop there — its valid entry
   prefix at most, and never an entry from the sealed segments after it
   (the writer is sequential; nothing past a tear can be trusted) *)
let test_segments_unsealed_every_truncation () =
  let _, log = record_with (Full_recorder.create ()) in
  let base = seg_base () in
  Log_segments.save ~segment_entries:4 base log;
  Stdlib.Sys.remove (base ^ ".manifest");
  let torn = base ^ ".0001.seg" in
  Alcotest.(check bool) "workload spans several segments" true
    (Stdlib.Sys.file_exists (base ^ ".0002.seg"));
  let seg = read_file torn in
  for n = 0 to String.length seg - 1 do
    write_file torn (String.sub seg 0 n);
    match Log_segments.load base with
    | Ok (log', r) ->
      let got = List.length log'.Log.entries in
      Alcotest.(check bool)
        (Printf.sprintf "a prefix of the recording at byte %d" n)
        true
        (is_prefix log'.Log.entries log.Log.entries);
      (* a cut that only sheds trailing whitespace leaves the segment
         sealed and recovery lossless; any cut that actually tears it
         must stop the walk there — sealed segments after the tear are
         not this recording's suffix any more *)
      Alcotest.(check bool)
        (Printf.sprintf "nothing recovered past the tear at byte %d" n)
        true
        (got <= 4 + 4 || log'.Log.entries = log.Log.entries);
      Alcotest.(check bool)
        (Printf.sprintf "tear flagged at byte %d" n)
        true
        (Log_segments.is_damaged r)
    | Error e -> Alcotest.fail (Printf.sprintf "byte %d: %s" n e)
  done;
  seg_cleanup base

(* ------------------------------------------------------------------ *)
(* Fidelity_level combinators *)

let ev fname =
  { Event.step = 0; tid = 0; sid = 1; fname; kind = Event.Step }

let test_any_combinator () =
  let s =
    Fidelity_level.any [ high_in "a"; high_in "b" ]
  in
  Alcotest.(check bool) "a is high" true
    (Fidelity_level.equal (s.Fidelity_level.level (ev "a")) Fidelity_level.High);
  Alcotest.(check bool) "b is high" true
    (Fidelity_level.equal (s.Fidelity_level.level (ev "b")) Fidelity_level.High);
  Alcotest.(check bool) "c is low" true
    (Fidelity_level.equal (s.Fidelity_level.level (ev "c")) Fidelity_level.Low)

let test_any_evaluates_all () =
  (* stateful constituents must see every event even when another
     constituent already answered High *)
  let calls = ref 0 in
  let counting =
    {
      Fidelity_level.name = "counting";
      level = (fun _ -> incr calls; Fidelity_level.Low);
    }
  in
  let s = Fidelity_level.any [ Fidelity_level.always Fidelity_level.High; counting ] in
  ignore (s.Fidelity_level.level (ev "x"));
  ignore (s.Fidelity_level.level (ev "y"));
  Alcotest.(check int) "both events seen" 2 !calls

(* ------------------------------------------------------------------ *)
(* Cost model *)

let cm = Cost_model.default

let test_cost_sched_expensive () =
  Alcotest.(check bool) "sched > sync" true
    (Cost_model.entry_cost cm (Log.Sched { tid = 0; sid = 1 })
    > Cost_model.entry_cost cm (Log.Sync { tid = 0; sid = 1; op = Log.Op_spawn }))

let test_cost_scales_with_bytes () =
  let entry s = Log.Read_val { tid = 0; sid = 1; kind = Log.Mem; value = Value.str s } in
  Alcotest.(check bool) "long string costs more" true
    (Cost_model.entry_cost cm (entry (String.make 100 'x'))
    > Cost_model.entry_cost cm (entry "x"))

let test_cost_failure_free () =
  Alcotest.(check (float 1e-9)) "failure descriptor is free" 0.0
    (Cost_model.entry_cost cm (Log.Failure_desc Mvm.Failure.Hang))

let test_cost_mark_free () =
  Alcotest.(check (float 1e-9)) "marks are free" 0.0
    (Cost_model.entry_cost cm (Log.Mark "x"))

let test_overhead_at_least_one () =
  let log = Log.make ~recorder:"t" ~entries:[] ~base_steps:100 ~failure:None () in
  Alcotest.(check (float 1e-9)) "empty log overhead 1.0" 1.0
    (Cost_model.overhead cm log)

let test_overhead_monotone_in_entries () =
  let mk entries = Log.make ~recorder:"t" ~entries ~base_steps:100 ~failure:None () in
  let e = Log.Sched { tid = 0; sid = 1 } in
  Alcotest.(check bool) "more entries, more overhead" true
    (Cost_model.overhead cm (mk [ e; e ]) > Cost_model.overhead cm (mk [ e ]))

let test_recording_cost_additive () =
  let e1 = Log.Sched { tid = 0; sid = 1 } in
  let e2 = Log.Input { tid = 0; chan = "c"; value = Value.int 1 } in
  let mk entries = Log.make ~recorder:"t" ~entries ~base_steps:1 ~failure:None () in
  Alcotest.(check (float 1e-9)) "cost adds up"
    (Cost_model.recording_cost cm (mk [ e1 ]) +. Cost_model.recording_cost cm (mk [ e2 ]))
    (Cost_model.recording_cost cm (mk [ e1; e2 ]))

(* ------------------------------------------------------------------ *)
(* Log accessors *)

let test_payload_bytes () =
  let entries =
    [
      Log.Input { tid = 0; chan = "c"; value = Value.str "abcd" };
      Log.Read_val { tid = 0; sid = 1; kind = Log.Mem; value = Value.int 5 };
      Log.Sched { tid = 0; sid = 1 };
    ]
  in
  let log = Log.make ~recorder:"t" ~entries ~base_steps:1 ~failure:None () in
  Alcotest.(check int) "4 string bytes + 8 int bytes" 12 (Log.payload_bytes log)

let test_entry_count_skips_marks () =
  let entries = [ Log.Mark "a"; Log.Sched { tid = 0; sid = 1 }; Log.Mark "b" ] in
  let log = Log.make ~recorder:"t" ~entries ~base_steps:1 ~failure:None () in
  Alcotest.(check int) "marks not counted" 1 (Log.entry_count log)

let test_inputs_per_thread_separated () =
  let entries =
    [
      Log.Input { tid = 0; chan = "c"; value = Value.int 1 };
      Log.Input { tid = 1; chan = "c"; value = Value.int 2 };
      Log.Input { tid = 0; chan = "c"; value = Value.int 3 };
    ]
  in
  let log = Log.make ~recorder:"t" ~entries ~base_steps:1 ~failure:None () in
  Alcotest.(check (list value_testable)) "tid 0" [ Value.int 1; Value.int 3 ]
    (Log.inputs_for log 0);
  Alcotest.(check (list value_testable)) "tid 1" [ Value.int 2 ]
    (Log.inputs_for log 1)

let () =
  Alcotest.run "record"
    [
      ( "recorders",
        [
          Alcotest.test_case "full: schedule" `Quick test_full_records_schedule;
          Alcotest.test_case "full: inputs" `Quick test_full_records_inputs;
          Alcotest.test_case "value: reads+recvs" `Quick test_value_records_reads_and_recvs;
          Alcotest.test_case "value: kinds" `Quick test_value_read_kinds;
          Alcotest.test_case "output: outputs only" `Quick test_output_records_outputs;
          Alcotest.test_case "failure: empty on success" `Quick test_failure_records_nothing_on_success;
          Alcotest.test_case "failure: descriptor" `Quick test_failure_records_descriptor;
          Alcotest.test_case "sync: op coverage" `Quick test_sync_ops;
          Alcotest.test_case "sync: inputs/outputs" `Quick test_sync_records_inputs_and_outputs;
        ] );
      ( "rcse",
        [
          Alcotest.test_case "selects by function" `Quick test_rcse_selects_by_function;
          Alcotest.test_case "low records nothing" `Quick test_rcse_low_records_nothing;
          Alcotest.test_case "high equals full" `Quick test_rcse_high_equals_full_schedule;
          Alcotest.test_case "marks transitions" `Quick test_rcse_marks_transitions;
          Alcotest.test_case "cp inputs carry sites" `Quick test_rcse_cp_inputs_have_sites;
        ] );
      ( "flight",
        [
          Alcotest.test_case "flush on dial-up" `Quick test_flight_flushes_on_dial_up;
          Alcotest.test_case "no ring loses history" `Quick test_no_flight_loses_pre_trigger;
          Alcotest.test_case "ring bounded" `Quick test_flight_ring_bounded;
          Alcotest.test_case "note and tax" `Quick test_flight_note_and_tax;
        ] );
      ( "log-io",
        [
          Alcotest.test_case "roundtrip" `Quick test_log_io_roundtrip;
          Alcotest.test_case "every recorder" `Quick test_log_io_roundtrip_every_recorder;
          Alcotest.test_case "escapes" `Quick test_log_io_escapes;
          Alcotest.test_case "rejects garbage" `Quick test_log_io_rejects_garbage;
          Alcotest.test_case "v2 canonical" `Quick test_log_io_v2_canonical;
          Alcotest.test_case "strict rejects crc mismatch" `Quick
            test_log_io_strict_rejects_crc_mismatch;
          Alcotest.test_case "v1 still loads" `Quick test_log_io_v1_still_loads;
          Alcotest.test_case "trailer guards truncation" `Quick
            test_log_io_trailer_guards_truncation;
          Alcotest.test_case "salvage keeps valid prefix" `Quick
            test_log_io_salvage_keeps_valid_prefix;
          Alcotest.test_case "salvage at every truncation point" `Quick
            test_log_io_salvage_every_truncation;
          Alcotest.test_case "v1 empty body" `Quick test_log_io_v1_empty_body;
          Alcotest.test_case "v1 header only" `Quick test_log_io_v1_header_only;
          Alcotest.test_case "v1 trailer-less tail" `Quick
            test_log_io_v1_trailerless_tail;
          Alcotest.test_case "file save/load" `Quick test_log_io_file;
        ] );
      ( "segments",
        [
          Alcotest.test_case "roundtrip" `Quick test_segments_roundtrip;
          Alcotest.test_case "crash mid-record" `Quick
            test_segments_crash_mid_record;
          Alcotest.test_case "missing manifest" `Quick
            test_segments_missing_manifest;
          Alcotest.test_case "corrupt segment detected" `Quick
            test_segments_corrupt_segment_detected;
          Alcotest.test_case "nothing there" `Quick test_segments_nothing_there;
          Alcotest.test_case "manifest survives every truncation" `Quick
            test_segments_manifest_every_truncation;
          Alcotest.test_case "header survives every truncation" `Quick
            test_segments_header_every_truncation;
          Alcotest.test_case "unsealed segment never leaks entries" `Quick
            test_segments_unsealed_every_truncation;
        ] );
      ( "fidelity-level",
        [
          Alcotest.test_case "any combinator" `Quick test_any_combinator;
          Alcotest.test_case "any evaluates all" `Quick test_any_evaluates_all;
        ] );
      ( "cost-model",
        [
          Alcotest.test_case "sched expensive" `Quick test_cost_sched_expensive;
          Alcotest.test_case "byte scaling" `Quick test_cost_scales_with_bytes;
          Alcotest.test_case "failure free" `Quick test_cost_failure_free;
          Alcotest.test_case "mark free" `Quick test_cost_mark_free;
          Alcotest.test_case "overhead >= 1" `Quick test_overhead_at_least_one;
          Alcotest.test_case "overhead monotone" `Quick test_overhead_monotone_in_entries;
          Alcotest.test_case "cost additive" `Quick test_recording_cost_additive;
        ] );
      ( "log",
        [
          Alcotest.test_case "payload bytes" `Quick test_payload_bytes;
          Alcotest.test_case "marks uncounted" `Quick test_entry_count_skips_marks;
          Alcotest.test_case "per-thread inputs" `Quick test_inputs_per_thread_separated;
        ] );
    ]
