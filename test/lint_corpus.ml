(* Lint gate over every shipped program: the five workload apps, the
   quickstart example, and a slice of the proggen corpus. Errors fail the
   build; warnings are reported but tolerated (proggen legitimately emits
   try_recv polls on channels nothing sends). *)

open Mvm
open Ddet_static

let quickstart =
  (* the README's lost-update counter, kept lintable like the apps *)
  Dsl.(
    program ~name:"quickstart-counter"
      ~regions:[ scalar "counter" (Value.int 0) ]
      ~inputs:[] ~main:"main"
      [
        func "main" []
          [
            spawn "worker" []; spawn "worker" [];
            recv "a" "done"; recv "b" "done";
            output "result" (g "counter");
          ];
        func "worker" []
          [
            assign "t" (g "counter");
            store_g "counter" (v "t" +: i 1);
            send "done" (i 1);
          ];
      ])

let corpus () =
  List.map
    (fun (a : Ddet_apps.App.t) -> (a.name, a.labeled))
    Ddet_apps.
      [ Adder.app (); Bufover.app (); Msg_server.app (); Miniht.app ();
        Cloudstore.app () ]
  @ [ ("quickstart-counter", quickstart) ]
  @ List.init 20 (fun seed ->
        ( Printf.sprintf "proggen-%d" seed,
          Proggen.generate Proggen.default (Prng.create seed) ))

let () =
  let failed = ref 0 and warned = ref 0 in
  List.iter
    (fun (name, labeled) ->
      let findings = Lint.run labeled in
      let errors = Lint.errors findings in
      List.iter
        (fun f ->
          Printf.printf "%s: %s\n" name (Fmt.str "%a" Lint.pp_finding f))
        findings;
      warned := !warned + (List.length findings - List.length errors);
      if errors <> [] then incr failed)
    (corpus ());
  Printf.printf "lint-corpus: %d programs, %d with errors, %d warnings\n"
    (List.length (corpus ())) !failed !warned;
  if !failed > 0 then exit 1
