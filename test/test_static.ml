(* The static analysis suite: call-graph/thread-reachability, lockset race
   candidates, static plane classification, the linter, and the RCSE /
   search wiring derived from them — including the qcheck soundness law
   (static candidates cover every dynamic happens-before race) and a
   precision measurement on the proggen corpus. *)

open Mvm
open Ddet_static
module P = Ddet_analysis.Plane

let apps () =
  Ddet_apps.
    [ Adder.app (); Bufover.app (); Msg_server.app (); Miniht.app ();
      Cloudstore.app () ]

(* ------------------------------------------------------------------ *)
(* fixtures *)

(* the quickstart lost-update counter: one entry spawned twice *)
let racy =
  Dsl.(
    program ~name:"racy" ~regions:[ scalar "c" (Value.int 0) ] ~inputs:[]
      ~main:"main"
      [
        func "main" []
          [
            spawn "w" []; spawn "w" []; recv "d1" "done"; recv "d2" "done";
            output "total" (g "c");
          ];
        func "w" []
          [
            assign "t" (g "c"); store_g "c" (v "t" +: i 1); send "done" (i 1);
          ];
      ])

(* same shape with every access under one lock: no race candidates.
   (Main's read must be locked too — the lockset analysis cannot see
   that the two [recv]s order it after the workers.) *)
let locked =
  Dsl.(
    program ~name:"locked" ~regions:[ scalar "c" (Value.int 0) ] ~inputs:[]
      ~main:"main"
      [
        func "main" []
          [
            spawn "w" []; spawn "w" []; recv "d1" "done"; recv "d2" "done";
            lock "m"; assign "r" (g "c"); unlock "m"; output "total" (v "r");
          ];
        func "w" []
          [
            lock "m"; assign "t" (g "c"); store_g "c" (v "t" +: i 1);
            unlock "m"; send "done" (i 1);
          ];
      ])

(* main touches the region before and after its spawns: only the
   post-spawn write can race *)
let prologue_prog =
  Dsl.(
    program ~name:"prologue" ~regions:[ scalar "c" (Value.int 0) ] ~inputs:[]
      ~main:"main"
      [
        func "main" []
          [
            store_g "c" (i 1);
            spawn "w" [];
            store_g "c" (i 2);
            recv "d" "done";
          ];
        func "w" [] [ store_g "c" (i 3); send "done" (i 1) ];
      ])

let candidates_of labeled =
  Lockset.candidates (Lockset.analyze (Callgraph.build labeled))

(* ------------------------------------------------------------------ *)
(* callgraph *)

let test_entries () =
  let g = Callgraph.build racy in
  let find e =
    List.find (fun (x : Callgraph.entry) -> x.entry = e) (Callgraph.entries g)
  in
  Alcotest.(check bool) "main single" true ((find "main").mult = Callgraph.Single);
  Alcotest.(check bool) "w many (spawned twice)" true
    ((find "w").mult = Callgraph.Many);
  let gp = Callgraph.build prologue_prog in
  let find e =
    List.find (fun (x : Callgraph.entry) -> x.entry = e) (Callgraph.entries gp)
  in
  Alcotest.(check bool) "w single (one spawn in main)" true
    ((find "w").mult = Callgraph.Single)

let test_prologue () =
  let g = Callgraph.build prologue_prog in
  let pre_spawn_write =
    (* the first statement of main is the pre-spawn store *)
    List.find
      (fun (a : Callgraph.access) -> a.fname = "main" && a.write)
      (List.sort
         (fun (a : Callgraph.access) b -> compare a.sid b.sid)
         (Callgraph.accesses g))
  in
  Alcotest.(check bool) "pre-spawn write is prologue" true
    (Callgraph.in_prologue g pre_spawn_write.sid);
  let cands = candidates_of prologue_prog in
  Alcotest.(check bool) "post-spawn writes race" true (cands <> []);
  Alcotest.(check bool) "prologue site in no candidate" true
    (List.for_all
       (fun (c : Lockset.candidate) ->
         c.a.Callgraph.sid <> pre_spawn_write.sid
         && c.b.Callgraph.sid <> pre_spawn_write.sid)
       cands)

(* ------------------------------------------------------------------ *)
(* lockset race candidates *)

let test_racy_counter () =
  let cands = candidates_of racy in
  Alcotest.(check bool) "has candidates" true (cands <> []);
  (* the store races with itself across the two instances of w *)
  Alcotest.(check bool) "self-race on the unlocked store" true
    (List.exists
       (fun (c : Lockset.candidate) ->
         c.a.Callgraph.sid = c.b.Callgraph.sid && c.a.Callgraph.write)
       cands)

let test_locked_counter () =
  Alcotest.(check int) "lock kills all candidates" 0
    (List.length (candidates_of locked))

let test_app_candidates () =
  let by_name n = List.find (fun a -> a.Ddet_apps.App.name = n) (apps ()) in
  let mini = candidates_of (by_name "miniht").Ddet_apps.App.labeled in
  Alcotest.(check bool) "miniht: the paper's migration race (owner_0)" true
    (List.exists
       (fun (c : Lockset.candidate) ->
         c.region = "owner_0"
         && c.a.Callgraph.fname = "master"
         && c.b.Callgraph.fname = "route")
       mini);
  let cloud = candidates_of (by_name "cloudstore").Ddet_apps.App.labeled in
  Alcotest.(check int) "cloudstore: single-owner regions, no candidates" 0
    (List.length cloud);
  let msg = candidates_of (by_name "msg_server").Ddet_apps.App.labeled in
  Alcotest.(check bool) "msg_server: producer/producer cursor race" true
    (List.exists
       (fun (c : Lockset.candidate) ->
         c.region = "cursor"
         && c.a.Callgraph.fname = "producer0"
         && c.b.Callgraph.fname = "producer1")
       msg)

(* ------------------------------------------------------------------ *)
(* index compatibility: Const_idx i pairs only with Const_idx i; Var_idx
   pairs with everything, including itself across thread instances *)

let two_writers idx0 idx1 =
  Dsl.(
    program ~name:"indexed"
      ~regions:[ array "arr" 4 (Value.int 0) ]
      ~inputs:[] ~main:"main"
      [
        func "main" [] [ spawn "w0" []; spawn "w1" [] ];
        func "w0" [] [ assign "k" (i 1); store "arr" idx0 (i 1) ];
        func "w1" [] [ assign "k" (i 2); store "arr" idx1 (i 2) ];
      ])

let test_index_compat () =
  let n a b = List.length (candidates_of (two_writers a b)) in
  Alcotest.(check int) "distinct constant indices never pair" 0
    (n Dsl.(i 0) Dsl.(i 1));
  Alcotest.(check bool) "equal constant indices pair" true
    (n Dsl.(i 2) Dsl.(i 2) > 0);
  Alcotest.(check bool) "variable index pairs with a constant" true
    (n Dsl.(v "k") Dsl.(i 3) > 0);
  Alcotest.(check bool) "variable index pairs with a variable" true
    (n Dsl.(v "k") Dsl.(v "k") > 0);
  (* a twice-spawned writer with a variable index races with itself *)
  let self =
    Dsl.(
      program ~name:"self"
        ~regions:[ array "arr" 4 (Value.int 0) ]
        ~inputs:[] ~main:"main"
        [
          func "main" [] [ spawn "w" []; spawn "w" [] ];
          func "w" [] [ assign "k" (i 1); store "arr" (v "k") (i 1) ];
        ])
  in
  Alcotest.(check bool) "variable-indexed store self-races" true
    (List.exists
       (fun (c : Lockset.candidate) -> c.a.Callgraph.sid = c.b.Callgraph.sid)
       (candidates_of self))

let prop_index_compat =
  QCheck2.Test.make
    ~name:"no candidate ever pairs two distinct constant indices" ~count:60
    ~print:(fun p -> Printf.sprintf "program seed %d" p)
    QCheck2.Gen.(int_range 1 10_000)
    (fun pseed ->
      let labeled = Proggen.generate Proggen.default (Prng.create pseed) in
      List.for_all
        (fun (c : Lockset.candidate) ->
          match (c.a.Callgraph.index, c.b.Callgraph.index) with
          | Callgraph.Const_idx x, Callgraph.Const_idx y -> x = y
          | _ -> true)
        (candidates_of labeled))

(* ------------------------------------------------------------------ *)
(* node-aware MHP *)

let fifo_prog =
  Dsl.(
    program ~name:"fifo" ~regions:[ scalar "c" (Value.int 0) ] ~inputs:[]
      ~main:"main"
      [
        func "main" [] [ spawn "w" []; store_g "c" (i 1); send "go" (i 1) ];
        func "w" [] [ recv "z" "go"; store_g "c" (i 2) ];
      ])

let fifo_map =
  Node.make ~nodes:[ "n0"; "n1" ] ~assign:[ ("main", "n0"); ("w", "n1") ]

let test_mhp_fifo_orders () =
  let graph = Callgraph.build fifo_prog in
  Alcotest.(check bool) "plain lockset pairs the stores" true
    (Lockset.candidates (Lockset.analyze graph) <> []);
  let mhp = Mhp.analyze ~map:fifo_map graph in
  Alcotest.(check bool) "unique-message channel found" true
    (Mhp.fifos mhp <> []);
  Alcotest.(check int) "send->recv ordering kills the candidate" 0
    (List.length (Lockset.candidates (Lockset.analyze ~mhp graph)))

let test_mhp_loop_defeats_order () =
  (* the send re-executes in a loop: the one-message argument is gone,
     so nothing may be ordered and the candidate must survive *)
  let prog =
    Dsl.(
      program ~name:"fifo-loop" ~regions:[ scalar "c" (Value.int 0) ]
        ~inputs:[] ~main:"main"
        [
          func "main" []
            [
              spawn "w" []; store_g "c" (i 1);
              while_ (g "c" <: i 2) [ send "go" (i 1) ];
            ];
          func "w" [] [ recv "z" "go"; store_g "c" (i 2) ];
        ])
  in
  let graph = Callgraph.build prog in
  let mhp = Mhp.analyze ~map:fifo_map graph in
  Alcotest.(check bool) "no fifo claimed" true (Mhp.fifos mhp = []);
  Alcotest.(check int) "refined = plain"
    (List.length (Lockset.candidates (Lockset.analyze graph)))
    (List.length (Lockset.candidates (Lockset.analyze ~mhp graph)))

let test_mhp_try_recv_defeats_order () =
  (* a competing try_recv can steal the one message, so the blocking
     recv's ordering cannot be trusted *)
  let prog =
    Dsl.(
      program ~name:"fifo-steal" ~regions:[ scalar "c" (Value.int 0) ]
        ~inputs:[] ~main:"main"
        [
          func "main" [] [ spawn "w" []; store_g "c" (i 1); send "go" (i 1) ];
          func "w" []
            [ try_recv "ok" "z" "go"; recv "z" "go"; store_g "c" (i 2) ];
        ])
  in
  let mhp = Mhp.analyze ~map:fifo_map (Callgraph.build prog) in
  Alcotest.(check bool) "no fifo claimed" true (Mhp.fifos mhp = [])

let test_mhp_subset_law_unit () =
  let graph = Callgraph.build fifo_prog in
  let mhp = Mhp.analyze ~map:fifo_map graph in
  let accs = Callgraph.accesses graph in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if Mhp.concurrent mhp a b then
            Alcotest.(check bool) "mhp-concurrent implies cg-concurrent" true
              (Callgraph.concurrent graph a b))
        accs)
    accs

(* ------------------------------------------------------------------ *)
(* communication lint *)

let comm_rules ~map labeled =
  List.map
    (fun (f : Lint.finding) -> (f.Lint.severity, f.Lint.rule))
    (Commlint.run ~map labeled)

let test_comm_deadlock () =
  (* three single-threaded nodes in a static wait cycle: nobody has sent
     anything when everybody blocks *)
  let labeled =
    Dsl.(
      program ~name:"cycle" ~regions:[] ~inputs:[] ~main:"main"
        [
          func "main" []
            [ spawn "left" []; spawn "right" []; recv "x" "done0" ];
          func "left" []
            [ recv "p" "ping"; send "pong" (i 1); send "done0" (i 1) ];
          func "right" [] [ recv "q" "pong"; send "ping" (i 1) ];
        ])
  in
  let map =
    Node.make
      ~nodes:[ "a"; "b"; "c" ]
      ~assign:[ ("main", "a"); ("left", "b"); ("right", "c") ]
  in
  let fs = Commlint.run ~map labeled in
  Alcotest.(check bool) "deadlock found" true (Commlint.has_deadlock fs);
  Alcotest.(check int) "all three nodes reported" 3
    (List.length
       (List.filter (fun (f : Lint.finding) -> f.Lint.rule = "comm-deadlock") fs));
  Alcotest.(check bool) "reported as errors" true
    (List.for_all
       (fun (f : Lint.finding) -> f.Lint.severity = Lint.Error)
       (List.filter (fun (f : Lint.finding) -> f.Lint.rule = "comm-deadlock") fs))

let test_comm_rpc_clean () =
  (* send-then-wait request/response: the client produced its request
     before blocking, so no wait cycle exists *)
  let labeled =
    Dsl.(
      program ~name:"rpc" ~regions:[] ~inputs:[] ~main:"main"
        [
          func "main" [] [ spawn "srv" []; send "req" (i 1); recv "x" "resp" ];
          func "srv" [] [ recv "y" "req"; send "resp" (v "y") ];
        ])
  in
  let map =
    Node.make ~nodes:[ "a"; "b" ] ~assign:[ ("main", "a"); ("srv", "b") ]
  in
  Alcotest.(check int) "no findings" 0 (List.length (comm_rules ~map labeled))

let test_comm_orphan_send () =
  let labeled =
    Dsl.(
      program ~name:"orphan" ~regions:[] ~inputs:[] ~main:"main"
        [ func "main" [] [ send "nowhere" (i 1) ] ])
  in
  let map = Node.make ~nodes:[ "a" ] ~assign:[ ("main", "a") ] in
  Alcotest.(check bool) "orphan send is a warning" true
    (List.mem (Lint.Warning, "comm-orphan-send") (comm_rules ~map labeled))

let test_comm_unreachable_sender () =
  (* the thread waits for a message only its own later statement could
     send — statically wedged even on one node *)
  let labeled =
    Dsl.(
      program ~name:"self-wait" ~regions:[] ~inputs:[] ~main:"main"
        [ func "main" [] [ recv "x" "ch"; send "ch" (i 1) ] ])
  in
  let map = Node.make ~nodes:[ "a" ] ~assign:[ ("main", "a") ] in
  Alcotest.(check bool) "unreachable sender is an error" true
    (List.mem (Lint.Error, "comm-unreachable-sender") (comm_rules ~map labeled))

let test_comm_apps_clean () =
  List.iter
    (fun (a : Ddet_apps.App.t) ->
      match a.Ddet_apps.App.nodes with
      | None -> ()
      | Some map ->
        Alcotest.(check (list string))
          (a.name ^ " comm-lints clean")
          []
          (List.map
             (fun (f : Lint.finding) -> Fmt.str "%a" Lint.pp_finding f)
             (Commlint.run ~map a.labeled)))
    (apps ())

(* ------------------------------------------------------------------ *)
(* static plane classification *)

let test_plane_ground_truth () =
  List.iter
    (fun (a : Ddet_apps.App.t) ->
      let map = Splane.classify a.labeled.Label.prog in
      List.iter
        (fun (f : Ast.func) ->
          let truth =
            if a.control_plane = [] || List.mem f.fname a.control_plane then
              P.Control
            else P.Data
          in
          Alcotest.(check string)
            (Printf.sprintf "%s/%s" a.name f.fname)
            (P.to_string truth)
            (P.to_string (P.plane_of map f.fname)))
        a.labeled.Label.prog.Ast.funcs)
    (apps ())

let test_plane_tie_break () =
  let prog_with len =
    Dsl.(
      program ~name:"tie"
        ~regions:[ scalar "s" (Value.str "") ]
        ~inputs:[ ("in", [ Value.str (String.make len 'x') ]) ]
        ~main:"main"
        [ func "main" [] [ input "x" "in"; store_g "s" (v "x") ] ])
  in
  let at len =
    P.plane_of (Splane.classify (prog_with len).Label.prog) "main"
  in
  (* weight == threshold ties toward Control, matching Plane.classify's
     strict comparison; one byte more flips to Data *)
  Alcotest.(check string) "at threshold: control" "control"
    (P.to_string (at Splane.default_threshold));
  Alcotest.(check string) "above threshold: data" "data"
    (P.to_string (at (Splane.default_threshold + 1)))

(* ------------------------------------------------------------------ *)
(* linter *)

let lint_rules labeled =
  List.map (fun (f : Lint.finding) -> (f.severity, f.rule)) (Lint.run labeled)

let test_lint_rules () =
  let expect_error prog rule =
    Alcotest.(check bool)
      (rule ^ " fires as error")
      true
      (List.mem (Lint.Error, rule) (lint_rules prog))
  in
  let mk body =
    Dsl.(
      program ~name:"bad"
        ~regions:[ scalar "c" (Value.int 0); array "a" 4 (Value.int 0) ]
        ~inputs:[] ~main:"main"
        [ func "main" [] body; func "aux" [ "p" ] [ send "ch" (v "p") ] ])
  in
  expect_error (mk Dsl.[ lock "m"; lock "m"; unlock "m"; unlock "m" ]) "double-lock";
  expect_error (mk Dsl.[ unlock "m" ]) "unlock-not-held";
  expect_error (mk Dsl.[ lock "m" ]) "lock-imbalance";
  expect_error
    (mk Dsl.[ lock "m"; return (i 0); unlock "m" ])
    "lock-imbalance";
  expect_error
    (mk Dsl.[ while_ (g "c" <: i 3) [ lock "m" ] ])
    "loop-locks";
  expect_error (mk Dsl.[ atomic [ recv "x" "ch" ] ]) "atomic-blocking";
  expect_error (mk Dsl.[ atomic [ lock "m" ]; lock "m"; unlock "m" ]) "atomic-blocking";
  expect_error (mk Dsl.[ atomic [ call "aux" [ i 1 ] ] ]) "atomic-blocking";
  expect_error (mk Dsl.[ store "a" (i 9) (i 1) ]) "index-range";
  expect_error (mk Dsl.[ store "a" (i (-1)) (i 1) ]) "index-range";
  expect_error (mk Dsl.[ recv "x" "silent" ]) "recv-never-sent";
  expect_error (mk Dsl.[ call "aux" [] ]) "arity";
  (* warnings *)
  let warns prog rule = List.mem (Lint.Warning, rule) (lint_rules prog) in
  Alcotest.(check bool) "unreachable is a warning" true
    (warns (mk Dsl.[ return (i 0); store_g "c" (i 1) ]) "unreachable");
  Alcotest.(check bool) "try_recv never-sent is a warning" true
    (warns (mk Dsl.[ try_recv "ok" "x" "silent" ]) "recv-never-sent");
  Alcotest.(check bool) "branch lockset disagreement is a warning" true
    (warns
       (mk
          Dsl.
            [
              if_ (g "c" =: i 0) [ lock "m" ] [];
              if_ (g "c" =: i 0) [ unlock "m" ] [];
            ])
       "branch-locks")

let test_lint_corpus_clean () =
  List.iter
    (fun (a : Ddet_apps.App.t) ->
      Alcotest.(check (list string))
        (a.name ^ " lints clean")
        []
        (List.map (fun (f : Lint.finding) -> Fmt.str "%a" Lint.pp_finding f)
           (Lint.run a.labeled)))
    (apps ())

(* ------------------------------------------------------------------ *)
(* RCSE wiring: trigger, selectors, prioritized worlds *)

let test_trigger_of_sites () =
  let t = Ddet_analysis.Trigger.of_sites [ 7 ] in
  let ev kind sid =
    { Event.step = 0; tid = 1; sid; fname = "f"; kind }
  in
  let acc =
    { Event.region = "r"; index = None; value = Value.untainted (Value.int 1) }
  in
  Alcotest.(check bool) "fires on suspect write" true
    (t.Ddet_analysis.Trigger.fired (ev (Event.Write acc) 7));
  Alcotest.(check bool) "fires on suspect read" true
    (t.Ddet_analysis.Trigger.fired (ev (Event.Read acc) 7));
  Alcotest.(check bool) "ignores other sites" false
    (t.Ddet_analysis.Trigger.fired (ev (Event.Write acc) 8));
  Alcotest.(check bool) "ignores non-access events" false
    (t.Ddet_analysis.Trigger.fired (ev Event.Step 7))

let test_by_site_selector () =
  let sel =
    Ddet_record.Fidelity_level.by_site ~name:"s" (fun sid ->
        if sid = 3 then Ddet_record.Fidelity_level.High
        else Ddet_record.Fidelity_level.Low)
  in
  let ev sid = { Event.step = 0; tid = 0; sid; fname = "f"; kind = Event.Step } in
  Alcotest.(check string) "site 3 high" "high"
    (Ddet_record.Fidelity_level.to_string (sel.Ddet_record.Fidelity_level.level (ev 3)));
  Alcotest.(check string) "site 4 low" "low"
    (Ddet_record.Fidelity_level.to_string (sel.Ddet_record.Fidelity_level.level (ev 4)))

let test_prioritized_world () =
  let mk tid sid = { World.tid; sid; fname = "f" } in
  let cands = [ mk 0 10; mk 1 20 ] in
  let w = World.prioritized ~seed:42 ~prefer:(fun c -> c.World.sid = 20) in
  let hot = ref 0 in
  for _ = 1 to 1000 do
    if w.World.pick_thread ~step:0 cands = 1 then incr hot
  done;
  Alcotest.(check bool)
    (Printf.sprintf "suspect thread strongly preferred (%d/1000)" !hot)
    true
    (!hot > 700 && !hot < 1000);
  (* same seed, same decisions *)
  let run seed =
    let w = World.prioritized ~seed ~prefer:(fun c -> c.World.sid = 20) in
    List.init 50 (fun _ -> w.World.pick_thread ~step:0 cands)
  in
  Alcotest.(check (list int)) "deterministic in the seed" (run 7) (run 7);
  (* no hot candidates: still picks everything eventually *)
  let w = World.prioritized ~seed:1 ~prefer:(fun _ -> false) in
  let seen = Array.make 2 false in
  for _ = 1 to 100 do
    seen.(w.World.pick_thread ~step:0 cands) <- true
  done;
  Alcotest.(check bool) "uniform fallback reaches all threads" true
    (seen.(0) && seen.(1))

(* the static trigger selector records a failing ABL-RACE run whose rcse
   replay reproduces the failure *)
let test_static_trigger_end_to_end () =
  let app =
    List.find (fun a -> a.Ddet_apps.App.name = "msg_server") (apps ())
  in
  let seed, _ =
    Option.get (Ddet_apps.Workload.find_failing_seed app)
  in
  let report = Static_report.analyze app.labeled in
  Alcotest.(check bool) "msg_server has suspect sites" true
    (Static_report.suspect_sids report <> []);
  let recorder =
    Ddet_record.Rcse_recorder.create (Static_report.trigger_selector report)
  in
  let original, log =
    Ddet_record.Recorder.record recorder app.labeled ~spec:app.spec
      ~world:(World.random ~seed)
  in
  Alcotest.(check bool) "recorded run fails" true
    (original.Interp.failure <> None);
  let o =
    Ddet_replay.Replayer.rcse ~strict:false app.labeled ~spec:app.spec log
  in
  Alcotest.(check bool) "rcse replay reproduces the failure" true
    (o.Ddet_replay.Replayer.result <> None);
  (* the cheapest configuration — interleaving logged only at the
     suspect sites themselves — must also reproduce *)
  let original, log =
    Ddet_record.Recorder.record
      (Ddet_record.Rcse_recorder.create (Static_report.site_selector report))
      app.labeled ~spec:app.spec ~world:(World.random ~seed)
  in
  Alcotest.(check bool) "site-selector recording fails too" true
    (original.Interp.failure <> None);
  let o =
    Ddet_replay.Replayer.rcse ~strict:false app.labeled ~spec:app.spec log
  in
  Alcotest.(check bool) "site-granular replay reproduces the failure" true
    (o.Ddet_replay.Replayer.result <> None)

(* site-priority hint flows through the failure-determinism searcher *)
let test_priority_search () =
  let app =
    List.find (fun a -> a.Ddet_apps.App.name = "msg_server") (apps ())
  in
  let seed, _ = Option.get (Ddet_apps.Workload.find_failing_seed app) in
  let report = Static_report.analyze app.labeled in
  let priority =
    { Ddet_replay.Search.sids = Static_report.suspect_sids report }
  in
  let _, log =
    Ddet_record.Recorder.record
      (Ddet_record.Failure_recorder.create ())
      app.labeled ~spec:app.spec ~world:(World.random ~seed)
  in
  let o =
    Ddet_replay.Replayer.failure_det ~priority app.labeled ~spec:app.spec log
  in
  Alcotest.(check bool) "prioritized search reproduces the failure" true
    (o.Ddet_replay.Replayer.result <> None)

(* ------------------------------------------------------------------ *)
(* soundness law + precision on the proggen corpus *)

let dynamic_races labeled ~wseed =
  let det = Ddet_analysis.Hb_detector.create () in
  let r = Interp.run ~max_steps:20_000 labeled (World.random ~seed:wseed) in
  List.iter
    (fun e -> ignore (Ddet_analysis.Hb_detector.observe det e))
    (Trace.events r.Interp.trace);
  Ddet_analysis.Hb_detector.reports det

let covers cands (rep : Ddet_analysis.Race_detector.report) =
  let lo = min rep.sid_first rep.sid_second
  and hi = max rep.sid_first rep.sid_second in
  List.exists
    (fun (c : Lockset.candidate) ->
      c.region = rep.region
      && c.a.Callgraph.sid = lo
      && c.b.Callgraph.sid = hi)
    cands

let prop_soundness =
  QCheck2.Test.make
    ~name:"every dynamic hb race has a matching static candidate" ~count:40
    ~print:(fun (p, w) -> Printf.sprintf "program seed %d, world seed %d" p w)
    QCheck2.Gen.(map2 (fun p w -> (p, w)) (int_range 1 5_000) (int_range 1 5_000))
    (fun (pseed, wseed) ->
      let labeled = Proggen.generate Proggen.default (Prng.create pseed) in
      let cands = candidates_of labeled in
      List.for_all (covers cands) (dynamic_races labeled ~wseed))

let test_precision () =
  (* how many candidates does a bounded dynamic exploration confirm? A
     lower bound on precision: unconfirmed candidates may still be real
     races on unexplored schedules. *)
  let confirmed = ref 0 and total = ref 0 in
  for pseed = 0 to 19 do
    let labeled = Proggen.generate Proggen.default (Prng.create pseed) in
    let cands = candidates_of labeled in
    total := !total + List.length cands;
    let hit = Hashtbl.create 16 in
    for wseed = 0 to 9 do
      List.iter
        (fun (rep : Ddet_analysis.Race_detector.report) ->
          if covers cands rep then
            Hashtbl.replace hit
              ( rep.region,
                min rep.sid_first rep.sid_second,
                max rep.sid_first rep.sid_second )
              ())
        (dynamic_races labeled ~wseed:(1000 + (97 * pseed) + wseed))
    done;
    confirmed := !confirmed + Hashtbl.length hit
  done;
  let rate = float_of_int !confirmed /. float_of_int (max 1 !total) in
  Printf.printf "corpus precision: %d/%d candidates dynamically confirmed (%.0f%%)\n"
    !confirmed !total (100. *. rate);
  Alcotest.(check bool) "corpus produces candidates" true (!total > 0);
  Alcotest.(check bool)
    (Printf.sprintf "confirmation rate %.2f is nontrivial" rate)
    true (rate > 0.2)

(* ------------------------------------------------------------------ *)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "static"
    [
      ( "callgraph",
        [
          Alcotest.test_case "thread entries and multiplicity" `Quick
            test_entries;
          Alcotest.test_case "main prologue cannot race" `Quick test_prologue;
        ] );
      ( "lockset",
        [
          Alcotest.test_case "unlocked counter races with itself" `Quick
            test_racy_counter;
          Alcotest.test_case "a common lock removes the pair" `Quick
            test_locked_counter;
          Alcotest.test_case "app candidates match the known bugs" `Quick
            test_app_candidates;
          Alcotest.test_case "index compatibility" `Quick test_index_compat;
        ] );
      ( "mhp",
        [
          Alcotest.test_case "unique message orders send before recv" `Quick
            test_mhp_fifo_orders;
          Alcotest.test_case "looped send defeats ordering" `Quick
            test_mhp_loop_defeats_order;
          Alcotest.test_case "competing try_recv defeats ordering" `Quick
            test_mhp_try_recv_defeats_order;
          Alcotest.test_case "mhp refines callgraph concurrency" `Quick
            test_mhp_subset_law_unit;
        ] );
      ( "commlint",
        [
          Alcotest.test_case "three-node wait cycle deadlocks" `Quick
            test_comm_deadlock;
          Alcotest.test_case "send-then-wait rpc is clean" `Quick
            test_comm_rpc_clean;
          Alcotest.test_case "orphan send warns" `Quick test_comm_orphan_send;
          Alcotest.test_case "self-only sender errors" `Quick
            test_comm_unreachable_sender;
          Alcotest.test_case "shipped node apps are clean" `Quick
            test_comm_apps_clean;
        ] );
      ( "splane",
        [
          Alcotest.test_case "matches ground truth on all apps" `Quick
            test_plane_ground_truth;
          Alcotest.test_case "threshold tie breaks to control" `Quick
            test_plane_tie_break;
        ] );
      ( "lint",
        [
          Alcotest.test_case "each rule fires on its counterexample" `Quick
            test_lint_rules;
          Alcotest.test_case "shipped apps are clean" `Quick
            test_lint_corpus_clean;
        ] );
      ( "wiring",
        [
          Alcotest.test_case "trigger fires on suspect accesses" `Quick
            test_trigger_of_sites;
          Alcotest.test_case "by-site fidelity selector" `Quick
            test_by_site_selector;
          Alcotest.test_case "prioritized world bias and fallback" `Quick
            test_prioritized_world;
          Alcotest.test_case "static trigger record -> rcse replay" `Slow
            test_static_trigger_end_to_end;
          Alcotest.test_case "priority-hinted failure search" `Slow
            test_priority_search;
        ] );
      ( "laws",
        [
          qc prop_soundness;
          qc prop_index_compat;
          Alcotest.test_case "precision on the corpus" `Slow test_precision;
        ] );
    ]
