(* Hostile-I/O and overhead-governor tests.

   Three layers:
   - the storage stack (Store / Faulty_store / Retry): typed errors,
     deterministic injection, transient absorption;
   - the storage-fault law (qcheck): ANY fault plan applied to a save
     either succeeds with a byte-exact round-trip or fails with a typed
     permanent error leaving a salvageable prefix — never an exception,
     never silent corruption;
   - the governor: ladder semantics, trigger boost, and the end-to-end
     acceptance run — a 1.3x budget on miniht keeps the measured
     overhead within budget while the original failure still reproduces
     from the governed log, with the honest DF floor reported. *)

open Ddet
open Ddet_record
open Ddet_apps

let budget_13 = 1.3

(* ------------------------------------------------------------------ *)
(* helpers *)

let seg_base () =
  let base = Stdlib.Filename.temp_file "ddet_gov" "" in
  Stdlib.Sys.remove base;
  base

let seg_cleanup base =
  List.iter
    (fun suffix ->
      let p = base ^ suffix in
      if Stdlib.Sys.file_exists p then Stdlib.Sys.remove p)
    ([ ".header"; ".manifest"; "" ]
    @ List.init 128 (Printf.sprintf ".%04d.seg"))

let rec is_prefix a b =
  match (a, b) with
  | [], _ -> true
  | x :: xs, y :: ys -> x = y && is_prefix xs ys
  | _ :: _, [] -> false

let miniht = Miniht.app ()

(* miniht seed 1 fails with missing-rows (the seed scan's first hit) *)
let failing_seed = 1

let record_miniht ?overhead_budget model =
  let config = { Config.default with Config.overhead_budget } in
  let prepared = Session.prepare ~config model miniht in
  let original, log = Session.record prepared ~seed:failing_seed in
  (prepared, original, log)

(* ------------------------------------------------------------------ *)
(* retry policy *)

let flaky_error transient =
  {
    Store.e_op = Store.Append;
    e_path = "x";
    e_kind = Store.Eio "blip";
    transient;
  }

let test_retry_absorbs_transient () =
  let calls = ref 0 in
  let f () =
    incr calls;
    if !calls < 3 then Error (flaky_error true) else Ok !calls
  in
  match Retry.run ~policy:{ Retry.default with Retry.backoff_s = 0. } f with
  | Ok 3 -> ()
  | Ok n -> Alcotest.fail (Printf.sprintf "wrong attempt count %d" n)
  | Error f -> Alcotest.fail (Retry.failure_to_string f)

let test_retry_permanent_is_immediate () =
  let calls = ref 0 in
  let f () =
    incr calls;
    Error (flaky_error false)
  in
  (match Retry.run f with
  | Ok _ -> Alcotest.fail "permanent error succeeded"
  | Error f ->
    Alcotest.(check int) "one attempt only" 1 f.Retry.attempts;
    Alcotest.(check bool) "not a give-up" false f.Retry.gave_up);
  Alcotest.(check int) "no retries issued" 1 !calls

let test_retry_gives_up () =
  let f () = Error (flaky_error true) in
  match Retry.run ~policy:{ Retry.no_retries with Retry.max_retries = 2 } f with
  | Ok _ -> Alcotest.fail "endless transience succeeded"
  | Error f ->
    Alcotest.(check int) "first + 2 retries" 3 f.Retry.attempts;
    Alcotest.(check bool) "marked as give-up" true f.Retry.gave_up;
    Alcotest.(check bool) "surfaces as permanent" false
      (Retry.as_store_error f).Store.transient

(* ------------------------------------------------------------------ *)
(* faulty store determinism *)

let test_faulty_plan_roundtrip () =
  let plan =
    Faulty_store.make ~seed:9
      [
        Faulty_store.Disk_full { after_bytes = 4096 };
        Faulty_store.Torn { at_op = 3; keep = 0.5 };
        Faulty_store.Fsync_fail { at_op = 2; transient = true };
        Faulty_store.Flaky { prob = 0.1 };
        Faulty_store.Slow { from_op = 10; until_op = 20; ms = 5. };
      ]
  in
  match Faulty_store.of_string (Faulty_store.to_string plan) with
  | Ok p -> Alcotest.(check bool) "roundtrip" true (p = plan)
  | Error e -> Alcotest.fail e

let test_faulty_injection_deterministic () =
  let _, _, log = record_miniht Model.Perfect in
  let run () =
    let base = seg_base () in
    let plan = Faulty_store.make ~seed:5 [ Faulty_store.Flaky { prob = 0.4 } ] in
    let store, stats = Faulty_store.wrap plan (Store.local ()) in
    let r = Log_segments.save_via store ~segment_entries:8 base log in
    let s = stats () in
    seg_cleanup base;
    (* the temp path differs between runs, so compare the error minus
       its path — the injection decisions must be identical *)
    let r =
      Result.map_error
        (fun e -> (e.Store.e_op, e.Store.e_kind, e.Store.transient))
        r
    in
    (r, s.Faulty_store.injected, s.Faulty_store.bytes_written)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "same plan, same outcome" true (a = b)

(* ------------------------------------------------------------------ *)
(* the storage-fault law (qcheck) *)

let fault_gen =
  QCheck2.Gen.(
    oneof
      [
        map (fun b -> Faulty_store.Disk_full { after_bytes = 256 + b })
          (int_bound 8192);
        map2
          (fun op keep -> Faulty_store.Torn { at_op = op; keep })
          (int_bound 40) (float_bound_inclusive 1.0);
        map2
          (fun op transient -> Faulty_store.Fsync_fail { at_op = op; transient })
          (int_bound 40) bool;
        map2
          (fun op transient ->
            Faulty_store.Rename_fail { at_op = op; transient })
          (int_bound 40) bool;
        map (fun p -> Faulty_store.Flaky { prob = p *. 0.4 })
          (float_bound_inclusive 1.0);
      ])

let plan_gen =
  QCheck2.Gen.(
    map2
      (fun seed faults -> Faulty_store.make ~seed faults)
      (int_bound 1000)
      (list_size (int_range 0 3) fault_gen))

(* Any fault plan, any retry policy outcome: the save either round-trips
   exactly, or fails with a typed PERMANENT error while the disk holds a
   salvageable prefix flagged as damaged. No exceptions, no silent
   corruption, no phantom entries. *)
let storage_fault_law =
  let _, _, log = record_miniht Model.Perfect in
  QCheck2.Test.make ~name:"storage-fault law: salvageable or typed failure"
    ~count:120 plan_gen (fun plan ->
      let base = seg_base () in
      let faulty, _stats = Faulty_store.wrap plan (Store.local ()) in
      let store =
        Retry.store ~policy:{ Retry.default with Retry.backoff_s = 0. } faulty
      in
      let saved = Log_segments.save_via store ~segment_entries:8 base log in
      let ok =
        match saved with
        | Ok () -> (
          match Log_segments.load base with
          | Ok (log', r) ->
            log'.Log.entries = log.Log.entries
            && r.Log_segments.complete
            && not (Log_segments.is_damaged r)
          | Error _ -> false)
        | Error e -> (
          (not e.Store.transient)
          &&
          match Log_segments.load base with
          | Ok (log', r) ->
            is_prefix log'.Log.entries log.Log.entries
            && Log_segments.is_damaged r
          | Error _ ->
            (* nothing persisted at all: legal only when the very first
               write (the header) failed *)
            not (Log_segments.exists base))
      in
      seg_cleanup base;
      ok)

(* ------------------------------------------------------------------ *)
(* governor unit semantics *)

let mk_entry_value () =
  Log.Read_val { tid = 0; sid = 1; kind = Log.Mem; value = Mvm.Value.int 1 }

let test_ladder_admits () =
  let sched = Log.Sched { tid = 0; sid = 1 } in
  let value = mk_entry_value () in
  let fd = Log.Failure_desc (Mvm.Failure.Crash { sid = 1; msg = "boom" }) in
  Alcotest.(check bool) "level 0 admits sched" true (Governor.admits 0 sched);
  Alcotest.(check bool) "level 1 drops sched" false (Governor.admits 1 sched);
  Alcotest.(check bool) "level 1 keeps values" true (Governor.admits 1 value);
  Alcotest.(check bool) "level 2 drops values" false (Governor.admits 2 value);
  Alcotest.(check bool) "level 3 keeps the failure descriptor" true
    (Governor.admits 3 fd);
  Alcotest.(check bool) "level 3 keeps marks" true
    (Governor.admits 3 (Log.Mark "dial-high"))

let test_governor_degrades_and_marks () =
  let g = Governor.create ~warmup:4 ~dwell:2 ~budget:1.1 () in
  let heavy = mk_entry_value () in
  let out = ref [] in
  for step = 1 to 200 do
    Governor.on_event g
      { Mvm.Event.step; tid = 0; sid = 0; fname = "f"; kind = Mvm.Event.Step };
    (* several heavy entries per step: pressure far above any budget *)
    for _ = 1 to 4 do
      out := List.rev_append (Governor.admit g heavy) !out
    done
  done;
  out := List.rev_append (Governor.flush g) !out;
  let entries = List.rev !out in
  Alcotest.(check bool) "reached the failure-only tier" true
    (Governor.level g = 3);
  Alcotest.(check bool) "entries were dropped" true (Governor.dropped g > 0);
  let governs =
    List.filter (function Log.Govern _ -> true | _ -> false) entries
  in
  Alcotest.(check bool) "transitions marked in-stream" true
    (List.length governs >= 3);
  let log =
    Log.make ~recorder:"test" ~entries ~base_steps:200 ~failure:None ()
  in
  Alcotest.(check bool) "log reads as governed" true (Log.governed log);
  List.iter
    (fun (s, e, level) ->
      Alcotest.(check bool) "window well-formed" true (s <= e && level > 0))
    (Log.governed_windows log)

let test_trigger_boosts_to_full () =
  let g = Governor.create ~warmup:4 ~dwell:2 ~trigger_hold:50 ~budget:1.1 () in
  let heavy = mk_entry_value () in
  for step = 1 to 100 do
    Governor.on_event g
      { Mvm.Event.step; tid = 0; sid = 0; fname = "f"; kind = Mvm.Event.Step };
    ignore (Governor.admit g heavy)
  done;
  Alcotest.(check bool) "degraded before the trigger" true (Governor.level g > 0);
  ignore (Governor.admit g (Log.Mark "dial-high"));
  Alcotest.(check int) "trigger boosts to full fidelity" 0 (Governor.level g);
  (* inside the hold the governor must not re-degrade *)
  for step = 101 to 120 do
    Governor.on_event g
      { Mvm.Event.step; tid = 0; sid = 0; fname = "f"; kind = Mvm.Event.Step };
    ignore (Governor.admit g heavy)
  done;
  Alcotest.(check int) "hold pins full fidelity" 0 (Governor.level g)

(* ------------------------------------------------------------------ *)
(* end-to-end: ENOSPC -> salvage -> reproduce *)

let test_enospc_salvage_reproduce () =
  let prepared, original, log = record_miniht (Model.Rcse Model.Trigger_based) in
  Alcotest.(check bool) "recorded run fails" true
    (original.Mvm.Interp.failure <> None);
  let base = seg_base () in
  let plan =
    Faulty_store.make ~seed:7 [ Faulty_store.Disk_full { after_bytes = 2048 } ]
  in
  let faulty, _ = Faulty_store.wrap plan (Store.local ()) in
  let store = Retry.store faulty in
  (match Log_segments.save_via store ~segment_entries:8 base log with
  | Ok () -> Alcotest.fail "a 2 KiB disk swallowed the whole log"
  | Error e ->
    Alcotest.(check bool) "typed permanent ENOSPC" true
      ((not e.Store.transient) && e.Store.e_kind = Store.Enospc));
  match Log_segments.load base with
  | Error e -> Alcotest.fail e
  | Ok (salvaged, r) ->
    Alcotest.(check bool) "flagged as damaged" true
      (Log_segments.is_damaged r);
    Alcotest.(check bool) "a prefix of the recording" true
      (is_prefix salvaged.Log.entries log.Log.entries);
    let outcome = Session.replay prepared salvaged in
    Alcotest.(check bool) "failure reproduced from the salvaged prefix" true
      (outcome.Ddet_replay.Replayer.result <> None);
    let a =
      Session.assess ~salvaged:true prepared ~original ~log:salvaged outcome
    in
    Alcotest.(check bool) "DF capped at the salvage floor" true
      (a.Ddet_metrics.Utility.df
       <= Ddet_metrics.Fidelity.floor_df miniht.App.catalog +. 1e-9);
    Alcotest.(check bool) "degraded flagged" true
      a.Ddet_metrics.Utility.degraded;
    seg_cleanup base

(* ------------------------------------------------------------------ *)
(* end-to-end: the 1.3x acceptance run *)

let test_governor_budget_acceptance () =
  let prepared, original, log =
    record_miniht ~overhead_budget:budget_13 Model.Perfect
  in
  Alcotest.(check bool) "recorded run fails" true
    (original.Mvm.Interp.failure <> None);
  let overhead = Cost_model.overhead Cost_model.default log in
  Alcotest.(check bool)
    (Printf.sprintf "measured overhead %.2fx within the %.1fx budget" overhead
       budget_13)
    true
    (overhead <= budget_13 +. 1e-9);
  Alcotest.(check bool) "log marks its degraded windows" true
    (Log.governed log);
  let outcome = Session.replay prepared log in
  (match outcome.Ddet_replay.Replayer.result with
  | Some r ->
    Alcotest.(check bool) "the original failure reproduces" true
      (Ddet_replay.Constraints.failure_matches log r)
  | None -> Alcotest.fail "governed replay found nothing");
  let a = Session.assess prepared ~original ~log outcome in
  let floor = Ddet_metrics.Fidelity.floor_df miniht.App.catalog in
  Alcotest.(check bool) "DF at least the floor" true
    (a.Ddet_metrics.Utility.df >= floor -. 1e-9);
  Alcotest.(check bool) "floor reported honestly" true
    (a.Ddet_metrics.Utility.df_floor = Some floor);
  Alcotest.(check bool) "windows counted" true
    (a.Ddet_metrics.Utility.governed_windows > 0);
  Alcotest.(check bool) "degraded flagged" true a.Ddet_metrics.Utility.degraded

(* the ungoverned control: same recording without a budget blows well
   past it — the governor is doing real work above *)
let test_ungoverned_control_exceeds_budget () =
  let _, _, log = record_miniht Model.Perfect in
  let overhead = Cost_model.overhead Cost_model.default log in
  Alcotest.(check bool)
    (Printf.sprintf "ungoverned overhead %.2fx exceeds the budget" overhead)
    true
    (overhead > budget_13)

let () =
  Alcotest.run "govern"
    [
      ( "retry",
        [
          Alcotest.test_case "absorbs transients" `Quick
            test_retry_absorbs_transient;
          Alcotest.test_case "permanent is immediate" `Quick
            test_retry_permanent_is_immediate;
          Alcotest.test_case "gives up honestly" `Quick test_retry_gives_up;
        ] );
      ( "faulty-store",
        [
          Alcotest.test_case "plan roundtrip" `Quick test_faulty_plan_roundtrip;
          Alcotest.test_case "injection is deterministic" `Quick
            test_faulty_injection_deterministic;
          QCheck_alcotest.to_alcotest storage_fault_law;
        ] );
      ( "governor",
        [
          Alcotest.test_case "ladder admits" `Quick test_ladder_admits;
          Alcotest.test_case "degrades and marks windows" `Quick
            test_governor_degrades_and_marks;
          Alcotest.test_case "trigger boosts to full" `Quick
            test_trigger_boosts_to_full;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "ENOSPC, salvage, reproduce" `Quick
            test_enospc_salvage_reproduce;
          Alcotest.test_case "1.3x budget acceptance" `Slow
            test_governor_budget_acceptance;
          Alcotest.test_case "ungoverned control" `Quick
            test_ungoverned_control_exceeds_budget;
        ] );
    ]
