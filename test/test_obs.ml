(* Observability layer: the ring's overflow accounting, the masked-trace
   determinism law, and the monotonic-deadline regression (deadlines used
   to read the wall clock, so an NTP step could fire them all at once). *)

open Ddet
open Ddet_apps
module T = Ddet_obs.Tracer
module Clock = Ddet_obs.Clock

(* ------------------------------------------------------------------ *)
(* ring buffer *)

let test_ring_exact_fill () =
  let t = T.create ~capacity:8 () in
  for i = 1 to 8 do
    T.instant t (Printf.sprintf "e%d" i)
  done;
  Alcotest.(check int) "full" 8 (T.length t);
  Alcotest.(check int) "no drops at capacity" 0 (T.dropped t)

let test_ring_wraparound () =
  let t = T.create ~capacity:8 () in
  for i = 1 to 13 do
    T.instant t (Printf.sprintf "e%d" i)
  done;
  Alcotest.(check int) "len capped" 8 (T.length t);
  Alcotest.(check int) "drops counted" 5 (T.dropped t);
  let names = List.map (fun (e : T.ev) -> e.T.name) (T.events t) in
  Alcotest.(check (list string))
    "last capacity events survive, oldest first"
    [ "e6"; "e7"; "e8"; "e9"; "e10"; "e11"; "e12"; "e13" ]
    names

let test_ring_drop_accuracy_qcheck =
  QCheck.Test.make ~name:"dropped = pushes - capacity, contents = tail"
    ~count:50
    QCheck.(pair (int_range 2 32) (int_range 0 100))
    (fun (cap, extra) ->
      let t = T.create ~capacity:cap () in
      let total = cap + extra in
      for i = 1 to total do
        T.instant t (string_of_int i)
      done;
      let names = List.map (fun (e : T.ev) -> e.T.name) (T.events t) in
      let expect = List.init cap (fun k -> string_of_int (extra + k + 1)) in
      T.length t = cap && T.dropped t = extra && names = expect)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_masking () =
  let t = T.create ~capacity:16 () in
  T.instant t ~args:[ ("wall", T.Ns 123456789L); ("n", T.Count 7) ] "tick";
  T.bump (Some (T.counter t "io_wait_ns")) 424242;
  T.bump (Some (T.counter t "io_ops")) 3;
  let s = T.render_masked t in
  Alcotest.(check bool) "Ns arg elided" false (contains s "123456789");
  Alcotest.(check bool) "_ns counter elided" false (contains s "424242");
  Alcotest.(check bool) "Count arg kept" true (contains s "n=7");
  Alcotest.(check bool) "plain counter kept" true (contains s "io_ops 3")

(* ------------------------------------------------------------------ *)
(* determinism law: same seed, sequential session => identical masked
   trace. The trace is only evidence if it is as reproducible as the
   replay itself. *)

let masked_session_trace model seed =
  let t = T.create () in
  T.with_current t (fun () ->
      let app = Adder.app () in
      let prepared = Session.prepare model app in
      let original, log = Session.record prepared ~seed in
      let outcome = Session.replay prepared log in
      ignore (Session.assess prepared ~original ~log outcome));
  T.render_masked t

let test_trace_determinism_qcheck =
  QCheck.Test.make ~name:"same seed => byte-identical masked trace"
    ~count:10
    QCheck.(int_range 0 1000)
    (fun seed ->
      let a = masked_session_trace Model.Value seed in
      let b = masked_session_trace Model.Value seed in
      a = b)

let test_trace_covers_phases () =
  let s = masked_session_trace Model.Value 1 in
  List.iter
    (fun phase ->
      Alcotest.(check bool) (phase ^ " span present") true (contains s phase))
    [ "session.record"; "session.replay"; "session.assess" ];
  Alcotest.(check bool) "search counters present" true
    (contains s "search.attempts")

(* ------------------------------------------------------------------ *)
(* monotonic deadlines (regression: deadline_of used to read
   Unix.gettimeofday, so a wall-clock step moved every deadline) *)

let fake_clock step =
  let t = ref 0L in
  fun () ->
    t := Int64.add !t step;
    !t

let test_deadline_unit () =
  let open Ddet_replay in
  (* a frozen clock: deadlines convert but never fire *)
  Clock.with_source
    (fun () -> 5_000L)
    (fun () ->
      let budget = { Search.default_budget with Search.deadline_s = Some 2.0 } in
      (match Search.deadline_of budget with
      | Some d ->
        Alcotest.(check int64) "absolute instant = now + allowance"
          (Int64.add 5_000L 2_000_000_000L)
          d
      | None -> Alcotest.fail "deadline_of dropped the allowance");
      Alcotest.(check bool) "no deadline never passes" false
        (Search.deadline_passed (Search.deadline_of
             { budget with Search.deadline_s = None }));
      Alcotest.(check bool) "frozen clock: not passed" false
        (Search.deadline_passed (Search.deadline_of budget));
      Alcotest.(check bool) "no deadline, no cancel hook" true
        (Search.wall_cancel None = None);
      (* an already-expired instant cancels with the canonical reason *)
      match Search.wall_cancel (Some 4_999L) with
      | None -> Alcotest.fail "expired deadline must cancel"
      | Some f ->
        Alcotest.(check (option string))
          "cancel names the deadline"
          (Some Search.deadline_reason) (f ()))

let test_deadline_fires_exactly_at_allowance () =
  let open Ddet_replay in
  (* hand-advanced clock: 0.3 s per read. deadline_of reads once (t0),
     so the instant is t0 + 1 s; three more reads stay under it, the
     next is past. *)
  Clock.with_source
    (fake_clock 300_000_000L)
    (fun () ->
      let budget =
        { Search.default_budget with Search.deadline_s = Some 1.0 }
      in
      let d = Search.deadline_of budget in
      (* t0 = 0.3; deadline = 1.3. reads at 0.6 / 0.9 / 1.2 hold... *)
      Alcotest.(check bool) "0.6s: holds" false (Search.deadline_passed d);
      Alcotest.(check bool) "0.9s: holds" false (Search.deadline_passed d);
      Alcotest.(check bool) "1.2s: holds" false (Search.deadline_passed d);
      (* ...and 1.5 is past the 1.3 instant *)
      Alcotest.(check bool) "1.5s: fired" true (Search.deadline_passed d))

let test_engine_deadline_no_sleep () =
  let open Ddet_replay in
  let app = Adder.app () in
  (* every clock read burns 0.2 s of fake time; nothing sleeps. The
     search must stop on the deadline long before its attempt budget. *)
  Clock.with_source
    (fake_clock 200_000_000L)
    (fun () ->
      let budget =
        {
          Search.max_attempts = 100_000;
          max_steps_per_attempt = 400;
          base_seed = 7;
          deadline_s = Some 1.0;
        }
      in
      let outcome =
        Search.random_restarts budget
          ~make:(fun ~attempt -> (Mvm.World.random ~seed:attempt, None))
          ~spec:app.App.spec
          ~accept:(fun _ -> false)
          app.App.labeled
      in
      Alcotest.(check bool) "deadline ended the search" true
        outcome.Search.stats.Search.deadline_hit;
      Alcotest.(check bool) "well before the attempt budget" true
        (outcome.Search.stats.Search.attempts < 100))

let () =
  Alcotest.run "obs"
    [
      ( "ring",
        [
          Alcotest.test_case "exact fill, no drops" `Quick test_ring_exact_fill;
          Alcotest.test_case "wraparound keeps the tail" `Quick
            test_ring_wraparound;
          QCheck_alcotest.to_alcotest test_ring_drop_accuracy_qcheck;
          Alcotest.test_case "masked render elides wall time" `Quick
            test_masking;
        ] );
      ( "determinism",
        [
          QCheck_alcotest.to_alcotest test_trace_determinism_qcheck;
          Alcotest.test_case "trace covers the session phases" `Quick
            test_trace_covers_phases;
        ] );
      ( "deadlines",
        [
          Alcotest.test_case "monotonic conversion and expiry" `Quick
            test_deadline_unit;
          Alcotest.test_case "fires exactly at the allowance" `Quick
            test_deadline_fires_exactly_at_allowance;
          Alcotest.test_case "engine stops on fake clock, no sleep" `Quick
            test_engine_deadline_no_sleep;
        ] );
    ]
