(* Integration tests for the ddet core library: the model registry, the
   session pipeline across every determinism model, and the shape of the
   headline experiment (Fig. 2). *)

open Ddet
open Ddet_apps
open Ddet_metrics

let all_models =
  [
    Model.Perfect; Model.Value; Model.Sync; Model.Output; Model.Failure_det;
    Model.Rcse Model.Code_based; Model.Rcse Model.Data_based;
    Model.Rcse Model.Trigger_based; Model.Rcse Model.Combined;
  ]

(* ------------------------------------------------------------------ *)
(* model registry *)

let test_model_name_roundtrip () =
  List.iter
    (fun m ->
      match Model.of_string (Model.name m) with
      | Ok m' ->
        Alcotest.(check string) "roundtrip" (Model.name m) (Model.name m')
      | Error e -> Alcotest.fail e)
    all_models

let test_model_unknown_rejected () =
  match Model.of_string "quantum" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown model accepted"

let test_fig1_sequence_order () =
  Alcotest.(check (list string)) "chronological relaxation order"
    [ "perfect"; "value"; "sync"; "output"; "failure"; "rcse" ]
    (List.map Model.name Model.fig1_sequence)

let test_references () =
  Alcotest.(check string) "value is iDNA" "iDNA" (Model.reference Model.Value);
  Alcotest.(check string) "failure is ESD" "ESD" (Model.reference Model.Failure_det)

(* ------------------------------------------------------------------ *)
(* session pipeline *)

let miniht_seed =
  lazy
    (match
       Workload.find_failing_seed ~cause:Miniht.rc_race ~exclusive:true
         (Miniht.app ())
     with
    | Some (seed, _) -> seed
    | None -> Alcotest.fail "no race seed")

let test_prepare_trains_what_is_needed () =
  let app = Miniht.app () in
  let code = Session.prepare (Model.Rcse Model.Code_based) app in
  Alcotest.(check bool) "code-based has a plane map" true
    (code.Session.plane_map <> None);
  Alcotest.(check bool) "code-based has no invariants" true
    (code.Session.invariants = None);
  let data = Session.prepare (Model.Rcse Model.Data_based) app in
  Alcotest.(check bool) "data-based has invariants" true
    (data.Session.invariants <> None);
  let plain = Session.prepare Model.Perfect app in
  Alcotest.(check bool) "perfect trains nothing" true
    (plain.Session.plane_map = None && plain.Session.invariants = None)

let test_classification_matches_ground_truth () =
  let app = Miniht.app () in
  let prepared = Session.prepare (Model.Rcse Model.Code_based) app in
  match prepared.Session.plane_map with
  | None -> Alcotest.fail "no plane map"
  | Some map ->
    List.iter
      (fun f ->
        let fname = f.Mvm.Ast.fname in
        let expected =
          if List.mem fname app.App.control_plane then Ddet_analysis.Plane.Control
          else Ddet_analysis.Plane.Data
        in
        Alcotest.(check bool)
          (Printf.sprintf "%s classified correctly" fname)
          true
          (Ddet_analysis.Plane.equal (Ddet_analysis.Plane.plane_of map fname) expected))
      app.App.labeled.Mvm.Label.prog.Mvm.Ast.funcs

let test_record_is_reproducible () =
  let app = Miniht.app () in
  let prepared = Session.prepare Model.Perfect app in
  let r1, log1 = Session.record prepared ~seed:42 in
  let r2, log2 = Session.record prepared ~seed:42 in
  Alcotest.(check int) "same steps" r1.Mvm.Interp.steps r2.Mvm.Interp.steps;
  Alcotest.(check bool) "same schedule" true
    (Ddet_record.Log.sched_points log1 = Ddet_record.Log.sched_points log2)

let test_every_model_runs_end_to_end () =
  let app = Miniht.app () in
  let seed = Lazy.force miniht_seed in
  List.iter
    (fun model ->
      let a = Session.experiment model app ~seed in
      Alcotest.(check bool)
        (Model.name model ^ " overhead sane")
        true
        (a.Utility.overhead >= 1.0 && a.Utility.overhead < 10.0);
      Alcotest.(check bool)
        (Model.name model ^ " df within [0,1]")
        true
        (a.Utility.df >= 0.0 && a.Utility.df <= 1.0))
    all_models

let test_fig2_shape () =
  (* the headline reproduction: value and rcse-code reach DF 1, failure
     determinism lands at 1/3; overheads order value > rcse > failure *)
  let app = Miniht.app () in
  let seed = Lazy.force miniht_seed in
  let assess model = Session.experiment_ensemble ~replays:3 model app ~seed in
  let value = assess Model.Value in
  let failure = assess Model.Failure_det in
  let rcse = assess (Model.Rcse Model.Code_based) in
  Alcotest.(check (float 1e-9)) "value DF 1" 1.0 value.Utility.df;
  Alcotest.(check (float 1e-9)) "rcse DF 1" 1.0 rcse.Utility.df;
  Alcotest.(check (float 0.15)) "failure DF ~ 1/3" (1. /. 3.) failure.Utility.df;
  Alcotest.(check bool) "value costs most" true
    (value.Utility.overhead > rcse.Utility.overhead);
  Alcotest.(check bool) "rcse costs more than nothing" true
    (rcse.Utility.overhead > failure.Utility.overhead);
  Alcotest.(check bool) "failure records ~nothing" true
    (failure.Utility.overhead < 1.01)

let test_adder_output_loses_failure () =
  let app = Adder.app () in
  match Workload.find_failing_seed app with
  | None -> Alcotest.fail "no adder seed"
  | Some (seed, _) ->
    let a = Session.experiment Model.Output app ~seed in
    Alcotest.(check (float 1e-9)) "DF 0: replay is a correct sum" 0.0
      a.Utility.df

let test_perfect_always_full_fidelity () =
  List.iter
    (fun (app : App.t) ->
      match Workload.find_failing_seed app with
      | None -> Alcotest.fail ("no seed for " ^ app.App.name)
      | Some (seed, _) ->
        let a = Session.experiment Model.Perfect app ~seed in
        Alcotest.(check (float 1e-9)) (app.App.name ^ " DF") 1.0 a.Utility.df;
        Alcotest.(check (float 1e-9)) (app.App.name ^ " DE") 1.0 a.Utility.de)
    [
      Adder.app (); Bufover.app (); Msg_server.app (); Miniht.app ();
      Cloudstore.app ();
    ]

let test_ensemble_is_deterministic () =
  let app = Miniht.app () in
  let seed = Lazy.force miniht_seed in
  let a1 = Session.experiment_ensemble ~replays:3 Model.Failure_det app ~seed in
  let a2 = Session.experiment_ensemble ~replays:3 Model.Failure_det app ~seed in
  Alcotest.(check (float 1e-9)) "df stable" a1.Utility.df a2.Utility.df;
  Alcotest.(check (float 1e-9)) "de stable" a1.Utility.de a2.Utility.de

let test_training_runs_pass () =
  let app = Miniht.app () in
  let runs = Session.training_runs Config.default app in
  Alcotest.(check int) "requested count" Config.default.Config.training_runs
    (List.length runs);
  Alcotest.(check bool) "all passing" true
    (List.for_all (fun (r : Mvm.Interp.result) -> r.Mvm.Interp.failure = None) runs)

(* ------------------------------------------------------------------ *)
(* open questions: all-root-causes exploration, forensic/FT frontier *)

let test_explore_covers_catalog () =
  let app = Miniht.app () in
  let seed = Lazy.force miniht_seed in
  let _, log =
    Ddet_record.Recorder.record
      (Ddet_record.Failure_recorder.create ())
      app.App.labeled ~spec:app.App.spec
      ~world:(Mvm.World.random ~seed)
  in
  let o = Explore.all_root_causes app ~log in
  Alcotest.(check bool) "all three causes witnessed" true o.Explore.complete;
  Alcotest.(check int) "three witnesses" 3 (List.length o.Explore.witnesses);
  List.iter
    (fun (w : Explore.witness) ->
      Alcotest.(check bool)
        (w.Explore.cause_id ^ " witness exhibits its cause")
        true
        (List.exists
           (fun c -> c.Root_cause.id = w.Explore.cause_id)
           (Root_cause.observed app.App.catalog w.Explore.result)))
    o.Explore.witnesses

let test_explore_respects_budget () =
  let app = Miniht.app () in
  let seed = Lazy.force miniht_seed in
  let _, log =
    Ddet_record.Recorder.record
      (Ddet_record.Failure_recorder.create ())
      app.App.labeled ~spec:app.App.spec
      ~world:(Mvm.World.random ~seed)
  in
  let budget =
    { Ddet_replay.Search.max_attempts = 2; max_steps_per_attempt = 50_000; base_seed = 1; deadline_s = None }
  in
  let o = Explore.all_root_causes ~budget app ~log in
  Alcotest.(check bool) "attempts capped" true (o.Explore.attempts <= 2)

let test_forensic_identity () =
  let app = Adder.app () in
  let r = App.production_run app ~seed:3 in
  Alcotest.(check (float 1e-9)) "run matches itself" 1.0
    (Frontier.forensic_fidelity ~original:r ~replay:r)

let test_forensic_detects_forged_inputs () =
  let app = Adder.app () in
  (* two runs with the same output 5 but different inputs *)
  let find a b =
    let rec scan seed =
      if seed > 2000 then Alcotest.fail "seeds not found"
      else
        let r = App.production_run app ~seed in
        match
          ( Mvm.Trace.inputs_on r.Mvm.Interp.trace "a",
            Mvm.Trace.inputs_on r.Mvm.Interp.trace "b" )
        with
        | [ (_, _, Mvm.Value.Vint x) ], [ (_, _, Mvm.Value.Vint y) ]
          when x = a && y = b ->
          r
        | _ -> scan (seed + 1)
    in
    scan 1
  in
  let r22 = find 2 2 and r14 = find 1 4 in
  Alcotest.(check bool) "forged inputs detected" true
    (Frontier.forensic_fidelity ~original:r22 ~replay:r14 < 1.0)

let test_state_divergence_zero_for_identical () =
  let app = Miniht.app () in
  let r = App.production_run app ~seed:7 in
  Alcotest.(check (float 1e-9)) "identical runs diverge nowhere" 0.0
    (Frontier.state_divergence
       ~regions:app.App.labeled.Mvm.Label.prog.Mvm.Ast.regions ~original:r
       ~replay:r)

let test_state_divergence_detects_difference () =
  let app = Miniht.app () in
  let seed = Lazy.force miniht_seed in
  let failing = App.production_run app ~seed in
  (* a passing run necessarily ends in a different state *)
  let passing =
    let rec scan s =
      let r = App.production_run app ~seed:s in
      if r.Mvm.Interp.failure = None then r else scan (s + 1)
    in
    scan 1000
  in
  Alcotest.(check bool) "different runs diverge" true
    (Frontier.state_divergence
       ~regions:app.App.labeled.Mvm.Label.prog.Mvm.Ast.regions
       ~original:failing ~replay:passing
    > 0.0)

(* ------------------------------------------------------------------ *)
(* experiment drivers (small configurations to stay fast) *)

let test_fig2_rows_complete () =
  let rows = Experiment.fig2 ~replays:1 () in
  Alcotest.(check int) "three models" 3 (List.length rows);
  List.iter
    (fun (r : Experiment.row) ->
      Alcotest.(check string) "all on miniht" "miniht" r.Experiment.app)
    rows

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_render_produces_tables () =
  let rows = Experiment.fig2 ~replays:1 () in
  let rendered = Experiment.render_fig2 rows in
  Alcotest.(check bool) "mentions all models" true
    (List.for_all
       (contains rendered.Experiment.body)
       [ "value"; "failure"; "rcse" ])

let () =
  Alcotest.run "core"
    [
      ( "model",
        [
          Alcotest.test_case "name roundtrip" `Quick test_model_name_roundtrip;
          Alcotest.test_case "unknown rejected" `Quick test_model_unknown_rejected;
          Alcotest.test_case "fig1 sequence" `Quick test_fig1_sequence_order;
          Alcotest.test_case "references" `Quick test_references;
        ] );
      ( "session",
        [
          Alcotest.test_case "prepare trains lazily" `Quick test_prepare_trains_what_is_needed;
          Alcotest.test_case "classification vs truth" `Quick test_classification_matches_ground_truth;
          Alcotest.test_case "record reproducible" `Quick test_record_is_reproducible;
          Alcotest.test_case "all models end-to-end" `Slow test_every_model_runs_end_to_end;
          Alcotest.test_case "training runs pass" `Quick test_training_runs_pass;
          Alcotest.test_case "ensemble deterministic" `Quick test_ensemble_is_deterministic;
        ] );
      ( "paper-shape",
        [
          Alcotest.test_case "fig2 shape" `Slow test_fig2_shape;
          Alcotest.test_case "adder output DF 0" `Quick test_adder_output_loses_failure;
          Alcotest.test_case "perfect always DF 1" `Slow test_perfect_always_full_fidelity;
        ] );
      ( "open-questions",
        [
          Alcotest.test_case "explore covers catalog" `Slow test_explore_covers_catalog;
          Alcotest.test_case "explore budget" `Quick test_explore_respects_budget;
          Alcotest.test_case "forensic identity" `Quick test_forensic_identity;
          Alcotest.test_case "forensic forged inputs" `Quick test_forensic_detects_forged_inputs;
          Alcotest.test_case "divergence zero" `Quick test_state_divergence_zero_for_identical;
          Alcotest.test_case "divergence detects" `Quick test_state_divergence_detects_difference;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "fig2 rows" `Quick test_fig2_rows_complete;
          Alcotest.test_case "render" `Quick test_render_produces_tables;
        ] );
    ]
