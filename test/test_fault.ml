(* Fault-injection tests: plan syntax, injection semantics, liveness of
   the retry-hardened apps under adversity, per-tier recording of faulted
   runs, and the salvage → degraded-replay → DF-floor pipeline.

   The suite runs under several base seeds (the fault-suite alias sets
   DDET_FAULT_SEED to 3, 17 and 29): determinism and liveness claims must
   hold whatever the world seed. *)

open Mvm
open Mvm.Dsl
open Ddet
open Ddet_record
open Ddet_apps

let seed_base =
  match Stdlib.Sys.getenv_opt "DDET_FAULT_SEED" with
  | Some s -> int_of_string s
  | None -> 3

let value_testable = Alcotest.testable Value.pp Value.equal

(* ------------------------------------------------------------------ *)
(* plan syntax *)

let full_plan =
  Fault.make ~seed:7
    [
      Fault.drop ~prob:0.25 "ack_0";
      Fault.duplicate ~prob:0.1 "repl";
      Fault.delay ~chan:"resp_0" ~from_step:100 ~until_step:400;
      Fault.stall ~tid:2 ~from_step:50 ~until_step:90;
      Fault.crash ~tid:1 ~at_step:500;
      Fault.perturb ~prob:0.5 "net";
    ]

let test_plan_roundtrip () =
  match Fault.of_string (Fault.to_string full_plan) with
  | Ok p -> Alcotest.(check bool) "roundtrip" true (p = full_plan)
  | Error e -> Alcotest.fail e

let contains hay needle =
  let n = String.length needle in
  let rec go i =
    i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1))
  in
  go 0

let test_plan_rejects_bad_clause () =
  (match Fault.of_string "seed=7,bogus:x:0.1" with
  | Error msg ->
    Alcotest.(check bool) "error names the clause" true (contains msg "bogus")
  | Ok _ -> Alcotest.fail "bad clause accepted");
  match Fault.of_string "seed=7,drop:ack_0:not-a-prob" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad probability accepted"

let test_plan_none_empty () =
  Alcotest.(check bool) "none is empty" true (Fault.is_empty Fault.none);
  Alcotest.(check bool) "full plan is not" false (Fault.is_empty full_plan)

(* ------------------------------------------------------------------ *)
(* injection semantics on small programs *)

let test_inject_none_identity () =
  let w = World.random ~seed:seed_base in
  Alcotest.(check bool) "inject none w == w" true (Fault.inject Fault.none w == w)

(* main spawns two incrementers; w2 (tid 2) is crashed from step 0, so the
   +100 must be absent from main's output even though the scheduler is
   random — w2 is filtered from candidacy while anyone else can run. *)
let crash_prog =
  program ~name:"crashy"
    ~regions:[ scalar "c" (Value.int 0) ]
    ~inputs:[] ~main:"main"
    [
      func "main" []
        ([ spawn "w1" []; spawn "w2" [] ]
        @ [ for_ "k" (i 0) (i 30) [ yield ]; output "o" (g "c") ]);
      func "w1" [] [ for_ "k" (i 0) (i 5) [ store_g "c" (g "c" +: i 1) ] ];
      func "w2" [] [ store_g "c" (g "c" +: i 100) ];
    ]

let test_crash_deschedules () =
  let plan = Fault.make [ Fault.crash ~tid:2 ~at_step:0 ] in
  let r =
    Interp.run crash_prog (Fault.inject plan (World.random ~seed:seed_base))
  in
  Alcotest.(check bool) "run completes" true (r.Interp.status = Interp.Done);
  match List.assoc_opt "o" r.Interp.outputs with
  | Some [ Value.Vint n ] ->
    Alcotest.(check bool) "crashed thread contributed nothing" true (n < 100)
  | _ -> Alcotest.fail "missing output"

(* main blocks on a message only the crashed thread can send: the
   sole-candidate fallback must let it run rather than wedge the VM. *)
let fallback_prog =
  program ~name:"fallback" ~regions:[] ~inputs:[] ~main:"main"
    [
      func "main" [] [ spawn "w" []; recv "d" "done"; output "o" (v "d") ];
      func "w" [] [ send "done" (i 1) ];
    ]

let test_crash_sole_candidate_fallback () =
  let plan = Fault.make [ Fault.crash ~tid:1 ~at_step:0 ] in
  let r =
    Interp.run fallback_prog (Fault.inject plan (World.random ~seed:seed_base))
  in
  Alcotest.(check bool) "no deadlock" true (r.Interp.status = Interp.Done);
  Alcotest.(check (list value_testable)) "message still arrives"
    [ Value.int 1 ]
    (Option.value ~default:[] (List.assoc_opt "o" r.Interp.outputs))

let perturb_prog =
  program ~name:"perturby" ~regions:[]
    ~inputs:[ ("sel", [ Value.int 10; Value.int 20; Value.int 30 ]) ]
    ~main:"main"
    [ func "main" [] [ input "x" "sel"; output "o" (v "x") ] ]

(* with prob 1.0 the consumed value is a pure hash of the plan seed and
   the input site — independent of the world's own randomness *)
let test_perturb_overrides_world () =
  let plan = Fault.make ~seed:5 [ Fault.perturb ~prob:1.0 "sel" ] in
  let out seed =
    (Interp.run perturb_prog (Fault.inject plan (World.random ~seed)))
      .Interp.outputs
  in
  Alcotest.(check bool) "same value whatever the world seed" true
    (out seed_base = out (seed_base + 1) && out seed_base = out (seed_base + 2))

(* ------------------------------------------------------------------ *)
(* cloudstore under a >=10% drop plan *)

let drop_plan =
  Fault.make ~seed:11
    [
      Fault.drop ~prob:0.15 "ack_0";
      Fault.drop ~prob:0.15 "ack_1";
      Fault.drop ~prob:0.12 "repl";
    ]

let cloud = Cloudstore.app ()

let test_injected_run_deterministic () =
  let run () = App.production_run ~faults:drop_plan cloud ~seed:seed_base in
  let a = run () and b = run () in
  Alcotest.(check int) "same step count" a.Interp.steps b.Interp.steps;
  Alcotest.(check bool) "same outputs" true (a.Interp.outputs = b.Interp.outputs);
  Alcotest.(check bool) "same failure" true (a.Interp.failure = b.Interp.failure)

let test_liveness_under_drops () =
  (* retry loops must absorb the drops: every run terminates normally *)
  List.iter
    (fun seed ->
      let r = App.production_run ~faults:drop_plan cloud ~seed in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d terminates" seed)
        true
        (r.Interp.status = Interp.Done))
    (List.init 10 (fun k -> seed_base + k))

let all_models =
  [
    Model.Perfect; Model.Value; Model.Sync; Model.Output; Model.Failure_det;
    Model.Rcse Model.Code_based; Model.Rcse Model.Data_based;
    Model.Rcse Model.Trigger_based; Model.Rcse Model.Combined;
  ]

let failing_under_drops =
  lazy
    (match Workload.find_failing_seed ~faults:drop_plan cloud with
    | Some (seed, r) -> (seed, r)
    | None -> Alcotest.fail "no failing cloudstore seed under the drop plan")

let test_every_tier_records_faulted_failure () =
  let seed, _ = Lazy.force failing_under_drops in
  List.iter
    (fun model ->
      let prepared = Session.prepare model cloud in
      let original, log = Session.record ~faults:drop_plan prepared ~seed in
      Alcotest.(check bool)
        (Model.name model ^ " records a failing run")
        true
        (original.Interp.failure <> None);
      Alcotest.(check bool)
        (Model.name model ^ " ships the plan")
        true
        (log.Log.faults = Some drop_plan))
    all_models

(* ------------------------------------------------------------------ *)
(* salvage a corrupted tail, replay, DF floor *)

let corrupt_tail s =
  (* chop the trailer and the last couple of entries, then append a line
     whose checksum cannot match: a half-written, bit-rotted shipped log *)
  let lines =
    Stdlib.String.split_on_char '\n' s
    |> List.filter (fun l -> String.length l > 0)
  in
  let keep = List.filteri (fun ix _ -> ix < List.length lines - 3) lines in
  String.concat "\n" (keep @ [ "00000000 rotted bits" ]) ^ "\n"

let test_salvage_replays_to_failure_with_floor_df () =
  let seed, _ = Lazy.force failing_under_drops in
  let prepared = Session.prepare Model.Perfect cloud in
  let original, log = Session.record ~faults:drop_plan prepared ~seed in
  let damaged = corrupt_tail (Log_io.to_string log) in
  (match Log_io.of_string damaged with
  | Error msg ->
    Alcotest.(check bool) "strict error names a line" true
      (String.length msg >= 5 && String.sub msg 0 5 = "line ")
  | Ok _ -> Alcotest.fail "strict mode accepted a corrupted tail");
  match Log_io.of_string_report ~mode:Log_io.Salvage damaged with
  | Error e -> Alcotest.fail e
  | Ok (salvaged, damage) ->
    Alcotest.(check bool) "damage reported" true (Log_io.is_damaged damage);
    Alcotest.(check bool) "tail truncation detected" true damage.Log_io.truncated;
    Alcotest.(check bool) "prefix survived" true
      (damage.Log_io.salvaged_entries > 0);
    let outcome = Session.replay prepared salvaged in
    (match outcome.Ddet_replay.Replayer.result with
    | Some r ->
      Alcotest.(check bool) "same failure reproduced" true
        (r.Interp.failure = original.Interp.failure)
    | None -> Alcotest.fail "degraded replay did not reproduce the failure");
    let a =
      Session.assess ~salvaged:true prepared ~original ~log:salvaged outcome
    in
    Alcotest.(check (float 1e-9)) "DF capped at the 1/n floor" (1. /. 3.)
      a.Ddet_metrics.Utility.df;
    Alcotest.(check bool) "assessment marked degraded" true
      a.Ddet_metrics.Utility.degraded;
    Alcotest.(check bool) "DU still positive" true
      (a.Ddet_metrics.Utility.du > 0.)

let () =
  Alcotest.run "fault"
    [
      ( "plan",
        [
          Alcotest.test_case "roundtrip" `Quick test_plan_roundtrip;
          Alcotest.test_case "rejects bad clause" `Quick test_plan_rejects_bad_clause;
          Alcotest.test_case "none empty" `Quick test_plan_none_empty;
        ] );
      ( "inject",
        [
          Alcotest.test_case "none is identity" `Quick test_inject_none_identity;
          Alcotest.test_case "crash deschedules" `Quick test_crash_deschedules;
          Alcotest.test_case "sole-candidate fallback" `Quick
            test_crash_sole_candidate_fallback;
          Alcotest.test_case "perturb overrides world" `Quick
            test_perturb_overrides_world;
        ] );
      ( "cloudstore-under-drops",
        [
          Alcotest.test_case "deterministic" `Quick test_injected_run_deterministic;
          Alcotest.test_case "liveness" `Quick test_liveness_under_drops;
          Alcotest.test_case "every tier records the failure" `Quick
            test_every_tier_records_faulted_failure;
        ] );
      ( "salvage",
        [
          Alcotest.test_case "corrupted tail replays at DF floor" `Quick
            test_salvage_replays_to_failure_with_floor_df;
        ] );
    ]
