(* Unit tests for ddet_metrics: root-cause catalogs, DF/DE/DU and report
   rendering. *)

open Mvm
open Mvm.Dsl
open Ddet_record
open Ddet_metrics

(* Two-cause scenario: a program that fails with tag "bad" either because
   input x = 1 (cause A) or input y = 1 (cause B). *)
let two_cause_prog =
  program ~name:"two" ~regions:[]
    ~inputs:[ ("x", [ Value.int 0; Value.int 1 ]); ("y", [ Value.int 0; Value.int 1 ]) ]
    ~main:"main"
    [
      func "main" []
        [
          input "x" "x";
          input "y" "y";
          if_
            ((v "x" =: i 1) ||: (v "y" =: i 1))
            [ output "out" (i 666) ]
            [ output "out" (i 0) ];
        ];
    ]

let spec =
  Spec.make "no-666" (fun r ->
      match Trace.outputs_on r.Interp.trace "out" with
      | [ Value.Vint 666 ] -> Error "bad"
      | _ -> Ok ())

let input_is chan n (r : Interp.result) =
  match Trace.inputs_on r.Interp.trace chan with
  | (_, _, Value.Vint v) :: _ -> v = n
  | _ -> false

let cause_a = Root_cause.make ~id:"cause-a" ~descr:"x was 1" (input_is "x" 1)
let cause_b = Root_cause.make ~id:"cause-b" ~descr:"y was 1" (input_is "y" 1)

let catalog =
  {
    Root_cause.app = "two";
    failure_sig = (function Mvm.Failure.Spec_violation "bad" -> true | _ -> false);
    causes = [ cause_a; cause_b ];
  }

(* a world forcing specific inputs *)
let forced_world x y =
  let base = World.round_robin () in
  {
    base with
    World.pick_input =
      (fun ~step:_ ~tid:_ ~chan ~domain:_ ->
        Value.int (if String.equal chan "x" then x else y));
  }

let run_with x y = Spec.apply spec (Interp.run two_cause_prog (forced_world x y))

(* ------------------------------------------------------------------ *)
(* root causes *)

let test_observed_single () =
  let r = run_with 1 0 in
  match Root_cause.observed catalog r with
  | [ c ] -> Alcotest.(check string) "cause a" "cause-a" c.Root_cause.id
  | _ -> Alcotest.fail "expected exactly cause-a"

let test_observed_both () =
  let r = run_with 1 1 in
  Alcotest.(check int) "both causes" 2 (List.length (Root_cause.observed catalog r))

let test_observed_none_when_passing () =
  let r = run_with 0 0 in
  Alcotest.(check int) "no causes on pass" 0
    (List.length (Root_cause.observed catalog r))

let test_primary_order () =
  let r = run_with 1 1 in
  match Root_cause.primary catalog r with
  | Some c -> Alcotest.(check string) "catalog order wins" "cause-a" c.Root_cause.id
  | None -> Alcotest.fail "expected a primary cause"

let test_failure_sig_gates () =
  (* a different failure never matches the catalog *)
  let p =
    program ~name:"boom" ~regions:[] ~inputs:[] ~main:"main"
      [ func "main" [] [ fail "other" ] ]
  in
  let r = Interp.run p (World.round_robin ()) in
  Alcotest.(check int) "crash not in catalog" 0
    (List.length (Root_cause.observed catalog r))

let test_n_causes () =
  Alcotest.(check int) "catalog size" 2 (Root_cause.n_causes catalog)

(* ------------------------------------------------------------------ *)
(* fidelity *)

let test_df_same_cause () =
  let original = run_with 1 0 in
  let replay = run_with 1 0 in
  Alcotest.(check (float 1e-9)) "DF 1" 1.0
    (Fidelity.df ~catalog ~original ~replay:(Some replay))

let test_df_different_cause () =
  let original = run_with 1 0 in
  let replay = run_with 0 1 in
  Alcotest.(check (float 1e-9)) "DF 1/2" 0.5
    (Fidelity.df ~catalog ~original ~replay:(Some replay))

let test_df_failure_not_reproduced () =
  let original = run_with 1 0 in
  let replay = run_with 0 0 in
  Alcotest.(check (float 1e-9)) "DF 0" 0.0
    (Fidelity.df ~catalog ~original ~replay:(Some replay))

let test_df_no_replay () =
  let original = run_with 1 0 in
  Alcotest.(check (float 1e-9)) "DF 0 when inference fails" 0.0
    (Fidelity.df ~catalog ~original ~replay:None)

let test_explain_names_causes () =
  let original = run_with 1 0 in
  let replay = run_with 0 1 in
  let df, oc, rc = Fidelity.explain ~catalog ~original ~replay:(Some replay) in
  Alcotest.(check (float 1e-9)) "df" 0.5 df;
  Alcotest.(check (option string)) "original cause" (Some "cause-a") oc;
  Alcotest.(check (option string)) "replay cause" (Some "cause-b") rc

(* ------------------------------------------------------------------ *)
(* efficiency and utility *)

let outcome ?result ~attempts ~total_steps () =
  { Ddet_replay.Replayer.model = "test"; result; partial = None; attempts;
    total_steps; deadline_hit = false; incidents = [] }

let test_de_ratio () =
  let original = run_with 1 0 in
  let o = outcome ~result:original ~attempts:1 ~total_steps:(2 * original.Interp.steps) () in
  Alcotest.(check (float 1e-9)) "DE = orig/total" 0.5
    (Efficiency.de ~original ~outcome:o)

let test_de_zero_on_miss () =
  let original = run_with 1 0 in
  let o = outcome ~attempts:10 ~total_steps:1_000 () in
  Alcotest.(check (float 1e-9)) "DE 0 when not reproduced" 0.0
    (Efficiency.de ~original ~outcome:o)

let test_de_exceeds_one_for_short_synthesis () =
  let original = run_with 1 0 in
  let o = outcome ~result:original ~attempts:1
      ~total_steps:(original.Interp.steps / 2) ()
  in
  Alcotest.(check bool) "synthesis can beat the original" true
    (Efficiency.de ~original ~outcome:o > 1.0)

let test_du_product () =
  let original = run_with 1 0 in
  let replay = run_with 0 1 in
  let log = Log.make ~recorder:"t" ~entries:[] ~base_steps:original.Interp.steps ~failure:original.Interp.failure () in
  let o = outcome ~result:replay ~attempts:2 ~total_steps:(2 * original.Interp.steps) () in
  let a = Utility.assess ~catalog ~original ~log o in
  Alcotest.(check (float 1e-9)) "du = df * de" (a.Utility.df *. a.Utility.de)
    a.Utility.du;
  Alcotest.(check (float 1e-9)) "df is 1/2" 0.5 a.Utility.df;
  Alcotest.(check (float 1e-9)) "overhead 1.0 for empty log" 1.0 a.Utility.overhead

(* ------------------------------------------------------------------ *)
(* report *)

let test_table_alignment () =
  let t = Report.table ~headers:[ "a"; "bb" ] [ [ "xxx"; "y" ]; [ "z"; "wwww" ] ] in
  let lines = String.split_on_char '\n' t in
  Alcotest.(check int) "header + separator + 2 rows" 4 (List.length lines);
  match lines with
  | first :: _ ->
    Alcotest.(check bool) "columns padded" true
      (String.length first >= String.length "a    bb")
  | [] -> Alcotest.fail "empty table"

let test_table_ragged_rejected () =
  Alcotest.(check bool) "ragged row raises" true
    (try
       ignore (Report.table ~headers:[ "a"; "b" ] [ [ "only-one" ] ]);
       false
     with Invalid_argument _ -> true)

let test_fx_formats () =
  Alcotest.(check string) "fx" "1.50" (Report.fx 1.5);
  Alcotest.(check string) "fx4" "0.1235" (Report.fx4 0.12345)

let () =
  Alcotest.run "metrics"
    [
      ( "root-cause",
        [
          Alcotest.test_case "observed single" `Quick test_observed_single;
          Alcotest.test_case "observed both" `Quick test_observed_both;
          Alcotest.test_case "none when passing" `Quick test_observed_none_when_passing;
          Alcotest.test_case "primary order" `Quick test_primary_order;
          Alcotest.test_case "failure sig gates" `Quick test_failure_sig_gates;
          Alcotest.test_case "n causes" `Quick test_n_causes;
        ] );
      ( "fidelity",
        [
          Alcotest.test_case "same cause" `Quick test_df_same_cause;
          Alcotest.test_case "different cause" `Quick test_df_different_cause;
          Alcotest.test_case "failure lost" `Quick test_df_failure_not_reproduced;
          Alcotest.test_case "no replay" `Quick test_df_no_replay;
          Alcotest.test_case "explain" `Quick test_explain_names_causes;
        ] );
      ( "efficiency-utility",
        [
          Alcotest.test_case "de ratio" `Quick test_de_ratio;
          Alcotest.test_case "de zero on miss" `Quick test_de_zero_on_miss;
          Alcotest.test_case "de above one" `Quick test_de_exceeds_one_for_short_synthesis;
          Alcotest.test_case "du product" `Quick test_du_product;
        ] );
      ( "report",
        [
          Alcotest.test_case "alignment" `Quick test_table_alignment;
          Alcotest.test_case "ragged rejected" `Quick test_table_ragged_rejected;
          Alcotest.test_case "float formats" `Quick test_fx_formats;
        ] );
    ]
