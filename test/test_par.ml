(* Parallel search must be observationally identical to sequential search:
   byte-identical accepted traces, identical stats, at any jobs count —
   on schedule races, input enumeration, and fault-injected worlds. Also
   covers the DFS pruner: pruning shrinks the work, a clamped prefix digit
   is an exhausted branch. *)

open Mvm
open Mvm.Dsl
open Ddet
open Ddet_record
open Ddet_replay
open Ddet_apps

let jobs = 4

(* cap_domains off: these tests exercise the parallel pools themselves,
   which the cores cap would silently bypass on small CI boxes *)
let tuning = { Par_search.default_tuning with Par_search.cap_domains = false }

(* ------------------------------------------------------------------ *)
(* workloads *)

(* The adder race: two unsynchronised workers each increment a shared
   counter [iters] times. *)
let counter_prog ~iters =
  program ~name:"counter"
    ~regions:[ scalar "c" (Value.int 0) ]
    ~inputs:[] ~main:"main"
    [
      func "main" []
        [
          spawn "w" []; spawn "w" [];
          recv "d1" "done"; recv "d2" "done";
          output "out" (g "c");
        ];
      func "w" []
        [
          for_ "k" (i 0) (i iters)
            [ assign "t" (g "c"); store_g "c" (v "t" +: i 1) ];
          send "done" (i 1);
        ];
    ]

let spec_out n =
  Spec.make "sum" (fun r ->
      match Trace.outputs_on r.Interp.trace "out" with
      | [ Value.Vint k ] when k = n -> Ok ()
      | _ -> Error "lost-update")

let adder_prog =
  program ~name:"adder" ~regions:[]
    ~inputs:[ ("a", List.init 6 Value.int); ("b", List.init 6 Value.int) ]
    ~main:"main"
    [
      func "main" []
        [ input "a" "a"; input "b" "b"; output "sum" (v "a" +: v "b") ];
    ]

let find_failing_seed labeled spec =
  let rec scan s =
    if s > 500 then Alcotest.fail "no failing seed"
    else
      let r = Spec.apply spec (Interp.run labeled (World.random ~seed:s)) in
      if r.Interp.failure <> None then s else scan (s + 1)
  in
  scan 1

let failure_log labeled spec seed =
  let _, log =
    Recorder.record (Failure_recorder.create ()) labeled ~spec
      ~world:(World.random ~seed)
  in
  log

(* ------------------------------------------------------------------ *)
(* parity checks *)

let check_same_result name (a : Interp.result option) (b : Interp.result option)
    =
  match (a, b) with
  | Some r1, Some r2 ->
    Alcotest.(check bool)
      (name ^ ": byte-identical accepted trace")
      true
      (Trace.events r1.Interp.trace = Trace.events r2.Interp.trace);
    Alcotest.(check bool)
      (name ^ ": same outputs")
      true
      (r1.Interp.outputs = r2.Interp.outputs);
    Alcotest.(check bool)
      (name ^ ": same failure")
      true
      (r1.Interp.failure = r2.Interp.failure)
  | None, None -> ()
  | _ -> Alcotest.fail (name ^ ": one engine accepted, the other did not")

let check_same_outcome name (s : Search.outcome) (p : Search.outcome) =
  Alcotest.(check int) (name ^ ": attempts") s.Search.stats.Search.attempts
    p.Search.stats.Search.attempts;
  Alcotest.(check int)
    (name ^ ": total steps")
    s.Search.stats.Search.total_steps p.Search.stats.Search.total_steps;
  Alcotest.(check int) (name ^ ": pruned") s.Search.stats.Search.pruned
    p.Search.stats.Search.pruned;
  Alcotest.(check bool) (name ^ ": success") s.Search.stats.Search.success
    p.Search.stats.Search.success;
  check_same_result name s.Search.result p.Search.result

(* ------------------------------------------------------------------ *)
(* adder race (racy counter): restarts and DFS *)

let test_restarts_parity_counter () =
  let labeled = counter_prog ~iters:10 and spec = spec_out 20 in
  let seed = find_failing_seed labeled spec in
  let log = failure_log labeled spec seed in
  let accept = Constraints.failure_matches log in
  let budget =
    { Search.max_attempts = 200; max_steps_per_attempt = 5_000; base_seed = 1; deadline_s = None }
  in
  let make ~attempt = (World.random ~seed:attempt, None) in
  let s = Search.random_restarts budget ~make ~spec ~accept labeled in
  let p = Par_search.random_restarts ~tuning ~jobs budget ~make ~spec ~accept labeled in
  Alcotest.(check bool) "restarts reproduce the race" true
    s.Search.stats.Search.success;
  check_same_outcome "restarts/counter" s p

(* the min-work heuristic: an attempt estimated cheaper than a domain
   spawn forces the sequential path, and (by construction — it IS the
   sequential engine) the outcome is unchanged; a big estimate leaves
   the parallel path on, also outcome-unchanged by the parity law *)
let test_min_work_heuristic () =
  Alcotest.(check int) "tiny estimate forces sequential" 1
    (Par_search.effective_jobs ~tuning ~jobs:8 (Some 100));
  Alcotest.(check int) "big estimate keeps the fan-out" 8
    (Par_search.effective_jobs ~tuning ~jobs:8 (Some 1_000_000));
  Alcotest.(check int) "no estimate keeps the fan-out" 8
    (Par_search.effective_jobs ~tuning ~jobs:8 None);
  Alcotest.(check bool) "cores cap clamps to the machine" true
    (Par_search.effective_jobs ~jobs:64 None
    <= max 1 (Domain.recommended_domain_count ()));
  let labeled = counter_prog ~iters:10 and spec = spec_out 20 in
  let seed = find_failing_seed labeled spec in
  let log = failure_log labeled spec seed in
  let accept = Constraints.failure_matches log in
  let budget =
    { Search.max_attempts = 200; max_steps_per_attempt = 5_000; base_seed = 1; deadline_s = None }
  in
  let make ~attempt = (World.random ~seed:attempt, None) in
  let s = Search.random_restarts budget ~make ~spec ~accept labeled in
  let p =
    Par_search.random_restarts ~tuning ~jobs ~est_attempt_steps:100 budget ~make ~spec
      ~accept labeled
  in
  check_same_outcome "min-work/counter" s p

let test_dfs_parity_counter () =
  let labeled = counter_prog ~iters:4 and spec = spec_out 8 in
  let seed = find_failing_seed labeled spec in
  let log = failure_log labeled spec seed in
  let accept = Constraints.failure_matches log in
  let budget =
    { Search.max_attempts = 300; max_steps_per_attempt = 5_000; base_seed = 1; deadline_s = None }
  in
  let s = Search.dfs_schedules budget ~spec ~accept labeled in
  let p = Par_search.dfs_schedules ~tuning ~jobs budget ~spec ~accept labeled in
  Alcotest.(check bool) "dfs reproduces the race" true
    s.Search.stats.Search.success;
  Alcotest.(check bool) "pruning fired" true (s.Search.stats.Search.pruned > 0);
  check_same_outcome "dfs/counter" s p

let test_enumerate_inputs_parity_adder () =
  let spec = Spec.accept_all in
  let accept r =
    Trace.outputs_on r.Interp.trace "sum" = [ Value.int 7 ]
  in
  let budget =
    { Search.max_attempts = 50; max_steps_per_attempt = 1_000; base_seed = 1; deadline_s = None }
  in
  let s = Search.enumerate_inputs budget ~spec ~accept adder_prog in
  let p = Par_search.enumerate_inputs ~tuning ~jobs budget ~spec ~accept adder_prog in
  Alcotest.(check bool) "enumeration reaches sum=7" true
    s.Search.stats.Search.success;
  check_same_outcome "inputs/adder" s p

(* ------------------------------------------------------------------ *)
(* miniht issue-63 race, through the failure-determinism driver *)

let test_replayer_parity_miniht () =
  let app = Miniht.app () in
  let labeled = app.App.labeled and spec = app.App.spec in
  let seed = find_failing_seed labeled spec in
  let log = failure_log labeled spec seed in
  let budget =
    { Search.max_attempts = 300; max_steps_per_attempt = 5_000; base_seed = 1; deadline_s = None }
  in
  let s = Replayer.failure_det ~budget labeled ~spec log in
  let p = Replayer.failure_det ~budget ~jobs labeled ~spec log in
  Alcotest.(check int) "miniht: attempts" s.Replayer.attempts
    p.Replayer.attempts;
  Alcotest.(check int) "miniht: steps" s.Replayer.total_steps
    p.Replayer.total_steps;
  Alcotest.(check bool) "miniht: reproduced" true
    (s.Replayer.result <> None);
  check_same_result "miniht" s.Replayer.result p.Replayer.result

(* ------------------------------------------------------------------ *)
(* a fault-injected world, through the whole Session pipeline *)

let drop_plan =
  Fault.make ~seed:11
    [
      Fault.drop ~prob:0.15 "ack_0";
      Fault.drop ~prob:0.15 "ack_1";
      Fault.drop ~prob:0.12 "repl";
    ]

let test_session_parity_faulted_cloudstore () =
  let cloud = Cloudstore.app () in
  match Workload.find_failing_seed ~faults:drop_plan cloud with
  | None -> Alcotest.fail "no failing cloudstore seed under the drop plan"
  | Some (seed, _) ->
    let outcome_at jobs =
      let config = { Config.default with Config.jobs } in
      let prepared = Session.prepare ~config Model.Failure_det cloud in
      let _, log = Session.record ~faults:drop_plan prepared ~seed in
      Session.replay prepared log
    in
    let s = outcome_at 1 and p = outcome_at jobs in
    Alcotest.(check int) "faulted: attempts" s.Replayer.attempts
      p.Replayer.attempts;
    Alcotest.(check int) "faulted: steps" s.Replayer.total_steps
      p.Replayer.total_steps;
    check_same_result "faulted" s.Replayer.result p.Replayer.result

(* ------------------------------------------------------------------ *)
(* seed scans *)

let test_first_success_parity () =
  let f n = if n * n > 50 then Some (n * n) else None in
  let s = Par_search.first_success ~from:0 ~count:20 ~f () in
  let p = Par_search.first_success ~tuning ~jobs ~from:0 ~count:20 ~f () in
  Alcotest.(check (option (pair int int))) "lowest index wins" (Some (8, 64)) s;
  Alcotest.(check (option (pair int int))) "parallel agrees" s p;
  let none = Par_search.first_success ~tuning ~jobs ~from:0 ~count:5 ~f () in
  Alcotest.(check (option (pair int int))) "exhausted scan" None none

let test_find_failing_seed_parity () =
  let app = Miniht.app () in
  let s = Workload.find_failing_seed app in
  let p = Workload.find_failing_seed ~jobs app in
  match (s, p) with
  | Some (s1, r1), Some (s2, r2) ->
    Alcotest.(check int) "same seed" s1 s2;
    Alcotest.(check bool) "same run" true
      (Trace.events r1.Interp.trace = Trace.events r2.Interp.trace)
  | None, None -> Alcotest.fail "miniht should have a failing seed"
  | _ -> Alcotest.fail "scan outcomes disagree"

(* ------------------------------------------------------------------ *)
(* pruning mechanics *)

let test_pruning_shrinks_dfs () =
  let labeled = counter_prog ~iters:4 and spec = spec_out 8 in
  let seed = find_failing_seed labeled spec in
  let log = failure_log labeled spec seed in
  let accept = Constraints.failure_matches log in
  let budget =
    { Search.max_attempts = 300; max_steps_per_attempt = 5_000; base_seed = 1; deadline_s = None }
  in
  let pruned = Search.dfs_schedules budget ~spec ~accept labeled in
  let plain = Search.dfs_schedules ~prune:false budget ~spec ~accept labeled in
  Alcotest.(check bool) "both reproduce" true
    (pruned.Search.stats.Search.success && plain.Search.stats.Search.success);
  Alcotest.(check bool) "subtrees were pruned" true
    (pruned.Search.stats.Search.pruned > 0);
  Alcotest.(check bool) "pruning never needs more attempts" true
    (pruned.Search.stats.Search.attempts <= plain.Search.stats.Search.attempts);
  Alcotest.(check bool) "pruning never burns more steps" true
    (pruned.Search.stats.Search.total_steps
    <= plain.Search.stats.Search.total_steps)

let test_clamped_digit_is_exhausted () =
  let labeled = counter_prog ~iters:2 in
  (* digit 99 can never be a real branch index: the probe must stop at the
     clamped decision and report the true fan-out so the odometer carries
     past the dead branch instead of re-running its clamped duplicate *)
  let probe =
    Engine.exec_schedule ~budget:5_000 ~prefix:[| 99 |] labeled
  in
  (match probe.Engine.early with
  | Engine.Early_clamped -> ()
  | Engine.Ran | Engine.Early_pruned ->
    Alcotest.fail "out-of-range digit should clamp");
  (match Engine.classify probe with
  | Engine.Skipped _ -> ()
  | Engine.Attempt _ -> Alcotest.fail "clamped probe must not be an attempt");
  (match probe.Engine.sizes with
  | [ n ] -> Alcotest.(check bool) "fan-out recorded" true (n >= 1)
  | _ -> Alcotest.fail "clamped probe should report exactly the clamped digit");
  Alcotest.(check bool) "odometer treats the branch as exhausted" true
    (Engine.advance [| 99 |] probe.Engine.sizes = None)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "par_search"
    [
      ( "parity",
        [
          Alcotest.test_case "min-work heuristic" `Quick
            test_min_work_heuristic;
          Alcotest.test_case "restarts on the adder race" `Quick
            test_restarts_parity_counter;
          Alcotest.test_case "dfs on the adder race" `Quick
            test_dfs_parity_counter;
          Alcotest.test_case "input enumeration on adder" `Quick
            test_enumerate_inputs_parity_adder;
          Alcotest.test_case "failure-det driver on miniht" `Slow
            test_replayer_parity_miniht;
          Alcotest.test_case "session on fault-injected cloudstore" `Slow
            test_session_parity_faulted_cloudstore;
          Alcotest.test_case "first_success scan" `Quick
            test_first_success_parity;
          Alcotest.test_case "find_failing_seed scan" `Quick
            test_find_failing_seed_parity;
        ] );
      ( "pruning",
        [
          Alcotest.test_case "pruning shrinks the dfs" `Quick
            test_pruning_shrinks_dfs;
          Alcotest.test_case "clamped digit is exhausted" `Quick
            test_clamped_digit_is_exhausted;
        ] );
    ]
