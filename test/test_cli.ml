(* End-to-end check of the ddreplay exit-code contract by forking the
   real binary: 0 reproduced, 3 degraded to a partial candidate, 4
   salvaged-log damage, 5 deadline/budget exhausted — plus the
   checkpoint/resume round-trip through the CLI flags.

   Usage: test_cli.exe <path-to-ddreplay.exe> (wired by the
   cli-exit-codes rule in test/dune). *)

open Ddet
open Ddet_apps

let ddreplay = ref "ddreplay"

let run fmt =
  Printf.ksprintf
    (fun args ->
      Sys.command
        (Printf.sprintf "%s %s > /dev/null 2>&1" (Filename.quote !ddreplay)
           args))
    fmt

let check = Alcotest.(check int)

(* An app + seed whose failure-determinism replay reproduces but needs
   at least two attempts under the CLI's default budget: truncating the
   budget then leaves a partial candidate (exit 3), and one fewer
   attempt than the hit is a meaningful kill point for --resume. The
   probe runs the same Session code path the CLI runs, so the attempt
   count transfers exactly. *)
let scenario =
  lazy
    (let budget = Config.default.Config.budget in
     let try_app (app : App.t) =
       match Workload.find_failing_seed app with
       | None -> None
       | Some (seed, _) ->
         let prepared = Session.prepare Model.Failure_det app in
         let _, log = Session.record prepared ~seed in
         let o = Session.replay ~budget prepared log in
         if
           o.Ddet_replay.Replayer.result <> None
           && o.Ddet_replay.Replayer.attempts >= 2
         then Some (app, seed, o.Ddet_replay.Replayer.attempts)
         else None
     in
     match
       List.find_map try_app [ Miniht.app (); Adder.app (); Msg_server.app () ]
     with
     | Some s -> s
     | None -> Alcotest.fail "no CLI scenario with a multi-attempt replay")

let record_tmp (app : App.t) seed =
  let log = Filename.temp_file "ddet_cli" ".log" in
  check "record saves the log" 0
    (run "record -a %s -m failure -s %d -o %s" app.App.name seed
       (Filename.quote log));
  log

let test_reproduced () =
  let app, seed, _ = Lazy.force scenario in
  let log = record_tmp app seed in
  check "replay reproduces: exit 0" 0
    (run "replay -a %s -m failure -i %s" app.App.name (Filename.quote log));
  Sys.remove log

let test_partial () =
  let app, seed, attempts = Lazy.force scenario in
  let log = record_tmp app seed in
  check "truncated budget degrades to partial: exit 3" 3
    (run "replay -a %s -m failure -i %s --attempts %d" app.App.name
       (Filename.quote log) (attempts - 1));
  Sys.remove log

let test_salvaged () =
  let app, seed, _ = Lazy.force scenario in
  let log = record_tmp app seed in
  let whole = In_channel.with_open_bin log In_channel.input_all in
  let oc = open_out_bin log in
  output_string oc (String.sub whole 0 (String.length whole - 12));
  close_out oc;
  check "strict load refuses the damaged log: exit 1" 1
    (run "replay -a %s -m failure -i %s" app.App.name (Filename.quote log));
  check "salvaged replay reports damage: exit 4" 4
    (run "replay -a %s -m failure -i %s --salvage" app.App.name
       (Filename.quote log));
  Sys.remove log

let test_deadline () =
  let app, seed, _ = Lazy.force scenario in
  let log = record_tmp app seed in
  check "zero deadline, nothing to show: exit 5" 5
    (run "replay -a %s -m failure -i %s --deadline 0" app.App.name
       (Filename.quote log));
  Sys.remove log

let test_find_exhausted () =
  check "seed scan exhausts its range: exit 5" 5
    (run "find -a adder --cause no-such-cause")

let test_checkpoint_resume () =
  let app, seed, attempts = Lazy.force scenario in
  let log = record_tmp app seed in
  let ckpt = Filename.temp_file "ddet_cli" ".ckpt" in
  check "killed search leaves a checkpoint: exit 3" 3
    (run "replay -a %s -m failure -i %s --attempts %d --checkpoint %s"
       app.App.name (Filename.quote log) (attempts - 1) (Filename.quote ckpt));
  check "resumed search completes the hit: exit 0" 0
    (run "replay -a %s -m failure -i %s --resume %s" app.App.name
       (Filename.quote log) (Filename.quote ckpt));
  check "a torn resume file is refused: exit 1" 1
    (let oc = open_out_bin ckpt in
     output_string oc "ddet-ckpt v1\ngarbage\n";
     close_out oc;
     run "replay -a %s -m failure -i %s --resume %s" app.App.name
       (Filename.quote log) (Filename.quote ckpt));
  Sys.remove ckpt;
  Sys.remove log

let test_segmented_roundtrip () =
  let app, seed, _ = Lazy.force scenario in
  let base = Filename.temp_file "ddet_cli" ".seg" in
  Sys.remove base;
  check "segmented record" 0
    (run "record -a %s -m failure -s %d -o %s --segments 4" app.App.name seed
       (Filename.quote base));
  check "replay auto-detects the segment set: exit 0" 0
    (run "replay -a %s -m failure -i %s" app.App.name (Filename.quote base));
  List.iter
    (fun suffix ->
      let p = base ^ suffix in
      if Sys.file_exists p then Sys.remove p)
    ([ ".header"; ".manifest" ]
    @ List.init 20 (Printf.sprintf ".%04d.seg"))

let () =
  if Array.length Sys.argv < 2 then begin
    prerr_endline "usage: test_cli.exe <path-to-ddreplay.exe>";
    exit 2
  end;
  (ddreplay :=
     let p = Sys.argv.(1) in
     if Filename.is_relative p then Filename.concat (Sys.getcwd ()) p else p);
  (* alcotest parses argv itself; hide ours *)
  let argv = [| Sys.argv.(0) |] in
  Alcotest.run ~argv "cli"
    [
      ( "exit-codes",
        [
          Alcotest.test_case "0: reproduced" `Quick test_reproduced;
          Alcotest.test_case "3: degraded to partial" `Quick test_partial;
          Alcotest.test_case "4: salvaged damage" `Quick test_salvaged;
          Alcotest.test_case "5: deadline exhausted" `Quick test_deadline;
          Alcotest.test_case "5: scan exhausted" `Quick test_find_exhausted;
        ] );
      ( "crash-flags",
        [
          Alcotest.test_case "checkpoint then resume" `Quick
            test_checkpoint_resume;
          Alcotest.test_case "segmented record and replay" `Quick
            test_segmented_roundtrip;
        ] );
    ]
