(* End-to-end check of the ddreplay exit-code contract by forking the
   real binary: 0 reproduced, 3 degraded to a partial candidate, 4
   salvaged-log damage, 5 deadline/budget exhausted — plus the
   checkpoint/resume round-trip through the CLI flags.

   Usage: test_cli.exe <path-to-ddreplay.exe> (wired by the
   cli-exit-codes rule in test/dune). *)

open Ddet
open Ddet_apps

let ddreplay = ref "ddreplay"

let run fmt =
  Printf.ksprintf
    (fun args ->
      Sys.command
        (Printf.sprintf "%s %s > /dev/null 2>&1" (Filename.quote !ddreplay)
           args))
    fmt

let check = Alcotest.(check int)

(* An app + seed whose failure-determinism replay reproduces but needs
   at least two attempts under the CLI's default budget: truncating the
   budget then leaves a partial candidate (exit 3), and one fewer
   attempt than the hit is a meaningful kill point for --resume. The
   probe runs the same Session code path the CLI runs, so the attempt
   count transfers exactly. *)
let scenario =
  lazy
    (let budget = Config.default.Config.budget in
     let try_app (app : App.t) =
       match Workload.find_failing_seed app with
       | None -> None
       | Some (seed, _) ->
         let prepared = Session.prepare Model.Failure_det app in
         let _, log = Session.record prepared ~seed in
         let o = Session.replay ~budget prepared log in
         if
           o.Ddet_replay.Replayer.result <> None
           && o.Ddet_replay.Replayer.attempts >= 2
         then Some (app, seed, o.Ddet_replay.Replayer.attempts)
         else None
     in
     match
       List.find_map try_app [ Miniht.app (); Adder.app (); Msg_server.app () ]
     with
     | Some s -> s
     | None -> Alcotest.fail "no CLI scenario with a multi-attempt replay")

let record_tmp (app : App.t) seed =
  let log = Filename.temp_file "ddet_cli" ".log" in
  check "record saves the log" 0
    (run "record -a %s -m failure -s %d -o %s" app.App.name seed
       (Filename.quote log));
  log

let test_reproduced () =
  let app, seed, _ = Lazy.force scenario in
  let log = record_tmp app seed in
  check "replay reproduces: exit 0" 0
    (run "replay -a %s -m failure -i %s" app.App.name (Filename.quote log));
  Sys.remove log

let test_partial () =
  let app, seed, attempts = Lazy.force scenario in
  let log = record_tmp app seed in
  check "truncated budget degrades to partial: exit 3" 3
    (run "replay -a %s -m failure -i %s --attempts %d" app.App.name
       (Filename.quote log) (attempts - 1));
  Sys.remove log

let test_salvaged () =
  let app, seed, _ = Lazy.force scenario in
  let log = record_tmp app seed in
  let whole = In_channel.with_open_bin log In_channel.input_all in
  let oc = open_out_bin log in
  output_string oc (String.sub whole 0 (String.length whole - 12));
  close_out oc;
  check "strict load refuses the damaged log: exit 1" 1
    (run "replay -a %s -m failure -i %s" app.App.name (Filename.quote log));
  check "salvaged replay reports damage: exit 4" 4
    (run "replay -a %s -m failure -i %s --salvage" app.App.name
       (Filename.quote log));
  Sys.remove log

let test_deadline () =
  let app, seed, _ = Lazy.force scenario in
  let log = record_tmp app seed in
  check "zero deadline, nothing to show: exit 5" 5
    (run "replay -a %s -m failure -i %s --deadline 0" app.App.name
       (Filename.quote log));
  Sys.remove log

let test_find_exhausted () =
  check "seed scan exhausts its range: exit 5" 5
    (run "find -a adder --cause no-such-cause")

let test_checkpoint_resume () =
  let app, seed, attempts = Lazy.force scenario in
  let log = record_tmp app seed in
  let ckpt = Filename.temp_file "ddet_cli" ".ckpt" in
  check "killed search leaves a checkpoint: exit 3" 3
    (run "replay -a %s -m failure -i %s --attempts %d --checkpoint %s"
       app.App.name (Filename.quote log) (attempts - 1) (Filename.quote ckpt));
  check "resumed search completes the hit: exit 0" 0
    (run "replay -a %s -m failure -i %s --resume %s" app.App.name
       (Filename.quote log) (Filename.quote ckpt));
  check "a torn resume file is refused: exit 1" 1
    (let oc = open_out_bin ckpt in
     output_string oc "ddet-ckpt v1\ngarbage\n";
     close_out oc;
     run "replay -a %s -m failure -i %s --resume %s" app.App.name
       (Filename.quote log) (Filename.quote ckpt));
  Sys.remove ckpt;
  Sys.remove log

let test_segmented_roundtrip () =
  let app, seed, _ = Lazy.force scenario in
  let base = Filename.temp_file "ddet_cli" ".seg" in
  Sys.remove base;
  check "segmented record" 0
    (run "record -a %s -m failure -s %d -o %s --segments 4" app.App.name seed
       (Filename.quote base));
  check "replay auto-detects the segment set: exit 0" 0
    (run "replay -a %s -m failure -i %s" app.App.name (Filename.quote base));
  List.iter
    (fun suffix ->
      let p = base ^ suffix in
      if Sys.file_exists p then Sys.remove p)
    ([ ".header"; ".manifest" ]
    @ List.init 20 (Printf.sprintf ".%04d.seg"))

(* static analysis subcommand: report shape and the lint exit contract *)

let run_out fmt =
  Printf.ksprintf
    (fun args ->
      let out = Filename.temp_file "ddet_cli" ".out" in
      let code =
        Sys.command
          (Printf.sprintf "%s %s > %s 2>&1" (Filename.quote !ddreplay) args
             (Filename.quote out))
      in
      let ic = open_in_bin out in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Sys.remove out;
      (code, text))
    fmt

let contains text needle =
  let n = String.length needle and h = String.length text in
  let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
  go 0

let test_analyze_clean () =
  let code, text = run_out "analyze -a cloudstore" in
  check "clean app: exit 0" 0 code;
  List.iter
    (fun section ->
      Alcotest.(check bool)
        (Printf.sprintf "report has %S" section)
        true (contains text section))
    [ "race candidates (0)"; "plane map"; "lint"; "ground truth control plane" ]

let test_analyze_races () =
  let code, text = run_out "analyze -a miniht" in
  check "lint-clean app with races: exit 0" 0 code;
  Alcotest.(check bool) "reports the migration race" true
    (contains text "race owner_0");
  Alcotest.(check bool) "lists suspect sites" true
    (contains text "suspect sites")

let test_analyze_lint_failing () =
  let code, text = run_out "analyze --demo" in
  check "lint errors: exit 1" 1 code;
  List.iter
    (fun rule ->
      Alcotest.(check bool)
        (Printf.sprintf "demo fires %S" rule)
        true (contains text rule))
    [ "double-lock"; "index-range"; "atomic-blocking"; "lock-imbalance";
      "unreachable" ]

let test_analyze_no_target () =
  check "no app and no demo: exit 1" 1 (run "analyze")

let () =
  if Array.length Sys.argv < 2 then begin
    prerr_endline "usage: test_cli.exe <path-to-ddreplay.exe>";
    exit 2
  end;
  (ddreplay :=
     let p = Sys.argv.(1) in
     if Filename.is_relative p then Filename.concat (Sys.getcwd ()) p else p);
  (* alcotest parses argv itself; hide ours *)
  let argv = [| Sys.argv.(0) |] in
  Alcotest.run ~argv "cli"
    [
      ( "exit-codes",
        [
          Alcotest.test_case "0: reproduced" `Quick test_reproduced;
          Alcotest.test_case "3: degraded to partial" `Quick test_partial;
          Alcotest.test_case "4: salvaged damage" `Quick test_salvaged;
          Alcotest.test_case "5: deadline exhausted" `Quick test_deadline;
          Alcotest.test_case "5: scan exhausted" `Quick test_find_exhausted;
        ] );
      ( "crash-flags",
        [
          Alcotest.test_case "checkpoint then resume" `Quick
            test_checkpoint_resume;
          Alcotest.test_case "segmented record and replay" `Quick
            test_segmented_roundtrip;
        ] );
      ( "analyze",
        [
          Alcotest.test_case "clean report shape" `Quick test_analyze_clean;
          Alcotest.test_case "race candidates on miniht" `Quick
            test_analyze_races;
          Alcotest.test_case "lint errors exit nonzero" `Quick
            test_analyze_lint_failing;
          Alcotest.test_case "missing target is an error" `Quick
            test_analyze_no_target;
        ] );
    ]
