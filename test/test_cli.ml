(* End-to-end check of the ddreplay exit-code contract by forking the
   real binary: 0 reproduced, 3 degraded to a partial candidate, 4
   salvaged-log damage, 5 deadline/budget exhausted — plus the
   checkpoint/resume round-trip through the CLI flags.

   Usage: test_cli.exe <path-to-ddreplay.exe> (wired by the
   cli-exit-codes rule in test/dune). *)

open Ddet
open Ddet_apps

let ddreplay = ref "ddreplay"

let run fmt =
  Printf.ksprintf
    (fun args ->
      Sys.command
        (Printf.sprintf "%s %s > /dev/null 2>&1" (Filename.quote !ddreplay)
           args))
    fmt

let check = Alcotest.(check int)

(* An app + seed whose failure-determinism replay reproduces but needs
   at least two attempts under the CLI's default budget: truncating the
   budget then leaves a partial candidate (exit 3), and one fewer
   attempt than the hit is a meaningful kill point for --resume. The
   probe runs the same Session code path the CLI runs, so the attempt
   count transfers exactly. *)
let scenario =
  lazy
    (let budget = Config.default.Config.budget in
     let try_app (app : App.t) =
       match Workload.find_failing_seed app with
       | None -> None
       | Some (seed, _) ->
         let prepared = Session.prepare Model.Failure_det app in
         let _, log = Session.record prepared ~seed in
         let o = Session.replay ~budget prepared log in
         if
           o.Ddet_replay.Replayer.result <> None
           && o.Ddet_replay.Replayer.attempts >= 2
         then Some (app, seed, o.Ddet_replay.Replayer.attempts)
         else None
     in
     match
       List.find_map try_app [ Miniht.app (); Adder.app (); Msg_server.app () ]
     with
     | Some s -> s
     | None -> Alcotest.fail "no CLI scenario with a multi-attempt replay")

let record_tmp (app : App.t) seed =
  let log = Filename.temp_file "ddet_cli" ".log" in
  check "record saves the log" 0
    (run "record -a %s -m failure -s %d -o %s" app.App.name seed
       (Filename.quote log));
  log

let test_reproduced () =
  let app, seed, _ = Lazy.force scenario in
  let log = record_tmp app seed in
  check "replay reproduces: exit 0" 0
    (run "replay -a %s -m failure -i %s" app.App.name (Filename.quote log));
  Sys.remove log

let test_partial () =
  let app, seed, attempts = Lazy.force scenario in
  let log = record_tmp app seed in
  check "truncated budget degrades to partial: exit 3" 3
    (run "replay -a %s -m failure -i %s --attempts %d" app.App.name
       (Filename.quote log) (attempts - 1));
  Sys.remove log

let test_salvaged () =
  let app, seed, _ = Lazy.force scenario in
  let log = record_tmp app seed in
  let whole = In_channel.with_open_bin log In_channel.input_all in
  let oc = open_out_bin log in
  output_string oc (String.sub whole 0 (String.length whole - 12));
  close_out oc;
  check "strict load refuses the damaged log: exit 1" 1
    (run "replay -a %s -m failure -i %s" app.App.name (Filename.quote log));
  check "salvaged replay reports damage: exit 4" 4
    (run "replay -a %s -m failure -i %s --salvage" app.App.name
       (Filename.quote log));
  Sys.remove log

let test_deadline () =
  let app, seed, _ = Lazy.force scenario in
  let log = record_tmp app seed in
  check "zero deadline, nothing to show: exit 5" 5
    (run "replay -a %s -m failure -i %s --deadline 0" app.App.name
       (Filename.quote log));
  Sys.remove log

let test_find_exhausted () =
  check "seed scan exhausts its range: exit 5" 5
    (run "find -a adder --cause no-such-cause")

let test_checkpoint_resume () =
  let app, seed, attempts = Lazy.force scenario in
  let log = record_tmp app seed in
  let ckpt = Filename.temp_file "ddet_cli" ".ckpt" in
  check "killed search leaves a checkpoint: exit 3" 3
    (run "replay -a %s -m failure -i %s --attempts %d --checkpoint %s"
       app.App.name (Filename.quote log) (attempts - 1) (Filename.quote ckpt));
  check "resumed search completes the hit: exit 0" 0
    (run "replay -a %s -m failure -i %s --resume %s" app.App.name
       (Filename.quote log) (Filename.quote ckpt));
  check "a torn resume file is refused: exit 1" 1
    (let oc = open_out_bin ckpt in
     output_string oc "ddet-ckpt v1\ngarbage\n";
     close_out oc;
     run "replay -a %s -m failure -i %s --resume %s" app.App.name
       (Filename.quote log) (Filename.quote ckpt));
  Sys.remove ckpt;
  Sys.remove log

let test_segmented_roundtrip () =
  let app, seed, _ = Lazy.force scenario in
  let base = Filename.temp_file "ddet_cli" ".seg" in
  Sys.remove base;
  check "segmented record" 0
    (run "record -a %s -m failure -s %d -o %s --segments 4" app.App.name seed
       (Filename.quote base));
  check "replay auto-detects the segment set: exit 0" 0
    (run "replay -a %s -m failure -i %s" app.App.name (Filename.quote base));
  List.iter
    (fun suffix ->
      let p = base ^ suffix in
      if Sys.file_exists p then Sys.remove p)
    ([ ".header"; ".manifest" ]
    @ List.init 20 (Printf.sprintf ".%04d.seg"))

let run_out fmt =
  Printf.ksprintf
    (fun args ->
      let out = Filename.temp_file "ddet_cli" ".out" in
      let code =
        Sys.command
          (Printf.sprintf "%s %s > %s 2>&1" (Filename.quote !ddreplay) args
             (Filename.quote out))
      in
      let ic = open_in_bin out in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Sys.remove out;
      (code, text))
    fmt

let contains text needle =
  let n = String.length needle and h = String.length text in
  let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
  go 0

(* sharded (per-node) recordings: the distributed-evidence exit contract.
   Reproducing from partial shard evidence is a success (0) — missing
   evidence honestly searched around, reported as degraded DF; budget
   exhaustion with a best partial candidate is 3; an all-shards-lost set
   is 4 (no evidence at all); --lose-node against a monolithic log is a
   usage error (1). *)

let dist_plan = "seed=5,partition:server+p0|p1:10-80"

let record_sharded seed =
  let base = Filename.temp_file "ddet_cli" ".dist" in
  Sys.remove base;
  check "sharded record saves shards + manifest" 0
    (run "record -a msg_server -m perfect -s %d -o %s --shards --faults %s"
       seed (Filename.quote base) (Filename.quote dist_plan));
  base

let rm_sharded base =
  List.iter
    (fun suffix ->
      let p = base ^ suffix in
      if Sys.file_exists p then Sys.remove p)
    [ ".causal"; ".server.shard"; ".p0.shard"; ".p1.shard" ]

(* parse "after N attempt(s)" from a replay's stdout *)
let attempts_of text =
  let rec find i =
    if i + 6 > String.length text then None
    else if String.sub text i 6 = "after " then
      let j = ref (i + 6) in
      let n = ref 0 in
      let got = ref false in
      while
        !j < String.length text && text.[!j] >= '0' && text.[!j] <= '9'
      do
        n := (10 * !n) + (Char.code text.[!j] - Char.code '0');
        got := true;
        incr j
      done;
      if !got then Some !n else find (i + 1)
    else find (i + 1)
  in
  find 0

(* Scan (seed, lost node) combinations for one where the reproduction
   needs >= 2 attempts: truncating the budget below that count then
   leaves a best-partial candidate — the deterministic exit-3 case. *)
let dist_scenario =
  lazy
    (let rec scan seed =
       if seed > 12 then Alcotest.fail "no multi-attempt sharded scenario"
       else
         let base = record_sharded seed in
         let hit =
           List.find_map
             (fun node ->
               let code, text =
                 run_out "replay -a msg_server -m perfect -i %s --lose-node %s"
                   (Filename.quote base) node
               in
               match attempts_of text with
               | Some n when code = 0 && n >= 2 -> Some (node, n)
               | _ -> None)
             [ "server"; "p0"; "p1" ]
         in
         match hit with
         | Some (node, n) -> (base, node, n)
         | None ->
           rm_sharded base;
           scan (seed + 1)
     in
     scan 1)

let test_sharded_reproduced () =
  let base, node, _ = Lazy.force dist_scenario in
  check "complete shard set auto-detected: exit 0" 0
    (run "replay -a msg_server -m perfect -i %s" (Filename.quote base));
  check "reproduction from partial evidence: exit 0" 0
    (run "replay -a msg_server -m perfect -i %s --lose-node %s"
       (Filename.quote base) node)

let test_sharded_partial () =
  let base, node, attempts = Lazy.force dist_scenario in
  check "budget below the hit leaves a best partial: exit 3" 3
    (run "replay -a msg_server -m perfect -i %s --lose-node %s --attempts %d"
       (Filename.quote base) node (attempts - 1))

let test_sharded_all_lost () =
  let base, _, _ = Lazy.force dist_scenario in
  let code, text =
    run_out
      "replay -a msg_server -m perfect -i %s --lose-node server --lose-node \
       p0 --lose-node p1"
      (Filename.quote base)
  in
  check "every shard lost, no evidence: exit 4" 4 code;
  Alcotest.(check bool) "says so" true (contains text "no evidence")

let test_lose_node_needs_shards () =
  let app, seed, _ = Lazy.force scenario in
  let log = record_tmp app seed in
  check "--lose-node on a monolithic log: exit 1" 1
    (run "replay -a %s -m failure -i %s --lose-node p1" app.App.name
       (Filename.quote log));
  Sys.remove log

(* --io-faults rejects unknown clause names with the valid list, at Arg
   conversion time (cmdliner exit 124) *)
let test_io_faults_unknown_clause () =
  let code, text =
    run_out "record -a adder -m failure -s 1 -o /dev/null --io-faults %s"
      (Filename.quote "seed=1,fliprandom:3")
  in
  check "unknown io-fault clause: cmdliner usage error" 124 code;
  Alcotest.(check bool) "names the offender" true
    (contains text "unknown io-fault clause \"fliprandom\"");
  Alcotest.(check bool) "lists valid clauses" true
    (contains text "torn:OP[:KEEP]")

(* static analysis subcommand: report shape and the lint exit contract *)

let test_analyze_clean () =
  let code, text = run_out "analyze -a cloudstore" in
  check "clean app: exit 0" 0 code;
  List.iter
    (fun section ->
      Alcotest.(check bool)
        (Printf.sprintf "report has %S" section)
        true (contains text section))
    [ "race candidates (0)"; "plane map"; "lint"; "ground truth control plane" ]

let test_analyze_races () =
  let code, text = run_out "analyze -a miniht" in
  check "lint-clean app with races: exit 0" 0 code;
  Alcotest.(check bool) "reports the migration race" true
    (contains text "race owner_0");
  Alcotest.(check bool) "lists suspect sites" true
    (contains text "suspect sites")

let test_analyze_lint_failing () =
  let code, text = run_out "analyze --demo" in
  check "lint errors: exit 1" 1 code;
  List.iter
    (fun rule ->
      Alcotest.(check bool)
        (Printf.sprintf "demo fires %S" rule)
        true (contains text rule))
    [ "double-lock"; "index-range"; "atomic-blocking"; "lock-imbalance";
      "unreachable" ]

let test_analyze_no_target () =
  check "no app and no demo: exit 1" 1 (run "analyze")

(* --json emits the machine-readable report; the single-node adder's is
   small enough to pin byte-for-byte *)
let test_analyze_json_golden () =
  let code, text = run_out "analyze -a adder --json" in
  check "json report: exit 0" 0 code;
  Alcotest.(check string) "golden adder json"
    ("{\"program\":\"adder\",\"threshold_bytes\":32,\"races\":[],\
      \"suspect_sids\":[],\"planes\":[{\"fname\":\"main\",\
      \"plane\":\"control\",\"weight\":8}],\"lints\":[],\"nodes\":[]}\n")
    text

(* --nodes turns on the cross-node layer: the demo's three-node wait
   cycle is a static deadlock (exit 1), the shipped topology is clean *)
let test_analyze_nodes_deadlock () =
  let code, text = run_out "analyze --demo --nodes" in
  check "static cross-node deadlock: exit 1" 1 code;
  Alcotest.(check bool) "names the rule" true (contains text "comm-deadlock");
  Alcotest.(check bool) "names the wedged channel" true
    (contains text "blocks on ping")

let test_analyze_nodes_clean () =
  let code, text = run_out "analyze -a msg_server --nodes" in
  check "msg_server topology clean: exit 0" 0 code;
  Alcotest.(check bool) "per-node sections" true
    (contains text "p0 (tids 1):");
  Alcotest.(check bool) "shard priority ranked by suspects" true
    (contains text "shard priority: p0 > p1 > server")

let test_analyze_nodes_json () =
  let code, text = run_out "analyze -a msg_server --nodes --json" in
  check "nodes json: exit 0" 0 code;
  Alcotest.(check bool) "node views present" true
    (contains text "\"nodes\":[{\"node\":\"server\"")

let test_analyze_nodes_no_map () =
  let code, text = run_out "analyze -a adder --nodes" in
  check "--nodes without a node map: exit 1" 1 code;
  Alcotest.(check bool) "explains the miss" true (contains text "no node map")

(* ------------------------------------------------------------------ *)
(* report: the session profile. With --mask every wall-time value is
   elided, so the adder demo's JSON is fully deterministic — pin it
   byte-for-byte, exactly like the analyze golden. *)

let report_golden =
  String.concat "\n"
    [
      "{\"schema\":1,\"app\":\"adder\",\"model\":\"value\",\
       \"reproduced\":true,\"attempts\":1,";
      " \"spans\":[";
      "  {\"name\":\"session.assess\",\"calls\":1,\"total_ns\":null},";
      "  {\"name\":\"session.record\",\"calls\":1,\"total_ns\":null},";
      "  {\"name\":\"session.replay\",\"calls\":1,\"total_ns\":null}],";
      " \"counters\":[";
      "  {\"name\":\"govern.dropped\",\"value\":0},";
      "  {\"name\":\"govern.transitions\",\"value\":0},";
      "  {\"name\":\"oracle.cold_pins\",\"value\":0},";
      "  {\"name\":\"oracle.cursor_stalls\",\"value\":0},";
      "  {\"name\":\"oracle.steer_hot_picks\",\"value\":0},";
      "  {\"name\":\"record.entries.book\",\"value\":0},";
      "  {\"name\":\"record.entries.sched\",\"value\":0},";
      "  {\"name\":\"record.entries.sync\",\"value\":0},";
      "  {\"name\":\"record.entries.value\",\"value\":2},";
      "  {\"name\":\"search.attempts\",\"value\":1},";
      "  {\"name\":\"search.deadline_hits\",\"value\":0},";
      "  {\"name\":\"search.incidents\",\"value\":0},";
      "  {\"name\":\"search.pruned\",\"value\":0},";
      "  {\"name\":\"search.steps\",\"value\":5},";
      "  {\"name\":\"stitch.edges_dropped\",\"value\":0},";
      "  {\"name\":\"stitch.edges_enforced\",\"value\":0},";
      "  {\"name\":\"store.give_ups\",\"value\":0},";
      "  {\"name\":\"store.retries\",\"value\":0}],";
      " \"events\":7,\"dropped\":0}";
      "";
    ]

let test_report_json_golden () =
  let code, text = run_out "report -a adder -m value --json --mask" in
  check "report json: exit 0" 0 code;
  Alcotest.(check string) "golden adder report" report_golden text

let test_report_human () =
  let code, text = run_out "report -a adder -m value" in
  check "report: exit 0" 0 code;
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "profile shows %S" needle)
        true (contains text needle))
    [
      "session: adder under value";
      "session.record";
      "session.replay";
      "search.attempts";
      "govern.transitions";
      "stitch.edges_enforced";
    ]

let test_report_trace_export () =
  let out = Filename.temp_file "ddet_cli" ".trace.json" in
  let code, _ =
    run_out "report -a adder -m value --trace %s" (Filename.quote out)
  in
  check "report --trace: exit 0" 0 code;
  let ic = open_in_bin out in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove out;
  Alcotest.(check bool) "chrome trace-event envelope" true
    (contains text "{\"traceEvents\":[");
  Alcotest.(check bool) "session span exported" true
    (contains text "\"name\":\"session.record\"")

(* every diagnostic goes through one helper, so the program name
   prefixes each error line — greppable and attributable in CI logs *)
let test_err_prefix () =
  let code, text = run_out "replay -a adder -m value -i /nonexistent/x.log" in
  check "load error: exit 1" 1 code;
  Alcotest.(check bool) "error starts with \"ddreplay: \"" true
    (String.length text >= 10 && String.sub text 0 10 = "ddreplay: ");
  let code, text = run_out "debug -a adder -m value -s 1 --static-steer" in
  check "usage error: exit 1" 1 code;
  Alcotest.(check bool) "usage error carries the prefix too" true
    (contains text "ddreplay: --static-steer requires")

let () =
  if Array.length Sys.argv < 2 then begin
    prerr_endline "usage: test_cli.exe <path-to-ddreplay.exe>";
    exit 2
  end;
  (ddreplay :=
     let p = Sys.argv.(1) in
     if Filename.is_relative p then Filename.concat (Sys.getcwd ()) p else p);
  (* alcotest parses argv itself; hide ours *)
  let argv = [| Sys.argv.(0) |] in
  Alcotest.run ~argv "cli"
    [
      ( "exit-codes",
        [
          Alcotest.test_case "0: reproduced" `Quick test_reproduced;
          Alcotest.test_case "3: degraded to partial" `Quick test_partial;
          Alcotest.test_case "4: salvaged damage" `Quick test_salvaged;
          Alcotest.test_case "5: deadline exhausted" `Quick test_deadline;
          Alcotest.test_case "5: scan exhausted" `Quick test_find_exhausted;
        ] );
      ( "crash-flags",
        [
          Alcotest.test_case "checkpoint then resume" `Quick
            test_checkpoint_resume;
          Alcotest.test_case "segmented record and replay" `Quick
            test_segmented_roundtrip;
        ] );
      ( "distributed",
        [
          Alcotest.test_case "0: reproduced from shards (full and partial)"
            `Quick test_sharded_reproduced;
          Alcotest.test_case "3: best partial from shards" `Quick
            test_sharded_partial;
          Alcotest.test_case "4: all shards lost" `Quick test_sharded_all_lost;
          Alcotest.test_case "1: --lose-node needs a sharded recording" `Quick
            test_lose_node_needs_shards;
          Alcotest.test_case "124: unknown io-fault clause" `Quick
            test_io_faults_unknown_clause;
        ] );
      ( "analyze",
        [
          Alcotest.test_case "clean report shape" `Quick test_analyze_clean;
          Alcotest.test_case "race candidates on miniht" `Quick
            test_analyze_races;
          Alcotest.test_case "lint errors exit nonzero" `Quick
            test_analyze_lint_failing;
          Alcotest.test_case "missing target is an error" `Quick
            test_analyze_no_target;
          Alcotest.test_case "--json golden report" `Quick
            test_analyze_json_golden;
          Alcotest.test_case "--nodes flags the demo deadlock" `Quick
            test_analyze_nodes_deadlock;
          Alcotest.test_case "--nodes clean topology" `Quick
            test_analyze_nodes_clean;
          Alcotest.test_case "--nodes json views" `Quick
            test_analyze_nodes_json;
          Alcotest.test_case "--nodes needs a node map" `Quick
            test_analyze_nodes_no_map;
        ] );
      ( "report",
        [
          Alcotest.test_case "--json --mask golden profile" `Quick
            test_report_json_golden;
          Alcotest.test_case "human profile covers the phases" `Quick
            test_report_human;
          Alcotest.test_case "--trace exports chrome json" `Quick
            test_report_trace_export;
          Alcotest.test_case "errors carry the ddreplay: prefix" `Quick
            test_err_prefix;
        ] );
    ]
