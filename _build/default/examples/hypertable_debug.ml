(* The paper's Sec. 4 case study, end to end: debug the mini-Hypertable
   data-loss race under value determinism, failure determinism and RCSE
   with control-plane selection — the three points of Fig. 2.

   Run with: dune exec examples/hypertable_debug.exe *)

open Mvm
open Ddet
open Ddet_apps

let () =
  let app = Miniht.app () in

  (* 1. The failure: a production run where the dump loses rows and the
     only live root cause is the migration/commit race. *)
  let seed, original =
    match
      Workload.find_failing_seed ~cause:Miniht.rc_race ~exclusive:true app
    with
    | Some (s, r) -> (s, r)
    | None -> failwith "no race-only production seed in range"
  in
  let out chan =
    match Trace.outputs_on original.Interp.trace chan with
    | [ v ] -> Value.to_string v
    | _ -> "?"
  in
  Printf.printf
    "production seed %d: loaded %s rows, dump returned %s — no error was\n\
     reported anywhere; several rows are simply missing (Hypertable issue 63).\n\n"
    seed (out "loaded") (out "dumped");

  (* 2. The control-plane classification RCSE depends on, learned from
     passing training runs by taint data-rate profiling. *)
  let prepared = Session.prepare (Model.Rcse Model.Code_based) app in
  (match prepared.Session.plane_map with
  | Some map ->
    print_endline "taint-rate classification (control plane is recorded):";
    List.iter
      (fun (fname, plane) ->
        Printf.printf "  %-14s %s\n" fname (Ddet_analysis.Plane.to_string plane))
      (Ddet_analysis.Plane.to_assoc map)
  | None -> ());
  print_newline ();

  (* 3. Record/replay/assess under the three Fig. 2 models. *)
  List.iter
    (fun model ->
      let a = Session.experiment_ensemble ~replays:5 model app ~seed in
      Printf.printf "%s\n" (Format.asprintf "%a" Ddet_metrics.Utility.pp a))
    [ Model.Value; Model.Failure_det; Model.Rcse Model.Code_based ];

  print_newline ();
  print_endline
    "Reading the numbers against the paper's Fig. 2:\n\
     - value determinism logs every read (heavy: the data plane moves\n\
     256-byte rows) and reproduces failure and root cause — DF 1 at the\n\
     highest overhead;\n\
     - failure determinism records nothing and synthesizes an execution\n\
     with the same missing-rows failure — but the failure has three\n\
     possible root causes (the race, a server crash after upload, a dump\n\
     client OOM), and the synthesis usually finds a fault path first:\n\
     DF 1/3;\n\
     - RCSE records the control plane precisely (routing decisions, the\n\
     ownership-map update, fault handling) and searches only data-plane\n\
     timing: DF 1 at a fraction of value determinism's cost — the debug\n\
     determinism sweet spot."
