(* Combined code/data triggers (Sec. 3.1.3): a sampling race detector —
   DataCollider-style, the paper's own example of a "potential-bug
   detector" — dials recording fidelity up the moment two threads collide
   on the message buffer's cursor. Code-based selection alone misfires
   here: the racing code is data-plane.

   Run with: dune exec examples/race_trigger.exe *)

open Mvm
open Ddet
open Ddet_apps
open Ddet_record

let () =
  let app = Msg_server.app () in

  (* 1. A production run where messages vanish because of the cursor race
     (no network congestion involved). *)
  let seed, original =
    match
      Workload.find_failing_seed ~cause:"buffer-race" ~exclusive:true app
    with
    | Some (s, r) -> (s, r)
    | None -> failwith "no race-only seed"
  in
  let out chan =
    match Trace.outputs_on original.Interp.trace chan with
    | [ v ] -> Value.to_string v
    | _ -> "?"
  in
  Printf.printf
    "production seed %d: sent %s messages, delivered %s — the drop rate is\n\
     higher than expected (the paper's Sec. 2 server).\n\n"
    seed (out "sent") (out "delivered");

  (* 2. Show the race detector seeing the collision on this run. *)
  let detector =
    Ddet_analysis.Race_detector.create Ddet_analysis.Race_detector.default_config
  in
  Trace.iter
    (fun e -> ignore (Ddet_analysis.Race_detector.observe detector e))
    original.Interp.trace;
  (match Ddet_analysis.Race_detector.reports detector with
  | [] -> print_endline "race detector: no races observed (unexpected!)"
  | r :: _ as all ->
    Printf.printf "race detector: %d conflicting access pairs; first: %s\n\n"
      (List.length all)
      (Format.asprintf "%a" Ddet_analysis.Race_detector.pp_report r));

  (* 3. Compare code-based selection (misfires: the race is data-plane)
     with trigger-based selection (the detector dials fidelity up). *)
  List.iter
    (fun model ->
      let prepared = Session.prepare model app in
      let _, log = Session.record prepared ~seed in
      let a = Session.experiment_ensemble ~replays:5 model app ~seed in
      Printf.printf "%-14s log %4d entries  %s\n" (Model.name model)
        (Log.entry_count log)
        (Format.asprintf "%a" Ddet_metrics.Utility.pp a))
    [ Model.Rcse Model.Code_based; Model.Rcse Model.Trigger_based ];

  print_newline ();
  print_endline
    "Code-based selection records almost nothing here (main is the only\n\
     control-plane function, and the bug never passes through it), so its\n\
     replay may reproduce the drop via network congestion instead — the\n\
     misfire case the paper acknowledges. The trigger-based recorder\n\
     notices the collision at runtime, flushes its flight ring (the\n\
     inputs leading up to the race) and records everything from that\n\
     point: the replay consistently reproduces the lost update.\n\
     Data-corruption bugs announce themselves through races — the paper's\n\
     argument for dynamic triggers (Sec. 3.1.3); see bench 'flight' for\n\
     the ring-capacity ablation."
