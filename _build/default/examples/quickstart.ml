(* Quickstart: write a tiny concurrent program in the DSL, watch it fail in
   production, then debug it under two determinism models and compare what
   each replay is worth.

   Run with: dune exec examples/quickstart.exe *)

open Mvm
open Mvm.Dsl

(* 1. A program: two workers increment a shared counter without a lock.
   The I/O specification says the final counter must equal 20. *)
let counter =
  program ~name:"counter"
    ~regions:[ scalar "c" (Value.int 0) ]
    ~inputs:[] ~main:"main"
    [
      func "main" []
        [
          spawn "worker" [];
          spawn "worker" [];
          recv "d1" "done";
          recv "d2" "done";
          output "total" (g "c");
        ];
      func "worker" []
        [
          for_ "k" (i 0) (i 10)
            [ assign "t" (g "c"); store_g "c" (v "t" +: i 1) ];
          send "done" (i 1);
        ];
    ]

let spec =
  Spec.make "counts-to-twenty" (fun r ->
      match Trace.outputs_on r.Interp.trace "total" with
      | [ Value.Vint 20 ] -> Ok ()
      | _ -> Error "lost-update")

(* The root cause, as a checkable predicate: two threads wrote the same
   counter value — the classic lost update. *)
let lost_update =
  Ddet_metrics.Root_cause.make ~id:"unlocked-increment"
    ~descr:"read-modify-write without a lock loses increments"
    (fun r ->
      let writes = Trace.writes_to_scalar r.Interp.trace "c" in
      List.exists
        (fun (_, tid1, v1) ->
          List.exists
            (fun (_, tid2, v2) -> tid1 <> tid2 && Value.equal v1 v2)
            writes)
        writes)

let catalog =
  {
    Ddet_metrics.Root_cause.app = "counter";
    failure_sig =
      (function Failure.Spec_violation "lost-update" -> true | _ -> false);
    causes = [ lost_update ];
  }

let () =
  (* 2. Find a production run that fails. *)
  let failing_seed =
    let rec scan seed =
      if seed > 1000 then failwith "no failing seed"
      else
        let r = Spec.apply spec (Interp.run counter (World.random ~seed)) in
        if r.Interp.failure <> None then seed else scan (seed + 1)
    in
    scan 1
  in
  let original =
    Spec.apply spec (Interp.run counter (World.random ~seed:failing_seed))
  in
  Printf.printf "production seed %d: total = %s (failure: %s)\n\n" failing_seed
    (match Trace.outputs_on original.Interp.trace "total" with
    | [ v ] -> Value.to_string v
    | _ -> "?")
    (match original.Interp.failure with
    | Some f -> Failure.to_string f
    | None -> "none");

  (* 3. Record the same run under two determinism models and replay. *)
  let experiment recorder replay =
    let world = World.random ~seed:failing_seed in
    let result, log = Ddet_record.Recorder.record recorder counter ~spec ~world in
    let outcome = replay log in
    let a =
      Ddet_metrics.Utility.assess ~catalog ~original:result ~log outcome
    in
    Printf.printf "%s\n" (Format.asprintf "%a" Ddet_metrics.Utility.pp a)
  in
  experiment
    (Ddet_record.Full_recorder.create ())
    (fun log -> Ddet_replay.Replayer.perfect counter ~spec log);
  experiment
    (Ddet_record.Output_recorder.create ())
    (fun log -> Ddet_replay.Replayer.output_det ~exhaustive:false counter ~spec log);
  print_newline ();
  print_endline
    "perfect determinism pays full recording cost and reproduces the lost\n\
     update exactly (DF 1); output determinism records two integers but\n\
     must search for a schedule producing the same total — and any lossy\n\
     interleaving it finds still exhibits the same root cause here, because\n\
     this failure has exactly one possible cause.";
  print_endline
    "\nNext steps: examples/hypertable_debug.exe reproduces the paper's case\n\
     study, where root-cause ambiguity makes the model choice matter."
