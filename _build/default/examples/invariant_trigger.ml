(* Data-based selection (Sec. 3.1.2): train Daikon-style invariants on
   passing runs, then record at low fidelity until production violates one
   — here, a request size outside the trained range — and dial up from
   that point, capturing the buffer-overflow root cause.

   Run with: dune exec examples/invariant_trigger.exe *)

open Mvm
open Ddet
open Ddet_apps
open Ddet_record

let () =
  let app = Bufover.app () in

  (* 1. Train invariants on passing runs (pre-release testing). *)
  let training = Session.training_runs Config.default app in
  let inv = Ddet_analysis.Invariants.infer training in
  Printf.printf "invariants inferred from %d passing runs:\n%s\n"
    (List.length training)
    (Format.asprintf "%a" Ddet_analysis.Invariants.pp inv);

  (* 2. A production run with an oversized request crashes the copy. *)
  let seed, original =
    match Workload.find_failing_seed app with
    | Some (s, r) -> (s, r)
    | None -> failwith "no failing seed"
  in
  Printf.printf "production seed %d crashes: %s\n\n" seed
    (match original.Interp.failure with
    | Some f -> Mvm.Failure.to_string f
    | None -> "?");

  (* 3. Record under data-based RCSE and inspect the dial-up. *)
  let prepared = Session.prepare (Model.Rcse Model.Data_based) app in
  let recorded, log = Session.record prepared ~seed in
  let marks =
    List.filter_map
      (function Log.Mark m -> Some m | _ -> None)
      log.Log.entries
  in
  Printf.printf
    "recording: %d entries, fidelity transitions: [%s]\n\
     (low fidelity until the out-of-range input violated the trained\n\
     invariant; everything from that event on is recorded)\n\n"
    (Log.entry_count log)
    (String.concat "; " marks);

  (* 4. Replay and assess. *)
  let outcome = Session.replay prepared log in
  let a = Session.assess prepared ~original:recorded ~log outcome in
  Printf.printf "%s\n\n" (Format.asprintf "%a" Ddet_metrics.Utility.pp a);
  print_endline
    "The violated invariant marked the execution as \"likely on an error\n\
     path\" (Sec. 3.1.2) exactly when the oversized input arrived, so the\n\
     recording contains the input and the crash — replay is immediate and\n\
     the bounds-check root cause is preserved, at a recording cost that\n\
     stays near zero for the healthy majority of runs."
