examples/hypertable_debug.ml: Ddet Ddet_analysis Ddet_apps Ddet_metrics Format Interp List Miniht Model Mvm Printf Session Trace Value Workload
