examples/invariant_trigger.ml: Bufover Config Ddet Ddet_analysis Ddet_apps Ddet_metrics Ddet_record Format Interp List Log Model Mvm Printf Session String Workload
