examples/race_trigger.ml: Ddet Ddet_analysis Ddet_apps Ddet_metrics Ddet_record Format Interp List Log Model Msg_server Mvm Printf Session Trace Value Workload
