examples/race_trigger.mli:
