examples/invariant_trigger.mli:
