examples/quickstart.ml: Ddet_metrics Ddet_record Ddet_replay Failure Format Interp List Mvm Printf Spec Trace Value World
