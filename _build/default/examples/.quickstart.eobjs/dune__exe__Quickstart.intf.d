examples/quickstart.mli:
