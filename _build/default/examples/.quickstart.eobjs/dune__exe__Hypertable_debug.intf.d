examples/hypertable_debug.mli:
