(** Debugging utility (DU, §3.2): DU = DF x DE, and the one-call assessment
    of a (record, replay) experiment against a root-cause catalog. *)

open Mvm
open Ddet_record

type assessment = {
  model : string;
  overhead : float;  (** recording overhead factor from the cost model *)
  df : float;
  de : float;
  du : float;
  original_cause : string option;
  replay_cause : string option;
  attempts : int;
  inference_steps : int;
}

(** [assess ?cost_model ~catalog ~original ~log outcome] computes
    overhead (from [log]), DF, DE and DU for one experiment. *)
val assess :
  ?cost_model:Cost_model.t ->
  catalog:Root_cause.catalog ->
  original:Interp.result ->
  log:Log.t ->
  Ddet_replay.Replayer.outcome ->
  assessment

val pp : Format.formatter -> assessment -> unit
