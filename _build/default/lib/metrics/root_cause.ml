open Mvm

type t = {
  id : string;
  descr : string;
  holds : Interp.result -> bool;
}

type catalog = {
  app : string;
  failure_sig : Failure.t -> bool;
  causes : t list;
}

let make ~id ~descr holds = { id; descr; holds }

let observed catalog (r : Interp.result) =
  match r.failure with
  | Some f when catalog.failure_sig f ->
    List.filter (fun c -> c.holds r) catalog.causes
  | Some _ | None -> []

let primary catalog r =
  match observed catalog r with [] -> None | c :: _ -> Some c

let n_causes catalog = List.length catalog.causes
