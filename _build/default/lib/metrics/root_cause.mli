(** Root causes as checkable predicates.

    The paper defines a root cause as the negation of the predicate a fix
    would enforce (§3). Operationally we need the converse direction: given
    a (replayed) execution, decide which root cause produced its failure.
    Each application therefore registers a catalog: for one failure
    signature, the set of distinct root-cause predicates that can produce
    it. Debugging fidelity falls out of evaluating the catalog on original
    and replayed runs. *)

open Mvm

type t = {
  id : string;  (** stable identifier, e.g. "migration-commit-race" *)
  descr : string;  (** one-line developer-facing description *)
  holds : Interp.result -> bool;
      (** does this execution exhibit this root cause? evaluated over the
          trace of a completed run *)
}

(** A catalog: every known root cause for one application failure. *)
type catalog = {
  app : string;
  failure_sig : Failure.t -> bool;
      (** which failures this catalog explains (the "same failure"
          equivalence class) *)
  causes : t list;
}

(** [make ~id ~descr holds] builds a root-cause predicate. *)
val make : id:string -> descr:string -> (Interp.result -> bool) -> t

(** [observed catalog r] is the root causes of [r]'s failure that hold on
    [r] (empty when [r] has no matching failure). *)
val observed : catalog -> Interp.result -> t list

(** [primary catalog r] is the first observed cause, if any — the one a
    developer following the replay would find. *)
val primary : catalog -> Interp.result -> t option

(** [n_causes catalog] is the catalog size — the [n] in the paper's
    fidelity 1/n. *)
val n_causes : catalog -> int
