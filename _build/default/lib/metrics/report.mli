(** Plain-text table rendering for experiment reports (bench output,
    EXPERIMENTS.md source material). *)

(** [table ~headers rows] renders an aligned ASCII table; every row must
    have the same arity as [headers]. *)
val table : headers:string list -> string list list -> string

(** [fx f] formats a float with 2 decimals; [fx4] with 4. *)
val fx : float -> string

val fx4 : float -> string

(** [print_section title body] prints a titled block to stdout. *)
val print_section : string -> string -> unit
