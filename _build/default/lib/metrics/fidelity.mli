(** Debugging fidelity (DF, §3.2): the ability to reproduce the root cause
    and the failure.

    - 0 when the replay does not reproduce the failure;
    - 1 when it reproduces the failure through the original root cause;
    - 1/n when it reproduces the failure through a different root cause,
      where n is the number of possible root causes for the observed
      failure. *)

open Mvm

(** [df ~catalog ~original ~replay] computes DF. [replay = None] (inference
    exhausted its budget, or the oracle diverged) scores 0. When the
    original run's root cause cannot be identified from the catalog, the
    replayed failure alone scores 1/n (we cannot claim cause fidelity). *)
val df :
  catalog:Root_cause.catalog ->
  original:Interp.result ->
  replay:Interp.result option ->
  float

(** [explain ~catalog ~original ~replay] is DF plus the matched cause ids:
    [(df, original_cause, replay_cause)]. *)
val explain :
  catalog:Root_cause.catalog ->
  original:Interp.result ->
  replay:Interp.result option ->
  float * string option * string option
