lib/metrics/utility.ml: Cost_model Ddet_record Ddet_replay Efficiency Fidelity Format Option
