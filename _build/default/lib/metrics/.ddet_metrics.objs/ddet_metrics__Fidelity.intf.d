lib/metrics/fidelity.mli: Interp Mvm Root_cause
