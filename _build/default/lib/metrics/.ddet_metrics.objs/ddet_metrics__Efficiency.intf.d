lib/metrics/efficiency.mli: Ddet_replay Interp Mvm
