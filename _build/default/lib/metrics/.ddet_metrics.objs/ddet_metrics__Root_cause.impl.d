lib/metrics/root_cause.ml: Failure Interp List Mvm
