lib/metrics/report.mli:
