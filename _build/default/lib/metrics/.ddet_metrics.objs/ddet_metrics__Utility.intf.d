lib/metrics/utility.mli: Cost_model Ddet_record Ddet_replay Format Interp Log Mvm Root_cause
