lib/metrics/efficiency.ml: Ddet_replay Interp Mvm
