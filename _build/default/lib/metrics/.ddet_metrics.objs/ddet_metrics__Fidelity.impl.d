lib/metrics/fidelity.ml: Interp Mvm Option Root_cause String
