lib/metrics/root_cause.mli: Failure Interp Mvm
