lib/metrics/report.ml: List Printf String
