open Mvm

let de ~original ~(outcome : Ddet_replay.Replayer.outcome) =
  match outcome.result with
  | None -> 0.
  | Some _ ->
    float_of_int (original : Interp.result).steps
    /. float_of_int (max 1 outcome.total_steps)
