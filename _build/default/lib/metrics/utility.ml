open Ddet_record

type assessment = {
  model : string;
  overhead : float;
  df : float;
  de : float;
  du : float;
  original_cause : string option;
  replay_cause : string option;
  attempts : int;
  inference_steps : int;
}

let assess ?(cost_model = Cost_model.default) ~catalog ~original ~log
    (outcome : Ddet_replay.Replayer.outcome) =
  let df, original_cause, replay_cause =
    Fidelity.explain ~catalog ~original ~replay:outcome.result
  in
  let de = Efficiency.de ~original ~outcome in
  {
    model = outcome.model;
    overhead = Cost_model.overhead cost_model log;
    df;
    de;
    du = df *. de;
    original_cause;
    replay_cause;
    attempts = outcome.attempts;
    inference_steps = outcome.total_steps;
  }

let pp ppf a =
  Format.fprintf ppf
    "%-10s overhead %.2fx  DF %.2f  DE %.4f  DU %.4f  (cause %s -> %s, %d attempts)"
    a.model a.overhead a.df a.de a.du
    (Option.value ~default:"?" a.original_cause)
    (Option.value ~default:"-" a.replay_cause)
    a.attempts
