let table ~headers rows =
  let all = headers :: rows in
  let arity = List.length headers in
  List.iter
    (fun row ->
      if List.length row <> arity then invalid_arg "Report.table: ragged row")
    rows;
  let widths =
    List.init arity (fun i ->
        List.fold_left (fun w row -> max w (String.length (List.nth row i))) 0 all)
  in
  let render_row row =
    String.concat "  "
      (List.mapi
         (fun i cell ->
           let pad = List.nth widths i - String.length cell in
           cell ^ String.make pad ' ')
         row)
  in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (render_row headers :: sep :: List.map render_row rows)

let fx v = Printf.sprintf "%.2f" v
let fx4 v = Printf.sprintf "%.4f" v

let print_section title body =
  Printf.printf "\n=== %s ===\n%s\n" title body
