(** Dynamic invariant inference, Daikon-style (Ernst et al.), for data-based
    selection (§3.1.2).

    Training runs (before release) yield likely invariants — ranges of
    shared scalars and of input values. In production, the RCSE recorder
    monitors them; the first violation is the signal that the execution is
    likely on an error path, and recording dials up from that point. *)

open Mvm

type bound = { lo : int; hi : int }

type t = {
  scalar_bounds : (string * bound) list;  (** per shared scalar region *)
  input_bounds : (string * bound) list;  (** per input channel *)
}

(** [infer rs] learns bounds from training runs (integer-valued writes and
    inputs only; other value shapes are ignored). *)
val infer : Interp.result list -> t

(** [violation t e] names the violated invariant, if [e] breaks one. *)
val violation : t -> Event.t -> string option

(** [selector t] is the data-based RCSE selector: low fidelity until the
    first violation, high fidelity from that event onward (the invariant
    telling us the root cause may be live from here). *)
val selector : t -> Ddet_record.Fidelity_level.selector

val pp : Format.formatter -> t -> unit
