(** Precise happens-before data-race detection with vector clocks
    (FastTrack-style), the expensive alternative to the sampling detector.

    The detector maintains one vector clock per thread, advanced on every
    operation and joined across synchronisation edges — spawn, lock
    release/acquire, message send/receive. An access races iff it is not
    ordered (by those edges) with a previous conflicting access to the same
    location.

    Unlike {!Race_detector}, this detector has no false positives (a
    lock-protected counter never reports) and no false negatives within a
    run — at a per-access cost proportional to the thread count, which is
    exactly why the paper's trigger proposal cites a *low-overhead*
    sampling detector for production use. The ABL-RACE bench measures the
    trade. *)

open Mvm

type t

val create : unit -> t

(** [observe t e] feeds one event in trace order; returns a report when
    [e] is a shared access unordered with a conflicting predecessor.
    At most one report per (location, site pair) is produced. *)
val observe : t -> Event.t -> Race_detector.report option

(** [reports t] is everything reported so far, oldest first. *)
val reports : t -> Race_detector.report list

(** [vc_operations t] counts vector-clock join/copy operations performed —
    the detector's work, for cost comparisons against sampling. *)
val vc_operations : t -> int

(** [trigger t] adapts the detector as an RCSE trigger (cf.
    {!Trigger.of_race_detector}). *)
val trigger : t -> Trigger.t
