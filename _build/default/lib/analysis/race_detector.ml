open Mvm

type config = { sample_rate : float; window : int; seed : int }

let default_config = { sample_rate = 1.0; window = 50; seed = 1 }

type report = {
  region : string;
  index : int option;
  sid_first : int;
  sid_second : int;
  tid_first : int;
  tid_second : int;
  step : int;
}

type last = { l_step : int; l_tid : int; l_sid : int; l_write : bool }

type t = {
  config : config;
  rng : Prng.t;
  last_access : (string * int option, last) Hashtbl.t;
  found : report Vec.t;
}

let create config =
  {
    config;
    rng = Prng.create config.seed;
    last_access = Hashtbl.create 64;
    found = Vec.create ();
  }

let observe t (e : Event.t) =
  let access =
    match e.kind with
    | Event.Read a -> Some (a, false)
    | Event.Write a -> Some (a, true)
    | _ -> None
  in
  match access with
  | None -> None
  | Some (a, is_write) ->
    let key = (a.region, a.index) in
    let report =
      match Hashtbl.find_opt t.last_access key with
      | Some l
        when l.l_tid <> e.tid
             && e.step - l.l_step <= t.config.window
             && (is_write || l.l_write)
             && Prng.float t.rng < t.config.sample_rate ->
        let r =
          {
            region = a.region;
            index = a.index;
            sid_first = l.l_sid;
            sid_second = e.sid;
            tid_first = l.l_tid;
            tid_second = e.tid;
            step = e.step;
          }
        in
        Vec.push t.found r;
        Some r
      | _ -> None
    in
    Hashtbl.replace t.last_access key
      { l_step = e.step; l_tid = e.tid; l_sid = e.sid; l_write = is_write };
    report

let reports t = Vec.to_list t.found

let pp_report ppf r =
  Format.fprintf ppf "race on %s%s: t%d@s%d vs t%d@s%d at step %d" r.region
    (match r.index with Some i -> Printf.sprintf "[%d]" i | None -> "")
    r.tid_first r.sid_first r.tid_second r.sid_second r.step
