open Mvm

(* Vector clocks as growable int arrays indexed by thread id. *)
module Vc = struct
  type t = int array ref

  let create () = ref (Array.make 4 0)

  let ensure vc tid =
    let a = !vc in
    if tid >= Array.length a then begin
      let a' = Array.make (max (tid + 1) (2 * Array.length a)) 0 in
      Array.blit a 0 a' 0 (Array.length a);
      vc := a'
    end

  let get vc tid =
    let a = !vc in
    if tid < Array.length a then a.(tid) else 0

  let tick vc tid =
    ensure vc tid;
    !vc.(tid) <- !vc.(tid) + 1

  let copy vc = ref (Array.copy !vc)

  (* a <= b pointwise *)
  let leq a b =
    let aa = !a in
    let ok = ref true in
    Array.iteri (fun i v -> if v > get b i then ok := false) aa;
    !ok

  let join dst src =
    ensure dst (Array.length !src - 1);
    Array.iteri (fun i v -> if v > !dst.(i) then !dst.(i) <- v) !src
end

type access_record = {
  a_vc : Vc.t;  (** snapshot at the access *)
  a_tid : int;
  a_sid : int;
}

type loc_state = {
  mutable last_write : access_record option;
  mutable last_reads : (int * access_record) list;  (** per reading thread *)
}

type t = {
  threads : (int, Vc.t) Hashtbl.t;
  locks : (string, Vc.t) Hashtbl.t;
  messages : (string, Vc.t Queue.t) Hashtbl.t;
  locs : (string * int option, loc_state) Hashtbl.t;
  found : Race_detector.report Vec.t;
  seen_pairs : (string * int option * int * int, unit) Hashtbl.t;
  mutable ops : int;
}

let create () =
  {
    threads = Hashtbl.create 8;
    locks = Hashtbl.create 8;
    messages = Hashtbl.create 8;
    locs = Hashtbl.create 64;
    found = Vec.create ();
    seen_pairs = Hashtbl.create 32;
    ops = 0;
  }

let thread_vc t tid =
  match Hashtbl.find_opt t.threads tid with
  | Some vc -> vc
  | None ->
    let vc = Vc.create () in
    Vc.tick vc tid;
    Hashtbl.replace t.threads tid vc;
    vc

let loc_state t key =
  match Hashtbl.find_opt t.locs key with
  | Some s -> s
  | None ->
    let s = { last_write = None; last_reads = [] } in
    Hashtbl.replace t.locs key s;
    s

let report t (e : Event.t) region index (prev : access_record) =
  let key = (region, index, prev.a_sid, e.Event.sid) in
  if Hashtbl.mem t.seen_pairs key then None
  else begin
    Hashtbl.replace t.seen_pairs key ();
    let r =
      {
        Race_detector.region;
        index;
        sid_first = prev.a_sid;
        sid_second = e.Event.sid;
        tid_first = prev.a_tid;
        tid_second = e.Event.tid;
        step = e.Event.step;
      }
    in
    Vec.push t.found r;
    Some r
  end

let observe t (e : Event.t) =
  let tid = e.Event.tid in
  let vc = thread_vc t tid in
  t.ops <- t.ops + 1;
  Vc.tick vc tid;
  match e.Event.kind with
  | Event.Spawned { child; _ } ->
    (* the child starts causally after the parent's spawn *)
    let cvc = thread_vc t child in
    t.ops <- t.ops + 1;
    Vc.join cvc vc;
    Vc.tick cvc child;
    None
  | Event.Lock_acq m ->
    (match Hashtbl.find_opt t.locks m with
    | Some lvc ->
      t.ops <- t.ops + 1;
      Vc.join vc lvc
    | None -> ());
    None
  | Event.Lock_rel m ->
    t.ops <- t.ops + 1;
    Hashtbl.replace t.locks m (Vc.copy vc);
    None
  | Event.Msg_send io ->
    let q =
      match Hashtbl.find_opt t.messages io.Event.chan with
      | Some q -> q
      | None ->
        let q = Queue.create () in
        Hashtbl.replace t.messages io.Event.chan q;
        q
    in
    t.ops <- t.ops + 1;
    Queue.push (Vc.copy vc) q;
    None
  | Event.Msg_recv io ->
    (match Hashtbl.find_opt t.messages io.Event.chan with
    | Some q when not (Queue.is_empty q) ->
      t.ops <- t.ops + 1;
      Vc.join vc (Queue.pop q)
    | Some _ | None -> ());
    None
  | Event.Read a ->
    let key = (a.Event.region, a.Event.index) in
    let s = loc_state t key in
    let me = { a_vc = Vc.copy vc; a_tid = tid; a_sid = e.Event.sid } in
    t.ops <- t.ops + 1;
    let race =
      match s.last_write with
      | Some w when w.a_tid <> tid && not (Vc.leq w.a_vc vc) ->
        report t e a.Event.region a.Event.index w
      | _ -> None
    in
    s.last_reads <- (tid, me) :: List.remove_assoc tid s.last_reads;
    race
  | Event.Write a ->
    let key = (a.Event.region, a.Event.index) in
    let s = loc_state t key in
    let me = { a_vc = Vc.copy vc; a_tid = tid; a_sid = e.Event.sid } in
    t.ops <- t.ops + 1;
    let race_with_write =
      match s.last_write with
      | Some w when w.a_tid <> tid && not (Vc.leq w.a_vc vc) ->
        report t e a.Event.region a.Event.index w
      | _ -> None
    in
    let race_with_read =
      match race_with_write with
      | Some _ as r -> r
      | None ->
        List.fold_left
          (fun acc (rt, rr) ->
            match acc with
            | Some _ -> acc
            | None ->
              if rt <> tid && not (Vc.leq rr.a_vc vc) then
                report t e a.Event.region a.Event.index rr
              else None)
          None s.last_reads
    in
    s.last_write <- Some me;
    s.last_reads <- [];
    race_with_read
  | Event.Step | Event.In _ | Event.Out _ | Event.Crashed _ -> None

let reports t = Vec.to_list t.found

let vc_operations t = t.ops

let trigger t =
  { Trigger.name = "hb-race-detector"; fired = (fun e -> observe t e <> None) }
