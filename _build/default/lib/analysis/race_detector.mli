(** Low-overhead sampling data-race detection (after DataCollider, Erickson
    et al., OSDI'10), the paper's example of a combined code/data trigger
    (§3.1.3): "low-overhead data race detection could be used to dial up
    recording fidelity when a race is detected".

    The detector watches the access stream; when two threads touch the same
    location within a short window, at least one access being a write, and
    the (seeded) sampler selects the pair, it reports a race. Sampling
    models the production-overhead constraint: a full happens-before
    detector would defeat the purpose. *)

open Mvm

type config = {
  sample_rate : float;  (** probability a conflicting pair is reported *)
  window : int;  (** max steps between the two accesses *)
  seed : int;
}

val default_config : config

type report = {
  region : string;
  index : int option;
  sid_first : int;
  sid_second : int;
  tid_first : int;
  tid_second : int;
  step : int;  (** step of the second (detecting) access *)
}

type t

val create : config -> t

(** [observe t e] feeds one event; returns a report when a sampled race is
    detected at [e]. *)
val observe : t -> Event.t -> report option

(** [reports t] is everything reported so far, oldest first. *)
val reports : t -> report list

val pp_report : Format.formatter -> report -> unit
