open Mvm

type bound = { lo : int; hi : int }

type t = {
  scalar_bounds : (string * bound) list;
  input_bounds : (string * bound) list;
}

let widen tbl key n =
  match Hashtbl.find_opt tbl key with
  | Some b -> Hashtbl.replace tbl key { lo = min b.lo n; hi = max b.hi n }
  | None -> Hashtbl.replace tbl key { lo = n; hi = n }

let infer results =
  let scalars : (string, bound) Hashtbl.t = Hashtbl.create 16 in
  let inputs : (string, bound) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (r : Interp.result) ->
      Trace.iter
        (fun (e : Event.t) ->
          match e.kind with
          | Event.Write { region; index = None; value = { Value.v = Value.Vint n; _ } } ->
            widen scalars region n
          | Event.In { chan; value = { Value.v = Value.Vint n; _ } } ->
            widen inputs chan n
          | _ -> ())
        r.trace)
    results;
  let to_sorted tbl =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  { scalar_bounds = to_sorted scalars; input_bounds = to_sorted inputs }

let check bounds key n =
  match List.assoc_opt key bounds with
  | Some b when n < b.lo || n > b.hi -> true
  | Some _ | None -> false

let violation t (e : Event.t) =
  match e.kind with
  | Event.Write { region; index = None; value = { Value.v = Value.Vint n; _ } }
    when check t.scalar_bounds region n ->
    Some (Printf.sprintf "scalar %s = %d outside trained range" region n)
  | Event.In { chan; value = { Value.v = Value.Vint n; _ } }
    when check t.input_bounds chan n ->
    Some (Printf.sprintf "input %s = %d outside trained range" chan n)
  | _ -> None

let selector t =
  let tripped = ref false in
  {
    Ddet_record.Fidelity_level.name = "data-based";
    level =
      (fun e ->
        if (not !tripped) && violation t e <> None then tripped := true;
        if !tripped then Ddet_record.Fidelity_level.High
        else Ddet_record.Fidelity_level.Low);
  }

let pp ppf t =
  let pp_bounds label bounds =
    List.iter
      (fun (k, b) -> Format.fprintf ppf "%s %s in [%d, %d]@." label k b.lo b.hi)
      bounds
  in
  pp_bounds "scalar" t.scalar_bounds;
  pp_bounds "input" t.input_bounds
