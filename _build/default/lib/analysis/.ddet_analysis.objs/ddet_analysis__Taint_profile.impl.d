lib/analysis/taint_profile.ml: Event Format Hashtbl Interp List Mvm Option String Trace
