lib/analysis/hb_detector.ml: Array Event Hashtbl List Mvm Queue Race_detector Trigger Vec
