lib/analysis/invariants.mli: Ddet_record Event Format Interp Mvm
