lib/analysis/trigger.mli: Ddet_record Event Invariants Mvm Race_detector
