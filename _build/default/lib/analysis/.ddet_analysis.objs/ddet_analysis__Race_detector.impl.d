lib/analysis/race_detector.ml: Event Format Hashtbl Mvm Printf Prng Vec
