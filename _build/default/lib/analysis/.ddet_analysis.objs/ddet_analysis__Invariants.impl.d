lib/analysis/invariants.ml: Ddet_record Event Format Hashtbl Interp List Mvm Printf String Trace Value
