lib/analysis/race_detector.mli: Event Format Mvm
