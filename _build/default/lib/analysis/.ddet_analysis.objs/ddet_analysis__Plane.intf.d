lib/analysis/plane.mli: Ddet_record Taint_profile
