lib/analysis/trigger.ml: Ddet_record Event Invariants List Mvm Printf Race_detector String Value
