lib/analysis/hb_detector.mli: Event Mvm Race_detector Trigger
