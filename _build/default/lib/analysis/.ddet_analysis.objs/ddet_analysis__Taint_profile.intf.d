lib/analysis/taint_profile.mli: Format Interp Mvm
