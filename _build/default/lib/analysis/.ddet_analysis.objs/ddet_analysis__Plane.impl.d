lib/analysis/plane.ml: Ddet_record List String Taint_profile
