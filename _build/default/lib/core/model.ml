type rcse_mode = Code_based | Data_based | Trigger_based | Combined

type t =
  | Perfect
  | Value
  | Sync
  | Output
  | Failure_det
  | Rcse of rcse_mode

let fig1_sequence =
  [ Perfect; Value; Sync; Output; Failure_det; Rcse Combined ]

let name = function
  | Perfect -> "perfect"
  | Value -> "value"
  | Sync -> "sync"
  | Output -> "output"
  | Failure_det -> "failure"
  | Rcse Code_based -> "rcse-code"
  | Rcse Data_based -> "rcse-data"
  | Rcse Trigger_based -> "rcse-trigger"
  | Rcse Combined -> "rcse"

let reference = function
  | Perfect -> "ideal"
  | Value -> "iDNA"
  | Sync -> "ODR (inputs+sync)"
  | Output -> "ODR (outputs only)"
  | Failure_det -> "ESD"
  | Rcse _ -> "this paper"

let all =
  [
    Perfect; Value; Sync; Output; Failure_det;
    Rcse Code_based; Rcse Data_based; Rcse Trigger_based; Rcse Combined;
  ]

let all_names = List.map name all

let of_string s =
  match List.find_opt (fun m -> String.equal (name m) s) all with
  | Some m -> Ok m
  | None ->
    Error
      (Printf.sprintf "unknown model %S (expected one of: %s)" s
         (String.concat ", " all_names))
