(** The paper's first open question (§5): "a system that records just the
    failure and finds {e all} root cause-equivalent executions that exhibit
    the failure would be ideal. The challenge is scaling this approach to
    real programs."

    This module implements that system on the mini-VM and measures the
    scaling challenge directly: starting from a failure-determinism log
    (nothing but the failure descriptor), it keeps synthesizing executions
    that exhibit the failure and collects one witness execution per
    distinct root cause, until the application's catalog is covered or the
    budget runs out. The per-cause discovery costs it reports are the
    quantitative form of "the challenge is scaling". *)

open Mvm
open Ddet_apps

type witness = {
  cause_id : string;
  result : Interp.result;  (** the first synthesized execution showing it *)
  found_at_attempt : int;
  steps_so_far : int;  (** cumulative VM steps when this cause appeared *)
}

type outcome = {
  witnesses : witness list;  (** discovery order *)
  attempts : int;
  total_steps : int;
  complete : bool;  (** every catalog cause was witnessed *)
}

(** [all_root_causes ?budget app ~log] explores from a recorded failure.
    Runs that do not exhibit the recorded failure are discarded; each that
    does is attributed by the catalog, and new causes become witnesses. *)
val all_root_causes :
  ?budget:Ddet_replay.Search.budget ->
  App.t ->
  log:Ddet_record.Log.t ->
  outcome

(** [experiment ?config ()] runs the exploration on the miniht bug and
    renders the discovery table. *)
val experiment : ?config:Config.t -> unit -> Experiment.rendered
