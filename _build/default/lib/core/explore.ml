open Mvm
open Ddet_record
open Ddet_replay
open Ddet_apps
open Ddet_metrics

type witness = {
  cause_id : string;
  result : Interp.result;
  found_at_attempt : int;
  steps_so_far : int;
}

type outcome = {
  witnesses : witness list;
  attempts : int;
  total_steps : int;
  complete : bool;
}

let all_root_causes ?(budget = Search.default_budget) (app : App.t) ~log =
  let catalog = app.App.catalog in
  let wanted = Root_cause.n_causes catalog in
  let witnesses = ref [] in
  let seen = Hashtbl.create 8 in
  let total_steps = ref 0 in
  let rec go attempt =
    if attempt > budget.Search.max_attempts || Hashtbl.length seen >= wanted
    then attempt - 1
    else begin
      let world = World.random ~seed:(budget.Search.base_seed + attempt) in
      let r =
        Interp.run ~max_steps:budget.Search.max_steps_per_attempt
          app.App.labeled world
      in
      total_steps := !total_steps + r.Interp.steps;
      let r = Spec.apply app.App.spec r in
      if Constraints.failure_matches log r then
        List.iter
          (fun (c : Root_cause.t) ->
            if not (Hashtbl.mem seen c.Root_cause.id) then begin
              Hashtbl.replace seen c.Root_cause.id ();
              witnesses :=
                {
                  cause_id = c.Root_cause.id;
                  result = r;
                  found_at_attempt = attempt;
                  steps_so_far = !total_steps;
                }
                :: !witnesses
            end)
          (Root_cause.observed catalog r);
      go (attempt + 1)
    end
  in
  let attempts = go 1 in
  {
    witnesses = List.rev !witnesses;
    attempts;
    total_steps = !total_steps;
    complete = Hashtbl.length seen >= wanted;
  }

let experiment ?config () =
  ignore config;
  let app = Miniht.app () in
  let seed, original =
    match
      Workload.find_failing_seed ~cause:Miniht.rc_race ~exclusive:true app
    with
    | Some (s, r) -> (s, r)
    | None -> invalid_arg "no race seed for miniht"
  in
  let recorder = Failure_recorder.create () in
  let _, log =
    Recorder.record recorder app.App.labeled ~spec:app.App.spec
      ~world:(World.random ~seed)
  in
  let o = all_root_causes app ~log in
  let rows =
    List.map
      (fun w ->
        [
          w.cause_id;
          string_of_int w.found_at_attempt;
          string_of_int w.steps_so_far;
        ])
      o.witnesses
  in
  let body =
    Printf.sprintf
      "original failure (seed %d): %s\n\n\
       exploration from the failure descriptor alone:\n%s\n\n\
       %s after %d attempts (%d VM steps; the original run took %d).\n\n\
       The first cause surfaces cheaply; covering the catalog costs an\n\
       order of magnitude more synthesis — measured support for the\n\
       paper's note that finding ALL root-cause-equivalent executions is\n\
       ideal but 'the challenge is scaling this approach'.\n"
      seed
      (match original.Interp.failure with
      | Some f -> Mvm.Failure.to_string f
      | None -> "?")
      (Report.table
         ~headers:[ "root cause"; "found at attempt"; "cumulative steps" ]
         rows)
      (if o.complete then "catalog covered" else "catalog NOT covered")
      o.attempts o.total_steps original.Interp.steps
  in
  {
    Experiment.title = "OPEN-ALLRC enumerating every root cause from the failure";
    body;
  }
