(** The paper's closing open question (§5): "while debug determinism may be
    the sweet spot in the problem domain of debugging, it is unclear what
    the sweet spot is for other replay-amenable problem domains. In
    particular, what are the ideal determinism models for replay-based
    forensic analysis and fault tolerance?"

    This module measures two candidate answers on the existing models:

    - {b Forensic analysis} needs the exact external I/O history — who sent
      what, in what order. {!forensic_fidelity} scores a replay by whether
      it reproduces the original per-channel input *and* output sequences.
      Output determinism famously fails this: on the adder it replays the
      output 5 from forged inputs, so an audit would attribute the wrong
      request to the user.

    - {b Fault tolerance} needs a backup replica to reach the {e same
      state}, not to explain a failure. {!state_divergence} measures the
      fraction of shared state (scalars and array cells) whose final value
      differs between original and replay. A model is FT-adequate only at
      divergence 0 on every run — a much stronger bar than debug
      determinism, met only by the expensive end of the spectrum. *)

open Mvm

(** [forensic_fidelity ~original ~replay] is the fraction of I/O channels
    (inputs and outputs separately) whose full value sequence is
    reproduced; 1.0 means the audit trail is exact. *)
val forensic_fidelity : original:Interp.result -> replay:Interp.result -> float

(** [state_divergence ~regions ~original ~replay] is the fraction of
    declared shared cells whose final value differs (computed from the two
    traces' write histories). *)
val state_divergence :
  regions:Ast.region_decl list ->
  original:Interp.result ->
  replay:Interp.result ->
  float

(** [experiment ?config ()] renders both domain studies: forensic fidelity
    per model on the adder audit, state divergence per model on miniht. *)
val experiment : ?config:Config.t -> unit -> Experiment.rendered
