lib/core/session.mli: App Config Ddet_analysis Ddet_apps Ddet_metrics Ddet_record Ddet_replay Interp Invariants Log Model Mvm Plane Recorder
