lib/core/frontier.ml: Adder App Ast Ddet_apps Ddet_metrics Ddet_replay Event Experiment Fun Interp Label List Miniht Model Mvm Printf Report Session String Trace Value Workload
