lib/core/config.mli: Cost_model Ddet_analysis Ddet_record Ddet_replay Search
