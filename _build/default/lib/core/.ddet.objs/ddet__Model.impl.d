lib/core/model.ml: List Printf String
