lib/core/experiment.mli: Config Ddet_metrics Utility
