lib/core/explore.mli: App Config Ddet_apps Ddet_record Ddet_replay Experiment Interp Mvm
