lib/core/model.mli:
