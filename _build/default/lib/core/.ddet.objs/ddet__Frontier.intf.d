lib/core/frontier.mli: Ast Config Experiment Interp Mvm
