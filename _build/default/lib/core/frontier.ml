open Mvm
open Ddet_apps
open Ddet_metrics

let input_channels (r : Interp.result) =
  Trace.fold
    (fun acc (e : Event.t) ->
      match e.Event.kind with
      | Event.In io -> if List.mem io.Event.chan acc then acc else io.Event.chan :: acc
      | _ -> acc)
    [] r.Interp.trace

let inputs_values r chan =
  List.map (fun (_, _, v) -> v) (Trace.inputs_on r.Interp.trace chan)

let forensic_fidelity ~(original : Interp.result) ~(replay : Interp.result) =
  let in_chans =
    List.sort_uniq String.compare (input_channels original @ input_channels replay)
  in
  let out_chans =
    List.sort_uniq String.compare
      (List.map fst original.Interp.outputs @ List.map fst replay.Interp.outputs)
  in
  let seq_eq a b = List.length a = List.length b && List.for_all2 Value.equal a b in
  let checks =
    List.map
      (fun c -> seq_eq (inputs_values original c) (inputs_values replay c))
      in_chans
    @ List.map
        (fun c ->
          seq_eq
            (Trace.outputs_on original.Interp.trace c)
            (Trace.outputs_on replay.Interp.trace c))
        out_chans
  in
  match checks with
  | [] -> 1.0
  | _ ->
    float_of_int (List.length (List.filter Fun.id checks))
    /. float_of_int (List.length checks)

let state_divergence ~regions ~(original : Interp.result) ~(replay : Interp.result) =
  let diff = ref 0 and total = ref 0 in
  let check final_a final_b =
    incr total;
    if not (Value.equal final_a final_b) then incr diff
  in
  List.iter
    (function
      | Ast.Scalar_decl (r, init) ->
        check
          (Trace.scalar_at original.Interp.trace r ~init ~step:max_int)
          (Trace.scalar_at replay.Interp.trace r ~init ~step:max_int)
      | Ast.Array_decl (r, n, init) ->
        for index = 0 to n - 1 do
          check
            (Trace.array_cell_at original.Interp.trace r ~index ~init ~step:max_int)
            (Trace.array_cell_at replay.Interp.trace r ~index ~init ~step:max_int)
        done)
    regions;
  if !total = 0 then 0.0 else float_of_int !diff /. float_of_int !total

let frontier_models =
  [
    Model.Perfect; Model.Value; Model.Sync; Model.Output; Model.Failure_det;
    Model.Rcse Model.Code_based;
  ]

let experiment ?config () =
  (* forensic analysis: the adder audit *)
  let adder = Adder.app () in
  let adder_seed, _ =
    match Workload.find_failing_seed adder with
    | Some (s, r) -> (s, r)
    | None -> invalid_arg "no adder seed"
  in
  let forensic_rows =
    List.map
      (fun model ->
        let prepared = Session.prepare ?config model adder in
        let original, log = Session.record prepared ~seed:adder_seed in
        let outcome = Session.replay prepared log in
        match outcome.Ddet_replay.Replayer.result with
        | None -> [ Model.name model; "-"; "(not replayed)" ]
        | Some replay ->
          let ff = forensic_fidelity ~original ~replay in
          let show chan =
            match inputs_values replay chan with
            | [ v ] -> Value.to_string v
            | _ -> "?"
          in
          [
            Model.name model;
            Report.fx ff;
            Printf.sprintf "replayed inputs a=%s b=%s" (show "a") (show "b");
          ])
      frontier_models
  in
  (* fault tolerance: replica state agreement on miniht *)
  let miniht = Miniht.app () in
  let ht_seed, _ =
    match
      Workload.find_failing_seed ~cause:Miniht.rc_race ~exclusive:true miniht
    with
    | Some (s, r) -> (s, r)
    | None -> invalid_arg "no miniht seed"
  in
  let regions = miniht.App.labeled.Label.prog.Ast.regions in
  let ft_rows =
    List.map
      (fun model ->
        let prepared = Session.prepare ?config model miniht in
        let original, log = Session.record prepared ~seed:ht_seed in
        let outcome = Session.replay prepared log in
        match outcome.Ddet_replay.Replayer.result with
        | None -> [ Model.name model; "-" ]
        | Some replay ->
          [ Model.name model; Report.fx (state_divergence ~regions ~original ~replay) ])
      frontier_models
  in
  let body =
    "Forensic analysis (adder, original inputs a=2 b=2 -> 5): an audit\n\
     must reproduce the exact I/O history, scored as the fraction of\n\
     channels whose input/output sequences match:\n\n"
    ^ Report.table
        ~headers:[ "model"; "forensic fidelity"; "evidence the audit would see" ]
        forensic_rows
    ^ "\n\nFault tolerance (miniht): a backup replayed from the log must end\n\
       in the same state; the table shows the fraction of shared cells\n\
       whose final value differs from the original:\n\n"
    ^ Report.table ~headers:[ "model"; "state divergence" ] ft_rows
    ^ "\n\nReading: output determinism is forensically unsound — it forges the\n\
       inputs behind the recorded output, so the audit blames the wrong\n\
       request. For fault tolerance, models that pin per-thread values or\n\
       sync order reach the zero divergence a backup needs, while the\n\
       ultra-relaxed models reach *a* failure state, not *the* state. The\n\
       sweet spot depends on the domain — exactly the paper's closing\n\
       question.\n"
  in
  {
    Experiment.title = "OPEN-DOMAINS forensic analysis and fault tolerance";
    body;
  }
