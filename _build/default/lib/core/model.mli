(** The determinism models under study — the x-axis of the paper's Fig. 1,
    plus the RCSE variants of §3.1. *)

type rcse_mode =
  | Code_based  (** control-plane code recorded precisely (§3.1.1) *)
  | Data_based  (** dial up on trained-invariant violation (§3.1.2) *)
  | Trigger_based  (** dial up on dynamic triggers, e.g. races (§3.1.3) *)
  | Combined  (** all of the above *)

type t =
  | Perfect  (** full interleaving + inputs; the ideal of Fig. 1 *)
  | Value  (** value determinism — iDNA *)
  | Sync  (** sync-schedule + inputs, races inferred — ODR's heavy scheme *)
  | Output  (** outputs only — ODR's light scheme *)
  | Failure_det  (** failure descriptor only — ESD *)
  | Rcse of rcse_mode  (** root-cause-driven selective recording *)

(** The chronological relaxation sequence of Fig. 1, ending with RCSE
    (combined) as the debug-determinism point. *)
val fig1_sequence : t list

val name : t -> string

(** [reference m] is the published system the model abstracts ("iDNA",
    "ODR", "ESD", ...), for reports. *)
val reference : t -> string

val of_string : string -> (t, string) result
val all_names : string list
