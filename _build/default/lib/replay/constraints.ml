open Mvm
open Ddet_record

let failure_matches log (r : Interp.result) =
  match Log.recorded_failure log, r.failure with
  | Some f, Some f' -> Failure.equal f f'
  | None, None -> true
  | Some _, None | None, Some _ -> false

let outputs_match log (r : Interp.result) =
  let logged = Log.outputs log in
  let got = r.outputs in
  List.length logged = List.length got
  && List.for_all2
       (fun (c1, vs1) (c2, vs2) ->
         String.equal c1 c2
         && List.length vs1 = List.length vs2
         && List.for_all2 Value.equal vs1 vs2)
       logged got

let output_prefix_abort log =
  let expected : (string, Value.t list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter (fun (c, vs) -> Hashtbl.replace expected c (ref vs)) (Log.outputs log);
  fun (e : Event.t) ->
    match e.kind with
    | Event.Out io -> (
      match Hashtbl.find_opt expected io.chan with
      | None -> Some ("unexpected output channel " ^ io.chan)
      | Some r -> (
        match !r with
        | [] -> Some ("extra output on " ^ io.chan)
        | v :: tl ->
          if Value.equal v io.value.Value.v then (
            r := tl;
            None)
          else Some ("output mismatch on " ^ io.chan)))
    | _ -> None

let both a b e = match a e with Some _ as r -> r | None -> b e
