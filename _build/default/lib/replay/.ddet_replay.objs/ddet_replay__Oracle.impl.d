lib/replay/oracle.ml: Ddet_record Event Hashtbl List Log Mvm Option Printf Prng Value World
