lib/replay/replayer.mli: Ddet_record Format Interp Label Log Mvm Search Spec
