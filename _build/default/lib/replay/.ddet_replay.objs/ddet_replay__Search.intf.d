lib/replay/search.mli: Event Interp Label Mvm Spec World
