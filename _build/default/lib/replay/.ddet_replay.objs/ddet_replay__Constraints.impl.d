lib/replay/constraints.ml: Ddet_record Event Failure Hashtbl Interp List Log Mvm String Value
