lib/replay/constraints.mli: Ddet_record Event Interp Log Mvm
