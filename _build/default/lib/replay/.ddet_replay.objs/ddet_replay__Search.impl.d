lib/replay/search.ml: Array Interp List Mvm Spec Value World
