lib/replay/replayer.ml: Constraints Format Interp Mvm Oracle Search Spec World
