lib/replay/oracle.mli: Ddet_record Event Log Mvm World
