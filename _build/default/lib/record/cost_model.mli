(** Recording cost model: converts a log into a runtime-overhead factor.

    The paper measures each model's recording overhead on real prototypes
    (Friday, ESD, SMP-ReVirt-style logging). Our substitute prices each log
    entry class once, with constants calibrated so the models land in the
    regimes those systems report, and then lets the *measured entry counts*
    on each workload decide who wins:

    - full-interleaving schedule points ([Sched], [Cp_sched]) are expensive:
      reproducing exact shared-access order on a multiprocessor needs
      CREW-style page protocols (SMP-ReVirt reports multi-x slowdowns);
    - logged values ([Read_val], [Input], ...) pay a small fixed cost plus a
      per-byte cost — value determinism is cheap per event but pays for the
      data-plane's volume (iDNA reports ~5x);
    - sync-schedule points are cheap (a counter append per lock/queue op);
    - the failure descriptor is a one-off post-mortem extraction: free at
      runtime.

    Overhead factor = (base_time + recording_time) / base_time, where
    base_time is one unit per scheduler step. *)

type t = {
  step_cost : float;  (** baseline cost of one VM step *)
  sched_cost : float;  (** per [Sched]/[Cp_sched] entry *)
  sync_cost : float;  (** per [Sync] entry *)
  value_fixed : float;  (** per logged-value entry, fixed part *)
  byte_cost : float;  (** per logged payload byte *)
  failure_cost : float;  (** per [Failure_desc] (post-mortem, ~0) *)
  flight_tax : float;
      (** per event buffered in an in-memory flight-recorder ring — a few
          percent of a step, the cost always-on tracing systems report *)
}

(** Calibrated defaults (see module doc; validated by the MICRO bench). *)
val default : t

(** [entry_cost t e] is the recording cost of one entry. *)
val entry_cost : t -> Log.entry -> float

(** [recording_cost t log] is the summed entry cost. *)
val recording_cost : t -> Log.t -> float

(** [overhead t log] is the runtime-overhead factor (>= 1.0). *)
val overhead : t -> Log.t -> float
