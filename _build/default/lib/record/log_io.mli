(** Log persistence: a line-oriented text format so recordings can be
    shipped from the production machine to the developer's replay session
    (the paper's workflow) and inspected with ordinary tools.

    Format: a header (`ddet-log v1`, recorder name, base steps, observed
    failure) followed by one entry per line. Values are typed
    (`i:`/`b:`/`s:`/`u`) with OCaml-escaped quoted strings, so payloads
    survive arbitrary bytes. *)

(** [to_string log] serialises. *)
val to_string : Log.t -> string

(** [of_string s] parses; [Error msg] names the offending line. *)
val of_string : string -> (Log.t, string) result

(** [save path log] writes the file. *)
val save : string -> Log.t -> unit

(** [load path] reads a log file back.
    @raise Sys_error on I/O failure; parse errors come back as [Error]. *)
val load : string -> (Log.t, string) result
