let create () =
  let _add, finalize = Recorder.accumulator ~name:"failure" () in
  Recorder.make ~name:"failure" ~on_event:(fun _ -> ()) ~finalize
