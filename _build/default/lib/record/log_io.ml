open Mvm

(* ------------------------------------------------------------------ *)
(* encoding *)

let enc_value = function
  | Value.Vint n -> "i:" ^ string_of_int n
  | Value.Vbool b -> "b:" ^ string_of_bool b
  | Value.Vstr s -> "s:\"" ^ String.escaped s ^ "\""
  | Value.Vunit -> "u"

let enc_failure = function
  | Failure.Crash { sid; msg } ->
    Printf.sprintf "crash %d \"%s\"" sid (String.escaped msg)
  | Failure.Spec_violation tag -> Printf.sprintf "spec \"%s\"" (String.escaped tag)
  | Failure.Hang -> "hang"

let enc_op = function
  | Log.Op_send c -> "send " ^ c
  | Log.Op_recv c -> "recv " ^ c
  | Log.Op_spawn -> "spawn -"
  | Log.Op_lock m -> "lock " ^ m
  | Log.Op_unlock m -> "unlock " ^ m

let enc_entry = function
  | Log.Sched { tid; sid } -> Printf.sprintf "sched %d %d" tid sid
  | Log.Input { tid; chan; value } ->
    Printf.sprintf "input %d %s %s" tid chan (enc_value value)
  | Log.Read_val { tid; sid; kind; value } ->
    Printf.sprintf "readval %d %d %s %s" tid sid
      (match kind with Log.Mem -> "mem" | Log.Msg -> "msg")
      (enc_value value)
  | Log.Output { chan; value } ->
    Printf.sprintf "output %s %s" chan (enc_value value)
  | Log.Sync { tid; sid; op } -> Printf.sprintf "sync %d %d %s" tid sid (enc_op op)
  | Log.Cp_sched { tid; sid } -> Printf.sprintf "cpsched %d %d" tid sid
  | Log.Cp_input { tid; sid; chan; value } ->
    Printf.sprintf "cpinput %d %d %s %s" tid sid chan (enc_value value)
  | Log.Failure_desc f -> "faildesc " ^ enc_failure f
  | Log.Flight_note { buffered } -> Printf.sprintf "flight %d" buffered
  | Log.Mark m -> Printf.sprintf "mark \"%s\"" (String.escaped m)

let to_string (log : Log.t) =
  let b = Buffer.create 4096 in
  Buffer.add_string b "ddet-log v1\n";
  Buffer.add_string b (Printf.sprintf "recorder \"%s\"\n" (String.escaped log.Log.recorder));
  Buffer.add_string b (Printf.sprintf "base-steps %d\n" log.Log.base_steps);
  Buffer.add_string b
    (match log.Log.failure with
    | Some f -> "failure " ^ enc_failure f ^ "\n"
    | None -> "failure none\n");
  List.iter
    (fun e ->
      Buffer.add_string b (enc_entry e);
      Buffer.add_char b '\n')
    log.Log.entries;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* decoding *)

exception Parse of string

(* Split a line into space-separated tokens. A double quote opens an
   OCaml-escaped string span that runs to the matching close quote; the
   span (with a leading '"' marker) stays part of the current token, so
   both bare strings ([mark "a b"]) and typed values ([s:"a b"]) arrive as
   single tokens. *)
let tokens line =
  let n = String.length line in
  let out = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  let rec plain i =
    if i >= n then flush ()
    else
      match line.[i] with
      | ' ' -> flush (); plain (i + 1)
      | '"' ->
        Buffer.add_char buf '"';
        quoted (i + 1)
      | c -> Buffer.add_char buf c; plain (i + 1)
  and quoted i =
    if i >= n then raise (Parse ("unterminated string in: " ^ line))
    else
      match line.[i] with
      | '"' -> plain (i + 1)
      | '\\' when i + 1 < n ->
        Buffer.add_char buf '\\';
        Buffer.add_char buf line.[i + 1];
        quoted (i + 2)
      | c -> Buffer.add_char buf c; quoted (i + 1)
  in
  plain 0;
  List.rev !out

let unescape s = Scanf.unescaped s

let dec_string tok =
  if String.length tok > 0 && tok.[0] = '"' then
    unescape (String.sub tok 1 (String.length tok - 1))
  else raise (Parse ("expected quoted string, got " ^ tok))

let dec_value tok =
  if tok = "u" then Value.unit
  else if String.length tok > 2 && String.sub tok 0 2 = "i:" then
    Value.int (int_of_string (String.sub tok 2 (String.length tok - 2)))
  else if String.length tok > 2 && String.sub tok 0 2 = "b:" then
    Value.bool (bool_of_string (String.sub tok 2 (String.length tok - 2)))
  else if String.length tok > 2 && String.sub tok 0 2 = "s:" then
    Value.str (dec_string (String.sub tok 2 (String.length tok - 2)))
  else raise (Parse ("bad value token " ^ tok))

let dec_failure = function
  | [ "crash"; sid; msg ] ->
    Failure.Crash { sid = int_of_string sid; msg = dec_string msg }
  | [ "spec"; tag ] -> Failure.Spec_violation (dec_string tag)
  | [ "hang" ] -> Failure.Hang
  | toks -> raise (Parse ("bad failure: " ^ String.concat " " toks))

let dec_op op obj =
  match op with
  | "send" -> Log.Op_send obj
  | "recv" -> Log.Op_recv obj
  | "spawn" -> Log.Op_spawn
  | "lock" -> Log.Op_lock obj
  | "unlock" -> Log.Op_unlock obj
  | _ -> raise (Parse ("bad sync op " ^ op))

let dec_entry line =
  match tokens line with
  | [ "sched"; tid; sid ] ->
    Log.Sched { tid = int_of_string tid; sid = int_of_string sid }
  | [ "input"; tid; chan; v ] ->
    Log.Input { tid = int_of_string tid; chan; value = dec_value v }
  | [ "readval"; tid; sid; kind; v ] ->
    Log.Read_val
      {
        tid = int_of_string tid;
        sid = int_of_string sid;
        kind =
          (match kind with
          | "mem" -> Log.Mem
          | "msg" -> Log.Msg
          | _ -> raise (Parse ("bad read kind " ^ kind)));
        value = dec_value v;
      }
  | [ "output"; chan; v ] -> Log.Output { chan; value = dec_value v }
  | [ "sync"; tid; sid; op; obj ] ->
    Log.Sync { tid = int_of_string tid; sid = int_of_string sid; op = dec_op op obj }
  | [ "cpsched"; tid; sid ] ->
    Log.Cp_sched { tid = int_of_string tid; sid = int_of_string sid }
  | [ "cpinput"; tid; sid; chan; v ] ->
    Log.Cp_input
      {
        tid = int_of_string tid;
        sid = int_of_string sid;
        chan;
        value = dec_value v;
      }
  | "faildesc" :: rest -> Log.Failure_desc (dec_failure rest)
  | [ "flight"; n ] -> Log.Flight_note { buffered = int_of_string n }
  | [ "mark"; m ] -> Log.Mark (dec_string m)
  | _ -> raise (Parse ("bad entry: " ^ line))

let of_string s =
  try
    let lines =
      String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "")
    in
    match lines with
    | magic :: recorder_line :: steps_line :: failure_line :: entry_lines ->
      if String.trim magic <> "ddet-log v1" then
        Error ("bad magic: " ^ magic)
      else begin
        let recorder =
          match tokens recorder_line with
          | [ "recorder"; name ] -> dec_string name
          | _ -> raise (Parse ("bad recorder line: " ^ recorder_line))
        in
        let base_steps =
          match tokens steps_line with
          | [ "base-steps"; n ] -> int_of_string n
          | _ -> raise (Parse ("bad base-steps line: " ^ steps_line))
        in
        let failure =
          match tokens failure_line with
          | [ "failure"; "none" ] -> None
          | "failure" :: rest -> Some (dec_failure rest)
          | _ -> raise (Parse ("bad failure line: " ^ failure_line))
        in
        let entries = List.map dec_entry entry_lines in
        Ok (Log.make ~recorder ~entries ~base_steps ~failure)
      end
    | _ -> Error "truncated log header"
  with
  | Parse msg -> Error msg
  | Stdlib.Failure msg -> Error msg
  | Scanf.Scan_failure msg -> Error msg

let save path log =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string log))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (In_channel.input_all ic))
