(** Recorder interface and the record-time driver.

    A recorder observes the event stream of a production run (attached as an
    interpreter monitor) and finalises a {!Log.t} when the run completes.
    Each determinism model is one recorder implementation. *)

open Mvm

type t = {
  name : string;
  on_event : Event.t -> unit;  (** called for every event, in order *)
  finalize : Interp.result -> Log.t;
      (** called once, with the spec-judged result of the recorded run *)
}

(** [make ~name ~on_event ~finalize] builds a recorder. *)
val make :
  name:string ->
  on_event:(Event.t -> unit) ->
  finalize:(Interp.result -> Log.t) ->
  t

(** [record ?max_steps recorder labeled ~spec ~world] runs the program under
    [world] with [recorder] attached, applies [spec], and finalises the log.
    This is "production time" in the paper's sense: the world is typically
    {!Mvm.World.random}. *)
val record :
  ?max_steps:int ->
  t ->
  Label.labeled ->
  spec:Spec.t ->
  world:World.t ->
  Interp.result * Log.t

(** [accumulator ()] is the common building block: an entry buffer plus an
    [add] function and a [finalize] that appends the failure descriptor of
    the judged run. Recorder implementations push entries into it from
    their [on_event]. *)
val accumulator :
  name:string ->
  unit ->
  (Log.entry -> unit) * (Interp.result -> Log.t)
