lib/record/value_recorder.mli: Recorder
