lib/record/recorder.ml: Event Interp Log Mvm Spec Vec
