lib/record/log.mli: Failure Format Mvm Value
