lib/record/rcse_recorder.mli: Fidelity_level Recorder
