lib/record/full_recorder.mli: Recorder
