lib/record/value_recorder.ml: Event Log Mvm Recorder Value
