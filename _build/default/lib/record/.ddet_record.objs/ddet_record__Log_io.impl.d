lib/record/log_io.ml: Buffer Failure Fun In_channel List Log Mvm Printf Scanf Stdlib String Value
