lib/record/log_io.mli: Log
