lib/record/failure_recorder.mli: Recorder
