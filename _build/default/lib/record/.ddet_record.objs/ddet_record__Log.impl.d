lib/record/log.ml: Failure Format Hashtbl List Mvm Option String Value
