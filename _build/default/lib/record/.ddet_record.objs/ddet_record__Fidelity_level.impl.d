lib/record/fidelity_level.ml: List Mvm String
