lib/record/output_recorder.ml: Event Log Mvm Recorder Value
