lib/record/rcse_recorder.ml: Event Fidelity_level List Log Mvm Option Queue Recorder Value
