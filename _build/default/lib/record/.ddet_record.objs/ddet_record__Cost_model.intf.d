lib/record/cost_model.mli: Log
