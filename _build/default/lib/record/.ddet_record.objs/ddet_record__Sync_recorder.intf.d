lib/record/sync_recorder.mli: Recorder
