lib/record/fidelity_level.mli: Mvm
