lib/record/sync_recorder.ml: Event Log Mvm Recorder Value
