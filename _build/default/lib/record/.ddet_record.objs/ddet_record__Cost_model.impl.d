lib/record/cost_model.ml: List Log Mvm Value
