lib/record/recorder.mli: Event Interp Label Log Mvm Spec World
