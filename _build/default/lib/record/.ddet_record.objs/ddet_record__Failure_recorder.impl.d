lib/record/failure_recorder.ml: Recorder
