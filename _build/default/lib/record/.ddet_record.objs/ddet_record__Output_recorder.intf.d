lib/record/output_recorder.mli: Recorder
