lib/record/full_recorder.ml: Event Log Mvm Recorder Value
