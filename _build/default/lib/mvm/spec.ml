type t = {
  name : string;
  check : Interp.result -> (unit, string) result;
}

let make name check = { name; check }

let apply spec (r : Interp.result) =
  match r.status with
  | Interp.Done -> (
    match spec.check r with
    | Ok () -> r
    | Error tag -> { r with failure = Some (Failure.Spec_violation tag) })
  | Interp.Crashed _ | Interp.Deadlock | Interp.Step_limit | Interp.Aborted _ ->
    r

let accept_all = make "accept-all" (fun _ -> Ok ())

let outputs_equal ~expected =
  make "outputs-equal" (fun r ->
      let sorted =
        List.sort (fun (a, _) (b, _) -> String.compare a b) expected
      in
      let got = r.Interp.outputs in
      let eq =
        List.length sorted = List.length got
        && List.for_all2
             (fun (c1, vs1) (c2, vs2) ->
               String.equal c1 c2
               && List.length vs1 = List.length vs2
               && List.for_all2 Value.equal vs1 vs2)
             sorted got
      in
      if eq then Ok () else Error "unexpected-output")
