(** Execution events: everything a recorder, analysis or replay constraint
    can observe about a run.

    Each executed statement produces one [Step] event followed by zero or
    more effect events, all stamped with the same step number, thread id,
    site id and enclosing function. *)

type access = {
  region : string;
  index : int option;  (** [None] for scalar regions *)
  value : Value.tagged;
}

type io = { chan : string; value : Value.tagged }

type kind =
  | Step  (** the scheduler ran one statement of this thread at this site *)
  | Read of access
  | Write of access
  | In of io  (** nondeterministic input consumed *)
  | Out of io  (** observable output produced *)
  | Msg_send of io
  | Msg_recv of io
  | Lock_acq of string
  | Lock_rel of string
  | Spawned of { child : int; fname : string }
  | Crashed of string

type t = {
  step : int;
  tid : int;
  sid : int;
  fname : string;
  kind : kind;
}

(** [is_sync e] is [true] for synchronisation events (lock, message send and
    receive, spawn) — the events an ODR-style sync-schedule recorder logs. *)
val is_sync : t -> bool

(** [is_shared_access e] is [true] for [Read]/[Write] events. *)
val is_shared_access : t -> bool

(** [kind_name e] is a short tag for reports ("step", "read", ...). *)
val kind_name : t -> string

(** [data_bytes e] is the number of input-derived (tainted) bytes the event
    moves; untainted values count zero. Feeds data-rate classification. *)
val data_bytes : t -> int

val pp : Format.formatter -> t -> unit
