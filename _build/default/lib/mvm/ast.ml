type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or
  | Concat
  | Min | Max

type unop = Not | Neg | Str_len

type expr =
  | Const of Value.t
  | Var of string
  | Load of string * expr
  | Load_scalar of string
  | Arr_len of string
  | Binop of binop * expr * expr
  | Unop of unop * expr

type stmt = { sid : int; node : node }

and node =
  | Skip
  | Assign of string * expr
  | Store of string * expr * expr
  | Store_scalar of string * expr
  | If of expr * block * block
  | While of expr * block
  | Input of string * string
  | Output of string * expr
  | Send of string * expr
  | Recv of string * string
  | Try_recv of string * string * string
  | Lock of string
  | Unlock of string
  | Spawn of string * expr list
  | Call of string option * string * expr list
  | Return of expr
  | Assert of expr * string
  | Fail of string
  | Yield
  | Atomic of block

and block = stmt list

type func = { fname : string; params : string list; body : block }

type region_decl =
  | Scalar_decl of string * Value.t
  | Array_decl of string * int * Value.t

type program = {
  name : string;
  funcs : func list;
  main : string;
  regions : region_decl list;
  input_domains : (string * Value.t list) list;
}

let find_func p name = List.find_opt (fun f -> String.equal f.fname name) p.funcs

let domain_of p chan = List.assoc_opt chan p.input_domains

let rec fold_block f acc fname block =
  List.fold_left
    (fun acc stmt ->
      let acc = f acc fname stmt in
      match stmt.node with
      | If (_, b1, b2) ->
        let acc = fold_block f acc fname b1 in
        fold_block f acc fname b2
      | While (_, b) | Atomic b -> fold_block f acc fname b
      | Skip | Assign _ | Store _ | Store_scalar _ | Input _ | Output _
      | Send _ | Recv _ | Try_recv _ | Lock _ | Unlock _ | Spawn _ | Call _
      | Return _ | Assert _ | Fail _ | Yield ->
        acc)
    acc block

let fold_stmts f acc p =
  List.fold_left (fun acc fn -> fold_block f acc fn.fname fn.body) acc p.funcs

let binop_to_string = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "&&" | Or -> "||" | Concat -> "^" | Min -> "min" | Max -> "max"

let pp_binop ppf op = Format.pp_print_string ppf (binop_to_string op)

let rec pp_expr ppf = function
  | Const v -> Value.pp ppf v
  | Var x -> Format.pp_print_string ppf x
  | Load (r, e) -> Format.fprintf ppf "%s[%a]" r pp_expr e
  | Load_scalar r -> Format.fprintf ppf "$%s" r
  | Arr_len r -> Format.fprintf ppf "len(%s)" r
  | Binop (op, a, b) -> Format.fprintf ppf "(%a %a %a)" pp_expr a pp_binop op pp_expr b
  | Unop (Not, e) -> Format.fprintf ppf "!%a" pp_expr e
  | Unop (Neg, e) -> Format.fprintf ppf "-%a" pp_expr e
  | Unop (Str_len, e) -> Format.fprintf ppf "strlen(%a)" pp_expr e

let node_kind = function
  | Skip -> "skip"
  | Assign _ -> "assign"
  | Store _ -> "store"
  | Store_scalar _ -> "store"
  | If _ -> "if"
  | While _ -> "while"
  | Input _ -> "input"
  | Output _ -> "output"
  | Send _ -> "send"
  | Recv _ -> "recv"
  | Try_recv _ -> "try_recv"
  | Lock _ -> "lock"
  | Unlock _ -> "unlock"
  | Spawn _ -> "spawn"
  | Call _ -> "call"
  | Return _ -> "return"
  | Assert _ -> "assert"
  | Fail _ -> "fail"
  | Yield -> "yield"
  | Atomic _ -> "atomic"

let rec pp_stmt ppf { sid; node } =
  match node with
  | Skip -> Format.fprintf ppf "@[#%d skip@]" sid
  | Assign (x, e) -> Format.fprintf ppf "@[#%d %s := %a@]" sid x pp_expr e
  | Store (r, i, e) -> Format.fprintf ppf "@[#%d %s[%a] := %a@]" sid r pp_expr i pp_expr e
  | Store_scalar (r, e) -> Format.fprintf ppf "@[#%d $%s := %a@]" sid r pp_expr e
  | If (c, b1, b2) ->
    Format.fprintf ppf "@[<v 2>#%d if %a {@,%a@]@,@[<v 2>} else {@,%a@]@,}" sid pp_expr c
      pp_block b1 pp_block b2
  | While (c, b) ->
    Format.fprintf ppf "@[<v 2>#%d while %a {@,%a@]@,}" sid pp_expr c pp_block b
  | Input (x, ch) -> Format.fprintf ppf "@[#%d %s := input(%s)@]" sid x ch
  | Output (ch, e) -> Format.fprintf ppf "@[#%d output(%s, %a)@]" sid ch pp_expr e
  | Send (ch, e) -> Format.fprintf ppf "@[#%d send(%s, %a)@]" sid ch pp_expr e
  | Recv (x, ch) -> Format.fprintf ppf "@[#%d %s := recv(%s)@]" sid x ch
  | Try_recv (ok, x, ch) ->
    Format.fprintf ppf "@[#%d (%s, %s) := try_recv(%s)@]" sid ok x ch
  | Lock m -> Format.fprintf ppf "@[#%d lock(%s)@]" sid m
  | Unlock m -> Format.fprintf ppf "@[#%d unlock(%s)@]" sid m
  | Spawn (fn, args) ->
    Format.fprintf ppf "@[#%d spawn %s(%a)@]" sid fn pp_args args
  | Call (None, fn, args) -> Format.fprintf ppf "@[#%d %s(%a)@]" sid fn pp_args args
  | Call (Some x, fn, args) ->
    Format.fprintf ppf "@[#%d %s := %s(%a)@]" sid x fn pp_args args
  | Return e -> Format.fprintf ppf "@[#%d return %a@]" sid pp_expr e
  | Assert (e, msg) -> Format.fprintf ppf "@[#%d assert %a %S@]" sid pp_expr e msg
  | Fail msg -> Format.fprintf ppf "@[#%d fail %S@]" sid msg
  | Yield -> Format.fprintf ppf "@[#%d yield@]" sid
  | Atomic b -> Format.fprintf ppf "@[<v 2>#%d atomic {@,%a@]@,}" sid pp_block b

and pp_block ppf block =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt ppf block

and pp_args ppf args =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    pp_expr ppf args

let pp_region ppf = function
  | Scalar_decl (r, v) -> Format.fprintf ppf "scalar %s = %a" r Value.pp v
  | Array_decl (r, n, v) -> Format.fprintf ppf "array %s[%d] = %a" r n Value.pp v

let pp_func ppf f =
  Format.fprintf ppf "@[<v 2>func %s(%s) {@,%a@]@,}" f.fname
    (String.concat ", " f.params)
    pp_block f.body

let pp_program ppf p =
  Format.fprintf ppf "@[<v>program %s (main = %s)@,%a@,%a@]" p.name p.main
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_region)
    p.regions
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_func)
    p.funcs
