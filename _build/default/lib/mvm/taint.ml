module S = Set.Make (String)

type t = S.t

let empty = S.empty
let singleton = S.singleton
let union = S.union
let mem = S.mem
let is_empty = S.is_empty
let elements = S.elements
let equal = S.equal

let pp ppf t =
  Format.fprintf ppf "{%s}" (String.concat "," (elements t))
