(** Abstract syntax of the mini-VM's concurrent imperative language.

    The language is deliberately small but expressive enough to encode the
    paper's workloads: threads, shared scalars and arrays, locks, FIFO
    message channels, named input channels (the only source of data
    nondeterminism) and named output channels (the observable behaviour an
    I/O specification judges).

    {b Atomicity model.} The interpreter interleaves threads at statement
    granularity: expressions are pure and evaluate atomically within one
    step. Data races therefore occur between statements (e.g. a
    load-compute-store sequence), which is exactly the granularity the
    paper's bugs need. *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or
  | Concat
  | Min | Max

type unop = Not | Neg | Str_len

type expr =
  | Const of Value.t
  | Var of string  (** thread-local variable or parameter *)
  | Load of string * expr  (** shared array cell: region name, index *)
  | Load_scalar of string  (** shared scalar region *)
  | Arr_len of string  (** static length of a shared array region *)
  | Binop of binop * expr * expr
  | Unop of unop * expr

(** A statement labelled with a site id. The [Dsl] builds statements with
    [sid = 0]; [Label.program] renumbers every site uniquely and records a
    site table used by recorders, replay oracles and analyses. *)
type stmt = { sid : int; node : node }

and node =
  | Skip
  | Assign of string * expr
  | Store of string * expr * expr  (** region, index, value *)
  | Store_scalar of string * expr
  | If of expr * block * block
  | While of expr * block
  | Input of string * string  (** destination variable, input channel *)
  | Output of string * expr  (** output channel, value *)
  | Send of string * expr  (** FIFO message channel, value *)
  | Recv of string * string  (** destination variable, channel; blocks *)
  | Try_recv of string * string * string
      (** ok variable (bool), destination variable, channel; never blocks *)
  | Lock of string
  | Unlock of string
  | Spawn of string * expr list  (** function name, arguments *)
  | Call of string option * string * expr list
      (** optional destination variable, function name, arguments *)
  | Return of expr
  | Assert of expr * string  (** crash with the message when false *)
  | Fail of string  (** unconditional crash *)
  | Yield
  | Atomic of block
      (** execute the whole block in one scheduler step; blocking inside an
          atomic block is a runtime error *)

and block = stmt list

type func = { fname : string; params : string list; body : block }

type region_decl =
  | Scalar_decl of string * Value.t  (** name, initial value *)
  | Array_decl of string * int * Value.t  (** name, length, fill value *)

type program = {
  name : string;
  funcs : func list;
  main : string;  (** entry function, run as thread 0 with no arguments *)
  regions : region_decl list;
  input_domains : (string * Value.t list) list;
      (** finite value domain per input channel; inference searches over
          these, so keep them small *)
}

(** [find_func p name] looks a function up by name. *)
val find_func : program -> string -> func option

(** [domain_of p chan] is the input domain declared for [chan], if any. *)
val domain_of : program -> string -> Value.t list option

(** [fold_stmts f acc p] folds [f] over every statement of every function,
    recursing into blocks. *)
val fold_stmts : ('acc -> string -> stmt -> 'acc) -> 'acc -> program -> 'acc

val pp_binop : Format.formatter -> binop -> unit
val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : Format.formatter -> stmt -> unit
val pp_program : Format.formatter -> program -> unit

(** [node_kind n] is a short constructor name ("assign", "store", ...) used
    in site tables and reports. *)
val node_kind : node -> string
