open Ast

type site = { fname : string; kind : string }

type table = (int, site) Hashtbl.t

type labeled = { prog : Ast.program; table : table }

let relabel table counter fname block =
  let rec stmt s =
    incr counter;
    let sid = !counter in
    let node =
      match s.node with
      | If (c, b1, b2) -> If (c, blk b1, blk b2)
      | While (c, b) -> While (c, blk b)
      | Atomic b -> Atomic (blk b)
      | ( Skip | Assign _ | Store _ | Store_scalar _ | Input _ | Output _
        | Send _ | Recv _ | Try_recv _ | Lock _ | Unlock _ | Spawn _ | Call _
        | Return _ | Assert _ | Fail _ | Yield ) as n ->
        n
    in
    Hashtbl.replace table sid { fname; kind = node_kind node };
    { sid; node }
  and blk b = List.map stmt b in
  blk block

(* Static sanity checks: catching a typo'd function or region name at
   program-construction time beats debugging a crash mid-experiment. *)
let validate p =
  let fail fmt = Format.kasprintf invalid_arg fmt in
  let func_names = List.map (fun (f : Ast.func) -> f.fname) p.funcs in
  let scalars, arrays =
    List.partition_map
      (function
        | Scalar_decl (r, _) -> Left r
        | Array_decl (r, _, _) -> Right r)
      p.regions
  in
  let check_func name =
    if not (List.mem name func_names) then
      fail "program %s: undefined function %s" p.name name
  in
  check_func p.main;
  let check_scalar r =
    if not (List.mem r scalars) then
      fail "program %s: undeclared scalar region %s" p.name r
  in
  let check_array r =
    if not (List.mem r arrays) then
      fail "program %s: undeclared array region %s" p.name r
  in
  let check_input ch =
    if not (List.mem_assoc ch p.input_domains) then
      fail "program %s: input channel %s has no declared domain" p.name ch
  in
  let rec expr = function
    | Const _ | Var _ -> ()
    | Load (r, e) -> check_array r; expr e
    | Load_scalar r -> check_scalar r
    | Arr_len r -> check_array r
    | Binop (_, a, b) -> expr a; expr b
    | Unop (_, e) -> expr e
  in
  ignore
    (fold_stmts
       (fun () _ s ->
         match s.node with
         | Assign (_, e) -> expr e
         | Store (r, i, e) -> check_array r; expr i; expr e
         | Store_scalar (r, e) -> check_scalar r; expr e
         | If (c, _, _) | While (c, _) -> expr c
         | Input (_, ch) -> check_input ch
         | Output (_, e) | Send (_, e) | Return e | Assert (e, _) -> expr e
         | Spawn (fn, args) | Call (_, fn, args) ->
           check_func fn;
           List.iter expr args
         | Skip | Recv _ | Try_recv _ | Lock _ | Unlock _ | Fail _ | Yield
         | Atomic _ ->
           ())
       () p)

let program p =
  validate p;
  let table = Hashtbl.create 64 in
  let counter = ref 0 in
  let funcs =
    List.map
      (fun (f : Ast.func) ->
        { f with body = relabel table counter f.fname f.body })
      p.funcs
  in
  { prog = { p with funcs }; table }

let site t sid = Hashtbl.find t sid

let fname_of t sid = (site t sid).fname

let sites t =
  Hashtbl.fold (fun sid s acc -> (sid, s) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let n_sites t = Hashtbl.length t

let sites_of_fname t fname =
  sites t
  |> List.filter_map (fun (sid, s) ->
         if String.equal s.fname fname then Some sid else None)
