(** Observable failures, in the paper's sense (§3): a program fails when it
    produces output that violates its I/O specification — including crashes
    and performance anomalies encoded in the specification. *)

type t =
  | Crash of { sid : int; msg : string }
      (** assertion failure or runtime error at site [sid]. The thread id is
          deliberately not part of the failure identity: a replay may
          renumber threads yet reproduce the same failure. *)
  | Spec_violation of string
      (** the I/O specification rejected the run; the string is a stable
          failure tag (e.g. "missing-rows"), not free-form prose *)
  | Hang  (** deadlock or step-limit exhaustion *)

(** [equal a b] — failure identity, the relation "same failure as the
    original" that every determinism model is judged against. *)
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
