type t = {
  scalars : (string, Value.tagged ref) Hashtbl.t;
  arrays : (string, Value.tagged array) Hashtbl.t;
}

exception Bounds of { region : string; index : int; length : int }

let create decls =
  let t = { scalars = Hashtbl.create 16; arrays = Hashtbl.create 16 } in
  List.iter
    (function
      | Ast.Scalar_decl (r, v) -> Hashtbl.replace t.scalars r (ref (Value.untainted v))
      | Ast.Array_decl (r, n, v) ->
        Hashtbl.replace t.arrays r (Array.make n (Value.untainted v)))
    decls;
  t

let scalar_ref t r =
  match Hashtbl.find_opt t.scalars r with
  | Some cell -> cell
  | None -> invalid_arg ("Memory: undeclared scalar region " ^ r)

let arr t r =
  match Hashtbl.find_opt t.arrays r with
  | Some a -> a
  | None -> invalid_arg ("Memory: undeclared array region " ^ r)

let load t r = !(scalar_ref t r)
let store t r v = scalar_ref t r := v

let check_bounds region a index =
  let length = Array.length a in
  if index < 0 || index >= length then raise (Bounds { region; index; length })

let load_arr t r i =
  let a = arr t r in
  check_bounds r a i;
  a.(i)

let store_arr t r i v =
  let a = arr t r in
  check_bounds r a i;
  a.(i) <- v

let arr_length t r = Array.length (arr t r)

let scalars t =
  Hashtbl.fold (fun r cell acc -> (r, !cell.Value.v) :: acc) t.scalars []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
