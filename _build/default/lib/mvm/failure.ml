type t =
  | Crash of { sid : int; msg : string }
  | Spec_violation of string
  | Hang

let equal a b =
  match a, b with
  | Crash x, Crash y -> x.sid = y.sid && String.equal x.msg y.msg
  | Spec_violation x, Spec_violation y -> String.equal x y
  | Hang, Hang -> true
  | (Crash _ | Spec_violation _ | Hang), _ -> false

let to_string = function
  | Crash { sid; msg } -> Printf.sprintf "crash@%d: %s" sid msg
  | Spec_violation tag -> Printf.sprintf "spec-violation: %s" tag
  | Hang -> "hang"

let pp ppf t = Format.pp_print_string ppf (to_string t)
