type t = { mutable state : int64 }

(* splitmix64 (Steele, Lea, Flood 2014): tiny state, good distribution,
   trivially reproducible across platforms. *)

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = next t }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* keep 62 bits so the native int is always non-negative *)
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let bool t = Int64.logand (next t) 1L = 1L

let float t =
  let v = Int64.to_int (Int64.shift_right_logical (next t) 11) in
  float_of_int v /. float_of_int (1 lsl 53)

let pick t xs =
  match xs with
  | [] -> invalid_arg "Prng.pick: empty list"
  | _ -> List.nth xs (int t (List.length xs))
