lib/mvm/memory.ml: Array Ast Hashtbl List String Value
