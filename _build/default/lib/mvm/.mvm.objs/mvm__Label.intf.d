lib/mvm/label.mli: Ast
