lib/mvm/event.ml: Format Printf Taint Value
