lib/mvm/vec.ml: Array List
