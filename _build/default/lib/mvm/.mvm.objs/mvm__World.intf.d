lib/mvm/world.mli: Value
