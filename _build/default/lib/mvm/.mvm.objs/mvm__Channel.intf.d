lib/mvm/channel.mli: Value
