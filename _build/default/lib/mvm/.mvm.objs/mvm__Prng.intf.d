lib/mvm/prng.mli:
