lib/mvm/label.ml: Ast Format Hashtbl List String
