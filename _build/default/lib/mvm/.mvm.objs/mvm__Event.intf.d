lib/mvm/event.mli: Format Value
