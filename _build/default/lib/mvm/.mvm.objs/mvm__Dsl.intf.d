lib/mvm/dsl.mli: Ast Label Value
