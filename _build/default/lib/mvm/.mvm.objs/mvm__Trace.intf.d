lib/mvm/trace.mli: Event Format Value
