lib/mvm/trace.ml: Event Format Hashtbl List Option String Value Vec
