lib/mvm/proggen.ml: Dsl List Printf Prng Value
