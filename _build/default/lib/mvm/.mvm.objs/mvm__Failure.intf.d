lib/mvm/failure.mli: Format
