lib/mvm/prng.ml: Int64 List
