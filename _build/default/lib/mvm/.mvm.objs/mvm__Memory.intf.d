lib/mvm/memory.mli: Ast Value
