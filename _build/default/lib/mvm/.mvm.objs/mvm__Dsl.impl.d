lib/mvm/dsl.ml: Ast Label Value
