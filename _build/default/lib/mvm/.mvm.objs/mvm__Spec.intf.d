lib/mvm/spec.mli: Interp Value
