lib/mvm/interp.mli: Event Failure Label Trace Value World
