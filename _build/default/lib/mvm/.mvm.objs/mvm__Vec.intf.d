lib/mvm/vec.mli:
