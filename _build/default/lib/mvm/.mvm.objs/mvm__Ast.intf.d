lib/mvm/ast.mli: Format Value
