lib/mvm/interp.ml: Ast Channel Event Failure Hashtbl Label List Memory Option Printf String Taint Trace Value Vec World
