lib/mvm/ast.ml: Format List String Value
