lib/mvm/value.ml: Format Printf Stdlib String Taint
