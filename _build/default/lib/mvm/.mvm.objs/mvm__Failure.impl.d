lib/mvm/failure.ml: Format Printf String
