lib/mvm/value.mli: Format Taint
