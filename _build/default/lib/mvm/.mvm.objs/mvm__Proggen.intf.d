lib/mvm/proggen.mli: Label Prng
