lib/mvm/taint.mli: Format
