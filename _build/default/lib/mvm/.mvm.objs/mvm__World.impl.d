lib/mvm/world.ml: List Printf Prng Value
