lib/mvm/channel.ml: Hashtbl Queue Value
