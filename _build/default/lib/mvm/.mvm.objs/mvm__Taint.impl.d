lib/mvm/taint.ml: Format Set String
