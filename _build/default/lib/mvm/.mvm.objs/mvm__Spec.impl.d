lib/mvm/spec.ml: Failure Interp List String Value
