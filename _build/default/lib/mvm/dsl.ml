open Ast

let i n = Const (Value.int n)
let b x = Const (Value.bool x)
let s x = Const (Value.str x)
let v x = Var x
let g r = Load_scalar r
let idx r e = Load (r, e)
let arr_len r = Arr_len r

let ( +: ) a b = Binop (Add, a, b)
let ( -: ) a b = Binop (Sub, a, b)
let ( *: ) a b = Binop (Mul, a, b)
let ( /: ) a b = Binop (Div, a, b)
let ( %: ) a b = Binop (Mod, a, b)
let ( =: ) a b = Binop (Eq, a, b)
let ( <>: ) a b = Binop (Ne, a, b)
let ( <: ) a b = Binop (Lt, a, b)
let ( <=: ) a b = Binop (Le, a, b)
let ( >: ) a b = Binop (Gt, a, b)
let ( >=: ) a b = Binop (Ge, a, b)
let ( &&: ) a b = Binop (And, a, b)
let ( ||: ) a b = Binop (Or, a, b)
let ( ^: ) a b = Binop (Concat, a, b)
let not_ e = Unop (Not, e)
let str_len e = Unop (Str_len, e)
let min_ a b = Binop (Min, a, b)
let max_ a b = Binop (Max, a, b)

let mk node = { sid = 0; node }

let skip = mk Skip
let assign x e = mk (Assign (x, e))
let store r ie e = mk (Store (r, ie, e))
let store_g r e = mk (Store_scalar (r, e))
let if_ c b1 b2 = mk (If (c, b1, b2))
let when_ c b1 = mk (If (c, b1, []))
let while_ c body = mk (While (c, body))

let for_ x lo hi body =
  if_ (b true)
    [ assign x lo; while_ (v x <: hi) (body @ [ assign x (v x +: i 1) ]) ]
    []

let input x ch = mk (Input (x, ch))
let output ch e = mk (Output (ch, e))
let send ch e = mk (Send (ch, e))
let recv x ch = mk (Recv (x, ch))
let try_recv ok x ch = mk (Try_recv (ok, x, ch))
let lock m = mk (Lock m)
let unlock m = mk (Unlock m)
let spawn fn args = mk (Spawn (fn, args))
let call ?dest fn args = mk (Call (dest, fn, args))
let return e = mk (Return e)
let assert_ e msg = mk (Assert (e, msg))
let fail msg = mk (Fail msg)
let yield = mk Yield
let atomic body = mk (Atomic body)

let func fname params body = { fname; params; body }
let scalar r v0 = Scalar_decl (r, v0)
let array r n v0 = Array_decl (r, n, v0)

let program ~name ~regions ~inputs ~main funcs =
  Label.program { name; funcs; main; regions; input_domains = inputs }
