(** Runtime values of the mini-VM.

    A plain value ([t]) appears in programs, logs, and replay oracles; a
    tagged value ([tagged]) additionally carries taint inside the
    interpreter and in traces, feeding the data-rate analyses. *)

type t =
  | Vint of int
  | Vbool of bool
  | Vstr of string
  | Vunit

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** [size_bytes v] is the value's approximate wire size; it drives recording
    cost accounting and data-rate classification. Ints count as 8 bytes,
    booleans as 1, strings as their length, unit as 0. *)
val size_bytes : t -> int

(** Convenience constructors. *)

val int : int -> t
val bool : bool -> t
val str : string -> t
val unit : t

(** Projections; each raises [Type_error] with a descriptive message when the
    value has the wrong shape — the interpreter converts that into a crash. *)

exception Type_error of string

val as_int : t -> int
val as_bool : t -> bool
val as_str : t -> string

(** A value together with the set of input channels it derives from. *)
type tagged = { v : t; taint : Taint.t }

(** [untainted v] tags [v] with empty taint. *)
val untainted : t -> tagged

(** [tag v taint] builds a tagged value. *)
val tag : t -> Taint.t -> tagged

val equal_tagged : tagged -> tagged -> bool
val pp_tagged : Format.formatter -> tagged -> unit
