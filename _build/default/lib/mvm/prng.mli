(** Deterministic pseudo-random number generator (splitmix64).

    Replay experiments demand bit-for-bit reproducible randomness that does
    not depend on global [Stdlib.Random] state, so every random world and
    every search strategy owns one of these. *)

type t

(** [create seed] is a fresh generator; equal seeds yield equal streams. *)
val create : int -> t

(** [copy t] is an independent generator with the same current state. *)
val copy : t -> t

(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent from the rest of [t]'s stream. *)
val split : t -> t

(** [int t bound] is uniform in [0, bound); [bound] must be positive.
    @raise Invalid_argument on non-positive [bound]. *)
val int : t -> int -> int

(** [bool t] is a uniform boolean. *)
val bool : t -> bool

(** [float t] is uniform in [0, 1). *)
val float : t -> float

(** [pick t xs] is a uniformly chosen element of [xs].
    @raise Invalid_argument on the empty list. *)
val pick : t -> 'a list -> 'a
