(** Shared memory: the scalar and array regions threads race on.

    All loads and stores go through the interpreter, which emits read/write
    trace events — the raw material for recorders and race detection. *)

type t

(** Raised on an out-of-bounds array access; the interpreter converts it
    into a crash of the executing thread. *)
exception Bounds of { region : string; index : int; length : int }

(** [create decls] allocates and initialises regions; initial values carry
    empty taint. *)
val create : Ast.region_decl list -> t

(** [load t r] reads scalar region [r].
    @raise Invalid_argument for an undeclared region. *)
val load : t -> string -> Value.tagged

(** [store t r v] writes scalar region [r]. *)
val store : t -> string -> Value.tagged -> unit

(** [load_arr t r i] reads cell [i] of array region [r].
    @raise Bounds when [i] is outside the array. *)
val load_arr : t -> string -> int -> Value.tagged

(** [store_arr t r i v] writes cell [i] of array region [r].
    @raise Bounds when [i] is outside the array. *)
val store_arr : t -> string -> int -> Value.tagged -> unit

(** [arr_length t r] is the declared length of array region [r]. *)
val arr_length : t -> string -> int

(** [scalars t] is a snapshot of all scalar regions (sorted by name). *)
val scalars : t -> (string * Value.t) list
