(** Site labelling: assigns a unique id to every statement of a program and
    records, per site, which function it belongs to and what kind of
    statement it is.

    Site ids are the coordinate system shared by recorders (which log
    (tid, sid) schedule entries), replay oracles (which must recognise
    "thread t is about to execute site s"), plane classification (sites
    inherit their function's plane) and root-cause predicates. *)

type site = {
  fname : string;  (** enclosing function *)
  kind : string;  (** statement constructor, e.g. "store", "input" *)
}

type table

type labeled = {
  prog : Ast.program;  (** same program with consecutive site ids from 1 *)
  table : table;
}

(** [program p] labels [p].
    @raise Invalid_argument if [p.main] or a statically referenced function
    is undefined, or a region/input channel is used but not declared. *)
val program : Ast.program -> labeled

(** [site t sid] is the site record for [sid].
    @raise Not_found for an unknown id. *)
val site : table -> int -> site

(** [fname_of t sid] is the enclosing function of site [sid]. *)
val fname_of : table -> int -> string

(** [sites t] is all (sid, site) pairs in ascending id order. *)
val sites : table -> (int * site) list

(** [n_sites t] is the number of labelled sites. *)
val n_sites : table -> int

(** [sites_of_fname t fname] is the ids of all sites inside [fname]. *)
val sites_of_fname : table -> string -> int list
