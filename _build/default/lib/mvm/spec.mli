(** I/O specifications: the paper's definition of a failure (§3) is a
    violation of an I/O specification over all observable behaviour. A spec
    examines a completed run — its outputs and, when needed, its inputs —
    and either accepts it or names the violated property with a stable
    failure tag. *)

type t = {
  name : string;
  check : Interp.result -> (unit, string) result;
      (** [Error tag] rejects the run; [tag] must be a stable identifier so
          two violations of the same property compare equal *)
}

(** [apply spec r] judges a [Done] run: a rejected run gets
    [failure = Some (Spec_violation tag)]. Runs that crashed or hung keep
    their existing failure. *)
val apply : t -> Interp.result -> Interp.result

(** [accept_all] is the trivial specification (crashes remain failures). *)
val accept_all : t

(** [outputs_equal ~expected] accepts runs whose per-channel outputs equal
    [expected] exactly; tag is ["unexpected-output"]. *)
val outputs_equal : expected:(string * Value.t list) list -> t

(** [make name check] builds a specification. *)
val make : string -> (Interp.result -> (unit, string) result) -> t
