type t =
  | Vint of int
  | Vbool of bool
  | Vstr of string
  | Vunit

let equal a b =
  match a, b with
  | Vint x, Vint y -> x = y
  | Vbool x, Vbool y -> x = y
  | Vstr x, Vstr y -> String.equal x y
  | Vunit, Vunit -> true
  | (Vint _ | Vbool _ | Vstr _ | Vunit), _ -> false

let compare = Stdlib.compare

let to_string = function
  | Vint n -> string_of_int n
  | Vbool b -> string_of_bool b
  | Vstr s -> Printf.sprintf "%S" s
  | Vunit -> "()"

let pp ppf v = Format.pp_print_string ppf (to_string v)

let size_bytes = function
  | Vint _ -> 8
  | Vbool _ -> 1
  | Vstr s -> String.length s
  | Vunit -> 0

let int n = Vint n
let bool b = Vbool b
let str s = Vstr s
let unit = Vunit

exception Type_error of string

let as_int = function
  | Vint n -> n
  | v -> raise (Type_error ("expected int, got " ^ to_string v))

let as_bool = function
  | Vbool b -> b
  | v -> raise (Type_error ("expected bool, got " ^ to_string v))

let as_str = function
  | Vstr s -> s
  | v -> raise (Type_error ("expected string, got " ^ to_string v))

type tagged = { v : t; taint : Taint.t }

let untainted v = { v; taint = Taint.empty }
let tag v taint = { v; taint }

let equal_tagged a b = equal a.v b.v && Taint.equal a.taint b.taint

let pp_tagged ppf { v; taint } =
  if Taint.is_empty taint then pp ppf v
  else Format.fprintf ppf "%a%a" pp v Taint.pp taint
