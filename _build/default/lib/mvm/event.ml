type access = { region : string; index : int option; value : Value.tagged }

type io = { chan : string; value : Value.tagged }

type kind =
  | Step
  | Read of access
  | Write of access
  | In of io
  | Out of io
  | Msg_send of io
  | Msg_recv of io
  | Lock_acq of string
  | Lock_rel of string
  | Spawned of { child : int; fname : string }
  | Crashed of string

type t = { step : int; tid : int; sid : int; fname : string; kind : kind }

let is_sync t =
  match t.kind with
  | Msg_send _ | Msg_recv _ | Lock_acq _ | Lock_rel _ | Spawned _ -> true
  | Step | Read _ | Write _ | In _ | Out _ | Crashed _ -> false

let is_shared_access t =
  match t.kind with
  | Read _ | Write _ -> true
  | Step | In _ | Out _ | Msg_send _ | Msg_recv _ | Lock_acq _ | Lock_rel _
  | Spawned _ | Crashed _ ->
    false

let kind_name t =
  match t.kind with
  | Step -> "step"
  | Read _ -> "read"
  | Write _ -> "write"
  | In _ -> "in"
  | Out _ -> "out"
  | Msg_send _ -> "send"
  | Msg_recv _ -> "recv"
  | Lock_acq _ -> "lock"
  | Lock_rel _ -> "unlock"
  | Spawned _ -> "spawn"
  | Crashed _ -> "crash"

let tainted_bytes (v : Value.tagged) =
  if Taint.is_empty v.taint then 0 else Value.size_bytes v.v

let data_bytes t =
  match t.kind with
  | Read a | Write a -> tainted_bytes a.value
  | In io -> Value.size_bytes io.value.v
  | Out io | Msg_send io | Msg_recv io -> tainted_bytes io.value
  | Step | Lock_acq _ | Lock_rel _ | Spawned _ | Crashed _ -> 0

let pp ppf t =
  let loc ppf () =
    Format.fprintf ppf "@%d t%d s%d(%s)" t.step t.tid t.sid t.fname
  in
  match t.kind with
  | Step -> Format.fprintf ppf "step %a" loc ()
  | Read a ->
    Format.fprintf ppf "read %a %s%s = %a" loc () a.region
      (match a.index with Some i -> Printf.sprintf "[%d]" i | None -> "")
      Value.pp_tagged a.value
  | Write a ->
    Format.fprintf ppf "write %a %s%s := %a" loc () a.region
      (match a.index with Some i -> Printf.sprintf "[%d]" i | None -> "")
      Value.pp_tagged a.value
  | In io -> Format.fprintf ppf "in %a %s <- %a" loc () io.chan Value.pp_tagged io.value
  | Out io -> Format.fprintf ppf "out %a %s -> %a" loc () io.chan Value.pp_tagged io.value
  | Msg_send io ->
    Format.fprintf ppf "send %a %s %a" loc () io.chan Value.pp_tagged io.value
  | Msg_recv io ->
    Format.fprintf ppf "recv %a %s %a" loc () io.chan Value.pp_tagged io.value
  | Lock_acq m -> Format.fprintf ppf "lock %a %s" loc () m
  | Lock_rel m -> Format.fprintf ppf "unlock %a %s" loc () m
  | Spawned s -> Format.fprintf ppf "spawn %a t%d=%s" loc () s.child s.fname
  | Crashed msg -> Format.fprintf ppf "crash %a %s" loc () msg
