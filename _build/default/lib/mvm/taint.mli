(** Taint labels: the set of input channels a runtime value derives from.

    Taint is the raw material of control-plane/data-plane classification
    (Altekar & Stoica, HotDep'10): code sites through which large volumes of
    input-derived bytes flow are data-plane; the rest is control-plane. *)

type t

(** The empty taint: a value derived from constants only. *)
val empty : t

(** [singleton chan] taints a value as originating from input channel [chan]. *)
val singleton : string -> t

(** [union a b] combines the origins of two values (binary operators). *)
val union : t -> t -> t

(** [mem chan t] is [true] iff [chan] is among the origins. *)
val mem : string -> t -> bool

(** [is_empty t] is [true] iff the value is untainted. *)
val is_empty : t -> bool

(** [elements t] is the sorted list of origin channels. *)
val elements : t -> string list

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
