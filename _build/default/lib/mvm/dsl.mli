(** Combinators for building mini-VM programs in OCaml.

    All statements are built with [sid = 0]; run the result through
    [Label.program] (or build via [program], which labels for you) before
    interpreting. *)

open Ast

(** {1 Expressions} *)

val i : int -> expr
val b : bool -> expr
val s : string -> expr

(** thread-local variable reference *)
val v : string -> expr

(** shared scalar load *)
val g : string -> expr

(** shared array load *)
val idx : string -> expr -> expr
val arr_len : string -> expr

val ( +: ) : expr -> expr -> expr
val ( -: ) : expr -> expr -> expr
val ( *: ) : expr -> expr -> expr
val ( /: ) : expr -> expr -> expr
val ( %: ) : expr -> expr -> expr
val ( =: ) : expr -> expr -> expr
val ( <>: ) : expr -> expr -> expr
val ( <: ) : expr -> expr -> expr
val ( <=: ) : expr -> expr -> expr
val ( >: ) : expr -> expr -> expr
val ( >=: ) : expr -> expr -> expr
val ( &&: ) : expr -> expr -> expr
val ( ||: ) : expr -> expr -> expr

(** string concatenation *)
val ( ^: ) : expr -> expr -> expr
val not_ : expr -> expr
val str_len : expr -> expr
val min_ : expr -> expr -> expr
val max_ : expr -> expr -> expr

(** {1 Statements} *)

val skip : stmt
val assign : string -> expr -> stmt
val store : string -> expr -> expr -> stmt
val store_g : string -> expr -> stmt
val if_ : expr -> block -> block -> stmt

(** [if_] with empty else *)
val when_ : expr -> block -> stmt
val while_ : expr -> block -> stmt

(** [for_ x lo hi body] iterates [x] from [lo] to [hi - 1]; sugar over
    [assign] + [while_], so it costs one scheduler step per condition check
    plus one per increment, like handwritten loops would. *)
val for_ : string -> expr -> expr -> block -> stmt

(** [input x chan] *)
val input : string -> string -> stmt
val output : string -> expr -> stmt
val send : string -> expr -> stmt

(** [recv x chan] *)
val recv : string -> string -> stmt

(** [try_recv ok x chan] *)
val try_recv : string -> string -> string -> stmt
val lock : string -> stmt
val unlock : string -> stmt
val spawn : string -> expr list -> stmt
val call : ?dest:string -> string -> expr list -> stmt
val return : expr -> stmt
val assert_ : expr -> string -> stmt
val fail : string -> stmt
val yield : stmt
val atomic : block -> stmt

(** {1 Declarations} *)

val func : string -> string list -> block -> func
val scalar : string -> Value.t -> region_decl
val array : string -> int -> Value.t -> region_decl

(** [program ~name ~regions ~inputs ~main funcs] assembles and labels a
    program (site ids assigned, site table built).
    @raise Invalid_argument when [main] or a spawned/called function is
    undefined, or a region/channel is referenced but not declared. *)
val program :
  name:string ->
  regions:region_decl list ->
  inputs:(string * Value.t list) list ->
  main:string ->
  func list ->
  Label.labeled
