(** The paper's §2 message-dropping server: messages are delivered at a
    lower rate than they were sent, and the failure has two possible root
    causes —

    - a lost-update race on the shared buffer cursor two producer threads
      bump without synchronisation (the true defect a developer can fix);
    - network congestion dropping messages before they arrive (environment
      behaviour outside the developer's control).

    An output- or failure-deterministic replay may reproduce the drop via
    congestion, "deceiving the developer into thinking there isn't a
    problem at all" — fidelity 1/2. The race is data-plane code, so this
    app is also the honest counterexample where code-based RCSE misfires
    and trigger-based selection (race detector) is needed. *)

type params = {
  messages_per_producer : int;  (** default 6 *)
  payload_len : int;  (** default 128 *)
  stagger : int;
      (** producer 1's start delay (idle iterations); bursty arrivals make
          the race window narrow; default 18 *)
}

val default_params : params

val app : ?params:params -> unit -> App.t
