lib/apps/workload.ml: App Ddet_metrics Interp List Mvm Root_cause String
