lib/apps/workload.mli: App Interp Mvm
