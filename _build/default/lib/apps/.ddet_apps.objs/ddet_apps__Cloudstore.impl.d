lib/apps/cloudstore.ml: App Ddet_metrics Event Interp List Mvm Printf Root_cause Spec String Trace Value
