lib/apps/app.mli: Ddet_metrics Interp Label Mvm Spec World
