lib/apps/miniht.mli: App
