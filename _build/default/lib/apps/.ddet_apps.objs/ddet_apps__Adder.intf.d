lib/apps/adder.mli: App
