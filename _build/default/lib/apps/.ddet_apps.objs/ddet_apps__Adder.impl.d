lib/apps/adder.ml: App Ddet_metrics Interp List Mvm Root_cause Spec Trace Value
