lib/apps/bufover.ml: App Ddet_metrics Interp List Mvm Root_cause Spec String Trace Value
