lib/apps/bufover.mli: App
