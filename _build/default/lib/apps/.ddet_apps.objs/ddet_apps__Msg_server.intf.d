lib/apps/msg_server.mli: App
