lib/apps/miniht.ml: App Ddet_metrics Interp List Mvm Printf Root_cause Spec String Trace Value
