lib/apps/cloudstore.mli: App
