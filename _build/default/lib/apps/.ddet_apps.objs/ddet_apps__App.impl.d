lib/apps/app.ml: Ddet_metrics Interp Label Mvm Spec World
