(** The paper's §3 example: a buffer overflow that crashes the program
    because a length check is missing before a copy. The fix — "add a check
    on the input size" — is the predicate whose negation is the root cause.
    A single-cause catalog: failure determinism scores full fidelity here,
    which keeps the benchmark honest (ultra-relaxed models are not always
    bad). *)

(** [app ()] builds the application. The input channel ["len"] (domain
    0..15) drives a copy into an 8-cell buffer. *)
val app : unit -> App.t
