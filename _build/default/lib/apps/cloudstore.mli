(** Mini-CloudStore: a replicated block store in the style of the second
    datacenter system the paper's control-plane study names (CloudStore /
    HDFS-like write pipelines).

    Architecture — two writer clients, a primary and a secondary
    chunkserver:

    - writers upload blocks to the primary (block id + payload, serialised
      per connection by a lock) and wait for the acknowledgement;
    - the primary stores the block, {b acknowledges immediately}, and only
      then forwards the replication pair to the secondary — the early-ack
      defect;
    - after uploading everything, each writer verifies one of its blocks:
      a control-plane routing choice picks which replica serves the read
      (load balancing);
    - servers answer reads from their local disk; a missing block reads
      as 0.

    The failure: a verification read returns "missing" for a block whose
    write was acknowledged — no error anywhere, the data is simply not
    where the reader looked. Three root causes produce it:

    + ["early-ack-race"] — the read reached the secondary before the
      replication did (the block arrives later: transient, the true
      defect — the fix is to acknowledge after the full pipeline, or to
      route reads read-your-writes);
    + ["replication-drop"] — the primary's forwarding link dropped a
      replication (fault input): the block never arrives;
    + ["disk-fault"] — the secondary's disk rejected writes (fault
      input).

    As in miniht, fault handling lives in control-plane startup functions,
    payload processing in the data plane, and the routing decision in its
    own control-plane function — so control-plane RCSE pins the root
    cause. *)

type params = {
  n_writers : int;  (** default 2 *)
  blocks_per_writer : int;  (** default 4 *)
  payload_len : int;  (** default 256 *)
}

val default_params : params

val app : ?params:params -> unit -> App.t

val rc_race : string
val rc_drop : string
val rc_disk : string
