(** Mini-Hypertable: the paper's §4 case study (Hypertable issue 63),
    rebuilt on the mini-VM.

    Architecture — a master, two range servers and several load clients
    over a two-range key space:

    - clients route each row by reading the range-ownership map
      ([route], control-plane) and send the payload to the owner
      (data-plane);
    - the master migrates range 0 from server 0 to server 1 once server 0
      has committed enough rows: it asks server 0 to transfer its rows and
      flips the ownership map (control-plane);
    - servers process commit payloads (data-plane loop) and control
      messages — transfer, shutdown with fault handling (control-plane);
    - after a sequential shutdown, the main thread dumps the table by
      asking each range's *current owner* for its row count.

    The failure: the dump returns fewer rows than were loaded, with no
    error anywhere — rows committed to a server that no longer owns their
    range are merely ignored, exactly the bug report. Three root causes
    can produce this failure (§4):

    + ["migration-commit-race"] — a row is committed to the old owner
      concurrently with the migration (the true defect);
    + ["server-crash"] — a range server crashes (fault input) after upload,
      losing its rows: expected behaviour, not a bug;
    + ["client-oom"] — the dump client runs out of memory (fault input) and
      truncates the dump.

    Failure determinism can reproduce the failure through any of the
    three, hence fidelity 1/3; RCSE with control-plane selection pins the
    routing/migration interleaving and the fault inputs, reproducing the
    race itself. *)

type params = {
  n_clients : int;  (** default 3 *)
  rows_per_client : int;  (** default 8 *)
  migrate_threshold : int;
      (** rows on (server 0, range 0) that trigger the migration; default 10 *)
  payload_len : int;  (** row payload bytes; default 256 *)
}

val default_params : params

val app : ?params:params -> unit -> App.t

(** The ids of the three catalog causes, for tests and benches. *)

val rc_race : string
val rc_crash : string
val rc_oom : string
