(** The paper's §2 arithmetic example: a program that outputs the sum of two
    inputs, except that a defect (modelling an array-indexing bug) makes it
    output 5 for the inputs (2, 2).

    This is the canonical demonstration that output determinism
    under-constrains replay: an output-deterministic replayer may produce
    the output 5 from inputs like (1, 4) or (0, 5) — a correct sum, hence
    no failure at all, hence debugging fidelity 0. *)

(** [app ()] builds the application. Inputs are drawn from channels ["a"]
    and ["b"] with domain 0..9; the sum is emitted on channel ["sum"]. *)
val app : unit -> App.t
