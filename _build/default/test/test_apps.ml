(* Tests for the workload applications: failure reachability, specification
   correctness, root-cause predicate precision and the miniht protocol's
   conservation properties. *)

open Mvm
open Ddet_metrics
open Ddet_apps

let seeds n = List.init n (fun k -> k + 1)

let observed_ids (app : App.t) r =
  List.map (fun c -> c.Root_cause.id) (Root_cause.observed app.App.catalog r)

(* Every failing run must be explained by at least one catalog cause, and
   every passing run by none: catalogs are sound and complete on the
   failure signature they claim. *)
let check_catalog_total (app : App.t) n =
  List.iter
    (fun seed ->
      let r = App.production_run app ~seed in
      match r.Interp.failure with
      | Some f when app.App.catalog.Root_cause.failure_sig f ->
        if observed_ids app r = [] then
          Alcotest.fail
            (Printf.sprintf "%s seed %d: failure without any catalog cause"
               app.App.name seed)
      | Some _ | None ->
        if observed_ids app r <> [] then
          Alcotest.fail
            (Printf.sprintf "%s seed %d: cause attributed without failure"
               app.App.name seed))
    (seeds n)

(* ------------------------------------------------------------------ *)
(* adder *)

let test_adder_fails_on_2_2 () =
  match Workload.find_failing_seed (Adder.app ()) with
  | Some (_, r) -> (
    match
      ( Trace.inputs_on r.Interp.trace "a",
        Trace.inputs_on r.Interp.trace "b",
        Trace.outputs_on r.Interp.trace "sum" )
    with
    | [ (_, _, Value.Vint 2) ], [ (_, _, Value.Vint 2) ], [ Value.Vint 5 ] -> ()
    | _ -> Alcotest.fail "the only failure is (2,2) -> 5")
  | None -> Alcotest.fail "no failing seed for adder"

let test_adder_catalog_total () = check_catalog_total (Adder.app ()) 100

let test_adder_passes_mostly () =
  let rate = Workload.failure_rate ~n:100 (Adder.app ()) in
  Alcotest.(check bool) "failure is rare (only 2,2 fails)" true (rate < 0.1)

(* ------------------------------------------------------------------ *)
(* bufover *)

let test_bufover_crash_iff_big_input () =
  List.iter
    (fun seed ->
      let r = App.production_run (Bufover.app ()) ~seed in
      let n =
        match Trace.inputs_on r.Interp.trace "len" with
        | (_, _, Value.Vint n) :: _ -> n
        | _ -> -1
      in
      let crashed = match r.Interp.status with Interp.Crashed _ -> true | _ -> false in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: crash iff len > 8" seed)
        (n > 8) crashed)
    (seeds 50)

let test_bufover_catalog_total () = check_catalog_total (Bufover.app ()) 100

let test_bufover_single_cause () =
  Alcotest.(check int) "one root cause" 1
    (Root_cause.n_causes (Bufover.app ()).App.catalog)

(* ------------------------------------------------------------------ *)
(* msg_server *)

let test_msg_server_conservation () =
  (* delivered + network drops + race losses = sent; without drops or
     race, delivered = sent *)
  List.iter
    (fun seed ->
      let r = App.production_run (Msg_server.app ()) ~seed in
      let causes = observed_ids (Msg_server.app ()) r in
      match r.Interp.failure with
      | None ->
        let out chan =
          match Trace.outputs_on r.Interp.trace chan with
          | [ Value.Vint n ] -> n
          | _ -> -1
        in
        Alcotest.(check int)
          (Printf.sprintf "seed %d delivered=sent" seed)
          (out "sent") (out "delivered")
      | Some _ -> if causes = [] then Alcotest.fail "unexplained failure")
    (seeds 100)

let test_msg_server_race_reachable () =
  match Workload.find_failing_seed ~cause:"buffer-race" ~exclusive:true (Msg_server.app ()) with
  | Some _ -> ()
  | None -> Alcotest.fail "race-only failure unreachable"

let test_msg_server_congestion_reachable () =
  match Workload.find_failing_seed ~cause:"network-congestion" (Msg_server.app ()) with
  | Some (_, r) ->
    Alcotest.(check bool) "drop marker in inputs" true
      (List.exists
         (fun (_, _, v) -> Value.equal v (Value.str "DROP"))
         (Trace.inputs_on r.Interp.trace "net"))
  | None -> Alcotest.fail "congestion failure unreachable"

let test_msg_server_catalog_total () = check_catalog_total (Msg_server.app ()) 100

(* ------------------------------------------------------------------ *)
(* miniht *)

let miniht = Miniht.app ()

let test_miniht_conservation () =
  (* no failure => the dump returns every loaded row *)
  List.iter
    (fun seed ->
      let r = App.production_run miniht ~seed in
      match r.Interp.failure with
      | None -> (
        match
          ( Trace.outputs_on r.Interp.trace "loaded",
            Trace.outputs_on r.Interp.trace "dumped" )
        with
        | [ Value.Vint l ], [ Value.Vint d ] ->
          Alcotest.(check int) (Printf.sprintf "seed %d" seed) l d
        | _ -> Alcotest.fail "missing outputs")
      | Some _ -> ())
    (seeds 100)

let test_miniht_terminates () =
  List.iter
    (fun seed ->
      let r = App.production_run miniht ~seed in
      match r.Interp.status with
      | Interp.Done -> ()
      | st ->
        Alcotest.fail
          (Printf.sprintf "seed %d: %s" seed (Interp.status_to_string st)))
    (seeds 100)

let test_miniht_all_three_causes_reachable () =
  List.iter
    (fun cause ->
      match Workload.find_failing_seed ~cause miniht with
      | Some _ -> ()
      | None -> Alcotest.fail ("unreachable cause: " ^ cause))
    [ Miniht.rc_race; Miniht.rc_crash; Miniht.rc_oom ]

let test_miniht_race_only_seed_exists () =
  match Workload.find_failing_seed ~cause:Miniht.rc_race ~exclusive:true miniht with
  | Some (_, r) ->
    Alcotest.(check (list string)) "exactly the race" [ Miniht.rc_race ]
      (observed_ids miniht r)
  | None -> Alcotest.fail "no race-only seed"

let test_miniht_race_is_hard_to_reproduce () =
  (* the paper's premise: the bug is non-deterministic and rare *)
  let race_runs =
    List.filter
      (fun seed ->
        List.mem Miniht.rc_race (observed_ids miniht (App.production_run miniht ~seed)))
      (seeds 100)
  in
  let rate = float_of_int (List.length race_runs) /. 100. in
  Alcotest.(check bool) "race fires in 1-35% of runs" true
    (rate > 0.01 && rate < 0.35)

let test_miniht_catalog_total () = check_catalog_total miniht 100

let test_miniht_race_predicate_precision () =
  (* on a crash-fault-only failure, the race predicate must not hold *)
  match
    Workload.find_failing_seed ~cause:Miniht.rc_crash ~exclusive:true miniht
  with
  | Some (_, r) ->
    Alcotest.(check (list string)) "crash only" [ Miniht.rc_crash ]
      (observed_ids miniht r)
  | None -> Alcotest.fail "no crash-only seed found"

let test_miniht_migration_happens () =
  (* the threshold is crossed in a meaningful fraction of runs — and only a
     fraction: the master races the shutdown sentinel, which is part of why
     the bug is hard to reproduce *)
  let migrated =
    List.filter
      (fun seed ->
        let r = App.production_run miniht ~seed in
        Trace.writes_to_scalar r.Interp.trace "owner_0" <> [])
      (seeds 50)
  in
  let n = List.length migrated in
  Alcotest.(check bool) "migration rate plausible" true (n > 5 && n < 45)

let test_miniht_custom_params () =
  let params = { Miniht.default_params with Miniht.n_clients = 2; rows_per_client = 4 } in
  let app = Miniht.app ~params () in
  let r = App.production_run app ~seed:1 in
  match Trace.outputs_on r.Interp.trace "loaded" with
  | [ Value.Vint 8 ] -> ()
  | _ -> Alcotest.fail "2 clients x 4 rows must load 8"

(* ------------------------------------------------------------------ *)
(* cloudstore *)

let cloudstore = Cloudstore.app ()

let test_cloudstore_terminates () =
  List.iter
    (fun seed ->
      let r = App.production_run cloudstore ~seed in
      match r.Interp.status with
      | Interp.Done -> ()
      | st ->
        Alcotest.fail
          (Printf.sprintf "seed %d: %s" seed (Interp.status_to_string st)))
    (seeds 100)

let test_cloudstore_conservation () =
  (* no failure => every verification read hit *)
  List.iter
    (fun seed ->
      let r = App.production_run cloudstore ~seed in
      match r.Interp.failure with
      | None -> (
        match Trace.outputs_on r.Interp.trace "stales" with
        | [ Value.Vint 0 ] -> ()
        | _ -> Alcotest.fail (Printf.sprintf "seed %d: stales without failure" seed))
      | Some _ -> ())
    (seeds 100)

let test_cloudstore_catalog_total () = check_catalog_total cloudstore 150

let test_cloudstore_all_causes_reachable () =
  List.iter
    (fun cause ->
      match Workload.find_failing_seed ~cause cloudstore with
      | Some _ -> ()
      | None -> Alcotest.fail ("unreachable cause: " ^ cause))
    [ Cloudstore.rc_race; Cloudstore.rc_drop; Cloudstore.rc_disk ]

let test_cloudstore_race_only_seed () =
  match
    Workload.find_failing_seed ~cause:Cloudstore.rc_race ~exclusive:true
      cloudstore
  with
  | Some (_, r) ->
    Alcotest.(check (list string)) "exactly the race" [ Cloudstore.rc_race ]
      (observed_ids cloudstore r)
  | None -> Alcotest.fail "no race-only seed"

let test_cloudstore_race_transient_signature () =
  (* the race predicate requires the block to be present at the end: the
     replication eventually arrived *)
  match
    Workload.find_failing_seed ~cause:Cloudstore.rc_race ~exclusive:true
      cloudstore
  with
  | None -> Alcotest.fail "no race seed"
  | Some (_, r) ->
    let stale_reads =
      Trace.filter
        (fun (e : Event.t) ->
          match e.Event.kind with
          | Event.Read { region = "disk_1"; value; _ } ->
            Value.equal value.Value.v (Value.int 0)
          | _ -> false)
        r.Interp.trace
    in
    Alcotest.(check bool) "a stale read exists" true (stale_reads <> [])

let test_cloudstore_blocks_all_stored_on_primary () =
  (* the primary always stores every acknowledged block *)
  let r = App.production_run cloudstore ~seed:1 in
  let total = 2 * 4 in
  List.iter
    (fun b ->
      Alcotest.(check bool)
        (Printf.sprintf "disk_0[%d] present" b)
        true
        (Value.equal
           (Trace.array_cell_at r.Interp.trace "disk_0" ~index:b
              ~init:(Value.int 0) ~step:max_int)
           (Value.int 1)))
    (List.init total (fun b -> b))

(* ------------------------------------------------------------------ *)
(* plane ground truth sanity *)

let test_control_plane_names_exist () =
  List.iter
    (fun (app : App.t) ->
      List.iter
        (fun fname ->
          if Ast.find_func app.App.labeled.Label.prog fname = None then
            Alcotest.fail
              (Printf.sprintf "%s: ground-truth function %s does not exist"
                 app.App.name fname))
        app.App.control_plane)
    [ Adder.app (); Bufover.app (); Msg_server.app (); miniht; cloudstore ]

let () =
  Alcotest.run "apps"
    [
      ( "adder",
        [
          Alcotest.test_case "fails on (2,2)" `Quick test_adder_fails_on_2_2;
          Alcotest.test_case "catalog total" `Quick test_adder_catalog_total;
          Alcotest.test_case "failure rare" `Quick test_adder_passes_mostly;
        ] );
      ( "bufover",
        [
          Alcotest.test_case "crash iff big input" `Quick test_bufover_crash_iff_big_input;
          Alcotest.test_case "catalog total" `Quick test_bufover_catalog_total;
          Alcotest.test_case "single cause" `Quick test_bufover_single_cause;
        ] );
      ( "msg_server",
        [
          Alcotest.test_case "conservation" `Quick test_msg_server_conservation;
          Alcotest.test_case "race reachable" `Quick test_msg_server_race_reachable;
          Alcotest.test_case "congestion reachable" `Quick test_msg_server_congestion_reachable;
          Alcotest.test_case "catalog total" `Quick test_msg_server_catalog_total;
        ] );
      ( "miniht",
        [
          Alcotest.test_case "conservation" `Quick test_miniht_conservation;
          Alcotest.test_case "terminates" `Quick test_miniht_terminates;
          Alcotest.test_case "three causes reachable" `Quick test_miniht_all_three_causes_reachable;
          Alcotest.test_case "race-only seed" `Quick test_miniht_race_only_seed_exists;
          Alcotest.test_case "race is rare" `Quick test_miniht_race_is_hard_to_reproduce;
          Alcotest.test_case "catalog total" `Quick test_miniht_catalog_total;
          Alcotest.test_case "predicate precision" `Quick test_miniht_race_predicate_precision;
          Alcotest.test_case "migration happens" `Quick test_miniht_migration_happens;
          Alcotest.test_case "custom params" `Quick test_miniht_custom_params;
        ] );
      ( "cloudstore",
        [
          Alcotest.test_case "terminates" `Quick test_cloudstore_terminates;
          Alcotest.test_case "conservation" `Quick test_cloudstore_conservation;
          Alcotest.test_case "catalog total" `Quick test_cloudstore_catalog_total;
          Alcotest.test_case "three causes reachable" `Quick test_cloudstore_all_causes_reachable;
          Alcotest.test_case "race-only seed" `Quick test_cloudstore_race_only_seed;
          Alcotest.test_case "transient signature" `Quick test_cloudstore_race_transient_signature;
          Alcotest.test_case "primary stores all" `Quick test_cloudstore_blocks_all_stored_on_primary;
        ] );
      ( "ground-truth",
        [ Alcotest.test_case "names exist" `Quick test_control_plane_names_exist ] );
    ]
