(* Benchmark harness: regenerates every evaluation artifact of the paper
   (Fig. 1, Fig. 2, the Sec. 2 narratives, plus the RCSE and budget
   ablations) and runs Bechamel microbenchmarks of the actual recorders.

   Usage: main.exe [fig1|fig2|sec2|ablation|budget|flight|open|micro|all]        *)

open Ddet
open Ddet_apps
open Ddet_record

let print (r : Experiment.rendered) =
  Ddet_metrics.Report.print_section r.Experiment.title r.Experiment.body

(* ------------------------------------------------------------------ *)
(* MICRO: wall-clock cost of the recorders themselves, grounding the
   cost model's claim that entry volume drives recording cost. *)

let micro () =
  let open Bechamel in
  let app = Miniht.app () in
  let spec = app.App.spec in
  let labeled = app.App.labeled in
  let seed = 42 in
  let rcse_prepared = Session.prepare (Model.Rcse Model.Code_based) app in
  let recorders =
    [
      ("baseline", None);
      ("perfect", Some Full_recorder.create);
      ("value", Some Value_recorder.create);
      ("sync", Some Sync_recorder.create);
      ("output", Some Output_recorder.create);
      ("failure", Some Failure_recorder.create);
      ("rcse-code", Some (fun () -> rcse_prepared.Session.make_recorder ()));
    ]
  in
  let tests =
    List.map
      (fun (name, make) ->
        Test.make ~name
          (Staged.stage (fun () ->
               let world = Mvm.World.random ~seed in
               match make with
               | None -> ignore (Mvm.Interp.run labeled world)
               | Some create ->
                 ignore (Recorder.record (create ()) labeled ~spec ~world))))
      recorders
  in
  let grouped = Test.make_grouped ~name:"recorders" ~fmt:"%s/%s" tests in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let time_of label =
    match Hashtbl.find_opt results label with
    | Some o -> (
      match Analyze.OLS.estimates o with Some [ t ] -> t | _ -> nan)
    | None -> nan
  in
  let baseline = time_of "recorders/baseline" in
  (* log volumes for context *)
  let volumes =
    List.filter_map
      (fun (name, make) ->
        match make with
        | None -> None
        | Some create ->
          let _, log =
            Recorder.record (create ()) labeled ~spec
              ~world:(Mvm.World.random ~seed)
          in
          Some
            ( name,
              Log.entry_count log,
              Log.payload_bytes log,
              Cost_model.overhead Cost_model.default log ))
      recorders
  in
  let rows =
    List.map
      (fun (name, entries, bytes, modeled) ->
        let t = time_of ("recorders/" ^ name) in
        [
          name;
          Printf.sprintf "%.0f" t;
          Printf.sprintf "%.2f" (t /. baseline);
          string_of_int entries;
          string_of_int bytes;
          Printf.sprintf "%.2f" modeled;
        ])
      volumes
  in
  let body =
    Ddet_metrics.Report.table
      ~headers:
        [ "recorder"; "ns/run"; "measured x"; "entries"; "bytes"; "modeled x" ]
      rows
    ^ Printf.sprintf
        "\n\nbaseline (no recorder): %.0f ns per miniht production run.\n\
         The measured column is this harness's in-process monitoring cost:\n\
         every recorder sees every event, and selective recorders also\n\
         evaluate their selector per event, so wall-clock deltas here stay\n\
         small and reflect callback work. The modeled column instead prices\n\
         what a production implementation would pay to persist each entry\n\
         class (CREW-order schedule points, per-byte value logging - see\n\
         Cost_model) applied to the measured entry counts and bytes in this\n\
         table - which is why the experiments report modeled overhead.\n"
        baseline
  in
  Ddet_metrics.Report.print_section "MICRO recorder wall-clock vs. cost model"
    body

let () =
  let cmd = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match cmd with
  | "fig1" -> print (Experiment.render_fig1 (Experiment.fig1 ()))
  | "fig2" -> print (Experiment.render_fig2 (Experiment.fig2 ()))
  | "sec2" ->
    print (Experiment.sec2_adder ());
    print (Experiment.sec2_drop ())
  | "ablation" -> print (Experiment.render_ablation (Experiment.ablation_rcse ()))
  | "budget" -> print (Experiment.budget_sweep ())
  | "flight" -> print (Experiment.flight_sweep ())
  | "race" -> print (Experiment.race_detectors ())
  | "search" -> print (Experiment.search_engines ())
  | "open" ->
    print (Explore.experiment ());
    print (Frontier.experiment ())
  | "micro" -> micro ()
  | "all" ->
    List.iter print (Experiment.run_all ());
    print (Explore.experiment ());
    print (Frontier.experiment ());
    micro ()
  | other ->
    Printf.eprintf
      "unknown command %S (expected fig1|fig2|sec2|ablation|budget|flight|race|search|open|micro|all)\n"
      other;
    exit 2
