(** Cross-node causality observed during a recording.

    When a recording is sharded into one log per node, the per-node entry
    order alone does not say how the nodes' histories interleave. The
    causal monitor watches the event stream (as an extra interpreter
    monitor, alongside the recorder's) and captures what the causal
    manifest needs:

    - the observed thread-to-node assignment ([Spawned] events carry the
      child's root function, which the {!Mvm.Node.map} places);
    - per-channel Lamport-style send/receive matching: the [k]-th send
      on a channel pairs with the [k]-th receive (the VM's channels are
      FIFO), and every pair whose endpoints sit on different nodes is a
      cross-node ordering {!edge};
    - the global interleaving of the nodes, run-length encoded, so a
      stitcher with {e all} shards can reconstruct the exact recorded
      order — and with missing shards can fall back to the surviving
      projection of it.

    A receive with no matched send (a fault-injected duplicate delivery
    on an empty queue) produces {e no} edge: the monitor never invents a
    cross-node ordering it did not observe. *)

open Mvm

(** One cross-node ordering constraint: the [send_seq]-th send on [chan]
    (1-based, by [send_node]) happened before the [recv_seq]-th receive
    (by [recv_node]). *)
type edge = {
  chan : string;
  send_node : string;
  send_seq : int;
  recv_node : string;
  recv_seq : int;
}

type t = {
  nodes : string list;  (** node order, as declared by the map *)
  tid_node : (int * string) list;  (** observed tid -> node, tid order *)
  edges : edge list;  (** cross-node pairs, in receive order *)
}

(** [node_of_tid t tid] is the node of [tid] (falls back to the first
    node for a tid the run never observed). *)
val node_of_tid : t -> int -> string

(** [monitor ~map ~main_fname ()] is [(on_event, finish)]: attach
    [on_event] to the recording run, call [finish] once it completes.

    @raise Invalid_argument if [main_fname] or a spawned root has no node
    assignment in [map]. *)
val monitor :
  map:Node.map -> main_fname:string -> unit -> (Event.t -> unit) * (unit -> t)

val pp : Format.formatter -> t -> unit
