(* Per-node sharded persistence. See the interface for the format. *)

let magic = "ddet-causal v1"
let shard_path base node = Printf.sprintf "%s.%s.shard" base node
let manifest_path base = base ^ ".causal"

type shard_status =
  | Intact
  | Salvaged of Log_io.damage
  | Missing
  | Corrupt of string

type shard = { node : string; status : shard_status; log : Log.t option }

type loaded = {
  base : string;
  recorder : string;
  base_steps : int;
  failure : Mvm.Failure.t option;
  faults : Mvm.Fault.plan option;
  nodes : string list;
  shards : shard list;
  order : (int * int) list;
  edges : Causal.edge list;
  manifest_found : bool;
  manifest_complete : bool;
}

let shard_ok s =
  match s.status with
  | Intact | Salvaged _ -> s.log <> None
  | Missing | Corrupt _ -> false

let status_name = function
  | Intact -> "intact"
  | Salvaged _ -> "salvaged"
  | Missing -> "missing"
  | Corrupt _ -> "corrupt"

type save_report = {
  shard_results : (string * (unit, Store.error) result) list;
  manifest_result : (unit, Store.error) result;
}

let save_ok r =
  r.manifest_result = Ok ()
  && List.for_all (fun (_, res) -> res = Ok ()) r.shard_results

let pp_save_report ppf r =
  List.iter
    (fun (node, res) ->
      match res with
      | Ok () -> Format.fprintf ppf "shard %s: written@ " node
      | Error e ->
        Format.fprintf ppf "shard %s: FAILED (%a)@ " node Store.pp_error e)
    r.shard_results;
  match r.manifest_result with
  | Ok () -> Format.fprintf ppf "manifest: written"
  | Error e -> Format.fprintf ppf "manifest: FAILED (%a)" Store.pp_error e

(* ------------------------------------------------------------------ *)
(* splitting *)

(* The node charged with an entry. Entries that carry a thread follow
   it; global entries (outputs, the failure descriptor, governor and
   flight accounting) are charged to the main thread's node — the
   coordinator observed them. *)
let entry_node causal ~main_node = function
  | Log.Sched { tid; _ }
  | Log.Input { tid; _ }
  | Log.Read_val { tid; _ }
  | Log.Sync { tid; _ }
  | Log.Cp_sched { tid; _ }
  | Log.Cp_input { tid; _ } ->
    Causal.node_of_tid causal tid
  | Log.Output _ | Log.Failure_desc _ | Log.Flight_note _ | Log.Mark _
  | Log.Govern _ ->
    main_node

let split ~causal (log : Log.t) =
  let main_node = Causal.node_of_tid causal 0 in
  let per_node : (string, Log.entry list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun n -> Hashtbl.replace per_node n (ref []))
    causal.Causal.nodes;
  List.iter
    (fun e ->
      let n = entry_node causal ~main_node e in
      match Hashtbl.find_opt per_node n with
      | Some r -> r := e :: !r
      | None -> ())
    log.Log.entries;
  List.map
    (fun n ->
      let entries = List.rev !(Hashtbl.find per_node n) in
      ( n,
        Log.make ?faults:log.Log.faults ~recorder:log.Log.recorder ~entries
          ~base_steps:log.Log.base_steps ~failure:log.Log.failure () ))
    causal.Causal.nodes

(* the global interleaving as (node index, run length) *)
let order_runs causal (log : Log.t) =
  let main_node = Causal.node_of_tid causal 0 in
  let ix_of =
    let tbl = Hashtbl.create 8 in
    List.iteri (fun i n -> Hashtbl.replace tbl n i) causal.Causal.nodes;
    fun n -> Hashtbl.find tbl n
  in
  let runs, last =
    List.fold_left
      (fun (runs, last) e ->
        let ix = ix_of (entry_node causal ~main_node e) in
        match last with
        | Some (i, n) when i = ix -> (runs, Some (i, n + 1))
        | Some r -> (r :: runs, Some (ix, 1))
        | None -> (runs, Some (ix, 1)))
      ([], None) log.Log.entries
  in
  List.rev (match last with Some r -> r :: runs | None -> runs)

(* ------------------------------------------------------------------ *)
(* the manifest *)

let runs_to_string runs =
  String.concat "," (List.map (fun (ix, n) -> Printf.sprintf "%d:%d" ix n) runs)

let rec chunks k = function
  | [] -> []
  | l ->
    let rec take n acc = function
      | x :: rest when n > 0 -> take (n - 1) (x :: acc) rest
      | rest -> (List.rev acc, rest)
    in
    let head, rest = take k [] l in
    head :: chunks k rest

let manifest_string ~causal (log : Log.t) shards =
  let b = Buffer.create 1024 in
  Buffer.add_string b magic;
  Buffer.add_char b '\n';
  let line s =
    Buffer.add_string b (Log_io.crc_hex s);
    Buffer.add_char b ' ';
    Buffer.add_string b s;
    Buffer.add_char b '\n'
  in
  String.split_on_char '\n' (Log_io.header_lines log)
  |> List.iter (fun l -> if l <> "" then line l);
  List.iteri
    (fun ix (node, slog) ->
      line
        (Printf.sprintf "node %d %s %d %s" ix node
           (List.length slog.Log.entries)
           (Log_io.crc_hex (Log_io.to_string slog))))
    shards;
  let runs = order_runs causal log in
  List.iter
    (fun chunk -> line ("order " ^ runs_to_string chunk))
    (chunks 16 runs);
  let ix_of n =
    let rec go i = function
      | [] -> -1
      | (m, _) :: rest -> if String.equal m n then i else go (i + 1) rest
    in
    go 0 shards
  in
  List.iter
    (fun (e : Causal.edge) ->
      line
        (Printf.sprintf "edge %S %d %d %d %d" e.Causal.chan
           (ix_of e.Causal.send_node) e.Causal.send_seq (ix_of e.Causal.recv_node)
           e.Causal.recv_seq))
    causal.Causal.edges;
  line
    (Printf.sprintf "end %d %d %d" (List.length shards)
       (List.length log.Log.entries)
       (List.length causal.Causal.edges));
  Buffer.contents b

(* recovered manifest fields; everything optional because every line is
   independently CRC'd and any suffix may be gone *)
type manifest = {
  m_header : Log_io.header;
  m_nodes : (int * (string * int * string)) list;  (* ix -> name, entries, crc *)
  m_order : (int * int) list;
  m_edges : (string * int * int * int * int) list;
  m_trailer : (int * int * int) option;
  m_corrupt : int;
}

let parse_manifest content =
  match String.split_on_char '\n' content with
  | m :: rest when String.equal m magic ->
    let hdr = Log_io.fresh_header () in
    let nodes = ref [] and order = ref [] and edges = ref [] in
    let trailer = ref None and corrupt = ref 0 in
    let parse_payload text =
      let consumed =
        try Log_io.parse_header_line hdr text with _ -> false
      in
      if consumed then true
      else
        try
          Scanf.sscanf text "node %d %s %d %s"
            (fun ix name entries crc ->
              nodes := (ix, (name, entries, crc)) :: !nodes);
          true
        with _ -> (
          try
            Scanf.sscanf text "edge %S %d %d %d %d"
              (fun chan six sseq rix rseq ->
                edges := (chan, six, sseq, rix, rseq) :: !edges);
            true
          with _ -> (
            try
              Scanf.sscanf text "end %d %d %d" (fun a b c ->
                  trailer := Some (a, b, c));
              true
            with _ ->
              if String.length text > 6 && String.sub text 0 6 = "order " then (
                try
                  String.sub text 6 (String.length text - 6)
                  |> String.split_on_char ','
                  |> List.iter (fun run ->
                         Scanf.sscanf run "%d:%d" (fun ix n ->
                             order := (ix, n) :: !order));
                  true
                with _ -> false)
              else false))
    in
    List.iter
      (fun l ->
        if l <> "" then
          match Log_io.split_crc_line l with
          | Some (crc, text)
            when String.equal crc (Log_io.crc_hex text) && parse_payload text
            ->
            ()
          | Some _ | None -> incr corrupt)
      rest;
    Ok
      {
        m_header = hdr;
        m_nodes = List.sort compare (List.rev !nodes);
        m_order = List.rev !order;
        m_edges = List.rev !edges;
        m_trailer = !trailer;
        m_corrupt = !corrupt;
      }
  | _ -> Error "not a ddet-causal manifest"

(* ------------------------------------------------------------------ *)
(* saving *)

let scan_shards base =
  let dir = Filename.dirname base in
  let prefix = Filename.basename base ^ "." in
  let plen = String.length prefix in
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter_map (fun f ->
           if
             String.length f > plen + 6
             && String.sub f 0 plen = prefix
             && Filename.check_suffix f ".shard"
           then Some (String.sub f plen (String.length f - plen - 6))
           else None)
    |> List.sort compare

let save_via ?(priority = []) store ~base ~(causal : Causal.t) (log : Log.t) =
  (* stale shards of a previous recording under this base would be
     mistaken for lost-and-found evidence: clear them first *)
  List.iter
    (fun node -> store.Store.remove (shard_path base node))
    (scan_shards base);
  store.Store.remove (manifest_path base);
  let shards = split ~causal log in
  (* write order: prioritized nodes first (in the order given), the rest
     in node order — under a store that dies mid-save, the shards the
     caller deems most diagnostic are the ones most likely on disk *)
  let write_order =
    let prioritized =
      List.filter_map
        (fun n -> List.find_opt (fun (m, _) -> String.equal m n) shards)
        priority
    in
    prioritized
    @ List.filter
        (fun (n, _) -> not (List.mem n priority))
        shards
  in
  (* every shard is written even when an earlier one fails: shards are
     independent evidence, and partial persistence is the useful case *)
  let written =
    List.map
      (fun (node, slog) ->
        (node, store.Store.write (shard_path base node) (Log_io.to_string slog)))
      write_order
  in
  (* report stays in node order regardless of write order *)
  let shard_results =
    List.map (fun (node, _) -> (node, List.assoc node written)) shards
  in
  let manifest_result =
    Store.atomic_write store (manifest_path base)
      (manifest_string ~causal log shards)
  in
  { shard_results; manifest_result }

(* ------------------------------------------------------------------ *)
(* loading *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_shard ~lose ~expected node path =
  if List.mem node lose || not (Sys.file_exists path) then
    { node; status = Missing; log = None }
  else
    let content = try read_file path with Sys_error e -> e in
    match Log_io.of_string_report ~mode:Log_io.Salvage content with
    | Error e -> { node; status = Corrupt e; log = None }
    | Ok (log, damage) ->
      let matches_manifest =
        match expected with
        | Some (entries, crc) ->
          String.equal crc (Log_io.crc_hex content)
          && List.length log.Log.entries = entries
        | None -> true
      in
      if (not (Log_io.is_damaged damage)) && matches_manifest then
        { node; status = Intact; log = Some log }
      else { node; status = Salvaged damage; log = Some log }

let exists base =
  Sys.file_exists (manifest_path base) || scan_shards base <> []

let load ?(lose = []) base =
  if not (exists base) then
    Error "no sharded recording at that base path (no .causal, no .shard)"
  else
    let manifest =
      if Sys.file_exists (manifest_path base) then
        match
          try parse_manifest (read_file (manifest_path base))
          with Sys_error e -> Error e
        with
        | Ok m -> Some m
        | Error _ -> None
      else None
    in
    let node_names, expected =
      match manifest with
      | Some m when m.m_nodes <> [] ->
        ( List.map (fun (_, (n, _, _)) -> n) m.m_nodes,
          fun node ->
            List.find_map
              (fun (_, (n, entries, crc)) ->
                if String.equal n node then Some (entries, crc) else None)
              m.m_nodes )
      | _ -> (scan_shards base, fun _ -> None)
    in
    let shards =
      List.map
        (fun node ->
          load_shard ~lose ~expected:(expected node) node
            (shard_path base node))
        node_names
    in
    (* header: the manifest's when it recovered one, else the first
       surviving shard's (each shard carries the full header) *)
    let recorder, base_steps, failure, faults =
      match manifest with
      | Some m when m.m_header.Log_io.h_recorder <> "" ->
        ( m.m_header.Log_io.h_recorder,
          m.m_header.Log_io.h_base_steps,
          m.m_header.Log_io.h_failure,
          m.m_header.Log_io.h_faults )
      | _ -> (
        match List.find_opt shard_ok shards with
        | Some { log = Some l; _ } ->
          (l.Log.recorder, l.Log.base_steps, l.Log.failure, l.Log.faults)
        | _ -> ("", 0, None, None))
    in
    let ix_name =
      match manifest with
      | Some m -> List.map (fun (ix, (n, _, _)) -> (ix, n)) m.m_nodes
      | None -> []
    in
    let resolve ix = List.assoc_opt ix ix_name in
    (* manifest node indexes re-based onto positions in [nodes]: a
       corrupt node line leaves a hole in the ix space, and runs or
       edges referencing it are dropped, never guessed *)
    let pos_of ix =
      let rec go p = function
        | [] -> None
        | (i, _) :: rest -> if i = ix then Some p else go (p + 1) rest
      in
      go 0 ix_name
    in
    let order =
      match manifest with
      | Some m ->
        List.filter_map
          (fun (ix, n) ->
            match pos_of ix with Some p -> Some (p, n) | None -> None)
          m.m_order
      | None -> []
    in
    let edges =
      match manifest with
      | None -> []
      | Some m ->
        List.filter_map
          (fun (chan, six, sseq, rix, rseq) ->
            match (resolve six, resolve rix) with
            | Some send_node, Some recv_node ->
              Some
                {
                  Causal.chan;
                  send_node;
                  send_seq = sseq;
                  recv_node;
                  recv_seq = rseq;
                }
            | _ -> None)
          m.m_edges
    in
    let manifest_complete =
      match manifest with
      | Some m -> (
        m.m_corrupt = 0
        && m.m_header.Log_io.h_recorder <> ""
        &&
        match m.m_trailer with
        | Some (n_nodes, n_entries, n_edges) ->
          List.length m.m_nodes = n_nodes
          && List.fold_left (fun acc (_, n) -> acc + n) 0 m.m_order = n_entries
          && List.length m.m_edges = n_edges
        | None -> false)
      | None -> false
    in
    Ok
      {
        base;
        recorder;
        base_steps;
        failure;
        faults;
        nodes = node_names;
        shards;
        order;
        edges;
        manifest_found = manifest <> None;
        manifest_complete;
      }

let all_lost l = not (List.exists shard_ok l.shards)

let pp_loaded ppf l =
  Format.fprintf ppf "sharded recording %s: %s manifest, %d node(s)" l.base
    (if l.manifest_complete then "complete"
     else if l.manifest_found then "damaged"
     else "no")
    (List.length l.nodes);
  List.iter
    (fun s ->
      Format.fprintf ppf "@ %-12s %s%s" s.node (status_name s.status)
        (match (s.status, s.log) with
        | Salvaged d, Some _ ->
          Format.asprintf " (%a)" Log_io.pp_damage d
        | Corrupt e, _ -> Printf.sprintf " (%s)" e
        | _ -> ""))
    l.shards
