(* Segmented persistence. Layout for base path [p]:

     p.header     "ddet-seg-header v1" + recorder line  (atomic, first)
     p.NNNN.seg   "ddet-seg v1 N", CRC'd entry lines, "end N" trailer
     p.manifest   "ddet-manifest v1", header lines, per-segment CRCs,
                  "end <nsegs>"                         (atomic, last)

   Sealed segments are immutable and self-validating (line CRCs + entry
   trailer); the manifest additionally records each segment's whole-file
   CRC so post-seal bit rot is caught even when the lines still parse.
   Only the tail segment is ever in a half-written state, which bounds
   what a crash can lose. *)

let seg_path base i = Printf.sprintf "%s.%04d.seg" base i
let manifest_path base = base ^ ".manifest"
let header_path base = base ^ ".header"

let seg_magic = "ddet-seg v1"
let manifest_magic = "ddet-manifest v1"
let header_magic = "ddet-seg-header v1"

let exists base =
  Sys.file_exists (manifest_path base)
  || Sys.file_exists (header_path base)
  || Sys.file_exists (seg_path base 0)

(* ------------------------------------------------------------------ *)
(* writer *)

(* Every byte crosses the pluggable store, and a permanent store error
   makes the writer sticky-failed: appends become no-ops, the failure is
   readable via [writer_error], and close skips the manifest — a failed
   recording must never gain the marker that asserts completeness.
   Recovery then takes the scan path and reports the honest salvageable
   prefix. *)
type writer = {
  base : string;
  recorder : string;
  segment_entries : int;
  store : Store.t;
  mutable seg : int;  (* index of the segment being written *)
  mutable count : int;  (* entries in that segment *)
  mutable open_seg : bool;  (* the segment file has been started *)
  buf : Buffer.t;  (* exact bytes of the open segment, for its CRC *)
  mutable sealed : (int * int * string) list;  (* rev (index, entries, crc) *)
  mutable closed : bool;
  mutable failed : Store.error option;  (* sticky permanent failure *)
}

let writer_error w = w.failed

let fail w e = if w.failed = None then w.failed <- Some e

let create ?store ?(segment_entries = 64) ~recorder base =
  if segment_entries < 1 then invalid_arg "Log_segments.create: segment_entries";
  let store = match store with Some s -> s | None -> Store.default () in
  store.Store.remove (manifest_path base);
  let rec clean i =
    if store.Store.exists (seg_path base i) then begin
      store.Store.remove (seg_path base i);
      clean (i + 1)
    end
  in
  clean 0;
  let w =
    {
      base;
      recorder;
      segment_entries;
      store;
      seg = 0;
      count = 0;
      open_seg = false;
      buf = Buffer.create 4096;
      sealed = [];
      closed = false;
      failed = None;
    }
  in
  (* the header ships before any entry: a recovery that races a crash
     still learns which recorder produced the segments *)
  (match
     Store.atomic_write store (header_path base)
       (Printf.sprintf "%s\nrecorder \"%s\"\n" header_magic
          (String.escaped recorder))
   with
  | Ok () -> ()
  | Error e -> fail w e);
  w

let put w s =
  match w.failed with
  | Some _ -> ()
  | None -> (
    match w.store.Store.append (seg_path w.base w.seg) s with
    | Ok () -> Buffer.add_string w.buf s
    | Error e -> fail w e)

let seal w =
  if w.open_seg then begin
    let path = seg_path w.base w.seg in
    put w (Printf.sprintf "end %d\n" w.count);
    (* seal (fsync + close) even after a failure, so the handle is
       released; only a clean segment earns a manifest entry *)
    (match w.store.Store.seal path with
    | Ok () -> ()
    | Error e -> fail w e);
    if w.failed = None then
      w.sealed <-
        (w.seg, w.count, Log_io.crc_hex (Buffer.contents w.buf)) :: w.sealed;
    w.open_seg <- false;
    Buffer.clear w.buf;
    w.seg <- w.seg + 1;
    w.count <- 0
  end

let append w entry =
  if w.closed then invalid_arg "Log_segments.append: writer is closed";
  if w.failed = None then begin
    if not w.open_seg then begin
      w.open_seg <- true;
      put w (Printf.sprintf "%s %d\n" seg_magic w.seg)
    end;
    let line = Log_io.enc_entry entry in
    put w (Printf.sprintf "%s %s\n" (Log_io.crc_hex line) line);
    if w.failed = None then begin
      w.count <- w.count + 1;
      if w.count >= w.segment_entries then seal w
    end
  end

let close w ~base_steps ~failure ?faults () =
  if not w.closed then begin
    seal w;
    w.closed <- true;
    match w.failed with
    | Some _ -> ()
    | None -> (
      let hdr_log =
        Log.make ?faults ~recorder:w.recorder ~entries:[] ~base_steps ~failure
          ()
      in
      let b = Buffer.create 1024 in
      Buffer.add_string b (manifest_magic ^ "\n");
      Buffer.add_string b (Log_io.header_lines hdr_log);
      let sealed = List.rev w.sealed in
      List.iter
        (fun (i, n, crc) ->
          Buffer.add_string b (Printf.sprintf "segment %04d %d %s\n" i n crc))
        sealed;
      Buffer.add_string b (Printf.sprintf "end %d\n" (List.length sealed));
      match
        Store.atomic_write w.store (manifest_path w.base) (Buffer.contents b)
      with
      | Ok () -> ()
      | Error e -> fail w e)
  end

let save_via store ?segment_entries base (log : Log.t) =
  let w = create ~store ?segment_entries ~recorder:log.Log.recorder base in
  List.iter (append w) log.Log.entries;
  close w ~base_steps:log.Log.base_steps ~failure:log.Log.failure
    ?faults:log.Log.faults ();
  match writer_error w with Some e -> Error e | None -> Ok ()

let save ?segment_entries base (log : Log.t) =
  match save_via (Store.default ()) ?segment_entries base log with
  | Ok () -> ()
  | Error e -> raise (Sys_error (Store.error_to_string e))

(* ------------------------------------------------------------------ *)
(* recovery *)

type recovery = {
  segments_found : int;
  segments_complete : int;
  entries : int;
  tail_entries : int;
  complete : bool;
}

let is_damaged r = not r.complete

let pp_recovery ppf r =
  if r.complete then
    Format.fprintf ppf "segmented log intact: %d entries in %d segment(s)"
      r.entries r.segments_found
  else
    Format.fprintf ppf
      "recovered %d entries (%d complete segment(s)%s) from a crashed \
       recording of %d segment file(s)"
      r.entries r.segments_complete
      (if r.tail_entries > 0 then
         Printf.sprintf " + %d salvaged tail entries" r.tail_entries
       else "")
      r.segments_found

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> In_channel.input_all ic)

(* Parse one segment file: entries that validate, and whether the segment
   is sealed (correct magic, every line CRC-clean, trailer agrees). A bad
   line ends the valid prefix — later lines of a torn segment are not
   trusted. *)
let parse_segment ~index contents =
  match Log_io.numbered_lines contents with
  | [] -> ([], false)
  | (_, magic) :: rest ->
    if not (String.equal (String.trim magic) (Printf.sprintf "%s %d" seg_magic index))
    then ([], false)
    else begin
      let entries = ref [] in
      let sealed = ref false in
      let bad = ref false in
      List.iter
        (fun (_, line) ->
          if not (!bad || !sealed) then
            match Log_io.split_crc_line line with
            | Some (crc, body) when String.equal crc (Log_io.crc_hex body) -> (
              match Log_io.dec_entry body with
              | e -> entries := e :: !entries
              | exception _ -> bad := true)
            | Some _ -> bad := true
            | None -> (
              match String.split_on_char ' ' (String.trim line) with
              | [ "end"; n ] when int_of_string_opt n = Some (List.length !entries)
                ->
                sealed := true
              | _ -> bad := true))
        rest;
      (List.rev !entries, !sealed && not !bad)
    end

type manifest = {
  m_header : Log_io.header;
  m_segments : (int * int * string) list;  (* (index, entries, crc) *)
}

let parse_manifest contents =
  match Log_io.numbered_lines contents with
  | (_, magic) :: rest when String.equal (String.trim magic) manifest_magic ->
    let hdr = Log_io.fresh_header () in
    let segs = ref [] in
    let trailer = ref None in
    let ok = ref true in
    List.iter
      (fun (_, line) ->
        if !ok then
          match String.split_on_char ' ' (String.trim line) with
          | [ "segment"; i; n; crc ] -> (
            match (int_of_string_opt i, int_of_string_opt n) with
            | Some i, Some n -> segs := (i, n, crc) :: !segs
            | _ -> ok := false)
          | [ "end"; n ] -> trailer := int_of_string_opt n
          | _ -> (
            match Log_io.parse_header_line hdr line with
            | true -> ()
            | false -> ok := false
            | exception _ -> ok := false))
      rest;
    let segs = List.rev !segs in
    if !ok && !trailer = Some (List.length segs) then
      Some { m_header = hdr; m_segments = segs }
    else None
  | _ | (exception _) -> None

let read_header base =
  let path = header_path base in
  if not (Sys.file_exists path) then None
  else
    match Log_io.numbered_lines (read_file path) with
    | (_, magic) :: rest when String.equal (String.trim magic) header_magic ->
      let hdr = Log_io.fresh_header () in
      List.iter
        (fun (_, line) ->
          try ignore (Log_io.parse_header_line hdr line) with _ -> ())
        rest;
      Some hdr
    | _ | (exception _) -> None

(* Crash recovery: walk segment files in order; sealed segments are
   recovered whole, the first unsealed (or missing) one contributes its
   valid prefix and ends the walk — the writer is strictly sequential, so
   nothing after a torn segment can be trusted to belong to this
   recording. *)
let scan_segments base =
  let rec go i found complete acc tail =
    let path = seg_path base i in
    if not (Sys.file_exists path) then (found, complete, List.rev acc, tail)
    else
      let entries, sealed = parse_segment ~index:i (read_file path) in
      if sealed then go (i + 1) (found + 1) (complete + 1) (List.rev_append entries acc) tail
      else (found + 1, complete, List.rev (List.rev_append entries acc), List.length entries)
  in
  go 0 0 0 [] 0

let load base =
  let manifest =
    let path = manifest_path base in
    if Sys.file_exists path then parse_manifest (read_file path) else None
  in
  let validated =
    match manifest with
    | None -> None
    | Some m -> (
      let all =
        List.for_all
          (fun (i, n, crc) ->
            let path = seg_path base i in
            Sys.file_exists path
            &&
            let contents = read_file path in
            String.equal crc (Log_io.crc_hex contents)
            &&
            let entries, sealed = parse_segment ~index:i contents in
            sealed && List.length entries = n)
          m.m_segments
      in
      if not all then None
      else
        Some
          ( m,
            List.concat_map
              (fun (i, _, _) -> fst (parse_segment ~index:i (read_file (seg_path base i))))
              m.m_segments ))
  in
  match validated with
  | Some (m, entries) ->
    let log =
      Log.make ?faults:m.m_header.Log_io.h_faults
        ~recorder:m.m_header.Log_io.h_recorder ~entries
        ~base_steps:m.m_header.Log_io.h_base_steps
        ~failure:m.m_header.Log_io.h_failure ()
    in
    Ok
      ( log,
        {
          segments_found = List.length m.m_segments;
          segments_complete = List.length m.m_segments;
          entries = List.length entries;
          tail_entries = 0;
          complete = true;
        } )
  | None ->
    let found, complete, entries, tail_entries = scan_segments base in
    let hdr = read_header base in
    if found = 0 && hdr = None && manifest = None then
      Error (Printf.sprintf "no segmented recording at %s" base)
    else
      (* degraded header: prefer the manifest's (if it parsed at all),
         then the header file; the failure descriptor is recovered from
         the entries when the recorder logged one before the crash *)
      let recorder, base_steps, failure, faults =
        match (manifest, hdr) with
        | Some m, _ ->
          ( m.m_header.Log_io.h_recorder,
            m.m_header.Log_io.h_base_steps,
            m.m_header.Log_io.h_failure,
            m.m_header.Log_io.h_faults )
        | None, Some h ->
          (h.Log_io.h_recorder, h.Log_io.h_base_steps, h.Log_io.h_failure,
           h.Log_io.h_faults)
        | None, None -> ("unknown", 0, None, None)
      in
      let failure =
        match failure with
        | Some _ -> failure
        | None ->
          List.find_map
            (function Log.Failure_desc f -> Some f | _ -> None)
            entries
      in
      let log =
        Log.make ?faults ~recorder ~entries ~base_steps ~failure ()
      in
      Ok
        ( log,
          {
            segments_found = found;
            segments_complete = complete;
            entries = List.length entries;
            tail_entries;
            complete = false;
          } )
