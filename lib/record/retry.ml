(* Bounded retry with deterministic backoff.

   The contract rides on Store.error.transient: a transient error
   persisted nothing, so re-issuing the identical operation is safe and
   worth a few attempts; a permanent error may have torn the target, so
   it surfaces immediately as a typed failure. Backoff is a fixed
   geometric schedule — deterministic, so a fault plan plus a policy
   always yields the same attempt sequence. *)

type policy = {
  max_retries : int;  (* extra attempts after the first *)
  backoff_s : float;  (* sleep before the first retry *)
  multiplier : float;
  max_backoff_s : float;  (* per-sleep cap, bounding total stall *)
}

let default =
  { max_retries = 3; backoff_s = 0.001; multiplier = 2.0; max_backoff_s = 0.05 }

let no_retries = { default with max_retries = 0 }

type failure = {
  error : Store.error;  (* the error that ended the attempt sequence *)
  attempts : int;  (* attempts made, including the first *)
  gave_up : bool;  (* true: transient but retry budget exhausted *)
}

let pp_failure ppf f =
  Format.fprintf ppf "%a after %d attempt%s%s" Store.pp_error f.error f.attempts
    (if f.attempts = 1 then "" else "s")
    (if f.gave_up then " (retry budget exhausted)" else "")

let failure_to_string f = Format.asprintf "%a" pp_failure f

let run ?(policy = default) f =
  let rec go attempt backoff =
    match f () with
    | Ok v -> Ok v
    | Error (e : Store.error) when e.transient && attempt <= policy.max_retries
      ->
      Ddet_obs.Tracer.count "store.retries" 1;
      if backoff > 0. then Unix.sleepf (Float.min backoff policy.max_backoff_s);
      go (attempt + 1) (backoff *. policy.multiplier)
    | Error e ->
      Ddet_obs.Tracer.count "store.give_ups" 1;
      Error { error = e; attempts = attempt; gave_up = e.Store.transient }
  in
  go 1 policy.backoff_s

(* After retries are exhausted or a permanent error surfaces, the
   failure crosses back into the Store error type with transient:=false
   — downstream writers must not retry what Retry already gave up on. *)
let as_store_error f = { f.error with Store.transient = false }

let store ?(policy = default) (base : Store.t) =
  let retrying f = Result.map_error as_store_error (run ~policy f) in
  {
    base with
    Store.name = Printf.sprintf "%s+retry(%d)" base.Store.name policy.max_retries;
    append = (fun path s -> retrying (fun () -> base.Store.append path s));
    fsync = (fun path -> retrying (fun () -> base.Store.fsync path));
    seal = (fun path -> retrying (fun () -> base.Store.seal path));
    write = (fun path s -> retrying (fun () -> base.Store.write path s));
    rename = (fun src dst -> retrying (fun () -> base.Store.rename src dst));
  }
