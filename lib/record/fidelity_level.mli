(** Recording fidelity levels: the dial RCSE turns (§3.1).

    [High] means "record like a perfect-determinism recorder here" —
    schedule points and input data. [Low] means record nothing. Selectors
    (code-based, data-based, trigger-based) map each event to a level. *)

type t = Low | High

val to_string : t -> string
val equal : t -> t -> bool

(** A selector decides, statefully, the fidelity level for each event as it
    streams by during recording. *)
type selector = {
  name : string;
  level : Mvm.Event.t -> t;
}

(** [always level] is the constant selector. *)
val always : t -> selector

(** [by_function f] derives the level from the enclosing function of the
    event — the code-based selection of §3.1.1. *)
val by_function : name:string -> (string -> t) -> selector

(** [by_site f] derives the level from the statement site of the event —
    site-granular selection, finer than {!by_function} (a static analysis
    can name individual suspect statements). *)
val by_site : name:string -> (int -> t) -> selector

(** [any selectors] records at high fidelity when any constituent selector
    does — code-based, data-based and trigger-based selection combined
    (§3.1.3). Every constituent sees every event, so stateful selectors
    keep their state consistent. *)
val any : selector list -> selector
