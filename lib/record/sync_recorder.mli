(** Sync-schedule recorder (ODR's heavier scheme): logs inputs, outputs and
    the order of synchronisation operations (locks, sends, receives,
    spawns), but not the interleaving of plain shared-memory accesses — the
    outcomes of data races must be inferred at replay time. *)

val create : ?govern:Governor.t -> unit -> Recorder.t
