open Mvm

let create ?govern () =
  let add, finalize = Recorder.accumulator ~name:"perfect" ?govern () in
  let on_event (e : Event.t) =
    match e.kind with
    | Event.Step -> add (Log.Sched { tid = e.tid; sid = e.sid })
    | Event.In io ->
      add (Log.Input { tid = e.tid; chan = io.chan; value = io.value.Value.v })
    | Event.Read _ | Event.Write _ | Event.Out _ | Event.Msg_send _
    | Event.Msg_recv _ | Event.Lock_acq _ | Event.Lock_rel _ | Event.Spawned _
    | Event.Crashed _ ->
      ()
  in
  Recorder.make ~name:"perfect" ~on_event ~finalize
