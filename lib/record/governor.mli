(** Overhead governor: graceful fidelity degradation under an SLO.

    Tracks the running recording overhead (the same quantity
    {!Cost_model.overhead} reports for a finished log) against a budget
    like [1.3] ("recording may cost at most 1.3x") and walks a
    degradation ladder when the workload gets too hot:

    {v
    level 0   everything the recorder emits
    level 1   drop schedule points (Sched/Cp_sched)      — value tier
    level 2   also drop logged values                    — sync tier
    level 3   failure descriptor and bookkeeping only    — failure tier
    v}

    Bookkeeping ({!Log.entry.Failure_desc}, [Mark], [Flight_note],
    [Govern]) always passes. Hysteresis — a warmup before the first
    move, a dwell between moves, separated up/down thresholds — stops
    flapping; a trigger firing (an RCSE selector dialing high) boosts
    straight back to level 0 and holds. Every transition emits a
    {!Log.entry.Govern} entry so the log honestly marks its degraded
    windows: the replayer searches them, and the fidelity metrics price
    them as a DF floor instead of pretending the data is there. *)

type t

(** [create ?cost_model ?warmup ?dwell ?trigger_hold ?max_level ~budget ()]
    — [budget] is the overhead SLO (must exceed 1.0); [warmup] steps
    before the first transition (default 32); [dwell] minimum steps
    between transitions (default 16); [trigger_hold] steps at full
    fidelity after a trigger boost (default 64); [max_level] caps the
    ladder (default 3 = failure-only). The governor aims slightly below
    the budget so the finished log's measured overhead lands within the
    SLO rather than astride it. *)
val create :
  ?cost_model:Cost_model.t ->
  ?warmup:int ->
  ?dwell:int ->
  ?trigger_hold:int ->
  ?max_level:int ->
  budget:float ->
  unit ->
  t

(** Monitor hook: attach {e before} the recorder's own monitor so the
    step clock and pressure are current when {!admit} runs. *)
val on_event : t -> Mvm.Event.t -> unit

(** [admit g e] is the admission gate recorders route every entry
    through: the entries to actually record — any queued [Govern]
    transition entries, then [e] itself if the current ladder level
    admits it. Admitted cost is accounted here. *)
val admit : t -> Log.entry -> Log.entry list

(** Drain queued [Govern] entries at finalize time (a transition with no
    later admitted entry must still reach the log). *)
val flush : t -> Log.entry list

val level : t -> int
val transitions : t -> int

(** Entries suppressed by degradation so far. *)
val dropped : t -> int

(** The running overhead estimate. *)
val overhead : t -> float

(** [admits level e] — the pure ladder: does [level] admit [e]? *)
val admits : int -> Log.entry -> bool
