(** Output-determinism recorder (ODR's lightest scheme): logs only the
    observable outputs. Replay must infer schedule and inputs post-factum —
    cheap at production time, expensive (and fidelity-lossy) at debug
    time. *)

val create : ?govern:Governor.t -> unit -> Recorder.t
