(* Deterministic hostile storage.

   Wraps a base {!Store.t} and injects faults from a reproducible plan:
   the same plan over the same operation sequence produces exactly the
   same failures, short writes and latency spikes, whatever the wall
   clock or scheduler does. Decisions are pure splitmix64-style hashes
   of (plan seed, fault salt, operation index), mirroring
   {!Mvm.Fault}'s design for the execution-level worlds.

   The fault vocabulary matches what production recorders die of:

     enospc:N        the disk fills after N payload bytes; writes past
                     the budget persist a prefix and fail permanently
     torn:K[:F]      operation #K persists only fraction F (default 0.5)
                     of its payload, then fails permanently
     fsyncfail:K[:t] fsync #K fails (permanently, or [:t] transiently)
     renamefail:K[:t] rename #K fails likewise
     flaky:P         each write/append fails with probability P before
                     persisting anything — the transient blips Retry
                     absorbs
     slow:A-B:MS     operations #A..#B each stall MS milliseconds *)

type fault =
  | Disk_full of { after_bytes : int }
  | Torn of { at_op : int; keep : float }
  | Fsync_fail of { at_op : int; transient : bool }
  | Rename_fail of { at_op : int; transient : bool }
  | Flaky of { prob : float }
  | Slow of { from_op : int; until_op : int; ms : float }

type plan = { seed : int; faults : fault list }

let none = { seed = 0; faults = [] }
let make ?(seed = 0) faults = { seed; faults }
let is_empty plan = plan.faults = []

(* ------------------------------------------------------------------ *)
(* rendering / parsing (the CLI's --io-faults syntax) *)

let fault_to_string = function
  | Disk_full { after_bytes } -> Printf.sprintf "enospc:%d" after_bytes
  | Torn { at_op; keep } -> Printf.sprintf "torn:%d:%g" at_op keep
  | Fsync_fail { at_op; transient } ->
    Printf.sprintf "fsyncfail:%d%s" at_op (if transient then ":t" else "")
  | Rename_fail { at_op; transient } ->
    Printf.sprintf "renamefail:%d%s" at_op (if transient then ":t" else "")
  | Flaky { prob } -> Printf.sprintf "flaky:%g" prob
  | Slow { from_op; until_op; ms } ->
    Printf.sprintf "slow:%d-%d:%g" from_op until_op ms

let to_string plan =
  String.concat ","
    (Printf.sprintf "seed=%d" plan.seed :: List.map fault_to_string plan.faults)

let pp ppf plan = Format.pp_print_string ppf (to_string plan)

let parse_num clause s =
  match int_of_string_opt s with
  | Some n when n >= 0 -> Ok n
  | _ -> Error (Printf.sprintf "bad count %S in io-fault clause %S" s clause)

let parse_frac clause s =
  match float_of_string_opt s with
  | Some f when f >= 0. && f <= 1. -> Ok f
  | _ -> Error (Printf.sprintf "bad fraction %S in io-fault clause %S" s clause)

(* Every legal clause shape, quoted verbatim in the unknown-name error:
   a mistyped clause must fail loudly with the whole vocabulary in view,
   never be skipped or folded into a vague message. *)
let valid_clauses =
  [
    "enospc:BYTES";
    "torn:OP[:KEEP]";
    "fsyncfail:OP[:t]";
    "renamefail:OP[:t]";
    "flaky:PROB";
    "slow:FROM-TO:MS";
    "seed=N";
  ]

let parse_clause clause =
  let ( let* ) = Result.bind in
  let malformed () =
    Error
      (Printf.sprintf "malformed io-fault clause %S (expected forms: %s)"
         clause
         (String.concat ", " valid_clauses))
  in
  match String.split_on_char ':' clause with
  | "enospc" :: rest -> (
    match rest with
    | [ n ] ->
      let* after_bytes = parse_num clause n in
      Ok (`Fault (Disk_full { after_bytes }))
    | _ -> malformed ())
  | "torn" :: rest -> (
    match rest with
    | [ k ] ->
      let* at_op = parse_num clause k in
      Ok (`Fault (Torn { at_op; keep = 0.5 }))
    | [ k; f ] ->
      let* at_op = parse_num clause k in
      let* keep = parse_frac clause f in
      Ok (`Fault (Torn { at_op; keep }))
    | _ -> malformed ())
  | "fsyncfail" :: rest -> (
    match rest with
    | [ k ] ->
      let* at_op = parse_num clause k in
      Ok (`Fault (Fsync_fail { at_op; transient = false }))
    | [ k; "t" ] ->
      let* at_op = parse_num clause k in
      Ok (`Fault (Fsync_fail { at_op; transient = true }))
    | _ -> malformed ())
  | "renamefail" :: rest -> (
    match rest with
    | [ k ] ->
      let* at_op = parse_num clause k in
      Ok (`Fault (Rename_fail { at_op; transient = false }))
    | [ k; "t" ] ->
      let* at_op = parse_num clause k in
      Ok (`Fault (Rename_fail { at_op; transient = true }))
    | _ -> malformed ())
  | "flaky" :: rest -> (
    match rest with
    | [ p ] ->
      let* prob = parse_frac clause p in
      Ok (`Fault (Flaky { prob }))
    | _ -> malformed ())
  | "slow" :: rest -> (
    match rest with
    | [ range; ms ] -> (
      let* ms =
        match float_of_string_opt ms with
        | Some f when f >= 0. -> Ok f
        | _ ->
          Error
            (Printf.sprintf "bad latency %S in io-fault clause %S" ms clause)
      in
      match String.index_opt range '-' with
      | Some k ->
        let* from_op = parse_num clause (String.sub range 0 k) in
        let* until_op =
          parse_num clause
            (String.sub range (k + 1) (String.length range - k - 1))
        in
        Ok (`Fault (Slow { from_op; until_op; ms }))
      | None ->
        let* at = parse_num clause range in
        Ok (`Fault (Slow { from_op = at; until_op = at; ms })))
    | _ -> malformed ())
  | [ kv ] when String.length kv > 5 && String.sub kv 0 5 = "seed=" ->
    let* seed = parse_num clause (String.sub kv 5 (String.length kv - 5)) in
    Ok (`Seed seed)
  | name :: _ ->
    Error
      (Printf.sprintf "unknown io-fault clause %S in %S; valid clauses: %s"
         name clause
         (String.concat ", " valid_clauses))
  | [] -> malformed ()

let of_string s =
  let clauses =
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun c -> c <> "")
  in
  let rec go seed acc = function
    | [] -> Ok { seed; faults = List.rev acc }
    | clause :: rest -> (
      match parse_clause clause with
      | Ok (`Seed n) -> go n acc rest
      | Ok (`Fault f) -> go seed (f :: acc) rest
      | Error e -> Error e)
  in
  go 0 [] clauses

(* ------------------------------------------------------------------ *)
(* deterministic coins (same mixer as Mvm.Fault) *)

let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let mix_int h x =
  mix64 (Int64.add (Int64.logxor h (Int64.of_int x)) 0x9E3779B97F4A7C15L)

let salt_flaky = 11

let coin plan ~salt ~op =
  let h = mix_int (Int64.of_int plan.seed) salt in
  let h = mix_int h op in
  Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.

(* ------------------------------------------------------------------ *)
(* the wrapper *)

type stats = {
  ops : int;  (** operations that reached the wrapper *)
  bytes_written : int;  (** payload bytes that reached the base store *)
  bytes_lost : int;  (** payload bytes discarded by short writes *)
  injected : int;  (** operations that failed by injection *)
  injected_transient : int;  (** of those, transient ones *)
  stalled_ms : float;  (** total injected latency *)
}

let zero_stats =
  {
    ops = 0;
    bytes_written = 0;
    bytes_lost = 0;
    injected = 0;
    injected_transient = 0;
    stalled_ms = 0.;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "%d ops, %d bytes written, %d lost to short writes, %d fault(s) injected \
     (%d transient), %.1f ms stalled"
    s.ops s.bytes_written s.bytes_lost s.injected s.injected_transient
    s.stalled_ms

type state = { mutable op : int; mutable st : stats }

let err st ~op ~path ~kind ~transient =
  st.st <-
    {
      st.st with
      injected = st.st.injected + 1;
      injected_transient = st.st.injected_transient + (if transient then 1 else 0);
    };
  Error { Store.e_op = op; e_path = path; e_kind = kind; transient }

(* a short write persists [keep] bytes of the payload through the base
   store before the failure surfaces — a torn tail on disk, exactly what
   the CRC-and-trailer format must survive *)
let short_write st base ~op ~path ~payload ~keep ~kind =
  let kept = String.sub payload 0 (min keep (String.length payload)) in
  let lost = String.length payload - String.length kept in
  (match op with
  | Store.Append -> ignore (base.Store.append path kept)
  | _ -> ignore (base.Store.write path kept));
  st.st <-
    {
      st.st with
      bytes_written = st.st.bytes_written + String.length kept;
      bytes_lost = st.st.bytes_lost + lost;
    };
  err st ~op ~path ~kind ~transient:false

let wrap plan (base : Store.t) =
  let st = { op = 0; st = zero_stats } in
  let stalls n =
    List.fold_left
      (fun acc -> function
        | Slow { from_op; until_op; ms } when n >= from_op && n <= until_op ->
          acc +. ms
        | _ -> acc)
      0. plan.faults
  in
  let tick () =
    let n = st.op in
    st.op <- n + 1;
    st.st <- { st.st with ops = st.st.ops + 1 };
    let ms = stalls n in
    if ms > 0. then begin
      st.st <- { st.st with stalled_ms = st.st.stalled_ms +. ms };
      Unix.sleepf (ms /. 1000.)
    end;
    n
  in
  let torn_at n =
    List.find_map
      (function Torn { at_op; keep } when at_op = n -> Some keep | _ -> None)
      plan.faults
  in
  let flaky_prob =
    List.fold_left
      (fun acc -> function Flaky { prob } -> Float.max acc prob | _ -> acc)
      0. plan.faults
  in
  let disk_budget =
    List.fold_left
      (fun acc -> function
        | Disk_full { after_bytes } ->
          Some (match acc with None -> after_bytes | Some b -> min b after_bytes)
        | _ -> acc)
      None plan.faults
  in
  let payload_op op path payload k =
    let n = tick () in
    if flaky_prob > 0. && coin plan ~salt:salt_flaky ~op:n < flaky_prob then
      (* a transient blip: nothing persisted, retry is safe *)
      err st ~op ~path ~kind:(Store.Eio "injected transient fault")
        ~transient:true
    else
      match torn_at n with
      | Some keep ->
        short_write st base ~op ~path ~payload
          ~keep:(int_of_float (keep *. float_of_int (String.length payload)))
          ~kind:(Store.Eio "injected torn write")
      | None -> (
        match disk_budget with
        | Some budget when st.st.bytes_written + String.length payload > budget
          ->
          let room = max 0 (budget - st.st.bytes_written) in
          short_write st base ~op ~path ~payload ~keep:room ~kind:Store.Enospc
        | _ -> (
          match k payload with
          | Ok () ->
            st.st <-
              {
                st.st with
                bytes_written = st.st.bytes_written + String.length payload;
              };
            Ok ()
          | Error e -> Error e))
  in
  let plain_op op path at_fault k =
    let n = tick () in
    match at_fault n with
    | Some transient ->
      err st ~op ~path ~kind:(Store.Eio "injected fault") ~transient
    | None -> k ()
  in
  let fsync_at n =
    List.find_map
      (function
        | Fsync_fail { at_op; transient } when at_op = n -> Some transient
        | _ -> None)
      plan.faults
  in
  let rename_at n =
    List.find_map
      (function
        | Rename_fail { at_op; transient } when at_op = n -> Some transient
        | _ -> None)
      plan.faults
  in
  let store =
    {
      Store.name = Printf.sprintf "%s+io-faults(%s)" base.Store.name (to_string plan);
      append =
        (fun path s -> payload_op Store.Append path s (base.Store.append path));
      fsync = (fun path -> plain_op Store.Fsync path fsync_at (fun () -> base.Store.fsync path));
      seal = (fun path -> plain_op Store.Fsync path fsync_at (fun () -> base.Store.seal path));
      write =
        (fun path s -> payload_op Store.Write path s (base.Store.write path));
      rename =
        (fun src dst ->
          plain_op Store.Rename dst rename_at (fun () -> base.Store.rename src dst));
      remove = base.Store.remove;
      exists = base.Store.exists;
    }
  in
  (store, fun () -> st.st)
