(** Value-determinism recorder (iDNA-style): logs, per thread, every value
    observed by shared-memory reads and message receives, plus inputs.

    No cross-thread ordering is recorded — exactly iDNA's relaxation: each
    thread's projection replays faithfully, but causality across CPUs must
    be reconstructed by the developer. *)

val create : ?govern:Governor.t -> unit -> Recorder.t
