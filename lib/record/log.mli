(** Recording logs: what each determinism model persists at production time.

    Every determinism model is, operationally, a choice of which entry
    classes to emit. The log is also the unit the cost model prices, so a
    model's recording overhead falls out of the entries it actually wrote on
    a given workload rather than being asserted. *)

open Mvm

(** Whether a logged value was observed from shared memory or a message
    queue: value-determinism replay must force try_recv outcomes, so it
    needs to distinguish. *)
type read_kind = Mem | Msg

(** The object a synchronisation operation touched. *)
type sync_op =
  | Op_send of string  (** channel *)
  | Op_recv of string  (** channel *)
  | Op_spawn
  | Op_lock of string  (** mutex *)
  | Op_unlock of string

type entry =
  | Sched of { tid : int; sid : int }
      (** one full-interleaving schedule point (perfect determinism); priced
          like a CREW-style shared-access serialisation *)
  | Input of { tid : int; chan : string; value : Value.t }
      (** an input value, in per-thread consumption order *)
  | Read_val of { tid : int; sid : int; kind : read_kind; value : Value.t }
      (** a value observed by a shared read ([Mem]) or message receive
          ([Msg]) at site [sid] — value determinism / iDNA logs are
          per-instruction *)
  | Output of { chan : string; value : Value.t }
      (** an observable output (output determinism / ODR) *)
  | Sync of { tid : int; sid : int; op : sync_op }
      (** a synchronisation operation (send, recv, spawn, lock) with its
          object — the ODR-style sync-schedule scheme records per-object
          operation orders *)
  | Cp_sched of { tid : int; sid : int }
      (** a selectively recorded schedule point (RCSE high-fidelity window) *)
  | Cp_input of { tid : int; sid : int; chan : string; value : Value.t }
      (** a selectively recorded input at site [sid] (RCSE high-fidelity
          window) *)
  | Failure_desc of Failure.t
      (** the failure descriptor extracted post-mortem (ESD-style) *)
  | Flight_note of { buffered : int }
      (** accounting note: how many events passed through the in-memory
          flight-recorder ring during low-fidelity recording; priced at a
          small per-event tax (the ring is memory-only; entries reach
          stable storage only when a dial-up flushes them) *)
  | Mark of string
      (** fidelity dial-up/down markers and other zero-cost annotations *)
  | Govern of { step : int; level : int; reason : string }
      (** overhead-governor transition: from [step] onward the recording
          runs at degradation-ladder [level] (0 = full fidelity for this
          recorder, higher = coarser) because of [reason]. These entries
          delimit the degraded windows the replayer treats as search
          regions and the fidelity metrics price as a DF floor. *)

type t = {
  recorder : string;  (** name of the recorder that produced this log *)
  entries : entry list;  (** recording order *)
  base_steps : int;  (** scheduler steps of the recorded run *)
  failure : Failure.t option;  (** failure observed in the recorded run *)
  faults : Fault.plan option;
      (** the fault plan the recorded run executed under, if any: replay
          must re-create the adversarial environment, so the plan ships
          with the log *)
}

(** [make ?faults ~recorder ~entries ~base_steps ~failure ()] assembles a
    log. *)
val make :
  ?faults:Fault.plan ->
  recorder:string ->
  entries:entry list ->
  base_steps:int ->
  failure:Failure.t option ->
  unit ->
  t

(** [sched_points t] is the [(tid, sid)] sequence of [Sched] entries. *)
val sched_points : t -> (int * int) list

(** [cp_sched_points t] is the [(tid, sid)] sequence of [Cp_sched] entries. *)
val cp_sched_points : t -> (int * int) list

(** [sync_points t] is the [(tid, sid)] sequence of [Sync] entries. *)
val sync_points : t -> (int * int) list

(** [sync_entries t] is the [(tid, sid, op)] sequence of [Sync] entries. *)
val sync_entries : t -> (int * int * sync_op) list

(** [inputs_for t tid] is the input values consumed by thread [tid], in
    order (from [Input] entries). *)
val inputs_for : t -> int -> Value.t list

(** [cp_inputs_for t tid] is the [(sid, value)] sequence of [Cp_input]
    entries for thread [tid]. *)
val cp_inputs_for : t -> int -> (int * Value.t) list

(** [reads_for t tid] is the logged read/receive values of thread [tid],
    each tagged with its site and {!read_kind}. *)
val reads_for : t -> int -> (int * read_kind * Value.t) list

(** [outputs t] is the per-channel logged output sequences, sorted by
    channel name. *)
val outputs : t -> (string * Value.t list) list

(** [recorded_failure t] is the [Failure_desc] entry if present, else the
    log's [failure] field. *)
val recorded_failure : t -> Failure.t option

(** [governed_windows t] is the degraded windows the governor marked, as
    [(start_step, end_step, level)] with [level > 0], each closed by the
    next {!entry.Govern} transition or the end of the run. *)
val governed_windows : t -> (int * int * int) list

(** [governed t] — the governor degraded fidelity at least once. *)
val governed : t -> bool

(** [entry_count t] is the number of entries (excluding [Mark]s). *)
val entry_count : t -> int

(** [payload_bytes t] is the total logged value bytes across entries. *)
val payload_bytes : t -> int

val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit
