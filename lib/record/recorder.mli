(** Recorder interface and the record-time driver.

    A recorder observes the event stream of a production run (attached as an
    interpreter monitor) and finalises a {!Log.t} when the run completes.
    Each determinism model is one recorder implementation. *)

open Mvm

type t = {
  name : string;
  on_event : Event.t -> unit;  (** called for every event, in order *)
  finalize : Interp.result -> Log.t;
      (** called once, with the spec-judged result of the recorded run *)
}

(** [make ~name ~on_event ~finalize] builds a recorder. *)
val make :
  name:string ->
  on_event:(Event.t -> unit) ->
  finalize:(Interp.result -> Log.t) ->
  t

(** [record ?max_steps ?govern recorder labeled ~spec ~world] runs the
    program under [world] with [recorder] attached, applies [spec], and
    finalises the log. This is "production time" in the paper's sense: the
    world is typically {!Mvm.World.random}. When [govern] is given, its
    monitor is attached ahead of the recorder's so overhead pressure is
    current when the recorder's admission gate consults it — pass the
    {e same} governor the recorder was created with. [monitor] attaches
    one extra observer (e.g. {!Causal.monitor}) between the governor's
    and the recorder's — it sees the full, ungated event stream. *)
val record :
  ?max_steps:int ->
  ?govern:Governor.t ->
  ?monitor:(Event.t -> unit) ->
  t ->
  Label.labeled ->
  spec:Spec.t ->
  world:World.t ->
  Interp.result * Log.t

(** [accumulator ()] is the common building block: an entry buffer plus an
    [add] function and a [finalize] that appends the failure descriptor of
    the judged run. Recorder implementations push entries into it from
    their [on_event]. With [govern], every added entry routes through
    {!Governor.admit} — degraded windows drop entries and gain [Govern]
    markers — and finalize drains {!Governor.flush}. The failure
    descriptor is appended {e after} the gate: the governor can never
    suppress the failure itself. *)
val accumulator :
  name:string ->
  ?govern:Governor.t ->
  unit ->
  (Log.entry -> unit) * (Interp.result -> Log.t)
