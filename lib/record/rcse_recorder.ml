open Mvm

(* bounded ring of would-be log entries kept while fidelity is low *)
type ring = {
  capacity : int;
  q : Log.entry Queue.t;
  mutable buffered_total : int;
}

let ring_push ring e =
  ring.buffered_total <- ring.buffered_total + 1;
  Queue.push e ring.q;
  if Queue.length ring.q > ring.capacity then ignore (Queue.pop ring.q)

let entries_of_event (e : Event.t) =
  match e.kind with
  | Event.Step -> [ Log.Cp_sched { tid = e.tid; sid = e.sid } ]
  | Event.In io ->
    [
      Log.Cp_input
        { tid = e.tid; sid = e.sid; chan = io.chan; value = io.value.Value.v };
    ]
  | Event.Out io -> [ Log.Output { chan = io.chan; value = io.value.Value.v } ]
  | Event.Read _ | Event.Write _ | Event.Msg_send _ | Event.Msg_recv _
  | Event.Lock_acq _ | Event.Lock_rel _ | Event.Spawned _ | Event.Crashed _ ->
    []

let create ?flight ?govern (selector : Fidelity_level.selector) =
  let name = "rcse:" ^ selector.name in
  let add, finalize = Recorder.accumulator ~name ?govern () in
  let current = ref Fidelity_level.Low in
  let ring =
    Option.map
      (fun capacity -> { capacity; q = Queue.create (); buffered_total = 0 })
      flight
  in
  let on_event (e : Event.t) =
    let level = selector.level e in
    if not (Fidelity_level.equal level !current) then (
      current := level;
      add (Log.Mark ("dial-" ^ Fidelity_level.to_string level));
      (* a dial-up flushes the flight ring: the moments leading up to the
         trigger become part of the recording *)
      match level, ring with
      | Fidelity_level.High, Some ring when not (Queue.is_empty ring.q) ->
        add (Log.Mark "flight-flush");
        Queue.iter add ring.q;
        Queue.clear ring.q
      | _, _ -> ());
    match level with
    | Fidelity_level.Low -> (
      (* the ring keeps data (inputs/outputs), not schedule points: a
         windowed log's schedule is not enforceable across the window
         boundary anyway, so buffering it would be pure cost *)
      match ring, e.kind with
      | Some ring, (Event.In _ | Event.Out _) ->
        List.iter (ring_push ring) (entries_of_event e)
      | Some _, _ | None, _ -> ())
    | Fidelity_level.High -> List.iter add (entries_of_event e)
  in
  let finalize result =
    (match ring with
    | Some ring when ring.buffered_total > 0 ->
      add (Log.Flight_note { buffered = ring.buffered_total })
    | _ -> ());
    finalize result
  in
  Recorder.make ~name ~on_event ~finalize
