let create ?govern () =
  let _add, finalize = Recorder.accumulator ~name:"failure" ?govern () in
  Recorder.make ~name:"failure" ~on_event:(fun _ -> ()) ~finalize
