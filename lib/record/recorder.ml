open Mvm

type t = {
  name : string;
  on_event : Event.t -> unit;
  finalize : Interp.result -> Log.t;
}

let make ~name ~on_event ~finalize = { name; on_event; finalize }

let accumulator ~name ?govern () =
  let entries : Log.entry Vec.t = Vec.create () in
  let add e =
    match govern with
    | None -> Vec.push entries e
    | Some g -> List.iter (Vec.push entries) (Governor.admit g e)
  in
  let finalize (r : Interp.result) =
    (* drain any queued Govern transition before assembling: a level
       change with no later admitted entry must still reach the log *)
    (match govern with
    | Some g -> List.iter (Vec.push entries) (Governor.flush g)
    | None -> ());
    let entries = Vec.to_list entries in
    let entries =
      match r.failure with
      | Some f -> entries @ [ Log.Failure_desc f ]
      | None -> entries
    in
    Log.make ~recorder:name ~entries ~base_steps:r.steps ~failure:r.failure ()
  in
  (add, finalize)

let record ?max_steps ?govern ?monitor recorder labeled ~spec ~world =
  (* the governor's monitor runs first, so its step clock and pressure
     are current by the time the recorder's admission gate consults it;
     an extra monitor (e.g. the causal monitor) slots in next so it sees
     the stream the recorder is about to gate *)
  let monitors =
    (match govern with Some g -> [ Governor.on_event g ] | None -> [])
    @ (match monitor with Some m -> [ m ] | None -> [])
    @ [ recorder.on_event ]
  in
  let result = Interp.run ?max_steps ~monitors labeled world in
  let result = Spec.apply spec result in
  (result, recorder.finalize result)
