open Mvm

type t = {
  name : string;
  on_event : Event.t -> unit;
  finalize : Interp.result -> Log.t;
}

let make ~name ~on_event ~finalize = { name; on_event; finalize }

let accumulator ~name () =
  let entries : Log.entry Vec.t = Vec.create () in
  let add e = Vec.push entries e in
  let finalize (r : Interp.result) =
    let entries = Vec.to_list entries in
    let entries =
      match r.failure with
      | Some f -> entries @ [ Log.Failure_desc f ]
      | None -> entries
    in
    Log.make ~recorder:name ~entries ~base_steps:r.steps ~failure:r.failure ()
  in
  (add, finalize)

let record ?max_steps recorder labeled ~spec ~world =
  let result =
    Interp.run ?max_steps ~monitors:[ recorder.on_event ] labeled world
  in
  let result = Spec.apply spec result in
  (result, recorder.finalize result)
