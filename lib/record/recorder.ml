open Mvm

type t = {
  name : string;
  on_event : Event.t -> unit;
  finalize : Interp.result -> Log.t;
}

let make ~name ~on_event ~finalize = { name; on_event; finalize }

let accumulator ~name ?govern () =
  let entries : Log.entry Vec.t = Vec.create () in
  let add e =
    match govern with
    | None -> Vec.push entries e
    | Some g -> List.iter (Vec.push entries) (Governor.admit g e)
  in
  (* per-fidelity-tier entry tallies, named by the governor ladder tier
     that would shed them: sched (level 1 drops), value (level 2), sync
     (level 3); bookkeeping always survives *)
  let tally entries =
    let module T = Ddet_obs.Tracer in
    match T.current () with
    | None -> ()
    | Some t ->
      (* classify locally, bump each counter once: finalize sits on the
         session's critical path, and one atomic add per log entry is
         measurable on entry-heavy recordings *)
      let sched = ref 0 and value = ref 0 and sync = ref 0 and book = ref 0 in
      List.iter
        (fun (e : Log.entry) ->
          incr
            (match e with
            | Log.Sched _ | Log.Cp_sched _ -> sched
            | Log.Input _ | Log.Read_val _ | Log.Cp_input _ | Log.Output _ ->
              value
            | Log.Sync _ -> sync
            | Log.Failure_desc _ | Log.Flight_note _ | Log.Mark _
            | Log.Govern _ -> book))
        entries;
      T.bump (Some (T.counter t "record.entries.sched")) !sched;
      T.bump (Some (T.counter t "record.entries.value")) !value;
      T.bump (Some (T.counter t "record.entries.sync")) !sync;
      T.bump (Some (T.counter t "record.entries.book")) !book
  in
  let finalize (r : Interp.result) =
    (* drain any queued Govern transition before assembling: a level
       change with no later admitted entry must still reach the log *)
    (match govern with
    | Some g -> List.iter (Vec.push entries) (Governor.flush g)
    | None -> ());
    let entries = Vec.to_list entries in
    let entries =
      match r.failure with
      | Some f -> entries @ [ Log.Failure_desc f ]
      | None -> entries
    in
    tally entries;
    Log.make ~recorder:name ~entries ~base_steps:r.steps ~failure:r.failure ()
  in
  (add, finalize)

let record ?max_steps ?govern ?monitor recorder labeled ~spec ~world =
  (* the governor's monitor runs first, so its step clock and pressure
     are current by the time the recorder's admission gate consults it;
     an extra monitor (e.g. the causal monitor) slots in next so it sees
     the stream the recorder is about to gate *)
  let monitors =
    (match govern with Some g -> [ Governor.on_event g ] | None -> [])
    @ (match monitor with Some m -> [ m ] | None -> [])
    @ [ recorder.on_event ]
  in
  let result = Interp.run ?max_steps ~monitors labeled world in
  let result = Spec.apply spec result in
  (result, recorder.finalize result)
