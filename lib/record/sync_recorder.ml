open Mvm

let create ?govern () =
  let add, finalize = Recorder.accumulator ~name:"sync" ?govern () in
  let on_event (e : Event.t) =
    match e.kind with
    | Event.In io ->
      add (Log.Input { tid = e.tid; chan = io.chan; value = io.value.Value.v })
    | Event.Out io -> add (Log.Output { chan = io.chan; value = io.value.Value.v })
    | Event.Msg_send io ->
      add (Log.Sync { tid = e.tid; sid = e.sid; op = Log.Op_send io.chan })
    | Event.Msg_recv io ->
      add (Log.Sync { tid = e.tid; sid = e.sid; op = Log.Op_recv io.chan })
    | Event.Spawned _ ->
      add (Log.Sync { tid = e.tid; sid = e.sid; op = Log.Op_spawn })
    | Event.Lock_acq m ->
      add (Log.Sync { tid = e.tid; sid = e.sid; op = Log.Op_lock m })
    | Event.Lock_rel m ->
      add (Log.Sync { tid = e.tid; sid = e.sid; op = Log.Op_unlock m })
    | Event.Step | Event.Read _ | Event.Write _ | Event.Crashed _ -> ()
  in
  Recorder.make ~name:"sync" ~on_event ~finalize
