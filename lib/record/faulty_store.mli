(** Deterministic hostile storage.

    Wraps a base {!Store.t} and injects faults from a reproducible
    plan: same plan + same operation sequence = same failures, short
    writes and latency spikes, independent of wall clock or scheduler.
    Probabilistic decisions are splitmix64 hashes of
    (seed, salt, operation index), the same construction as
    {!Mvm.Fault} uses for execution-level fault worlds. *)

type fault =
  | Disk_full of { after_bytes : int }
      (** the disk fills after this many payload bytes; the write that
          crosses the budget persists a prefix and fails with ENOSPC *)
  | Torn of { at_op : int; keep : float }
      (** operation [at_op] persists only [keep] of its payload, then
          fails permanently *)
  | Fsync_fail of { at_op : int; transient : bool }
  | Rename_fail of { at_op : int; transient : bool }
  | Flaky of { prob : float }
      (** each write/append fails with probability [prob] before
          persisting anything — the transient blips {!Retry} absorbs *)
  | Slow of { from_op : int; until_op : int; ms : float }
      (** operations in [from_op..until_op] each stall [ms] ms *)

type plan = { seed : int; faults : fault list }

val none : plan
val make : ?seed:int -> fault list -> plan
val is_empty : plan -> bool

(** Clause grammar, comma-separated (the CLI's [--io-faults] syntax):
    [seed=7,enospc:4096,torn:3:0.5,fsyncfail:2:t,renamefail:1,flaky:0.1,slow:10-20:5] *)
val to_string : plan -> string

(** [of_string s] parses the clause grammar. An unknown clause name is a
    hard error whose message lists every valid clause form — a typo in an
    injection plan must never silently weaken the test. *)
val of_string : string -> (plan, string) result

val pp : Format.formatter -> plan -> unit

type stats = {
  ops : int;  (** operations that reached the wrapper *)
  bytes_written : int;  (** payload bytes that reached the base store *)
  bytes_lost : int;  (** payload bytes discarded by short writes *)
  injected : int;  (** operations failed by injection *)
  injected_transient : int;  (** of those, transient ones *)
  stalled_ms : float;  (** total injected latency *)
}

val zero_stats : stats
val pp_stats : Format.formatter -> stats -> unit

(** [wrap plan base] is the hostile store plus a live stats reader. *)
val wrap : plan -> Store.t -> Store.t * (unit -> stats)
