open Mvm

(* Overhead governor: keeps the recording within an overhead budget by
   walking a degradation ladder, instead of letting a hot workload blow
   the SLO or (worse) killing the recorder.

   Ladder levels, in terms of what each admits to the log:

     0  everything the recorder emits (full fidelity for that recorder)
     1  drop full-interleaving schedule points (Sched/Cp_sched) — the
        value-determinism tier: data survives, exact interleaving is
        re-found by search
     2  also drop logged values (Input/Read_val/Cp_input/Output) — the
        sync-determinism tier: only the synchronisation skeleton
     3  failure-only: nothing but the failure descriptor and bookkeeping

   Bookkeeping entries (Failure_desc, Mark, Flight_note, Govern) always
   pass: the governor exists to protect fidelity honestly, and honesty
   is exactly those entries.

   Pressure is the same quantity Cost_model.overhead reports, tracked
   online: (step_cost * steps + admitted_cost) / (step_cost * steps).
   The governor degrades one level when pressure crosses the budget
   (with a little headroom, so the measured overhead of the finished log
   lands within the SLO, not astride it), and dials back up when
   pressure clears. Hysteresis — a warmup before the first move, a
   dwell between moves, and separated up/down thresholds — keeps it
   from flapping. A trigger firing (the RCSE selector dialing itself
   high) boosts straight back to full fidelity and holds there: the
   moments after a trigger are the ones worth paying for.

   Every transition emits a Log.Govern entry, so the log itself says
   which step ranges are degraded, to what level, and why — the
   replayer treats those windows as search regions and Metrics.Fidelity
   prices them as a DF floor. *)

type t = {
  budget : float;
  cm : Cost_model.t;
  warmup : int;
  dwell : int;
  trigger_hold : int;
  max_level : int;
  high : float;  (* degrade above this *)
  low : float;  (* recover below this *)
  mutable level : int;
  mutable cur_step : int;
  mutable admitted_cost : float;
  mutable last_transition : int;
  mutable hold_until : int;  (* no degrading before this step (boost hold) *)
  mutable pending : Log.entry list;  (* queued Govern entries, in order *)
  mutable transitions : int;
  mutable dropped : int;
}

let create ?(cost_model = Cost_model.default) ?(warmup = 32) ?(dwell = 16)
    ?(trigger_hold = 64) ?(max_level = 3) ~budget () =
  if budget <= 1.0 then invalid_arg "Governor.create: budget must exceed 1.0";
  let high = 1.0 +. ((budget -. 1.0) *. 0.9) in
  {
    budget;
    cm = cost_model;
    warmup;
    dwell;
    trigger_hold;
    max_level;
    high;
    low = 1.0 +. ((high -. 1.0) *. 0.6);
    level = 0;
    cur_step = 0;
    admitted_cost = 0.0;
    last_transition = 0;
    hold_until = 0;
    pending = [];
    transitions = 0;
    dropped = 0;
  }

let level g = g.level
let transitions g = g.transitions
let dropped g = g.dropped

let overhead g =
  let base = g.cm.Cost_model.step_cost *. float_of_int (max 1 g.cur_step) in
  (base +. g.admitted_cost) /. base

let transition g level reason =
  g.pending <- g.pending @ [ Log.Govern { step = g.cur_step; level; reason } ];
  (* the ladder move is part of the session's observable story: the
     trace shows when and to what level fidelity degraded *)
  Ddet_obs.Tracer.count "govern.transitions" 1;
  Ddet_obs.Tracer.instant_ "govern.transition"
    ~args:
      [
        ("from", Ddet_obs.Tracer.Count g.level);
        ("to", Ddet_obs.Tracer.Count level);
        ("step", Ddet_obs.Tracer.Count g.cur_step);
      ];
  g.level <- level;
  g.last_transition <- g.cur_step;
  g.transitions <- g.transitions + 1

let boost g reason =
  if g.level > 0 then transition g 0 reason;
  g.hold_until <- g.cur_step + g.trigger_hold

(* Called on every event (the governor is a monitor ahead of the
   recorder), so level changes land on the step where pressure actually
   crossed, not on the next admitted entry. *)
let on_event g (e : Event.t) =
  if e.step > g.cur_step then g.cur_step <- e.step;
  if g.cur_step >= g.warmup && g.cur_step - g.last_transition >= g.dwell then begin
    let ov = overhead g in
    if ov > g.high && g.level < g.max_level && g.cur_step >= g.hold_until then
      transition g (g.level + 1)
        (Printf.sprintf "overhead %.2fx vs budget %.2fx" ov g.budget)
    else if ov < g.low && g.level > 0 then
      transition g (g.level - 1) (Printf.sprintf "pressure cleared (%.2fx)" ov)
  end

let admits level (entry : Log.entry) =
  match entry with
  | Log.Failure_desc _ | Log.Mark _ | Log.Govern _ | Log.Flight_note _ -> true
  | Log.Sched _ | Log.Cp_sched _ -> level <= 0
  | Log.Input _ | Log.Read_val _ | Log.Cp_input _ | Log.Output _ -> level <= 1
  | Log.Sync _ -> level <= 2

let is_trigger_mark = function
  | Log.Mark m ->
    String.length m >= 9 && String.equal (String.sub m 0 9) "dial-high"
  | _ -> false

let admit g entry =
  if is_trigger_mark entry then boost g "trigger fired";
  let kept = admits g.level entry in
  if not kept then begin
    g.dropped <- g.dropped + 1;
    Ddet_obs.Tracer.count "govern.dropped" 1
  end;
  let out = g.pending @ (if kept then [ entry ] else []) in
  g.pending <- [];
  List.iter
    (fun e -> g.admitted_cost <- g.admitted_cost +. Cost_model.entry_cost g.cm e)
    out;
  out

let flush g =
  let out = g.pending in
  g.pending <- [];
  out
