type t = Low | High

let to_string = function Low -> "low" | High -> "high"
let equal a b = match a, b with Low, Low | High, High -> true | _ -> false

type selector = {
  name : string;
  level : Mvm.Event.t -> t;
}

let always level =
  { name = "always-" ^ to_string level; level = (fun _ -> level) }

let by_function ~name f =
  { name; level = (fun (e : Mvm.Event.t) -> f e.fname) }

let by_site ~name f =
  { name; level = (fun (e : Mvm.Event.t) -> f e.sid) }

let any selectors =
  let name = String.concat "+" (List.map (fun s -> s.name) selectors) in
  {
    name;
    level =
      (fun e ->
        (* evaluate all: stateful selectors must observe every event *)
        let levels = List.map (fun s -> s.level e) selectors in
        if List.exists (fun l -> equal l High) levels then High else Low);
  }
