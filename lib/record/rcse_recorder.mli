(** Root-cause-driven selective recorder (RCSE, §3.1).

    A {!Fidelity_level.selector} decides per event whether recording runs at
    high fidelity. In a high-fidelity window the recorder logs what a
    perfect-determinism recorder would — schedule points ([Cp_sched]) and
    input data ([Cp_input]) — plus the outputs produced there; in a
    low-fidelity window it logs nothing. Fidelity transitions leave
    zero-cost [Mark] entries so experiments can audit dial-up/dial-down
    behaviour.

    With a code-based selector (control-plane functions high, data-plane
    low) this is the configuration the paper evaluates in Fig. 2; data-based
    (invariant) and combined (trigger) selectors come from
    [Ddet_analysis]. *)

(** [create ?flight selector] builds the recorder; its name is
    ["rcse:" ^ selector.name].

    [flight] enables a flight-recorder ring of the given capacity: while
    fidelity is low the recorder keeps the would-be entries of the most
    recent events in a bounded in-memory ring, and a dial-up flushes the
    ring into the log. This is the classic always-on tracing compromise:
    windowed selections otherwise lose the moments *leading up to* the
    trigger (e.g. the inputs just before a detected race), which is exactly
    where the root cause usually lives. Ring residency is priced by the
    cost model's [flight_tax]; flushed entries are priced normally once
    they reach the log. *)
val create : ?flight:int -> ?govern:Governor.t -> Fidelity_level.selector -> Recorder.t
