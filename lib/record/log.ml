open Mvm

type read_kind = Mem | Msg

type sync_op =
  | Op_send of string
  | Op_recv of string
  | Op_spawn
  | Op_lock of string
  | Op_unlock of string

type entry =
  | Sched of { tid : int; sid : int }
  | Input of { tid : int; chan : string; value : Value.t }
  | Read_val of { tid : int; sid : int; kind : read_kind; value : Value.t }
  | Output of { chan : string; value : Value.t }
  | Sync of { tid : int; sid : int; op : sync_op }
  | Cp_sched of { tid : int; sid : int }
  | Cp_input of { tid : int; sid : int; chan : string; value : Value.t }
  | Failure_desc of Failure.t
  | Flight_note of { buffered : int }
  | Mark of string
  | Govern of { step : int; level : int; reason : string }

type t = {
  recorder : string;
  entries : entry list;
  base_steps : int;
  failure : Failure.t option;
  faults : Fault.plan option;
}

let make ?faults ~recorder ~entries ~base_steps ~failure () =
  { recorder; entries; base_steps; failure; faults }

let collect f t = List.filter_map f t.entries

let sched_points t =
  collect (function Sched { tid; sid } -> Some (tid, sid) | _ -> None) t

let cp_sched_points t =
  collect (function Cp_sched { tid; sid } -> Some (tid, sid) | _ -> None) t

let sync_points t =
  collect (function Sync { tid; sid; _ } -> Some (tid, sid) | _ -> None) t

let sync_entries t =
  collect (function Sync { tid; sid; op } -> Some (tid, sid, op) | _ -> None) t

let inputs_for t tid =
  collect
    (function
      | Input { tid = t'; value; _ } when t' = tid -> Some value | _ -> None)
    t

let cp_inputs_for t tid =
  collect
    (function
      | Cp_input { tid = t'; sid; value; _ } when t' = tid -> Some (sid, value)
      | _ -> None)
    t

let reads_for t tid =
  collect
    (function
      | Read_val { tid = t'; sid; kind; value } when t' = tid ->
        Some (sid, kind, value)
      | _ -> None)
    t

let outputs t =
  let tbl : (string, Value.t list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (function
      | Output { chan; value } ->
        let prev = Option.value ~default:[] (Hashtbl.find_opt tbl chan) in
        Hashtbl.replace tbl chan (value :: prev)
      | _ -> ())
    t.entries;
  Hashtbl.fold (fun chan vs acc -> (chan, List.rev vs) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Degraded windows, derived from the Govern transition entries: each
   window is [(start_step, end_step, level)] with level > 0, closed by
   the next transition or the end of the run. Replay treats these spans
   as search regions; the fidelity metrics report a DF floor for them. *)
let governed_windows t =
  let rec go acc open_w = function
    | [] -> (
      match open_w with
      | Some (s, l) -> List.rev ((s, t.base_steps, l) :: acc)
      | None -> List.rev acc)
    | Govern { step; level; _ } :: rest -> (
      match open_w with
      | Some (s, l) when level <> l ->
        let acc = (s, step, l) :: acc in
        go acc (if level > 0 then Some (step, level) else None) rest
      | Some _ -> go acc open_w rest
      | None -> go acc (if level > 0 then Some (step, level) else None) rest)
    | _ :: rest -> go acc open_w rest
  in
  go [] None t.entries

let governed t = governed_windows t <> []

let recorded_failure t =
  match
    List.find_opt (function Failure_desc _ -> true | _ -> false) t.entries
  with
  | Some (Failure_desc f) -> Some f
  | _ -> t.failure

let entry_count t =
  List.length
    (List.filter
       (function Mark _ | Flight_note _ | Govern _ -> false | _ -> true)
       t.entries)

let payload_bytes t =
  List.fold_left
    (fun acc -> function
      | Input { value; _ } | Read_val { value; _ } | Output { value; _ }
      | Cp_input { value; _ } ->
        acc + Value.size_bytes value
      | Sched _ | Sync _ | Cp_sched _ | Failure_desc _ | Flight_note _
      | Mark _ | Govern _ ->
        acc)
    0 t.entries

let pp_entry ppf = function
  | Sched { tid; sid } -> Format.fprintf ppf "sched t%d s%d" tid sid
  | Input { tid; chan; value } ->
    Format.fprintf ppf "input t%d %s=%a" tid chan Value.pp value
  | Read_val { tid; sid; kind; value } ->
    Format.fprintf ppf "%s t%d s%d %a"
      (match kind with Mem -> "read" | Msg -> "recv-val")
      tid sid Value.pp value
  | Output { chan; value } -> Format.fprintf ppf "output %s=%a" chan Value.pp value
  | Sync { tid; sid; op } ->
    Format.fprintf ppf "sync t%d s%d %s" tid sid
      (match op with
      | Op_send c -> "send:" ^ c
      | Op_recv c -> "recv:" ^ c
      | Op_spawn -> "spawn"
      | Op_lock m -> "lock:" ^ m
      | Op_unlock m -> "unlock:" ^ m)
  | Cp_sched { tid; sid } -> Format.fprintf ppf "cp-sched t%d s%d" tid sid
  | Cp_input { tid; sid; chan; value } ->
    Format.fprintf ppf "cp-input t%d s%d %s=%a" tid sid chan Value.pp value
  | Failure_desc f -> Format.fprintf ppf "failure %a" Failure.pp f
  | Flight_note { buffered } -> Format.fprintf ppf "flight-ring %d events" buffered
  | Mark m -> Format.fprintf ppf "mark %s" m
  | Govern { step; level; reason } ->
    Format.fprintf ppf "govern s%d level=%d (%s)" step level reason

let pp ppf t =
  Format.fprintf ppf "@[<v>log %s: %d entries over %d steps%s@,%a@]" t.recorder
    (entry_count t) t.base_steps
    (match t.faults with
    | Some p -> " under faults " ^ Fault.to_string p
    | None -> "")
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_entry)
    t.entries
