(** Failure-determinism recorder (ESD-style): records nothing at runtime;
    the log is just the failure descriptor extracted from the "bug report"
    (the judged run) post-mortem. Replay is pure execution synthesis. *)

val create : ?govern:Governor.t -> unit -> Recorder.t
