open Mvm

type edge = {
  chan : string;
  send_node : string;
  send_seq : int;
  recv_node : string;
  recv_seq : int;
}

type t = {
  nodes : string list;
  tid_node : (int * string) list;
  edges : edge list;
}

let node_of_tid t tid =
  match List.assoc_opt tid t.tid_node with
  | Some n -> n
  | None -> List.hd t.nodes

let place map fname =
  match Node.node_of_fname map fname with
  | Some n -> n
  | None ->
    invalid_arg
      (Printf.sprintf "Causal.monitor: thread root %S has no node assignment"
         fname)

let monitor ~map ~main_fname () =
  let tid_node : (int, string) Hashtbl.t = Hashtbl.create 8 in
  Hashtbl.replace tid_node 0 (place map main_fname);
  (* per channel: sends seen, receives seen, and the FIFO of unmatched
     sends as (seq, node) — the k-th receive pairs with the k-th send *)
  let sends : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let recvs : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let pending : (string, (int * string) Queue.t) Hashtbl.t = Hashtbl.create 8 in
  let edges = ref [] in
  let bump tbl chan =
    let n = 1 + Option.value ~default:0 (Hashtbl.find_opt tbl chan) in
    Hashtbl.replace tbl chan n;
    n
  in
  let queue_of chan =
    match Hashtbl.find_opt pending chan with
    | Some q -> q
    | None ->
      let q = Queue.create () in
      Hashtbl.replace pending chan q;
      q
  in
  let node_of tid =
    match Hashtbl.find_opt tid_node tid with
    | Some n -> n
    | None -> place map main_fname
  in
  let on_event (e : Event.t) =
    match e.Event.kind with
    | Event.Spawned { child; fname } ->
      Hashtbl.replace tid_node child (place map fname)
    | Event.Msg_send io ->
      let k = bump sends io.Event.chan in
      Queue.push (k, node_of e.Event.tid) (queue_of io.Event.chan)
    | Event.Msg_recv io ->
      let j = bump recvs io.Event.chan in
      let q = queue_of io.Event.chan in
      if not (Queue.is_empty q) then begin
        let k, send_node = Queue.pop q in
        let recv_node = node_of e.Event.tid in
        if not (String.equal send_node recv_node) then
          edges :=
            {
              chan = io.Event.chan;
              send_node;
              send_seq = k;
              recv_node;
              recv_seq = j;
            }
            :: !edges
      end
      (* unmatched receive: a forced duplicate delivery on an empty
         queue — no edge; we never fabricate an ordering *)
    | _ -> ()
  in
  let finish () =
    {
      nodes = Node.nodes map;
      tid_node =
        Hashtbl.fold (fun tid n acc -> (tid, n) :: acc) tid_node []
        |> List.sort compare;
      edges = List.rev !edges;
    }
  in
  (on_event, finish)

let pp ppf t =
  Format.fprintf ppf "nodes %s;" (String.concat ", " t.nodes);
  List.iter
    (fun (tid, n) -> Format.fprintf ppf "@ tid %d on %s" tid n)
    t.tid_node;
  Format.fprintf ppf "@ %d cross-node edge(s)" (List.length t.edges)
