(** Segmented log persistence: crash-tolerant recording for long runs.

    {!Log_io.save} is atomic but monolithic — nothing hits the disk until
    the recording is over, so a crash mid-record loses everything. The
    segmented writer instead streams entries into fixed-size segment
    files, sealing each one with the v2 CRC-per-line discipline and an
    [end N] trailer as soon as it fills, and finishes by writing a
    manifest (atomically) that names every segment with its byte CRC and
    carries the log header. The file set for base path [p] is:

    {v
    p.header          recorder name, written first (atomic)
    p.0000.seg        sealed segments: magic, CRC'd entries, `end N`
    p.0001.seg        ...
    p.manifest        header + per-segment CRCs + `end N` (atomic, last)
    v}

    Recovery after a crash mid-record walks the segments in order: every
    sealed segment is recovered whole (its trailer and line CRCs prove
    completeness), and the unsealed tail segment contributes its valid
    prefix — the same salvage guarantee {!Log_io} gives a truncated
    monolithic log, but the loss is bounded by one segment instead of the
    whole recording. *)

(** Streaming writer. Not thread-safe; one recording each. *)
type writer

(** [create ?store ?segment_entries ~recorder base] starts a segmented
    recording at [base] (default 64 entries per segment), writing through
    [store] (default {!Store.default}). Stale artifacts of a previous
    recording under [base] are removed, and [base.header] is written
    immediately so recovery knows the recorder even if the crash comes
    before the manifest. *)
val create :
  ?store:Store.t -> ?segment_entries:int -> recorder:string -> string -> writer

(** [append w entry] writes one CRC'd entry line to the current segment
    (flushed per entry), sealing the segment and opening the next when it
    reaches [segment_entries].

    A permanent store error makes the writer {e sticky-failed}: this and
    every later append become no-ops, the error is readable via
    {!writer_error}, and {!close} skips the manifest — so recovery takes
    the crash path and reports the honest salvageable prefix instead of
    trusting a recording that lost bytes. *)
val append : writer -> Log.entry -> unit

(** The sticky permanent failure, if storage failed mid-recording. *)
val writer_error : writer -> Store.error option

(** [close w ~base_steps ~failure ?faults ()] seals the tail segment and
    atomically writes the manifest — unless the writer failed, in which
    case the manifest is deliberately withheld (it asserts completeness).
    After a clean close, {!load} reconstructs the full log exactly. *)
val close :
  writer ->
  base_steps:int ->
  failure:Mvm.Failure.t option ->
  ?faults:Mvm.Fault.plan ->
  unit ->
  unit

(** [save ?segment_entries base log] is the one-shot convenience:
    create, append every entry, close.
    @raise Sys_error on a permanent storage failure. *)
val save : ?segment_entries:int -> string -> Log.t -> unit

(** [save_via store ?segment_entries base log] is {!save} through a
    pluggable store, with the permanent failure as a typed error. Even on
    [Error] the sealed segments and tail prefix persisted before the
    fault remain on disk for {!load} to salvage. *)
val save_via :
  Store.t ->
  ?segment_entries:int ->
  string ->
  Log.t ->
  (unit, Store.error) result

(** What recovery found. [complete] means the manifest was present,
    intact, and every listed segment validated — the load is the whole
    recording. Otherwise the load is the crash-recovered prefix:
    [segments_complete] sealed segments plus [tail_entries] salvaged from
    the unsealed tail. *)
type recovery = {
  segments_found : int;
  segments_complete : int;
  entries : int;  (** total entries recovered *)
  tail_entries : int;  (** salvaged from an unsealed/damaged tail segment *)
  complete : bool;
}

val is_damaged : recovery -> bool
val pp_recovery : Format.formatter -> recovery -> unit

(** [load base] reconstructs a log from the segment file set. With an
    intact manifest this is exact (header included); after a crash it
    recovers all complete segments plus the valid prefix of the tail,
    taking the recorder from [base.header] and the failure from a
    recovered [faildesc] entry when one made it to disk. [Error] only
    when nothing of the recording exists. *)
val load : string -> (Log.t * recovery, string) result

(** [exists base] — some artifact of a segmented recording (manifest,
    header or first segment) is present; how the CLI distinguishes a
    segmented base path from a monolithic log file. *)
val exists : string -> bool
