open Mvm

let create ?govern () =
  let add, finalize = Recorder.accumulator ~name:"value" ?govern () in
  let on_event (e : Event.t) =
    match e.kind with
    | Event.Read a ->
      add
        (Log.Read_val
           { tid = e.tid; sid = e.sid; kind = Log.Mem; value = a.value.Value.v })
    | Event.Msg_recv io ->
      add
        (Log.Read_val
           { tid = e.tid; sid = e.sid; kind = Log.Msg; value = io.value.Value.v })
    | Event.In io ->
      add (Log.Input { tid = e.tid; chan = io.chan; value = io.value.Value.v })
    | Event.Step | Event.Write _ | Event.Out _ | Event.Msg_send _
    | Event.Lock_acq _ | Event.Lock_rel _ | Event.Spawned _ | Event.Crashed _ ->
      ()
  in
  Recorder.make ~name:"value" ~on_event ~finalize
