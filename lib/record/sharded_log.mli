(** Per-node sharded log persistence: distributed evidence on disk.

    A datacenter incident does not leave one log; it leaves one log {e per
    node}, and some of them are simply gone. The sharded writer models
    that: a finished recording is split by node (each entry charged to the
    node of its acting thread; node-less entries — outputs, the failure
    descriptor, governor marks — to the main thread's node) and written as
    one independently loadable [ddet-log v2] file per node, plus a causal
    manifest. The file set for base path [p] and nodes [server, p0, p1]:

    {v
    p.server.shard     ddet-log v2: header, CRC'd entries, `end N`
    p.p0.shard         ...
    p.p1.shard         ...
    p.causal           magic + CRC'd lines: header, per-shard byte CRCs,
                       run-length global interleaving, cross-node edges,
                       `end` trailer (atomic, written last)
    v}

    Shards are written with a plain (non-atomic) store write: shard loss
    is survivable {e by design}, so atomicity buys nothing, and a torn
    write leaves exactly the partial evidence the stitcher is built to
    handle. The manifest is atomic. Every byte crosses the given
    {!Store.t}, so {!Faulty_store} plans corrupt individual shards
    independently — the loss model this module exists for.

    The manifest carries two views of cross-node order: the Lamport-style
    send/recv {!Causal.edge}s (per-channel sequence matching — the causal
    truth, used to validate evidence and to report what ordering
    information died with a lost node) and the run-length encoded global
    interleaving (used by the stitcher to reconstruct the exact recorded
    entry order when all shards survive, and its surviving projection
    when they don't). Every manifest line is individually CRC'd, so a
    truncated or bit-rotted manifest degrades to a valid prefix — never
    to a fabricated edge. *)

type shard_status =
  | Intact  (** parsed clean and matches the manifest's byte CRC *)
  | Salvaged of Log_io.damage
      (** readable, but damaged or disagreeing with the manifest; the
          valid prefix was recovered *)
  | Missing  (** no file (or deliberately excluded via [lose]) *)
  | Corrupt of string  (** unreadable beyond salvage *)

type shard = {
  node : string;
  status : shard_status;
  log : Log.t option;  (** the recovered per-node log, when readable *)
}

type loaded = {
  base : string;
  recorder : string;
  base_steps : int;
  failure : Mvm.Failure.t option;
  faults : Mvm.Fault.plan option;
  nodes : string list;  (** manifest node order *)
  shards : shard list;  (** same order as [nodes] *)
  order : (int * int) list;
      (** recovered global interleaving as (position in [nodes], run
          length) *)
  edges : Causal.edge list;  (** recovered cross-node ordering edges *)
  manifest_found : bool;
  manifest_complete : bool;
      (** the manifest parsed whole: trailer present, counts consistent,
          no corrupt lines *)
}

(** [shard_ok s] — the shard contributed evidence (intact or salvaged). *)
val shard_ok : shard -> bool

val status_name : shard_status -> string

type save_report = {
  shard_results : (string * (unit, Store.error) result) list;
  manifest_result : (unit, Store.error) result;
}

val save_ok : save_report -> bool
val pp_save_report : Format.formatter -> save_report -> unit

(** [split ~causal log] is the per-node logs in node order — exposed so
    tests can assert the split loses nothing. Each shard log carries the
    full header (recorder, base steps, failure, faults). *)
val split : causal:Causal.t -> Log.t -> (string * Log.t) list

(** [save_via ?priority store ~base ~causal log] writes every shard
    (continuing past individual failures — shards fail independently,
    that is the point) and then the manifest. The manifest records the
    CRC of what each shard {e should} contain, so a torn shard write is
    detected at load time even though the save carried on.

    [priority] names nodes whose shards are written {e first}, in the
    order given (unknown names ignored; the rest follow in node order) —
    static analysis ranks the most diagnostic shards so a store dying
    mid-save is most likely to have persisted them. [shard_results]
    stays in node order regardless. *)
val save_via :
  ?priority:string list ->
  Store.t ->
  base:string ->
  causal:Causal.t ->
  Log.t ->
  save_report

(** [load ?lose base] reads the shard set back. [lose] names nodes whose
    shards are treated as missing without touching the files — the CLI's
    [--lose-node]. Works with a damaged or absent manifest by scanning
    [base.*.shard] (no order or edges then, and nothing is complete).
    [Error] only when no artifact of a sharded recording exists. *)
val load : ?lose:string list -> string -> (loaded, string) result

(** [all_lost l] — not a single shard contributed evidence. *)
val all_lost : loaded -> bool

(** [exists base] — a causal manifest or at least one shard file exists
    at the base path; how the CLI distinguishes a sharded recording. *)
val exists : string -> bool

val pp_loaded : Format.formatter -> loaded -> unit
