(** Log persistence: a line-oriented text format so recordings can be
    shipped from the production machine to the developer's replay session
    (the paper's workflow) and inspected with ordinary tools.

    Format [ddet-log v2]: a header (recorder name, base steps, observed
    failure, optional fault plan) followed by one entry per line, each
    prefixed with its CRC32 in 8 hex digits, and closed by an [end N]
    entry-count trailer. Values are typed ([i:]/[b:]/[s:]/[u]) with
    OCaml-escaped quoted strings, so payloads survive arbitrary bytes.
    The checksums and trailer exist because logs travel: a shipped log
    can arrive bit-rotted or half-written, and the reader must be able to
    tell — and to keep going.

    Two loading modes implement the paper's graceful-degradation stance
    (DF should fall to 1/n, not to 0, when fidelity is lost):

    - [Strict] — any CRC mismatch, unparsable line, or missing/mismatched
      trailer is an [Error] naming the 1-based line and its text.
    - [Salvage] — corrupt lines are skipped and a truncated tail is
      accepted; the valid prefix is returned together with a {!damage}
      report. A salvaged log replays best-effort: the replayer may only
      reach the failure through search, and the assessment caps DF at
      1/n.

    The v1 format (no checksums, no trailer) is still read, in both
    modes; v1 truncation is undetectable. *)

(** How to treat damage during parsing. *)
type mode = Strict | Salvage

(** What {!Salvage} had to do to produce a log. *)
type damage = {
  total_lines : int;  (** non-blank lines seen, including the header *)
  salvaged_entries : int;  (** entries that survived *)
  corrupt_lines : (int * string * string) list;
      (** skipped lines as (1-based line, reason, offending text) *)
  truncated : bool;
      (** the [end N] trailer was missing or disagreed with the number of
          surviving entries — the tail of the log is gone *)
}

(** [is_damaged d] — any corrupt line or a truncated tail. *)
val is_damaged : damage -> bool

val pp_damage : Format.formatter -> damage -> unit

(** [to_string log] serialises in the v2 format. Serialisation is
    canonical: [of_string] of the result round-trips byte-for-byte. *)
val to_string : Log.t -> string

(** [to_string_v1 log] serialises in the legacy v1 format (no checksums,
    no trailer) — kept for compatibility tests and old tooling. *)
val to_string_v1 : Log.t -> string

(** [of_string ?mode s] parses v2 or v1 (default [Strict]). Every
    [Error] names the 1-based line number and the offending line text. *)
val of_string : ?mode:mode -> string -> (Log.t, string) result

(** [of_string_report ?mode s] also returns the {!damage} report; under
    [Strict] a returned report is always clean. *)
val of_string_report : ?mode:mode -> string -> (Log.t * damage, string) result

(** [save path log] writes the file (v2) {e atomically}: the payload goes
    to a fresh temp file in the destination directory which is then
    renamed over [path], so a crash mid-write can never leave a
    half-written log behind — readers see the old file or the new one,
    nothing in between. *)
val save : string -> Log.t -> unit

(** [save_via store path log] is {!save} routed through a pluggable
    {!Store.t}: the same temp-write-fsync-rename discipline, but every
    byte crosses [store], so fault injection ({!Faulty_store}) and retry
    policies ({!Retry.store}) apply. A permanent storage failure comes
    back as the typed error with the temp file cleaned up. *)
val save_via : Store.t -> string -> Log.t -> (unit, Store.error) result

(** [load ?mode path] reads a log file back.
    @raise Sys_error on I/O failure; parse errors come back as [Error]. *)
val load : ?mode:mode -> string -> (Log.t, string) result

(** [load_report ?mode path] is {!load} with the {!damage} report. *)
val load_report : ?mode:mode -> string -> (Log.t * damage, string) result

(**/**)

(* internal: shared with Log_segments (segmented persistence) and the
   replay layer's Checkpoint (CRC'd atomic frontier files) *)

val atomic_write : string -> string -> unit
val crc_hex : string -> string
val enc_entry : Log.entry -> string
val dec_entry : string -> Log.entry
val split_crc_line : string -> (string * string) option
val header_lines : Log.t -> string
val numbered_lines : string -> (int * string) list

type header = {
  mutable h_recorder : string;
  mutable h_base_steps : int;
  mutable h_failure : Mvm.Failure.t option;
  mutable h_faults : Mvm.Fault.plan option;
}

val fresh_header : unit -> header
val parse_header_line : header -> string -> bool
