(* Pluggable storage under the record stack.

   Everything the recorder persists — monolithic logs, segments,
   manifests, checkpoints — goes through this interface, so a single
   implementation swap subjects the whole pipeline to hostile I/O
   (see Faulty_store) or absorbs transient faults (see Retry). The
   operation set is deliberately small and POSIX-shaped: append to an
   open handle, fsync it, seal (close) it, write a whole file, rename,
   remove. Atomic replacement is derived from those primitives here so
   an injected rename or fsync fault exercises the real atomic path. *)

type op = Write | Append | Fsync | Rename | Remove

let op_name = function
  | Write -> "write"
  | Append -> "append"
  | Fsync -> "fsync"
  | Rename -> "rename"
  | Remove -> "remove"

type errkind =
  | Enospc  (** out of space; any prefix already handed over may persist *)
  | Eio of string  (** other I/O failure, with the OS detail *)

type error = {
  e_op : op;
  e_path : string;
  e_kind : errkind;
  transient : bool;
      (** a transient error persisted nothing (safe to retry verbatim);
          a permanent one may have torn the target *)
}

let errkind_name = function Enospc -> "ENOSPC" | Eio _ -> "EIO"

let pp_error ppf e =
  Format.fprintf ppf "%s(%s): %s%s%s" (op_name e.e_op) e.e_path
    (errkind_name e.e_kind)
    (match e.e_kind with Eio d -> " " ^ d | Enospc -> "")
    (if e.transient then " [transient]" else " [permanent]")

let error_to_string e = Format.asprintf "%a" pp_error e

type t = {
  name : string;
  append : string -> string -> (unit, error) result;
      (** append bytes to [path], opening a write handle on first use *)
  fsync : string -> (unit, error) result;
      (** flush and fsync [path]'s open handle (no-op if none) *)
  seal : string -> (unit, error) result;
      (** flush, fsync and close [path]'s open handle *)
  write : string -> string -> (unit, error) result;
      (** create/truncate [path] with exactly these bytes, then seal it *)
  rename : string -> string -> (unit, error) result;
  remove : string -> unit;  (** best-effort; missing files are fine *)
  exists : string -> bool;
}

(* ------------------------------------------------------------------ *)
(* the real filesystem *)

let local () =
  let handles : (string, out_channel) Hashtbl.t = Hashtbl.create 8 in
  let wrap op path f =
    try Ok (f ()) with
    | Sys_error d -> Error { e_op = op; e_path = path; e_kind = Eio d; transient = false }
    | Unix.Unix_error (Unix.ENOSPC, _, _) ->
      Error { e_op = op; e_path = path; e_kind = Enospc; transient = false }
    | Unix.Unix_error (err, _, _) ->
      Error
        {
          e_op = op;
          e_path = path;
          e_kind = Eio (Unix.error_message err);
          transient = false;
        }
  in
  let handle path =
    match Hashtbl.find_opt handles path with
    | Some oc -> oc
    | None ->
      let oc = open_out path in
      Hashtbl.replace handles path oc;
      oc
  in
  let sync oc =
    flush oc;
    Unix.fsync (Unix.descr_of_out_channel oc)
  in
  {
    name = "local";
    append =
      (fun path s ->
        wrap Append path (fun () ->
            let oc = handle path in
            output_string oc s;
            (* flush (not fsync) per append: a crash loses at most the
               line being written, without paying a sync per entry *)
            flush oc));
    fsync =
      (fun path ->
        wrap Fsync path (fun () ->
            match Hashtbl.find_opt handles path with
            | Some oc -> sync oc
            | None -> ()));
    seal =
      (fun path ->
        wrap Fsync path (fun () ->
            match Hashtbl.find_opt handles path with
            | Some oc ->
              Hashtbl.remove handles path;
              sync oc;
              close_out oc
            | None -> ()));
    write =
      (fun path s ->
        wrap Write path (fun () ->
            (match Hashtbl.find_opt handles path with
            | Some oc ->
              Hashtbl.remove handles path;
              close_out_noerr oc
            | None -> ());
            let oc = open_out path in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () ->
                output_string oc s;
                sync oc)));
    rename = (fun src dst -> wrap Rename dst (fun () -> Sys.rename src dst));
    remove = (fun path -> try Sys.remove path with Sys_error _ -> ());
    exists = Sys.file_exists;
  }

(* one shared local store: handles are keyed by path, so sharing is safe
   and lets independent writers (log + checkpoint) coexist *)
let the_local = lazy (local ())
let default () = Lazy.force the_local

(* ------------------------------------------------------------------ *)
(* derived: atomic whole-file replacement through the store *)

let atomic_write store path s =
  let ( let* ) = Result.bind in
  let tmp = path ^ ".tmp" in
  let* () =
    match store.write tmp s with
    | Ok () -> Ok ()
    | Error e ->
      (* a torn temp file must not survive to be mistaken for data *)
      store.remove tmp;
      Error e
  in
  match store.rename tmp path with
  | Ok () -> Ok ()
  | Error e ->
    store.remove tmp;
    Error e
