(** Bounded retry with deterministic backoff.

    Transient storage errors ({!Store.error.transient}) persisted
    nothing, so the identical operation is re-issued up to
    [max_retries] times with a geometric backoff; permanent errors
    surface immediately. The schedule is deterministic: fault plan +
    policy always yields the same attempt sequence. *)

type policy = {
  max_retries : int;  (** extra attempts after the first *)
  backoff_s : float;  (** sleep before the first retry *)
  multiplier : float;
  max_backoff_s : float;  (** per-sleep cap, bounding total stall *)
}

(** 3 retries, 1 ms initial backoff, doubling, capped at 50 ms. *)
val default : policy

val no_retries : policy

type failure = {
  error : Store.error;  (** the error that ended the attempt sequence *)
  attempts : int;  (** attempts made, including the first *)
  gave_up : bool;  (** true: transient, but retry budget exhausted *)
}

val pp_failure : Format.formatter -> failure -> unit
val failure_to_string : failure -> string

(** [run ?policy f] re-runs [f] on transient errors per [policy]. *)
val run : ?policy:policy -> (unit -> ('a, Store.error) result) -> ('a, failure) result

(** The failure as a permanent store error ([transient = false]):
    downstream must not retry what Retry already gave up on. *)
val as_store_error : failure -> Store.error

(** [store ?policy base] wraps every fallible operation of [base] in
    {!run}. Errors that escape are always permanent. *)
val store : ?policy:policy -> Store.t -> Store.t
