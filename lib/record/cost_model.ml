open Mvm

type t = {
  step_cost : float;
  sched_cost : float;
  sync_cost : float;
  value_fixed : float;
  byte_cost : float;
  failure_cost : float;
  flight_tax : float;
}

let default =
  {
    step_cost = 1.0;
    sched_cost = 2.5;
    sync_cost = 0.4;
    value_fixed = 0.5;
    byte_cost = 0.2;
    failure_cost = 0.0;
    flight_tax = 0.05;
  }

let entry_cost t = function
  | Log.Sched _ | Log.Cp_sched _ -> t.sched_cost
  | Log.Sync _ -> t.sync_cost
  | Log.Input { value; _ } | Log.Read_val { value; _ } | Log.Output { value; _ }
  | Log.Cp_input { value; _ } ->
    t.value_fixed +. (t.byte_cost *. float_of_int (Value.size_bytes value))
  | Log.Failure_desc _ -> t.failure_cost
  | Log.Flight_note { buffered } -> t.flight_tax *. float_of_int buffered
  | Log.Mark _ | Log.Govern _ -> 0.0

let recording_cost t log =
  List.fold_left (fun acc e -> acc +. entry_cost t e) 0.0 log.Log.entries

let overhead t log =
  let base = t.step_cost *. float_of_int (max 1 log.Log.base_steps) in
  (base +. recording_cost t log) /. base
