open Mvm

(* ------------------------------------------------------------------ *)
(* CRC32 (IEEE 802.3, polynomial 0xEDB88320) over entry lines. The table
   is built lazily once; the checksum guards each entry against the bit
   rot and truncation a log suffers on its way off the production
   machine. *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let ix = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl) in
      c := Int32.logxor table.(ix) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

let crc_hex s = Printf.sprintf "%08lx" (Int32.logand (crc32 s) 0xFFFFFFFFl)

(* ------------------------------------------------------------------ *)
(* encoding *)

let enc_value = function
  | Value.Vint n -> "i:" ^ string_of_int n
  | Value.Vbool b -> "b:" ^ string_of_bool b
  | Value.Vstr s -> "s:\"" ^ String.escaped s ^ "\""
  | Value.Vunit -> "u"

let enc_failure = function
  | Failure.Crash { sid; msg } ->
    Printf.sprintf "crash %d \"%s\"" sid (String.escaped msg)
  | Failure.Spec_violation tag -> Printf.sprintf "spec \"%s\"" (String.escaped tag)
  | Failure.Hang -> "hang"

let enc_op = function
  | Log.Op_send c -> "send " ^ c
  | Log.Op_recv c -> "recv " ^ c
  | Log.Op_spawn -> "spawn -"
  | Log.Op_lock m -> "lock " ^ m
  | Log.Op_unlock m -> "unlock " ^ m

let enc_entry = function
  | Log.Sched { tid; sid } -> Printf.sprintf "sched %d %d" tid sid
  | Log.Input { tid; chan; value } ->
    Printf.sprintf "input %d %s %s" tid chan (enc_value value)
  | Log.Read_val { tid; sid; kind; value } ->
    Printf.sprintf "readval %d %d %s %s" tid sid
      (match kind with Log.Mem -> "mem" | Log.Msg -> "msg")
      (enc_value value)
  | Log.Output { chan; value } ->
    Printf.sprintf "output %s %s" chan (enc_value value)
  | Log.Sync { tid; sid; op } -> Printf.sprintf "sync %d %d %s" tid sid (enc_op op)
  | Log.Cp_sched { tid; sid } -> Printf.sprintf "cpsched %d %d" tid sid
  | Log.Cp_input { tid; sid; chan; value } ->
    Printf.sprintf "cpinput %d %d %s %s" tid sid chan (enc_value value)
  | Log.Failure_desc f -> "faildesc " ^ enc_failure f
  | Log.Flight_note { buffered } -> Printf.sprintf "flight %d" buffered
  | Log.Mark m -> Printf.sprintf "mark \"%s\"" (String.escaped m)
  | Log.Govern { step; level; reason } ->
    Printf.sprintf "govern %d %d \"%s\"" step level (String.escaped reason)

let header_lines (log : Log.t) =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "recorder \"%s\"\n" (String.escaped log.Log.recorder));
  Buffer.add_string b (Printf.sprintf "base-steps %d\n" log.Log.base_steps);
  Buffer.add_string b
    (match log.Log.failure with
    | Some f -> "failure " ^ enc_failure f ^ "\n"
    | None -> "failure none\n");
  (match log.Log.faults with
  | Some plan ->
    Buffer.add_string b
      (Printf.sprintf "faults \"%s\"\n" (String.escaped (Fault.to_string plan)))
  | None -> ());
  Buffer.contents b

let to_string (log : Log.t) =
  let b = Buffer.create 4096 in
  Buffer.add_string b "ddet-log v2\n";
  Buffer.add_string b (header_lines log);
  List.iter
    (fun e ->
      let line = enc_entry e in
      Buffer.add_string b (crc_hex line);
      Buffer.add_char b ' ';
      Buffer.add_string b line;
      Buffer.add_char b '\n')
    log.Log.entries;
  Buffer.add_string b (Printf.sprintf "end %d\n" (List.length log.Log.entries));
  Buffer.contents b

let to_string_v1 (log : Log.t) =
  let b = Buffer.create 4096 in
  Buffer.add_string b "ddet-log v1\n";
  Buffer.add_string b (header_lines log);
  List.iter
    (fun e ->
      Buffer.add_string b (enc_entry e);
      Buffer.add_char b '\n')
    log.Log.entries;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* decoding *)

exception Parse of string

(* Split a line into space-separated tokens. A double quote opens an
   OCaml-escaped string span that runs to the matching close quote; the
   span (with a leading '"' marker) stays part of the current token, so
   both bare strings ([mark "a b"]) and typed values ([s:"a b"]) arrive as
   single tokens. *)
let tokens line =
  let n = String.length line in
  let out = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  let rec plain i =
    if i >= n then flush ()
    else
      match line.[i] with
      | ' ' -> flush (); plain (i + 1)
      | '"' ->
        Buffer.add_char buf '"';
        quoted (i + 1)
      | c -> Buffer.add_char buf c; plain (i + 1)
  and quoted i =
    if i >= n then raise (Parse "unterminated string")
    else
      match line.[i] with
      | '"' -> plain (i + 1)
      | '\\' when i + 1 < n ->
        Buffer.add_char buf '\\';
        Buffer.add_char buf line.[i + 1];
        quoted (i + 2)
      | c -> Buffer.add_char buf c; quoted (i + 1)
  in
  plain 0;
  List.rev !out

let unescape s = Scanf.unescaped s

let dec_string tok =
  if String.length tok > 0 && tok.[0] = '"' then
    unescape (String.sub tok 1 (String.length tok - 1))
  else raise (Parse ("expected quoted string, got " ^ tok))

let dec_value tok =
  if tok = "u" then Value.unit
  else if String.length tok > 2 && String.sub tok 0 2 = "i:" then
    Value.int (int_of_string (String.sub tok 2 (String.length tok - 2)))
  else if String.length tok > 2 && String.sub tok 0 2 = "b:" then
    Value.bool (bool_of_string (String.sub tok 2 (String.length tok - 2)))
  else if String.length tok > 2 && String.sub tok 0 2 = "s:" then
    Value.str (dec_string (String.sub tok 2 (String.length tok - 2)))
  else raise (Parse ("bad value token " ^ tok))

let dec_failure = function
  | [ "crash"; sid; msg ] ->
    Failure.Crash { sid = int_of_string sid; msg = dec_string msg }
  | [ "spec"; tag ] -> Failure.Spec_violation (dec_string tag)
  | [ "hang" ] -> Failure.Hang
  | toks -> raise (Parse ("bad failure: " ^ String.concat " " toks))

let dec_op op obj =
  match op with
  | "send" -> Log.Op_send obj
  | "recv" -> Log.Op_recv obj
  | "spawn" -> Log.Op_spawn
  | "lock" -> Log.Op_lock obj
  | "unlock" -> Log.Op_unlock obj
  | _ -> raise (Parse ("bad sync op " ^ op))

let dec_entry_tokens line = function
  | [ "sched"; tid; sid ] ->
    Log.Sched { tid = int_of_string tid; sid = int_of_string sid }
  | [ "input"; tid; chan; v ] ->
    Log.Input { tid = int_of_string tid; chan; value = dec_value v }
  | [ "readval"; tid; sid; kind; v ] ->
    Log.Read_val
      {
        tid = int_of_string tid;
        sid = int_of_string sid;
        kind =
          (match kind with
          | "mem" -> Log.Mem
          | "msg" -> Log.Msg
          | _ -> raise (Parse ("bad read kind " ^ kind)));
        value = dec_value v;
      }
  | [ "output"; chan; v ] -> Log.Output { chan; value = dec_value v }
  | [ "sync"; tid; sid; op; obj ] ->
    Log.Sync { tid = int_of_string tid; sid = int_of_string sid; op = dec_op op obj }
  | [ "cpsched"; tid; sid ] ->
    Log.Cp_sched { tid = int_of_string tid; sid = int_of_string sid }
  | [ "cpinput"; tid; sid; chan; v ] ->
    Log.Cp_input
      {
        tid = int_of_string tid;
        sid = int_of_string sid;
        chan;
        value = dec_value v;
      }
  | "faildesc" :: rest -> Log.Failure_desc (dec_failure rest)
  | [ "flight"; n ] -> Log.Flight_note { buffered = int_of_string n }
  | [ "mark"; m ] -> Log.Mark (dec_string m)
  | [ "govern"; step; level; reason ] ->
    Log.Govern
      {
        step = int_of_string step;
        level = int_of_string level;
        reason = dec_string reason;
      }
  | _ -> raise (Parse ("bad entry: " ^ line))

let dec_entry line = dec_entry_tokens line (tokens line)

(* ------------------------------------------------------------------ *)
(* modes, damage reports *)

type mode = Strict | Salvage

type damage = {
  total_lines : int;
  salvaged_entries : int;
  corrupt_lines : (int * string * string) list;
  truncated : bool;
}

let is_damaged d = d.corrupt_lines <> [] || d.truncated

let pp_damage ppf d =
  if not (is_damaged d) then Format.fprintf ppf "log intact"
  else begin
    Format.fprintf ppf "@[<v>salvaged %d entries from %d lines%s"
      d.salvaged_entries d.total_lines
      (if d.truncated then " (truncated tail)" else "");
    List.iter
      (fun (n, reason, text) ->
        Format.fprintf ppf "@,  line %d: %s (in: %S)" n reason text)
      d.corrupt_lines;
    Format.fprintf ppf "@]"
  end

(* Every parse failure is reported with its 1-based line number and the
   offending text, whether it becomes a hard Error (Strict) or a damage
   record (Salvage). *)
let line_error n reason text =
  Printf.sprintf "line %d: %s (in: %S)" n reason text

let classify_exn = function
  | Parse msg -> Some msg
  | Stdlib.Failure msg -> Some msg
  | Scanf.Scan_failure msg -> Some msg
  | _ -> None

let is_crc_token tok =
  String.length tok = 8
  && String.for_all
       (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
       tok

(* A v2 body line is `<crc8hex> <entry>`; header keywords and the trailer
   are never 8 hex digits, so classification is unambiguous. *)
let split_crc_line line =
  match String.index_opt line ' ' with
  | Some k when is_crc_token (String.sub line 0 k) ->
    Some (String.sub line 0 k, String.sub line (k + 1) (String.length line - k - 1))
  | _ -> None

type header = {
  mutable h_recorder : string;
  mutable h_base_steps : int;
  mutable h_failure : Failure.t option;
  mutable h_faults : Fault.plan option;
}

let parse_header_line hdr line =
  match tokens line with
  | [ "recorder"; name ] ->
    hdr.h_recorder <- dec_string name;
    true
  | [ "base-steps"; n ] ->
    hdr.h_base_steps <- int_of_string n;
    true
  | [ "failure"; "none" ] ->
    hdr.h_failure <- None;
    true
  | "failure" :: rest ->
    hdr.h_failure <- Some (dec_failure rest);
    true
  | [ "faults"; plan ] -> (
    match Fault.of_string (dec_string plan) with
    | Ok p ->
      hdr.h_faults <- Some p;
      true
    | Error e -> raise (Parse ("bad fault plan: " ^ e)))
  | _ -> false

let numbered_lines s =
  String.split_on_char '\n' s
  |> List.mapi (fun i l -> (i + 1, l))
  |> List.filter (fun (_, l) -> String.trim l <> "")

let fresh_header () =
  { h_recorder = "unknown"; h_base_steps = 0; h_failure = None; h_faults = None }

(* v2 parsing is a single line-by-line pass for both modes: Strict turns
   the first problem into an Error, Salvage records it and keeps the
   valid prefix. *)
let parse_v2 ~mode ~total_lines lines =
  let hdr = fresh_header () in
  let entries = ref [] in
  let corrupt = ref [] in
  let trailer : int option ref = ref None in
  let strict_error = ref None in
  let problem n reason text =
    match mode with
    | Strict ->
      if !strict_error = None then strict_error := Some (line_error n reason text)
    | Salvage -> corrupt := (n, reason, text) :: !corrupt
  in
  List.iter
    (fun (n, line) ->
      if !strict_error = None then
        match split_crc_line line with
        | Some (crc, body) ->
          if not (String.equal crc (crc_hex body)) then
            problem n
              (Printf.sprintf "crc mismatch (stored %s, computed %s)" crc
                 (crc_hex body))
              line
          else begin
            match dec_entry body with
            | e -> entries := e :: !entries
            | exception exn -> (
              match classify_exn exn with
              | Some msg -> problem n msg line
              | None -> raise exn)
          end
        | None -> (
          match tokens line with
          | [ "end"; count ] -> (
            match int_of_string_opt count with
            | Some c -> trailer := Some c
            | None -> problem n "bad trailer count" line)
          | exception exn -> (
            match classify_exn exn with
            | Some msg -> problem n msg line
            | None -> raise exn)
          | _ -> (
            match parse_header_line hdr line with
            | true -> ()
            | false -> problem n "unrecognised line" line
            | exception exn -> (
              match classify_exn exn with
              | Some msg -> problem n msg line
              | None -> raise exn))))
    lines;
  match !strict_error with
  | Some e -> Error e
  | None ->
    let entries = List.rev !entries in
    let truncated =
      match !trailer with
      | None -> true
      | Some c -> c <> List.length entries
    in
    if mode = Strict && truncated then
      Error
        (match !trailer with
        | None -> "missing `end` trailer (truncated log)"
        | Some c ->
          Printf.sprintf "trailer count %d does not match %d entries" c
            (List.length entries))
    else
      let log =
        Log.make ?faults:hdr.h_faults ~recorder:hdr.h_recorder ~entries
          ~base_steps:hdr.h_base_steps ~failure:hdr.h_failure ()
      in
      Ok
        ( log,
          {
            total_lines;
            salvaged_entries = List.length entries;
            corrupt_lines = List.rev !corrupt;
            truncated;
          } )

(* v1 logs have a fixed positional header and no per-entry checksums or
   trailer, so truncation is undetectable: salvage can only skip lines
   that fail to parse. *)
let parse_v1 ~mode ~total_lines lines =
  let hdr = fresh_header () in
  let entries = ref [] in
  let corrupt = ref [] in
  let strict_error = ref None in
  let problem n reason text =
    match mode with
    | Strict ->
      if !strict_error = None then strict_error := Some (line_error n reason text)
    | Salvage -> corrupt := (n, reason, text) :: !corrupt
  in
  List.iter
    (fun (n, line) ->
      if !strict_error = None then
        match tokens line with
        | exception exn -> (
          match classify_exn exn with
          | Some msg -> problem n msg line
          | None -> raise exn)
        | toks -> (
          match
            match toks with
            | [ "recorder" ] | [ "base-steps" ] | [ "failure" ] | [ "faults" ]
              ->
              (* header keyword with no payload: damaged header line *)
              problem n "damaged header line" line
            | ("recorder" | "base-steps" | "failure" | "faults") :: _ ->
              if not (parse_header_line hdr line) then
                problem n "damaged header line" line
            | _ -> entries := dec_entry_tokens line toks :: !entries
          with
          | () -> ()
          | exception exn -> (
            match classify_exn exn with
            | Some msg -> problem n msg line
            | None -> raise exn)))
    lines;
  match !strict_error with
  | Some e -> Error e
  | None ->
    let entries = List.rev !entries in
    let log =
      Log.make ?faults:hdr.h_faults ~recorder:hdr.h_recorder ~entries
        ~base_steps:hdr.h_base_steps ~failure:hdr.h_failure ()
    in
    Ok
      ( log,
        {
          total_lines;
          salvaged_entries = List.length entries;
          corrupt_lines = List.rev !corrupt;
          truncated = false;
        } )

let of_string_report ?(mode = Strict) s =
  let lines = numbered_lines s in
  let total_lines = List.length lines in
  match lines with
  | [] -> Error "empty log"
  | (n0, magic) :: rest -> (
    match String.trim magic with
    | "ddet-log v2" -> parse_v2 ~mode ~total_lines rest
    | "ddet-log v1" -> parse_v1 ~mode ~total_lines rest
    | m -> (
      match mode with
      | Strict -> Error (line_error n0 ("bad magic: " ^ m) magic)
      | Salvage -> (
        (* even the magic can be the corrupted line; assume the current
           format and keep whatever survives *)
        match parse_v2 ~mode ~total_lines rest with
        | Error e -> Error e
        | Ok (log, damage) ->
          Ok
            ( log,
              {
                damage with
                corrupt_lines =
                  (n0, "bad magic", magic) :: damage.corrupt_lines;
              } ))))

let of_string ?mode s = Result.map fst (of_string_report ?mode s)

(* Atomic file replacement: write the whole payload to a fresh temp file
   in the destination directory, then rename over the target. A crash at
   any point leaves either the old file or the new one — never a
   Strict-rejected half log — because rename within a directory is atomic
   on POSIX filesystems. *)
let atomic_write path s =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir ".ddet" ".tmp" in
  (try
     let oc = open_out tmp in
     Fun.protect
       ~finally:(fun () -> close_out oc)
       (fun () ->
         output_string oc s;
         flush oc)
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

(* Store-routed save: same atomic discipline, but every byte flows
   through the pluggable store, so fault injection and retry policies
   apply to monolithic saves too. *)
let save_via store path log = Store.atomic_write store path (to_string log)

let save path log =
  match save_via (Store.default ()) path log with
  | Ok () -> ()
  | Error e -> raise (Sys_error (Store.error_to_string e))

let load_report ?mode path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string_report ?mode (In_channel.input_all ic))

let load ?mode path = Result.map fst (load_report ?mode path)
