open Mvm

let create ?govern () =
  let add, finalize = Recorder.accumulator ~name:"output" ?govern () in
  let on_event (e : Event.t) =
    match e.kind with
    | Event.Out io -> add (Log.Output { chan = io.chan; value = io.value.Value.v })
    | Event.Step | Event.Read _ | Event.Write _ | Event.In _ | Event.Msg_send _
    | Event.Msg_recv _ | Event.Lock_acq _ | Event.Lock_rel _ | Event.Spawned _
    | Event.Crashed _ ->
      ()
  in
  Recorder.make ~name:"output" ~on_event ~finalize
