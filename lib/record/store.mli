(** Pluggable storage under the record stack.

    Every byte the recorder persists — monolithic logs, segments,
    manifests, checkpoints — flows through this interface, so one
    implementation swap subjects the entire pipeline to hostile I/O
    ({!Faulty_store}) or absorbs transient faults ({!Retry}). Atomic
    replacement is derived from the primitives here, so injected write
    and rename faults exercise the real atomic path. *)

type op = Write | Append | Fsync | Rename | Remove

val op_name : op -> string

type errkind =
  | Enospc  (** out of space; any prefix already handed over may persist *)
  | Eio of string  (** other I/O failure, with the OS detail *)

(** The typed storage error. [transient] is the retry contract: a
    transient error persisted nothing, so retrying the same operation
    verbatim is safe; a permanent error may have torn the target. *)
type error = {
  e_op : op;
  e_path : string;
  e_kind : errkind;
  transient : bool;
}

val errkind_name : errkind -> string
val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

type t = {
  name : string;
  append : string -> string -> (unit, error) result;
      (** append bytes to a path, opening a write handle on first use;
          flushed (not fsynced) per call, so a crash loses at most the
          bytes of the append in flight *)
  fsync : string -> (unit, error) result;
      (** flush and fsync the path's open handle (no-op if none) *)
  seal : string -> (unit, error) result;
      (** flush, fsync and close the path's open handle *)
  write : string -> string -> (unit, error) result;
      (** create/truncate the path with exactly these bytes, then seal *)
  rename : string -> string -> (unit, error) result;
  remove : string -> unit;  (** best-effort; missing files are fine *)
  exists : string -> bool;
}

(** [local ()] is the real filesystem, with its own handle table. *)
val local : unit -> t

(** [default ()] is a process-wide shared {!local} store — handles are
    keyed by path, so independent writers coexist safely. *)
val default : unit -> t

(** [atomic_write store path s] writes [s] to [path ^ ".tmp"], fsyncs,
    and renames over [path]: a crash or a fault at any point leaves the
    old file or the new one, never a half-written target. Errors from
    any leg surface as the store's typed error with the temp cleaned
    up. *)
val atomic_write : t -> string -> string -> (unit, error) result
