(** Perfect-determinism recorder: logs the complete thread interleaving plus
    every input value. Replay is a single deterministic re-execution. The
    highest-overhead, highest-utility corner of Fig. 1. *)

val create : ?govern:Governor.t -> unit -> Recorder.t
