(** Inference engines: reconstruct unrecorded nondeterminism by searching
    the space of worlds for an execution satisfying the model's constraint.

    Three strategies:

    - {!random_restarts} — seeded random executions with streaming abort
      (PRES-style probabilistic replay). Scales to schedule nondeterminism;
      the paper's observation that ultra-relaxed models can need
      "prohibitively large post-factum analysis times" shows up directly as
      exhausted budgets here.
    - {!enumerate_inputs} — exhaustive odometer enumeration of input-value
      assignments under a deterministic schedule (ESD-style synthesis for
      input-dependent bugs). Complete for programs whose only
      nondeterminism is input data.
    - {!dfs_schedules} — systematic interleaving enumeration with
      state-hash pruning.

    All work is accounted in VM steps so debugging efficiency (DE) can be
    computed uniformly. The engines here are sequential; {!Par_search}
    fans the same attempts over OCaml 5 domains with identical outcomes. *)

open Mvm

type budget = {
  max_attempts : int;  (** maximum executions tried *)
  max_steps_per_attempt : int;  (** step cap per execution *)
  base_seed : int;  (** seed of the first attempt; attempt k uses base+k *)
  deadline_s : float option;
      (** optional wall-clock allowance in seconds. Converted to an
          absolute instant when the engine starts; checked between
          attempts and — via the interpreter's coarse [cancel] poll —
          every 128 steps inside an attempt. On expiry the search
          degrades to its partial outcome with [stats.deadline_hit]
          set, the paper's graceful-degradation stance applied to time:
          DF falls to 1/n instead of the debugger hanging. *)
}

val default_budget : budget

(** A worker mishap the search survived. [worker] is the domain's index
    under {!Par_search} ([None] for the sequential engines). A requeued
    incident ([poisoned = false]) means the retry succeeded; a poisoned
    one means the attempt was abandoned after [retries] retries. *)
type incident = {
  at_attempt : int;
  worker : int option;
  error : string;
  retries : int;
  poisoned : bool;
}

val pp_incident : Format.formatter -> incident -> unit

type stats = {
  attempts : int;  (** executions actually run and judged *)
  total_steps : int;  (** VM steps across all attempts (inference work) *)
  pruned : int;
      (** schedule prefixes skipped by the DFS pruner (state already
          covered, or a clamped digit); their probe steps are included in
          [total_steps], but they are not [attempts] *)
  success : bool;
  deadline_hit : bool;  (** the wall-clock deadline ended the search *)
  incidents : incident list;
      (** supervision report: requeued and poisoned attempts, in order *)
}

(** A best-effort reproduction: the highest-scoring rejected candidate
    when the budget ran out before any attempt was accepted. [closeness]
    is the caller's [score] of that run (for the replay drivers,
    {!Constraints.closeness} — how far it diverged from the recording). *)
type partial = { best : Interp.result; closeness : float; attempt : int }

type outcome = {
  result : Interp.result option;  (** first accepted execution *)
  partial : partial option;
      (** best rejected candidate — only when [result = None] and a
          [score] was supplied *)
  stats : stats;
}

(** [random_restarts ?score budget ~make ~spec ~accept labeled] runs up to
    [budget.max_attempts] executions. [make ~attempt] supplies the world
    and an optional streaming abort for each attempt (fresh state per
    attempt!). Each completed run is judged by [spec] before [accept].
    [score] ranks rejected runs for the {!partial} outcome (default:
    rank nothing).

    All three engines share the crash-tolerance conveniences:

    - [checkpoint] — a {!Checkpoint.sink} ticked once per judged attempt
      at iteration boundaries, so the file on disk always describes a
      consistent frontier ("everything before attempt [n] is done"); it
      is flushed when the search ends without a hit, which is what lets
      a deadline-killed search resume later.
    - [resume] — a loaded {!Checkpoint.t}; the engine validates its
      engine kind and base seed (raising [Invalid_argument] on a
      mismatch), restores the counters, frontier and best-candidate key,
      and continues. Because attempts are judged in order, a resumed
      search reaches the same first-hit outcome as an uninterrupted one.
    - supervision — an attempt whose execution raises is retried up to a
      bounded number of times, then poisoned (skipped) with an
      {!incident} in [stats.incidents]; the search itself survives. *)
val random_restarts :
  ?score:(Interp.result -> float) ->
  ?checkpoint:Checkpoint.sink ->
  ?resume:Checkpoint.t ->
  budget ->
  make:(attempt:int -> World.t * (Event.t -> string option) option) ->
  spec:Spec.t ->
  accept:(Interp.result -> bool) ->
  Label.labeled ->
  outcome

(** [enumerate_inputs ?score budget ~spec ~accept labeled] explores
    input-value assignments in lexicographic domain order under a
    round-robin schedule; complete up to the attempt budget. *)
val enumerate_inputs :
  ?score:(Interp.result -> float) ->
  ?checkpoint:Checkpoint.sink ->
  ?resume:Checkpoint.t ->
  budget ->
  spec:Spec.t ->
  accept:(Interp.result -> bool) ->
  Label.labeled ->
  outcome

(** [dfs_schedules ?prune budget ~spec ~accept labeled] systematically
    enumerates thread interleavings depth-first: each run follows a
    decision prefix and extends it with a default policy (lowest thread
    id), recording the fan-out at every scheduling point; backtracking
    bumps the {e shallowest} decision with room and resets everything
    below it, so the earliest interleaving choices — where races live —
    vary first. Inputs are fixed to each domain's first value, so the
    engine explores schedule nondeterminism only — ESD-style directed
    synthesis, complete for small programs, exponential in general (which
    is the point of the ABL-SEARCH comparison against random restarts).

    [prune] (default [true]) enables state-hash subtree pruning — a poor
    man's partial-order reduction: at the first decision past its prefix,
    a run whose canonical state digest (see {!State_hash}) was already
    reached by an explored subtree is cut short and its whole subtree
    skipped, since every continuation reproduces already-judged status,
    outputs and failure. Pruning assumes [accept] judges runs through
    those interleaving-invariant projections (every driver in this
    repository does); pass [~prune:false] for an accept that inspects raw
    global event order. Skipped prefixes are counted in [stats.pruned].
    A prefix digit that meets a smaller fan-out than it was generated
    against is treated as an exhausted branch (the schedule it denotes
    duplicates an already-enumerated one) and also counts as pruned.

    [on_prune] is a debug/test hook invoked with each state-hash-pruned
    prefix. *)
val dfs_schedules :
  ?score:(Interp.result -> float) ->
  ?prune:bool ->
  ?on_prune:(prefix:int array -> unit) ->
  ?checkpoint:Checkpoint.sink ->
  ?resume:Checkpoint.t ->
  budget ->
  spec:Spec.t ->
  accept:(Interp.result -> bool) ->
  Label.labeled ->
  outcome

(** [run_schedule_prefix ~prefix labeled] executes the single schedule
    denoted by [prefix] (default policy past it), with no pruning,
    returning the run and the discovered decision fan-outs — the tool
    tests use to check that a pruned prefix really was redundant. *)
val run_schedule_prefix :
  ?max_steps:int ->
  prefix:int array ->
  Label.labeled ->
  Interp.result * int list

(**/**)

(** A site-priority hint for attempt worlds: sids a static analysis
    flagged as race-candidate sites. Searches seeded with
    {!priority_world} schedule threads sitting at a suspect site first
    (biased, never exclusive), which tends to surface racy interleavings
    in fewer attempts. *)
type site_priority = { sids : int list }

(** [site_prefer p] is the candidate predicate ("next statement is a
    suspect site"). *)
val site_prefer : site_priority -> Mvm.World.cand -> bool

(** [priority_world p ~seed] is {!Mvm.World.prioritized} over [p]'s
    sites — a drop-in replacement for [World.random ~seed] in restart
    searches. *)
val priority_world : site_priority -> seed:int -> Mvm.World.t

(* internal: shared with Par_search *)
val no_score : Interp.result -> float

(* best tracker, generic in the rerun key 'k (attempt index for seeded
   restarts, decision prefix for odometer engines): returns
   (note attempt key result, get-partial, peek-stored-key). [get]
   rematerialises a checkpoint-restored best by rerunning its key. *)
val track_best :
  ?stored:float * int * 'k ->
  rerun:('k -> Interp.result) ->
  (Interp.result -> float) ->
  (int -> 'k -> Interp.result -> unit)
  * (unit -> partial option)
  * (unit -> (float * int * 'k) option)

val exhausted :
  attempts:int -> total_steps:int -> ?pruned:int -> ?deadline_hit:bool ->
  ?incidents:incident list -> (unit -> partial option) -> outcome
val accepted :
  attempts:int -> total_steps:int -> ?pruned:int -> ?deadline_hit:bool ->
  ?incidents:incident list -> Interp.result -> outcome
val advance : int array -> int list -> int array option

(* deadlines are absolute monotonic instants (Obs.Clock ns), immune to
   wall-clock steps; tests drive them through Obs.Clock.set_source *)
val deadline_reason : string
val deadline_of : budget -> int64 option
val deadline_passed : int64 option -> bool
val wall_cancel : int64 option -> (unit -> string option) option

val max_job_retries : int
val supervised :
  attempt:int -> worker:int option -> incident list ref ->
  (unit -> 'a) -> 'a option

val check_resume :
  engine:string -> budget -> Checkpoint.t option -> Checkpoint.t option
val ckpt_best_attempt :
  (unit -> (float * int * int) option) -> Checkpoint.best option
val ckpt_best_prefix :
  (unit -> (float * int * int array) option) -> Checkpoint.best option
val stored_attempt : Checkpoint.t option -> (float * int * int) option
val stored_prefix : Checkpoint.t option -> (float * int * int array) option
