(** Inference engines: reconstruct unrecorded nondeterminism by searching
    the space of worlds for an execution satisfying the model's constraint.

    Three strategies:

    - {!random_restarts} — seeded random executions with streaming abort
      (PRES-style probabilistic replay). Scales to schedule nondeterminism;
      the paper's observation that ultra-relaxed models can need
      "prohibitively large post-factum analysis times" shows up directly as
      exhausted budgets here.
    - {!enumerate_inputs} — exhaustive odometer enumeration of input-value
      assignments under a deterministic schedule (ESD-style synthesis for
      input-dependent bugs). Complete for programs whose only
      nondeterminism is input data.
    - {!dfs_schedules} — systematic interleaving enumeration with
      state-hash pruning.

    All work is accounted in VM steps so debugging efficiency (DE) can be
    computed uniformly. The engines here are sequential; {!Par_search}
    fans the same attempts over OCaml 5 domains with identical outcomes. *)

open Mvm

type budget = {
  max_attempts : int;  (** maximum executions tried *)
  max_steps_per_attempt : int;  (** step cap per execution *)
  base_seed : int;  (** seed of the first attempt; attempt k uses base+k *)
}

val default_budget : budget

type stats = {
  attempts : int;  (** executions actually run and judged *)
  total_steps : int;  (** VM steps across all attempts (inference work) *)
  pruned : int;
      (** schedule prefixes skipped by the DFS pruner (state already
          covered, or a clamped digit); their probe steps are included in
          [total_steps], but they are not [attempts] *)
  success : bool;
}

(** A best-effort reproduction: the highest-scoring rejected candidate
    when the budget ran out before any attempt was accepted. [closeness]
    is the caller's [score] of that run (for the replay drivers,
    {!Constraints.closeness} — how far it diverged from the recording). *)
type partial = { best : Interp.result; closeness : float; attempt : int }

type outcome = {
  result : Interp.result option;  (** first accepted execution *)
  partial : partial option;
      (** best rejected candidate — only when [result = None] and a
          [score] was supplied *)
  stats : stats;
}

(** [random_restarts ?score budget ~make ~spec ~accept labeled] runs up to
    [budget.max_attempts] executions. [make ~attempt] supplies the world
    and an optional streaming abort for each attempt (fresh state per
    attempt!). Each completed run is judged by [spec] before [accept].
    [score] ranks rejected runs for the {!partial} outcome (default:
    rank nothing). *)
val random_restarts :
  ?score:(Interp.result -> float) ->
  budget ->
  make:(attempt:int -> World.t * (Event.t -> string option) option) ->
  spec:Spec.t ->
  accept:(Interp.result -> bool) ->
  Label.labeled ->
  outcome

(** [enumerate_inputs ?score budget ~spec ~accept labeled] explores
    input-value assignments in lexicographic domain order under a
    round-robin schedule; complete up to the attempt budget. *)
val enumerate_inputs :
  ?score:(Interp.result -> float) ->
  budget ->
  spec:Spec.t ->
  accept:(Interp.result -> bool) ->
  Label.labeled ->
  outcome

(** [dfs_schedules ?prune budget ~spec ~accept labeled] systematically
    enumerates thread interleavings depth-first: each run follows a
    decision prefix and extends it with a default policy (lowest thread
    id), recording the fan-out at every scheduling point; backtracking
    bumps the {e shallowest} decision with room and resets everything
    below it, so the earliest interleaving choices — where races live —
    vary first. Inputs are fixed to each domain's first value, so the
    engine explores schedule nondeterminism only — ESD-style directed
    synthesis, complete for small programs, exponential in general (which
    is the point of the ABL-SEARCH comparison against random restarts).

    [prune] (default [true]) enables state-hash subtree pruning — a poor
    man's partial-order reduction: at the first decision past its prefix,
    a run whose canonical state digest (see {!State_hash}) was already
    reached by an explored subtree is cut short and its whole subtree
    skipped, since every continuation reproduces already-judged status,
    outputs and failure. Pruning assumes [accept] judges runs through
    those interleaving-invariant projections (every driver in this
    repository does); pass [~prune:false] for an accept that inspects raw
    global event order. Skipped prefixes are counted in [stats.pruned].
    A prefix digit that meets a smaller fan-out than it was generated
    against is treated as an exhausted branch (the schedule it denotes
    duplicates an already-enumerated one) and also counts as pruned.

    [on_prune] is a debug/test hook invoked with each state-hash-pruned
    prefix. *)
val dfs_schedules :
  ?score:(Interp.result -> float) ->
  ?prune:bool ->
  ?on_prune:(prefix:int array -> unit) ->
  budget ->
  spec:Spec.t ->
  accept:(Interp.result -> bool) ->
  Label.labeled ->
  outcome

(** [run_schedule_prefix ~prefix labeled] executes the single schedule
    denoted by [prefix] (default policy past it), with no pruning,
    returning the run and the discovered decision fan-outs — the tool
    tests use to check that a pruned prefix really was redundant. *)
val run_schedule_prefix :
  ?max_steps:int ->
  prefix:int array ->
  Label.labeled ->
  Interp.result * int list

(**/**)

(* internal: shared with Par_search *)
val no_score : Interp.result -> float
val track_best :
  (Interp.result -> float) ->
  (int -> Interp.result -> unit) * (unit -> partial option)
val exhausted :
  attempts:int -> total_steps:int -> ?pruned:int ->
  (unit -> partial option) -> outcome
val accepted :
  attempts:int -> total_steps:int -> ?pruned:int -> Interp.result -> outcome
val advance : int array -> int list -> int array option
