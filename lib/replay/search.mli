(** Inference engines: reconstruct unrecorded nondeterminism by searching
    the space of worlds for an execution satisfying the model's constraint.

    Two strategies:

    - {!random_restarts} — seeded random executions with streaming abort
      (PRES-style probabilistic replay). Scales to schedule nondeterminism;
      the paper's observation that ultra-relaxed models can need
      "prohibitively large post-factum analysis times" shows up directly as
      exhausted budgets here.
    - {!enumerate_inputs} — exhaustive odometer enumeration of input-value
      assignments under a deterministic schedule (ESD-style synthesis for
      input-dependent bugs). Complete for programs whose only
      nondeterminism is input data.

    All work is accounted in VM steps so debugging efficiency (DE) can be
    computed uniformly. *)

open Mvm

type budget = {
  max_attempts : int;  (** maximum executions tried *)
  max_steps_per_attempt : int;  (** step cap per execution *)
  base_seed : int;  (** seed of the first attempt; attempt k uses base+k *)
}

val default_budget : budget

type stats = {
  attempts : int;  (** executions actually run *)
  total_steps : int;  (** VM steps across all attempts (inference work) *)
  success : bool;
}

(** A best-effort reproduction: the highest-scoring rejected candidate
    when the budget ran out before any attempt was accepted. [closeness]
    is the caller's [score] of that run (for the replay drivers,
    {!Constraints.closeness} — how far it diverged from the recording). *)
type partial = { best : Interp.result; closeness : float; attempt : int }

type outcome = {
  result : Interp.result option;  (** first accepted execution *)
  partial : partial option;
      (** best rejected candidate — only when [result = None] and a
          [score] was supplied *)
  stats : stats;
}

(** [random_restarts ?score budget ~make ~spec ~accept labeled] runs up to
    [budget.max_attempts] executions. [make ~attempt] supplies the world
    and an optional streaming abort for each attempt (fresh state per
    attempt!). Each completed run is judged by [spec] before [accept].
    [score] ranks rejected runs for the {!partial} outcome (default:
    rank nothing). *)
val random_restarts :
  ?score:(Interp.result -> float) ->
  budget ->
  make:(attempt:int -> World.t * (Event.t -> string option) option) ->
  spec:Spec.t ->
  accept:(Interp.result -> bool) ->
  Label.labeled ->
  outcome

(** [enumerate_inputs ?score budget ~spec ~accept labeled] explores
    input-value assignments in lexicographic domain order under a
    round-robin schedule; complete up to the attempt budget. *)
val enumerate_inputs :
  ?score:(Interp.result -> float) ->
  budget ->
  spec:Spec.t ->
  accept:(Interp.result -> bool) ->
  Label.labeled ->
  outcome

(** [dfs_schedules budget ~spec ~accept labeled] systematically enumerates
    thread interleavings depth-first: each run follows a decision prefix
    and extends it with a default policy (lowest thread id), recording the
    fan-out at every scheduling point; backtracking bumps the deepest
    decision with room. Inputs are fixed to each domain's first value, so
    the engine explores schedule nondeterminism only — ESD-style directed
    synthesis, complete for small programs, exponential in general (which
    is the point of the ABL-SEARCH comparison against random restarts). *)
val dfs_schedules :
  ?score:(Interp.result -> float) ->
  budget ->
  spec:Spec.t ->
  accept:(Interp.result -> bool) ->
  Label.labeled ->
  outcome
