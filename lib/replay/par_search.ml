open Mvm

(* Domain-parallel search with deterministic first-hit semantics.

   Workers on OCaml 5 domains execute candidate attempts speculatively;
   a single in-order reducer (the calling thread) replays the sequential
   engines' bookkeeping exactly — attempts are judged in attempt-index
   order, the accepted result is the lowest-index accepting attempt, and
   [note]/[total_steps] accounting only covers attempts the sequential
   search would have run. Consequently every engine here returns a
   byte-identical {!Search.outcome} to its sequential counterpart; only
   wall-clock time changes.

   Two pool shapes:

   - {!indexed_pool}: attempts are independent functions of their index
     (random restarts, seed scans). Workers claim *chunks* of indices
     from an atomic frontier with one CAS, bounded to a window ahead of
     the reducer so speculation cannot run away, and publish results
     into a lock-free ring of atomic slots that the reducer drains in
     index order. No mutex, no condition variable: on short attempts the
     old per-attempt lock/wake handoff was the scheduler, not the
     search.

   - {!chain_pool}: each attempt's successor depends on fan-out sizes its
     run discovers (the odometer engines). Successor prefixes are
     speculated with the last authoritative sizes and validated by the
     reducer; a misspeculation invalidates only the chain suffix, whose
     in-flight runs are cancelled through the interpreter's abort hook.
     Dependencies make chunked claiming pointless here, so this pool
     keeps its mutex — its attempts are long enough to amortise it.

   Per-worker arenas: every engine's [make_exec] builds one
   {!Engine.ctx} per worker domain — the program compiled once, the
   interpreter exec state, the pruner's hash tables and a warm trace
   capacity all reused across that worker's attempts. Attempt cost drops
   to the interpreter loop itself.

   Supervision: a worker whose attempt raises does not tear the search
   down. The job is retried in place (bounded by
   [Search.max_job_retries]); a job that keeps failing is delivered to
   the reducer as poisoned, which records an incident and carries on —
   skipping the attempt where the engine can advance without it (indexed
   attempts), ending the search gracefully where it cannot (a poisoned
   odometer attempt never reports its fan-outs, so the chain has no
   successor). *)

(* ------------------------------------------------------------------ *)
(* tuning *)

type tuning = {
  chunk : int;
  window_per_job : int;
  spawn_cost_steps : int;
  cap_domains : bool;
}

let default_tuning =
  { chunk = 4; window_per_job = 4; spawn_cost_steps = 15_000; cap_domains = true }

(* speculation window: how far past the reducer's frontier workers may
   claim. Must cover at least one chunk or nobody could ever claim. *)
let window_of t jobs = max (max 2 t.chunk) (jobs * t.window_per_job)

(* kept as a named constant for the test harnesses and docs *)
let spawn_cost_steps = default_tuning.spawn_cost_steps

let effective_jobs ?(tuning = default_tuning) ~jobs est =
  (* Min-work heuristic: spawning and coordinating worker domains costs
     roughly [tuning.spawn_cost_steps] interpreter steps' worth of work
     per search; when the caller's estimate of one attempt (typically the
     recorded run's base_steps) falls below it, parallel fan-out is a
     guaranteed loss and the engine silently runs sequentially.

     Cores cap: with [cap_domains] (the default), jobs is clamped to
     [Domain.recommended_domain_count ()] — extra domains on an
     oversubscribed machine only add preemption and cache pressure, and
     the outcome is identical at any job count by construction. Benches
     that measure contention deliberately switch the cap off. *)
  let jobs =
    match est with Some e when e < tuning.spawn_cost_steps -> 1 | _ -> jobs
  in
  if tuning.cap_domains then
    min jobs (max 1 (Domain.recommended_domain_count ()))
  else jobs

(* what a worker delivers for one job: the attempt's value, possibly with
   a requeue incident (it succeeded on retry), or a poison notice *)
type 'a job =
  | Job_ok of 'a * Search.incident option
  | Job_poisoned of Search.incident

(* bounded in-place retry, run on the worker domain. [attempt] may be a
   placeholder for chain jobs (the reducer knows the real attempt index
   and rewrites it before recording the incident). *)
let attempt_job ~attempt ~worker f =
  let rec go ~retries ~last_error =
    match f () with
    | v ->
      let inc =
        Option.map
          (fun error ->
            {
              Search.at_attempt = attempt;
              worker = Some worker;
              error;
              retries;
              poisoned = false;
            })
          last_error
      in
      Job_ok (v, inc)
    | exception e ->
      let error = Printexc.to_string e in
      if retries < Search.max_job_retries then
        go ~retries:(retries + 1) ~last_error:(Some error)
      else
        Job_poisoned
          {
            Search.at_attempt = attempt;
            worker = Some worker;
            error;
            retries;
            poisoned = true;
          }
  in
  go ~retries:0 ~last_error:None

(* ------------------------------------------------------------------ *)
(* waiting: spin first — the other side is usually a few hundred ns away
   from its next atomic publish — then sleep; on boxes with fewer cores
   than domains a pure spin-wait would starve the domain holding the
   work. *)

let backoff spins =
  if spins < 64 then Domain.cpu_relax () else Unix.sleepf 0.000_05

(* traced variant: charge the wait to an idle-time counter (wall time,
   [_ns]-suffixed so the tracer masks it in deterministic renderings) *)
let idle_backoff idle spins =
  match idle with
  | None -> backoff spins
  | Some _ ->
    let t0 = Ddet_obs.Clock.now () in
    backoff spins;
    Ddet_obs.Tracer.bump idle (Int64.to_int (Ddet_obs.Clock.elapsed_ns t0))

(* ------------------------------------------------------------------ *)

let indexed_pool ?(tuning = default_tuning) ~jobs ~first ~last ~make_exec
    ~process ~exhausted =
  let chunk = max 1 tuning.chunk in
  let window = window_of tuning jobs in
  (* Result mailbox: a bounded ring of atomic slots addressed by attempt
     index land mask. Safety of reusing slot [i land mask] between
     attempts [i] and [i + cap]: a worker only claims a range whose low
     end satisfies [lo < next_proc + window] (checked before the CAS),
     so every index it may ever write is < next_proc + window + chunk
     <= next_proc + cap - 1; and the reducer clears a slot *before*
     publishing the advanced [next_proc]. So by the time attempt [i]'s
     claim check passes, attempt [i - cap] <= next_proc - 1 has been
     consumed and its cell reset. *)
  let cap =
    let need = window + chunk + 1 in
    let rec p2 n = if n >= need then n else p2 (n * 2) in
    p2 2
  in
  let mask = cap - 1 in
  let slots = Array.init cap (fun _ -> Atomic.make None) in
  let next_claim = Atomic.make first in
  let next_proc = Atomic.make first in
  let stop = Atomic.make false in
  (* counter handles resolved once on the reducer thread, before any
     domain spawns; workers bump the atomics lock-free *)
  let c_claims = Ddet_obs.Tracer.handle "par.chunk_claims" in
  let c_widle = Ddet_obs.Tracer.handle "par.worker_idle_ns" in
  let c_ridle = Ddet_obs.Tracer.handle "par.reducer_idle_ns" in
  let worker w () =
    let exec = make_exec w in
    let cancel () = Atomic.get stop in
    (* claim a run of up to [chunk] consecutive indices with one CAS *)
    let rec claim spins =
      if Atomic.get stop then None
      else
        let lo = Atomic.get next_claim in
        if lo > last then None
        else if lo >= Atomic.get next_proc + window then begin
          idle_backoff c_widle spins;
          claim (spins + 1)
        end
        else
          let hi = min (lo + chunk - 1) last in
          if Atomic.compare_and_set next_claim lo (hi + 1) then begin
            Ddet_obs.Tracer.bump c_claims 1;
            Some (lo, hi)
          end
          else claim 0
    in
    let rec run () =
      match claim 0 with
      | None -> ()
      | Some (lo, hi) ->
        let i = ref lo in
        let live = ref true in
        while !live && !i <= hi do
          let r = exec ~cancel !i in
          Atomic.set slots.(!i land mask) (Some r);
          incr i;
          if Atomic.get stop then live := false
        done;
        if !live then run ()
    in
    run ()
  in
  let domains = List.init jobs (fun w -> Domain.spawn (worker w)) in
  let stop_all () =
    Atomic.set stop true;
    List.iter Domain.join domains
  in
  let rec reduce spins =
    let i = Atomic.get next_proc in
    if i > last then begin
      stop_all ();
      exhausted ()
    end
    else
      let cell = slots.(i land mask) in
      match Atomic.get cell with
      | None ->
        idle_backoff c_ridle spins;
        reduce (spins + 1)
      | Some r -> (
        (* clear before advancing — the ring-safety argument above *)
        Atomic.set cell None;
        match (try process i r with e -> stop_all (); raise e) with
        | `Stop out ->
          stop_all ();
          out
        | `Continue ->
          Atomic.set next_proc (i + 1);
          reduce 0)
  in
  reduce 0

(* ------------------------------------------------------------------ *)

type chain_state =
  | Pending
  | Running
  | Done of Engine.probe job

type chain_entry = { prefix : int array; mutable st : chain_state }

let chain_pool ?(tuning = default_tuning) ?(init_prefix = [||]) ~jobs
    ~make_exec ~process ~exhausted () =
  let m = Mutex.create () in
  let c = Condition.create () in
  let chain : (int, chain_entry) Hashtbl.t = Hashtbl.create 64 in
  let version = Atomic.make 0 in
  let stop = Atomic.make false in
  let next_proc = ref 0 in
  let spec_hi = ref 1 in
  let guess : int list ref = ref [] in
  let window = window_of tuning jobs in
  let c_misspec = Ddet_obs.Tracer.handle "par.chain_misspec" in
  Hashtbl.replace chain 0 { prefix = init_prefix; st = Pending };
  (* speculative generation: extend the chain with the reducer's best
     guess of successor prefixes (advance under the last authoritative
     sizes). Caller holds [m]. *)
  let rec gen () =
    if !spec_hi < !next_proc + window then
      match Hashtbl.find_opt chain (!spec_hi - 1) with
      | Some prev -> (
        match Engine.advance prev.prefix !guess with
        | Some p ->
          Hashtbl.replace chain !spec_hi { prefix = p; st = Pending };
          incr spec_hi;
          gen ()
        | None -> ())
      | None -> ()
  in
  let worker w () =
    let exec = make_exec w in
    let rec loop () =
      Mutex.lock m;
      let rec find i =
        if i >= !spec_hi then None
        else
          match Hashtbl.find_opt chain i with
          | Some e when e.st = Pending -> Some e
          | _ -> find (i + 1)
      in
      let rec wait_task () =
        if Atomic.get stop then None
        else
          match find !next_proc with
          | Some e -> Some e
          | None ->
            Condition.wait c m;
            wait_task ()
      in
      match wait_task () with
      | None -> Mutex.unlock m
      | Some e ->
        e.st <- Running;
        let myv = Atomic.get version in
        Mutex.unlock m;
        let cancel () = Atomic.get stop || Atomic.get version <> myv in
        let r = exec ~cancel e.prefix in
        Mutex.lock m;
        (if Atomic.get version = myv then begin
           e.st <- Done r;
           Condition.broadcast c
         end);
        Mutex.unlock m;
        loop ()
    in
    loop ()
  in
  let domains = List.init jobs (fun w -> Domain.spawn (worker w)) in
  let stop_all () =
    Mutex.lock m;
    Atomic.set stop true;
    Condition.broadcast c;
    Mutex.unlock m;
    List.iter Domain.join domains
  in
  let rec reduce () =
    Mutex.lock m;
    let entry = Hashtbl.find chain !next_proc in
    while match entry.st with Done _ -> false | Pending | Running -> true do
      Condition.wait c m
    done;
    let job = match entry.st with Done j -> j | _ -> assert false in
    Mutex.unlock m;
    match
      (try process ~prefix:entry.prefix job with e -> stop_all (); raise e)
    with
    | `Stop out ->
      stop_all ();
      out
    | `Advance sizes -> (
      Mutex.lock m;
      guess := sizes;
      match Engine.advance entry.prefix sizes with
      | None ->
        Mutex.unlock m;
        stop_all ();
        exhausted ()
      | Some np ->
        let j = !next_proc in
        (match Hashtbl.find_opt chain (j + 1) with
        | Some e1 when e1.prefix = np -> ()
        | _ ->
          (* misspeculation: drop the chain suffix; stale in-flight runs
             see the version bump and cancel themselves *)
          Ddet_obs.Tracer.bump c_misspec 1;
          Atomic.incr version;
          let rec drop i =
            if Hashtbl.mem chain i then begin
              Hashtbl.remove chain i;
              drop (i + 1)
            end
          in
          drop (j + 1);
          Hashtbl.replace chain (j + 1) { prefix = np; st = Pending };
          spec_hi := j + 2);
        Hashtbl.remove chain j;
        next_proc := j + 1;
        gen ();
        Condition.broadcast c;
        Mutex.unlock m;
        reduce ())
  in
  reduce ()

(* ------------------------------------------------------------------ *)
(* engines *)

let random_restarts ?(jobs = 1) ?(tuning = default_tuning) ?est_attempt_steps
    ?(score = Search.no_score) ?checkpoint ?resume budget ~make ~spec ~accept
    labeled =
  let jobs = effective_jobs ~tuning ~jobs est_attempt_steps in
  if jobs <= 1 then
    Search.random_restarts ~score ?checkpoint ?resume budget ~make ~spec
      ~accept labeled
  else begin
    let resume = Search.check_resume ~engine:"restarts" budget resume in
    let total_steps =
      ref (match resume with Some c -> c.Checkpoint.total_steps | None -> 0)
    in
    let incidents = ref [] in
    let deadline = Search.deadline_of budget in
    let rerun attempt =
      let world, abort = make ~attempt in
      let r =
        Interp.run ~max_steps:budget.Search.max_steps_per_attempt ?abort
          labeled world
      in
      Spec.apply spec r
    in
    let note, best, peek =
      Search.track_best ?stored:(Search.stored_attempt resume) ~rerun score
    in
    let frontier attempt () =
      {
        Checkpoint.engine = "restarts";
        base_seed = budget.Search.base_seed;
        attempt;
        total_steps = !total_steps;
        pruned = 0;
        prefix = None;
        best = Search.ckpt_best_attempt peek;
        seen = [];
      }
    in
    let tick a =
      Option.iter (fun s -> Checkpoint.tick s (frontier a)) checkpoint
    in
    let fail ~attempts ?deadline_hit () =
      Option.iter (fun s -> Checkpoint.flush s (frontier attempts)) checkpoint;
      Search.exhausted ~attempts ~total_steps:!total_steps ?deadline_hit
        ~incidents:(List.rev !incidents) best
    in
    let make_exec w =
      (* the worker's arena: compiled program, reusable exec state, warm
         trace capacity — shared by every attempt this domain runs *)
      let ctx = Engine.make_ctx labeled in
      fun ~cancel attempt ->
        attempt_job ~attempt ~worker:w (fun () ->
            let world, abort = make ~attempt in
            let inner = match abort with Some a -> a | None -> fun _ -> None in
            let abort e = if cancel () then Some "cancelled" else inner e in
            Engine.run_attempt ~ctx
              ~max_steps:budget.Search.max_steps_per_attempt ~abort
              ?cancel:(Search.wall_cancel deadline) labeled world)
    in
    let first =
      match resume with Some c -> c.Checkpoint.attempt + 1 | None -> 1
    in
    indexed_pool ~tuning ~jobs ~first ~last:budget.Search.max_attempts
      ~make_exec
      ~process:(fun i job ->
        if Search.deadline_passed deadline then
          `Stop (fail ~attempts:(i - 1) ~deadline_hit:true ())
        else
          match job with
          | Job_poisoned inc ->
            incidents := inc :: !incidents;
            tick i;
            `Continue
          | Job_ok (r, inc) ->
            Option.iter (fun inc -> incidents := inc :: !incidents) inc;
            total_steps := !total_steps + r.Interp.steps;
            let r = Spec.apply spec r in
            if accept r then
              `Stop
                (Search.accepted ~attempts:i ~total_steps:!total_steps
                   ~incidents:(List.rev !incidents) r)
            else begin
              note i i r;
              tick i;
              `Continue
            end)
      ~exhausted:(fun () -> fail ~attempts:budget.Search.max_attempts ())
  end

let enumerate_inputs ?(jobs = 1) ?(tuning = default_tuning) ?est_attempt_steps
    ?(score = Search.no_score) ?checkpoint ?resume budget ~spec ~accept
    labeled =
  let jobs = effective_jobs ~tuning ~jobs est_attempt_steps in
  if jobs <= 1 then
    Search.enumerate_inputs ~score ?checkpoint ?resume budget ~spec ~accept
      labeled
  else begin
    let resume = Search.check_resume ~engine:"inputs" budget resume in
    let total_steps =
      ref (match resume with Some c -> c.Checkpoint.total_steps | None -> 0)
    in
    let attempts =
      ref (match resume with Some c -> c.Checkpoint.attempt | None -> 0)
    in
    let incidents = ref [] in
    let deadline = Search.deadline_of budget in
    let rerun prefix =
      Spec.apply spec
        (Engine.exec_inputs ~budget:budget.Search.max_steps_per_attempt
           ~prefix labeled)
          .Engine.result
    in
    let note, best, peek =
      Search.track_best ?stored:(Search.stored_prefix resume) ~rerun score
    in
    let frontier attempt prefix () =
      {
        Checkpoint.engine = "inputs";
        base_seed = budget.Search.base_seed;
        attempt;
        total_steps = !total_steps;
        pruned = 0;
        prefix;
        best = Search.ckpt_best_prefix peek;
        seen = [];
      }
    in
    let tick a prefix =
      Option.iter (fun s -> Checkpoint.tick s (frontier a prefix)) checkpoint
    in
    let fail ~attempts ~prefix ?deadline_hit () =
      Option.iter
        (fun s -> Checkpoint.flush s (frontier attempts prefix))
        checkpoint;
      Search.exhausted ~attempts ~total_steps:!total_steps ?deadline_hit
        ~incidents:(List.rev !incidents) best
    in
    let make_exec w =
      let ctx = Engine.make_ctx labeled in
      fun ~cancel prefix ->
        attempt_job ~attempt:0 ~worker:w (fun () ->
            Engine.exec_inputs ~ctx ~cancel
              ?wall:(Search.wall_cancel deadline)
              ~budget:budget.Search.max_steps_per_attempt ~prefix labeled)
    in
    match resume with
    | Some { Checkpoint.prefix = None; _ } ->
      (* the checkpointed search had exhausted the odometer space *)
      fail ~attempts:!attempts ~prefix:None ()
    | _ ->
      let init_prefix =
        match resume with
        | Some { Checkpoint.prefix = Some p; _ } -> p
        | _ -> [||]
      in
      chain_pool ~tuning ~init_prefix ~jobs ~make_exec
        ~process:(fun ~prefix job ->
          if Search.deadline_passed deadline then
            `Stop
              (fail ~attempts:!attempts ~prefix:(Some prefix)
                 ~deadline_hit:true ())
          else
            match job with
            | Job_poisoned inc ->
              (* no fan-out sizes, so the odometer cannot advance past
                 this prefix: end the search gracefully *)
              incr attempts;
              incidents :=
                { inc with Search.at_attempt = !attempts } :: !incidents;
              `Stop (fail ~attempts:!attempts ~prefix:(Some prefix) ())
            | Job_ok (probe, inc) ->
              Option.iter
                (fun inc ->
                  incidents :=
                    { inc with Search.at_attempt = !attempts + 1 }
                    :: !incidents)
                inc;
              if !attempts >= budget.Search.max_attempts then
                `Stop (fail ~attempts:!attempts ~prefix:(Some prefix) ())
              else begin
                incr attempts;
                let r = probe.Engine.result in
                total_steps := !total_steps + r.Interp.steps;
                let r = Spec.apply spec r in
                if accept r then
                  `Stop
                    (Search.accepted ~attempts:!attempts
                       ~total_steps:!total_steps
                       ~incidents:(List.rev !incidents)
                       r)
                else begin
                  note !attempts prefix r;
                  let next = Engine.advance prefix probe.Engine.sizes in
                  tick !attempts next;
                  if !attempts >= budget.Search.max_attempts then
                    `Stop (fail ~attempts:!attempts ~prefix:next ())
                  else `Advance probe.Engine.sizes
                end
              end)
        ~exhausted:(fun () -> fail ~attempts:!attempts ~prefix:None ())
        ()
  end

let dfs_schedules ?(jobs = 1) ?(tuning = default_tuning) ?est_attempt_steps
    ?(score = Search.no_score) ?(prune = true) ?checkpoint ?resume budget
    ~spec ~accept labeled =
  let jobs = effective_jobs ~tuning ~jobs est_attempt_steps in
  if jobs <= 1 then
    Search.dfs_schedules ~score ~prune ?checkpoint ?resume budget ~spec
      ~accept labeled
  else begin
    let resume = Search.check_resume ~engine:"dfs" budget resume in
    let seen = if prune then Some (Engine.Seen.create ()) else None in
    (match (seen, resume) with
    | Some s, Some c -> List.iter (Engine.Seen.add s) c.Checkpoint.seen
    | _ -> ());
    let pruning =
      Option.map (fun seen -> { Engine.seen; plant = false }) seen
    in
    let total_steps =
      ref (match resume with Some c -> c.Checkpoint.total_steps | None -> 0)
    in
    let attempts =
      ref (match resume with Some c -> c.Checkpoint.attempt | None -> 0)
    in
    let pruned =
      ref (match resume with Some c -> c.Checkpoint.pruned | None -> 0)
    in
    let incidents = ref [] in
    let deadline = Search.deadline_of budget in
    let rerun prefix =
      (* a judged candidate was a completed, unpruned run, so re-executing
         its prefix without pruning reproduces it exactly *)
      Spec.apply spec
        (Engine.exec_schedule ~budget:budget.Search.max_steps_per_attempt
           ~prefix labeled)
          .Engine.result
    in
    let note, best, peek =
      Search.track_best ?stored:(Search.stored_prefix resume) ~rerun score
    in
    let frontier attempt prefix () =
      {
        Checkpoint.engine = "dfs";
        base_seed = budget.Search.base_seed;
        attempt;
        total_steps = !total_steps;
        pruned = !pruned;
        prefix;
        best = Search.ckpt_best_prefix peek;
        seen = (match seen with Some s -> Engine.Seen.elements s | None -> []);
      }
    in
    let tick a prefix =
      Option.iter (fun s -> Checkpoint.tick s (frontier a prefix)) checkpoint
    in
    let fail ~attempts ~prefix ?deadline_hit () =
      Option.iter
        (fun s -> Checkpoint.flush s (frontier attempts prefix))
        checkpoint;
      Search.exhausted ~attempts ~total_steps:!total_steps ~pruned:!pruned
        ?deadline_hit
        ~incidents:(List.rev !incidents)
        best
    in
    let make_exec w =
      let ctx = Engine.make_ctx labeled in
      fun ~cancel prefix ->
        attempt_job ~attempt:0 ~worker:w (fun () ->
            Engine.exec_schedule ~ctx ~cancel ?pruning
              ?wall:(Search.wall_cancel deadline)
              ~budget:budget.Search.max_steps_per_attempt ~prefix labeled)
    in
    match resume with
    | Some { Checkpoint.prefix = None; _ } ->
      fail ~attempts:!attempts ~prefix:None ()
    | _ ->
      let init_prefix =
        match resume with
        | Some { Checkpoint.prefix = Some p; _ } -> p
        | _ -> [||]
      in
      chain_pool ~tuning ~init_prefix ~jobs ~make_exec
        ~process:(fun ~prefix job ->
          if Search.deadline_passed deadline then
            `Stop
              (fail ~attempts:!attempts ~prefix:(Some prefix)
                 ~deadline_hit:true ())
          else
            match job with
            | Job_poisoned inc ->
              incr attempts;
              incidents :=
                { inc with Search.at_attempt = !attempts } :: !incidents;
              `Stop (fail ~attempts:!attempts ~prefix:(Some prefix) ())
            | Job_ok (probe, inc) -> (
              Option.iter
                (fun inc ->
                  incidents :=
                    { inc with Search.at_attempt = !attempts + 1 }
                    :: !incidents)
                inc;
              (* Workers run with [plant = false], so a checkpoint hit
                 inside a worker only ever reflects plants from attempts
                 this reducer already processed — always authoritative.
                 Runs that completed before an earlier attempt's plants
                 landed are re-classified here, charged only the steps the
                 sequential search would have executed before cutting them
                 short. *)
              match Engine.classify ?seen probe with
              | Engine.Skipped { steps; sizes } ->
                incr pruned;
                total_steps := !total_steps + steps;
                tick !attempts (Engine.advance prefix sizes);
                `Advance sizes
              | Engine.Attempt (r0, sizes) ->
                if !attempts >= budget.Search.max_attempts then
                  `Stop (fail ~attempts:!attempts ~prefix:(Some prefix) ())
                else begin
                  incr attempts;
                  (match seen with
                  | Some s -> List.iter (Engine.Seen.add s) probe.Engine.plants
                  | None -> ());
                  total_steps := !total_steps + r0.Interp.steps;
                  let r = Spec.apply spec r0 in
                  if accept r then
                    `Stop
                      (Search.accepted ~attempts:!attempts
                         ~total_steps:!total_steps ~pruned:!pruned
                         ~incidents:(List.rev !incidents)
                         r)
                  else begin
                    note !attempts prefix r;
                    let next = Engine.advance prefix sizes in
                    tick !attempts next;
                    if !attempts >= budget.Search.max_attempts then
                      `Stop (fail ~attempts:!attempts ~prefix:next ())
                    else `Advance sizes
                  end
                end))
        ~exhausted:(fun () -> fail ~attempts:!attempts ~prefix:None ())
        ()
  end

(* ------------------------------------------------------------------ *)

let scan_engine = "scan"

let check_scan_resume ~from = function
  | None -> None
  | Some (ck : Checkpoint.t) ->
    if not (String.equal ck.Checkpoint.engine scan_engine) then
      invalid_arg
        (Printf.sprintf
           "first_success: cannot resume a %S checkpoint in a seed scan"
           ck.Checkpoint.engine);
    if ck.Checkpoint.base_seed <> from then
      invalid_arg
        (Printf.sprintf
           "first_success: checkpoint scan origin %d does not match from=%d"
           ck.Checkpoint.base_seed from);
    Some ck

let first_success ?(jobs = 1) ?(tuning = default_tuning) ?est_attempt_steps
    ?checkpoint ?resume ~from ~count ~f () =
  let jobs = effective_jobs ~tuning ~jobs est_attempt_steps in
  let resume = check_scan_resume ~from resume in
  let last = from + count - 1 in
  let start =
    match resume with Some c -> c.Checkpoint.attempt + 1 | None -> from
  in
  let frontier i () =
    {
      Checkpoint.engine = scan_engine;
      base_seed = from;
      attempt = i;
      total_steps = 0;
      pruned = 0;
      prefix = None;
      best = None;
      seen = [];
    }
  in
  let tick i =
    Option.iter (fun s -> Checkpoint.tick s (frontier i)) checkpoint
  in
  let flush i =
    Option.iter (fun s -> Checkpoint.flush s (frontier i)) checkpoint
  in
  if jobs <= 1 then begin
    let rec go i =
      if i > last then begin
        flush last;
        None
      end
      else
        (* a raising probe poisons only its seed, not the scan *)
        match (try f i with _ -> None) with
        | Some v -> Some (i, v)
        | None ->
          tick i;
          go (i + 1)
    in
    go start
  end
  else
    indexed_pool ~tuning ~jobs ~first:start ~last
      ~make_exec:(fun w ->
        fun ~cancel:_ i -> attempt_job ~attempt:i ~worker:w (fun () -> f i))
      ~process:(fun i job ->
        match job with
        | Job_poisoned _ ->
          tick i;
          `Continue
        | Job_ok (Some v, _) -> `Stop (Some (i, v))
        | Job_ok (None, _) ->
          tick i;
          `Continue)
      ~exhausted:(fun () ->
        flush last;
        None)
