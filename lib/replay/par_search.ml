open Mvm

(* Domain-parallel search with deterministic first-hit semantics.

   Workers on OCaml 5 domains execute candidate attempts speculatively;
   a single in-order reducer (the calling thread) replays the sequential
   engines' bookkeeping exactly — attempts are judged in attempt-index
   order, the accepted result is the lowest-index accepting attempt, and
   [note]/[total_steps] accounting only covers attempts the sequential
   search would have run. Consequently every engine here returns a
   byte-identical {!Search.outcome} to its sequential counterpart; only
   wall-clock time changes.

   Two pool shapes:

   - {!indexed_pool}: attempts are independent functions of their index
     (random restarts, seed scans). Workers claim indices from an atomic
     frontier, bounded to a window ahead of the reducer so speculation
     cannot run away.

   - {!chain_pool}: each attempt's successor depends on fan-out sizes its
     run discovers (the odometer engines). Successor prefixes are
     speculated with the last authoritative sizes and validated by the
     reducer; a misspeculation invalidates only the chain suffix, whose
     in-flight runs are cancelled through the interpreter's abort hook. *)

let window_of jobs = max 2 (jobs * 4)

(* ------------------------------------------------------------------ *)

let indexed_pool ~jobs ~first ~last ~make_exec ~process ~exhausted =
  let m = Mutex.create () in
  let c = Condition.create () in
  let results : (int, ('a, exn) result) Hashtbl.t = Hashtbl.create 64 in
  let next_claim = ref first in
  let next_proc = ref first in
  let stop = Atomic.make false in
  let window = window_of jobs in
  let worker () =
    let exec = make_exec () in
    let cancel () = Atomic.get stop in
    let rec loop () =
      Mutex.lock m;
      while
        (not (Atomic.get stop))
        && !next_claim <= last
        && !next_claim >= !next_proc + window
      do
        Condition.wait c m
      done;
      if Atomic.get stop || !next_claim > last then Mutex.unlock m
      else begin
        let i = !next_claim in
        incr next_claim;
        Mutex.unlock m;
        let r = try Ok (exec ~cancel i) with e -> Error e in
        Mutex.lock m;
        Hashtbl.replace results i r;
        Condition.broadcast c;
        Mutex.unlock m;
        loop ()
      end
    in
    loop ()
  in
  let domains = List.init jobs (fun _ -> Domain.spawn worker) in
  let stop_all () =
    Mutex.lock m;
    Atomic.set stop true;
    Condition.broadcast c;
    Mutex.unlock m;
    List.iter Domain.join domains
  in
  let rec reduce () =
    if !next_proc > last then begin
      stop_all ();
      exhausted ()
    end
    else begin
      Mutex.lock m;
      while not (Hashtbl.mem results !next_proc) do
        Condition.wait c m
      done;
      let r = Hashtbl.find results !next_proc in
      Hashtbl.remove results !next_proc;
      Mutex.unlock m;
      match r with
      | Error e ->
        stop_all ();
        raise e
      | Ok a -> (
        match (try process !next_proc a with e -> stop_all (); raise e) with
        | `Stop out ->
          stop_all ();
          out
        | `Continue ->
          Mutex.lock m;
          incr next_proc;
          Condition.broadcast c;
          Mutex.unlock m;
          reduce ())
    end
  in
  reduce ()

(* ------------------------------------------------------------------ *)

type chain_state =
  | Pending
  | Running
  | Done of Engine.probe

type chain_entry = { prefix : int array; mutable st : chain_state }

let chain_pool ~jobs ~make_exec ~process ~exhausted =
  let m = Mutex.create () in
  let c = Condition.create () in
  let chain : (int, chain_entry) Hashtbl.t = Hashtbl.create 64 in
  let version = Atomic.make 0 in
  let stop = Atomic.make false in
  let error : exn option ref = ref None in
  let next_proc = ref 0 in
  let spec_hi = ref 1 in
  let guess : int list ref = ref [] in
  let window = window_of jobs in
  Hashtbl.replace chain 0 { prefix = [||]; st = Pending };
  (* speculative generation: extend the chain with the reducer's best
     guess of successor prefixes (advance under the last authoritative
     sizes). Caller holds [m]. *)
  let rec gen () =
    if !spec_hi < !next_proc + window then
      match Hashtbl.find_opt chain (!spec_hi - 1) with
      | Some prev -> (
        match Engine.advance prev.prefix !guess with
        | Some p ->
          Hashtbl.replace chain !spec_hi { prefix = p; st = Pending };
          incr spec_hi;
          gen ()
        | None -> ())
      | None -> ()
  in
  let worker () =
    let exec = make_exec () in
    let rec loop () =
      Mutex.lock m;
      let rec find i =
        if i >= !spec_hi then None
        else
          match Hashtbl.find_opt chain i with
          | Some e when e.st = Pending -> Some e
          | _ -> find (i + 1)
      in
      let rec wait_task () =
        if Atomic.get stop then None
        else
          match find !next_proc with
          | Some e -> Some e
          | None ->
            Condition.wait c m;
            wait_task ()
      in
      match wait_task () with
      | None -> Mutex.unlock m
      | Some e ->
        e.st <- Running;
        let myv = Atomic.get version in
        Mutex.unlock m;
        let cancel () = Atomic.get stop || Atomic.get version <> myv in
        let r = try Ok (exec ~cancel e.prefix) with ex -> Error ex in
        Mutex.lock m;
        (if Atomic.get version = myv then
           match r with
           | Ok probe ->
             e.st <- Done probe;
             Condition.broadcast c
           | Error ex ->
             if !error = None then error := Some ex;
             Atomic.set stop true;
             Condition.broadcast c);
        Mutex.unlock m;
        loop ()
    in
    loop ()
  in
  let domains = List.init jobs (fun _ -> Domain.spawn worker) in
  let stop_all () =
    Mutex.lock m;
    Atomic.set stop true;
    Condition.broadcast c;
    Mutex.unlock m;
    List.iter Domain.join domains
  in
  let rec reduce () =
    Mutex.lock m;
    let entry = Hashtbl.find chain !next_proc in
    while
      (match entry.st with Done _ -> false | Pending | Running -> true)
      && !error = None
    do
      Condition.wait c m
    done;
    match !error with
    | Some ex ->
      Mutex.unlock m;
      stop_all ();
      raise ex
    | None -> (
      let probe = match entry.st with Done p -> p | _ -> assert false in
      Mutex.unlock m;
      match
        (try process ~prefix:entry.prefix probe
         with e -> stop_all (); raise e)
      with
      | `Stop out ->
        stop_all ();
        out
      | `Advance sizes -> (
        Mutex.lock m;
        guess := sizes;
        match Engine.advance entry.prefix sizes with
        | None ->
          Mutex.unlock m;
          stop_all ();
          exhausted ()
        | Some np ->
          let j = !next_proc in
          (match Hashtbl.find_opt chain (j + 1) with
          | Some e1 when e1.prefix = np -> ()
          | _ ->
            (* misspeculation: drop the chain suffix; stale in-flight runs
               see the version bump and cancel themselves *)
            Atomic.incr version;
            let rec drop i =
              if Hashtbl.mem chain i then begin
                Hashtbl.remove chain i;
                drop (i + 1)
              end
            in
            drop (j + 1);
            Hashtbl.replace chain (j + 1) { prefix = np; st = Pending };
            spec_hi := j + 2);
          Hashtbl.remove chain j;
          next_proc := j + 1;
          gen ();
          Condition.broadcast c;
          Mutex.unlock m;
          reduce ()))
  in
  reduce ()

(* ------------------------------------------------------------------ *)
(* engines *)

let random_restarts ?(jobs = 1) ?(score = Search.no_score) budget ~make ~spec
    ~accept labeled =
  if jobs <= 1 then Search.random_restarts ~score budget ~make ~spec ~accept labeled
  else begin
    let total_steps = ref 0 in
    let note, best = Search.track_best score in
    let make_exec () =
      let cap = ref None in
      fun ~cancel attempt ->
        let world, abort = make ~attempt in
        let inner = match abort with Some a -> a | None -> fun _ -> None in
        let abort e = if cancel () then Some "cancelled" else inner e in
        let r =
          Interp.run ~max_steps:budget.Search.max_steps_per_attempt ~abort
            ?trace_capacity:!cap labeled world
        in
        cap := Some (Trace.length r.Interp.trace);
        r
    in
    indexed_pool ~jobs ~first:1 ~last:budget.Search.max_attempts ~make_exec
      ~process:(fun i r ->
        total_steps := !total_steps + r.Interp.steps;
        let r = Spec.apply spec r in
        if accept r then
          `Stop (Search.accepted ~attempts:i ~total_steps:!total_steps r)
        else begin
          note i r;
          `Continue
        end)
      ~exhausted:(fun () ->
        Search.exhausted ~attempts:budget.Search.max_attempts
          ~total_steps:!total_steps best)
  end

let enumerate_inputs ?(jobs = 1) ?(score = Search.no_score) budget ~spec
    ~accept labeled =
  if jobs <= 1 then Search.enumerate_inputs ~score budget ~spec ~accept labeled
  else begin
    let total_steps = ref 0 in
    let attempts = ref 0 in
    let note, best = Search.track_best score in
    let make_exec () =
      let cap = ref None in
      fun ~cancel prefix ->
        let p =
          Engine.exec_inputs ~cancel ?trace_capacity:!cap
            ~budget:budget.Search.max_steps_per_attempt ~prefix labeled
        in
        cap := Some (Trace.length p.Engine.result.Interp.trace);
        p
    in
    let stats_exhausted () =
      Search.exhausted ~attempts:!attempts ~total_steps:!total_steps best
    in
    chain_pool ~jobs ~make_exec
      ~process:(fun ~prefix:_ probe ->
        if !attempts >= budget.Search.max_attempts then `Stop (stats_exhausted ())
        else begin
          incr attempts;
          let r = probe.Engine.result in
          total_steps := !total_steps + r.Interp.steps;
          let r = Spec.apply spec r in
          if accept r then
            `Stop
              (Search.accepted ~attempts:!attempts ~total_steps:!total_steps r)
          else begin
            note !attempts r;
            if !attempts >= budget.Search.max_attempts then
              `Stop (stats_exhausted ())
            else `Advance probe.Engine.sizes
          end
        end)
      ~exhausted:stats_exhausted
  end

let dfs_schedules ?(jobs = 1) ?(score = Search.no_score) ?(prune = true) budget
    ~spec ~accept labeled =
  if jobs <= 1 then Search.dfs_schedules ~score ~prune budget ~spec ~accept labeled
  else begin
    let seen = if prune then Some (Engine.Seen.create ()) else None in
    let pruning =
      Option.map (fun seen -> { Engine.seen; plant = false }) seen
    in
    let total_steps = ref 0 in
    let attempts = ref 0 in
    let pruned = ref 0 in
    let note, best = Search.track_best score in
    let make_exec () =
      let cap = ref None in
      fun ~cancel prefix ->
        let p =
          Engine.exec_schedule ~cancel ?pruning ?trace_capacity:!cap
            ~budget:budget.Search.max_steps_per_attempt ~prefix labeled
        in
        cap := Some (Trace.length p.Engine.result.Interp.trace);
        p
    in
    let stats_exhausted () =
      Search.exhausted ~attempts:!attempts ~total_steps:!total_steps
        ~pruned:!pruned best
    in
    chain_pool ~jobs ~make_exec
      ~process:(fun ~prefix:_ probe ->
        (* Workers run with [plant = false], so a checkpoint hit inside a
           worker only ever reflects plants from attempts this reducer
           already processed — always authoritative. Runs that completed
           before an earlier attempt's plants landed are re-classified
           here, charged only the steps the sequential search would have
           executed before cutting them short. *)
        match Engine.classify ?seen probe with
        | Engine.Skipped { steps; sizes } ->
          incr pruned;
          total_steps := !total_steps + steps;
          `Advance sizes
        | Engine.Attempt (r0, sizes) ->
          if !attempts >= budget.Search.max_attempts then
            `Stop (stats_exhausted ())
          else begin
            incr attempts;
            (match seen with
            | Some s -> List.iter (Engine.Seen.add s) probe.Engine.plants
            | None -> ());
            total_steps := !total_steps + r0.Interp.steps;
            let r = Spec.apply spec r0 in
            if accept r then
              `Stop
                (Search.accepted ~attempts:!attempts
                   ~total_steps:!total_steps ~pruned:!pruned r)
            else begin
              note !attempts r;
              if !attempts >= budget.Search.max_attempts then
                `Stop (stats_exhausted ())
              else `Advance sizes
            end
          end)
      ~exhausted:stats_exhausted
  end

(* ------------------------------------------------------------------ *)

let first_success ?(jobs = 1) ~from ~count ~f () =
  let last = from + count - 1 in
  if jobs <= 1 then begin
    let rec go i =
      if i > last then None
      else match f i with Some v -> Some (i, v) | None -> go (i + 1)
    in
    go from
  end
  else
    indexed_pool ~jobs ~first:from ~last
      ~make_exec:(fun () -> fun ~cancel:_ i -> f i)
      ~process:(fun i v ->
        match v with Some v -> `Stop (Some (i, v)) | None -> `Continue)
      ~exhausted:(fun () -> None)
