(** Replay constraints: what "the replay matches the recording" means for
    each determinism model, in both a final form (accept a completed run)
    and a streaming form (abort a doomed run early, which is what makes
    inference affordable). *)

open Mvm
open Ddet_record

(** [failure_matches log r] — the run exhibits the recorded failure
    (failure determinism's guarantee). *)
val failure_matches : Log.t -> Interp.result -> bool

(** [outputs_match log r] — the run's per-channel outputs equal the logged
    ones exactly (output determinism's guarantee). *)
val outputs_match : Log.t -> Interp.result -> bool

(** [output_prefix_abort log] is a stateful streaming check: aborts as soon
    as an emitted output differs from (or exceeds) the logged sequence for
    its channel. Fresh state per run — build one per attempt. *)
val output_prefix_abort : Log.t -> Event.t -> string option

(** [both a b] combines two abort checks (first hit wins). *)
val both :
  (Event.t -> string option) ->
  (Event.t -> string option) ->
  Event.t ->
  string option

(** [closeness log r] scores in [\[0, 1\]] how near a candidate run came
    to the recording: 0.5 for reproducing the recorded failure plus 0.5
    weighted by the matched per-channel output prefix (just the failure
    half when the log has no outputs). Ranks best-effort candidates for
    {!Search.partial} outcomes; never used for acceptance. *)
val closeness : Log.t -> Interp.result -> float
