open Ddet_record

type t = {
  log : Log.t;
  evidence : (string * Sharded_log.shard_status) list;
  lost : string list;
  complete : bool;
  order_exact : bool;
  edges_enforced : Causal.edge list;
  edges_dropped : Causal.edge list;
}

let stitch (l : Sharded_log.loaded) =
  let shards = Array.of_list l.Sharded_log.shards in
  let queues =
    Array.map
      (fun (s : Sharded_log.shard) ->
        if Sharded_log.shard_ok s then
          match s.Sharded_log.log with
          | Some slog ->
            let q = Queue.create () in
            List.iter (fun e -> Queue.push e q) slog.Log.entries;
            Some q
          | None -> None
        else None)
      shards
  in
  let out = ref [] in
  let emit e = out := e :: !out in
  (* walk the manifest's interleaving; a lost node's runs are skipped
     (the entries are gone — that is the hole partial-evidence search
     fills), a salvaged node's run stops when its queue runs dry *)
  List.iter
    (fun (pos, n) ->
      if pos >= 0 && pos < Array.length queues then
        match queues.(pos) with
        | None -> ()
        | Some q ->
          for _ = 1 to n do
            if not (Queue.is_empty q) then emit (Queue.pop q)
          done)
    l.Sharded_log.order;
  let emitted_by_order = List.length !out in
  (* anything the recovered manifest never accounted for: append per
     node, in node order — within-node order is still the shard's truth,
     only the cross-node weave is unknown here *)
  let leftover_nodes = ref 0 in
  Array.iter
    (fun q ->
      match q with
      | Some q when not (Queue.is_empty q) ->
        incr leftover_nodes;
        Queue.iter emit q
      | _ -> ())
    queues;
  let entries = List.rev !out in
  let order_exact =
    !leftover_nodes = 0 || (emitted_by_order = 0 && !leftover_nodes <= 1)
  in
  let evidence =
    List.map
      (fun (s : Sharded_log.shard) -> (s.Sharded_log.node, s.Sharded_log.status))
      l.Sharded_log.shards
  in
  let lost =
    List.filter_map
      (fun (s : Sharded_log.shard) ->
        if Sharded_log.shard_ok s then None else Some s.Sharded_log.node)
      l.Sharded_log.shards
  in
  let alive node = not (List.mem node lost) in
  let edges_enforced, edges_dropped =
    List.partition
      (fun (e : Causal.edge) ->
        alive e.Causal.send_node && alive e.Causal.recv_node)
      l.Sharded_log.edges
  in
  let complete =
    l.Sharded_log.manifest_complete
    && List.for_all
         (fun (s : Sharded_log.shard) -> s.Sharded_log.status = Sharded_log.Intact)
         l.Sharded_log.shards
    && order_exact
  in
  let log =
    Log.make
      ?faults:l.Sharded_log.faults
      ~recorder:
        (if l.Sharded_log.recorder = "" then "stitched"
         else l.Sharded_log.recorder)
      ~entries ~base_steps:l.Sharded_log.base_steps
      ~failure:l.Sharded_log.failure ()
  in
  let module T = Ddet_obs.Tracer in
  List.iter
    (fun (_, st) -> T.count ("stitch.shard." ^ Sharded_log.status_name st) 1)
    evidence;
  T.count "stitch.edges_enforced" (List.length edges_enforced);
  T.count "stitch.edges_dropped" (List.length edges_dropped);
  T.instant_ "stitch.done"
    ~args:
      [
        ("nodes", T.Count (List.length evidence));
        ("lost", T.Count (List.length lost));
        ("complete", T.Count (if complete then 1 else 0));
      ];
  {
    log;
    evidence;
    lost;
    complete;
    order_exact;
    edges_enforced;
    edges_dropped;
  }

let survivors t =
  List.filter_map
    (fun (n, _) -> if List.mem n t.lost then None else Some n)
    t.evidence

let pp ppf t =
  Format.fprintf ppf "stitched %d entr%s from %d/%d node(s)%s"
    (List.length t.log.Log.entries)
    (if List.length t.log.Log.entries = 1 then "y" else "ies")
    (List.length t.evidence - List.length t.lost)
    (List.length t.evidence)
    (if t.complete then " (complete)"
     else if t.order_exact then " (partial, order exact)"
     else " (partial, order approximate)");
  List.iter
    (fun (n, st) ->
      Format.fprintf ppf "@ %-12s %s" n (Sharded_log.status_name st))
    t.evidence;
  if t.lost <> [] then
    Format.fprintf ppf "@ lost: %s" (String.concat ", " t.lost);
  Format.fprintf ppf "@ causal edges: %d enforced, %d lost with their nodes"
    (List.length t.edges_enforced)
    (List.length t.edges_dropped)
