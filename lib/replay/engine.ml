open Mvm

(* Shared machinery of the enumeration engines: the decision odometers,
   instrumented worlds, and single-attempt executors that both the
   sequential drivers (Search) and the domain-parallel drivers
   (Par_search) are built from. One attempt here is a pure function of
   its (prefix, budget, shared seen-set snapshot) — that is what lets
   Par_search run attempts speculatively on worker domains and still
   reproduce the sequential search byte for byte. *)

(* ------------------------------------------------------------------ *)
(* seen-set: digests of already-covered scheduling states. Workers on
   other domains consult it concurrently at one point per run, so it
   carries its own lock. Only the reducing side ever adds (see
   Par_search); in sequential search the runner is its own reducer. *)

module Seen = struct
  type t = { tbl : (int, unit) Hashtbl.t; lock : Mutex.t }

  let create () = { tbl = Hashtbl.create 256; lock = Mutex.create () }

  let mem t d =
    Mutex.lock t.lock;
    let r = Hashtbl.mem t.tbl d in
    Mutex.unlock t.lock;
    r

  let add t d =
    Mutex.lock t.lock;
    Hashtbl.replace t.tbl d ();
    Mutex.unlock t.lock

  (* snapshot for checkpointing; replant with [add] on resume *)
  let elements t =
    Mutex.lock t.lock;
    let r = Hashtbl.fold (fun d () acc -> d :: acc) t.tbl [] in
    Mutex.unlock t.lock;
    List.sort compare r
end

(* ------------------------------------------------------------------ *)
(* odometer *)

let advance prefix sizes =
  (* little-endian counting over the decision digits: bump the shallowest
     digit with room and reset everything below it. Varying the earliest
     decisions first matters for schedule search — races live in the early
     interleaving, and a deepest-first order would only permute the tail
     of the run within any realistic budget. *)
  let sizes = Array.of_list sizes in
  let n = Array.length sizes in
  let digits = Array.make (max n 0) 0 in
  Array.blit prefix 0 digits 0 (min (Array.length prefix) n);
  let rec bump i =
    if i >= n then None
    else if digits.(i) + 1 < sizes.(i) then begin
      digits.(i) <- digits.(i) + 1;
      Array.fill digits 0 i 0;
      Some digits
    end
    else bump (i + 1)
  in
  bump 0

(* ------------------------------------------------------------------ *)
(* attempt results *)

type early = Ran | Early_pruned | Early_clamped

type probe = {
  result : Interp.result;
  sizes : int list;
      (* discovered digit fan-outs, shallowest first, already truncated
         for the pruned/clamped cases so [advance] skips the dead branch *)
  checkpoint : (int * int * int list) option;
      (* (digest, steps, sizes) at the first post-prefix decision — what
         a reducer needs to re-classify a speculatively completed run as
         pruned after the fact *)
  plants : int list;
      (* digests at every post-prefix decision of a completed run, in
         decision order: the states this run's subtree now covers *)
  early : early;
}

let reason_pruned = "pruned: scheduling state already covered"
let reason_clamped = "clamped: decision fan-out shrank below prefix digit"

(* ------------------------------------------------------------------ *)
(* input odometer: the k-th input of the run takes the domain value at
   the position given by the prefix (0 beyond it); the sizes of visited
   domains are collected so the caller can advance the odometer. *)

let odometer_world prefix sizes =
  let base = World.round_robin () in
  let k = ref 0 in
  {
    base with
    World.name = "enumerate-inputs";
    pick_input =
      (fun ~step:_ ~tid:_ ~chan:_ ~domain ->
        let n = max 1 (List.length domain) in
        let pos = if !k < Array.length prefix then prefix.(!k) else 0 in
        sizes := n :: !sizes;
        incr k;
        match List.nth_opt domain pos with
        | Some v -> v
        | None -> ( match domain with [] -> Value.unit | v :: _ -> v));
  }

let cancel_abort cancel inner e =
  match cancel with
  | Some c when c () -> Some "cancelled"
  | _ -> inner e

(* ------------------------------------------------------------------ *)
(* per-worker execution context (the arena): compile the program once,
   then reuse the interpreter exec state, the pruner's hash tables and a
   warm trace capacity across every attempt that runs on the same domain.
   A ctx must never be shared between concurrent attempts — each worker
   builds its own. *)

type ctx = {
  ctx_compiled : Interp.compiled;
  ctx_state : Interp.state;
  ctx_hash : State_hash.t;
  mutable ctx_cap : int;
      (* last attempt's event count: the next trace starts at the size
         the previous one ended with, so appends almost never regrow *)
}

let make_ctx labeled =
  let compiled = Interp.compile labeled in
  {
    ctx_compiled = compiled;
    ctx_state = Interp.make_state compiled;
    ctx_hash = State_hash.create ();
    ctx_cap = 0;
  }

(* one attempt's interpreter run: the AST walker without a ctx, the
   compiled hot path with one. Explicit [trace_capacity] wins over the
   ctx's warm capacity. *)
let run_attempt ?ctx ?(monitors = []) ~max_steps ~abort ?cancel
    ?trace_capacity labeled world =
  match ctx with
  | None ->
    Interp.run ~max_steps ~monitors ~abort ?cancel ?trace_capacity labeled
      world
  | Some cx ->
    let trace_capacity =
      match trace_capacity with
      | Some _ as c -> c
      | None -> if cx.ctx_cap > 0 then Some cx.ctx_cap else None
    in
    let r =
      Interp.run_compiled ~max_steps ~monitors ~abort ?cancel ?trace_capacity
        ~state:cx.ctx_state cx.ctx_compiled world
    in
    cx.ctx_cap <- Trace.length r.Interp.trace;
    r

let exec_inputs ?ctx ?trace_capacity ?cancel ?wall ~budget:(max_steps : int)
    ~prefix labeled =
  let sizes = ref [] in
  let world = odometer_world prefix sizes in
  let abort = cancel_abort cancel (fun _ -> None) in
  let result =
    run_attempt ?ctx ~max_steps ~abort ?cancel:wall ?trace_capacity labeled
      world
  in
  {
    result;
    sizes = List.rev !sizes;
    checkpoint = None;
    plants = [];
    early = Ran;
  }

(* ------------------------------------------------------------------ *)
(* schedule odometer: decision k picks the prefix[k]-th candidate (sorted
   by tid); past the prefix, the first candidate. [sizes] collects the
   fan-out of every decision point of the run so [advance] can bump the
   shallowest digit with room. Decisions with a single candidate are not
   digits: they cannot be varied.

   Two instrumentation duties ride along:

   - clamping: if a prefix digit meets a smaller fan-out than when the
     prefix was generated, the schedule it denotes duplicates the one
     with digit [n-1]. The run is cut short and the digit's size is
     recorded as the *actual* fan-out, so [advance] carries past it
     instead of re-exploring the same schedule under two prefixes.

   - pruning: at the first decision past the prefix the canonical state
     digest is compared against [seen]; a hit means another explored
     subtree already covers every continuation of this state, so the run
     is cut short and its sizes end at the prefix — the whole subtree is
     skipped. On a miss, completed runs report the digests of all their
     post-prefix decisions as [plants]. *)

type pruning = { seen : Seen.t; plant : bool }

(* The interpreter builds its candidate list in ascending-tid order (both
   the AST walker and the compiled runner), so decisions index the
   candidate list directly — the old List.map |> List.sort here (and even
   a closure-free tid-list copy) was a measurable per-step allocation on
   schedule-heavy searches. *)
let nth_tid cands pos = (List.nth cands pos).World.tid

let schedule_world ?pruning ?hash ~prefix ~sizes ~stop ~checkpoint ~plants ()
    =
  let k = ref 0 in
  let hash =
    match hash with
    | Some h ->
      State_hash.reset h;
      h
    | None -> State_hash.create ()
  in
  let plen = Array.length prefix in
  {
    World.name = "dfs-schedules";
    pick_thread =
      (fun ~step cands ->
        match cands with
        | [ only ] -> only.World.tid
        | _ ->
          let n = List.length cands in
          let i = !k in
          incr k;
          if i < plen then begin
            sizes := n :: !sizes;
            let pos = prefix.(i) in
            if pos >= n then begin
              stop := Some (Early_clamped, reason_clamped);
              nth_tid cands 0
            end
            else nth_tid cands pos
          end
          else begin
            (match pruning with
            | None -> sizes := n :: !sizes
            | Some { seen; plant } ->
              let d = State_hash.digest hash in
              if i = plen then begin
                checkpoint := Some (d, step, List.rev !sizes);
                if Seen.mem seen d then
                  stop := Some (Early_pruned, reason_pruned)
                else begin
                  if plant then Seen.add seen d;
                  plants := d :: !plants;
                  sizes := n :: !sizes
                end
              end
              else begin
                if plant then Seen.add seen d;
                plants := d :: !plants;
                sizes := n :: !sizes
              end);
            nth_tid cands 0
          end);
    pick_input =
      (fun ~step:_ ~tid:_ ~chan:_ ~domain ->
        match domain with [] -> Value.unit | v :: _ -> v);
    on_read = (fun ~step:_ ~tid:_ ~sid:_ ~region:_ ~index:_ ~actual -> actual);
    on_recv = (fun ~step:_ ~tid:_ ~sid:_ ~chan:_ ~actual -> actual);
    on_try_recv = (fun ~step:_ ~tid:_ ~sid:_ ~chan:_ -> World.Default);
    passive_try_recv = true;
  }
  |> fun w -> (w, hash)

let exec_schedule ?ctx ?trace_capacity ?pruning ?cancel ?wall
    ~budget:(max_steps : int) ~prefix labeled =
  let sizes = ref [] in
  let stop = ref None in
  let checkpoint = ref None in
  let plants = ref [] in
  let world, hash =
    schedule_world ?pruning
      ?hash:(Option.map (fun cx -> cx.ctx_hash) ctx)
      ~prefix ~sizes ~stop ~checkpoint ~plants ()
  in
  let monitors =
    match pruning with None -> [] | Some _ -> [ State_hash.feed hash ]
  in
  let abort = cancel_abort cancel (fun _ -> Option.map snd !stop) in
  let result =
    run_attempt ?ctx ~monitors ~max_steps ~abort ?cancel:wall ?trace_capacity
      labeled world
  in
  let early = match !stop with Some (e, _) -> e | None -> Ran in
  {
    result;
    sizes = List.rev !sizes;
    checkpoint = !checkpoint;
    plants = List.rev !plants;
    early;
  }

(* ------------------------------------------------------------------ *)
(* authoritative classification: what the in-order reducer does with a
   probe that may have been executed speculatively. A run that completed
   on a worker before an earlier attempt planted its checkpoint state is
   re-classified as pruned here, charged only the steps the sequential
   search would have executed before cutting it short. *)

type verdict =
  | Attempt of Interp.result * int list  (** judge it; advance with sizes *)
  | Skipped of { steps : int; sizes : int list }
      (** pruned or clamped: uncounted, advance with the truncated sizes *)

let classify ?seen probe =
  match probe.early with
  | Early_clamped | Early_pruned ->
    Skipped { steps = probe.result.Interp.steps; sizes = probe.sizes }
  | Ran -> (
    match (seen, probe.checkpoint) with
    | Some seen, Some (d, steps, sizes) when Seen.mem seen d ->
      Skipped { steps; sizes }
    | _ -> Attempt (probe.result, probe.sizes))
