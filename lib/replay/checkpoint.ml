open Ddet_record

type best = {
  b_closeness : float;
  b_attempt : int;
  b_prefix : int array option;
}

type t = {
  engine : string;
  base_seed : int;
  attempt : int;
  total_steps : int;
  pruned : int;
  prefix : int array option;
  best : best option;
  seen : int list;
}

let magic = "ddet-ckpt v1"

(* append " i1 i2 ..." without the quadratic acc ^ " " ^ ... rebuild — a
   DFS frontier's seen-list carries thousands of digests, and the old
   string fold was the dominant cost of every tick *)
let add_ints b ints =
  List.iter
    (fun i ->
      Buffer.add_char b ' ';
      Buffer.add_string b (string_of_int i))
    ints

let add_int_array b a = add_ints b (Array.to_list a)

(* The payload is everything before the [end] line; the trailer CRC covers
   its exact bytes. Closeness uses %h (hex float) so the resumed engine
   compares candidates against bit-identical scores. [b] is cleared and
   reused — a sink serialises into the same buffer for its whole life. *)
let payload_into b t =
  Buffer.clear b;
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  add "%s" magic;
  add "engine %s" t.engine;
  add "base-seed %d" t.base_seed;
  add "attempt %d" t.attempt;
  add "steps %d" t.total_steps;
  add "pruned %d" t.pruned;
  (match t.prefix with
  | None -> ()
  | Some p ->
    Buffer.add_string b "prefix";
    add_int_array b p;
    Buffer.add_char b '\n');
  (match t.best with
  | None -> ()
  | Some bst -> (
    match bst.b_prefix with
    | None -> add "best %h %d seed" bst.b_closeness bst.b_attempt
    | Some p ->
      Printf.ksprintf (Buffer.add_string b) "best %h %d prefix"
        bst.b_closeness bst.b_attempt;
      add_int_array b p;
      Buffer.add_char b '\n'));
  (match t.seen with
  | [] -> ()
  | ds ->
    Buffer.add_string b "seen";
    add_ints b ds;
    Buffer.add_char b '\n');
  Buffer.contents b

let to_payload t = payload_into (Buffer.create 256) t

let write_payload path payload =
  Log_io.atomic_write path
    (payload ^ Printf.sprintf "end %s\n" (Log_io.crc_hex payload))

let write path t = write_payload path (to_payload t)

(* ------------------------------------------------------------------ *)
(* parsing *)

let parse_ints tokens =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | tok :: rest -> (
      match int_of_string_opt tok with
      | Some i -> go (i :: acc) rest
      | None -> None)
  in
  go [] tokens

let load path =
  let ( let* ) = Result.bind in
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let* contents =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> Ok (In_channel.input_all ic))
    with Sys_error e -> Error e
  in
  let lines =
    match String.split_on_char '\n' contents with
    | ls -> List.filter (fun l -> String.trim l <> "") ls
  in
  match List.rev lines with
  | [] -> fail "%s: empty checkpoint file" path
  | last :: rev_payload -> (
    let* () =
      match lines with
      | m :: _ when String.equal (String.trim m) magic -> Ok ()
      | _ -> fail "%s: not a ddet-ckpt v1 file" path
    in
    let* crc =
      match String.split_on_char ' ' (String.trim last) with
      | [ "end"; crc ] -> Ok crc
      | _ -> fail "%s: missing end trailer (torn checkpoint?)" path
    in
    let payload =
      String.concat "\n" (List.rev rev_payload) ^ "\n"
    in
    let* () =
      if String.equal crc (Log_io.crc_hex payload) then Ok ()
      else fail "%s: checkpoint CRC mismatch (torn or corrupted file)" path
    in
    let engine = ref None
    and base_seed = ref None
    and attempt = ref None
    and steps = ref None
    and pruned = ref None
    and prefix = ref None
    and best = ref None
    and seen = ref [] in
    let bad = ref None in
    let set_bad line = if !bad = None then bad := Some line in
    List.iter
      (fun line ->
        match String.split_on_char ' ' (String.trim line) with
        | [ "engine"; e ] -> engine := Some e
        | [ "base-seed"; n ] -> base_seed := int_of_string_opt n
        | [ "attempt"; n ] -> attempt := int_of_string_opt n
        | [ "steps"; n ] -> steps := int_of_string_opt n
        | [ "pruned"; n ] -> pruned := int_of_string_opt n
        | "prefix" :: ints -> (
          match parse_ints ints with
          | Some is -> prefix := Some (Array.of_list is)
          | None -> set_bad line)
        | "best" :: c :: a :: key -> (
          match (float_of_string_opt c, int_of_string_opt a, key) with
          | Some c, Some a, [ "seed" ] ->
            best := Some { b_closeness = c; b_attempt = a; b_prefix = None }
          | Some c, Some a, "prefix" :: ints -> (
            match parse_ints ints with
            | Some is ->
              best :=
                Some
                  {
                    b_closeness = c;
                    b_attempt = a;
                    b_prefix = Some (Array.of_list is);
                  }
            | None -> set_bad line)
          | _ -> set_bad line)
        | "seen" :: ints -> (
          match parse_ints ints with
          | Some is -> seen := is
          | None -> set_bad line)
        | _ -> set_bad line)
      (List.rev rev_payload |> List.tl);
    match !bad with
    | Some line -> fail "%s: unparsable checkpoint line %S" path line
    | None -> (
      match (!engine, !base_seed, !attempt, !steps, !pruned) with
      | Some engine, Some base_seed, Some attempt, Some total_steps, Some pruned
        ->
        Ok
          {
            engine;
            base_seed;
            attempt;
            total_steps;
            pruned;
            prefix = !prefix;
            best = !best;
            seen = !seen;
          }
      | _ -> fail "%s: checkpoint is missing required fields" path))

(* ------------------------------------------------------------------ *)
(* sink *)

type sink = {
  s_path : string;
  every : int;
  mutable since : int;
  s_buf : Buffer.t;  (* reused serialization buffer *)
  mutable s_last : string option;  (* payload of the last write *)
}

let sink ?(every = 32) path =
  if every < 1 then invalid_arg "Checkpoint.sink: every must be >= 1";
  { s_path = path; every; since = 0; s_buf = Buffer.create 1024; s_last = None }

let path s = s.s_path

(* serialise into the sink's buffer and skip the write entirely when the
   frontier payload is byte-identical to what the file already holds —
   searches that prune or spin without advancing their odometer used to
   rewrite the same checkpoint on every tick *)
let persist s frontier =
  let payload = payload_into s.s_buf (frontier ()) in
  match s.s_last with
  | Some prev when String.equal prev payload -> ()
  | _ ->
    write_payload s.s_path payload;
    s.s_last <- Some payload

let tick s frontier =
  s.since <- s.since + 1;
  if s.since >= s.every then begin
    s.since <- 0;
    persist s frontier
  end

let flush s frontier =
  s.since <- 0;
  persist s frontier
