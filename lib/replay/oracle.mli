(** Replay oracles: worlds reconstructed from recording logs.

    Each determinism model turns its log back into a {!Mvm.World.t} that
    forces the recorded projection of the original execution and leaves the
    rest free (to be searched). An oracle may detect mid-run that the
    current execution cannot be consistent with the log (e.g. a recorded
    schedule point would have to execute out of order); its [abort] hook
    reports that so the search can prune the attempt. *)

open Mvm
open Ddet_record

(** A replay world plus its divergence detector. *)
type handle = {
  world : World.t;
  abort : Event.t -> string option;
      (** returns a reason once the run has diverged from the log *)
  violated : unit -> bool;  (** true once divergence was detected *)
}

(** [perfect log] replays a perfect-determinism log: the full recorded
    interleaving is enforced and all inputs are fed back. Divergence is a
    recorder/replayer bug, not an expected outcome. *)
val perfect : Log.t -> handle

(** [value_det ~seed log] replays a value-determinism log: thread schedule
    is free (seeded random), but every shared read, message receive and
    input of thread [t] observes the recorded per-thread value sequence.
    Cross-thread causality is not enforced — iDNA's relaxation. *)
val value_det : seed:int -> Log.t -> handle

(** [rcse ~seed log] replays an RCSE log: the recorded [Cp_sched]
    subsequence is enforced — a thread whose next site matches a *later*
    log entry is held back, the head entry is run when eligible — and
    [Cp_input] values are fed to inputs executed at recorded sites.
    Everything else (data-plane schedule and inputs) is free, seeded
    random: the search layer supplies consistency.

    [strict] (default true) flags any recorded site executing out of log
    order as divergence — correct for code-based selection, whose
    high-fidelity sites are static. Windowed selections (trigger- or
    invariant-driven) record a time slice, so the same sites also run
    legitimately outside the window: with [strict:false] the schedule log
    is not enforced at all — the recorded inputs are still pinned by site,
    and the acceptance constraint judges each searched schedule. *)
val rcse : ?strict:bool -> seed:int -> Log.t -> handle

(** [sync ~seed log] replays a sync-schedule log by enforcing *per-object*
    operation orders (per-channel send/consume order, spawn order, per-lock
    acquisition order), which is what an ODR-style logger records. A
    try_recv whose thread is not the channel's next recorded consumer is
    forced to miss; sends/spawns/locks are scheduled only in recorded
    order; inputs are fed back per-thread. Plain shared-memory race
    outcomes remain free — they are what inference must fill in. *)
val sync : seed:int -> Log.t -> handle

(** Static steering hints for partial-evidence search, produced by the
    static layer (plain data so the replay library needs no dependency on
    it). [lost_tids]/[hot_sids] name the lost threads and the statically
    interesting decision points; [cold_input_tids] the lost threads whose
    inputs provably never influenced surviving evidence. *)
type steer = {
  lost_tids : int list;
  hot_sids : int list;
  cold_input_tids : int list;
}

(** The empty hint set: [partial] with it behaves exactly as without. *)
val no_steer : steer

(** [partial ?steer ~seed log] replays a stitched partial-evidence merge
    ({!Stitch}): the merged order steers scheduling — the cursor's head
    runs whenever it is an eligible candidate, everything else is a
    seeded-random pick over all candidates — and surviving threads'
    inputs are fed back per thread, while threads of lost nodes sample
    their inputs from the domain: the lost evidence is the search
    dimension. Never aborts: the lost node's altered timing legitimately
    shifts how surviving threads interleave, so a stalled cursor is
    expected, not divergence — acceptance and closeness scoring judge
    each attempt instead.

    With [steer], a free pick takes a lost thread sitting at a hot site
    whenever one is eligible (falling back to the uniform pick
    otherwise), and cold threads' unlogged inputs are pinned to the
    domain head instead of sampled — shrinking the search space to the
    dimensions the static communication graph says can matter. *)
val partial : ?steer:steer -> seed:int -> Log.t -> handle

(** [free ~seed] is an unconstrained seeded-random world in handle form —
    the search world for output- and failure-determinism inference. *)
val free : seed:int -> handle
