open Mvm

type budget = {
  max_attempts : int;
  max_steps_per_attempt : int;
  base_seed : int;
}

let default_budget =
  { max_attempts = 2_000; max_steps_per_attempt = 50_000; base_seed = 1 }

type stats = { attempts : int; total_steps : int; success : bool }

type partial = { best : Interp.result; closeness : float; attempt : int }

type outcome = {
  result : Interp.result option;
  partial : partial option;
  stats : stats;
}

(* Best-effort tracking: when no attempt is accepted, the outcome still
   carries the highest-scoring candidate seen, so an exhausted budget
   degrades to a Partial reproduction instead of nothing. The tracker is
   shared by all engines; [score] defaults to "rank nothing". *)
let track_best score =
  let best : partial option ref = ref None in
  let note attempt r =
    let c = score r in
    match !best with
    | Some b when b.closeness >= c -> ()
    | _ -> best := Some { best = r; closeness = c; attempt }
  in
  (note, fun () -> !best)

let exhausted ~attempts ~total_steps best =
  {
    result = None;
    partial = best ();
    stats = { attempts; total_steps; success = false };
  }

let accepted ~attempts ~total_steps r =
  {
    result = Some r;
    partial = None;
    stats = { attempts; total_steps; success = true };
  }

let no_score : Interp.result -> float = fun _ -> 0.

let random_restarts ?(score = no_score) budget ~make ~spec ~accept labeled =
  let total_steps = ref 0 in
  let note, best = track_best score in
  let rec go attempt =
    if attempt > budget.max_attempts then
      exhausted ~attempts:(attempt - 1) ~total_steps:!total_steps best
    else
      let world, abort = make ~attempt in
      let r =
        Interp.run ~max_steps:budget.max_steps_per_attempt ?abort labeled world
      in
      total_steps := !total_steps + r.steps;
      let r = Spec.apply spec r in
      if accept r then accepted ~attempts:attempt ~total_steps:!total_steps r
      else begin
        note attempt r;
        go (attempt + 1)
      end
  in
  go 1

(* Odometer world: the k-th input of the run takes the domain value at the
   position given by the prefix (0 beyond it); the sizes of visited domains
   are collected so the caller can advance the odometer. *)
let odometer_world prefix sizes =
  let base = World.round_robin () in
  let k = ref 0 in
  let n_sizes = ref (List.length !sizes) in
  {
    base with
    World.name = "enumerate-inputs";
    pick_input =
      (fun ~step:_ ~tid:_ ~chan:_ ~domain ->
        let n = max 1 (List.length domain) in
        let pos = if !k < Array.length prefix then prefix.(!k) else 0 in
        (if !k >= !n_sizes then begin
           sizes := n :: !sizes;
           incr n_sizes
         end);
        incr k;
        match List.nth_opt domain pos with
        | Some v -> v
        | None -> ( match domain with [] -> Value.unit | v :: _ -> v));
  }

let advance prefix sizes =
  (* little-endian counting over the decision digits: bump the shallowest
     digit with room and reset everything below it. Varying the earliest
     decisions first matters for schedule search — races live in the early
     interleaving, and a deepest-first order would only permute the tail
     of the run within any realistic budget. *)
  let sizes = Array.of_list sizes in
  let n = Array.length sizes in
  let digits = Array.make (max n 0) 0 in
  Array.blit prefix 0 digits 0 (min (Array.length prefix) n);
  let rec bump i =
    if i >= n then None
    else if digits.(i) + 1 < sizes.(i) then begin
      digits.(i) <- digits.(i) + 1;
      Array.fill digits 0 i 0;
      Some digits
    end
    else bump (i + 1)
  in
  bump 0

let enumerate_inputs ?(score = no_score) budget ~spec ~accept labeled =
  let total_steps = ref 0 in
  let note, best = track_best score in
  let rec go attempt prefix =
    if attempt > budget.max_attempts then
      exhausted ~attempts:(attempt - 1) ~total_steps:!total_steps best
    else begin
      let sizes = ref [] in
      let world = odometer_world prefix sizes in
      let r =
        Interp.run ~max_steps:budget.max_steps_per_attempt labeled world
      in
      total_steps := !total_steps + r.steps;
      let r = Spec.apply spec r in
      if accept r then accepted ~attempts:attempt ~total_steps:!total_steps r
      else begin
        note attempt r;
        match advance prefix (List.rev !sizes) with
        | Some prefix' -> go (attempt + 1) prefix'
        | None -> exhausted ~attempts:attempt ~total_steps:!total_steps best
      end
    end
  in
  go 1 [||]

(* Schedule odometer: decision k picks the prefix[k]-th candidate (sorted
   by tid); past the prefix, the first candidate. [sizes] collects the
   fan-out of every decision point of the run so [advance] can bump the
   deepest digit with room. Decisions with a single candidate are not
   digits: they cannot be varied. *)
let schedule_world prefix sizes =
  let k = ref 0 in
  let n_sizes = ref (List.length !sizes) in
  {
    World.name = "dfs-schedules";
    pick_thread =
      (fun ~step:_ cands ->
        let sorted =
          List.sort compare (List.map (fun c -> c.World.tid) cands)
        in
        match sorted with
        | [ only ] -> only
        | _ ->
          let n = List.length sorted in
          let pos = if !k < Array.length prefix then prefix.(!k) else 0 in
          (if !k >= !n_sizes then begin
             sizes := n :: !sizes;
             incr n_sizes
           end);
          incr k;
          List.nth sorted (min pos (n - 1)));
    pick_input =
      (fun ~step:_ ~tid:_ ~chan:_ ~domain ->
        match domain with [] -> Value.unit | v :: _ -> v);
    on_read = (fun ~step:_ ~tid:_ ~sid:_ ~region:_ ~index:_ ~actual -> actual);
    on_recv = (fun ~step:_ ~tid:_ ~sid:_ ~chan:_ ~actual -> actual);
    on_try_recv = (fun ~step:_ ~tid:_ ~sid:_ ~chan:_ -> World.Default);
  }

let dfs_schedules ?(score = no_score) budget ~spec ~accept labeled =
  let total_steps = ref 0 in
  let note, best = track_best score in
  let rec go attempt prefix =
    if attempt > budget.max_attempts then
      exhausted ~attempts:(attempt - 1) ~total_steps:!total_steps best
    else begin
      let sizes = ref [] in
      let world = schedule_world prefix sizes in
      let r = Interp.run ~max_steps:budget.max_steps_per_attempt labeled world in
      total_steps := !total_steps + r.Interp.steps;
      let r = Spec.apply spec r in
      if accept r then accepted ~attempts:attempt ~total_steps:!total_steps r
      else begin
        note attempt r;
        match advance prefix (List.rev !sizes) with
        | Some prefix' -> go (attempt + 1) prefix'
        | None -> exhausted ~attempts:attempt ~total_steps:!total_steps best
      end
    end
  in
  go 1 [||]
