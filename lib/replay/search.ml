open Mvm

type budget = {
  max_attempts : int;
  max_steps_per_attempt : int;
  base_seed : int;
  deadline_s : float option;
}

let default_budget =
  {
    max_attempts = 2_000;
    max_steps_per_attempt = 50_000;
    base_seed = 1;
    deadline_s = None;
  }

type incident = {
  at_attempt : int;
  worker : int option;
  error : string;
  retries : int;
  poisoned : bool;
}

let pp_incident ppf i =
  Format.fprintf ppf "attempt %d%a: %s (%s after %d retr%s)" i.at_attempt
    (fun ppf -> function
      | None -> ()
      | Some w -> Format.fprintf ppf " on worker %d" w)
    i.worker i.error
    (if i.poisoned then "poisoned" else "requeued")
    i.retries
    (if i.retries = 1 then "y" else "ies")

type stats = {
  attempts : int;
  total_steps : int;
  pruned : int;
  success : bool;
  deadline_hit : bool;
  incidents : incident list;
}

type partial = { best : Interp.result; closeness : float; attempt : int }

type outcome = {
  result : Interp.result option;
  partial : partial option;
  stats : stats;
}

(* ------------------------------------------------------------------ *)
(* deadlines: the budget carries a relative wall-clock allowance; each
   engine converts it to an absolute instant once at start. Between
   attempts the check is a plain comparison; inside an attempt it rides
   the interpreter's coarse [cancel] poll (every 128 steps), so a single
   long run cannot blow through the deadline unchecked.

   The instant is monotonic (Obs.Clock, ns), not gettimeofday: an NTP
   step or a suspend would otherwise fire every pending deadline at
   once — or starve them forever if the clock stepped back. *)

let deadline_reason = "deadline"

let deadline_of budget =
  Option.map
    (fun s -> Int64.add (Ddet_obs.Clock.now ()) (Ddet_obs.Clock.ns_of_s s))
    budget.deadline_s

let deadline_passed = function
  | None -> false
  | Some t -> Int64.compare (Ddet_obs.Clock.now ()) t >= 0

let wall_cancel = function
  | None -> None
  | Some t ->
    Some
      (fun () ->
        if Int64.compare (Ddet_obs.Clock.now ()) t >= 0 then
          Some deadline_reason
        else None)

(* ------------------------------------------------------------------ *)
(* Best-effort tracking: when no attempt is accepted, the outcome still
   carries the highest-scoring candidate seen, so an exhausted budget
   degrades to a Partial reproduction instead of nothing.

   Checkpoints cannot afford to serialise the candidate's full
   Interp.result, so the tracker works in terms of a rerun key (the
   attempt index for seeded restarts, the decision prefix for odometer
   engines): a best candidate restored from a checkpoint is held as
   (closeness, attempt, key) and only rematerialised — by
   deterministically re-executing that one attempt — if the search ends
   without a hit. Ties keep the earlier candidate, which is also why a
   resumed tracker seeded with the stored best stays faithful: the stored
   candidate was the earliest of its score. *)

type ('k, 'r) cell =
  | B_none
  | B_live of 'r * 'k  (* a partial we have in memory, plus its key *)
  | B_stored of float * int * 'k  (* restored from a checkpoint *)

let track_best (type k) ?stored ~(rerun : k -> Interp.result) score =
  let best : (k, partial) cell ref =
    ref
      (match stored with
      | None -> B_none
      | Some (c, a, key) -> B_stored (c, a, key))
  in
  let note attempt key r =
    let c = score r in
    let keep =
      match !best with
      | B_none -> false
      | B_live (p, _) -> p.closeness >= c
      | B_stored (sc, _, _) -> sc >= c
    in
    if not keep then best := B_live ({ best = r; closeness = c; attempt }, key)
  in
  let get () =
    match !best with
    | B_none -> None
    | B_live (p, _) -> Some p
    | B_stored (c, a, key) ->
      Some { best = rerun key; closeness = c; attempt = a }
  in
  let peek () =
    match !best with
    | B_none -> None
    | B_live (p, key) -> Some (p.closeness, p.attempt, key)
    | B_stored (c, a, key) -> Some (c, a, key)
  in
  (note, get, peek)

(* every engine — sequential or parallel — funnels its outcome through
   these two constructors on the reducer thread, so this is the one
   place the tracer learns what a search cost *)
let observe (st : stats) =
  let module T = Ddet_obs.Tracer in
  match T.current () with
  | None -> ()
  | Some t ->
    T.bump (Some (T.counter t "search.attempts")) st.attempts;
    T.bump (Some (T.counter t "search.steps")) st.total_steps;
    T.bump (Some (T.counter t "search.pruned")) st.pruned;
    T.bump (Some (T.counter t "search.incidents")) (List.length st.incidents);
    if st.deadline_hit then T.bump (Some (T.counter t "search.deadline_hits")) 1;
    T.instant t "search.done"
      ~args:
        [
          ("attempts", T.Count st.attempts);
          ("accepted", T.Count (if st.success then 1 else 0));
        ]

let exhausted ~attempts ~total_steps ?(pruned = 0) ?(deadline_hit = false)
    ?(incidents = []) best =
  let stats =
    { attempts; total_steps; pruned; success = false; deadline_hit; incidents }
  in
  observe stats;
  { result = None; partial = best (); stats }

let accepted ~attempts ~total_steps ?(pruned = 0) ?(deadline_hit = false)
    ?(incidents = []) r =
  let stats =
    { attempts; total_steps; pruned; success = true; deadline_hit; incidents }
  in
  observe stats;
  { result = Some r; partial = None; stats }

let no_score : Interp.result -> float = fun _ -> 0.

(* ------------------------------------------------------------------ *)
(* site priority: a static analysis hands the search a set of suspect
   sids; attempts then use a biased world that prefers scheduling
   threads whose next statement is a suspect site. The hint only moves
   probability mass, never removes schedules (see World.prioritized). *)

type site_priority = { sids : int list }

let site_prefer { sids } =
  let tbl = Hashtbl.create (List.length sids) in
  List.iter (fun s -> Hashtbl.replace tbl s ()) sids;
  fun (c : World.cand) -> Hashtbl.mem tbl c.World.sid

let priority_world priority ~seed =
  World.prioritized ~seed ~prefer:(site_prefer priority)

(* ------------------------------------------------------------------ *)
(* supervision: one attempt's execution may raise (a hostile world
   callback, a resource blip). The search survives it: the attempt is
   retried a bounded number of times, then poisoned — recorded as an
   incident and skipped — instead of tearing the whole search down. *)

let max_job_retries = 1

let supervised ~attempt ~worker incidents f =
  let rec go ~retries ~last_error =
    match f () with
    | v ->
      (match last_error with
      | Some error ->
        incidents :=
          { at_attempt = attempt; worker; error; retries; poisoned = false }
          :: !incidents
      | None -> ());
      Some v
    | exception e ->
      let error = Printexc.to_string e in
      if retries < max_job_retries then
        go ~retries:(retries + 1) ~last_error:(Some error)
      else begin
        incidents :=
          { at_attempt = attempt; worker; error; retries; poisoned = true }
          :: !incidents;
        None
      end
  in
  go ~retries:0 ~last_error:None

(* ------------------------------------------------------------------ *)
(* checkpointing plumbing shared by the engines *)

let check_resume ~engine budget = function
  | None -> None
  | Some (ck : Checkpoint.t) ->
    if not (String.equal ck.Checkpoint.engine engine) then
      invalid_arg
        (Printf.sprintf
           "Search: cannot resume a %S checkpoint with the %S engine"
           ck.Checkpoint.engine engine);
    if ck.Checkpoint.base_seed <> budget.base_seed then
      invalid_arg
        (Printf.sprintf
           "Search: checkpoint base seed %d does not match budget base seed \
            %d — a resumed search must re-walk the same attempt sequence"
           ck.Checkpoint.base_seed budget.base_seed);
    Some ck

(* the best-candidate key is the attempt index for seeded restarts and
   the decision prefix for the odometer engines, hence two monomorphic
   codecs between the tracker's peek and the checkpoint record *)

let ckpt_best_attempt peek =
  match peek () with
  | None -> None
  | Some (c, a, (_ : int)) ->
    Some { Checkpoint.b_closeness = c; b_attempt = a; b_prefix = None }

let ckpt_best_prefix peek =
  match peek () with
  | None -> None
  | Some (c, a, p) ->
    Some { Checkpoint.b_closeness = c; b_attempt = a; b_prefix = Some p }

let stored_attempt = function
  | Some { Checkpoint.best = Some b; _ } ->
    Some (b.Checkpoint.b_closeness, b.b_attempt, b.Checkpoint.b_attempt)
  | _ -> None

let stored_prefix = function
  | Some { Checkpoint.best = Some b; _ } ->
    Option.map
      (fun p -> (b.Checkpoint.b_closeness, b.Checkpoint.b_attempt, p))
      b.Checkpoint.b_prefix
  | _ -> None

(* ------------------------------------------------------------------ *)
(* engines *)

let random_restarts ?(score = no_score) ?checkpoint ?resume budget ~make ~spec
    ~accept labeled =
  let resume = check_resume ~engine:"restarts" budget resume in
  let total_steps =
    ref (match resume with Some c -> c.Checkpoint.total_steps | None -> 0)
  in
  let incidents = ref [] in
  let deadline = deadline_of budget in
  (* the search's arena: program compiled once, interpreter state, hash
     tables and warm trace capacity reused across every attempt *)
  let ctx = Engine.make_ctx labeled in
  let rerun attempt =
    let world, abort = make ~attempt in
    let r =
      Interp.run ~max_steps:budget.max_steps_per_attempt ?abort labeled world
    in
    Spec.apply spec r
  in
  let note, best, peek =
    track_best ?stored:(stored_attempt resume) ~rerun score
  in
  let frontier attempt () =
    {
      Checkpoint.engine = "restarts";
      base_seed = budget.base_seed;
      attempt;
      total_steps = !total_steps;
      pruned = 0;
      prefix = None;
      best = ckpt_best_attempt peek;
      seen = [];
    }
  in
  let tick attempt =
    Option.iter (fun s -> Checkpoint.tick s (frontier attempt)) checkpoint
  in
  let flush attempt =
    Option.iter (fun s -> Checkpoint.flush s (frontier attempt)) checkpoint
  in
  let fail ~attempts ?deadline_hit () =
    flush attempts;
    exhausted ~attempts ~total_steps:!total_steps ?deadline_hit
      ~incidents:(List.rev !incidents) best
  in
  let exec attempt =
    let world, abort = make ~attempt in
    let abort = match abort with Some a -> a | None -> fun _ -> None in
    Engine.run_attempt ~ctx ~max_steps:budget.max_steps_per_attempt ~abort
      ?cancel:(wall_cancel deadline) labeled world
  in
  let rec go attempt =
    if attempt > budget.max_attempts then fail ~attempts:(attempt - 1) ()
    else if deadline_passed deadline then
      fail ~attempts:(attempt - 1) ~deadline_hit:true ()
    else
      match
        supervised ~attempt ~worker:None incidents (fun () -> exec attempt)
      with
      | None ->
        (* poisoned: this attempt is lost, the search is not *)
        tick attempt;
        go (attempt + 1)
      | Some r ->
        total_steps := !total_steps + r.Interp.steps;
        let r = Spec.apply spec r in
        if accept r then
          accepted ~attempts:attempt ~total_steps:!total_steps
            ~incidents:(List.rev !incidents) r
        else begin
          note attempt attempt r;
          tick attempt;
          go (attempt + 1)
        end
  in
  go (match resume with Some c -> c.Checkpoint.attempt + 1 | None -> 1)

let advance = Engine.advance

let enumerate_inputs ?(score = no_score) ?checkpoint ?resume budget ~spec
    ~accept labeled =
  let resume = check_resume ~engine:"inputs" budget resume in
  let total_steps =
    ref (match resume with Some c -> c.Checkpoint.total_steps | None -> 0)
  in
  let incidents = ref [] in
  let deadline = deadline_of budget in
  let ctx = Engine.make_ctx labeled in
  let rerun prefix =
    Spec.apply spec
      (Engine.exec_inputs ~budget:budget.max_steps_per_attempt ~prefix labeled)
        .Engine.result
  in
  let note, best, peek =
    track_best ?stored:(stored_prefix resume) ~rerun score
  in
  let frontier attempt prefix () =
    {
      Checkpoint.engine = "inputs";
      base_seed = budget.base_seed;
      attempt;
      total_steps = !total_steps;
      pruned = 0;
      prefix;
      best = ckpt_best_prefix peek;
      seen = [];
    }
  in
  let tick attempt prefix =
    Option.iter
      (fun s -> Checkpoint.tick s (frontier attempt prefix))
      checkpoint
  in
  let fail ~attempts ~prefix ?deadline_hit () =
    Option.iter
      (fun s -> Checkpoint.flush s (frontier attempts prefix))
      checkpoint;
    exhausted ~attempts ~total_steps:!total_steps ?deadline_hit
      ~incidents:(List.rev !incidents) best
  in
  let rec go attempt prefix =
    match prefix with
    | None -> fail ~attempts:(attempt - 1) ~prefix:None ()
    | Some prefix ->
      if attempt > budget.max_attempts then
        fail ~attempts:(attempt - 1) ~prefix:(Some prefix) ()
      else if deadline_passed deadline then
        fail ~attempts:(attempt - 1) ~prefix:(Some prefix) ~deadline_hit:true
          ()
      else (
        match
          supervised ~attempt ~worker:None incidents (fun () ->
              Engine.exec_inputs ~ctx
                ?wall:(wall_cancel deadline)
                ~budget:budget.max_steps_per_attempt ~prefix labeled)
        with
        | None ->
          (* poisoned: without the probe's sizes the odometer cannot
             advance past this prefix, so the search ends gracefully
             instead of spinning on a doomed attempt *)
          fail ~attempts:attempt ~prefix:(Some prefix) ()
        | Some p ->
          let r = p.Engine.result in
          total_steps := !total_steps + r.Interp.steps;
          let r = Spec.apply spec r in
          if accept r then
            accepted ~attempts:attempt ~total_steps:!total_steps
              ~incidents:(List.rev !incidents) r
          else begin
            note attempt prefix r;
            let next = advance prefix p.Engine.sizes in
            tick attempt next;
            go (attempt + 1) next
          end)
  in
  match resume with
  | None -> go 1 (Some [||])
  | Some c -> go (c.Checkpoint.attempt + 1) c.Checkpoint.prefix

let dfs_schedules ?(score = no_score) ?(prune = true) ?on_prune ?checkpoint
    ?resume budget ~spec ~accept labeled =
  let resume = check_resume ~engine:"dfs" budget resume in
  let pruning =
    if prune then begin
      let seen = Engine.Seen.create () in
      (match resume with
      | Some c -> List.iter (Engine.Seen.add seen) c.Checkpoint.seen
      | None -> ());
      Some { Engine.seen; plant = true }
    end
    else None
  in
  let total_steps =
    ref (match resume with Some c -> c.Checkpoint.total_steps | None -> 0)
  in
  let pruned =
    ref (match resume with Some c -> c.Checkpoint.pruned | None -> 0)
  in
  let incidents = ref [] in
  let deadline = deadline_of budget in
  let ctx = Engine.make_ctx labeled in
  let rerun prefix =
    (* a candidate judged by the search was a completed, unpruned run, so
       re-executing its prefix without pruning reproduces it exactly *)
    Spec.apply spec
      (Engine.exec_schedule ~budget:budget.max_steps_per_attempt ~prefix
         labeled)
        .Engine.result
  in
  let note, best, peek =
    track_best ?stored:(stored_prefix resume) ~rerun score
  in
  let frontier attempt prefix () =
    {
      Checkpoint.engine = "dfs";
      base_seed = budget.base_seed;
      attempt;
      total_steps = !total_steps;
      pruned = !pruned;
      prefix;
      best = ckpt_best_prefix peek;
      seen =
        (match pruning with
        | Some { Engine.seen; _ } -> Engine.Seen.elements seen
        | None -> []);
    }
  in
  let tick attempt prefix =
    Option.iter
      (fun s -> Checkpoint.tick s (frontier attempt prefix))
      checkpoint
  in
  let fail ~attempts ~prefix ?deadline_hit () =
    Option.iter
      (fun s -> Checkpoint.flush s (frontier attempts prefix))
      checkpoint;
    exhausted ~attempts ~total_steps:!total_steps ~pruned:!pruned
      ?deadline_hit ~incidents:(List.rev !incidents) best
  in
  let rec go attempt prefix =
    match prefix with
    | None -> fail ~attempts:(attempt - 1) ~prefix:None ()
    | Some prefix ->
      if attempt > budget.max_attempts then
        fail ~attempts:(attempt - 1) ~prefix:(Some prefix) ()
      else if deadline_passed deadline then
        fail ~attempts:(attempt - 1) ~prefix:(Some prefix) ~deadline_hit:true
          ()
      else (
        match
          supervised ~attempt ~worker:None incidents (fun () ->
              Engine.exec_schedule ~ctx ?pruning
                ?wall:(wall_cancel deadline)
                ~budget:budget.max_steps_per_attempt ~prefix labeled)
        with
        | None -> fail ~attempts:attempt ~prefix:(Some prefix) ()
        | Some p -> (
          (* The live seen-set check inside the run is authoritative here —
             the runner IS the reducer — so classification reads the probe's
             own verdict rather than re-consulting [seen] (which would see
             the run's own plants). *)
          match Engine.classify p with
          | Engine.Skipped { steps; sizes } ->
            incr pruned;
            total_steps := !total_steps + steps;
            (match on_prune with
            | Some f when p.Engine.early = Engine.Early_pruned -> f ~prefix
            | _ -> ());
            let next = advance prefix sizes in
            tick (attempt - 1) next;
            go attempt next
          | Engine.Attempt (r, sizes) ->
            total_steps := !total_steps + r.Interp.steps;
            let r = Spec.apply spec r in
            if accept r then
              accepted ~attempts:attempt ~total_steps:!total_steps
                ~pruned:!pruned
                ~incidents:(List.rev !incidents)
                r
            else begin
              note attempt prefix r;
              let next = advance prefix sizes in
              tick attempt next;
              go (attempt + 1) next
            end))
  in
  match resume with
  | None -> go 1 (Some [||])
  | Some c -> go (c.Checkpoint.attempt + 1) c.Checkpoint.prefix

let run_schedule_prefix ?(max_steps = 50_000) ~prefix labeled =
  let p = Engine.exec_schedule ~budget:max_steps ~prefix labeled in
  (p.Engine.result, p.Engine.sizes)
