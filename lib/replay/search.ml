open Mvm

type budget = {
  max_attempts : int;
  max_steps_per_attempt : int;
  base_seed : int;
}

let default_budget =
  { max_attempts = 2_000; max_steps_per_attempt = 50_000; base_seed = 1 }

type stats = {
  attempts : int;
  total_steps : int;
  pruned : int;
  success : bool;
}

type partial = { best : Interp.result; closeness : float; attempt : int }

type outcome = {
  result : Interp.result option;
  partial : partial option;
  stats : stats;
}

(* Best-effort tracking: when no attempt is accepted, the outcome still
   carries the highest-scoring candidate seen, so an exhausted budget
   degrades to a Partial reproduction instead of nothing. The tracker is
   shared by all engines; [score] defaults to "rank nothing". *)
let track_best score =
  let best : partial option ref = ref None in
  let note attempt r =
    let c = score r in
    match !best with
    | Some b when b.closeness >= c -> ()
    | _ -> best := Some { best = r; closeness = c; attempt }
  in
  (note, fun () -> !best)

let exhausted ~attempts ~total_steps ?(pruned = 0) best =
  {
    result = None;
    partial = best ();
    stats = { attempts; total_steps; pruned; success = false };
  }

let accepted ~attempts ~total_steps ?(pruned = 0) r =
  {
    result = Some r;
    partial = None;
    stats = { attempts; total_steps; pruned; success = true };
  }

let no_score : Interp.result -> float = fun _ -> 0.

let random_restarts ?(score = no_score) budget ~make ~spec ~accept labeled =
  let total_steps = ref 0 in
  let note, best = track_best score in
  let cap = ref None in
  let rec go attempt =
    if attempt > budget.max_attempts then
      exhausted ~attempts:(attempt - 1) ~total_steps:!total_steps best
    else
      let world, abort = make ~attempt in
      let r =
        Interp.run ~max_steps:budget.max_steps_per_attempt ?abort
          ?trace_capacity:!cap labeled world
      in
      cap := Some (Trace.length r.Interp.trace);
      total_steps := !total_steps + r.steps;
      let r = Spec.apply spec r in
      if accept r then accepted ~attempts:attempt ~total_steps:!total_steps r
      else begin
        note attempt r;
        go (attempt + 1)
      end
  in
  go 1

let advance = Engine.advance

let enumerate_inputs ?(score = no_score) budget ~spec ~accept labeled =
  let total_steps = ref 0 in
  let note, best = track_best score in
  let cap = ref None in
  let rec go attempt prefix =
    if attempt > budget.max_attempts then
      exhausted ~attempts:(attempt - 1) ~total_steps:!total_steps best
    else begin
      let p =
        Engine.exec_inputs ?trace_capacity:!cap
          ~budget:budget.max_steps_per_attempt ~prefix labeled
      in
      cap := Some (Trace.length p.Engine.result.Interp.trace);
      let r = p.Engine.result in
      total_steps := !total_steps + r.steps;
      let r = Spec.apply spec r in
      if accept r then accepted ~attempts:attempt ~total_steps:!total_steps r
      else begin
        note attempt r;
        match advance prefix p.Engine.sizes with
        | Some prefix' -> go (attempt + 1) prefix'
        | None -> exhausted ~attempts:attempt ~total_steps:!total_steps best
      end
    end
  in
  go 1 [||]

let dfs_schedules ?(score = no_score) ?(prune = true) ?on_prune budget ~spec
    ~accept labeled =
  let pruning =
    if prune then Some { Engine.seen = Engine.Seen.create (); plant = true }
    else None
  in
  let total_steps = ref 0 in
  let pruned = ref 0 in
  let note, best = track_best score in
  let cap = ref None in
  let rec go attempt prefix =
    if attempt > budget.max_attempts then
      exhausted ~attempts:(attempt - 1) ~total_steps:!total_steps
        ~pruned:!pruned best
    else begin
      let p =
        Engine.exec_schedule ?trace_capacity:!cap ?pruning
          ~budget:budget.max_steps_per_attempt ~prefix labeled
      in
      cap := Some (Trace.length p.Engine.result.Interp.trace);
      (* The live seen-set check inside the run is authoritative here —
         the runner IS the reducer — so classification reads the probe's
         own verdict rather than re-consulting [seen] (which would see
         the run's own plants). *)
      match Engine.classify p with
      | Engine.Skipped { steps; sizes } -> (
        incr pruned;
        total_steps := !total_steps + steps;
        (match on_prune with
        | Some f when p.Engine.early = Engine.Early_pruned -> f ~prefix
        | _ -> ());
        match advance prefix sizes with
        | Some prefix' -> go attempt prefix'
        | None ->
          exhausted ~attempts:(attempt - 1) ~total_steps:!total_steps
            ~pruned:!pruned best)
      | Engine.Attempt (r, sizes) -> (
        total_steps := !total_steps + r.Interp.steps;
        let r = Spec.apply spec r in
        if accept r then
          accepted ~attempts:attempt ~total_steps:!total_steps ~pruned:!pruned
            r
        else begin
          note attempt r;
          match advance prefix sizes with
          | Some prefix' -> go (attempt + 1) prefix'
          | None ->
            exhausted ~attempts:attempt ~total_steps:!total_steps
              ~pruned:!pruned best
        end)
    end
  in
  go 1 [||]

let run_schedule_prefix ?(max_steps = 50_000) ~prefix labeled =
  let p = Engine.exec_schedule ~budget:max_steps ~prefix labeled in
  (p.Engine.result, p.Engine.sizes)
