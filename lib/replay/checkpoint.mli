(** Search checkpoints: the persisted frontier of a replay search.

    A search engine's progress is tiny compared to the work it represents:
    the next decision-vector prefix (or restart attempt index), the
    counters, the best partial execution's identity, and — for pruning
    engines — the set of state digests already explored. A checkpoint file
    captures exactly that, so a search killed mid-flight (machine crash,
    OOM kill, deadline) can be resumed with [--resume] and provably reach
    the same first-hit outcome as an uninterrupted run: engines judge
    candidates in attempt order, so restarting from the frontier replays
    the same decision sequence.

    Format [ddet-ckpt v1] is line-oriented text like the log formats: one
    key per line, closeness serialised as a hex float ([%h]) for exact
    round-trips, closed by an [end <crc>] trailer whose CRC32 covers the
    whole payload. Files are written atomically (temp file + rename), so a
    crash during a checkpoint write leaves the previous checkpoint intact
    — the resume point is always a real frontier, never a torn one. *)

(** Identity of the best partial execution seen so far. The heavyweight
    {!Mvm.Interp.result} is deliberately not serialised; instead the
    checkpoint stores enough to re-derive it deterministically on demand:
    the attempt index (restart engines re-seed from it) or the decision
    prefix (enumeration engines re-execute it). *)
type best = {
  b_closeness : float;
  b_attempt : int;
  b_prefix : int array option;
      (** [Some] for decision-vector engines; [None] when [b_attempt]
          itself is the rerun key (random restarts) *)
}

type t = {
  engine : string;  (** "restarts", "inputs", "dfs" or "scan" *)
  base_seed : int;  (** of the budget that produced this checkpoint *)
  attempt : int;  (** attempts fully judged so far *)
  total_steps : int;
  pruned : int;
  prefix : int array option;
      (** next decision-vector to try, for enumeration engines *)
  best : best option;
  seen : int list;  (** pruned-state digests to replant (DFS engine) *)
}

(** [write path t] serialises atomically with a CRC trailer. *)
val write : string -> t -> unit

(** [load path] parses and validates a checkpoint file. Damage (bad magic,
    CRC mismatch, unparsable line) is an [Error] naming the problem — a
    torn checkpoint must never silently resume from the wrong frontier. *)
val load : string -> (t, string) result

(** A sink owns the checkpoint path and decides when ticks become writes.
    Engines call {!tick} once per judged attempt at iteration boundaries
    only — the frontier on disk is always a consistent "everything before
    attempt [n] is done" statement. *)
type sink

(** [sink ?every path] writes every [every]-th tick (default 32). *)
val sink : ?every:int -> string -> sink

(** [tick s frontier] counts one judged attempt; on every [every]-th call
    it evaluates [frontier] and writes the checkpoint. The thunk keeps
    frontier capture lazy — off-tick attempts pay one increment. The sink
    serialises into one reused buffer, and a tick whose payload is
    byte-identical to the last write is skipped entirely: the file
    already holds exactly that frontier. *)
val tick : sink -> (unit -> t) -> unit

(** [flush s frontier] forces a persist, bypassing the [every] throttle
    (engines call it when a search ends so the file reflects the final
    frontier); the identical-payload skip still applies. *)
val flush : sink -> (unit -> t) -> unit

val path : sink -> string
