(** Causal stitching: merge surviving shards back into one log.

    The stitcher takes a loaded shard set ({!Ddet_record.Sharded_log})
    and rebuilds the best global log the surviving evidence supports. The
    manifest's run-length interleaving says how the nodes' entry streams
    wove together; the stitcher walks it, drawing each run from its
    node's queue — skipping runs whose node is lost, stopping a run early
    when a salvaged shard ran out — so the merged entry order is the
    {e surviving projection} of the recorded global order. Entries the
    manifest never accounted for (a damaged manifest, or none at all) are
    appended per node afterwards, and the merge is marked inexact.

    The merged log is honest about what it is:

    - [complete]: every shard intact and the manifest whole — the merge
      {e is} the original log, and normal full-fidelity replay applies;
    - otherwise partial evidence: the lost nodes' schedule and inputs are
      gone (they become search dimensions), and only the surviving
      cross-node edges still constrain the reconstruction.

    Stitching never invents order: an edge or run that cannot be resolved
    against surviving evidence is dropped and counted, not guessed. *)

open Ddet_record

type t = {
  log : Log.t;  (** merged surviving evidence, stitched order *)
  evidence : (string * Sharded_log.shard_status) list;
      (** per node, what the evidence was *)
  lost : string list;  (** nodes that contributed nothing *)
  complete : bool;
      (** the merge reconstructs the original log exactly: manifest whole
          and every shard intact *)
  order_exact : bool;
      (** the merged order is a faithful projection of the recorded
          global order (no unaccounted leftovers had to be appended) *)
  edges_enforced : Causal.edge list;
      (** cross-node edges with both endpoints surviving *)
  edges_dropped : Causal.edge list;
      (** edges that died with a lost endpoint — ordering information the
          evidence no longer supports *)
}

val stitch : Sharded_log.loaded -> t

(** [survivors t] / [lost t] — node names by evidence fate. *)
val survivors : t -> string list

val pp : Format.formatter -> t -> unit
