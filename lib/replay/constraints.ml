open Mvm
open Ddet_record

let failure_matches log (r : Interp.result) =
  match Log.recorded_failure log, r.failure with
  | Some f, Some f' -> Failure.equal f f'
  | None, None -> true
  | Some _, None | None, Some _ -> false

let outputs_match log (r : Interp.result) =
  let logged = Log.outputs log in
  let got = r.outputs in
  List.length logged = List.length got
  && List.for_all2
       (fun (c1, vs1) (c2, vs2) ->
         String.equal c1 c2
         && List.length vs1 = List.length vs2
         && List.for_all2 Value.equal vs1 vs2)
       logged got

let output_prefix_abort log =
  let expected : (string, Value.t list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter (fun (c, vs) -> Hashtbl.replace expected c (ref vs)) (Log.outputs log);
  fun (e : Event.t) ->
    match e.kind with
    | Event.Out io -> (
      match Hashtbl.find_opt expected io.chan with
      | None -> Some ("unexpected output channel " ^ io.chan)
      | Some r -> (
        match !r with
        | [] -> Some ("extra output on " ^ io.chan)
        | v :: tl ->
          if Value.equal v io.value.Value.v then (
            r := tl;
            None)
          else Some ("output mismatch on " ^ io.chan)))
    | _ -> None

let both a b e = match a e with Some _ as r -> r | None -> b e

(* How far a candidate run got towards the recording: half weight on
   reproducing the failure, half on the matched per-channel output
   prefix. Used to rank best-effort candidates when a search exhausts its
   budget — the score never influences acceptance. *)
let closeness log (r : Interp.result) =
  let fail_score = if failure_matches log r then 1. else 0. in
  match Log.outputs log with
  | [] -> fail_score
  | logged ->
    let prefix_len vs ws =
      let rec go n = function
        | v :: vtl, w :: wtl when Value.equal v w -> go (n + 1) (vtl, wtl)
        | _ -> n
      in
      go 0 (vs, ws)
    in
    let matched, total =
      List.fold_left
        (fun (m, t) (chan, vs) ->
          let got =
            Option.value ~default:[]
              (List.assoc_opt chan r.Interp.outputs)
          in
          (m + prefix_len vs got, t + List.length vs))
        (0, 0) logged
    in
    (0.5 *. fail_score) +. (0.5 *. float_of_int matched /. float_of_int (max 1 total))
