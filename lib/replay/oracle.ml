open Mvm
open Ddet_record

type handle = {
  world : World.t;
  abort : Event.t -> string option;
  violated : unit -> bool;
}

(* Per-thread value queues (inputs, logged reads). *)
let queues_of pairs =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (tid, v) ->
      match Hashtbl.find_opt tbl tid with
      | Some r -> r := !r @ [ v ]
      | None -> Hashtbl.replace tbl tid (ref [ v ]))
    pairs;
  tbl

let pop tbl tid =
  match Hashtbl.find_opt tbl tid with
  | Some ({ contents = v :: tl } as r) ->
    r := tl;
    Some v
  | Some { contents = [] } | None -> None

let input_queues log tids_of =
  queues_of
    (List.filter_map
       (function
         | Log.Input { tid; value; _ } when tids_of = `All -> Some (tid, value)
         | Log.Cp_input { tid; value; _ } when tids_of = `Cp -> Some (tid, value)
         | _ -> None)
       log.Log.entries)

let abort_of violated = fun _ -> if !violated then Some "log-divergence" else None

let perfect log =
  let remaining = ref (Log.sched_points log) in
  let inputs = input_queues log `All in
  let violated = ref false in
  let world =
    {
      World.name = "replay:perfect";
      pick_thread =
        (fun ~step:_ cands ->
          match !remaining with
          | (t, s) :: tl -> (
            match
              List.find_opt
                (fun c -> c.World.tid = t && c.World.sid = s)
                cands
            with
            | Some _ ->
              remaining := tl;
              t
            | None ->
              violated := true;
              (List.hd cands).World.tid)
          | [] -> (List.hd cands).World.tid);
      pick_input =
        (fun ~step:_ ~tid ~chan:_ ~domain ->
          match pop inputs tid with
          | Some v -> v
          | None -> (
            violated := true;
            match domain with [] -> Value.unit | v :: _ -> v));
      on_read = (fun ~step:_ ~tid:_ ~sid:_ ~region:_ ~index:_ ~actual -> actual);
      on_recv = (fun ~step:_ ~tid:_ ~sid:_ ~chan:_ ~actual -> actual);
      on_try_recv = (fun ~step:_ ~tid:_ ~sid:_ ~chan:_ -> World.Default);
      passive_try_recv = true;
    }
  in
  { world; abort = abort_of violated; violated = (fun () -> !violated) }

let value_det ~seed log =
  let rng = Prng.create seed in
  (* per-thread per-instruction observation log: (site, kind, value) in the
     thread's observation order *)
  let reads =
    queues_of
      (List.filter_map
         (function
           | Log.Read_val { tid; sid; kind; value } -> Some (tid, (sid, kind, value))
           | _ -> None)
         log.Log.entries)
  in
  let peek tbl tid =
    match Hashtbl.find_opt tbl tid with
    | Some { contents = v :: _ } -> Some v
    | Some { contents = [] } | None -> None
  in
  let inputs = input_queues log `All in
  let world =
    {
      World.name = Printf.sprintf "replay:value(seed=%d)" seed;
      pick_thread = (fun ~step:_ cands -> (Prng.pick rng cands).World.tid);
      pick_input =
        (fun ~step:_ ~tid ~chan:_ ~domain ->
          match pop inputs tid with
          | Some v -> v
          | None -> ( match domain with [] -> Value.unit | v :: _ -> v));
      on_read =
        (fun ~step:_ ~tid ~sid ~region:_ ~index:_ ~actual ->
          match peek reads tid with
          | Some (s, _, v) when s = sid ->
            ignore (pop reads tid);
            Value.untainted v
          | Some _ | None -> actual);
      on_recv =
        (fun ~step:_ ~tid ~sid ~chan:_ ~actual ->
          match peek reads tid with
          | Some (s, _, v) when s = sid ->
            ignore (pop reads tid);
            Value.untainted v
          | Some _ | None -> actual);
      on_try_recv =
        (fun ~step:_ ~tid ~sid ~chan:_ ->
          (* pure peek: the poll outcome is part of the thread's observed
             values — a logged Msg entry at this site means the original
             receive succeeded here; the log advances in on_recv. An
             exhausted log means the thread observed nothing more in its
             recorded life, so later polls miss rather than drain backlog
             the original never saw *)
          match peek reads tid with
          | Some (s, Log.Msg, v) when s = sid -> World.Force_value (Value.untainted v)
          | Some _ | None -> World.Force_fail);
      passive_try_recv = false;
    }
  in
  let never = ref false in
  { world; abort = abort_of never; violated = (fun () -> !never) }

(* Generic partial-schedule enforcement shared by RCSE and sync replay:
   the recorded (tid, sid) subsequence must occur in order. The log cursor
   advances on *observed events* (via the abort hook, which sees every
   event), not on scheduling decisions — a forced try_recv that finds an
   empty queue emits nothing and must not consume a log entry. An event
   matching a *later* entry means this interleaving cannot match the log:
   the attempt is flagged and aborted.

   Scheduling is tiered: (1) a candidate at the head entry is forced;
   (2) otherwise candidates whose next site appears nowhere in the pending
   log are safe (a statement only emits events carrying its own site id,
   so they cannot produce an out-of-order logged event); (3) otherwise a
   risky candidate runs — either harmlessly (a poll that emits nothing)
   or producing the violation that aborts the attempt. Tier 3 prevents
   livelock when the replay has genuinely diverged. *)
let subsequence ~name ~seed ~points ~event_matches ~marked_inputs ~strict log =
  let rng = Prng.create seed in
  let remaining = ref points in
  let pending : (int * int, int) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun p ->
      Hashtbl.replace pending p
        (1 + Option.value ~default:0 (Hashtbl.find_opt pending p)))
    points;
  let take_pending p =
    match Hashtbl.find_opt pending p with
    | Some 1 -> Hashtbl.remove pending p
    | Some n -> Hashtbl.replace pending p (n - 1)
    | None -> ()
  in
  let is_pending p = Hashtbl.mem pending p in
  let violated = ref false in
  let cp_inputs =
    if marked_inputs then
      queues_of
        (List.filter_map
           (function
             | Log.Cp_input { tid; sid; value; _ } -> Some (tid, (sid, value))
             | _ -> None)
           log.Log.entries)
    else
      queues_of
        (List.filter_map
           (function
             | Log.Input { tid; value; _ } -> Some (tid, (0, value))
             | _ -> None)
           log.Log.entries)
  in
  (* the site each thread is currently executing, set at pick time: input
     forcing aligns logged input sites against it *)
  let cur_sid : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let advance (e : Event.t) =
    if event_matches e then
      let p = (e.Event.tid, e.Event.sid) in
      match !remaining with
      | h :: tl when h = p ->
        remaining := tl;
        take_pending p
      | _ -> if strict && is_pending p then violated := true
  in
  let abort e =
    advance e;
    if !violated then Some "log-divergence" else None
  in
  let pick_thread ~step:_ cands =
    let head = match !remaining with p :: _ -> Some p | [] -> None in
    let forced =
      match head with
      | Some (t, s) ->
        List.find_opt (fun c -> c.World.tid = t && c.World.sid = s) cands
      | None -> None
    in
    match forced with
    | Some c ->
      Hashtbl.replace cur_sid c.World.tid c.World.sid;
      c.World.tid
    | None -> (
      let safe =
        List.filter (fun c -> not (is_pending (c.World.tid, c.World.sid))) cands
      in
      let c =
        match safe with [] -> Prng.pick rng cands | _ -> Prng.pick rng safe
      in
      Hashtbl.replace cur_sid c.World.tid c.World.sid;
      c.World.tid)
  in
  let pick_input ~step:_ ~tid ~chan:_ ~domain =
    let head =
      match Hashtbl.find_opt cp_inputs tid with
      | Some { contents = v :: _ } -> Some v
      | Some { contents = [] } | None -> None
    in
    let forced =
      match head with
      | Some (s, v)
        when (not marked_inputs)
             || Hashtbl.find_opt cur_sid tid = Some s ->
        ignore (pop cp_inputs tid);
        Some v
      | Some _ | None -> None
    in
    match forced with
    | Some v -> v
    | None -> ( match domain with [] -> Value.unit | _ -> Prng.pick rng domain)
  in
  let world =
    {
      World.name = Printf.sprintf "replay:%s(seed=%d)" name seed;
      pick_thread;
      pick_input;
      on_read = (fun ~step:_ ~tid:_ ~sid:_ ~region:_ ~index:_ ~actual -> actual);
      on_recv = (fun ~step:_ ~tid:_ ~sid:_ ~chan:_ ~actual -> actual);
      on_try_recv = (fun ~step:_ ~tid:_ ~sid:_ ~chan:_ -> World.Default);
      passive_try_recv = true;
    }
  in
  { world; abort; violated = (fun () -> !violated) }

let rcse ?(strict = true) ~seed log =
  (* windowed (trigger/invariant) logs record a time slice whose sites also
     execute legitimately outside the window, so schedule enforcement is
     only meaningful for statically selected (code-based) logs; windowed
     replay pins the recorded inputs by site and searches the schedule *)
  let points = if strict then Log.cp_sched_points log else [] in
  subsequence ~name:"rcse" ~seed ~points
    ~event_matches:(fun (e : Event.t) ->
      match e.Event.kind with Event.Step -> true | _ -> false)
    ~marked_inputs:true ~strict log

(* Sync-schedule replay enforces *per-object* operation orders, which is
   what an ODR-style logger records: per-channel send and consume orders,
   the global spawn order (it assigns thread ids) and per-lock acquisition
   orders. A try_recv whose thread is not the next recorded consumer of its
   channel is forced to miss (harmless poll); a send or spawn is only
   scheduled when it is next in its object's order; an event that still
   comes out of order (or was never recorded at all) aborts the attempt.
   Plain shared-memory access order is deliberately unconstrained: data-race
   outcomes are what this scheme must infer (searched by restarts). *)
let sync ~seed log =
  let rng = Prng.create seed in
  let orders : (string, (int * int) list ref) Hashtbl.t = Hashtbl.create 16 in
  let key_of_op = function
    | Log.Op_send c -> Some ("s:" ^ c)
    | Log.Op_recv c -> Some ("r:" ^ c)
    | Log.Op_spawn -> Some "spawn"
    | Log.Op_lock m -> Some ("l:" ^ m)
    | Log.Op_unlock _ -> None
  in
  (* site -> object key: lets the scheduler hold back a send/spawn/lock
     statement until it is next in its object's order *)
  let site_key : (int, string) Hashtbl.t = Hashtbl.create 32 in
  let blocking_site : (int, unit) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (tid, sid, op) ->
      match key_of_op op with
      | None -> ()
      | Some key ->
        (match Hashtbl.find_opt orders key with
        | Some r -> r := !r @ [ (tid, sid) ]
        | None -> Hashtbl.replace orders key (ref [ (tid, sid) ]));
        (match op with
        | Log.Op_send _ | Log.Op_spawn | Log.Op_lock _ ->
          Hashtbl.replace site_key sid key;
          Hashtbl.replace blocking_site sid ()
        | Log.Op_recv _ | Log.Op_unlock _ -> ()))
    (Log.sync_entries log);
  let head key =
    match Hashtbl.find_opt orders key with
    | Some { contents = p :: _ } -> Some p
    | Some { contents = [] } | None -> None
  in
  let violated_set = ref false in
  let advance key p ok_unlogged =
    match Hashtbl.find_opt orders key with
    | Some ({ contents = h :: tl } as r) when h = p -> r := tl
    | Some _ -> violated_set := true
    | None -> if not ok_unlogged then violated_set := true
  in
  let abort (e : Event.t) =
    (match e.Event.kind with
    | Event.Msg_send io -> advance ("s:" ^ io.Event.chan) (e.Event.tid, e.Event.sid) false
    | Event.Msg_recv io -> advance ("r:" ^ io.Event.chan) (e.Event.tid, e.Event.sid) false
    | Event.Spawned _ -> advance "spawn" (e.Event.tid, e.Event.sid) false
    | Event.Lock_acq m -> advance ("l:" ^ m) (e.Event.tid, e.Event.sid) false
    | Event.Step | Event.Read _ | Event.Write _ | Event.In _ | Event.Out _
    | Event.Lock_rel _ | Event.Crashed _ ->
      ());
    if !violated_set then Some "sync-order-divergence" else None
  in
  let inputs = input_queues log `All in
  let allowed (c : World.cand) =
    if not (Hashtbl.mem blocking_site c.World.sid) then true
    else
      match Hashtbl.find_opt site_key c.World.sid with
      | None -> true
      | Some key -> (
        match head key with
        | Some (t, s) -> t = c.World.tid && s = c.World.sid
        | None -> false)
  in
  let world =
    {
      World.name = Printf.sprintf "replay:sync(seed=%d)" seed;
      pick_thread =
        (fun ~step:_ cands ->
          match List.filter allowed cands with
          | [] ->
            violated_set := true;
            (Prng.pick rng cands).World.tid
          | ok -> (Prng.pick rng ok).World.tid);
      pick_input =
        (fun ~step:_ ~tid ~chan:_ ~domain ->
          match pop inputs tid with
          | Some v -> v
          | None -> ( match domain with [] -> Value.unit | v :: _ -> v));
      on_read = (fun ~step:_ ~tid:_ ~sid:_ ~region:_ ~index:_ ~actual -> actual);
      on_recv = (fun ~step:_ ~tid:_ ~sid:_ ~chan:_ ~actual -> actual);
      on_try_recv =
        (fun ~step:_ ~tid ~sid:_ ~chan ->
          match head ("r:" ^ chan) with
          | Some (t, _) when t = tid -> World.Default
          | Some _ -> World.Force_fail
          | None -> World.Force_fail);
      passive_try_recv = false;
    }
  in
  { world; abort; violated = (fun () -> !violated_set) }

(* Partial-evidence replay over a stitched shard merge. The merged log
   is dense for surviving threads (a perfect recorder logs every one of
   their steps), so the subsequence scheduler above would starve them:
   all their sites are "pending", only lost-node threads ever look safe,
   and one stalled head wedges the run. Instead the partial oracle
   steers softly — when the merged order's head is an eligible
   candidate it runs, otherwise the pick is uniform over ALL candidates
   — and the cursor simply stops advancing past a head the execution
   never reaches (the lost node's altered timing makes that legitimate,
   not divergence, so there is no abort). Surviving threads' inputs are
   fed back per thread; lost threads fall back to seeded-random domain
   picks: the lost evidence is exactly the search dimension. *)
type steer = {
  lost_tids : int list;
  hot_sids : int list;
  cold_input_tids : int list;
}

let no_steer = { lost_tids = []; hot_sids = []; cold_input_tids = [] }

let partial ?(steer = no_steer) ~seed log =
  let rng = Prng.create seed in
  let remaining = ref (Log.sched_points log) in
  let inputs = input_queues log `All in
  let mem_tbl xs =
    let t = Hashtbl.create (List.length xs + 1) in
    List.iter (fun x -> Hashtbl.replace t x ()) xs;
    t
  in
  let lost = mem_tbl steer.lost_tids in
  let hot = mem_tbl steer.hot_sids in
  let cold = mem_tbl steer.cold_input_tids in
  (* handles resolved once per oracle; picks may run on worker domains,
     where only atomic counter bumps are allowed (no ring writes) *)
  let c_stalls = Ddet_obs.Tracer.handle "oracle.cursor_stalls" in
  let c_hot = Ddet_obs.Tracer.handle "oracle.steer_hot_picks" in
  let c_cold = Ddet_obs.Tracer.handle "oracle.cold_pins" in
  (* on a cursor stall, prefer a lost thread sitting at a statically hot
     site: those are the only decision points whose order the search
     actually needs to explore *)
  let pick_free ~stalled cands =
    (* a stall (merged-order head present but not eligible) is expected
       under partial evidence, not divergence — but its frequency is
       exactly the cost of the lost node, so the trace counts it *)
    if stalled then Ddet_obs.Tracer.bump c_stalls 1;
    let hot_cands =
      List.filter
        (fun (c : World.cand) ->
          Hashtbl.mem lost c.World.tid && Hashtbl.mem hot c.World.sid)
        cands
    in
    match hot_cands with
    | [] -> (Prng.pick rng cands).World.tid
    | hc ->
      Ddet_obs.Tracer.bump c_hot 1;
      (Prng.pick rng hc).World.tid
  in
  let advance (e : Event.t) =
    match e.Event.kind with
    | Event.Step -> (
      match !remaining with
      | (t, s) :: tl when t = e.Event.tid && s = e.Event.sid -> remaining := tl
      | _ -> ())
    | _ -> ()
  in
  let abort e =
    advance e;
    None
  in
  let world =
    {
      World.name = Printf.sprintf "replay:partial(seed=%d)" seed;
      pick_thread =
        (fun ~step:_ cands ->
          match !remaining with
          | (t, s) :: _ -> (
            match
              List.find_opt
                (fun c -> c.World.tid = t && c.World.sid = s)
                cands
            with
            | Some c -> c.World.tid
            | None -> pick_free ~stalled:true cands)
          | [] -> pick_free ~stalled:false cands);
      pick_input =
        (fun ~step:_ ~tid ~chan:_ ~domain ->
          match pop inputs tid with
          | Some v -> v
          | None -> (
            match domain with
            | [] -> Value.unit
            | v :: _ when Hashtbl.mem cold tid ->
              (* statically cold: this thread's inputs provably never
                 reached a survivor, so pin them instead of searching *)
              Ddet_obs.Tracer.bump c_cold 1;
              v
            | _ -> Prng.pick rng domain));
      on_read = (fun ~step:_ ~tid:_ ~sid:_ ~region:_ ~index:_ ~actual -> actual);
      on_recv = (fun ~step:_ ~tid:_ ~sid:_ ~chan:_ ~actual -> actual);
      on_try_recv = (fun ~step:_ ~tid:_ ~sid:_ ~chan:_ -> World.Default);
      passive_try_recv = true;
    }
  in
  { world; abort; violated = (fun () -> false) }

let free ~seed =
  let never = ref false in
  {
    world = World.random ~seed;
    abort = abort_of never;
    violated = (fun () -> !never);
  }
