(** Domain-parallel search engines with deterministic first-hit semantics.

    Each engine fans its candidate attempts — restart seeds, input-odometer
    prefixes, schedule-odometer prefixes — over [jobs] OCaml 5 domains
    pulling from a shared work queue, while a single in-order reducer (the
    calling thread) replays the sequential engine's bookkeeping exactly:
    attempts are judged in attempt-index order and the accepted result is
    the one with the {e lowest} attempt index, regardless of which worker
    finished first. The returned {!Search.outcome} — accepted trace,
    partial, attempts, total steps, pruned count — is byte-identical to
    the sequential engine's at the same settings; only wall-clock time
    changes. With [jobs <= 1] (the default) each engine simply calls its
    {!Search} counterpart.

    The odometer engines cannot know attempt [k+1]'s prefix until attempt
    [k] reports its decision fan-outs, so successors are {e speculated}
    from the last authoritative sizes and validated by the reducer;
    misspeculated suffixes are cancelled through the interpreter's abort
    hook and regenerated. Random restarts are embarrassingly parallel and
    skip all that.

    Note for debugging-efficiency (DE) accounting: [total_steps] — the
    paper-facing inference-work metric — is unchanged by [jobs], but
    wall-clock reproduction time now depends on cores, so DE figures
    derived from wall-clock must record the [jobs] used. *)

open Mvm

(** Parallel {!Search.random_restarts}. [make] is called on worker
    domains: it must build fresh per-attempt state (all drivers in this
    repository do). *)
val random_restarts :
  ?jobs:int ->
  ?score:(Interp.result -> float) ->
  Search.budget ->
  make:(attempt:int -> World.t * (Event.t -> string option) option) ->
  spec:Spec.t ->
  accept:(Interp.result -> bool) ->
  Label.labeled ->
  Search.outcome

(** Parallel {!Search.enumerate_inputs}. *)
val enumerate_inputs :
  ?jobs:int ->
  ?score:(Interp.result -> float) ->
  Search.budget ->
  spec:Spec.t ->
  accept:(Interp.result -> bool) ->
  Label.labeled ->
  Search.outcome

(** Parallel {!Search.dfs_schedules}, including state-hash pruning: the
    shared seen-set is written only by the reducer, so worker-side
    checkpoint hits are always authoritative, and runs that completed
    speculatively before an earlier attempt's plants landed are
    re-classified (and re-charged) by the reducer after the fact. *)
val dfs_schedules :
  ?jobs:int ->
  ?score:(Interp.result -> float) ->
  ?prune:bool ->
  Search.budget ->
  spec:Spec.t ->
  accept:(Interp.result -> bool) ->
  Label.labeled ->
  Search.outcome

(** [first_success ~jobs ~from ~count ~f ()] is the parallel analogue of
    scanning [f from], [f (from+1)], … and returning the first [Some] —
    deterministically the {e lowest} index whose [f] succeeds, with
    higher indices probed speculatively. [f] runs on worker domains.
    Used by workload seed scans. *)
val first_success :
  ?jobs:int ->
  from:int ->
  count:int ->
  f:(int -> 'a option) ->
  unit ->
  (int * 'a) option
