(** Domain-parallel search engines with deterministic first-hit semantics.

    Each engine fans its candidate attempts — restart seeds, input-odometer
    prefixes, schedule-odometer prefixes — over [jobs] OCaml 5 domains
    pulling from a shared work queue, while a single in-order reducer (the
    calling thread) replays the sequential engine's bookkeeping exactly:
    attempts are judged in attempt-index order and the accepted result is
    the one with the {e lowest} attempt index, regardless of which worker
    finished first. The returned {!Search.outcome} — accepted trace,
    partial, attempts, total steps, pruned count — is byte-identical to
    the sequential engine's at the same settings; only wall-clock time
    changes. With [jobs <= 1] (the default) each engine simply calls its
    {!Search} counterpart.

    Independent attempts (restarts, seed scans) go through a lock-free
    pool: workers claim {e chunks} of attempt indices from an atomic
    frontier with a single CAS and publish results into a bounded ring of
    atomic slots that the reducer drains in index order — no mutex, no
    per-attempt wakeups. Each worker domain owns an {!Engine.ctx} arena
    (program compiled once, reused interpreter state, warm trace
    capacity), so per-attempt cost is the interpreter loop itself.

    The odometer engines cannot know attempt [k+1]'s prefix until attempt
    [k] reports its decision fan-outs, so successors are {e speculated}
    from the last authoritative sizes and validated by the reducer;
    misspeculated suffixes are cancelled through the interpreter's abort
    hook and regenerated.

    Note for debugging-efficiency (DE) accounting: [total_steps] — the
    paper-facing inference-work metric — is unchanged by [jobs], but
    wall-clock reproduction time now depends on cores, so DE figures
    derived from wall-clock must record the [jobs] used.

    Supervision: an attempt whose execution raises on a worker domain no
    longer aborts the search. The job is retried in place (bounded by
    {!Search.max_job_retries}) and then, if it keeps failing, delivered
    poisoned: the reducer records a {!Search.incident} (with the worker's
    index) in [stats.incidents] and carries on — skipping the attempt
    where the engine can advance without it (indexed attempts), ending
    the search gracefully where it cannot (a poisoned odometer attempt
    never reports its fan-outs, so the chain has no successor).

    Checkpoints: [checkpoint]/[resume] behave exactly as on the
    sequential engines — the reducer is the only writer, ticking at
    judge boundaries, so the file always describes a consistent frontier
    and is interchangeable between sequential and parallel runs of the
    same search. *)

open Mvm

(** Scheduler tuning. All four knobs change only wall-clock behaviour,
    never outcomes — the parity law in the test suite checks engines
    byte-identical across arbitrary tunings. *)
type tuning = {
  chunk : int;
      (** attempt indices a worker claims per CAS on the shared frontier.
          Higher amortises contention on short attempts; lower smooths
          load imbalance on long ones. *)
  window_per_job : int;
      (** speculation window, per job: workers may run at most
          [jobs * window_per_job] attempts ahead of the reducer's
          frontier (floored at [max 2 chunk]). Bounds wasted speculative
          work after a first hit. *)
  spawn_cost_steps : int;
      (** min-work heuristic: when [est_attempt_steps] falls below this,
          fan-out is a guaranteed loss and the engine runs sequentially
          regardless of [jobs]. *)
  cap_domains : bool;
      (** clamp [jobs] to [Domain.recommended_domain_count ()]. Extra
          domains on an oversubscribed machine only add preemption and
          cache pressure; outcomes are identical at any job count.
          Benches that measure contention on purpose switch this off. *)
}

val default_tuning : tuning
(** [{ chunk = 4; window_per_job = 4; spawn_cost_steps = 15_000;
      cap_domains = true }] *)

(** Parallel {!Search.random_restarts}. [make] is called on worker
    domains: it must build fresh per-attempt state (all drivers in this
    repository do).

    [est_attempt_steps] (on every engine) is the min-work heuristic: an
    estimate of one attempt's cost in interpreter steps — typically the
    recorded run's [base_steps]. When it falls below
    [tuning.spawn_cost_steps], the engine runs sequentially regardless
    of [jobs]: BENCH_search.json shows parallel fan-out far below 1x of
    sequential on workloads that small. Outcomes are byte-identical
    either way; only wall-clock changes. *)
val random_restarts :
  ?jobs:int ->
  ?tuning:tuning ->
  ?est_attempt_steps:int ->
  ?score:(Interp.result -> float) ->
  ?checkpoint:Checkpoint.sink ->
  ?resume:Checkpoint.t ->
  Search.budget ->
  make:(attempt:int -> World.t * (Event.t -> string option) option) ->
  spec:Spec.t ->
  accept:(Interp.result -> bool) ->
  Label.labeled ->
  Search.outcome

(** Parallel {!Search.enumerate_inputs}. *)
val enumerate_inputs :
  ?jobs:int ->
  ?tuning:tuning ->
  ?est_attempt_steps:int ->
  ?score:(Interp.result -> float) ->
  ?checkpoint:Checkpoint.sink ->
  ?resume:Checkpoint.t ->
  Search.budget ->
  spec:Spec.t ->
  accept:(Interp.result -> bool) ->
  Label.labeled ->
  Search.outcome

(** Parallel {!Search.dfs_schedules}, including state-hash pruning: the
    shared seen-set is written only by the reducer, so worker-side
    checkpoint hits are always authoritative, and runs that completed
    speculatively before an earlier attempt's plants landed are
    re-classified (and re-charged) by the reducer after the fact. *)
val dfs_schedules :
  ?jobs:int ->
  ?tuning:tuning ->
  ?est_attempt_steps:int ->
  ?score:(Interp.result -> float) ->
  ?prune:bool ->
  ?checkpoint:Checkpoint.sink ->
  ?resume:Checkpoint.t ->
  Search.budget ->
  spec:Spec.t ->
  accept:(Interp.result -> bool) ->
  Label.labeled ->
  Search.outcome

(** [first_success ~jobs ~from ~count ~f ()] is the parallel analogue of
    scanning [f from], [f (from+1)], … and returning the first [Some] —
    deterministically the {e lowest} index whose [f] succeeds, with
    higher indices probed speculatively. [f] runs on worker domains; a
    probe that raises poisons only its own seed. Used by workload seed
    scans. [checkpoint]/[resume] persist the scan frontier under the
    "scan" engine kind, with [from] as the identity check. *)
val first_success :
  ?jobs:int ->
  ?tuning:tuning ->
  ?est_attempt_steps:int ->
  ?checkpoint:Checkpoint.sink ->
  ?resume:Checkpoint.t ->
  from:int ->
  count:int ->
  f:(int -> 'a option) ->
  unit ->
  (int * 'a) option

(**/**)

(* internal: exposed for the test harnesses *)

val spawn_cost_steps : int
val window_of : tuning -> int -> int
val effective_jobs : ?tuning:tuning -> jobs:int -> int option -> int

type 'a job =
  | Job_ok of 'a * Search.incident option
  | Job_poisoned of Search.incident

val attempt_job :
  attempt:int -> worker:int -> (unit -> 'a) -> 'a job

val indexed_pool :
  ?tuning:tuning ->
  jobs:int ->
  first:int ->
  last:int ->
  make_exec:(int -> cancel:(unit -> bool) -> int -> 'a) ->
  process:(int -> 'a -> [ `Continue | `Stop of 'out ]) ->
  exhausted:(unit -> 'out) ->
  'out

val chain_pool :
  ?tuning:tuning ->
  ?init_prefix:int array ->
  jobs:int ->
  make_exec:(int -> cancel:(unit -> bool) -> int array -> Engine.probe job) ->
  process:
    (prefix:int array ->
     Engine.probe job ->
     [ `Advance of int list | `Stop of 'out ]) ->
  exhausted:(unit -> 'out) ->
  unit ->
  'out
