(** Incremental canonical hash of an in-flight execution's state, used by
    the schedule-DFS pruner as a poor man's partial-order reduction.

    The digest is built from interleaving-invariant projections of the
    run so far — per-thread event sequences (sites, kinds and values, but
    not global step numbers) — plus the components of machine state where
    interleaving order genuinely matters: current memory cell values,
    per-channel send/receive/output value sequences, and the lock table.

    Two runs with equal digests at a scheduling decision have (up to hash
    collision) equal per-thread histories and equal machine state, so
    every continuation of one has a continuation of the other with
    identical status, outputs and failure — which is what makes skipping
    the duplicate sound for accept functions that judge runs through
    those projections. *)

type t

val create : unit -> t

(** [feed t e] folds one trace event into the state summary. Feed every
    event, in emission order (a monitor does this). *)
val feed : t -> Mvm.Event.t -> unit

(** [digest t] is the canonical hash of everything fed so far. Cheap —
    callable at every scheduling decision. *)
val digest : t -> int

(** [reset t] forgets everything fed so far, returning [t] to the state
    of a fresh {!create} — the arena pattern: search engines feed one
    hash instance per worker across millions of attempts instead of
    allocating the five tables anew for each. *)
val reset : t -> unit
