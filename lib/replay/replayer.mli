(** Per-model replay drivers: log in, replayed execution (or exhausted
    budget) out, with the inference work accounted for debugging-efficiency
    metrics.

    Each driver implements one determinism model's replay contract:

    - {!perfect} — deterministic re-execution from the full log;
    - {!value_det} — per-thread forced values, free schedule (iDNA);
    - {!output_det} — search for any execution with the recorded outputs
      (ODR light); uses input enumeration when [exhaustive], else random
      restarts with output-prefix pruning;
    - {!failure_det} — search for any execution with the recorded failure
      (ESD execution synthesis);
    - {!sync_det} — recorded sync order and inputs enforced, race outcomes
      searched until outputs match (ODR's heavier scheme);
    - {!rcse} — recorded control-plane subsequence enforced, data plane
      searched until the failure reproduces (§3.1).

    When the log carries a fault plan (the recorded run executed under an
    adversarial environment), drivers that build their own replay worlds
    (perfect, failure, output random-restarts, rcse) re-inject the plan so
    the environment — and hence the schedule and deliveries — matches the
    recording. Value- and sync-determinism oracles force poll outcomes
    from the log directly; their recorded decisions already embed the
    faults, so they are not wrapped. *)

open Mvm
open Ddet_record

type outcome = {
  model : string;
  result : Interp.result option;  (** the replayed execution, if any *)
  partial : Search.partial option;
      (** when the budget ran out (or the oracle diverged): the
          best-effort candidate and how close it came to the recording —
          the degraded, DF <= 1/n reproduction the paper asks for instead
          of all-or-nothing failure *)
  attempts : int;
  total_steps : int;  (** VM steps spent on inference across all attempts *)
  deadline_hit : bool;  (** the budget's wall-clock deadline cut the search *)
  incidents : Search.incident list;
      (** supervision report: attempts that crashed and were requeued or
          poisoned instead of aborting the search *)
}

(** [exit_code ?damaged o] is the CLI's exit-code contract, kept here so
    it is testable without forking the binary: [0] reproduced, [3]
    degraded to a partial candidate, [4] the log was damaged/salvaged,
    [5] deadline or budget exhausted with nothing to show. [damaged]
    (the log needed salvage) dominates. *)
val exit_code : ?damaged:bool -> outcome -> int

val exit_ok : int
val exit_partial : int
val exit_salvaged : int
val exit_deadline : int

val perfect : Label.labeled -> spec:Spec.t -> Log.t -> outcome

(** [value_det] tries a few seeds; per-thread value forcing makes each
    attempt cheap. All searching drivers take [jobs] (default 1): with
    [jobs > 1] the search fans over that many OCaml 5 domains via
    {!Par_search}, with outcomes identical to the sequential search.
    [tuning] adjusts the parallel scheduler's knobs (chunk size,
    speculation window, min-work threshold, cores cap) — wall-clock
    only, never outcomes. *)
val value_det :
  ?budget:Search.budget ->
  ?jobs:int ->
  ?tuning:Par_search.tuning ->
  ?checkpoint:Checkpoint.sink ->
  ?resume:Checkpoint.t ->
  Label.labeled ->
  spec:Spec.t ->
  Log.t ->
  outcome

(** [output_det ~exhaustive] — when [exhaustive] (default true) and the
    program's only recorded nondeterminism is inputs, enumerate input
    assignments; otherwise random restarts with output-prefix pruning. *)
val output_det :
  ?budget:Search.budget ->
  ?exhaustive:bool ->
  ?jobs:int ->
  ?tuning:Par_search.tuning ->
  ?checkpoint:Checkpoint.sink ->
  ?resume:Checkpoint.t ->
  Label.labeled ->
  spec:Spec.t ->
  Log.t ->
  outcome

(** [priority] (from a static race analysis) biases each attempt's world
    toward scheduling threads at suspect sites ({!Search.priority_world})
    — same acceptance test, typically fewer attempts on race failures.
    Omitting it keeps the historical uniform-random attempts, so
    checkpoints from earlier versions resume identically. *)
val failure_det :
  ?budget:Search.budget ->
  ?jobs:int ->
  ?tuning:Par_search.tuning ->
  ?checkpoint:Checkpoint.sink ->
  ?resume:Checkpoint.t ->
  ?priority:Search.site_priority ->
  Label.labeled ->
  spec:Spec.t ->
  Log.t ->
  outcome

val sync_det :
  ?budget:Search.budget ->
  ?jobs:int ->
  ?tuning:Par_search.tuning ->
  ?checkpoint:Checkpoint.sink ->
  ?resume:Checkpoint.t ->
  Label.labeled ->
  spec:Spec.t ->
  Log.t ->
  outcome

(** [strict] (default true) treats out-of-order recorded sites as
    divergence; pass [false] for windowed (trigger/invariant) logs — see
    {!Oracle.rcse}. *)
val rcse :
  ?budget:Search.budget ->
  ?strict:bool ->
  ?jobs:int ->
  ?tuning:Par_search.tuning ->
  ?checkpoint:Checkpoint.sink ->
  ?resume:Checkpoint.t ->
  Label.labeled ->
  spec:Spec.t ->
  Log.t ->
  outcome

(** Replay for logs recorded under an overhead governor
    ({!Ddet_record.Governor}): degraded windows are missing entries by
    design, so the deterministic oracles would misalign. Instead the
    driver searches — random restarts under the recorded fault plan,
    accepting any execution that reproduces the recorded failure, with
    closeness scoring so exhaustion still yields the best partial. Use
    when {!Ddet_record.Log.governed} holds. *)
val governed :
  ?budget:Search.budget ->
  ?jobs:int ->
  ?tuning:Par_search.tuning ->
  ?checkpoint:Checkpoint.sink ->
  ?resume:Checkpoint.t ->
  Label.labeled ->
  spec:Spec.t ->
  Log.t ->
  outcome

(** Partial-evidence replay over a stitched shard merge ({!Stitch}):
    surviving nodes' merged order and inputs steer each attempt via
    {!Oracle.partial}, lost nodes' schedule and inputs are searched by
    random restarts under the recorded fault plan, accepted when the
    recorded failure reproduces.

    The exit-code contract extends to shard evidence: a reproduction
    from a shard set with missing or salvaged members still exits
    [exit_ok] — missing evidence honestly searched around is a success,
    reported as degraded DF, not an error; exhaustion with a best
    partial candidate is [exit_partial]; an all-shards-lost set (no
    evidence at all — [damaged]) is [exit_salvaged].

    [steer] passes static communication hints ({!Oracle.steer}) to the
    attempts' partial oracles, bounding the search to the lost-node
    decision points that can statically reach surviving evidence. The
    first two attempts always run unsteered — byte-identical to the
    uninformed search — so a failure the projection reproduces on the
    first shots costs the same with or without hints; steering only
    redirects the shots that would otherwise wander. *)
val stitched :
  ?budget:Search.budget ->
  ?jobs:int ->
  ?tuning:Par_search.tuning ->
  ?checkpoint:Checkpoint.sink ->
  ?resume:Checkpoint.t ->
  ?steer:Oracle.steer ->
  Label.labeled ->
  spec:Spec.t ->
  Stitch.t ->
  outcome

(** [pp_outcome] prints model, success, attempts and steps — plus the
    partial candidate's closeness when the replay degraded. *)
val pp_outcome : Format.formatter -> outcome -> unit
