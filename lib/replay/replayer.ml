open Mvm
open Ddet_record

type outcome = {
  model : string;
  result : Interp.result option;
  partial : Search.partial option;
  attempts : int;
  total_steps : int;
  deadline_hit : bool;
  incidents : Search.incident list;
}

let of_search model (o : Search.outcome) =
  {
    model;
    result = o.Search.result;
    partial = o.Search.partial;
    attempts = o.Search.stats.attempts;
    total_steps = o.Search.stats.total_steps;
    deadline_hit = o.Search.stats.deadline_hit;
    incidents = o.Search.stats.incidents;
  }

(* The CLI's exit-code contract, kept in the library so it can be tested
   without forking the binary:
     0  the failure was reproduced (full-fidelity replay)
     3  budget exhausted, degraded to a partial candidate (DF 1/n)
     4  the log arrived damaged and was salvaged (replay is best-effort,
        whatever its outcome short of success)
     5  nothing to show: deadline or budget ran out with no candidate *)
let exit_ok = 0
let exit_partial = 3
let exit_salvaged = 4
let exit_deadline = 5

let exit_code ?(damaged = false) o =
  match o.result with
  | Some _ -> if damaged then exit_salvaged else exit_ok
  | None ->
    if damaged then exit_salvaged
    else if o.deadline_hit then exit_deadline
    else if o.partial <> None then exit_partial
    else exit_deadline

(* The recorded run may have executed under a fault plan; replay must
   re-create that adversarial environment or the schedule and deliveries
   diverge immediately. The plan ships inside the log, and its decisions
   are pure hashes of (seed, step, ...), so wrapping the replay world in
   the same plan reproduces the same faults at the same steps. Oracles
   that force poll outcomes from the log themselves (value and sync
   determinism) must NOT be wrapped: their forced decisions already embed
   the recorded faults, and injecting on top would corrupt them. *)
let env_world (log : Log.t) w =
  match log.Log.faults with None -> w | Some plan -> Fault.inject plan w

(* Each search attempt re-executes the recorded program, so the recorded
   run's length is the natural per-attempt cost estimate for the
   min-work heuristic (Par_search falls back to sequential when an
   attempt is cheaper than spawning domains). A log whose header lost
   its base steps gives no estimate rather than a misleading zero. *)
let est_of (log : Log.t) =
  if log.Log.base_steps > 0 then Some log.Log.base_steps else None

let perfect labeled ~spec log =
  let handle = Oracle.perfect log in
  let world = env_world log handle.Oracle.world in
  let r = Interp.run ~abort:handle.Oracle.abort labeled world in
  let r = Spec.apply spec r in
  let ok = (not (handle.Oracle.violated ())) && Constraints.failure_matches log r in
  {
    model = "perfect";
    result = (if ok then Some r else None);
    partial =
      (if ok then None
       else
         Some
           {
             Search.best = r;
             closeness = Constraints.closeness log r;
             attempt = 1;
           });
    attempts = 1;
    total_steps = r.steps;
    deadline_hit = false;
    incidents = [];
  }

let small_budget =
  {
    Search.max_attempts = 10;
    max_steps_per_attempt = 100_000;
    base_seed = 1;
    deadline_s = None;
  }

let value_det ?(budget = small_budget) ?(jobs = 1) ?tuning ?checkpoint ?resume labeled
    ~spec log =
  Par_search.random_restarts ~jobs ?tuning ?est_attempt_steps:(est_of log)
    ?checkpoint ?resume budget
    ~score:(Constraints.closeness log)
    ~make:(fun ~attempt ->
      let handle = Oracle.value_det ~seed:(budget.base_seed + attempt) log in
      (handle.Oracle.world, Some handle.Oracle.abort))
    ~spec
    ~accept:(Constraints.failure_matches log)
    labeled
  |> of_search "value"

let output_det ?(budget = Search.default_budget) ?(exhaustive = true)
    ?(jobs = 1) ?tuning ?checkpoint ?resume labeled ~spec log =
  let accept = Constraints.outputs_match log in
  let score = Constraints.closeness log in
  let o =
    if exhaustive then
      Par_search.enumerate_inputs ~jobs ?tuning ?est_attempt_steps:(est_of log)
        ?checkpoint ?resume budget ~score ~spec ~accept labeled
    else
      Par_search.random_restarts ~jobs ?tuning ?est_attempt_steps:(est_of log)
        ?checkpoint ?resume budget ~score
        ~make:(fun ~attempt ->
          ( env_world log (World.random ~seed:(budget.base_seed + attempt)),
            Some (Constraints.output_prefix_abort log) ))
        ~spec ~accept labeled
  in
  of_search "output" o

let failure_det ?(budget = Search.default_budget) ?(jobs = 1) ?tuning ?checkpoint
    ?resume ?priority labeled ~spec log =
  let attempt_world =
    match priority with
    | None -> fun ~seed -> World.random ~seed
    | Some p ->
      let prefer = Search.site_prefer p in
      fun ~seed -> World.prioritized ~seed ~prefer
  in
  Par_search.random_restarts ~jobs ?tuning ?est_attempt_steps:(est_of log)
    ?checkpoint ?resume budget
    ~score:(Constraints.closeness log)
    ~make:(fun ~attempt ->
      (env_world log (attempt_world ~seed:(budget.base_seed + attempt)), None))
    ~spec
    ~accept:(Constraints.failure_matches log)
    labeled
  |> of_search "failure"

let sync_det ?(budget = Search.default_budget) ?(jobs = 1) ?tuning ?checkpoint ?resume
    labeled ~spec log =
  Par_search.random_restarts ~jobs ?tuning ?est_attempt_steps:(est_of log)
    ?checkpoint ?resume budget
    ~score:(Constraints.closeness log)
    ~make:(fun ~attempt ->
      let handle = Oracle.sync ~seed:(budget.base_seed + attempt) log in
      ( handle.Oracle.world,
        Some
          (Constraints.both handle.Oracle.abort
             (Constraints.output_prefix_abort log)) ))
    ~spec
    ~accept:(Constraints.outputs_match log)
    labeled
  |> of_search "sync"

let rcse ?(budget = Search.default_budget) ?(strict = true) ?(jobs = 1)
    ?tuning ?checkpoint ?resume labeled ~spec log =
  Par_search.random_restarts ~jobs ?tuning ?est_attempt_steps:(est_of log)
    ?checkpoint ?resume budget
    ~score:(Constraints.closeness log)
    ~make:(fun ~attempt ->
      let handle = Oracle.rcse ~strict ~seed:(budget.base_seed + attempt) log in
      (env_world log handle.Oracle.world, Some handle.Oracle.abort))
    ~spec
    ~accept:(Constraints.failure_matches log)
    labeled
  |> of_search "rcse"

(* A governed log has windows where the governor dialled fidelity down
   and entries are missing by design. The deterministic oracles (value,
   sync) would misalign against those gaps — their forced decisions
   assume a complete stream — so governed logs replay by search: random
   restarts under the recorded fault plan, accepted when the original
   failure reproduces, closeness-scored so budget exhaustion still
   yields the best partial. The degraded windows are exactly the search
   regions; everything outside them is pinned by the surviving entries
   through the closeness score. *)
let governed ?(budget = Search.default_budget) ?(jobs = 1) ?tuning ?checkpoint
    ?resume labeled ~spec log =
  Par_search.random_restarts ~jobs ?tuning ?est_attempt_steps:(est_of log)
    ?checkpoint ?resume budget
    ~score:(Constraints.closeness log)
    ~make:(fun ~attempt ->
      (env_world log (World.random ~seed:(budget.base_seed + attempt)), None))
    ~spec
    ~accept:(Constraints.failure_matches log)
    labeled
  |> of_search "governed"

(* Partial-evidence replay over a stitched shard merge. When the stitch
   is complete this is never the right driver (use the model's own); when
   evidence is missing, the merged order and surviving inputs steer each
   attempt through Oracle.partial, the lost nodes' threads and inputs
   are searched by random restarts under the recorded fault plan, and
   acceptance is the recorded failure — reproduced from partial
   evidence. *)
let stitched ?(budget = Search.default_budget) ?(jobs = 1) ?tuning ?checkpoint
    ?resume ?steer labeled ~spec (st : Stitch.t) =
  let log = st.Stitch.log in
  Par_search.random_restarts ~jobs ?tuning ?est_attempt_steps:(est_of log)
    ?checkpoint ?resume budget
    ~score:(Constraints.closeness log)
    ~make:(fun ~attempt ->
      (* the first attempt replays the surviving projection unbiased —
         identical to the uninformed search — so steering can only speed
         up later shots, never cost a first-try reproduction *)
      let steer = if attempt <= 2 then None else steer in
      let handle =
        Oracle.partial ?steer ~seed:(budget.base_seed + attempt) log
      in
      (env_world log handle.Oracle.world, Some handle.Oracle.abort))
    ~spec
    ~accept:(Constraints.failure_matches log)
    labeled
  |> of_search "stitched"

let pp_outcome ppf o =
  Format.fprintf ppf "%s: %s after %d attempt(s), %d inference steps" o.model
    (match o.result with Some _ -> "replayed" | None -> "NOT replayed")
    o.attempts o.total_steps;
  (match o.result, o.partial with
  | None, Some p ->
    Format.fprintf ppf "; best partial candidate: closeness %.2f (attempt %d)"
      p.Search.closeness p.Search.attempt
  | _ -> ());
  if o.deadline_hit then Format.fprintf ppf "; deadline hit";
  match o.incidents with
  | [] -> ()
  | incs ->
    Format.fprintf ppf "; %d worker incident(s):" (List.length incs);
    List.iter (fun i -> Format.fprintf ppf "@ [%a]" Search.pp_incident i) incs
