(** Shared machinery of the enumeration engines: decision odometers,
    instrumented worlds, and single-attempt executors.

    {!Search} composes these sequentially; {!Par_search} fans the same
    attempts over worker domains. One attempt is a pure function of its
    decision prefix (plus a read-only glance at the shared {!Seen} set),
    which is what makes speculative parallel execution reproduce the
    sequential search exactly. *)

open Mvm

(** Digest set of already-covered scheduling states, safe to consult from
    other domains. Discipline: anyone may {!Seen.mem}; only the side that
    processes attempts in sequential order may {!Seen.add} — that keeps
    every concurrent lookup an under-approximation of what the sequential
    search would know, so an early hit is always authoritative. *)
module Seen : sig
  type t

  val create : unit -> t
  val mem : t -> int -> bool
  val add : t -> int -> unit

  (** [elements t] snapshots the digests (sorted) — what a checkpoint
      persists so a resumed DFS can replant its pruning state. *)
  val elements : t -> int list
end

(** [advance prefix sizes] steps the decision odometer: bump the
    shallowest digit with room, reset everything below it, [None] when
    the space is exhausted. [sizes] are the digit fan-outs discovered by
    running [prefix] (shallowest first); digits beyond [sizes] are
    dropped. Varying the earliest decisions first matters for schedule
    search — races live in the early interleaving. *)
val advance : int array -> int list -> int array option

type early =
  | Ran  (** the attempt ran to its natural end *)
  | Early_pruned  (** cut at the checkpoint: state already covered *)
  | Early_clamped  (** cut at a prefix digit whose fan-out shrank *)

type probe = {
  result : Interp.result;
  sizes : int list;
      (** discovered digit fan-outs, shallowest first, already truncated
          for the pruned/clamped cases so {!advance} skips the dead
          branch *)
  checkpoint : (int * int * int list) option;
      (** (digest, steps, sizes) at the first post-prefix decision *)
  plants : int list;
      (** digests of every post-prefix decision of a completed run — the
          states whose subtrees this run's enumeration now covers *)
  early : early;
}

(** Per-worker execution context — the arena of the search hot path. It
    holds the program compiled once ({!Interp.compile}), a reusable
    interpreter exec state, the pruner's hash tables and a warm trace
    capacity, all reused across every attempt executed with it: attempts
    stop paying compile cost, table allocation and trace regrowth.
    Attempts run through a ctx use {!Interp.run_compiled} — byte-identical
    results to the AST walker, substantially cheaper per step. A ctx must
    not be shared between concurrent attempts; each worker domain builds
    its own with {!make_ctx}. *)
type ctx

(** [make_ctx labeled] compiles the program and allocates its arena. *)
val make_ctx : Label.labeled -> ctx

(** [run_attempt ~max_steps ~abort labeled world] executes one attempt:
    the AST walker without a [ctx], the compiled hot path with one
    (warm-starting the trace at the previous attempt's event count unless
    [trace_capacity] overrides it). The raw entry point for engines that
    build their own worlds — the odometer engines use {!exec_inputs} and
    {!exec_schedule} instead. *)
val run_attempt :
  ?ctx:ctx ->
  ?monitors:(Event.t -> unit) list ->
  max_steps:int ->
  abort:(Event.t -> string option) ->
  ?cancel:(unit -> string option) ->
  ?trace_capacity:int ->
  Label.labeled ->
  World.t ->
  Interp.result

(** [exec_inputs ~budget ~prefix labeled] runs one input-odometer attempt;
    [budget] is the step cap. [cancel] is polled at every event: parallel
    workers use it to abandon speculative runs that can no longer be
    processed (the result is then discarded, never judged). [wall] is the
    coarse cousin forwarded to {!Interp.run}'s [cancel] (polled every 128
    steps): deadline budgets use it to cut a long attempt mid-run. [ctx]
    switches the attempt onto the compiled hot path (see {!ctx}). *)
val exec_inputs :
  ?ctx:ctx ->
  ?trace_capacity:int ->
  ?cancel:(unit -> bool) ->
  ?wall:(unit -> string option) ->
  budget:int ->
  prefix:int array ->
  Label.labeled ->
  probe

type pruning = {
  seen : Seen.t;
  plant : bool;
      (** [true]: plant post-prefix digests into [seen] during the run
          (sequential search, where runner and reducer coincide).
          [false]: only report them in {!probe.plants} (parallel workers;
          the reducer plants). *)
}

(** [exec_schedule ?pruning ~budget ~prefix labeled] runs one
    schedule-odometer attempt. With [pruning], the run is cut short at
    the first post-prefix decision if its canonical state digest is
    already in [seen]. *)
val exec_schedule :
  ?ctx:ctx ->
  ?trace_capacity:int ->
  ?pruning:pruning ->
  ?cancel:(unit -> bool) ->
  ?wall:(unit -> string option) ->
  budget:int ->
  prefix:int array ->
  Label.labeled ->
  probe

type verdict =
  | Attempt of Interp.result * int list
      (** count and judge it; advance the odometer with these sizes *)
  | Skipped of { steps : int; sizes : int list }
      (** pruned or clamped: not an attempt; [steps] is the inference
          work the sequential search would have spent before cutting the
          run short *)

(** [classify ?seen probe] is the in-order reducer's authoritative ruling
    on a (possibly speculatively executed) probe. With [seen], a run that
    completed on a worker before an earlier attempt planted its
    checkpoint state is re-classified as pruned after the fact. *)
val classify : ?seen:Seen.t -> probe -> verdict
