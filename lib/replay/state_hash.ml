open Mvm

(* Mixing: a splitmix64-style finalizer over native ints. Quality matters
   more than speed here — a collision between genuinely different states
   makes the pruner skip a schedule it should have explored. *)
let mix h x =
  let z = h + 0x165667B19E3779F9 + x in
  let z = (z lxor (z lsr 30)) * 0x27D4EB2F165667C5 in
  let z = (z lxor (z lsr 27)) * 0x2545F4914F6CDD1D in
  z lxor (z lsr 31)

let hash_value (v : Value.tagged) = Hashtbl.hash v.Value.v

type t = {
  (* tid -> rolling hash of that thread's own event sequence (site + kind,
     global step excluded). The per-thread projection is invariant under
     reorderings of commuting operations, which is exactly the equivalence
     the pruner wants to collapse. *)
  per_tid : (int, int) Hashtbl.t;
  mutable tid_sum : int;
  (* (region, index) -> hash of the cell's current value. Captures the
     part of history that per-thread projections cannot: the winner of
     racing writes to the same cell. *)
  mem : (string * int option, int) Hashtbl.t;
  mutable mem_sum : int;
  (* per-channel rolling hashes of the global send / recv / output value
     sequences: queue contents and emission order are real state. *)
  chan_send : (string, int) Hashtbl.t;
  chan_recv : (string, int) Hashtbl.t;
  chan_out : (string, int) Hashtbl.t;
  mutable chan_sum : int;
  (* mutex -> owner tid *)
  locks : (string, int) Hashtbl.t;
  mutable lock_sum : int;
}

let create () =
  {
    per_tid = Hashtbl.create 8;
    tid_sum = 0;
    mem = Hashtbl.create 32;
    mem_sum = 0;
    chan_send = Hashtbl.create 8;
    chan_recv = Hashtbl.create 8;
    chan_out = Hashtbl.create 8;
    chan_sum = 0;
    locks = Hashtbl.create 4;
    lock_sum = 0;
  }

(* Each component is a sum of per-key terms, so updating one key is
   "subtract old term, add new term" — O(1) per event, commutative over
   keys, order-sensitive within a key's own rolling hash. *)

let salt_tid = 11
let salt_mem = 13
let salt_send = 17
let salt_recv = 19
let salt_out = 23
let salt_lock = 29

let term salt key h = mix (mix salt (Hashtbl.hash key)) h

let update_tid t tid h' =
  let old = Option.value ~default:0 (Hashtbl.find_opt t.per_tid tid) in
  Hashtbl.replace t.per_tid tid h';
  t.tid_sum <- t.tid_sum - term salt_tid tid old + term salt_tid tid h'

let roll salt tbl key x sum_get sum_set =
  let old = Option.value ~default:0 (Hashtbl.find_opt tbl key) in
  let h' = mix old x in
  Hashtbl.replace tbl key h';
  sum_set (sum_get () - term salt key old + term salt key h')

let feed t (e : Event.t) =
  (* per-thread projection: every event, keyed by site and kind but not by
     global step *)
  let old = Option.value ~default:0 (Hashtbl.find_opt t.per_tid e.Event.tid) in
  update_tid t e.Event.tid
    (mix (mix old e.Event.sid) (Hashtbl.hash e.Event.kind));
  match e.Event.kind with
  | Event.Write { region; index; value } ->
    let key = (region, index) in
    let old_v = Hashtbl.find_opt t.mem key in
    let v' = hash_value value in
    Hashtbl.replace t.mem key v';
    let sub = match old_v with Some o -> term salt_mem key o | None -> 0 in
    t.mem_sum <- t.mem_sum - sub + term salt_mem key v'
  | Event.Msg_send { chan; value } ->
    roll salt_send t.chan_send chan (hash_value value)
      (fun () -> t.chan_sum)
      (fun s -> t.chan_sum <- s)
  | Event.Msg_recv { chan; value } ->
    roll salt_recv t.chan_recv chan (hash_value value)
      (fun () -> t.chan_sum)
      (fun s -> t.chan_sum <- s)
  | Event.Out { chan; value } ->
    roll salt_out t.chan_out chan (hash_value value)
      (fun () -> t.chan_sum)
      (fun s -> t.chan_sum <- s)
  | Event.Lock_acq m ->
    Hashtbl.replace t.locks m e.Event.tid;
    t.lock_sum <- t.lock_sum + term salt_lock m e.Event.tid
  | Event.Lock_rel m ->
    (match Hashtbl.find_opt t.locks m with
    | Some owner ->
      Hashtbl.remove t.locks m;
      t.lock_sum <- t.lock_sum - term salt_lock m owner
    | None -> ())
  | Event.Step | Event.Read _ | Event.In _ | Event.Spawned _ | Event.Crashed _
    ->
    ()

let reset t =
  Hashtbl.reset t.per_tid;
  t.tid_sum <- 0;
  Hashtbl.reset t.mem;
  t.mem_sum <- 0;
  Hashtbl.reset t.chan_send;
  Hashtbl.reset t.chan_recv;
  Hashtbl.reset t.chan_out;
  t.chan_sum <- 0;
  Hashtbl.reset t.locks;
  t.lock_sum <- 0

let digest t =
  mix
    (mix (mix (mix 0 t.tid_sum) t.mem_sum) t.chan_sum)
    t.lock_sum
