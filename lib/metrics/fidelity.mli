(** Debugging fidelity (DF, §3.2): the ability to reproduce the root cause
    and the failure.

    - 0 when the replay does not reproduce the failure;
    - 1 when it reproduces the failure through the original root cause;
    - 1/n when it reproduces the failure through a different root cause,
      where n is the number of possible root causes for the observed
      failure. *)

open Mvm

(** [df ~catalog ~original ~replay] computes DF. [replay = None] (inference
    exhausted its budget, or the oracle diverged) scores 0. When the
    original run's root cause cannot be identified from the catalog, the
    replayed failure alone scores 1/n (we cannot claim cause fidelity). *)
val df :
  catalog:Root_cause.catalog ->
  original:Interp.result ->
  replay:Interp.result option ->
  float

(** [explain ~catalog ~original ~replay] is DF plus the matched cause ids:
    [(df, original_cause, replay_cause)]. *)
val explain :
  catalog:Root_cause.catalog ->
  original:Interp.result ->
  replay:Interp.result option ->
  float * string option * string option

(** [floor_df catalog] is 1/n for the catalog's n root causes — the DF of
    a reproduction that carries no root-cause information. Degraded
    replays (salvaged logs, partial search outcomes) are capped here:
    fidelity falls to 1/n, not to 0 (§3.2). *)
val floor_df : Root_cause.catalog -> float

(** [df_partial ~catalog ~original ~best] scores a best-effort candidate
    from an exhausted search: [floor_df catalog] when it reproduces the
    original failure, 0 otherwise. A partial reproduction never claims
    cause fidelity, so it never scores above the floor. *)
val df_partial :
  catalog:Root_cause.catalog ->
  original:Interp.result ->
  best:Interp.result ->
  float
