(** Debugging efficiency (DE, §3.2): the duration of the original execution
    divided by the time the tool takes to reproduce the failure, including
    any analysis time.

    Durations are measured uniformly in VM steps: the original run's steps
    versus every step the replayer executed across all inference attempts.
    Values are normally below 1; execution synthesis that finds a shorter
    execution quickly can exceed 1, exactly as the paper notes. *)

open Mvm

(** [de ~original ~outcome] — 0 when the replay failed to reproduce. *)
val de : original:Interp.result -> outcome:Ddet_replay.Replayer.outcome -> float

(** [ratio ~original ~inference_steps] is the raw steps ratio, for callers
    that decide reproduction success themselves (degraded DF accounting
    prices partial reproductions with the same units). *)
val ratio : original:Interp.result -> inference_steps:int -> float
