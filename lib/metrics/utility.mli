(** Debugging utility (DU, §3.2): DU = DF x DE, and the one-call assessment
    of a (record, replay) experiment against a root-cause catalog. *)

open Mvm
open Ddet_record

type assessment = {
  model : string;
  overhead : float;  (** recording overhead factor from the cost model *)
  df : float;
  de : float;
  du : float;
  original_cause : string option;
  replay_cause : string option;
  attempts : int;
  inference_steps : int;
  degraded : bool;
      (** the replay was best-effort: the log was salvaged from a damaged
          file, the search exhausted its budget and only a partial
          candidate reproduced the failure, or the recording ran under an
          overhead governor that dropped entries *)
  governed_windows : int;
      (** how many windows the overhead governor degraded fidelity in
          during recording (0 for ungoverned logs) *)
  df_floor : float option;
      (** for governed logs, the honest guaranteed fidelity: the 1/n
          floor. The measured [df] is reported as-is — a search that
          lands the true root cause has landed it — but no stronger
          fidelity can be {e guaranteed} once windows are missing. *)
}

(** [assess ?cost_model ?salvaged ~catalog ~original ~log outcome]
    computes overhead (from [log]), DF, DE and DU for one experiment.

    [salvaged] (default false) marks the log as recovered from a damaged
    file: a full reproduction from it is capped at DF = 1/n, since the
    missing entries void any root-cause claim. Independently, when the
    search failed but its best partial candidate reproduces the failure,
    DF degrades to the 1/n floor (instead of 0) and DE prices the
    inference work spent getting there. *)
val assess :
  ?cost_model:Cost_model.t ->
  ?salvaged:bool ->
  catalog:Root_cause.catalog ->
  original:Interp.result ->
  log:Log.t ->
  Ddet_replay.Replayer.outcome ->
  assessment

val pp : Format.formatter -> assessment -> unit
