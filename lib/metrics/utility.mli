(** Debugging utility (DU, §3.2): DU = DF x DE, and the one-call assessment
    of a (record, replay) experiment against a root-cause catalog. *)

open Mvm
open Ddet_record

type assessment = {
  model : string;
  overhead : float;  (** recording overhead factor from the cost model *)
  df : float;
  de : float;
  du : float;
  original_cause : string option;
  replay_cause : string option;
  attempts : int;
  inference_steps : int;
  degraded : bool;
      (** the replay was best-effort: the log was salvaged from a damaged
          file, the search exhausted its budget and only a partial
          candidate reproduced the failure, or the recording ran under an
          overhead governor that dropped entries *)
  governed_windows : int;
      (** how many windows the overhead governor degraded fidelity in
          during recording (0 for ungoverned logs) *)
  df_floor : float option;
      (** the honest guaranteed fidelity when evidence is incomplete (a
          governed log, or shard evidence with non-intact members): the
          1/n floor. The measured [df] is reported as-is — a search that
          lands the true root cause has landed it — but no stronger
          fidelity can be {e guaranteed} once windows or shards are
          missing. *)
  node_df : (string * float) list;
      (** per-node fidelity over shard evidence (empty for monolithic
          logs): intact nodes back the measured DF, salvaged nodes at
          most the floor, lost nodes the floor when the failure
          reproduced and 0 otherwise *)
  lost_nodes : string list;  (** nodes whose shards contributed nothing *)
}

(** [assess ?cost_model ?salvaged ~catalog ~original ~log outcome]
    computes overhead (from [log]), DF, DE and DU for one experiment.

    [salvaged] (default false) marks the log as recovered from a damaged
    file: a full reproduction from it is capped at DF = 1/n, since the
    missing entries void any root-cause claim. Independently, when the
    search failed but its best partial candidate reproduces the failure,
    DF degrades to the 1/n floor (instead of 0) and DE prices the
    inference work spent getting there.

    [evidence] (default empty) is the per-node shard evidence of a
    distributed recording (from {!Ddet_replay.Stitch.t.evidence});
    supplying it populates [node_df]/[lost_nodes] and, when any shard
    is not intact, flags the assessment degraded with the combined
    floor in [df_floor]. *)
val assess :
  ?cost_model:Cost_model.t ->
  ?salvaged:bool ->
  ?evidence:(string * Sharded_log.shard_status) list ->
  catalog:Root_cause.catalog ->
  original:Interp.result ->
  log:Log.t ->
  Ddet_replay.Replayer.outcome ->
  assessment

val pp : Format.formatter -> assessment -> unit
