open Mvm

let failure_reproduced (original : Interp.result) (replay : Interp.result) =
  match original.failure, replay.failure with
  | Some f, Some f' -> Mvm.Failure.equal f f'
  | _ -> false

let explain ~catalog ~original ~replay =
  match replay with
  | None -> (0., Option.map (fun c -> c.Root_cause.id) (Root_cause.primary catalog original), None)
  | Some replay ->
    let orig_cause = Root_cause.primary catalog original in
    let replay_cause = Root_cause.primary catalog replay in
    let id c = c.Root_cause.id in
    if not (failure_reproduced original replay) then
      (0., Option.map id orig_cause, Option.map id replay_cause)
    else
      let n = max 1 (Root_cause.n_causes catalog) in
      let df =
        match orig_cause, replay_cause with
        | Some a, Some b when String.equal a.Root_cause.id b.Root_cause.id -> 1.
        | _, _ -> 1. /. float_of_int n
      in
      (df, Option.map id orig_cause, Option.map id replay_cause)

let df ~catalog ~original ~replay =
  let v, _, _ = explain ~catalog ~original ~replay in
  v

(* The degraded-fidelity floor: reproducing the failure without a claim
   about the root cause is worth exactly 1/n — the paper's point that
   fidelity should fall to 1/n, not to 0, when information is lost. *)
let floor_df catalog = 1. /. float_of_int (max 1 (Root_cause.n_causes catalog))

let df_partial ~catalog ~original ~best =
  if failure_reproduced original best then floor_df catalog else 0.
