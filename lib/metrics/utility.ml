open Ddet_record

type assessment = {
  model : string;
  overhead : float;
  df : float;
  de : float;
  du : float;
  original_cause : string option;
  replay_cause : string option;
  attempts : int;
  inference_steps : int;
  degraded : bool;
  governed_windows : int;
  df_floor : float option;
  node_df : (string * float) list;
  lost_nodes : string list;
}

(* Degraded accounting (the paper's "DF should fall to 1/n, not 0"):

   - a full reproduction from a salvaged (damaged) log is capped at the
     1/n floor — the missing tail means the replay cannot substantiate a
     root-cause claim beyond "the failure reproduces";
   - an exhausted search whose best partial candidate still reproduces
     the failure scores the floor outright, and its inference work is
     priced into DE exactly like a successful search. *)
let assess ?(cost_model = Cost_model.default) ?(salvaged = false) ?(evidence = [])
    ~catalog ~original ~log (outcome : Ddet_replay.Replayer.outcome) =
  let df_full, original_cause, replay_cause =
    Fidelity.explain ~catalog ~original ~replay:outcome.result
  in
  let df, replay_cause, degraded =
    match outcome.result with
    | Some _ ->
      if salvaged then (Float.min df_full (Fidelity.floor_df catalog), replay_cause, true)
      else (df_full, replay_cause, false)
    | None -> (
      match outcome.partial with
      | Some p ->
        let df_p =
          Fidelity.df_partial ~catalog ~original ~best:p.Ddet_replay.Search.best
        in
        if df_p > 0. then
          ( df_p,
            Option.map
              (fun c -> c.Root_cause.id)
              (Root_cause.primary catalog p.Ddet_replay.Search.best),
            true )
        else (0., replay_cause, salvaged)
      | None -> (0., replay_cause, salvaged))
  in
  (* Governed windows don't cap the measured DF — a search that lands the
     true root cause has genuinely landed it — but they void any claim of
     guaranteed fidelity, so the assessment reports the honest 1/n floor
     alongside the measurement and flags the replay as degraded. *)
  let governed_windows = List.length (Log.governed_windows log) in
  let degraded = degraded || governed_windows > 0 in
  let df_floor =
    if governed_windows > 0 then Some (Fidelity.floor_df catalog) else None
  in
  (* Per-node fidelity over shard evidence (distributed recordings): a
     node whose log survived intact backs the measured DF; a salvaged
     shard backs at most the 1/n floor; a lost node backs only "the
     failure reproduces" — the floor when it did, zero otherwise. The
     combined claim can never exceed its weakest surviving evidence, so
     any non-intact shard both flags the assessment degraded and pins
     the guaranteed floor — never an all-or-nothing failure. *)
  let floor = Fidelity.floor_df catalog in
  let node_df =
    List.map
      (fun (node, status) ->
        ( node,
          match status with
          | Sharded_log.Intact -> df
          | Sharded_log.Salvaged _ -> if df > 0. then Float.min df floor else 0.
          | Sharded_log.Missing | Sharded_log.Corrupt _ ->
            if df > 0. then floor else 0. ))
      evidence
  in
  let lost_nodes =
    List.filter_map
      (fun (node, status) ->
        match status with
        | Sharded_log.Missing | Sharded_log.Corrupt _ -> Some node
        | Sharded_log.Intact | Sharded_log.Salvaged _ -> None)
      evidence
  in
  let evidence_degraded =
    List.exists (fun (_, st) -> st <> Sharded_log.Intact) evidence
  in
  let degraded = degraded || evidence_degraded in
  let df_floor =
    if evidence_degraded then
      Some (match df_floor with Some f -> Float.min f floor | None -> floor)
    else df_floor
  in
  let de =
    if df > 0. then
      Efficiency.ratio ~original ~inference_steps:outcome.total_steps
    else 0.
  in
  {
    model = outcome.model;
    overhead = Cost_model.overhead cost_model log;
    df;
    de;
    du = df *. de;
    original_cause;
    replay_cause;
    attempts = outcome.attempts;
    inference_steps = outcome.total_steps;
    degraded;
    governed_windows;
    df_floor;
    node_df;
    lost_nodes;
  }

let pp ppf a =
  Format.fprintf ppf
    "%-10s overhead %.2fx  DF %.2f  DE %.4f  DU %.4f  (cause %s -> %s, %d attempts)%s"
    a.model a.overhead a.df a.de a.du
    (Option.value ~default:"?" a.original_cause)
    (Option.value ~default:"-" a.replay_cause)
    a.attempts
    (if a.degraded then "  [degraded]" else "");
  (match a.df_floor with
  | Some floor when a.governed_windows > 0 ->
    Format.fprintf ppf "  [governed: %d window(s), DF floor %.2f]"
      a.governed_windows floor
  | Some floor -> Format.fprintf ppf "  [DF floor %.2f]" floor
  | None -> ());
  if a.node_df <> [] then begin
    Format.fprintf ppf "@   per-node DF:";
    List.iter
      (fun (n, d) ->
        Format.fprintf ppf " %s=%.2f%s" n d
          (if List.mem n a.lost_nodes then "(lost)" else ""))
      a.node_df
  end
