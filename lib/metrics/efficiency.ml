open Mvm

let ratio ~(original : Interp.result) ~inference_steps =
  float_of_int original.steps /. float_of_int (max 1 inference_steps)

let de ~original ~(outcome : Ddet_replay.Replayer.outcome) =
  match outcome.result with
  | None -> 0.
  | Some _ -> ratio ~original ~inference_steps:outcome.total_steps
