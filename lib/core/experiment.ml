open Mvm
open Ddet_apps
open Ddet_metrics

type row = {
  app : string;
  seed : int;
  assessment : Utility.assessment;
}

type rendered = { title : string; body : string }

(* The original execution of each experiment: the first production seed
   whose failure is cleanly attributed to the bug under study. *)
let find_seed (app : App.t) ~cause ~exclusive =
  match Workload.find_failing_seed ?cause ~exclusive app with
  | Some (seed, original) -> (seed, original)
  | None ->
    invalid_arg
      (Printf.sprintf "no failing production seed found for %s" app.App.name)

let suite () =
  [
    (Adder.app (), None, false);
    (Bufover.app (), None, false);
    (Msg_server.app (), Some "buffer-race", true);
    (Miniht.app (), Some Miniht.rc_race, true);
    (Cloudstore.app (), Some Cloudstore.rc_race, true);
  ]

let run_matrix ?config ?replays apps models =
  List.concat_map
    (fun ((app : App.t), cause, exclusive) ->
      let seed, _ = find_seed app ~cause ~exclusive in
      List.map
        (fun model ->
          {
            app = app.App.name;
            seed;
            assessment = Session.experiment_ensemble ?config ?replays model app ~seed;
          })
        models)
    apps

let fig1 ?config ?replays () =
  run_matrix ?config ?replays (suite ()) Model.fig1_sequence

let assessment_cells (a : Utility.assessment) =
  [
    Report.fx a.overhead;
    Report.fx a.df;
    Report.fx4 a.de;
    Report.fx4 a.du;
    Option.value ~default:"-" a.replay_cause;
  ]

let render_rows rows =
  Report.table
    ~headers:[ "app"; "model"; "overhead"; "DF"; "DE"; "DU"; "replay cause" ]
    (List.map
       (fun r -> (r.app :: r.assessment.Utility.model :: assessment_cells r.assessment))
       rows)

let mean xs = List.fold_left ( +. ) 0. xs /. float_of_int (max 1 (List.length xs))

let render_fig1 rows =
  let models = List.sort_uniq compare (List.map (fun r -> r.assessment.Utility.model) rows) in
  let order m =
    (* chronological relaxation order, as in the paper's Fig. 1 *)
    match m with
    | "perfect" -> 0 | "value" -> 1 | "sync" -> 2 | "output" -> 3
    | "failure" -> 4 | "rcse" -> 5 | _ -> 6
  in
  let models = List.sort (fun a b -> compare (order a) (order b)) models in
  let agg =
    List.map
      (fun m ->
        let of_model = List.filter (fun r -> r.assessment.Utility.model = m) rows in
        let ov = mean (List.map (fun r -> r.assessment.Utility.overhead) of_model) in
        let du = mean (List.map (fun r -> r.assessment.Utility.du) of_model) in
        let df = mean (List.map (fun r -> r.assessment.Utility.df) of_model) in
        [ m; Report.fx ov; Report.fx df; Report.fx4 du ])
      models
  in
  let dc_rows =
    List.filter
      (fun r -> List.mem r.app [ "msg_server"; "miniht"; "cloudstore" ])
      rows
  in
  let dc_agg =
    List.map
      (fun m ->
        let of_model =
          List.filter (fun r -> r.assessment.Utility.model = m) dc_rows
        in
        let ov = mean (List.map (fun r -> r.assessment.Utility.overhead) of_model) in
        let du = mean (List.map (fun r -> r.assessment.Utility.du) of_model) in
        let df = mean (List.map (fun r -> r.assessment.Utility.df) of_model) in
        [ m; Report.fx ov; Report.fx df; Report.fx4 du ])
      models
  in
  let body =
    "All four applications:\n"
    ^ Report.table ~headers:[ "model"; "overhead(x)"; "DF"; "DU" ] agg
    ^ "\n\nDatacenter applications only (msg_server, miniht, cloudstore — the paper's\n\
       domain, where a control/data-plane split exists):\n"
    ^ Report.table ~headers:[ "model"; "overhead(x)"; "DF"; "DU" ] dc_agg
    ^ "\n\nExpected shape (paper Fig. 1): overhead falls monotonically along the\n\
       relaxation sequence perfect > value > sync > output > failure, while\n\
       debugging utility degrades unpredictably for the ultra-relaxed models;\n\
       RCSE escapes the curve with near-relaxed overhead and high utility.\n\
       On applications with no data plane (adder, bufover) selective\n\
       recording honestly degenerates to full recording — the technique\n\
       targets datacenter software.\n\n\
       Per-app detail:\n" ^ render_rows rows
  in
  { title = "FIG1 relaxation trend: overhead vs. debugging utility"; body }

let fig2_models = [ Model.Value; Model.Failure_det; Model.Rcse Model.Code_based ]

let fig2 ?config ?replays () =
  let app = Miniht.app () in
  run_matrix ?config ?replays [ (app, Some Miniht.rc_race, true) ] fig2_models

let render_fig2 rows =
  let body =
    render_rows rows
    ^ "\n\nExpected shape (paper Fig. 2, Hypertable issue 63): value determinism\n\
       reaches DF 1 at the highest recording overhead (~3.5x there); failure\n\
       determinism records nothing (1.0x) but lands at DF 1/3 (three possible\n\
       root causes: the migration race, a server crash after upload, a dump\n\
       client OOM); RCSE with control-plane selection reaches DF 1 at a small\n\
       multiple of no-recording cost, escaping the Fig. 1 trend.\n"
  in
  { title = "FIG2 miniht (Hypertable issue 63): overhead vs. fidelity"; body }

let sec2_adder ?config () =
  let app = Adder.app () in
  let seed, _ = find_seed app ~cause:None ~exclusive:false in
  let prepared = Session.prepare ?config Model.Output app in
  let original, log = Session.record prepared ~seed in
  let outcome = Session.replay prepared log in
  let a = Session.assess prepared ~original ~log outcome in
  let inputs_of (r : Interp.result) =
    let one chan =
      match Trace.inputs_on r.Interp.trace chan with
      | (_, _, v) :: _ -> Value.to_string v
      | [] -> "?"
    in
    Printf.sprintf "a=%s b=%s -> sum=%s" (one "a") (one "b")
      (match Trace.outputs_on r.Interp.trace "sum" with
      | [ v ] -> Value.to_string v
      | _ -> "?")
  in
  let replay_desc =
    match outcome.Ddet_replay.Replayer.result with
    | Some r ->
      Printf.sprintf "replayed execution: %s (failure: %s)" (inputs_of r)
        (match r.Interp.failure with
        | Some f -> Mvm.Failure.to_string f
        | None -> "none - a correct sum!")
    | None -> "no output-matching execution found"
  in
  let body =
    Printf.sprintf
      "original execution: %s (failure: wrong-sum)\n%s\nDF = %.2f\n\n\
       The paper's Sec. 2 narrative: an output-deterministic replayer may\n\
       produce the recorded output 5 from inputs that sum to 5, which is not\n\
       a failure at all - the developer cannot find the indexing bug.\n"
      (inputs_of original) replay_desc a.Utility.df
  in
  { title = "SEC2-ADDER output determinism loses the failure"; body }

let sec2_drop ?config ?(replays = 10) () =
  let app = Msg_server.app () in
  let seed, original = find_seed app ~cause:(Some "buffer-race") ~exclusive:true in
  let prepared = Session.prepare ?config Model.Failure_det app in
  let _, log = Session.record prepared ~seed in
  let base = prepared.Session.config.Config.budget in
  let causes_of r =
    Root_cause.observed app.App.catalog r
    |> List.map (fun c -> c.Root_cause.id)
  in
  let tally = Hashtbl.create 8 in
  let misleading = ref 0 in
  for k = 0 to replays - 1 do
    let budget =
      { base with Ddet_replay.Search.base_seed = base.Ddet_replay.Search.base_seed + (7919 * k) }
    in
    let outcome = Session.replay ~budget prepared log in
    let key =
      match outcome.Ddet_replay.Replayer.result with
      | None -> "(not reproduced)"
      | Some r ->
        let causes = causes_of r in
        if not (List.mem "buffer-race" causes) then incr misleading;
        String.concat "+" causes
    in
    Hashtbl.replace tally key
      (1 + Option.value ~default:0 (Hashtbl.find_opt tally key))
  done;
  let dist =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tally []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
    |> List.map (fun (k, v) -> [ k; string_of_int v ])
  in
  let body =
    Printf.sprintf
      "original run (seed %d): %d messages dropped by the buffer race only\n\
       (no network congestion).\n\n\
       failure-determinism replays (%d independent syntheses), causes observed:\n%s\n\n\
       %d/%d replays reproduce the drop WITHOUT the buffer race - via network\n\
       congestion, which is beyond the developer's control. The paper's Sec. 2:\n\
       such a replay deceives the developer into thinking nothing can be done,\n\
       and the true root cause (the race) remains undiscovered.\n"
      seed
      (match original.Interp.failure with Some _ -> 1 | None -> 0)
      replays
      (Report.table ~headers:[ "replay causes"; "count" ] dist)
      !misleading replays
  in
  { title = "SEC2-DROP failure determinism can blame the environment"; body }

let rcse_models =
  [
    Model.Rcse Model.Code_based;
    Model.Rcse Model.Data_based;
    Model.Rcse Model.Trigger_based;
    Model.Rcse Model.Combined;
  ]

let ablation_rcse ?config ?replays () =
  let apps =
    [
      (Miniht.app (), Some Miniht.rc_race, true);
      (Cloudstore.app (), Some Cloudstore.rc_race, true);
      (Msg_server.app (), Some "buffer-race", true);
      (Bufover.app (), None, false);
    ]
  in
  run_matrix ?config ?replays apps rcse_models

let render_ablation rows =
  let body =
    render_rows rows
    ^ "\n\nReading guide: code-based selection shines when the root cause is\n\
       control-plane (miniht) and degenerates when it is not (msg_server's\n\
       buffer race is data-plane; bufover has no plane split, so everything\n\
       is recorded). Data-based selection needs an invariant related to the\n\
       root cause (bufover's trained input range catches the overflow;\n\
       miniht's race violates no simple range). Trigger-based selection\n\
       needs a detector for the defect class (the race detector fires on\n\
       msg_server and miniht). Combined selection is the union, at the\n\
       union's cost — the Sec. 3.1.3 design point.\n"
  in
  { title = "ABL-RCSE selection heuristics compared"; body }

let budget_sweep ?config () =
  let app = Miniht.app () in
  let seed, _ = find_seed app ~cause:(Some Miniht.rc_race) ~exclusive:true in
  let budgets = [ 1; 2; 3; 5; 10; 50 ] in
  let models = [ Model.Failure_det; Model.Rcse Model.Code_based ] in
  let rows =
    List.concat_map
      (fun model ->
        let prepared = Session.prepare ?config model app in
        let original, log = Session.record prepared ~seed in
        List.map
          (fun max_attempts ->
            let replays = 3 in
            let assessments =
              List.init replays (fun k ->
                  let budget =
                    {
                      Ddet_replay.Search.max_attempts;
                      max_steps_per_attempt = 50_000;
                      base_seed = 1 + (7919 * k);
                      deadline_s = None;
                    }
                  in
                  let outcome = Session.replay ~budget prepared log in
                  Session.assess prepared ~original ~log outcome)
            in
            let m f = mean (List.map f assessments) in
            [
              Model.name model;
              string_of_int max_attempts;
              Report.fx (m (fun (a : Utility.assessment) -> a.df));
              Report.fx4 (m (fun a -> a.de));
              Report.fx4 (m (fun a -> a.du));
            ])
          budgets)
      models
  in
  let body =
    Report.table ~headers:[ "model"; "budget(attempts)"; "DF"; "DE"; "DU" ] rows
    ^ "\n\nThe Sec. 3.2 efficiency discussion, measured: DF climbs with the\n\
       inference budget until it hits the model's fidelity ceiling (1/3 for\n\
       failure determinism on this bug, 1 for RCSE); past that point extra\n\
       budget buys nothing — the gap is the determinism model's, not the\n\
       search's. RCSE needs almost no search because the control plane is\n\
       pinned, so its DE stays near 1 even at tiny budgets.\n"
  in
  { title = "ABL-BUDGET inference budget vs. debugging efficiency"; body }

let flight_sweep ?(config = Config.default) ?(replays = 5) () =
  let app = Msg_server.app () in
  let seed, _ = find_seed app ~cause:(Some "buffer-race") ~exclusive:true in
  let capacities = [ None; Some 8; Some 32; Some 128; Some 512 ] in
  let rows =
    List.map
      (fun flight_ring ->
        let config = { config with Config.flight_ring } in
        let a =
          Session.experiment_ensemble ~config ~replays
            (Model.Rcse Model.Trigger_based) app ~seed
        in
        (match flight_ring with None -> "off" | Some n -> string_of_int n)
        :: assessment_cells a)
      capacities
  in
  let body =
    Report.table
      ~headers:[ "ring"; "overhead"; "DF"; "DE"; "DU"; "replay cause" ]
      rows
    ^ "\n\nTrigger-based selection only records *after* the race detector\n\
       fires, but the root cause lives in the moments before it: without a\n\
       flight ring the replay search is free to explain the drop with\n\
       network congestion instead (lower DF). A larger ring pins more of\n\
       the pre-trigger inputs — fidelity climbs toward 1 — at a recording\n\
       cost that grows with the buffered data. This is the classic\n\
       flight-data-recorder compromise of always-on tracing systems.\n"
  in
  { title = "ABL-FLIGHT pre-trigger ring capacity vs. fidelity"; body }

(* A deliberately race-free workload: the same read-modify-write counter,
   but lock-protected — every cross-thread access pair is ordered through
   the lock, so a precise detector must stay silent. *)
let locked_counter =
  let open Mvm.Dsl in
  program ~name:"locked-counter"
    ~regions:[ scalar "c" (Value.int 0) ]
    ~inputs:[] ~main:"main"
    [
      func "main" []
        [
          spawn "w" []; spawn "w" [];
          recv "d1" "done"; recv "d2" "done";
          output "out" (g "c");
        ];
      func "w" []
        [
          for_ "k" (i 0) (i 6)
            [ lock "m"; assign "t" (g "c"); store_g "c" (v "t" +: i 1); unlock "m" ];
          send "done" (i 1);
        ];
    ]

let race_detectors ?config () =
  ignore config;
  let open Ddet_analysis in
  let runs =
    [
      ("locked-counter (race-free)",
       Interp.run locked_counter (World.random ~seed:5));
      ("msg_server", App.production_run (Msg_server.app ()) ~seed:3);
      ("miniht", App.production_run (Miniht.app ()) ~seed:1);
    ]
  in
  let rows =
    List.concat_map
      (fun (name, (r : Interp.result)) ->
        let accesses = Trace.count Event.is_shared_access r.Interp.trace in
        let sampling = Race_detector.create Race_detector.default_config in
        Trace.iter (fun e -> ignore (Race_detector.observe sampling e)) r.Interp.trace;
        let hb = Hb_detector.create () in
        Trace.iter (fun e -> ignore (Hb_detector.observe hb e)) r.Interp.trace;
        [
          [
            name; "sampling (window)";
            string_of_int (List.length (Race_detector.reports sampling));
            string_of_int accesses;
          ];
          [
            name; "happens-before";
            string_of_int (List.length (Hb_detector.reports hb));
            string_of_int (Hb_detector.vc_operations hb);
          ];
        ])
      runs
  in
  let body =
    Report.table
      ~headers:[ "workload"; "detector"; "races reported"; "work (ops)" ]
      rows
    ^ "\n\nThe sampling window detector is cheap (one table probe per access)\n\
       but unsound: on the lock-protected counter it reports conflicting\n\
       accesses that are in fact ordered through the lock. The vector-clock\n\
       happens-before detector is precise — silent on the locked counter,\n\
       and it still finds the real races — but pays vector-clock work on\n\
       every operation. That cost asymmetry is why the paper's trigger\n\
       proposal (Sec. 3.1.3) cites *low-overhead* race detection for\n\
       production dial-up, accepting occasional spurious dial-ups.\n"
  in
  { title = "ABL-RACE sampling vs. happens-before race detection"; body }

(* The small schedule-only workload for the search comparison. *)
let racy_counter =
  let open Mvm.Dsl in
  program ~name:"racy-counter"
    ~regions:[ scalar "c" (Value.int 0) ]
    ~inputs:[] ~main:"main"
    [
      func "main" []
        [
          spawn "w" []; spawn "w" [];
          recv "d1" "done"; recv "d2" "done";
          output "out" (g "c");
        ];
      func "w" []
        [
          for_ "k" (i 0) (i 4)
            [ assign "t" (g "c"); store_g "c" (v "t" +: i 1) ];
          send "done" (i 1);
        ];
    ]

let racy_counter_spec =
  Spec.make "counts-to-eight" (fun r ->
      match Trace.outputs_on r.Interp.trace "out" with
      | [ Value.Vint 8 ] -> Ok ()
      | _ -> Error "lost-update")

let search_engines ?config () =
  let jobs = (Option.value ~default:Config.default config).Config.jobs in
  let open Ddet_replay in
  let cases =
    [
      (* find a failing seed, record the failure, infer it back. The DFS
         step cap matters: a systematic scheduler happily spins a polling
         server for the whole budget, so each attempt is bounded. *)
      ("racy-counter", racy_counter, racy_counter_spec,
       { Search.max_attempts = 3_000; max_steps_per_attempt = 5_000; base_seed = 1; deadline_s = None });
      ("miniht", (Miniht.app ()).App.labeled, (Miniht.app ()).App.spec,
       { Search.max_attempts = 300; max_steps_per_attempt = 5_000; base_seed = 1; deadline_s = None });
    ]
  in
  let rows =
    List.concat_map
      (fun (name, labeled, spec, budget) ->
        let seed =
          let rec scan s =
            if s > 500 then invalid_arg ("no failing seed for " ^ name)
            else
              let r = Spec.apply spec (Interp.run labeled (World.random ~seed:s)) in
              if r.Interp.failure <> None then s else scan (s + 1)
          in
          scan 1
        in
        let _, log =
          Ddet_record.Recorder.record
            (Ddet_record.Failure_recorder.create ())
            labeled ~spec ~world:(World.random ~seed)
        in
        let accept = Constraints.failure_matches log in
        let describe engine (o : Search.outcome) =
          [
            name;
            engine;
            (if o.Search.stats.success then "yes" else "NO");
            string_of_int o.Search.stats.attempts;
            string_of_int o.Search.stats.pruned;
            string_of_int o.Search.stats.total_steps;
          ]
        in
        [
          describe "dfs (systematic, pruned)"
            (Par_search.dfs_schedules ~jobs budget ~spec ~accept labeled);
          describe "dfs (systematic, no pruning)"
            (Par_search.dfs_schedules ~jobs ~prune:false budget ~spec ~accept
               labeled);
          describe "random restarts"
            (Par_search.random_restarts ~jobs budget
               ~make:(fun ~attempt -> (World.random ~seed:attempt, None))
               ~spec ~accept labeled);
        ])
      cases
  in
  let body =
    Report.table
      ~headers:
        [ "workload"; "engine"; "reproduced"; "attempts"; "pruned"; "steps" ]
      rows
    ^ "\n\nSystematic schedule enumeration is complete and finds the racy\n\
       counter's lost update without luck — but its frontier grows\n\
       exponentially with threads and steps, so on miniht it burns the\n\
       whole budget permuting the earliest scheduling decisions. State-hash\n\
       pruning (the 'pruned' column counts skipped subtrees) collapses\n\
       interleavings that reconverge to an already-explored state and\n\
       stretches the same attempt budget further, but the space is still\n\
       exponential. Seeded random restarts sample the space instead and\n\
       land on a failing interleaving quickly. This is why the replayers\n\
       use restarts (plus streaming pruning) as their default inference\n\
       engine, and why the paper warns that ultra-relaxed models can need\n\
       'prohibitively large post-factum analysis times'. All engines\n\
       accept a jobs knob that fans attempts over OCaml 5 domains without\n\
       changing any outcome.\n"
  in
  { title = "ABL-SEARCH systematic vs. randomized inference"; body }

let run_all ?config () =
  [
    render_fig1 (fig1 ?config ());
    render_fig2 (fig2 ?config ());
    sec2_adder ?config ();
    sec2_drop ?config ();
    render_ablation (ablation_rcse ?config ());
    budget_sweep ?config ();
    flight_sweep ?config ();
    race_detectors ?config ();
    search_engines ?config ();
  ]
