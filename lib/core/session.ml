open Mvm
open Ddet_record
open Ddet_replay
open Ddet_analysis
open Ddet_apps

type prepared = {
  app : App.t;
  model : Model.t;
  config : Config.t;
  make_recorder : ?govern:Governor.t -> unit -> Recorder.t;
  plane_map : Plane.map option;
  invariants : Invariants.t option;
}

(* Training models pre-release testing: only passing runs teach the
   analyses what "normal" looks like. *)
let training_runs (config : Config.t) (app : App.t) =
  let rec scan seed acc n =
    if n = 0 || seed > config.training_seed_base + 300 then List.rev acc
    else
      let r = App.production_run app ~seed in
      match r.Interp.failure with
      | None -> scan (seed + 1) (r :: acc) (n - 1)
      | Some _ -> scan (seed + 1) acc n
  in
  scan config.training_seed_base [] config.training_runs

let code_selector plane_map = Plane.selector plane_map

let data_selector invariants = Invariants.selector invariants

let trigger_selector (config : Config.t) () =
  Trigger.selector ~sticky:true ~window:config.trigger_window
    [ Trigger.of_race_detector (Race_detector.create config.race_config) ]

let prepare ?(config = Config.default) model (app : App.t) =
  let trained = lazy (training_runs config app) in
  let plane_map =
    lazy
      (Plane.classify
         (Taint_profile.of_results (Lazy.force trained))
         ~threshold:config.plane_threshold)
  in
  let invariants = lazy (Invariants.infer (Lazy.force trained)) in
  let make_recorder, plane_used, inv_used =
    match model with
    | Model.Perfect -> (Full_recorder.create, false, false)
    | Model.Value -> (Value_recorder.create, false, false)
    | Model.Sync -> (Sync_recorder.create, false, false)
    | Model.Output -> (Output_recorder.create, false, false)
    | Model.Failure_det -> (Failure_recorder.create, false, false)
    | Model.Rcse Model.Code_based ->
      (* static selection: no flight ring needed *)
      ( (fun ?govern () ->
          Rcse_recorder.create ?govern (code_selector (Lazy.force plane_map))),
        true,
        false )
    | Model.Rcse Model.Data_based ->
      ( (fun ?govern () ->
          Rcse_recorder.create ?flight:config.Config.flight_ring ?govern
            (data_selector (Lazy.force invariants))),
        false,
        true )
    | Model.Rcse Model.Trigger_based ->
      ( (fun ?govern () ->
          Rcse_recorder.create ?flight:config.Config.flight_ring ?govern
            (trigger_selector config ())),
        false,
        false )
    | Model.Rcse Model.Combined ->
      ( (fun ?govern () ->
          Rcse_recorder.create ?flight:config.Config.flight_ring ?govern
            (Fidelity_level.any
               [
                 code_selector (Lazy.force plane_map);
                 data_selector (Lazy.force invariants);
                 trigger_selector config ();
               ])),
        true,
        true )
  in
  {
    app;
    model;
    config;
    make_recorder;
    plane_map = (if plane_used then Some (Lazy.force plane_map) else None);
    invariants = (if inv_used then Some (Lazy.force invariants) else None);
  }

let governor_of prepared =
  Option.map
    (fun budget ->
      Governor.create ~cost_model:prepared.config.Config.cost_model ~budget ())
    prepared.config.Config.overhead_budget

let record ?(faults = Fault.none) ?monitor prepared ~seed =
  Ddet_obs.Tracer.span_ "session.record"
    ~args:[ ("seed", Ddet_obs.Tracer.Count seed) ]
  @@ fun () ->
  (* node-granular faults desugar against the app's topology before any
     world exists; the *lowered* plan is also what ships with the log,
     so replay re-creates the environment with no node knowledge *)
  let faults = App.lower_faults prepared.app faults in
  let world = Fault.inject faults (World.random ~seed) in
  let govern = governor_of prepared in
  let original, log =
    Recorder.record ?govern ?monitor
      (prepared.make_recorder ?govern ())
      prepared.app.App.labeled ~spec:prepared.app.App.spec ~world
  in
  (* the plan ships with the log: replay must re-create the adversarial
     environment the recording ran under *)
  if Fault.is_empty faults then (original, log)
  else (original, { log with Log.faults = Some faults })

(* Distributed recording: same run, but a causal monitor rides along so
   the log can be sharded per node with a cross-node manifest. *)
let record_dist ?faults prepared ~seed =
  let map =
    match prepared.app.App.nodes with
    | Some m -> m
    | None ->
      invalid_arg
        (Printf.sprintf "Session.record_dist: app %S has no node map"
           prepared.app.App.name)
  in
  let main_fname = prepared.app.App.labeled.Label.prog.Ast.main in
  Ddet_obs.Tracer.span_ "session.record_dist" @@ fun () ->
  let on_event, finish = Causal.monitor ~map ~main_fname () in
  let original, log = record ?faults ~monitor:on_event prepared ~seed in
  (original, log, finish ())

(* Output-determinism inference enumerates input assignments exhaustively
   when the program is sequential (its only nondeterminism is inputs);
   concurrent programs need schedule search instead. *)
let has_spawn labeled =
  Ast.fold_stmts
    (fun acc _ s -> acc || match s.Ast.node with Ast.Spawn _ -> true | _ -> false)
    false labeled.Label.prog

let replay ?budget ?checkpoint ?resume prepared log =
  Ddet_obs.Tracer.span_ "session.replay"
    ~args:
      [
        ("governed", Ddet_obs.Tracer.Count (if Log.governed log then 1 else 0));
      ]
  @@ fun () ->
  let labeled = prepared.app.App.labeled in
  let spec = prepared.app.App.spec in
  let budget = Option.value ~default:prepared.config.Config.budget budget in
  let jobs = prepared.config.Config.jobs in
  let tuning = prepared.config.Config.tuning in
  (* A governed log has windows where the governor dropped entries by
     design; the deterministic oracles would misalign against the gaps,
     so any model's replay degrades to failure-directed search over the
     missing windows. *)
  if Log.governed log then
    Replayer.governed ~budget ~jobs ~tuning ?checkpoint ?resume labeled ~spec log
  else
  match prepared.model with
  | Model.Perfect -> Replayer.perfect labeled ~spec log
  | Model.Value ->
    (* the value budget inherits the caller's deadline: an explicit
       wall-clock allowance should bound every model's search *)
    let budget =
      { prepared.config.Config.value_budget with
        Ddet_replay.Search.deadline_s = budget.Ddet_replay.Search.deadline_s
      }
    in
    Replayer.value_det ~budget ~jobs ~tuning ?checkpoint ?resume labeled ~spec log
  | Model.Sync ->
    Replayer.sync_det ~budget ~jobs ~tuning ?checkpoint ?resume labeled ~spec log
  | Model.Output ->
    Replayer.output_det ~budget ~exhaustive:(not (has_spawn labeled)) ~jobs
      ~tuning ?checkpoint ?resume labeled ~spec log
  | Model.Failure_det ->
    Replayer.failure_det ~budget ~jobs ~tuning ?checkpoint ?resume labeled ~spec log
  | Model.Rcse mode ->
    (* code-based selection records statically-chosen sites, so an
       out-of-order recorded site is real divergence; windowed selections
       revisit their sites outside the window legitimately *)
    let strict = match mode with Model.Code_based -> true | _ -> false in
    Replayer.rcse ~budget ~strict ~jobs ~tuning ?checkpoint ?resume labeled ~spec log

(* The app's distributed static report (None for single-node apps).
   Computed per call: analysis cost is a few graph walks, and sessions
   touch it at most once per replay. *)
let static_report prepared =
  Option.map
    (fun map ->
      Ddet_static.Static_report.analyze ~nodes:map prepared.app.App.labeled)
    prepared.app.App.nodes

let shard_priority prepared =
  match static_report prepared with
  | None -> []
  | Some report -> Ddet_static.Static_report.shard_priority report

(* Static steering hints for a stitched partial replay, converted to the
   replay layer's plain record (ddet_replay cannot depend on the static
   library). *)
let steer_of prepared (st : Stitch.t) =
  match static_report prepared with
  | None -> None
  | Some report ->
    let h = Ddet_static.Static_report.steer report ~lost:st.Stitch.lost in
    Some
      {
        Ddet_replay.Oracle.lost_tids = h.Ddet_static.Static_report.lost_tids;
        hot_sids = h.Ddet_static.Static_report.hot_sids;
        cold_input_tids = h.Ddet_static.Static_report.cold_input_tids;
      }

(* Replay over a stitched shard merge. Complete evidence is the original
   log reassembled exactly — the configured model's own replay applies.
   Anything less degrades to partial-evidence search: surviving schedules
   enforced, lost nodes searched (statically bounded when asked). *)
let replay_stitched ?budget ?checkpoint ?resume ?(static_steer = false)
    prepared (st : Stitch.t) =
  if st.Stitch.complete then replay ?budget ?checkpoint ?resume prepared st.Stitch.log
  else
    Ddet_obs.Tracer.span_ "session.replay_stitched"
      ~args:
        [ ("lost", Ddet_obs.Tracer.Count (List.length st.Stitch.lost)) ]
    @@ fun () ->
    let budget = Option.value ~default:prepared.config.Config.budget budget in
    let steer = if static_steer then steer_of prepared st else None in
    Replayer.stitched ~budget ~jobs:prepared.config.Config.jobs
      ~tuning:prepared.config.Config.tuning ?checkpoint ?resume ?steer
      prepared.app.App.labeled ~spec:prepared.app.App.spec st

let assess ?salvaged ?evidence prepared ~original ~log outcome =
  Ddet_obs.Tracer.span_ "session.assess" @@ fun () ->
  let a =
    Ddet_metrics.Utility.assess ~cost_model:prepared.config.Config.cost_model
      ?salvaged ?evidence ~catalog:prepared.app.App.catalog ~original ~log
      outcome
  in
  (* the replayer knows only its mechanism; name the configured model so
     RCSE variants stay distinguishable in reports *)
  { a with Ddet_metrics.Utility.model = Model.name prepared.model }

let experiment ?config ?faults model app ~seed =
  let prepared = prepare ?config model app in
  let original, log = record ?faults prepared ~seed in
  let outcome = replay prepared log in
  assess prepared ~original ~log outcome

let experiment_ensemble ?config ?faults ?(replays = 5) model app ~seed =
  let prepared = prepare ?config model app in
  let original, log = record ?faults prepared ~seed in
  let base = prepared.config.Config.budget in
  let assessments =
    List.init (max 1 replays) (fun k ->
        let budget = { base with Search.base_seed = base.Search.base_seed + (7919 * k) } in
        assess prepared ~original ~log (replay ~budget prepared log))
  in
  let n = float_of_int (List.length assessments) in
  let mean f = List.fold_left (fun acc a -> acc +. f a) 0. assessments /. n in
  let modal_cause =
    let tally = Hashtbl.create 8 in
    List.iter
      (fun (a : Ddet_metrics.Utility.assessment) ->
        let key = Option.value ~default:"-" a.replay_cause in
        Hashtbl.replace tally key
          (1 + Option.value ~default:0 (Hashtbl.find_opt tally key)))
      assessments;
    let best =
      Hashtbl.fold
        (fun k v acc ->
          match acc with Some (_, v') when v' >= v -> acc | _ -> Some (k, v))
        tally None
    in
    match best with Some ("-", _) | None -> None | Some (k, _) -> Some k
  in
  match assessments with
  | [] -> assert false
  | first :: _ ->
    {
      first with
      Ddet_metrics.Utility.df = mean (fun a -> a.Ddet_metrics.Utility.df);
      de = mean (fun a -> a.Ddet_metrics.Utility.de);
      du = mean (fun a -> a.Ddet_metrics.Utility.du);
      replay_cause = modal_cause;
      attempts =
        int_of_float (mean (fun a -> float_of_int a.Ddet_metrics.Utility.attempts));
      inference_steps =
        int_of_float
          (mean (fun a -> float_of_int a.Ddet_metrics.Utility.inference_steps));
    }
