open Ddet_record
open Ddet_replay

type t = {
  cost_model : Cost_model.t;
  plane_threshold : float;
  budget : Search.budget;
  value_budget : Search.budget;
  training_runs : int;
  training_seed_base : int;
  trigger_window : int;
  flight_ring : int option;
  race_config : Ddet_analysis.Race_detector.config;
  jobs : int;
  tuning : Par_search.tuning;
  overhead_budget : float option;
}

let default =
  {
    cost_model = Cost_model.default;
    plane_threshold = 6.0;
    budget = Search.default_budget;
    value_budget =
      { Search.max_attempts = 10; max_steps_per_attempt = 100_000; base_seed = 1; deadline_s = None };
    training_runs = 5;
    training_seed_base = 1000;
    trigger_window = 500;
    flight_ring = Some 250;
    race_config = Ddet_analysis.Race_detector.default_config;
    jobs = 1;
    tuning = Par_search.default_tuning;
    overhead_budget = None;
  }
