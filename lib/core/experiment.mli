(** One-call drivers for every evaluation artifact in the paper, returning
    structured rows that the bench harness renders.

    - {!fig1} — the relaxation-trend chart (Fig. 1): runtime overhead vs.
      debugging utility for the chronological model sequence, across the
      application suite.
    - {!fig2} — the Hypertable case study (Fig. 2): recording overhead vs.
      debugging fidelity for value determinism, failure determinism and
      RCSE with control-plane selection, on the migration-race bug.
    - {!sec2_adder} — §2's output-determinism narrative: the replay of the
      2+2=5 failure that returns a correct-sum execution (DF 0).
    - {!sec2_drop} — §2's multi-root-cause narrative: failure-determinism
      replays of the message-drop failure, and how often they blame
      congestion instead of the racing buffer.
    - {!ablation_rcse} — the RCSE variants (§3.1.1-3.1.3) compared on the
      apps where each shines or misfires.
    - {!budget_sweep} — debugging efficiency as a function of the
      inference budget (the §3.2 efficiency discussion). *)

open Ddet_metrics

type row = {
  app : string;
  seed : int;  (** production seed of the original failing run *)
  assessment : Utility.assessment;
}

(** A fully rendered experiment: headline, table, commentary. *)
type rendered = { title : string; body : string }

val fig1 : ?config:Config.t -> ?replays:int -> unit -> row list
val render_fig1 : row list -> rendered

val fig2 : ?config:Config.t -> ?replays:int -> unit -> row list
val render_fig2 : row list -> rendered

val sec2_adder : ?config:Config.t -> unit -> rendered

val sec2_drop : ?config:Config.t -> ?replays:int -> unit -> rendered

val ablation_rcse : ?config:Config.t -> ?replays:int -> unit -> row list
val render_ablation : row list -> rendered

(** [budget_sweep ()] varies [max_attempts] for failure-determinism and
    RCSE inference on the miniht bug and reports DE/DU per budget. *)
val budget_sweep : ?config:Config.t -> unit -> rendered

(** [flight_sweep ()] varies the flight-recorder ring capacity for
    trigger-based RCSE on the msg_server race: fidelity climbs as the ring
    covers more of the run leading up to the trigger, and so does recording
    cost — the always-on tracing trade-off. *)
val flight_sweep : ?config:Config.t -> ?replays:int -> unit -> rendered

(** [race_detectors ()] compares the sampling race detector (the paper's
    low-overhead trigger) against a precise happens-before detector on a
    race-free lock-protected workload and on the racy applications:
    precision (false positives), coverage, and per-access work. *)
val race_detectors : ?config:Config.t -> unit -> rendered

(** The schedule-only lost-update workload the search comparison runs on:
    two threads each increment a shared counter four times without locks.
    Exposed so the bench harness can time the engines on it. *)
val racy_counter : Mvm.Label.labeled

val racy_counter_spec : Mvm.Spec.t

(** [search_engines ()] compares inference strategies — systematic DFS
    over schedules (ESD-style directed synthesis) against seeded random
    restarts (PRES-style probabilistic replay) — reproducing a recorded
    failure on a small racy counter and on miniht. *)
val search_engines : ?config:Config.t -> unit -> rendered

(** [run_all ()] renders every experiment in order (the bench default). *)
val run_all : ?config:Config.t -> unit -> rendered list
