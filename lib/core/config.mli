(** Session-wide configuration: cost model, analysis thresholds and
    inference budgets, with the defaults every experiment in EXPERIMENTS.md
    uses. *)

open Ddet_record
open Ddet_replay

type t = {
  cost_model : Cost_model.t;
  plane_threshold : float;
      (** data rate (input-derived bytes per step) above which a function is
          data-plane; default 6.0 — see the taint-profile calibration in
          DESIGN.md *)
  budget : Search.budget;  (** inference budget for searched replays *)
  value_budget : Search.budget;
      (** small budget for value-determinism replay (a handful of seeds) *)
  training_runs : int;  (** passing runs used to train the analyses *)
  training_seed_base : int;  (** first seed scanned for training runs *)
  trigger_window : int;  (** high-fidelity window opened by a trigger *)
  flight_ring : int option;
      (** capacity of the flight-recorder ring used by windowed RCSE
          selections (trigger/data/combined); [None] disables it *)
  race_config : Ddet_analysis.Race_detector.config;
  jobs : int;
      (** worker domains for searched replays and seed scans; 1 (the
          default) keeps everything sequential. Outcomes are identical at
          any [jobs]; only wall-clock time changes. *)
  tuning : Par_search.tuning;
      (** parallel-scheduler knobs (chunk size, speculation window,
          min-work threshold, cores cap); wall-clock only, never
          outcomes — see {!Ddet_replay.Par_search.tuning} *)
  overhead_budget : float option;
      (** recording-overhead SLO (e.g. [Some 1.3] for "≤1.3x"): recording
          runs under an {!Ddet_record.Governor} that degrades fidelity
          gracefully to stay within it; [None] (the default) records at
          the model's full fidelity *)
}

val default : t
