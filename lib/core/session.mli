(** The record / replay / assess pipeline — the library's headline API.

    A debugging session follows the paper's lifecycle:

    + {!prepare} a determinism model for an application — for RCSE models
      this trains the analyses on passing runs (taint-profile plane
      classification, invariant inference) exactly as §3.1 prescribes
      ("before the software is released");
    + {!record} a production run (a seeded random world) under the model's
      recorder, judging it against the app's I/O specification;
    + {!replay} the log — deterministic re-execution or inference search,
      depending on the model;
    + {!assess} the outcome: recording overhead, debugging fidelity,
      efficiency and utility (§3.2).

    {!experiment} chains all four. *)

open Mvm
open Ddet_record
open Ddet_analysis
open Ddet_apps

type prepared = {
  app : App.t;
  model : Model.t;
  config : Config.t;
  make_recorder : ?govern:Governor.t -> unit -> Recorder.t;
      (** fresh recorder per recording: selectors and triggers are
          stateful. With [govern], the recorder's entries route through
          that governor's admission gate (see {!Ddet_record.Governor}). *)
  plane_map : Plane.map option;
      (** the trained classification, for RCSE code-based/combined models *)
  invariants : Invariants.t option;
      (** the trained invariants, for RCSE data-based/combined models *)
}

(** [prepare ?config model app] trains whatever the model needs. *)
val prepare : ?config:Config.t -> Model.t -> App.t -> prepared

(** [record prepared ~seed] executes one production run under the model's
    recorder and returns the judged run plus its log. With [faults] the
    run executes under that adversarial fault plan — node-granular faults
    are lowered against the app's node map first — and the (lowered) plan
    is stamped into the log so replay can re-create the environment.
    [monitor] attaches one extra event observer to the recording run. *)
val record :
  ?faults:Fault.plan ->
  ?monitor:(Event.t -> unit) ->
  prepared ->
  seed:int ->
  Interp.result * Log.t

(** [record_dist prepared ~seed] is {!record} with a {!Ddet_record.Causal}
    monitor riding along: the returned causality is what
    {!Ddet_record.Sharded_log.save_via} needs to shard the log per node.

    @raise Invalid_argument when the app has no node map. *)
val record_dist :
  ?faults:Fault.plan ->
  prepared ->
  seed:int ->
  Interp.result * Log.t * Ddet_record.Causal.t

(** [replay ?budget prepared log] reconstructs an execution per the model's
    replay contract. [budget] overrides the config's inference budget (the
    ensemble assessment varies its base seed; a [deadline_s] in it bounds
    every model's search, including the value model's smaller budget). The
    config's [jobs] fans searched replays over that many domains — same
    outcome, less wall-clock. [checkpoint] persists the search frontier so
    a killed replay can be [resume]d and provably reach the same first-hit
    outcome; see {!Ddet_replay.Checkpoint}. *)
val replay :
  ?budget:Ddet_replay.Search.budget ->
  ?checkpoint:Ddet_replay.Checkpoint.sink ->
  ?resume:Ddet_replay.Checkpoint.t ->
  prepared ->
  Log.t ->
  Ddet_replay.Replayer.outcome

(** [replay_stitched prepared stitch] replays a stitched shard merge
    ({!Ddet_replay.Stitch}). Complete evidence is the original log
    reassembled exactly, so the configured model's own {!replay} runs;
    partial evidence degrades to {!Ddet_replay.Replayer.stitched}
    search — surviving schedules enforced, lost nodes searched.

    [static_steer] (default false) runs the cross-node static analysis
    on the app's node map and hands the resulting hints to the partial
    oracle: the search only perturbs lost-node decision points that can
    statically reach a survivor, and pins inputs of lost threads with no
    such path. A no-op for apps without a node map or when the stitch is
    complete. *)
val replay_stitched :
  ?budget:Ddet_replay.Search.budget ->
  ?checkpoint:Ddet_replay.Checkpoint.sink ->
  ?resume:Ddet_replay.Checkpoint.t ->
  ?static_steer:bool ->
  prepared ->
  Ddet_replay.Stitch.t ->
  Ddet_replay.Replayer.outcome

(** The app's distributed static report ([None] without a node map) —
    race candidates tightened by placement, communication lint, per-node
    views. See {!Ddet_static.Static_report}. *)
val static_report : prepared -> Ddet_static.Static_report.t option

(** Shard write priority from the static report (empty without a node
    map) — pass to {!Ddet_record.Sharded_log.save_via} so the most
    diagnostic shards are persisted first. *)
val shard_priority : prepared -> string list

(** [assess prepared ~original ~log outcome] computes the §3.2 metrics.
    [salvaged] marks a log recovered from a damaged file, capping a full
    reproduction's DF at the 1/n floor; [evidence] is per-node shard
    evidence and populates the per-node DF report — see
    {!Ddet_metrics.Utility.assess}. *)
val assess :
  ?salvaged:bool ->
  ?evidence:(string * Ddet_record.Sharded_log.shard_status) list ->
  prepared ->
  original:Interp.result ->
  log:Log.t ->
  Ddet_replay.Replayer.outcome ->
  Ddet_metrics.Utility.assessment

(** [experiment ?config ?faults model app ~seed] = prepare, record,
    replay, assess — optionally under an injected fault plan. *)
val experiment :
  ?config:Config.t ->
  ?faults:Fault.plan ->
  Model.t ->
  App.t ->
  seed:int ->
  Ddet_metrics.Utility.assessment

(** [experiment_ensemble ?config ?replays model app ~seed] records once and
    replays [replays] times (default 5) with independent search seeds,
    averaging DF, DE and DU. Debug determinism demands *consistently*
    reproducing the failure and root cause (§3), and a single search can
    get lucky; the ensemble estimates the expectation. The reported replay
    cause is the modal one across the ensemble. *)
val experiment_ensemble :
  ?config:Config.t ->
  ?faults:Fault.plan ->
  ?replays:int ->
  Model.t ->
  App.t ->
  seed:int ->
  Ddet_metrics.Utility.assessment

(** [training_runs config app] is the passing runs used to train analyses
    (scans seeds from [config.training_seed_base]). Exposed for examples
    and tests. *)
val training_runs : Config.t -> App.t -> Interp.result list
