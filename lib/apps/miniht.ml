open Mvm
open Mvm.Dsl
open Ddet_metrics

type params = {
  n_clients : int;
  rows_per_client : int;
  migrate_threshold : int;
  payload_len : int;
}

let default_params =
  { n_clients = 3; rows_per_client = 8; migrate_threshold = 10; payload_len = 256 }

let rc_race = "migration-commit-race"
let rc_crash = "server-crash"
let rc_oom = "client-oom"

let st s r = Printf.sprintf "st_%d_%d" s r
let commit s r = Printf.sprintf "commit_%d_%d" s r
let ctl s = Printf.sprintf "ctl_%d" s
let ack s = Printf.sprintf "ack_%d" s
let bytes s = Printf.sprintf "bytes_%d" s
let fault_crash s = Printf.sprintf "fault_crash_%d" s

(* control messages on ctl_s *)
let msg_migrate = 1
let msg_stop = 2

let fault_domain = [ 0; 0; 0; 0; 0; 0; 0; 1 ] |> List.map Value.int

let row_data_domain p =
  [ 'x'; 'y'; 'z' ] |> List.map (fun c -> Value.str (String.make p.payload_len c))

(* Row-key (range) selection: the range a row belongs to is metadata that
   steers control-plane branches, so it must enter through control-plane
   code — RCSE records "the data on control-plane channels", and this is
   such a channel. *)
let pick_range_func =
  func "pick_range" [] [ input "r" "row_range"; return (v "r") ]

(* Routing: read the ownership map for the row's range. Kept in its own
   function because it is the control-plane half of the client: it moves
   metadata (small untainted ints), not payload. *)
let route_func =
  func "route" [ "r" ]
    [
      if_ (v "r" =: i 0)
        [ return (g "owner_0") ]
        [ return (g "owner_1") ];
    ]

let client_func p =
  func "client" []
    [
      assign "sent" (i 0);
      for_ "k" (i 0) (i p.rows_per_client)
        [
          call ~dest:"r" "pick_range" [];
          input "m" "row_data";
          call ~dest:"dest" "route" [ v "r" ];
          if_ (v "r" =: i 0)
            [
              if_ (v "dest" =: i 0)
                [ send (commit 0 0) (v "m") ]
                [ send (commit 1 0) (v "m") ];
            ]
            [
              if_ (v "dest" =: i 0)
                [ send (commit 0 1) (v "m") ]
                [ send (commit 1 1) (v "m") ];
            ];
          assign "sent" (v "sent" +: i 1);
        ];
      send "client_done" (v "sent");
    ]

(* The master is event-driven, as in Hypertable: server 0 reports its load
   for range 0 after each commit; crossing the threshold triggers the
   migration. A -1 sentinel from main ends the master's life. *)
let master_func p =
  func "master" []
    [
      assign "migrated" (i 0);
      assign "fin" (i 0);
      while_ (v "fin" =: i 0)
        [
          recv "c" "load_report";
          if_ (v "c" =: i (-1))
            [ assign "fin" (i 1) ]
            [
              when_
                ((v "migrated" =: i 0) &&: (v "c" >=: i p.migrate_threshold))
                [
                  (* migrate range 0: ask server 0 to transfer, then flip
                     the map — a client that routed in between commits to
                     the old owner *)
                  send (ctl 0) (i msg_migrate);
                  store_g "owner_0" (i 1);
                  assign "migrated" (i 1);
                ];
            ];
        ];
      send "master_done" (i 1);
    ]

(* Control-plane message handling for server [s]: transfer-out of range 0
   (server 0 only) and the stop command. Returns 1 when the server should
   shut down. *)
let handle_ctl_func s =
  let transfer =
    if s = 0 then
      [
        assign "moved" (g (st 0 0));
        store_g (st 0 0) (i 0);
        send "xferin_1" (v "moved");
      ]
    else [ skip ]
  in
  func (Printf.sprintf "handle_ctl_%d" s) [ "msg" ]
    [
      if_ (v "msg" =: i msg_migrate)
        (transfer @ [ return (i 0) ])
        [ return (i 1) ];
    ]

(* Shutdown for server [s]: consult the crash-fault input (error handling
   is control-plane code), then acknowledge. A crashed server loses its
   stored rows. *)
let shutdown_func s =
  func (Printf.sprintf "shutdown_%d" s) []
    [
      input "f" (fault_crash s);
      when_ (v "f" =: i 1)
        [ store_g (st s 0) (i 0); store_g (st s 1) (i 0) ];
      send (ack s) (i 1);
    ]

(* The data-plane server loop: drain commit payloads (and, for server 1,
   transferred rows), dispatching control messages to the control-plane
   handler. *)
let server_func p s =
  ignore p;
  let process r =
    [
      assign "len" (str_len (v "m"));
      store_g (bytes s) (g (bytes s) +: v "len");
      store_g (st s r) (g (st s r) +: i 1);
    ]
    @
    (* server 0 reports its range-0 load to the master *)
    if s = 0 && r = 0 then [ send "load_report" (g (st 0 0)) ] else []
  in
  let poll_commits =
    [
      try_recv "ok0" "m" (commit s 0);
      when_ (v "ok0") (process 0);
      try_recv "ok1" "m" (commit s 1);
      when_ (v "ok1") (process 1);
    ]
    @
    if s = 1 then
      [
        try_recv "okx" "x" "xferin_1";
        when_ (v "okx") [ store_g (st 1 0) (g (st 1 0) +: v "x") ];
      ]
    else []
  in
  let more_cond =
    if s = 1 then v "ok0" ||: v "ok1" ||: v "okx" else v "ok0" ||: v "ok1"
  in
  func (Printf.sprintf "server%d" s) []
    [
      assign "stopped" (i 0);
      while_ (v "stopped" =: i 0)
        (poll_commits
        @ [
            try_recv "okc" "cm" (ctl s);
            when_ (v "okc")
              [ call ~dest:"stopped" (Printf.sprintf "handle_ctl_%d" s) [ v "cm" ] ];
            yield;
          ]);
      (* stop received: drain everything still queued, then shut down *)
      assign "more" (b true);
      while_ (v "more") (poll_commits @ [ assign "more" more_cond ]);
      call (Printf.sprintf "shutdown_%d" s) [];
    ]

(* Dumping asks the *current owner* of each range for its rows — rows
   stranded on a non-owner are silently ignored, as in the bug report. *)
let dump_funcs =
  [
    func "dump_range0" []
      [
        if_ (g "owner_0" =: i 0)
          [ return (g (st 0 0)) ]
          [ return (g (st 1 0)) ];
      ];
    func "dump_range1" []
      [
        if_ (g "owner_1" =: i 0)
          [ return (g (st 0 1)) ]
          [ return (g (st 1 1)) ];
      ];
  ]

let main_func p =
  func "main" []
    ([
       spawn "server0" [];
       spawn "server1" [];
       spawn "master" [];
     ]
    @ List.init p.n_clients (fun _ -> spawn "client" [])
    @ [
        assign "loaded" (i 0);
        for_ "c" (i 0) (i p.n_clients)
          [ recv "d" "client_done"; assign "loaded" (v "loaded" +: v "d") ];
        send "load_report" (i (-1));
        recv "md" "master_done";
        (* sequential shutdown: server 0 first so its transfer reaches
           server 1 before server 1 drains *)
        send (ctl 0) (i msg_stop);
        recv "a0" (ack 0);
        send (ctl 1) (i msg_stop);
        recv "a1" (ack 1);
        call ~dest:"d0" "dump_range0" [];
        call ~dest:"d1" "dump_range1" [];
        input "oomf" "fault_oom";
        if_ (v "oomf" =: i 1)
          [ (* dump client out of memory: range 1 never dumped *)
            assign "dumped" (v "d0") ]
          [ assign "dumped" (v "d0" +: v "d1") ];
        output "loaded" (v "loaded");
        output "dumped" (v "dumped");
      ])

let program p =
  program ~name:"miniht"
    ~regions:
      [
        scalar "owner_0" (Value.int 0);
        scalar "owner_1" (Value.int 1);
        scalar (st 0 0) (Value.int 0);
        scalar (st 0 1) (Value.int 0);
        scalar (st 1 0) (Value.int 0);
        scalar (st 1 1) (Value.int 0);
        scalar (bytes 0) (Value.int 0);
        scalar (bytes 1) (Value.int 0);
      ]
    ~inputs:
      [
        ("row_range", [ Value.int 0; Value.int 1 ]);
        ("row_data", row_data_domain p);
        (fault_crash 0, fault_domain);
        (fault_crash 1, fault_domain);
        ("fault_oom", fault_domain);
      ]
    ~main:"main"
    ([
       main_func p;
       master_func p;
       client_func p;
       pick_range_func;
       route_func;
       server_func p 0;
       server_func p 1;
       handle_ctl_func 0;
       handle_ctl_func 1;
       shutdown_func 0;
       shutdown_func 1;
     ]
    @ dump_funcs)

let spec =
  Spec.make "dump-returns-all-rows" (fun r ->
      match
        ( Trace.outputs_on r.Interp.trace "loaded",
          Trace.outputs_on r.Interp.trace "dumped" )
      with
      | [ Value.Vint loaded ], [ Value.Vint dumped ] ->
        if dumped < loaded then Error "missing-rows"
        else if dumped > loaded then Error "phantom-rows"
        else Ok ()
      | _ -> Error "malformed-io")

let final_int trace region =
  match Trace.scalar_at trace region ~init:(Value.int 0) ~step:max_int with
  | Value.Vint n -> n
  | _ -> 0

let final_owner trace r =
  match
    Trace.scalar_at trace
      (Printf.sprintf "owner_%d" r)
      ~init:(Value.int r) ~step:max_int
  with
  | Value.Vint n -> n
  | _ -> r

let race_cause =
  Root_cause.make ~id:rc_race
    ~descr:
      "rows committed to a range server concurrently with the migration of \
       their range end up on a non-owner and are ignored by dumps"
    (fun r ->
      let t = r.Interp.trace in
      let stranded s rng = final_int t (st s rng) > 0 && final_owner t rng <> s in
      stranded 0 0 || stranded 0 1 || stranded 1 0 || stranded 1 1)

let fault_fired trace chan =
  List.exists
    (fun (_, _, v) -> Value.equal v (Value.int 1))
    (Trace.inputs_on trace chan)

let crash_cause =
  Root_cause.make ~id:rc_crash
    ~descr:"a range server crashed after upload, losing its rows (expected)"
    (fun r ->
      fault_fired r.Interp.trace (fault_crash 0)
      || fault_fired r.Interp.trace (fault_crash 1))

let oom_cause =
  Root_cause.make ~id:rc_oom
    ~descr:"the dump client ran out of memory and truncated the dump"
    (fun r -> fault_fired r.Interp.trace "fault_oom")

let catalog =
  {
    Root_cause.app = "miniht";
    failure_sig =
      (function
        | Mvm.Failure.Spec_violation "missing-rows" -> true | _ -> false);
    causes = [ race_cause; crash_cause; oom_cause ];
  }

let app ?(params = default_params) () =
  {
    App.name = "miniht";
    descr =
      "mini-Hypertable: concurrent loads race a range migration and rows \
       vanish from dumps (issue 63, the paper's Sec. 4 case study)";
    labeled = program params;
    spec;
    catalog;
    control_plane =
      [
        "main"; "master"; "pick_range"; "route"; "handle_ctl_0";
        "handle_ctl_1"; "shutdown_0"; "shutdown_1"; "dump_range0";
        "dump_range1";
      ];
    (* clients share one root function, so a static thread-to-node
       assignment is not expressible — miniht stays single-process *)
    nodes = None;
  }
