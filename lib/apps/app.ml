open Mvm

type t = {
  name : string;
  descr : string;
  labeled : Label.labeled;
  spec : Spec.t;
  catalog : Ddet_metrics.Root_cause.catalog;
  control_plane : string list;
  nodes : Node.map option;
}

let run ?max_steps app world =
  Spec.apply app.spec (Interp.run ?max_steps app.labeled world)

(* Node-granular faults are sugar over thread/channel primitives; they
   desugar against the app's deployment map before any world is built.
   An app with no map cannot interpret them, and saying so beats a
   confusing Fault.inject failure deeper down. *)
let lower_faults app plan =
  if not (Fault.has_node_faults plan) then plan
  else
    match app.nodes with
    | Some map -> Fault.lower ~map ~prog:app.labeled.Label.prog plan
    | None ->
      invalid_arg
        (Printf.sprintf
           "app %S has no node map; node-granular faults (%s) need one"
           app.name (Fault.to_string plan))

let production_run ?max_steps ?(faults = Fault.none) app ~seed =
  run ?max_steps app
    (Fault.inject (lower_faults app faults) (World.random ~seed))
