open Mvm

type t = {
  name : string;
  descr : string;
  labeled : Label.labeled;
  spec : Spec.t;
  catalog : Ddet_metrics.Root_cause.catalog;
  control_plane : string list;
}

let run ?max_steps app world =
  Spec.apply app.spec (Interp.run ?max_steps app.labeled world)

let production_run ?max_steps ?(faults = Fault.none) app ~seed =
  run ?max_steps app (Fault.inject faults (World.random ~seed))
