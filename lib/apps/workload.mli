(** Workload drivers: finding production runs with the failure (and root
    cause) an experiment needs, and training runs for the analyses. *)

open Mvm

(** [find_failing_seed ?cause ?exclusive ?from ?max_seeds app] scans seeds
    for a production run whose failure matches the app's catalog. With
    [cause], the primary observed root cause must be that id; with
    [exclusive] (default false), it must be the *only* observed cause —
    clean attribution for the original execution of an experiment. With
    [faults], every scanned run executes under that fault plan. With
    [jobs > 1] the scan fans over that many OCaml 5 domains; the result
    is still the lowest matching seed. [checkpoint]/[resume] persist and
    restore the scan frontier so a killed scan continues where it
    stopped — see {!Ddet_replay.Par_search.first_success}. Returns the
    seed and the judged run. *)
val find_failing_seed :
  ?cause:string ->
  ?exclusive:bool ->
  ?from:int ->
  ?max_seeds:int ->
  ?faults:Fault.plan ->
  ?jobs:int ->
  ?tuning:Ddet_replay.Par_search.tuning ->
  ?checkpoint:Ddet_replay.Checkpoint.sink ->
  ?resume:Ddet_replay.Checkpoint.t ->
  App.t ->
  (int * Interp.result) option

(** [training_runs ?n ?from app] is [n] (default 5) seeded production runs
    — input for invariant inference and plane classification. Training
    runs are not filtered: like pre-release testing, they may or may not
    contain failures. *)
val training_runs : ?n:int -> ?from:int -> App.t -> Interp.result list

(** [failure_rate ?n ?from app] is the fraction of seeds whose run fails —
    workload characterisation for reports. [faults] runs the scan under a
    fault plan. *)
val failure_rate : ?n:int -> ?from:int -> ?faults:Fault.plan -> App.t -> float
