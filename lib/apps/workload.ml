open Mvm
open Ddet_metrics

let find_failing_seed ?cause ?(exclusive = false) ?(from = 1) ?(max_seeds = 500)
    ?faults ?(jobs = 1) ?tuning ?checkpoint ?resume (app : App.t) =
  let matches r =
    match Root_cause.observed app.App.catalog r with
    | [] -> false
    | primary :: _ as all -> (
      ((not exclusive) || List.length all = 1)
      &&
      match cause with
      | None -> true
      | Some id -> String.equal primary.Root_cause.id id)
  in
  (* seeds are independent, so the scan fans over domains; first_success
     keeps the sequential semantics (lowest matching seed wins) *)
  Ddet_replay.Par_search.first_success ~jobs ?tuning ?checkpoint ?resume ~from
    ~count:max_seeds
    ~f:(fun seed ->
      let r = App.production_run ?faults app ~seed in
      if matches r then Some r else None)
    ()

let training_runs ?(n = 5) ?(from = 1000) (app : App.t) =
  List.init n (fun k -> App.production_run app ~seed:(from + k))

let failure_rate ?(n = 100) ?(from = 1) ?faults (app : App.t) =
  let failures =
    List.init n (fun k ->
        match (App.production_run ?faults app ~seed:(from + k)).Interp.failure with
        | Some _ -> 1
        | None -> 0)
  in
  float_of_int (List.fold_left ( + ) 0 failures) /. float_of_int (max 1 n)
