open Mvm
open Mvm.Dsl
open Ddet_metrics

let domain = List.init 10 Value.int

let program () =
  program ~name:"adder" ~regions:[]
    ~inputs:[ ("a", domain); ("b", domain) ]
    ~main:"main"
    [
      func "main" []
        [
          input "a" "a";
          input "b" "b";
          (* the defect: for (2, 2) an indexing bug yields 5 instead of 4 *)
          if_
            ((v "a" =: i 2) &&: (v "b" =: i 2))
            [ assign "out" (i 5) ]
            [ assign "out" (v "a" +: v "b") ];
          output "sum" (v "out");
        ];
    ]

let first_input trace chan =
  match Trace.inputs_on trace chan with
  | (_, _, v) :: _ -> Some v
  | [] -> None

let spec =
  Spec.make "sum-correct" (fun r ->
      match
        ( first_input r.Interp.trace "a",
          first_input r.Interp.trace "b",
          Trace.outputs_on r.Interp.trace "sum" )
      with
      | Some (Value.Vint a), Some (Value.Vint b), [ Value.Vint s ] ->
        if s = a + b then Ok () else Error "wrong-sum"
      | _ -> Error "malformed-io")

let bad_index =
  Root_cause.make ~id:"bad-index"
    ~descr:"indexing bug corrupts the sum when both inputs are 2"
    (fun r ->
      match first_input r.Interp.trace "a", first_input r.Interp.trace "b" with
      | Some (Value.Vint 2), Some (Value.Vint 2) -> true
      | _ -> false)

let catalog =
  {
    Root_cause.app = "adder";
    failure_sig =
      (function Mvm.Failure.Spec_violation "wrong-sum" -> true | _ -> false);
    causes = [ bad_index ];
  }

let app () =
  {
    App.name = "adder";
    descr = "sum of two inputs, corrupted for (2,2) — the paper's Sec. 2 example";
    labeled = program ();
    spec;
    catalog;
    control_plane = [];
    nodes = None;
  }
