(** The common shape of a workload application: a program, its I/O
    specification, its root-cause catalog, and the ground-truth
    control-plane function list used to validate automatic
    classification. *)

open Mvm

type t = {
  name : string;
  descr : string;
  labeled : Label.labeled;
  spec : Spec.t;
  catalog : Ddet_metrics.Root_cause.catalog;
  control_plane : string list;
      (** ground truth: function names that are control-plane (everything
          else is data-plane); empty when the app has no meaningful split *)
}

(** [run ?max_steps app world] executes the app and judges it with its own
    specification. *)
val run : ?max_steps:int -> t -> World.t -> Interp.result

(** [production_run app ~seed] is [run] under a seeded random world — the
    model of an uncontrolled production environment. [faults] (default
    {!Fault.none}) additionally injects an adversarial fault plan: lossy
    channels, stalled threads, perturbed inputs. *)
val production_run :
  ?max_steps:int -> ?faults:Fault.plan -> t -> seed:int -> Interp.result
